(* axmlctl — command-line front end to the distributed AXML framework.

   Sub-commands:
     parse      parse an XML file and pretty-print it
     query      run a query over XML documents
     rules      list the rewrites applicable to a serialized plan
     optimize   optimize a serialized plan under the cost model
     explain    run the unified planner and print its explain record
     demo       run the Example-1 demonstration end to end
     trace      run the traced Example-1 and export spans + metrics
     chaos      run the reference plans under seeded faults
     scale      run the flash-crowd scenario and print tier traffic
     place      hotspot scenario, static vs adaptive placement arms
     cache      overlap workload, semantic result cache off vs on
     top        flash-crowd under windowed telemetry; per-peer table *)

open Cmdliner
open Axml

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* --- parse ----------------------------------------------------- *)

let parse_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML file")
  in
  let keep_ws =
    Arg.(value & flag & info [ "keep-whitespace" ] ~doc:"Keep whitespace-only text nodes")
  in
  let run file keep_ws =
    let gen = Xml.Node_id.Gen.create ~namespace:"cli" in
    match Xml.Parser.parse ~keep_ws ~gen (read_file file) with
    | Ok t ->
        print_string (Xml.Serializer.to_string_pretty t);
        Format.printf "@.; %d nodes, %d bytes, depth %d@." (Xml.Tree.size t)
          (Xml.Tree.byte_size t) (Xml.Tree.depth t)
    | Error e ->
        Format.eprintf "%a@." Xml.Parser.pp_error e;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse an XML file and pretty-print it")
    Term.(const run $ file $ keep_ws)

(* --- query ----------------------------------------------------- *)

let query_cmd =
  let qarg =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Query text (see README for syntax)")
  in
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input documents")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("indexed", Query.Compile.Indexed); ("naive", Query.Compile.Naive);
             ])
          Query.Compile.Indexed
      & info [ "engine" ] ~docv:"naive|indexed"
          ~doc:
            "Evaluation engine: $(b,indexed) compiles the query and serves \
             descendant steps from a structural index, $(b,naive) is the \
             reference interpreter (ablation / cross-check)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "EXPLAIN ANALYZE: run the query on a synthetic distributed \
             system (a driver peer plus one peer per input document) under \
             the per-operator profiler, and print planner cost estimates \
             next to the observed per-operator costs.  Exits non-zero if \
             the per-operator sim times fail to sum to the root span")
  in
  (* The profiled path re-creates the query as a distributed plan: each
     input file becomes a document installed on its own peer of a
     synthetic mesh, so the operator table shows real transfer and
     delivery costs, not a local evaluation. *)
  let run_profile qtext files =
    let q =
      match Query.Parser.parse qtext with
      | Ok q -> q
      | Error e ->
          Format.eprintf "%a@." Query.Parser.pp_error e;
          exit 1
    in
    if Query.Ast.arity q <> List.length files then begin
      Format.eprintf "query expects %d input(s), %d file(s) given@."
        (Query.Ast.arity q) (List.length files);
      exit 1
    end;
    let driver = Net.Peer_id.of_string "p1" in
    let holders =
      List.mapi
        (fun i _ -> Net.Peer_id.of_string (Printf.sprintf "p%d" (i + 2)))
        files
    in
    let topo =
      Net.Topology.full_mesh
        ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
        (driver :: holders)
    in
    let sys = Runtime.System.create topo in
    Obs.Metrics.set_enabled Obs.Metrics.default true;
    Obs.Metrics.reset Obs.Metrics.default;
    let args =
      List.mapi
        (fun i (f, p) ->
          let gen = Runtime.System.gen_of sys p in
          match Xml.Parser.parse ~gen (read_file f) with
          | Ok t ->
              let name = Printf.sprintf "in%d" (i + 1) in
              Runtime.System.add_document sys p ~name t;
              Algebra.Expr.doc name ~at:(Net.Peer_id.to_string p)
          | Error e ->
              Format.eprintf "%s: %a@." f Xml.Parser.pp_error e;
              exit 1)
        (List.combine files holders)
    in
    let plan = Algebra.Expr.query_at q ~at:driver ~args in
    let { Runtime.Exec.outcome; report } =
      Runtime.Exec.run_profiled sys ~ctx:driver plan
    in
    List.iter
      (fun t -> print_string (Xml.Serializer.to_string_pretty t))
      outcome.Runtime.Exec.results;
    Format.printf "; %d result(s), %.1f sim ms, %d bytes on the wire@.@."
      (List.length outcome.Runtime.Exec.results)
      outcome.Runtime.Exec.elapsed_ms outcome.Runtime.Exec.stats.Net.Stats.bytes;
    Format.printf "%a@." Runtime.Profiler.pp_report report;
    if not (Runtime.Profiler.sums_to_root report) then exit 1
  in
  let run qtext engine profile files =
    if profile then run_profile qtext files
    else begin
      let gen = Xml.Node_id.Gen.create ~namespace:"cli" in
      let q =
        match Query.Parser.parse qtext with
        | Ok q -> q
        | Error e ->
            Format.eprintf "%a@." Query.Parser.pp_error e;
            exit 1
      in
      if Query.Ast.arity q <> List.length files then begin
        Format.eprintf "query expects %d input(s), %d file(s) given@."
          (Query.Ast.arity q) (List.length files);
        exit 1
      end;
      let inputs =
        List.map
          (fun f ->
            match Xml.Parser.parse_forest ~gen (read_file f) with
            | Ok forest -> forest
            | Error e ->
                Format.eprintf "%s: %a@." f Xml.Parser.pp_error e;
                exit 1)
          files
      in
      let out = Query.Compile.eval ~engine ~gen q inputs in
      List.iter (fun t -> print_string (Xml.Serializer.to_string_pretty t)) out;
      Format.printf "; %d result(s)@." (List.length out)
    end
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a query over XML documents")
    Term.(const run $ qarg $ engine $ profile $ files)

(* --- shared plan options --------------------------------------- *)

let plan_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"PLAN" ~doc:"Serialized expression (see Expr_xml)")

let peers_arg =
  Arg.(
    value
    & opt (list string) [ "p1"; "p2"; "p3" ]
    & info [ "peers" ] ~docv:"PEERS" ~doc:"Peer identifiers of the system")

let ctx_arg =
  Arg.(
    value & opt string "p1"
    & info [ "ctx" ] ~docv:"PEER" ~doc:"Driver peer (eval@ctx)")

let load_plan path = or_die (Algebra.Expr_xml.of_xml_string (read_file path))

(* --- rules ------------------------------------------------------ *)

let rules_cmd =
  let run plan peers =
    let e = load_plan plan in
    let peers = List.map Net.Peer_id.of_string peers in
    let n = ref 0 in
    let fresh () =
      incr n;
      Printf.sprintf "_tmp_cli%d" !n
    in
    let rewrites = Algebra.Rewrite.everywhere ~peers ~fresh e in
    Format.printf "plan: %a@.%d rewrite(s):@." Algebra.Expr.pp e
      (List.length rewrites);
    List.iter
      (fun (r : Algebra.Rewrite.rewrite) ->
        Format.printf "  %a@." Algebra.Rewrite.pp_rewrite r)
      rewrites
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List rewrites applicable to a plan")
    Term.(const run $ plan_arg $ peers_arg)

(* --- optimize / explain ------------------------------------------ *)

let strategy_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("greedy", "greedy");
             ("exhaustive", "exhaustive");
             ("best-first", "best-first");
             ("beam", "beam");
           ])
        "greedy"
    & info [ "strategy" ]
        ~docv:"greedy|exhaustive|best-first|beam"
        ~doc:"Search strategy")

let depth_arg =
  Arg.(
    value & opt int 3
    & info [ "depth" ] ~doc:"Exhaustive/beam depth, greedy steps")

let width_arg =
  Arg.(value & opt int 4 & info [ "width" ] ~doc:"Beam width")

let expansions_arg =
  Arg.(
    value & opt int 64
    & info [ "expansions" ] ~doc:"Best-first expansion budget")

let latency_arg =
  Arg.(value & opt float 10.0 & info [ "latency" ] ~doc:"Mesh latency (ms)")

let bandwidth_arg =
  Arg.(
    value & opt float 100.0 & info [ "bandwidth" ] ~doc:"Mesh bandwidth (B/ms)")

let doc_bytes_arg =
  Arg.(
    value & opt int 16384
    & info [ "doc-bytes" ] ~doc:"Assumed size of referenced documents")

let parse_strategy ~depth ~width ~expansions = function
  | "exhaustive" -> Algebra.Optimizer.Exhaustive { depth }
  | "best-first" -> Algebra.Optimizer.Best_first { max_expansions = expansions }
  | "beam" -> Algebra.Optimizer.Beam { width; depth }
  | _ -> Algebra.Optimizer.Greedy { max_steps = depth }

(* The synthetic mesh always covers the peers the plan itself
   mentions — a plan referencing a peer missing from --peers would
   otherwise crash the cost model's link lookup. *)
let mesh_env ~plan ~peers ~latency ~bandwidth ~doc_bytes =
  let peer_ids =
    List.fold_left
      (fun acc p -> if List.exists (Net.Peer_id.equal p) acc then acc else acc @ [ p ])
      (List.map Net.Peer_id.of_string peers)
      (Algebra.Expr.peers plan)
  in
  let topo =
    Net.Topology.full_mesh
      ~link:(Net.Link.make ~latency_ms:latency ~bandwidth_bytes_per_ms:bandwidth)
      peer_ids
  in
  Algebra.Cost.default_env ~doc_bytes:(fun _ -> doc_bytes) topo

let optimize_cmd =
  let run plan peers ctx strategy depth width expansions latency bandwidth
      doc_bytes =
    let e = load_plan plan in
    let env = mesh_env ~plan:e ~peers:(ctx :: peers) ~latency ~bandwidth ~doc_bytes in
    let strategy = parse_strategy ~depth ~width ~expansions strategy in
    let result =
      Algebra.Optimizer.optimize ~env ~ctx:(Net.Peer_id.of_string ctx) strategy e
    in
    Format.printf "%a@." Algebra.Optimizer.pp_result result;
    print_endline "; serialized best plan:";
    print_endline (Algebra.Expr_xml.to_xml_string result.plan)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a serialized plan")
    Term.(
      const run $ plan_arg $ peers_arg $ ctx_arg $ strategy_arg $ depth_arg
      $ width_arg $ expansions_arg $ latency_arg $ bandwidth_arg $ doc_bytes_arg)

let explain_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the explain record as a JSON object")
  in
  let run plan peers ctx strategy depth width expansions latency bandwidth
      doc_bytes json =
    let e = load_plan plan in
    let env = mesh_env ~plan:e ~peers:(ctx :: peers) ~latency ~bandwidth ~doc_bytes in
    let strategy = parse_strategy ~depth ~width ~expansions strategy in
    let result =
      Algebra.Planner.plan ~env ~ctx:(Net.Peer_id.of_string ctx) strategy e
    in
    if json then print_endline (Algebra.Planner.explain_json result)
    else Format.printf "%a@." Algebra.Planner.pp_result result
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the unified planner (rewrite search + per-site query \
          optimization) and print its explain record")
    Term.(
      const run $ plan_arg $ peers_arg $ ctx_arg $ strategy_arg $ depth_arg
      $ width_arg $ expansions_arg $ latency_arg $ bandwidth_arg $ doc_bytes_arg
      $ json)

(* --- demo -------------------------------------------------------- *)

let demo_cmd =
  let items =
    Arg.(value & opt int 200 & info [ "items" ] ~doc:"Catalog items")
  in
  let selectivity =
    Arg.(value & opt float 0.05 & info [ "selectivity" ] ~doc:"Matching fraction")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the message trace of the optimized run")
  in
  let run items selectivity trace =
    let p1 = Net.Peer_id.of_string "p1" and p2 = Net.Peer_id.of_string "p2" in
    let topo =
      Net.Topology.full_mesh
        ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
        [ p1; p2 ]
    in
    let build () =
      let sys = Runtime.System.create topo in
      let rng = Workload.Rng.create ~seed:2026 in
      let g = Runtime.System.gen_of sys p2 in
      Runtime.System.add_document sys p2 ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity ());
      sys
    in
    let q = Workload.Xml_gen.selection_query () in
    let naive =
      Algebra.Expr.query_at q ~at:p1 ~args:[ Algebra.Expr.doc "cat" ~at:"p2" ]
    in
    let warn_truncated label (out : Runtime.Exec.outcome) =
      if out.termination = `Budget_exhausted then
        Format.eprintf
          "warning: %s run hit the event budget after %d events — results \
           are truncated@."
          label out.events
    in
    let out1 = Runtime.Exec.run_to_quiescence (build ()) ~ctx:p1 naive in
    warn_truncated "naive" out1;
    Format.printf "naive:  %6d bytes  %5.1f ms  %d results@." out1.stats.bytes
      out1.elapsed_ms (List.length out1.results);
    match Algebra.Rewrite.r11_push_selection naive with
    | [ r ] ->
        let sys2 = build () in
        if trace then
          Net.Stats.set_tracing (Net.Sim.stats (Runtime.System.sim sys2)) true;
        let out2 = Runtime.Exec.run_to_quiescence ~reset_stats:false sys2 ~ctx:p1 r.result in
        warn_truncated "pushed" out2;
        Format.printf "pushed: %6d bytes  %5.1f ms  %d results@."
          out2.stats.bytes out2.elapsed_ms
          (List.length out2.results);
        Format.printf "same answers: %b; bytes ratio: %.1fx@."
          (Xml.Canonical.equal_forest out1.results out2.results)
          (float_of_int out1.stats.bytes /. float_of_int (max 1 out2.stats.bytes));
        if trace then begin
          Format.printf "@.message trace of the pushed plan:@.";
          List.iter
            (fun e -> Format.printf "  %a@." Net.Stats.pp_trace_entry e)
            (Net.Stats.trace (Net.Sim.stats (Runtime.System.sim sys2)))
        end
    | _ -> prerr_endline "selection not pushable?"
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the Example-1 (pushing selections) demo")
    Term.(const run $ items $ selectivity $ trace)

(* --- trace ------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let trace_cmd =
  let items =
    Arg.(value & opt int 200 & info [ "items" ] ~doc:"Catalog items")
  in
  let selectivity =
    Arg.(value & opt float 0.05 & info [ "selectivity" ] ~doc:"Matching fraction")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace output file")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format" ] ~docv:"chrome|jsonl"
          ~doc:
            "Trace format: $(b,chrome) is the trace_event JSON loadable in \
             Perfetto / chrome://tracing, $(b,jsonl) is one event object per \
             line")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Also write the metrics registry as a JSON array")
  in
  let flush_ms =
    Arg.(
      value & opt float 0.0
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:
            "Batch flush window; a positive value switches on the batched \
             Reliable transport")
  in
  let ack_delay =
    Arg.(
      value & opt float 0.0
      & info [ "ack-delay" ] ~docv:"MS"
          ~doc:
            "Standalone-ack deferral; a positive value switches on the \
             batched Reliable transport")
  in
  let run items selectivity out format metrics_out flush_ms ack_delay =
    (* Example-1 (pushing selections), instrumented: the naive plan and
       the planner's plan run back to back under tracing + metrics, and
       every span of one run carries that run's correlation id. *)
    Obs.Trace.set_enabled true;
    Obs.Trace.clear ();
    Obs.Metrics.set_enabled Obs.Metrics.default true;
    Obs.Metrics.reset Obs.Metrics.default;
    let p1 = Net.Peer_id.of_string "p1" and p2 = Net.Peer_id.of_string "p2" in
    let topo =
      Net.Topology.full_mesh
        ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
        [ p1; p2 ]
    in
    let build () =
      (* The batching knobs imply the Reliable transport: batch frames
         and delayed acks only exist in the sequenced protocol. *)
      let sys =
        if flush_ms > 0.0 || ack_delay > 0.0 then
          Runtime.System.create ~transport:Runtime.System.Reliable ~flush_ms
            ~ack_delay_ms:ack_delay topo
        else Runtime.System.create topo
      in
      let rng = Workload.Rng.create ~seed:2026 in
      let g = Runtime.System.gen_of sys p2 in
      Runtime.System.add_document sys p2 ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity ());
      sys
    in
    let q = Workload.Xml_gen.selection_query () in
    let naive =
      Algebra.Expr.query_at q ~at:p1 ~args:[ Algebra.Expr.doc "cat" ~at:"p2" ]
    in
    let out_naive = Runtime.Exec.run_to_quiescence (build ()) ~ctx:p1 naive in
    let _planned, out_planned = Runtime.Exec.run_optimized (build ()) ~ctx:p1 naive in
    Format.printf "naive:   %6d bytes  %5.1f ms  %d results@."
      out_naive.stats.bytes out_naive.elapsed_ms
      (List.length out_naive.results);
    Format.printf "planned: %6d bytes  %5.1f ms  %d results@."
      out_planned.stats.bytes out_planned.elapsed_ms
      (List.length out_planned.results);
    let events = Obs.Trace.events () in
    write_file out
      (match format with
      | `Chrome -> Obs.Exporter.chrome_trace events
      | `Jsonl -> Obs.Exporter.jsonl events);
    Format.printf "wrote %d trace events to %s@." (List.length events) out;
    Option.iter
      (fun path ->
        write_file path (Obs.Exporter.metrics_json Obs.Metrics.default);
        Format.printf "wrote metrics to %s@." path)
      metrics_out;
    Format.printf "@.%a@." Obs.Metrics.pp_table Obs.Metrics.default;
    (* Cross-checks: the metrics registry must agree byte-for-byte with
       the simulator's own accounting, and at least one correlation id
       must span several peers (a cross-peer causal chain). *)
    let metric_bytes =
      int_of_float (Obs.Metrics.total Obs.Metrics.default ~subsystem:"net" "bytes_sent")
    in
    let stats_bytes = out_naive.stats.bytes + out_planned.stats.bytes in
    Format.printf "bytes: metrics %d, stats %d — %s@." metric_bytes stats_bytes
      (if metric_bytes = stats_bytes then "agree" else "DISAGREE");
    let cross_peer_corr =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (e : Obs.Trace.event) ->
          if e.corr <> 0 then begin
            let peers =
              Option.value ~default:[] (Hashtbl.find_opt tbl e.corr)
            in
            if not (List.mem e.peer peers) then
              Hashtbl.replace tbl e.corr (e.peer :: peers)
          end)
        events;
      Hashtbl.fold
        (fun corr peers acc ->
          if List.length peers >= 2 then corr :: acc else acc)
        tbl []
    in
    (match cross_peer_corr with
    | [] ->
        prerr_endline "error: no correlation id spans more than one peer";
        exit 1
    | corrs ->
        Format.printf "%d correlation id(s) span >=2 peers@."
          (List.length corrs));
    if metric_bytes <> stats_bytes then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the traced Example-1 scenario (naive and planner-optimized) \
          and export the causal trace plus per-peer metrics")
    Term.(
      const run $ items $ selectivity $ out $ format $ metrics_out $ flush_ms
      $ ack_delay)

(* --- chaos ------------------------------------------------------- *)

(* Shared by chaos/scale: turn SLO breaches into a distinct exit code
   (3).  The breach test reads the runtime's own counters — unserved
   requests, abandoned reliable deliveries, budget exhaustion — so it
   holds with every observability layer off; the matching trace
   instants (cat "slo") are the sampled, inspectable view of the same
   moments. *)
let slo_arg =
  Arg.(
    value & flag
    & info [ "slo" ]
        ~doc:
          "Exit with code 3 when the run breached an SLO: unserved \
           requests, abandoned reliable deliveries, or event-budget \
           exhaustion (computed from runtime counters, independent of \
           telemetry)")

(* Shared by chaos and scale: the wire format is orthogonal to the
   transport, so every command that builds a system takes both. *)
let wire_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("xml", Runtime.System.Xml);
             ("binary", Runtime.System.Binary);
             ("binary-strict", Runtime.System.Binary_strict);
           ])
        Runtime.System.Xml
    & info [ "wire" ] ~docv:"FORMAT"
        ~doc:
          "Wire format for byte accounting: $(b,xml) (the textual \
           serialization model), $(b,binary) (compact frames, \
           DESIGN.md \xC2\xA716), or $(b,binary-strict) (binary plus a full \
           encode/decode round-trip of every transmission).  The \
           delivered results and the final \xCE\xA3 are wire-independent.")

let chaos_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault plan seed") in
  let drop =
    Arg.(
      value & opt float 0.2
      & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Use the Raw transport under the same faults (ablation; \
             divergence is expected and does not fail the command)")
  in
  let flush_ms =
    Arg.(
      value & opt float 0.0
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:
            "Batch flush window for the system under test; a positive value \
             switches the Reliable transport into batched mode (ignored \
             with $(b,--raw))")
  in
  let ack_delay =
    Arg.(
      value & opt float 0.0
      & info [ "ack-delay" ] ~docv:"MS"
          ~doc:
            "Standalone-ack deferral for the system under test; a positive \
             value switches the Reliable transport into batched mode \
             (ignored with $(b,--raw))")
  in
  let run seed drop raw flush_ms ack_delay wire slo =
    (* Three-peer reference Σ (the V-series shape): catalog at p2,
       orders at p3, a declarative service at p2, a collector inbox at
       p3 for the forwarded stream. *)
    let p1 = Net.Peer_id.of_string "p1"
    and p2 = Net.Peer_id.of_string "p2"
    and p3 = Net.Peer_id.of_string "p3" in
    let topo =
      Net.Topology.full_mesh
        ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
        [ p1; p2; p3 ]
    in
    let catalog_xml =
      {|<catalog><item k="y"><name>alpha</name></item><item k="n"><name>beta</name></item><item k="y"><name>gamma</name></item></catalog>|}
    in
    let orders_xml =
      {|<orders><order item="alpha"/><order item="gamma"/><order item="zeta"/></orders>|}
    in
    (* The reference runs stay on the unbatched per-message protocol
       and the XML wire: the check is that a batched (or binary-wire)
       faulty run still reproduces the plain fault-free answer, not a
       twin of itself. *)
    let build ?(flush_ms = 0.0) ?(ack_delay_ms = 0.0)
        ?(wire = Runtime.System.Xml) transport =
      let sys =
        Runtime.System.create ~transport ~wire ~flush_ms ~ack_delay_ms topo
      in
      Runtime.System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
      Runtime.System.load_document sys p3 ~name:"orders" ~xml:orders_xml;
      Runtime.System.add_service sys p2
        (Doc.Service.declarative ~name:"find_wanted"
           (Query.Parser.parse_exn
              {|query(1) for $x in $0//item where attr($x, "k") = "y" return <found>{$x}</found>|}));
      let inbox_gen = Xml.Node_id.Gen.create ~namespace:"chaos-inbox" in
      let inbox = Xml.Tree.element_of_string ~gen:inbox_gen "inbox" [] in
      let inbox_id = Option.get (Xml.Tree.id inbox) in
      Runtime.System.add_document sys p3 ~name:"collector" inbox;
      (sys, inbox_id)
    in
    let plans inbox_id =
      [
        ( "two-site-join",
          Algebra.Expr.query_at
            (Query.Parser.parse_exn
               {|query(2) for $o in $0//order, $i in $1//item, $n in $i/name where attr($o, "item") = text($n) return <match>{$n}</match>|})
            ~at:p1
            ~args:
              [
                Algebra.Expr.doc "orders" ~at:"p3";
                Algebra.Expr.doc "cat" ~at:"p2";
              ] );
        ( "sc-with-forward",
          Algebra.Expr.sc
            (Doc.Sc.make
               ~forward:[ Doc.Names.Node_ref.make ~node:inbox_id ~peer:p3 ]
               ~provider:(Doc.Names.At p2) ~service:"find_wanted"
               [ [ Xml.Parser.parse_exn ~gen:(Xml.Node_id.Gen.create ~namespace:"arg") catalog_xml ] ])
            ~at:p1 );
        ("plain-transfer", Algebra.Expr.send_to_peer p1 (Algebra.Expr.doc "cat" ~at:"p2"));
      ]
    in
    let fault =
      Net.Fault.make
        ~profile:
          { Net.Fault.drop; duplicate = drop /. 4.0; jitter_ms = 2.0 }
        ~quiet_after_ms:600.0 ~seed ()
    in
    let transport = if raw then Runtime.System.Raw else Runtime.System.Reliable in
    Format.printf
      "fault plan: seed=%d drop=%.2f duplicate=%.2f transport=%s wire=%s%s@.@."
      seed drop (drop /. 4.0)
      (if raw then "raw" else "reliable")
      (match wire with
      | Runtime.System.Xml -> "xml"
      | Runtime.System.Binary -> "binary"
      | Runtime.System.Binary_strict -> "binary-strict")
      (if (not raw) && (flush_ms > 0.0 || ack_delay > 0.0) then
         Printf.sprintf " (batched: flush %g ms, ack delay %g ms)" flush_ms
           ack_delay
       else "");
    let divergent = ref 0 in
    let abandoned_total = ref 0 and unfinished = ref 0 in
    Format.printf "  %-16s %-8s %6s %6s %6s %6s %9s %9s@." "plan" "answer"
      "drops" "retx" "dups" "aband" "ref ms" "fault ms";
    List.iter
      (fun (name, plan) ->
        let ref_sys, _ = build Runtime.System.Reliable in
        let ref_out = Runtime.Exec.run_to_quiescence ref_sys ~ctx:p1 plan in
        let ref_fp = Runtime.System.fingerprint ref_sys in
        let sys, _ = build ~flush_ms ~ack_delay_ms:ack_delay ~wire transport in
        Runtime.System.inject_faults sys fault;
        let out = Runtime.Exec.run_to_quiescence sys ~ctx:p1 plan in
        let rc = Runtime.System.reliability_counters sys in
        abandoned_total := !abandoned_total + rc.Runtime.System.abandoned;
        if not out.finished then incr unfinished;
        let ok =
          out.finished
          && Xml.Canonical.equal_forest ref_out.results out.results
          && String.equal ref_fp (Runtime.System.fingerprint sys)
        in
        if not ok then incr divergent;
        Format.printf "  %-16s %-8s %6d %6d %6d %6d %9.1f %9.1f@." name
          (if ok then "same" else "DIFFERS")
          out.stats.drops rc.Runtime.System.retransmits
          rc.Runtime.System.dup_suppressed rc.Runtime.System.abandoned
          ref_out.elapsed_ms out.elapsed_ms)
      (let _, inbox_id = build transport in
       plans inbox_id);
    if raw then
      Format.printf
        "@.%d/3 plan(s) diverged under the raw transport (ablation)@."
        !divergent
    else if !divergent > 0 then begin
      Format.eprintf
        "@.error: %d plan(s) diverged under the reliable transport@."
        !divergent;
      exit 1
    end
    else Format.printf "@.all plans match the fault-free runs@.";
    if slo then begin
      if !abandoned_total > 0 || !unfinished > 0 then begin
        Format.eprintf
          "SLO breach: %d abandoned delivery(ies), %d unfinished plan(s)@."
          !abandoned_total !unfinished;
        exit 3
      end
      else Format.printf "SLO: no breaches@."
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the reference plans under a seeded fault plan and check the \
          reliable transport reproduces the fault-free answers")
    Term.(
      const run $ seed $ drop $ raw $ flush_ms $ ack_delay $ wire_arg $ slo_arg)

(* --- scale ------------------------------------------------------- *)

let scale_cmd =
  let peers =
    Arg.(
      value & opt int 100
      & info [ "peers" ] ~docv:"N"
          ~doc:
            "Total peer count: one publisher, $(b,--subscribers) \
             subscribers, and the rest mirrors")
  in
  let subscribers =
    Arg.(
      value & opt int 80
      & info [ "subscribers" ] ~docv:"M" ~doc:"Subscriber count")
  in
  let requests =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per subscriber")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed") in
  let reliable =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:"Use the Reliable transport (default: Raw)")
  in
  let run peers subscribers requests seed reliable wire slo =
    let mirrors = peers - subscribers - 1 in
    if mirrors < 1 then begin
      prerr_endline
        "error: --peers must exceed --subscribers by at least 2 (one \
         publisher, one mirror)";
      exit 1
    end;
    let transport =
      if reliable then Runtime.System.Reliable else Runtime.System.Raw
    in
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors ~subscribers
        ~requests_per_subscriber:requests ~transport ~wire ~seed ()
    in
    let sys = fc.Workload.Scenarios.fc_system in
    let budget = (8 * fc.Workload.Scenarios.fc_requests) + (40 * peers) + 10_000 in
    (* Simulation-scale nursery: keeps the ~[subscribers] concurrent
       requests' in-flight state from being promoted wholesale (see
       bench E20). *)
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
    let w0 = Gc.minor_words () in
    let wall0 = Sys.time () in
    let outcome, events = Runtime.System.run ~max_events:budget sys in
    let wall = Sys.time () -. wall0 in
    let words = Gc.minor_words () -. w0 in
    (match outcome with
    | `Quiescent -> ()
    | `Budget_exhausted ->
        Format.eprintf "warning: event budget (%d) exhausted@." budget);
    let stats = Runtime.System.stats sys in
    let completed = !(fc.Workload.Scenarios.fc_completed) in
    Format.printf
      "peers %d (1 publisher, %d mirrors, %d subscribers), seed %d, %s \
       transport@."
      peers mirrors subscribers seed
      (if reliable then "reliable" else "raw");
    (match wire with
    | Runtime.System.Xml -> ()
    | Runtime.System.Binary -> Format.printf "wire      binary@."
    | Runtime.System.Binary_strict -> Format.printf "wire      binary-strict@.");
    Format.printf "requests  %d issued, %d completed, %d unserved@."
      fc.Workload.Scenarios.fc_requests completed
      !(fc.Workload.Scenarios.fc_unserved);
    Format.printf "events    %d (%.0f events/sec, %.3f s wall, %.1f words/event)@."
      events
      (float_of_int events /. Float.max 1e-9 wall)
      wall
      (words /. float_of_int (max 1 events));
    Format.printf "completion_ms %.0f@." stats.Net.Stats.completion_ms;
    (* Per-tier byte totals: aggregate the per-link matrix by the tier
       of each endpoint. *)
    let tier_of =
      let tiers = Hashtbl.create (2 * peers) in
      Hashtbl.replace tiers
        (Net.Peer_id.index fc.Workload.Scenarios.fc_publisher)
        "publisher";
      List.iter
        (fun m -> Hashtbl.replace tiers (Net.Peer_id.index m) "mirror")
        fc.Workload.Scenarios.fc_mirrors;
      List.iter
        (fun s -> Hashtbl.replace tiers (Net.Peer_id.index s) "subscriber")
        fc.Workload.Scenarios.fc_subscribers;
      fun p ->
        Option.value ~default:"?"
          (Hashtbl.find_opt tiers (Net.Peer_id.index p))
    in
    let totals = Hashtbl.create 8 in
    List.iter
      (fun ((src, dst), (msgs, bytes)) ->
        let key = (tier_of src, tier_of dst) in
        let m0, b0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt totals key)
        in
        Hashtbl.replace totals key (m0 + msgs, b0 + bytes))
      stats.Net.Stats.per_link;
    Format.printf "@.%-24s %10s %14s@." "tier" "messages" "bytes";
    List.iter
      (fun ((src, dst), (msgs, bytes)) ->
        Format.printf "%-24s %10d %14d@."
          (src ^ " -> " ^ dst)
          msgs bytes)
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []));
    (if slo then begin
       let rc = Runtime.System.reliability_counters sys in
       let unserved = !(fc.Workload.Scenarios.fc_unserved) in
       let exhausted = outcome = `Budget_exhausted in
       if unserved > 0 || rc.Runtime.System.abandoned > 0 || exhausted then begin
         Format.eprintf
           "SLO breach: %d unserved request(s), %d abandoned \
            delivery(ies)%s@."
           unserved rc.Runtime.System.abandoned
           (if exhausted then ", event budget exhausted" else "");
         exit 3
       end
       else Format.printf "SLO: no breaches@."
     end);
    if completed < fc.Workload.Scenarios.fc_requests then begin
      Format.eprintf "error: %d request(s) never completed@."
        (fc.Workload.Scenarios.fc_requests - completed);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run the web-scale flash-crowd scenario (one publisher, a mirror \
          pool behind a generic fetch class, a subscriber crowd) and print \
          throughput plus per-tier traffic totals")
    Term.(
      const run $ peers $ subscribers $ requests $ seed $ reliable $ wire_arg
      $ slo_arg)

(* --- place ------------------------------------------------------- *)

(* The placement analogue of scale: run the hotspot scenario twice on
   the identical shape and seed — static placement (seeded Random
   reader picks, no controller) and adaptive (load-steered picks plus
   the DESIGN.md §17 migration controller) — and print read-latency
   tails, traffic totals and the adaptive arm's migration schedule.
   The two arms must agree on the final Σ content fingerprint: the
   controller moves replicas, never answers. *)

let place_cmd =
  let owners =
    Arg.(
      value & opt int 4
      & info [ "owners" ] ~docv:"N" ~doc:"Document-owning peers")
  in
  let spares =
    Arg.(
      value & opt int 2
      & info [ "spares" ] ~docv:"N"
          ~doc:"Idle storage peers — natural migration targets")
  in
  let readers =
    Arg.(value & opt int 16 & info [ "readers" ] ~docv:"N" ~doc:"Reader peers")
  in
  let docs =
    Arg.(
      value & opt int 12
      & info [ "docs" ] ~docv:"N"
          ~doc:"Documents; 10% are hot and draw 90% of reads")
  in
  let reads =
    Arg.(
      value & opt int 10
      & info [ "reads" ] ~docv:"R" ~doc:"Reads per reader (closed loop)")
  in
  let appends =
    Arg.(
      value & opt int 4
      & info [ "appends" ] ~docv:"K"
          ~doc:"Streaming appends per hot document")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Scenario seed") in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Inject a chaos plan aimed at the hotspot: random drops, \
             duplicates and jitter quiet by 400 ms, plus a 150 ms \
             partition of the hottest document's owner — the same plan \
             on both arms")
  in
  let run owners spares readers docs reads appends seed chaos wire slo =
    if owners < 1 || spares < 1 || readers < 1 || docs < 1 then begin
      prerr_endline "error: --owners, --spares, --readers and --docs must be >= 1";
      exit 1
    end;
    let pct l q =
      match List.sort compare l with
      | [] -> Float.nan
      | sorted ->
          let a = Array.of_list sorted in
          let n = Array.length a in
          let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
          a.(max 0 (min (n - 1) i))
    in
    let run_arm adaptive =
      let reg = Obs.Timeseries.default in
      if adaptive then begin
        Obs.Timeseries.set_window reg 10.0;
        Obs.Timeseries.set_enabled reg true
      end;
      Fun.protect
        ~finally:(fun () ->
          Obs.Timeseries.set_enabled reg false;
          Obs.Timeseries.set_window reg 100.0)
      @@ fun () ->
      let hs =
        Workload.Scenarios.hotspot ~owners ~spares ~readers ~docs
          ~hot_fraction:0.1 ~hot_share:0.9 ~reads_per_reader:reads ~appends
          ~append_every_ms:10.0 ~payload_bytes:1024 ~think_ms:2.0
          ~arrival_window_ms:100.0 ~steered:adaptive ~cpu_ms_per_kb:3.0 ~wire
          ~seed ()
      in
      let sys = hs.Workload.Scenarios.hs_system in
      let storage =
        hs.Workload.Scenarios.hs_owners @ hs.Workload.Scenarios.hs_spares
      in
      let ctl =
        if adaptive then
          Some
            (Runtime.Placement.enable
               ~cfg:
                 {
                   Runtime.Placement.default_config with
                   tick_ms = 20.0;
                   windows = 3;
                   hot_rate = 100.0;
                   migrations_per_tick = 2;
                   seed = seed + 99;
                   eligible =
                     Some (fun p -> List.exists (Net.Peer_id.equal p) storage);
                 }
               sys)
        else None
      in
      if chaos then begin
        (* Aim the partition at the hottest document's owner: the worst
           place a fault can land for static placement, and exactly the
           load the controller is supposed to route around. *)
        let hot_owner =
          match hs.Workload.Scenarios.hs_hot with
          | h :: _ -> List.assoc h hs.Workload.Scenarios.hs_docs
          | [] -> List.hd hs.Workload.Scenarios.hs_owners
        in
        Runtime.System.inject_faults sys
          (Net.Fault.make
             ~profile:
               { Net.Fault.drop = 0.12; duplicate = 0.04; jitter_ms = 2.0 }
             ~events:
               [
                 Net.Fault.Partition
                   {
                     island = [ hot_owner ];
                     window = Net.Fault.window ~from_ms:100.0 ~until_ms:250.0;
                   };
               ]
             ~quiet_after_ms:400.0 ~seed:(seed + 23) ())
      end;
      let outcome, events = Runtime.System.run sys in
      let stats = Runtime.System.stats sys in
      let rc = Runtime.System.reliability_counters sys in
      (hs, ctl, outcome, events, stats, rc,
       Runtime.System.content_fingerprint sys)
    in
    let hs_s, _, out_s, events_s, stats_s, rc_s, fp_s = run_arm false in
    let hs_a, ctl_a, out_a, events_a, stats_a, rc_a, fp_a = run_arm true in
    Format.printf
      "hotspot: %d owners, %d spares, %d readers, %d docs (10%% hot / 90%% \
       of reads), %d reads/reader, seed %d%s@.@."
      owners spares readers docs reads seed
      (if chaos then ", chaos plan on" else "");
    let p95_of (hs : Workload.Scenarios.hotspot) =
      pct !(hs.Workload.Scenarios.hs_latencies) 0.95
    in
    let row arm (hs : Workload.Scenarios.hotspot) out events
        (stats : Net.Stats.snapshot) migr =
      let lats = !(hs.Workload.Scenarios.hs_latencies) in
      Format.printf
        "%-9s served %d/%d (unserved %d), p50 %.1f p95 %.1f p99 %.1f ms, \
         %d msgs, %d bytes, %d migration(s), %s@."
        arm
        !(hs.Workload.Scenarios.hs_completed)
        hs.Workload.Scenarios.hs_requests
        !(hs.Workload.Scenarios.hs_unserved)
        (pct lats 0.50) (pct lats 0.95) (pct lats 0.99)
        stats.Net.Stats.messages stats.Net.Stats.bytes migr
        (match out with
        | `Quiescent -> Printf.sprintf "quiescent in %d events" events
        | `Budget_exhausted -> "BUDGET EXHAUSTED")
    in
    row "static" hs_s out_s events_s stats_s 0;
    let migr =
      match ctl_a with
      | Some c -> (Runtime.Placement.stats c).Runtime.Placement.s_committed
      | None -> 0
    in
    row "adaptive" hs_a out_a events_a stats_a migr;
    (match ctl_a with
    | Some c ->
        Format.printf "@.migration schedule:@.%a@." Runtime.Placement.pp_schedule c
    | None -> ());
    let sigma_agree = String.equal fp_s fp_a in
    Format.printf "\xCE\xA3 content %s across arms (%s)@."
      (if sigma_agree then "agrees" else "DIFFERS")
      (String.sub fp_a 0 (min 12 (String.length fp_a)));
    (* The SLO judges the controller arm: the static baseline is
       allowed to fail under chaos — that failure is the point. *)
    ignore rc_s;
    let unserved = !(hs_a.Workload.Scenarios.hs_unserved) in
    let abandoned = rc_a.Runtime.System.abandoned in
    let tail_regressed =
      let s = p95_of hs_s and a = p95_of hs_a in
      Float.is_nan s || Float.is_nan a || a > 1.1 *. s
    in
    (if slo then
       if (not sigma_agree) || unserved > 0 || abandoned > 0 || tail_regressed
       then begin
         Format.eprintf
           "SLO breach: %s%d unserved read(s), %d abandoned delivery(ies)%s@."
           (if sigma_agree then "" else "\xCE\xA3 mismatch, ")
           unserved abandoned
           (if tail_regressed then
              ", adaptive p95 above 1.1x the static tail"
            else "");
         exit 3
       end
       else Format.printf "SLO: no breaches@.");
    if
      (not sigma_agree)
      || !(hs_a.Workload.Scenarios.hs_completed)
         < hs_a.Workload.Scenarios.hs_requests
    then begin
      Format.eprintf
        "error: arms disagree on \xCE\xA3 or adaptive reads never completed@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Run the hotspot scenario under static and adaptive placement on \
          the same seed, print latency tails, traffic and the migration \
          schedule, and cross-check the final \xCE\xA3 content fingerprints")
    Term.(
      const run $ owners $ spares $ readers $ docs $ reads $ appends $ seed
      $ chaos $ wire_arg $ slo_arg)

(* --- cache ------------------------------------------------------- *)

let cache_cmd =
  let sources =
    Arg.(
      value & opt int 3
      & info [ "sources" ] ~docv:"N" ~doc:"Catalog-owning source peers")
  in
  let subscribers =
    Arg.(
      value & opt int 12
      & info [ "subscribers" ] ~docv:"N" ~doc:"Subscriber peers")
  in
  let queries =
    Arg.(
      value & opt int 3
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Queries per subscriber slate (re-issued every round)")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds")
  in
  let overlap =
    Arg.(
      value & opt float 0.6
      & info [ "overlap" ] ~docv:"PCT"
          ~doc:
            "Fraction of slate draws taken from the shared query pool \
             (0..1) — the cross-plan sharing the cache exploits")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Scenario seed") in
  let off =
    Arg.(
      value & flag
      & info [ "off" ]
          ~doc:"Run only the cache-off baseline (no comparison arm)")
  in
  let run sources subscribers queries rounds overlap seed off slo =
    if sources < 1 || subscribers < 1 || queries < 1 || rounds < 1 then begin
      prerr_endline
        "error: --sources, --subscribers, --queries and --rounds must be >= 1";
      exit 1
    end;
    if overlap < 0.0 || overlap > 1.0 then begin
      prerr_endline "error: --overlap must be within 0..1";
      exit 1
    end;
    let pct l q =
      match List.sort compare l with
      | [] -> Float.nan
      | sorted ->
          let a = Array.of_list sorted in
          let n = Array.length a in
          let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
          a.(max 0 (min (n - 1) i))
    in
    let run_arm cache =
      let ov =
        Workload.Scenarios.overlap ~sources ~subscribers
          ~queries_per_subscriber:queries ~rounds ~overlap_pct:overlap ~cache
          ~seed ()
      in
      let sys = ov.Workload.Scenarios.ov_system in
      let outcome, events = Runtime.System.run sys in
      ( ov, outcome, events,
        Runtime.System.stats sys,
        Runtime.System.qcache_stats sys,
        List.sort String.compare !(ov.Workload.Scenarios.ov_digests),
        Runtime.System.content_fingerprint sys )
    in
    Format.printf
      "overlap: %d sources, %d subscribers x %d queries x %d rounds, %.0f%% \
       pool overlap, seed %d@.@."
      sources subscribers queries rounds (overlap *. 100.0) seed;
    let row arm (ov : Workload.Scenarios.overlap) out events
        (stats : Net.Stats.snapshot) (qs : Query.Qcache.stats) =
      let lats = !(ov.Workload.Scenarios.ov_latencies) in
      Format.printf
        "%-9s completed %d/%d, p50 %.1f p95 %.1f ms, %d msgs, %d bytes, \
         done %.1f ms, %d hit(s) / %d miss(es), %d invalidation(s), %s@."
        arm
        !(ov.Workload.Scenarios.ov_completed)
        ov.Workload.Scenarios.ov_requests (pct lats 0.50) (pct lats 0.95)
        stats.Net.Stats.messages stats.Net.Stats.bytes
        stats.Net.Stats.completion_ms qs.Query.Qcache.hits
        qs.Query.Qcache.misses
        (qs.Query.Qcache.invalidations + qs.Query.Qcache.stale_drops)
        (match out with
        | `Quiescent -> Printf.sprintf "quiescent in %d events" events
        | `Budget_exhausted -> "BUDGET EXHAUSTED")
    in
    let ov_off, out_off, events_off, stats_off, qs_off, digests_off, fp_off =
      run_arm false
    in
    row "cache-off" ov_off out_off events_off stats_off qs_off;
    let complete (ov : Workload.Scenarios.overlap) out =
      out = `Quiescent
      && !(ov.Workload.Scenarios.ov_completed)
         = ov.Workload.Scenarios.ov_requests
    in
    if off then begin
      if not (complete ov_off out_off) then begin
        Format.eprintf "error: the baseline never completed@.";
        exit 1
      end
    end
    else begin
      let ov_on, out_on, events_on, stats_on, qs_on, digests_on, fp_on =
        run_arm true
      in
      row "cache-on" ov_on out_on events_on stats_on qs_on;
      let digests_agree = digests_off = digests_on in
      let sigma_agree = String.equal fp_off fp_on in
      Format.printf
        "@.per-request digests %s across arms; \xCE\xA3 content %s (%s)@."
        (if digests_agree then "byte-identical" else "DIFFER")
        (if sigma_agree then "agrees" else "DIFFERS")
        (String.sub fp_on 0 (min 12 (String.length fp_on)));
      if stats_off.Net.Stats.bytes > 0 then
        Format.printf
          "cache-on: %.2fx bytes, %.2fx completion, hit rate %.0f%%@."
          (float_of_int stats_on.Net.Stats.bytes
          /. float_of_int stats_off.Net.Stats.bytes)
          (stats_on.Net.Stats.completion_ms
          /. Float.max 1.0 stats_off.Net.Stats.completion_ms)
          (100.0
          *. float_of_int qs_on.Query.Qcache.hits
          /. Float.max 1.0
               (float_of_int (qs_on.Query.Qcache.hits + qs_on.Query.Qcache.misses))
          );
      (* The SLO judges the cached arm: results must be byte-identical
         to the baseline and the cache must actually serve — a cache
         that is never hit is misconfigured, not conservative. *)
      (if slo then
         if
           (not digests_agree) || (not sigma_agree)
           || qs_on.Query.Qcache.hits = 0
         then begin
           Format.eprintf "SLO breach: %s%s%s@."
             (if digests_agree then "" else "result digests differ, ")
             (if sigma_agree then "" else "\xCE\xA3 mismatch, ")
             (if qs_on.Query.Qcache.hits = 0 then "zero cache hits" else "")
           |> ignore;
           exit 3
         end
         else Format.printf "SLO: no breaches@.");
      if
        (not digests_agree) || (not sigma_agree)
        || not (complete ov_off out_off && complete ov_on out_on)
      then begin
        Format.eprintf
          "error: arms disagree on results/\xCE\xA3 or never completed@.";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Run the overlapping-subscription workload with the semantic \
          result cache off and on under the same seed, print traffic, \
          completion and hit/invalidation counters, and cross-check that \
          the per-request result digests and the final \xCE\xA3 content are \
          byte-identical across the arms")
    Term.(
      const run $ sources $ subscribers $ queries $ rounds $ overlap $ seed
      $ off $ slo_arg)

(* --- top --------------------------------------------------------- *)

let top_cmd =
  let peers =
    Arg.(
      value & opt int 100
      & info [ "peers" ] ~docv:"N" ~doc:"Total peer count (as in scale)")
  in
  let subscribers =
    Arg.(
      value & opt int 80
      & info [ "subscribers" ] ~docv:"M" ~doc:"Subscriber count")
  in
  let requests =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per subscriber")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed") in
  let reliable =
    Arg.(
      value & flag
      & info [ "reliable" ] ~doc:"Use the Reliable transport (default: Raw)")
  in
  let interval =
    Arg.(
      value & opt float 100.0
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Telemetry window width (virtual milliseconds)")
  in
  let rows =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"N"
          ~doc:"Table rows: the N peers with the highest transmit rate")
  in
  let sample =
    Arg.(
      value & opt int 64
      & info [ "sample" ] ~docv:"K"
          ~doc:
            "Trace head sampling: keep one correlation id in K (whole \
             cross-peer computations kept or dropped atomically); 0 \
             disables tracing entirely")
  in
  let json =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the table as a JSON object")
  in
  let run peers subscribers requests seed reliable interval rows sample json =
    let mirrors = peers - subscribers - 1 in
    if mirrors < 1 then begin
      prerr_endline
        "error: --peers must exceed --subscribers by at least 2 (one \
         publisher, one mirror)";
      exit 1
    end;
    (* Full observability stack: cumulative metrics, windowed series at
       the requested interval, and sampled tracing (viable at 10^3
       peers precisely because sampled-out events allocate nothing). *)
    let reg = Obs.Timeseries.default in
    Obs.Metrics.set_enabled Obs.Metrics.default true;
    Obs.Metrics.reset Obs.Metrics.default;
    Obs.Timeseries.set_window reg interval;
    Obs.Timeseries.set_enabled reg true;
    Obs.Timeseries.reset reg;
    if sample > 0 then begin
      Obs.Trace.set_enabled true;
      Obs.Trace.clear ();
      Obs.Trace.set_sampling ~seed ~keep_one_in:sample ()
    end
    else Obs.Trace.set_enabled false;
    let transport =
      if reliable then Runtime.System.Reliable else Runtime.System.Raw
    in
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors ~subscribers
        ~requests_per_subscriber:requests ~transport ~seed ()
    in
    let sys = fc.Workload.Scenarios.fc_system in
    let budget = (8 * fc.Workload.Scenarios.fc_requests) + (40 * peers) + 10_000 in
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
    let outcome, events = Runtime.System.run ~max_events:budget sys in
    let stats = Runtime.System.stats sys in
    let rc = Runtime.System.reliability_counters sys in
    (* Read the rings back.  [now] is the virtual end of the run; rates
       cover the complete windows the ring still holds, quantiles merge
       every live window's histogram. *)
    let now = Obs.Timeseries.now reg in
    let windows = Obs.Timeseries.ring_size reg in
    let cur = Obs.Timeseries.epoch_of reg now in
    let sum_rate key =
      (* Bytes/sec analogue of [Timeseries.rate]: total of w_sum over
         the complete windows preceding the current one. *)
      let total = ref 0.0 in
      for e = max 0 (cur - windows + 1) to cur - 1 do
        match Obs.Timeseries.read_window reg key ~epoch:e with
        | Some a -> total := !total +. a.Obs.Timeseries.w_sum
        | None -> ()
      done;
      !total /. (float_of_int (windows - 1) *. interval /. 1000.0)
    in
    let peak key =
      let best = ref 0.0 in
      for e = max 0 (cur - windows + 1) to cur do
        match Obs.Timeseries.read_window reg key ~epoch:e with
        | Some a when a.Obs.Timeseries.w_count > 0 ->
            if a.Obs.Timeseries.w_max > !best then best := a.Obs.Timeseries.w_max
        | _ -> ()
      done;
      !best
    in
    let all_keys = Obs.Timeseries.keys reg in
    let all_peers =
      (fc.Workload.Scenarios.fc_publisher, "publisher")
      :: List.map (fun m -> (m, "mirror")) fc.Workload.Scenarios.fc_mirrors
      @ List.map (fun s -> (s, "subscriber")) fc.Workload.Scenarios.fc_subscribers
    in
    let row (p, tier) =
      let name = Net.Peer_id.to_string p in
      let k suffix = "peer/" ^ name ^ "/" ^ suffix in
      let tx = Obs.Timeseries.rate reg (k "tx") ~now ~windows:(windows - 1) in
      let kb = sum_rate (k "tx") /. 1024.0 in
      let p95 =
        Obs.Timeseries.quantile reg (k "latency_ms") ~now ~windows ~q:0.95
      in
      let p99 =
        Obs.Timeseries.quantile reg (k "latency_ms") ~now ~windows ~q:0.99
      in
      let inflight =
        (* Peak of the per-link in-flight gauges departing this peer
           (recorded by the Reliable transport; 0 under Raw). *)
        let prefix = "net/link/" ^ name ^ "->" in
        List.fold_left
          (fun acc key ->
            if
              String.starts_with ~prefix key
              && String.ends_with ~suffix:"/inflight" key
            then Float.max acc (peak key)
            else acc)
          0.0 all_keys
      in
      let counter n =
        Obs.Metrics.counter_value Obs.Metrics.default ~peer:name
          ~subsystem:"net" n
      in
      (name, tier, tx, kb, p95, p99, inflight, counter "retransmits",
       counter "drops")
    in
    let ranked =
      List.map row all_peers
      |> List.sort (fun (n1, _, tx1, _, _, _, _, _, _) (n2, _, tx2, _, _, _, _, _, _) ->
             match compare tx2 tx1 with 0 -> compare n1 n2 | c -> c)
    in
    let shown = List.filteri (fun i _ -> i < rows) ranked in
    let trace_events = if sample > 0 then Obs.Trace.events () else [] in
    let sampled_span =
      match trace_events with
      | [] -> 0.0
      | e0 :: rest ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (e : Obs.Trace.event) ->
                (Float.min lo e.ts_ms, Float.max hi (e.ts_ms +. e.dur_ms)))
              (e0.Obs.Trace.ts_ms, e0.Obs.Trace.ts_ms +. e0.Obs.Trace.dur_ms)
              rest
          in
          hi -. lo
    in
    if json then begin
      let b = Buffer.create 4096 in
      let esc s = Obs.Exporter.json_escape s in
      Buffer.add_string b
        (Printf.sprintf
           "{\"schema_version\":2,\"peers\":%d,\"mirrors\":%d,\"subscribers\":%d,\
            \"seed\":%d,\"transport\":\"%s\",\"window_ms\":%g,\"windows\":%d,"
           peers mirrors subscribers seed
           (if reliable then "reliable" else "raw")
           interval windows);
      Buffer.add_string b
        (Printf.sprintf
           "\"requests\":{\"issued\":%d,\"completed\":%d,\"unserved\":%d},"
           fc.Workload.Scenarios.fc_requests
           !(fc.Workload.Scenarios.fc_completed)
           !(fc.Workload.Scenarios.fc_unserved));
      Buffer.add_string b
        (Printf.sprintf
           "\"events\":%d,\"completion_ms\":%.3f,\"budget_exhausted\":%b,\
            \"retransmits\":%d,\"abandoned\":%d,"
           events stats.Net.Stats.completion_ms
           (outcome = `Budget_exhausted)
           rc.Runtime.System.retransmits rc.Runtime.System.abandoned);
      Buffer.add_string b
        (Printf.sprintf
           "\"trace\":{\"keep_one_in\":%d,\"sampled_events\":%d,\
            \"sampled_span_ms\":%.3f},\"rows\":["
           sample (List.length trace_events) sampled_span);
      List.iteri
        (fun i (name, tier, tx, kb, p95, p99, infl, retx, drops) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"peer\":\"%s\",\"tier\":\"%s\",\"tx_per_s\":%.3f,\
                \"kb_per_s\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\
                \"inflight\":%.0f,\"retransmits\":%d,\"drops\":%d}"
               (esc name) (esc tier) tx kb p95 p99 infl retx drops))
        shown;
      Buffer.add_string b "]}";
      print_endline (Buffer.contents b)
    end
    else begin
      Format.printf
        "peers %d (1 publisher, %d mirrors, %d subscribers), seed %d, %s \
         transport, %g ms windows@."
        peers mirrors subscribers seed
        (if reliable then "reliable" else "raw")
        interval;
      Format.printf "requests  %d issued, %d completed, %d unserved@."
        fc.Workload.Scenarios.fc_requests
        !(fc.Workload.Scenarios.fc_completed)
        !(fc.Workload.Scenarios.fc_unserved);
      Format.printf "sim       %.0f ms, %d events%s@."
        stats.Net.Stats.completion_ms events
        (if outcome = `Budget_exhausted then " (budget exhausted)" else "");
      if sample > 0 then
        Format.printf
          "trace     %d sampled event(s) at 1/%d, covering %.0f sim ms@."
          (List.length trace_events) sample sampled_span;
      Format.printf "@.%-12s %-10s %9s %9s %8s %8s %6s %6s %6s@." "peer"
        "tier" "tx/s" "KB/s" "p95 ms" "p99 ms" "infl" "retx" "drops";
      List.iter
        (fun (name, tier, tx, kb, p95, p99, infl, retx, drops) ->
          Format.printf "%-12s %-10s %9.1f %9.2f %8.2f %8.2f %6.0f %6d %6d@."
            (Obs.Exporter.sanitize name)
            (Obs.Exporter.sanitize tier)
            tx kb p95 p99 infl retx drops)
        shown;
      if List.length ranked > rows then
        Format.printf "... %d more peer(s); raise --top to see them@."
          (List.length ranked - rows)
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the flash-crowd scenario with the full observability stack on \
          (metrics, windowed telemetry, sampled tracing) and print a \
          per-peer load table: transmit rates, latency quantiles, in-flight \
          windows, retransmits and drops")
    Term.(
      const run $ peers $ subscribers $ requests $ seed $ reliable $ interval
      $ rows $ sample $ json)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let info = Cmd.info "axmlctl" ~version:"1.0.0" ~doc:"Distributed AXML toolkit" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd;
            query_cmd;
            rules_cmd;
            optimize_cmd;
            explain_cmd;
            demo_cmd;
            trace_cmd;
            chaos_cmd;
            scale_cmd;
            place_cmd;
            cache_cmd;
            top_cmd;
          ]))
