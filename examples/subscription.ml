(* Continuous services: a news-aggregation subscription.

   Source peers expose continuous feeds over their local news
   documents; the aggregator's digest document embeds one service call
   per feed, each with a forward list pointing inside the digest
   itself.  New items flow in as they are published — steps 2-3 of
   call activation "occur repeatedly" (Section 2.2).

     dune exec examples/subscription.exe *)

open Axml
module Scenarios = Workload.Scenarios
module System = Runtime.System

let digest sub =
  match
    System.find_document sub.Scenarios.sub_system sub.Scenarios.sub_aggregator
      sub.Scenarios.sub_digest_doc
  with
  | Some doc -> doc
  | None -> failwith "digest lost"

let show_digest sub =
  let items =
    Xml.Path.select
      (Xml.Path.of_string "/items/news")
      (Doc.Document.root (digest sub))
  in
  Format.printf "digest holds %d item(s):@." (List.length items);
  List.iter
    (fun item ->
      Format.printf "  [%s] %s@."
        (Option.value ~default:"?" (Xml.Tree.attr item "source"))
        (Xml.Tree.text_content item))
    items

let () =
  let sub = Scenarios.subscription ~sources:3 ~seed:7 () in
  let sys = sub.sub_system in
  Format.printf "sources: %s@."
    (String.concat ", "
       (List.map Net.Peer_id.to_string sub.sub_sources));

  (* The initial feed contents arrive when the calls activate. *)
  ignore (System.run sys);
  Format.printf "@.after activation:@.";
  show_digest sub;

  (* Publishing at a source pushes a delta to every subscriber —
     no polling, no re-activation. *)
  Format.printf "@.publishing three more items...@.";
  Scenarios.publish sub ~source:(List.hd sub.sub_sources)
    ~headline:"peer-to-peer XML goes mainstream";
  Scenarios.publish sub
    ~source:(List.nth sub.sub_sources 1)
    ~headline:"algebraic optimizers considered helpful";
  Scenarios.publish sub
    ~source:(List.nth sub.sub_sources 2)
    ~headline:"continuous services never sleep";
  ignore (System.run sys);
  Format.printf "@.after publications:@.";
  show_digest sub;

  let stats = System.stats sys in
  Format.printf
    "@.network: %d messages, %d bytes, quiescent at %.1f ms (simulated)@."
    stats.messages stats.bytes stats.completion_ms
