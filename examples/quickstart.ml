(* Quickstart: two peers, one document, one declarative service, one
   AXML service call — the minimal tour of the framework.

     dune exec examples/quickstart.exe *)

open Axml

let () =
  (* 1. A two-peer network: 10 ms latency, 100 B/ms bandwidth. *)
  let alice = Net.Peer_id.of_string "alice" in
  let bob = Net.Peer_id.of_string "bob" in
  let topology =
    Net.Topology.full_mesh
      ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
      [ alice; bob ]
  in
  let sys = Runtime.System.create topology in

  (* 2. Bob hosts an XML document. *)
  Runtime.System.load_document sys bob ~name:"library"
    ~xml:
      {|<library>
          <book year="1994"><title>Foundations of Databases</title></book>
          <book year="1999"><title>Principles of Distributed Database Systems</title></book>
          <book year="2011"><title>Web Data Management</title></book>
        </library>|};

  (* 3. Bob also offers a declarative service: recent books.  Its
     implementing query is visible to other peers, which is what lets
     the algebra optimize across it. *)
  let recent =
    Query.Parser.parse_exn
      {|query(1) for $b in $0//book where attr($b, "year") >= 1999
        return <recent>{$b}</recent>|}
  in
  Runtime.System.add_service sys bob
    (Doc.Service.declarative ~name:"recent_books" recent);

  (* 4. Alice embeds a service call in one of her documents — Active
     XML's defining feature — and activates it.  The response
     accumulates as siblings of the <sc> element. *)
  Runtime.System.load_document sys alice ~name:"reading_list"
    ~xml:
      {|<reading_list>
          <sc><peer>bob</peer><service>recent_books</service>
              <param1><library>
                <book year="2001"><title>A first taste of XML</title></book>
                <book year="1989"><title>Old tome</title></book>
              </library></param1>
          </sc>
        </reading_list>|};
  let activated = Runtime.System.activate_all sys () in
  Format.printf "activated %d service call(s)@." activated;
  ignore (Runtime.System.run sys);

  (match Runtime.System.find_document sys alice "reading_list" with
  | Some doc ->
      Format.printf "alice's reading list after the call:@.%s@."
        (Doc.Document.to_xml_string doc)
  | None -> assert false);

  (* 5. The same computation as an algebra expression: apply Bob's
     query to Bob's document, from Alice's point of view — then let
     the optimizer find a cheaper equivalent plan. *)
  let plan =
    Algebra.Expr.query_at recent ~at:alice
      ~args:[ Algebra.Expr.doc "library" ~at:"bob" ]
  in
  let env =
    Algebra.Cost.default_env
      ~doc_bytes:(fun _ ->
        match Runtime.System.find_document sys bob "library" with
        | Some d -> Doc.Document.byte_size d
        | None -> 4096)
      topology
  in
  let result =
    Algebra.Optimizer.optimize ~env ~ctx:alice
      (Algebra.Optimizer.Greedy { max_steps = 4 })
      plan
  in
  Format.printf "@.naive plan:     %a@." Algebra.Expr.pp plan;
  Format.printf "optimized plan: %a@." Algebra.Expr.pp result.plan;
  Format.printf "estimated cost: %a -> %a@." Algebra.Cost.pp
    result.initial_cost Algebra.Cost.pp result.cost;

  (* 6. Execute both and compare what actually crossed the wire. *)
  let naive_out = Runtime.Exec.run_to_quiescence sys ~ctx:alice plan in
  let opt_out = Runtime.Exec.run_to_quiescence sys ~ctx:alice result.plan in
  Format.printf "@.measured: naive %d bytes / optimized %d bytes@."
    naive_out.stats.bytes opt_out.stats.bytes;
  Format.printf "same answers: %b (%d results)@."
    (Xml.Canonical.equal_forest naive_out.results opt_out.results)
    (List.length naive_out.results)
