(* The software-distribution application of the paper's introduction
   (the eDos use case), rebuilt on the simulator: mirrors replicate a
   package catalog (a generic document class), expose a declarative
   dependency resolver, and publish update feeds; a client resolves
   packages against *any* mirror and subscribes to updates.

     dune exec examples/software_distribution.exe *)

open Axml
module Scenarios = Workload.Scenarios
module System = Runtime.System
module Expr = Algebra.Expr
module Names = Doc.Names

let () =
  let sd =
    Scenarios.software_distribution ~mirrors:3 ~packages:40
      ~deps_per_package:3 ~seed:2026 ()
  in
  let sys = sd.sd_system in
  Format.printf "mirrors: %s@."
    (String.concat ", " (List.map Net.Peer_id.to_string sd.sd_mirrors));

  (* --- 1. Resolve a request against a specific mirror ----------- *)
  let wanted = [ List.nth sd.sd_packages 5; List.nth sd.sd_packages 21 ] in
  Format.printf "@.resolving %s against mirror0@."
    (String.concat ", " wanted);
  let request = Scenarios.resolution_request sd ~at:sd.sd_client ~wanted in
  let mirror0 = List.hd sd.sd_mirrors in
  let catalog_of m =
    match System.find_document sys m "packages" with
    | Some d -> Doc.Document.root d
    | None -> failwith "mirror lost its catalog"
  in
  let sc =
    Doc.Sc.make ~provider:(Names.At mirror0) ~service:sd.sd_resolve
      [ [ request ]; [ catalog_of mirror0 ] ]
  in
  let out =
    Runtime.Exec.run_to_quiescence sys ~ctx:sd.sd_client
      (Expr.sc sc ~at:sd.sd_client)
  in
  List.iter
    (fun t ->
      List.iter
        (fun pkg ->
          Format.printf "  resolved %s-%s@."
            (Option.value ~default:"?" (Xml.Tree.attr pkg "name"))
            (Option.value ~default:"?" (Xml.Tree.attr pkg "version")))
        (Xml.Path.select (Xml.Path.of_string "/package") t))
    out.results;
  Format.printf "  (%d bytes, %.1f ms simulated)@." out.stats.bytes
    out.elapsed_ms;

  (* --- 2. Resolve against the *generic* catalog: pickDoc chooses a
     mirror (definition (9)); Nearest beats First on this topology. *)
  let resolver =
    Query.Parser.parse_exn
      {|query(2) for $w in $0//want, $p in $1//package
        where attr($w, "name") = attr($p, "name")
        return <resolved>{$p}</resolved>|}
  in
  let generic_plan =
    Expr.query_at resolver ~at:sd.sd_client
      ~args:
        [
          Expr.tree_at
            (Scenarios.resolution_request sd ~at:sd.sd_client ~wanted)
            ~at:sd.sd_client;
          Expr.doc_any sd.sd_catalog_class;
        ]
  in
  List.iter
    (fun (name, policy) ->
      (System.peer sys sd.sd_client).Runtime.Peer.policy <- policy;
      let out = Runtime.Exec.run_to_quiescence sys ~ctx:sd.sd_client generic_plan in
      Format.printf "@.pick policy %-12s -> %d results, %d bytes, %.1f ms@."
        name (List.length out.results) out.stats.bytes out.elapsed_ms)
    [
      ("First", Doc.Generic.First);
      ("Random", Doc.Generic.Random 42);
      ( "Nearest",
        Doc.Generic.Nearest
          {
            from = sd.sd_client;
            topology = Net.Sim.topology (System.sim sys);
            probe_bytes = 4096;
          } );
    ];

  (* --- 3. Subscribe to a mirror's update feed, then publish ----- *)
  Format.printf "@.subscribing to mirror0's update feed@.";
  let g = System.gen_of sys sd.sd_client in
  let inbox = Xml.Tree.element_of_string ~gen:g "inbox" [] in
  let inbox_id = Option.get (Xml.Tree.id inbox) in
  System.add_document sys sd.sd_client ~name:"updates_inbox" inbox;
  let feed_sc =
    Doc.Sc.make
      ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:sd.sd_client ]
      ~provider:(Names.At mirror0) ~service:"update_feed" []
  in
  ignore
    (Runtime.Exec.run_to_quiescence sys ~ctx:sd.sd_client
       (Expr.sc feed_sc ~at:sd.sd_client));
  (* A new package version lands in mirror0's updates document. *)
  let m0 = System.peer sys mirror0 in
  let updates =
    Option.get (Doc.Store.find_by_string m0.Runtime.Peer.store "updates")
  in
  let update_node = Option.get (Xml.Tree.id (Doc.Document.root updates)) in
  let gm = System.gen_of sys mirror0 in
  System.send sys ~src:mirror0 ~dst:mirror0
    (Runtime.Message.Insert
       {
         node = update_node;
         forest =
           Runtime.Message.now
             [
               Xml.Tree.element_of_string ~gen:gm "update"
                 ~attrs:[ ("package", List.hd sd.sd_packages); ("version", "2.0") ]
                 [];
             ];
         notify = None;
       });
  ignore (System.run sys);
  (match System.find_document sys sd.sd_client "updates_inbox" with
  | Some doc ->
      Format.printf "client inbox after publish:@.%s@."
        (Doc.Document.to_xml_string doc)
  | None -> assert false);
  Format.printf "total simulated time: %.1f ms@." (System.now_ms sys)
