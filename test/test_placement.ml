(* Adaptive placement suite (DESIGN.md §17).

   Three layers of assurance for the migration control loop:

   - pure planning: [Placement.plan_tick] over synthetic signal
     snapshots, and the [Load_steered] pick policy over synthetic
     gauges — hot ranking, budget/busy guards, crash skipping, and
     the no-signal fallbacks (a cold or disabled Timeseries must not
     NaN a score or starve a pick);
   - the live handoff protocol: appends streamed into a document
     mid-migration are neither lost nor duplicated (the Σ content
     fingerprint equals the migration-free twin run), and a source
     crash mid-handoff aborts cleanly — the restored source still
     serves, the target keeps no orphan;
   - determinism: same seed, same wire → byte-identical migration
     schedule, Timeseries fingerprint and stats on every wire;
     wires agree on Σ content; different seeds diverge. *)

open Axml
open Helpers
module System = Runtime.System
module Placement = Runtime.Placement
module Message = Runtime.Message
module Failover = Runtime.Failover
module Names = Doc.Names
module Generic = Doc.Generic
module Fault = Net.Fault
module Sim = Net.Sim
module Rng = Net.Rng
module Peer_id = Net.Peer_id
module Ts = Obs.Timeseries
module Scenarios = Workload.Scenarios

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

(* The default registry is global and per-run: size the window, run
   inside, then disable and restore the default width (which also
   clears the data) so no state leaks across tests. *)
let with_telemetry ?(window_ms = 20.0) f =
  let reg = Ts.default in
  Ts.set_window reg window_ms;
  Ts.set_enabled reg true;
  Fun.protect
    ~finally:(fun () ->
      Ts.set_enabled reg false;
      Ts.set_window reg 100.0)
    f

(* --- Load_steered pick policy -------------------------------------- *)

let mirror_catalog () =
  let cat = Generic.create () in
  List.iter
    (fun p ->
      Generic.register_doc cat ~class_name:"m"
        (Names.Doc_ref.at_peer "d" ~peer:p))
    [ "p1"; "p2"; "p3" ];
  cat

let picked_peer = function
  | Some { Names.Doc_ref.at = Names.At p; _ } -> Peer_id.to_string p
  | Some { Names.Doc_ref.at = Names.Any; _ } -> Alcotest.fail "picked @any"
  | None -> Alcotest.fail "no member picked"

let gauge_of alist p = List.assoc_opt (Peer_id.to_string p) alist

let test_steered_picks_least_loaded () =
  let cat = mirror_catalog () in
  let gauge = gauge_of [ ("p1", Some 5.0); ("p2", Some 1.0); ("p3", Some 9.0) ] in
  let pick =
    Generic.pick_doc cat
      ~policy:(Generic.Load_steered { seed = 1; gauge = fun p -> Option.join (gauge p) })
      ~class_name:"m"
  in
  Alcotest.(check string) "least-loaded member wins" "p2" (picked_peer pick)

let test_steered_ignores_non_finite_scores () =
  let cat = mirror_catalog () in
  (* A NaN or infinite reading is "no signal", never a poisoned
     ranking: the finite member must win. *)
  let gauge =
    gauge_of [ ("p1", Some nan); ("p2", Some 3.0); ("p3", Some infinity) ]
  in
  let pick =
    Generic.pick_doc cat
      ~policy:(Generic.Load_steered { seed = 1; gauge = fun p -> Option.join (gauge p) })
      ~class_name:"m"
  in
  Alcotest.(check string) "finite signal wins over NaN/inf" "p2"
    (picked_peer pick)

let test_steered_skips_unavailable_members () =
  let cat = mirror_catalog () in
  let gauge = gauge_of [ ("p1", Some 5.0); ("p2", Some 1.0); ("p3", Some 9.0) ] in
  let available p = Peer_id.to_string p <> "p2" in
  let pick =
    Generic.pick_doc cat ~available
      ~policy:(Generic.Load_steered { seed = 1; gauge = fun p -> Option.join (gauge p) })
      ~class_name:"m"
  in
  Alcotest.(check string) "crashed least-loaded member is skipped" "p1"
    (picked_peer pick)

let test_steered_all_none_falls_back () =
  let cat = mirror_catalog () in
  let policy seed = Generic.Load_steered { seed; gauge = (fun _ -> None) } in
  (* No signal anywhere (telemetry off / cold windows): the pick must
     still resolve, deterministically per seed — the seeded-random
     fallback, not an exception and not None. *)
  let a = picked_peer (Generic.pick_doc cat ~policy:(policy 3) ~class_name:"m") in
  let b = picked_peer (Generic.pick_doc cat ~policy:(policy 3) ~class_name:"m") in
  Alcotest.(check string) "fallback is deterministic per seed" a b;
  let random =
    picked_peer (Generic.pick_doc cat ~policy:(Generic.Random 3) ~class_name:"m")
  in
  Alcotest.(check string) "fallback is the seeded Random rule" random a

let test_steered_unregister_retires_member () =
  let cat = mirror_catalog () in
  Generic.unregister_doc cat ~class_name:"m"
    (Names.Doc_ref.at_peer "d" ~peer:"p2");
  Alcotest.(check int) "two members left" 2
    (List.length (Generic.doc_members cat ~class_name:"m"));
  let gauge = gauge_of [ ("p1", Some 5.0); ("p2", Some 0.0); ("p3", Some 9.0) ] in
  let pick =
    Generic.pick_doc cat
      ~policy:(Generic.Load_steered { seed = 1; gauge = fun p -> Option.join (gauge p) })
      ~class_name:"m"
  in
  Alcotest.(check string) "retired member is never picked" "p1"
    (picked_peer pick)

(* --- load_gauge: the windowed signal's edge cases ------------------ *)

let test_load_gauge_disabled_and_cold () =
  (* Telemetry off: no signal. *)
  let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
  Alcotest.(check bool) "disabled telemetry reads None" true
    (Placement.load_gauge sys p1 = None);
  with_telemetry (fun () ->
      let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
      (* Enabled but inside the first window: no complete window to
         rate over — None, not 0 and not NaN. *)
      Alcotest.(check bool) "cold start reads None" true
        (Placement.load_gauge sys p1 = None);
      (* Advance past the window with zero traffic: rate over empty
         complete windows is a finite 0.0 (the div-zero guard). *)
      Sim.after (System.sim sys) ~peer:p1 ~delay_ms:50.0 (fun () -> ());
      ignore (System.run sys);
      Alcotest.(check bool) "empty complete windows read Some 0." true
        (Placement.load_gauge sys p1 = Some 0.0))

(* --- plan_tick: pure planning over synthetic snapshots ------------- *)

let at_p name p = Names.Doc_ref.at_peer name ~peer:p

let base_signals ?(classes = [ ("doc1", [ at_p "doc1" "p1" ]) ])
    ?(rates = [ ("doc1", 100.0) ]) ?(loads = [])
    ?(live = fun _ -> true) ?(busy = fun _ -> false) () =
  {
    Placement.sig_classes = classes;
    sig_doc_rate =
      (fun n -> Option.value ~default:0.0 (List.assoc_opt n rates));
    sig_peer_load =
      (fun p ->
        Option.value ~default:infinity
          (List.assoc_opt (Peer_id.to_string p) loads));
    sig_live = live;
    (* Exactly the class members hold their documents. *)
    sig_holds =
      (fun p n ->
        List.exists
          (fun (_, ms) ->
            List.exists
              (fun (r : Names.Doc_ref.t) ->
                Names.Doc_name.to_string r.Names.Doc_ref.name = n
                && r.Names.Doc_ref.at = Names.At p)
              ms)
          classes);
    sig_peers = [ p1; p2; p3 ];
    sig_busy = busy;
  }

let cfg = { Placement.default_config with hot_rate = 50.0 }

let test_plan_picks_least_loaded_target () =
  let s = base_signals ~loads:[ ("p2", 7.0); ("p3", 2.0) ] () in
  match Placement.plan_tick cfg (Rng.create ~seed:1) s with
  | [ d ] ->
      Alcotest.(check string) "hot class" "doc1" d.Placement.d_class;
      Alcotest.(check string) "source is the holder" "p1"
        (Peer_id.to_string d.Placement.d_src);
      Alcotest.(check string) "target is the least-loaded non-member" "p3"
        (Peer_id.to_string d.Placement.d_dst)
  | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds)

let test_plan_respects_guards () =
  let none reason s =
    Alcotest.(check int) reason 0
      (List.length (Placement.plan_tick cfg (Rng.create ~seed:1) s))
  in
  none "cold class is not migrated" (base_signals ~rates:[ ("doc1", 10.0) ] ());
  none "busy class is skipped" (base_signals ~busy:(fun _ -> true) ());
  none "dead source cannot ship"
    (base_signals ~live:(fun p -> Peer_id.to_string p <> "p1") ());
  none "replica budget caps the class"
    (base_signals
       ~classes:[ ("doc1", [ at_p "doc1" "p1"; at_p "doc1" "p2"; at_p "doc1" "p3" ]) ]
       ());
  (* Dead candidates: p1 holds, p2/p3 both crashed — nowhere to go. *)
  none "no live target, no decision"
    (base_signals ~live:(fun p -> Peer_id.to_string p = "p1") ())

let test_plan_concurrency_and_ranking () =
  let classes =
    [ ("a", [ at_p "a" "p1" ]); ("b", [ at_p "b" "p1" ]) ]
  in
  let rates = [ ("a", 60.0); ("b", 90.0) ] in
  let s = base_signals ~classes ~rates ~loads:[ ("p2", 1.0); ("p3", 2.0) ] () in
  (match Placement.plan_tick cfg (Rng.create ~seed:1) s with
  | [ d ] ->
      Alcotest.(check string) "one slot goes to the hotter class" "b"
        d.Placement.d_class
  | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds));
  let cfg2 = { cfg with migrations_per_tick = 2 } in
  match Placement.plan_tick cfg2 (Rng.create ~seed:1) s with
  | [ da; db ] ->
      Alcotest.(check string) "hotter first" "b" da.Placement.d_class;
      Alcotest.(check string) "then the next" "a" db.Placement.d_class;
      Alcotest.(check bool) "targets are distinct within a tick" false
        (Peer_id.equal da.Placement.d_dst db.Placement.d_dst)
  | ds -> Alcotest.failf "expected 2 decisions, got %d" (List.length ds)

let test_plan_tie_break_is_seeded () =
  (* All candidates unreadable (infinity = no signal): the decision is
     the RNG's, so it replays per seed. *)
  let s = base_signals () in
  let dst seed =
    match Placement.plan_tick cfg (Rng.create ~seed) s with
    | [ d ] -> Peer_id.to_string d.Placement.d_dst
    | _ -> Alcotest.fail "expected 1 decision"
  in
  Alcotest.(check string) "same seed, same tie-break" (dst 1) (dst 1);
  let all = List.sort_uniq String.compare [ dst 1; dst 2; dst 3; dst 4; dst 5 ] in
  Alcotest.(check bool) "several seeds explore both candidates" true
    (List.length all > 1)

(* --- live handoff: mid-migration appends --------------------------- *)

(* A 3-peer system on a thin link, so a ship stays in flight long
   enough for appends to overlap it.  [migrate]=false is the twin run
   the Σ content fingerprint is compared against. *)
let appends_total = 12

let run_handoff ~migrate =
  let sys =
    System.create ~transport:System.Reliable
      (mesh ~latency:10.0 ~bandwidth:5.0 [ "p1"; "p2"; "p3" ])
  in
  let sim = System.sim sys in
  let g1 = System.gen_of sys p1 in
  let root =
    elt g1 "doc"
      (List.init 4 (fun _ -> elt g1 "item" [ txt (String.make 256 'x') ]))
  in
  let node = Option.get (Xml.Tree.id root) in
  System.add_document sys p1 ~name:"d" root;
  System.register_doc_class sys ~class_name:"d" (at_p "d" "p1");
  (* Writer p3 streams appends before, during and after the ship. *)
  let g3 = System.gen_of sys p3 in
  for j = 0 to appends_total - 1 do
    let forest =
      [
        elt ~attrs:[ ("seq", string_of_int j) ] g3 "append"
          [ txt (Printf.sprintf "a-%d" j) ];
      ]
    in
    Sim.after sim ~peer:p3
      ~delay_ms:(5.0 +. (30.0 *. float_of_int j))
      (fun () ->
        System.send sys ~src:p3 ~dst:p1
          (Message.Insert { node; forest = Message.now forest; notify = None }))
  done;
  let committed = ref false in
  if migrate then
    (* The protocol by hand — link first, ship second, in one Control
       event, exactly as [Placement.start_migration] does. *)
    Sim.at sim ~time:100.0 (fun () ->
        match System.find_document sys p1 "d" with
        | None -> Alcotest.fail "source lost the document"
        | Some doc ->
            Runtime.Peer.add_replica (System.peer sys p1)
              (Doc.Document.name doc) p2;
            let key = System.fresh_key sys in
            System.set_cont sys key (fun _ ~final ->
                if final then committed := true);
            System.send sys ~src:p1 ~dst:p2
              (Message.Migrate_doc
                 {
                   name = "d";
                   forest = Message.now [ Doc.Document.root doc ];
                   notify = Some (p1, key);
                 }));
  let outcome, _ = System.run sys in
  Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
  (sys, !committed)

let test_handoff_preserves_streamed_appends () =
  let twin, _ = run_handoff ~migrate:false in
  let reference = System.content_fingerprint twin in
  let sys, committed = run_handoff ~migrate:true in
  Alcotest.(check bool) "target acknowledged the ship" true committed;
  let root_at p =
    match System.find_document sys p "d" with
    | Some doc -> Doc.Document.root doc
    | None -> Alcotest.failf "no document at %s" (Peer_id.to_string p)
  in
  Alcotest.(check int) "every append landed at the source exactly once"
    (4 + appends_total)
    (List.length (Xml.Tree.children (root_at p1)));
  (* The replica converged to the source copy — ids included. *)
  Alcotest.(check string) "replica equals source"
    (Doc.Equivalence.fingerprint (root_at p1))
    (Doc.Equivalence.fingerprint (root_at p2));
  (* And the Σ content set is exactly the migration-free run's:
     identical replicas collapse, nothing was lost or duplicated. *)
  Alcotest.(check string) "Σ content equals the migration-free twin"
    reference
    (System.content_fingerprint sys)

(* --- live handoff: source crash mid-ship --------------------------- *)

(* Controller-driven: heat the document, let the controller start a
   ship fat enough to still be in flight at the crash, crash the
   source, restart it under Failover.  The migration must abort (not
   commit), the restored source must still serve, and the target must
   end clean — the late-arriving ship is retracted behind it in FIFO
   order. *)
let crash_system ~chaos =
  let sys =
    System.create ~transport:System.Reliable
      (mesh ~latency:10.0 ~bandwidth:10.0 [ "p1"; "p2"; "p3" ])
  in
  let _fo = Failover.enable sys in
  let g1 = System.gen_of sys p1 in
  let root =
    elt g1 "doc"
      (List.init 4 (fun _ -> elt g1 "item" [ txt (String.make 2000 'y') ]))
  in
  System.add_document sys p1 ~name:"d" root;
  System.register_doc_class sys ~class_name:"d" (at_p "d" "p1");
  if chaos then
    System.inject_faults sys
      (Fault.make
         ~events:
           [ Fault.Crash { peer = p1; at_ms = 150.0; restart_ms = Some 600.0 } ]
         ~seed:0 ());
  sys

let test_source_crash_aborts_cleanly () =
  with_telemetry (fun () ->
      let reference =
        let sys = crash_system ~chaos:false in
        ignore (System.run sys);
        System.content_fingerprint sys
      in
      let sys = crash_system ~chaos:true in
      let sim = System.sim sys in
      (* Heat doc/d/reads inside the first 20 ms window, so the first
         tick after it sees a hot class. *)
      for j = 1 to 19 do
        Sim.after sim ~peer:p2 ~delay_ms:(float_of_int j) (fun () ->
            ignore (System.find_document sys p1 "d"))
      done;
      let ctl =
        Placement.enable
          ~cfg:
            {
              Placement.default_config with
              tick_ms = 25.0;
              windows = 1;
              hot_rate = 10.0;
              handoff_timeout_ms = 10_000.0;
              seed = 5;
              eligible = Some (fun p -> Peer_id.equal p p2);
            }
          sys
      in
      let outcome, _ = System.run sys in
      Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
      let st = Placement.stats ctl in
      Alcotest.(check int) "one migration started" 1 st.Placement.s_started;
      Alcotest.(check int) "it aborted" 1 st.Placement.s_aborted;
      Alcotest.(check int) "nothing committed" 0 st.Placement.s_committed;
      (* The restored source still serves... *)
      Alcotest.(check bool) "source restarted" true
        (not (Sim.is_crashed sim p1));
      Alcotest.(check bool) "source still holds the document" true
        (System.find_document sys p1 "d" <> None);
      (* ...the class never gained the target... *)
      Alcotest.(check int) "class membership unchanged" 1
        (List.length
           (Generic.doc_members (System.peer sys p1).Runtime.Peer.catalog
              ~class_name:"d"));
      (* ...and the target holds no orphan: the late ship was chased
         down by the retraction on the same FIFO link. *)
      Alcotest.(check bool) "target ends clean" true
        (System.find_document sys p2 "d" = None);
      let rc = System.reliability_counters sys in
      Alcotest.(check bool) "the outage was bridged by retransmission" true
        (rc.System.retransmits > 0);
      Alcotest.(check string) "Σ content equals the crash-free run" reference
        (System.content_fingerprint sys))

(* --- determinism --------------------------------------------------- *)

(* A small hotspot run with the controller attached; everything the
   replay contract promises, in one tuple. *)
let observed_run ?(steered = true) ~wire ~seed () =
  with_telemetry ~window_ms:10.0 (fun () ->
      let hs =
        Scenarios.hotspot ~owners:4 ~spares:2 ~readers:8 ~docs:12
          ~hot_fraction:0.1 ~hot_share:0.9 ~reads_per_reader:10 ~appends:4
          ~append_every_ms:10.0 ~payload_bytes:512 ~think_ms:2.0
          ~arrival_window_ms:50.0 ~steered ~wire ~seed ()
      in
      let sys = hs.Scenarios.hs_system in
      let storage = hs.Scenarios.hs_owners @ hs.Scenarios.hs_spares in
      let ctl =
        Placement.enable
          ~cfg:
            {
              Placement.default_config with
              tick_ms = 20.0;
              windows = 2;
              hot_rate = 20.0;
              migrations_per_tick = 2;
              seed = seed + 99;
              eligible =
                Some (fun p -> List.exists (Peer_id.equal p) storage);
            }
          sys
      in
      let outcome, _ = System.run sys in
      Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
      ( Placement.schedule_fingerprint ctl,
        Ts.fingerprint Ts.default,
        System.content_fingerprint sys,
        System.stats sys,
        (Placement.stats ctl).Placement.s_started ))

let test_same_seed_replays_per_wire () =
  List.iter
    (fun wire ->
      let sched_a, ts_a, content_a, stats_a, n_a = observed_run ~wire ~seed:11 () in
      let sched_b, ts_b, content_b, stats_b, n_b = observed_run ~wire ~seed:11 () in
      Alcotest.(check string) "same migration schedule" sched_a sched_b;
      Alcotest.(check string) "same Timeseries fingerprint" ts_a ts_b;
      Alcotest.(check string) "same Σ content" content_a content_b;
      Alcotest.(check bool) "same stats snapshot" true (stats_a = stats_b);
      Alcotest.(check int) "same migration count" n_a n_b)
    [ System.Xml; System.Binary; System.Binary_strict ]

let test_wires_agree_on_content () =
  let _, _, xml, _, n_xml = observed_run ~wire:System.Xml ~seed:11 () in
  let _, _, bin, _, _ = observed_run ~wire:System.Binary ~seed:11 () in
  let _, _, strict, _, _ = observed_run ~wire:System.Binary_strict ~seed:11 () in
  Alcotest.(check bool) "the run actually migrated" true (n_xml > 0);
  Alcotest.(check string) "binary wire reaches the xml Σ content" xml bin;
  Alcotest.(check string) "strict wire reaches the xml Σ content" xml strict

let test_cross_seed_runs_diverge () =
  let sched_a, ts_a, _, _, _ = observed_run ~wire:System.Xml ~seed:11 () in
  let sched_b, ts_b, _, _, _ = observed_run ~wire:System.Xml ~seed:12 () in
  Alcotest.(check bool) "different seeds, different schedules" true
    (sched_a <> sched_b || ts_a <> ts_b)

let suite =
  [
    ("steered pick: least-loaded member wins", `Quick, test_steered_picks_least_loaded);
    ("steered pick: NaN/inf never poisons", `Quick, test_steered_ignores_non_finite_scores);
    ("steered pick: skips unavailable members", `Quick, test_steered_skips_unavailable_members);
    ("steered pick: no signal falls back to seeded random", `Quick, test_steered_all_none_falls_back);
    ("steered pick: unregistered member retired", `Quick, test_steered_unregister_retires_member);
    ("load gauge: disabled and cold windows", `Quick, test_load_gauge_disabled_and_cold);
    ("plan: least-loaded target", `Quick, test_plan_picks_least_loaded_target);
    ("plan: guards (cold, busy, dead, budget)", `Quick, test_plan_respects_guards);
    ("plan: ranking and per-tick concurrency", `Quick, test_plan_concurrency_and_ranking);
    ("plan: tie-break is seeded", `Quick, test_plan_tie_break_is_seeded);
    ("handoff: mid-migration appends survive", `Quick, test_handoff_preserves_streamed_appends);
    ("handoff: source crash aborts cleanly", `Quick, test_source_crash_aborts_cleanly);
    ("determinism: same seed replays on every wire", `Quick, test_same_seed_replays_per_wire);
    ("determinism: wires agree on Σ content", `Quick, test_wires_agree_on_content);
    ("determinism: seeds diverge", `Quick, test_cross_seed_runs_diverge);
  ]
