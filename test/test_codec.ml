(* Binary wire codec suite (DESIGN.md §16).

   Three layers of properties:

   - the codec itself: encode/decode round-trips every payload variant
     (including batch frames with dedup back-references), [frame_bytes]
     is exactly [Bytes.length (encode m)] without materializing the
     frame, and truncated/corrupt/over-length frames are rejected with
     [Error], never an exception;

   - laziness: receiving and re-encoding a frame parses no forest blob
     ([Message.payload_decodes] stays flat), and the {!Codec.Relay}
     slicer re-batches whole frames with zero payload decodes;

   - the system: chaos replays and the flash-crowd scenario reach the
     same canonical results and Σ fingerprint under the XML, binary
     and strict-binary wires — the wire changes costs, never answers. *)

open Axml
open Helpers
module Message = Runtime.Message
module Codec = Runtime.Codec
module System = Runtime.System
module Exec = Runtime.Exec
module Expr = Algebra.Expr
module Names = Doc.Names
module Rng = Net.Rng
module Fault = Net.Fault

(* --- random messages ---------------------------------------------- *)

let labels = [| "a"; "b"; "item"; "data"; "x-y.z" |]

let texts =
  [| ""; "plain"; "a < b & c > d"; "quote \" tick '"; "tab\there\nline"; "é€" |]

let attr_names = [| "k"; "name"; "version"; "xml-lang" |]

let rec rand_tree ~gen rng depth =
  if depth = 0 || Rng.int rng 4 = 0 then Xml.Tree.text texts.(Rng.int rng 6)
  else
    let attrs =
      List.init (Rng.int rng 3) (fun i ->
          (attr_names.(Rng.int rng 4) ^ string_of_int i, texts.(Rng.int rng 6)))
    in
    let children =
      List.init (Rng.int rng 4) (fun _ -> rand_tree ~gen rng (depth - 1))
    in
    Xml.Tree.element_of_string ~attrs ~gen labels.(Rng.int rng 5) children

let rand_forest ~gen rng = List.init (Rng.int rng 4) (fun _ -> rand_tree ~gen rng 3)

let rand_lforest ~gen rng = Message.now (rand_forest ~gen rng)

let peers = [| "p1"; "p2"; "mirror007" |]

let rand_peer rng = peer peers.(Rng.int rng 3)

let rand_node_id ~gen rng =
  if Rng.bool rng then Xml.Node_id.Gen.fresh gen
  else Option.get (Xml.Node_id.make ~ns:"remote" ~counter:(Rng.int rng 1000))

let rand_dest ~gen rng =
  match Rng.int rng 3 with
  | 0 -> Message.Cont { peer = rand_peer rng; key = Rng.int rng 10_000 }
  | 1 ->
      Message.Node
        (Names.Node_ref.make ~node:(rand_node_id ~gen rng) ~peer:(rand_peer rng))
  | _ ->
      Message.Install
        {
          peer = rand_peer rng;
          name = "doc" ^ string_of_int (Rng.int rng 100);
        }

let rand_dests ~gen rng = List.init (Rng.int rng 3) (fun _ -> rand_dest ~gen rng)

let rand_notify rng =
  if Rng.bool rng then Some (rand_peer rng, Rng.int rng 1000) else None

let exprs =
  lazy
    [
      Expr.doc "cat" ~at:"p2";
      Expr.send_to_peer (peer "p1") (Expr.doc "orders" ~at:"p3");
      Expr.query_at
        (query
           {|query(2) for $o in $0//order, $i in $1//item where attr($o, "item") = attr($i, "name") return <m>{$i}</m>|})
        ~at:(peer "p1")
        ~args:[ Expr.doc "orders" ~at:"p3"; Expr.doc "cat" ~at:"p2" ];
    ]

let queries =
  lazy
    [
      query {|query(1) for $x in $0//item return <r>{$x}</r>|};
      query
        {|query(2) for $x in $0//a, $y in $1//b where text($x) = text($y) return <p>{$x}{$y}</p>|};
    ]

(* Sequenced messages a batch could legally carry; duplicate forests
   (from a shared pool) exercise the dedup back-reference path. *)
let rand_batchable ~gen ~pool rng seq =
  let forest =
    if Rng.int rng 2 = 0 then Message.now pool.(Rng.int rng (Array.length pool))
    else rand_lforest ~gen rng
  in
  let payload =
    match Rng.int rng 3 with
    | 0 -> Message.Stream { key = Rng.int rng 100; forest; final = Rng.bool rng }
    | 1 ->
        Message.Insert
          { node = rand_node_id ~gen rng; forest; notify = rand_notify rng }
    | _ ->
        Message.Install_doc
          {
            name = "log" ^ string_of_int (Rng.int rng 4);
            forest;
            notify = rand_notify rng;
          }
  in
  Message.make ~corr:(Rng.int rng 100) ~seq ~op:(Rng.int rng 5 - 1) payload

let rand_payload ~gen rng =
  match Rng.int rng 11 with
  | 0 ->
      Message.Stream
        {
          key = Rng.int rng 10_000;
          forest = rand_lforest ~gen rng;
          final = Rng.bool rng;
        }
  | 1 ->
      Message.Eval_request
        {
          expr = Rng.pick rng (Lazy.force exprs);
          replies = rand_dests ~gen rng;
          ack = rand_notify rng;
        }
  | 2 ->
      Message.Invoke
        {
          service = Names.Service_name.of_string "fetch";
          params = List.init (Rng.int rng 3) (fun _ -> rand_lforest ~gen rng);
          replies = rand_dests ~gen rng;
        }
  | 3 ->
      Message.Insert
        {
          node = rand_node_id ~gen rng;
          forest = rand_lforest ~gen rng;
          notify = rand_notify rng;
        }
  | 4 ->
      Message.Install_doc
        {
          name = "d" ^ string_of_int (Rng.int rng 50);
          forest = rand_lforest ~gen rng;
          notify = rand_notify rng;
        }
  | 5 ->
      Message.Deploy
        {
          prefix = "svc";
          query = Rng.pick rng (Lazy.force queries);
          reply = rand_dest ~gen rng;
        }
  | 6 ->
      Message.Query_shipped
        { key = Rng.int rng 1000; query = Rng.pick rng (Lazy.force queries) }
  | 7 -> Message.Ack { seq = Rng.int rng 10_000 }
  | 8 ->
      Message.Migrate_doc
        {
          name = "hot" ^ string_of_int (Rng.int rng 20);
          forest = rand_lforest ~gen rng;
          notify = rand_notify rng;
        }
  | 9 ->
      Message.Retract_doc
        { name = "hot" ^ string_of_int (Rng.int rng 20); notify = rand_notify rng }
  | _ ->
      let pool = Array.init 2 (fun _ -> rand_forest ~gen rng) in
      let n = 1 + Rng.int rng 5 in
      Message.batch ~ack:(Rng.int rng 100)
        (List.init n (fun i -> rand_batchable ~gen ~pool rng (i + 1)))

let rand_message seed =
  let rng = Rng.create ~seed in
  let gen = Xml.Node_id.Gen.create ~namespace:"codec-test" in
  Message.make ~corr:(Rng.int rng 1000) ~seq:(Rng.int rng 1000)
    ~op:(Rng.int rng 6 - 1)
    (rand_payload ~gen rng)

(* --- equality on decoded messages --------------------------------- *)

(* The codec preserves node identifiers exactly, so tree equality here
   is stricter than Canonical: ids, labels, attrs, children, order. *)
let rec tree_identical a b =
  match (a, b) with
  | Xml.Tree.Text s, Xml.Tree.Text s' -> String.equal s s'
  | Xml.Tree.Element e, Xml.Tree.Element e' ->
      Xml.Node_id.equal e.id e'.id
      && Xml.Label.equal e.label e'.label
      && e.attrs = e'.attrs
      && List.length e.children = List.length e'.children
      && List.for_all2 tree_identical e.children e'.children
  | _ -> false

let forest_identical a b =
  List.length a = List.length b && List.for_all2 tree_identical a b

let lf_identical a b = forest_identical (Message.force a) (Message.force b)

let rec payload_equal p p' =
  match (p, p') with
  | Message.Stream a, Message.Stream b ->
      a.key = b.key && a.final = b.final && lf_identical a.forest b.forest
  | Message.Eval_request a, Message.Eval_request b ->
      Expr.equal a.expr b.expr && a.replies = b.replies && a.ack = b.ack
  | Message.Invoke a, Message.Invoke b ->
      Names.Service_name.equal a.service b.service
      && a.replies = b.replies
      && List.length a.params = List.length b.params
      && List.for_all2 lf_identical a.params b.params
  | Message.Insert a, Message.Insert b ->
      Xml.Node_id.equal a.node b.node
      && a.notify = b.notify
      && lf_identical a.forest b.forest
  | Message.Install_doc a, Message.Install_doc b ->
      String.equal a.name b.name && a.notify = b.notify
      && lf_identical a.forest b.forest
  | Message.Deploy a, Message.Deploy b ->
      String.equal a.prefix b.prefix
      && Query.Ast.equal a.query b.query
      && a.reply = b.reply
  | Message.Query_shipped a, Message.Query_shipped b ->
      a.key = b.key && Query.Ast.equal a.query b.query
  | Message.Ack a, Message.Ack b -> a.seq = b.seq
  | Message.Migrate_doc a, Message.Migrate_doc b ->
      String.equal a.name b.name && a.notify = b.notify
      && lf_identical a.forest b.forest
  | Message.Retract_doc a, Message.Retract_doc b ->
      String.equal a.name b.name && a.notify = b.notify
  | Message.Batch a, Message.Batch b ->
      a.ack = b.ack
      && List.length a.items = List.length b.items
      && List.for_all2 item_equal a.items b.items
  | _ -> false

and item_equal a b =
  match (a, b) with
  | Message.Full m, Message.Full m' -> msg_equal m m'
  | Message.Shared a, Message.Shared b ->
      (* A decoded [Shared] item aliases its referent's forest — the
         referent's node ids — so its forest compares by shape, which
         is exactly the relation dedup matched on. *)
      a.of_seq = b.of_seq && a.saved = b.saved
      && a.msg.Message.corr = b.msg.Message.corr
      && a.msg.Message.seq = b.msg.Message.seq
      && a.msg.Message.op = b.msg.Message.op
      && payload_shape_equal a.msg.Message.payload b.msg.Message.payload
  | _ -> false

and payload_shape_equal p p' =
  let lf_shape a b =
    Xml.Forest.equal_shape (Message.force a) (Message.force b)
  in
  match (p, p') with
  | Message.Stream a, Message.Stream b ->
      a.key = b.key && a.final = b.final && lf_shape a.forest b.forest
  | Message.Insert a, Message.Insert b ->
      Xml.Node_id.equal a.node b.node
      && a.notify = b.notify
      && lf_shape a.forest b.forest
  | Message.Install_doc a, Message.Install_doc b ->
      String.equal a.name b.name && a.notify = b.notify
      && lf_shape a.forest b.forest
  | _ -> payload_equal p p'

and msg_equal (m : Message.t) (m' : Message.t) =
  m.corr = m'.corr && m.seq = m'.seq && m.op = m'.op
  && payload_equal m.payload m'.payload

(* --- properties ---------------------------------------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let prop ?(count = 300) name p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name seed_arb p)

let roundtrip_prop =
  prop "decode (encode m) reconstructs m exactly" (fun seed ->
      let m = rand_message seed in
      match Codec.decode_strict (Codec.encode m) with
      | Ok m' -> msg_equal m m'
      | Error e -> QCheck.Test.fail_reportf "decode: %a" Codec.pp_error e)

let frame_bytes_prop =
  prop "frame_bytes = |encode m| without materializing" (fun seed ->
      let m = rand_message seed in
      let predicted = Codec.frame_bytes m in
      predicted = Bytes.length (Codec.encode m))

(* Sizing a *received* (still lazy) message must also be exact: the
   relay path re-charges undecoded frames on retransmission. *)
let lazy_frame_bytes_prop =
  prop "frame_bytes is exact on lazily decoded messages" (fun seed ->
      let m = rand_message seed in
      let frame = Codec.encode m in
      match Codec.decode frame with
      | Ok m' ->
          Codec.frame_bytes m' = Bytes.length frame
          && Bytes.equal (Codec.encode m') frame
      | Error e -> QCheck.Test.fail_reportf "decode: %a" Codec.pp_error e)

let xml_sizing_prop =
  prop "serialized_length mirrors the serializer" (fun seed ->
      let rng = Rng.create ~seed in
      let gen = Xml.Node_id.Gen.create ~namespace:"sizing" in
      let t = rand_tree ~gen rng 4 in
      Xml.Serializer.serialized_length t
      = String.length (Xml.Serializer.to_string t)
      && Xml.Tree.byte_size_cached t = Xml.Tree.byte_size t)

let shape_hash_prop =
  prop "shape_hash is id-insensitive and shape-consistent" (fun seed ->
      let rng = Rng.create ~seed in
      let gen = Xml.Node_id.Gen.create ~namespace:"shape-a" in
      let f = rand_forest ~gen rng in
      let gen' = Xml.Node_id.Gen.create ~namespace:"shape-b" in
      let f' = Xml.Forest.copy ~gen:gen' f in
      Xml.Forest.equal_shape f f'
      && Xml.Forest.shape_hash f = Xml.Forest.shape_hash f'
      && Xml.Forest.shape_hash f <> 0)

(* Every strict prefix of a frame is rejected (the length prefix pins
   the exact extent), as is appended junk; random single-byte
   corruption must never escape as an exception. *)
let truncation_prop =
  prop "truncated and over-length frames are rejected" (fun seed ->
      let m = rand_message seed in
      let frame = Codec.encode m in
      let n = Bytes.length frame in
      let rng = Rng.create ~seed in
      let cut = Rng.int rng n in
      let prefix_rejected =
        match Codec.decode (Bytes.sub frame 0 cut) with
        | Error _ -> true
        | Ok _ -> false
      in
      let extended = Bytes.extend frame 0 (1 + Rng.int rng 8) in
      let overlength_rejected =
        match Codec.decode extended with Error _ -> true | Ok _ -> false
      in
      prefix_rejected && overlength_rejected)

let corruption_prop =
  prop ~count:500 "corrupt frames never crash the decoder" (fun seed ->
      let m = rand_message seed in
      let frame = Codec.encode m in
      let rng = Rng.create ~seed in
      let pos = Rng.int rng (Bytes.length frame) in
      Bytes.set frame pos (Char.chr (Rng.int rng 256));
      (* Either rejected or decoded into some message — the only wrong
         outcome is an escaped exception. *)
      match Codec.decode_strict frame with Ok _ | Error _ -> true)

let test_garbage_rejected () =
  List.iter
    (fun bytes ->
      match Codec.decode (Bytes.of_string bytes) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %S" bytes)
    [ ""; "\x00"; "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"; "\x05hello" ]

(* --- laziness ------------------------------------------------------ *)

let stream_with ~g xml ~seq =
  Message.make ~seq
    (Message.Stream { key = 1; forest = Message.now [ parse ~g xml ]; final = true })

let test_lazy_decode_counts () =
  let g = gen () in
  let m = stream_with ~g "<a><b>payload</b><c k=\"v\"/></a>" ~seq:3 in
  let frame = Codec.encode m in
  let d0 = Message.payload_decodes () in
  let m' = Result.get_ok (Codec.decode frame) in
  (* Receiving, sizing and re-encoding all leave the forest encoded. *)
  Alcotest.(check int) "decode parses nothing" d0 (Message.payload_decodes ());
  Alcotest.(check int) "sizing parses nothing"
    (Bytes.length frame) (Codec.frame_bytes m');
  Alcotest.(check bool) "re-encode blits the slice" true
    (Bytes.equal frame (Codec.encode m'));
  Alcotest.(check int) "still nothing" d0 (Message.payload_decodes ());
  (match m'.Message.payload with
  | Message.Stream { forest; _ } ->
      Alcotest.(check bool) "not forced yet" false (Message.is_forced forest);
      Alcotest.(check int) "tree count readable without decode" 1
        (Message.trees forest);
      let f = Message.force forest in
      Alcotest.(check int) "first touch decodes once" (d0 + 1)
        (Message.payload_decodes ());
      ignore (Message.force forest);
      Alcotest.(check int) "second touch is cached" (d0 + 1)
        (Message.payload_decodes ());
      Alcotest.(check bool) "decoded content" true
        (Xml.Forest.equal_shape f
           [ parse ~g "<a><b>payload</b><c k=\"v\"/></a>" ])
  | _ -> Alcotest.fail "expected a stream")

let test_relay_zero_parse () =
  let g = gen () in
  let xml = "<pkg name=\"alpha\"><blob>xxxxxxxxxx</blob></pkg>" in
  let msgs =
    [
      stream_with ~g xml ~seq:1;
      stream_with ~g xml ~seq:2;
      (* structural duplicate -> Shared *)
      stream_with ~g "<other/>" ~seq:3;
    ]
  in
  let batch = Message.make (Message.batch ~ack:5 msgs) in
  let frame = Codec.encode batch in
  let d0 = Message.payload_decodes () in
  let ack, items =
    match Codec.Relay.parse_batch frame with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse_batch: %a" Codec.pp_error e
  in
  Alcotest.(check int) "cumulative ack recovered" 5 ack;
  Alcotest.(check (list int)) "item sequence numbers" [ 1; 2; 3 ]
    (List.map Codec.Relay.item_seq items);
  Alcotest.(check (list bool)) "dedup shape visible to the relay"
    [ false; true; false ]
    (List.map Codec.Relay.is_shared items);
  Alcotest.(check int) "back-reference target" 1
    (Codec.Relay.item_of_seq (List.nth items 1));
  (* Re-batch everything under a new ack: pure slicing. *)
  let reframed = Codec.Relay.rebatch ~ack:9 items in
  Alcotest.(check int) "relaying decoded zero payloads" d0
    (Message.payload_decodes ());
  (match Codec.decode_strict reframed with
  | Ok m -> (
      match m.Message.payload with
      | Message.Batch { items = its; ack } ->
          Alcotest.(check int) "new ack" 9 ack;
          Alcotest.(check bool) "items survive re-framing" true
            (List.for_all2 item_equal
               (match batch.Message.payload with
               | Message.Batch b -> b.items
               | _ -> assert false)
               its)
      | _ -> Alcotest.fail "expected a batch")
  | Error e -> Alcotest.failf "re-batched frame invalid: %a" Codec.pp_error e);
  (* Dropping a non-referent item keeps the frame decodable; the
     slicing itself still parses nothing (the decode_strict checks
     above forced forests, so checkpoint the counter afresh). *)
  let dropped = [ List.nth items 0; List.nth items 1 ] in
  let d1 = Message.payload_decodes () in
  let subset = Codec.Relay.rebatch ~ack:9 dropped in
  Alcotest.(check int) "subset relaying still parses nothing" d1
    (Message.payload_decodes ());
  match Codec.decode_strict subset with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "subset re-batch invalid: %a" Codec.pp_error e

(* --- the system under the binary wire ------------------------------ *)

let wires = [ ("xml", System.Xml); ("binary", System.Binary);
              ("binary-strict", System.Binary_strict) ]

let test_chaos_cross_wire () =
  let plans =
    let _, inbox_id = Test_rules_exec.build_system () in
    Test_rules_exec.base_plans inbox_id
  in
  let all = List.map peer [ "p1"; "p2"; "p3" ] in
  List.iter
    (fun (name, plan) ->
      let run ?fault wire =
        let sys, _ =
          Test_rules_exec.build_system ~transport:System.Reliable ~wire ()
        in
        Option.iter (System.inject_faults sys) fault;
        let out = Exec.run_to_quiescence sys ~ctx:(peer "p1") plan in
        (out, System.fingerprint sys)
      in
      let ref_out, ref_fp = run System.Xml in
      List.iter
        (fun (wname, wire) ->
          List.iter
            (fun seed ->
              let out, fp =
                run ~fault:(Fault.random ~seed all) wire
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/seed %d: quiescent" name wname seed)
                true
                (out.Exec.termination = `Quiescent && out.Exec.finished);
              check_canonical_forests
                (Printf.sprintf "%s/%s/seed %d: same results" name wname seed)
                ref_out.Exec.results out.Exec.results;
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/seed %d: same Σ" name wname seed)
                ref_fp fp)
            [ 1; 7; 4242 ])
        wires)
    plans

let test_flash_crowd_cross_wire () =
  let build wire =
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors:3 ~subscribers:8
        ~requests_per_subscriber:2 ~transport:System.Reliable ~wire
        ~flush_ms:2.0 ~ack_delay_ms:8.0 ~seed:11 ()
    in
    let outcome, _ =
      System.run ~max_events:200_000 fc.Workload.Scenarios.fc_system
    in
    Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
    ( System.fingerprint fc.Workload.Scenarios.fc_system,
      !(fc.Workload.Scenarios.fc_completed),
      System.stats fc.Workload.Scenarios.fc_system )
  in
  let fp_xml, done_xml, stats_xml = build System.Xml in
  List.iter
    (fun (wname, wire) ->
      let fp, done_, stats = build wire in
      Alcotest.(check string) (wname ^ ": same Σ as the XML wire") fp_xml fp;
      Alcotest.(check int) (wname ^ ": same completions") done_xml done_;
      Alcotest.(check int) (wname ^ ": same physical message count")
        stats_xml.Net.Stats.messages stats.Net.Stats.messages;
      if wire <> System.Xml then
        Alcotest.(check bool)
          (Printf.sprintf "%s: binary frames are smaller (%d < %d)" wname
             stats.Net.Stats.bytes stats_xml.Net.Stats.bytes)
          true
          (stats.Net.Stats.bytes < stats_xml.Net.Stats.bytes))
    wires

(* Under the strict wire every transmission really crosses the codec,
   yet transport-layer handling decodes nothing: only deliveries that
   touch payloads do. *)
let test_strict_wire_decodes_bounded () =
  let fc =
    Workload.Scenarios.flash_crowd ~mirrors:2 ~subscribers:4
      ~requests_per_subscriber:2 ~wire:System.Binary_strict ~seed:3 ()
  in
  let d0 = Message.payload_decodes () in
  let outcome, _ = System.run ~max_events:50_000 fc.Workload.Scenarios.fc_system in
  Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
  let decodes = Message.payload_decodes () - d0 in
  let logical =
    (System.stats fc.Workload.Scenarios.fc_system).Net.Stats.payload_messages
  in
  Alcotest.(check bool)
    (Printf.sprintf "decodes (%d) bounded by logical messages (%d)" decodes
       logical)
    true
    (decodes > 0 && decodes <= logical)

let suite =
  [
    roundtrip_prop;
    frame_bytes_prop;
    lazy_frame_bytes_prop;
    xml_sizing_prop;
    shape_hash_prop;
    truncation_prop;
    corruption_prop;
    ("garbage frames rejected", `Quick, test_garbage_rejected);
    ("lazy decode: first touch pays, transport never does", `Quick,
     test_lazy_decode_counts);
    ("relay re-batches with zero payload decodes", `Quick, test_relay_zero_parse);
    ("chaos replay: wires agree on results and Σ", `Quick, test_chaos_cross_wire);
    ("flash crowd: wires agree, binary is smaller", `Quick,
     test_flash_crowd_cross_wire);
    ("strict wire: decodes bounded by deliveries", `Quick,
     test_strict_wire_decodes_bounded);
  ]
