open Axml
open Helpers

let test_peer_id () =
  Alcotest.(check string) "roundtrip" "p1"
    (Net.Peer_id.to_string (Net.Peer_id.of_string "p1"));
  List.iter
    (fun s ->
      match Net.Peer_id.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" s)
    [ ""; "a@b"; "a b"; "a\nb" ]

let test_link () =
  let l = Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0 in
  Alcotest.(check (float 0.001)) "latency only" 10.0
    (Net.Link.transfer_ms l ~bytes:0);
  Alcotest.(check (float 0.001)) "affine" 20.0
    (Net.Link.transfer_ms l ~bytes:1000);
  Alcotest.(check bool) "local is fast" true
    (Net.Link.transfer_ms Net.Link.local ~bytes:1_000_000 < 0.01);
  (match Net.Link.make ~latency_ms:(-1.0) ~bandwidth_bytes_per_ms:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative latency");
  match Net.Link.make ~latency_ms:1.0 ~bandwidth_bytes_per_ms:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bandwidth"

let test_pqueue_order () =
  let q = Net.Pqueue.create () in
  Net.Pqueue.push q ~time:3.0 "c";
  Net.Pqueue.push q ~time:1.0 "a";
  Net.Pqueue.push q ~time:2.0 "b";
  let pop () = Option.map snd (Net.Pqueue.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let test_pqueue_fifo_at_equal_times () =
  let q = Net.Pqueue.create () in
  List.iter (fun s -> Net.Pqueue.push q ~time:1.0 s) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Net.Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order" [ "x"; "y"; "z" ] order

let test_pqueue_interleaved () =
  let q = Net.Pqueue.create () in
  Net.Pqueue.push q ~time:5.0 5;
  Net.Pqueue.push q ~time:1.0 1;
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Net.Pqueue.peek_time q);
  ignore (Net.Pqueue.pop q);
  Net.Pqueue.push q ~time:3.0 3;
  Net.Pqueue.push q ~time:2.0 2;
  let rec drain acc =
    match Net.Pqueue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 2; 3; 5 ] (drain []);
  Alcotest.(check int) "length zero" 0 (Net.Pqueue.length q);
  match Net.Pqueue.push q ~time:Float.nan 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN time"

let test_topology_mesh () =
  let t = mesh [ "a"; "b"; "c" ] in
  let a = peer "a" and b = peer "b" in
  Alcotest.(check int) "peers" 3 (List.length (Net.Topology.peers t));
  Alcotest.(check bool) "loopback is local" true
    (Net.Link.equal (Net.Topology.link t ~src:a ~dst:a) Net.Link.local);
  Alcotest.(check (float 0.001)) "mesh link" 10.0
    (Net.Topology.link t ~src:a ~dst:b).Net.Link.latency_ms;
  match Net.Topology.link t ~src:a ~dst:(peer "ghost") with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown peer"

let test_topology_override () =
  let t = mesh [ "a"; "b" ] in
  let a = peer "a" and b = peer "b" in
  let fast = Net.Link.make ~latency_ms:1.0 ~bandwidth_bytes_per_ms:1000.0 in
  let t = Net.Topology.override t ~src:a ~dst:b fast in
  Alcotest.(check (float 0.001)) "overridden" 1.0
    (Net.Topology.link t ~src:a ~dst:b).Net.Link.latency_ms;
  Alcotest.(check (float 0.001)) "reverse untouched" 10.0
    (Net.Topology.link t ~src:b ~dst:a).Net.Link.latency_ms

let test_topology_star () =
  let hub = peer "hub" and s1 = peer "s1" and s2 = peer "s2" in
  let spoke = Net.Link.make ~latency_ms:5.0 ~bandwidth_bytes_per_ms:100.0 in
  let t = Net.Topology.star ~hub ~spoke_link:spoke [ hub; s1; s2 ] in
  Alcotest.(check (float 0.001)) "hub-spoke" 5.0
    (Net.Topology.link t ~src:hub ~dst:s1).Net.Link.latency_ms;
  Alcotest.(check (float 0.001)) "spoke-spoke doubled" 10.0
    (Net.Topology.link t ~src:s1 ~dst:s2).Net.Link.latency_ms

let test_topology_ring () =
  let ps = List.map peer [ "r0"; "r1"; "r2"; "r3" ] in
  let hop = Net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:100.0 in
  let t = Net.Topology.ring ~hop_link:hop ps in
  let nth = List.nth ps in
  Alcotest.(check (float 0.001)) "adjacent" 2.0
    (Net.Topology.link t ~src:(nth 0) ~dst:(nth 1)).Net.Link.latency_ms;
  Alcotest.(check (float 0.001)) "across" 4.0
    (Net.Topology.link t ~src:(nth 0) ~dst:(nth 2)).Net.Link.latency_ms;
  Alcotest.(check (float 0.001)) "wraparound" 2.0
    (Net.Topology.link t ~src:(nth 0) ~dst:(nth 3)).Net.Link.latency_ms

let test_topology_clustered () =
  let a0 = peer "a0" and a1 = peer "a1" and b0 = peer "b0" in
  let intra = Net.Link.make ~latency_ms:1.0 ~bandwidth_bytes_per_ms:1000.0 in
  let inter = Net.Link.make ~latency_ms:50.0 ~bandwidth_bytes_per_ms:10.0 in
  let t = Net.Topology.clustered ~intra ~inter [ [ a0; a1 ]; [ b0 ] ] in
  Alcotest.(check (float 0.001)) "intra" 1.0
    (Net.Topology.link t ~src:a0 ~dst:a1).Net.Link.latency_ms;
  Alcotest.(check (float 0.001)) "inter" 50.0
    (Net.Topology.link t ~src:a0 ~dst:b0).Net.Link.latency_ms

let test_sim_delivery_and_time () =
  let t = mesh ~latency:10.0 ~bandwidth:100.0 [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  let got = ref [] in
  Net.Sim.set_handler sim b (fun ~src msg ->
      got := (Net.Peer_id.to_string src, msg, Net.Sim.now sim) :: !got);
  Net.Sim.set_handler sim a (fun ~src:_ _ -> ());
  Net.Sim.send sim ~src:a ~dst:b ~bytes:1000 "hello";
  ignore (Net.Sim.run sim);
  match !got with
  | [ (src, msg, time) ] ->
      Alcotest.(check string) "src" "a" src;
      Alcotest.(check string) "payload" "hello" msg;
      Alcotest.(check (float 0.001)) "arrival = latency + size/bw" 20.0 time
  | _ -> Alcotest.fail "one delivery expected"

let test_sim_chained_sends () =
  let t = mesh ~latency:10.0 ~bandwidth:100.0 [ "a"; "b"; "c" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" and c = peer "c" in
  let arrived = ref None in
  Net.Sim.set_handler sim b (fun ~src:_ msg ->
      Net.Sim.send sim ~src:b ~dst:c ~bytes:0 (msg ^ "-relayed"));
  Net.Sim.set_handler sim c (fun ~src:_ msg ->
      arrived := Some (msg, Net.Sim.now sim));
  Net.Sim.send sim ~src:a ~dst:b ~bytes:0 "m";
  ignore (Net.Sim.run sim);
  (match !arrived with
  | Some (msg, time) ->
      Alcotest.(check string) "relayed" "m-relayed" msg;
      Alcotest.(check (float 0.001)) "two hops" 20.0 time
  | None -> Alcotest.fail "no arrival");
  let snap = Net.Stats.snapshot (Net.Sim.stats sim) in
  Alcotest.(check int) "two messages" 2 snap.messages

let test_sim_cpu_busy_delays_sends () =
  let t = mesh ~latency:10.0 ~bandwidth:100.0 [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  let time = ref 0.0 in
  Net.Sim.set_handler sim b (fun ~src:_ () -> time := Net.Sim.now sim);
  Net.Sim.consume_cpu sim ~peer:a ~ms:5.0;
  Net.Sim.send sim ~src:a ~dst:b ~bytes:0 ();
  ignore (Net.Sim.run sim);
  Alcotest.(check (float 0.001)) "departure delayed by busy peer" 15.0 !time

let test_sim_timer () =
  let t = mesh [ "a" ] in
  let sim = Net.Sim.create t in
  let fired = ref (-1.0) in
  Net.Sim.after sim ~peer:(peer "a") ~delay_ms:42.0 (fun () ->
      fired := Net.Sim.now sim);
  ignore (Net.Sim.run sim);
  Alcotest.(check (float 0.001)) "timer time" 42.0 !fired

let test_sim_no_handler () =
  (* A message to a handler-less peer is a routable fault, counted as
     a drop — not an abort. *)
  let t = mesh [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  Net.Sim.send sim ~src:(peer "a") ~dst:(peer "b") ~bytes:0 ();
  let outcome, _ = Net.Sim.run sim in
  Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
  let snap = Net.Stats.snapshot (Net.Sim.stats sim) in
  Alcotest.(check int) "counted as drop" 1 snap.drops;
  Alcotest.(check int) "still counted as sent" 1 snap.messages

let test_sim_crash_drops_and_restart_delivers () =
  let t = mesh [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  let got = ref 0 in
  Net.Sim.set_handler sim b (fun ~src:_ () -> incr got);
  Net.Sim.set_handler sim a (fun ~src:_ () -> ());
  Net.Sim.crash sim b;
  Alcotest.(check bool) "unreachable while down" false
    (Net.Sim.reachable sim ~src:a ~dst:b);
  Net.Sim.send sim ~src:a ~dst:b ~bytes:8 ();
  ignore (Net.Sim.run sim);
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "drop counted" 1
    (Net.Stats.snapshot (Net.Sim.stats sim)).drops;
  Net.Sim.restart sim b;
  Alcotest.(check bool) "reachable again" true
    (Net.Sim.reachable sim ~src:a ~dst:b);
  Net.Sim.send sim ~src:a ~dst:b ~bytes:8 ();
  ignore (Net.Sim.run sim);
  Alcotest.(check int) "delivered after restart" 1 !got

let test_sim_crashed_timer_discarded () =
  let t = mesh [ "a" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" in
  let fired = ref false in
  Net.Sim.after sim ~peer:a ~delay_ms:5.0 (fun () -> fired := true);
  Net.Sim.crash sim a;
  ignore (Net.Sim.run sim);
  Alcotest.(check bool) "timer died with the peer" false !fired

let test_fault_outage_window () =
  let t = mesh ~latency:1.0 ~bandwidth:1000.0 [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  let got = ref 0 in
  Net.Sim.set_handler sim b (fun ~src:_ () -> incr got);
  Net.Sim.set_handler sim a (fun ~src:_ () -> ());
  Net.Sim.inject sim
    (Net.Fault.make ~seed:1
       ~events:
         [
           Net.Fault.Link_down
             {
               src = a;
               dst = b;
               window = Net.Fault.window ~from_ms:0.0 ~until_ms:10.0;
             };
         ]
       ());
  Net.Sim.send sim ~src:a ~dst:b ~bytes:0 ();
  (* Inside the window: cut. *)
  ignore (Net.Sim.run sim);
  Alcotest.(check int) "cut during outage" 0 !got;
  Net.Sim.after sim ~peer:a ~delay_ms:20.0 (fun () ->
      Net.Sim.send sim ~src:a ~dst:b ~bytes:0 ());
  ignore (Net.Sim.run sim);
  Alcotest.(check int) "delivered after outage" 1 !got

let test_fault_deterministic_verdicts () =
  let peers = [ peer "a"; peer "b"; peer "c" ] in
  let run () =
    let plan = Net.Fault.random ~seed:77 peers in
    let st = Net.Fault.attach plan in
    List.init 200 (fun i ->
        match
          Net.Fault.on_send st
            ~now:(float_of_int i *. 2.0)
            ~src:(peer "a") ~dst:(peer "b")
        with
        | Net.Fault.Dropped -> "drop"
        | Net.Fault.Deliver { jitters_ms } ->
            String.concat ","
              (List.map (Printf.sprintf "%.6f") jitters_ms))
  in
  Alcotest.(check bool) "same seed, same verdicts" true (run () = run ());
  let differs =
    Net.Fault.random ~seed:77 peers <> Net.Fault.random ~seed:78 peers
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_sim_max_events_guard () =
  let t = mesh [ "a" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" in
  (* A self-perpetuating loop, cut by the guard. *)
  Net.Sim.set_handler sim a (fun ~src:_ () ->
      Net.Sim.send sim ~src:a ~dst:a ~bytes:0 ());
  Net.Sim.send sim ~src:a ~dst:a ~bytes:0 ();
  let outcome, processed = Net.Sim.run ~max_events:100 sim in
  Alcotest.(check bool) "budget exhausted" true (outcome = `Budget_exhausted);
  Alcotest.(check int) "processed up to the guard" 100 processed;
  Alcotest.(check bool) "stopped" true (Net.Sim.pending sim > 0)

let test_stats_per_link () =
  let t = mesh [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  Net.Sim.set_handler sim b (fun ~src:_ () -> ());
  Net.Sim.set_handler sim a (fun ~src:_ () -> ());
  Net.Sim.send sim ~src:a ~dst:b ~bytes:100 ();
  Net.Sim.send sim ~src:a ~dst:b ~bytes:50 ();
  Net.Sim.send sim ~src:a ~dst:a ~bytes:999 ();
  ignore (Net.Sim.run sim);
  let snap = Net.Stats.snapshot (Net.Sim.stats sim) in
  Alcotest.(check int) "remote messages" 2 snap.messages;
  Alcotest.(check int) "bytes" 150 snap.bytes;
  Alcotest.(check int) "local messages" 1 snap.local_messages;
  match snap.per_link with
  | [ ((src, dst), (m, bytes)) ] ->
      Alcotest.(check string) "link src" "a" (Net.Peer_id.to_string src);
      Alcotest.(check string) "link dst" "b" (Net.Peer_id.to_string dst);
      Alcotest.(check int) "link messages" 2 m;
      Alcotest.(check int) "link bytes" 150 bytes
  | _ -> Alcotest.fail "one remote link expected"

let test_fifo_per_link () =
  (* Messages of equal size on one link arrive in send order. *)
  let t = mesh ~latency:5.0 ~bandwidth:100.0 [ "a"; "b" ] in
  let sim = Net.Sim.create t in
  let a = peer "a" and b = peer "b" in
  let received = ref [] in
  Net.Sim.set_handler sim b (fun ~src:_ i -> received := i :: !received);
  for i = 1 to 10 do
    Net.Sim.send sim ~src:a ~dst:b ~bytes:100 i
  done;
  ignore (Net.Sim.run sim);
  Alcotest.(check (list int)) "in order" (List.init 10 (fun i -> i + 1))
    (List.rev !received)

let test_deterministic_runs () =
  (* Two identical simulations produce identical delivery logs. *)
  let run () =
    let t = mesh [ "a"; "b"; "c" ] in
    let sim = Net.Sim.create t in
    let log = ref [] in
    List.iter
      (fun p ->
        Net.Sim.set_handler sim (peer p) (fun ~src msg ->
            log :=
              (p, Net.Peer_id.to_string src, msg, Net.Sim.now sim) :: !log;
            if msg < 3 then
              Net.Sim.send sim ~src:(peer p)
                ~dst:(peer (if p = "b" then "c" else "b"))
                ~bytes:(50 * msg) (msg + 1)))
      [ "a"; "b"; "c" ];
    Net.Sim.send sim ~src:(peer "a") ~dst:(peer "b") ~bytes:10 1;
    ignore (Net.Sim.run sim);
    List.rev !log
  in
  Alcotest.(check bool) "identical logs" true (run () = run ())

let suite =
  [
    ("peer id validation", `Quick, test_peer_id);
    ("per-link FIFO", `Quick, test_fifo_per_link);
    ("deterministic simulation", `Quick, test_deterministic_runs);
    ("link cost model", `Quick, test_link);
    ("pqueue ordering", `Quick, test_pqueue_order);
    ("pqueue FIFO at equal time", `Quick, test_pqueue_fifo_at_equal_times);
    ("pqueue interleaved", `Quick, test_pqueue_interleaved);
    ("mesh topology", `Quick, test_topology_mesh);
    ("topology override", `Quick, test_topology_override);
    ("star topology", `Quick, test_topology_star);
    ("ring topology", `Quick, test_topology_ring);
    ("clustered topology", `Quick, test_topology_clustered);
    ("sim delivery and virtual time", `Quick, test_sim_delivery_and_time);
    ("sim chained sends", `Quick, test_sim_chained_sends);
    ("sim cpu busy time", `Quick, test_sim_cpu_busy_delays_sends);
    ("sim timers", `Quick, test_sim_timer);
    ("sim missing handler drops", `Quick, test_sim_no_handler);
    ("sim crash and restart", `Quick, test_sim_crash_drops_and_restart_delivers);
    ("sim crashed timer discarded", `Quick, test_sim_crashed_timer_discarded);
    ("fault outage window", `Quick, test_fault_outage_window);
    ("fault deterministic verdicts", `Quick, test_fault_deterministic_verdicts);
    ("sim runaway guard", `Quick, test_sim_max_events_guard);
    ("per-link statistics", `Quick, test_stats_per_link);
  ]
