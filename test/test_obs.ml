(* Observability layer: span well-formedness, cross-peer correlation,
   metrics determinism, exporter round-trips, run outcomes. *)

open Axml
open Helpers
module System = Runtime.System
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

(* Every obs test owns the global collector: start clean, leave clean. *)
let with_obs f =
  Trace.set_enabled true;
  Trace.clear ();
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ();
      Metrics.set_enabled Metrics.default false;
      Metrics.reset Metrics.default)
    f

(* The three-peer join scenario: catalogs at p2 and p3, join driven
   from p1 — evaluation has to fan out to both providers. *)
let join_system () =
  let sys = System.create (mesh [ "p1"; "p2"; "p3" ]) in
  let seed = ref 7 in
  List.iter
    (fun p ->
      let rng = Workload.Rng.create ~seed:!seed in
      incr seed;
      let g = System.gen_of sys p in
      System.add_document sys p ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng ~items:40 ~selectivity:0.2 ()))
    [ p2; p3 ];
  sys

let join_plan () =
  let join =
    query
      {|query(2) for $x in $0//item, $y in $1//item
        where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
        return <pair/>|}
  in
  Algebra.Expr.query_at join ~at:p1
    ~args:[ Algebra.Expr.doc "cat" ~at:"p2"; Algebra.Expr.doc "cat" ~at:"p3" ]

(* --- span well-formedness ---------------------------------------- *)

let test_span_wellformed () =
  with_obs (fun () ->
      let out = Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()) in
      Alcotest.(check bool) "finished" true out.finished;
      let events = Trace.events () in
      Alcotest.(check bool) "recorded something" true (List.length events > 0);
      let ids = Hashtbl.create 64 in
      List.iter
        (fun (e : Trace.event) ->
          if e.kind = Trace.Span then begin
            Alcotest.(check bool) "unique id" false (Hashtbl.mem ids e.id);
            Hashtbl.replace ids e.id e
          end)
        events;
      List.iter
        (fun (e : Trace.event) ->
          if e.kind = Trace.Span then begin
            Alcotest.(check bool)
              (Printf.sprintf "span %d closed" e.id)
              true (e.dur_ms >= 0.0);
            match e.parent with
            | None -> ()
            | Some pid -> (
                match Hashtbl.find_opt ids pid with
                | None -> Alcotest.failf "span %d: unknown parent %d" e.id pid
                | Some parent ->
                    Alcotest.(check bool)
                      (Printf.sprintf "parent %d starts before child %d" pid e.id)
                      true
                      (parent.ts_ms <= e.ts_ms +. 1e-9))
          end)
        events)

let test_cross_peer_correlation () =
  with_obs (fun () ->
      let out = Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()) in
      Alcotest.(check bool) "finished" true out.finished;
      let by_corr = Hashtbl.create 8 in
      List.iter
        (fun (e : Trace.event) ->
          (* The query engine's index-attribution instants live on a
             ["query"] pseudo-track, not a peer track. *)
          if e.corr <> 0 && e.peer <> "query" then begin
            let ps = Option.value ~default:[] (Hashtbl.find_opt by_corr e.corr) in
            if not (List.mem e.peer ps) then
              Hashtbl.replace by_corr e.corr (e.peer :: ps)
          end)
        (Trace.events ());
      Alcotest.(check bool) "some correlated events" true
        (Hashtbl.length by_corr > 0);
      (* The computation is driven from p1 and must visit both
         providers: one correlation id covers all three peers. *)
      let widest =
        Hashtbl.fold (fun _ ps acc -> max acc (List.length ps)) by_corr 0
      in
      Alcotest.(check int) "one corr id spans all three peers" 3 widest)

let test_with_corr_restores () =
  let c = Trace.fresh_corr () in
  Alcotest.(check int) "outside" 0 (Trace.current_corr ());
  Trace.with_corr c (fun () ->
      Alcotest.(check int) "inside" c (Trace.current_corr ());
      Trace.with_corr (c + 1) (fun () ->
          Alcotest.(check int) "nested" (c + 1) (Trace.current_corr ()));
      Alcotest.(check int) "restored after nest" c (Trace.current_corr ()));
  Alcotest.(check int) "restored" 0 (Trace.current_corr ());
  (match Trace.with_corr c (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "restored on exception" 0 (Trace.current_corr ())

let test_disabled_records_nothing () =
  Trace.set_enabled false;
  Trace.clear ();
  let id =
    Trace.begin_span ~cat:"peer" ~peer:"p1" ~ts:0.0 "ghost"
  in
  Alcotest.(check int) "null span id" Trace.null id;
  Trace.end_span id ~ts:1.0;
  Trace.complete ~cat:"net" ~peer:"p1" ~ts:0.0 ~dur_ms:1.0 "ghost";
  Trace.instant ~cat:"sim" ~peer:"p1" ~ts:0.0 "ghost";
  Alcotest.(check int) "no events" 0 (Trace.count ());
  Metrics.set_enabled Metrics.default false;
  Metrics.incr Metrics.default ~peer:"p1" ~subsystem:"net" "messages_sent";
  Alcotest.(check int) "no metrics" 0
    (List.length (Metrics.snapshot Metrics.default))

(* --- metrics ------------------------------------------------------ *)

let test_metrics_deterministic () =
  let run () =
    Trace.clear ();
    Metrics.reset Metrics.default;
    ignore (Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()));
    Metrics.snapshot Metrics.default
  in
  with_obs (fun () ->
      let a = run () in
      let b = run () in
      Alcotest.(check bool) "non-empty" true (List.length a > 0);
      Alcotest.(check bool) "identical snapshots" true (a = b))

let test_metrics_match_stats () =
  with_obs (fun () ->
      let out = Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()) in
      Alcotest.(check int) "bytes agree with Stats.snapshot"
        out.stats.bytes
        (int_of_float (Metrics.total Metrics.default ~subsystem:"net" "bytes_sent"));
      Alcotest.(check int) "remote messages agree"
        out.stats.messages
        (int_of_float
           (Metrics.total Metrics.default ~subsystem:"net" "messages_sent"));
      Alcotest.(check int) "local messages agree"
        out.stats.local_messages
        (int_of_float
           (Metrics.total Metrics.default ~subsystem:"net" "local_messages")))

let test_metrics_kinds () =
  let m = Metrics.create () in
  Metrics.set_enabled m true;
  Metrics.incr m ~peer:"a" ~subsystem:"s" "c";
  Metrics.incr m ~peer:"a" ~by:4 ~subsystem:"s" "c";
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m ~peer:"a" ~subsystem:"s" "c");
  Metrics.gauge_max m ~peer:"a" ~subsystem:"s" "g" 2.0;
  Metrics.gauge_max m ~peer:"a" ~subsystem:"s" "g" 7.0;
  Metrics.gauge_max m ~peer:"a" ~subsystem:"s" "g" 3.0;
  Metrics.observe m ~peer:"a" ~subsystem:"s" "h" 0.5;
  Metrics.observe m ~peer:"b" ~subsystem:"s" "h" 100.0;
  (match Metrics.snapshot m with
  | [ e1; e2; e3; e4 ] ->
      (* Deterministic order: sorted by (peer, subsystem, name). *)
      Alcotest.(check string) "first" "c" e1.Metrics.name;
      Alcotest.(check string) "second" "g" e2.Metrics.name;
      (match e2.Metrics.sample with
      | Metrics.Value { max_value; _ } ->
          Alcotest.(check (float 1e-9)) "high-water" 7.0 max_value
      | _ -> Alcotest.fail "gauge expected");
      (match (e3.Metrics.sample, e4.Metrics.sample) with
      | Metrics.Dist { count = ca; _ }, Metrics.Dist { count = cb; _ } ->
          Alcotest.(check int) "hist count a" 1 ca;
          Alcotest.(check int) "hist count b" 1 cb
      | _ -> Alcotest.fail "histograms expected")
  | es -> Alcotest.failf "4 entries expected, got %d" (List.length es));
  Alcotest.(check (float 1e-9)) "total over peers" 100.5
    (Metrics.total m ~subsystem:"s" "h")

(* --- exporters ---------------------------------------------------- *)

(* A deliberately small JSON reader — just enough to check that the
   exporters emit well-formed JSON and preserve the event structure. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then raise (Bad "bad escape");
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; incr pos
             | '\\' -> Buffer.add_char buf '\\'; incr pos
             | '/' -> Buffer.add_char buf '/'; incr pos
             | 'n' -> Buffer.add_char buf '\n'; incr pos
             | 't' -> Buffer.add_char buf '\t'; incr pos
             | 'r' -> Buffer.add_char buf '\r'; incr pos
             | 'b' -> Buffer.add_char buf '\b'; incr pos
             | 'f' -> Buffer.add_char buf '\012'; incr pos
             | 'u' ->
                 if !pos + 4 >= n then raise (Bad "bad \\u");
                 let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                 (* The exporters escape whole bytes as their Latin-1
                    code points (0x00-0xFF). *)
                 Buffer.add_char buf (Char.chr (code land 0xFF));
                 pos := !pos + 5
             | c -> raise (Bad (Printf.sprintf "escape %c" c)));
            go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (incr pos; Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; members ((k, v) :: acc)
              | Some '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
              | _ -> raise (Bad "object")
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (incr pos; Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; elements (v :: acc)
              | Some ']' -> incr pos; Arr (List.rev (v :: acc))
              | _ -> raise (Bad "array")
            in
            elements []
      | Some 't' -> pos := !pos + 4; Bool true
      | Some 'f' -> pos := !pos + 5; Bool false
      | Some 'n' -> pos := !pos + 4; Null
      | Some _ ->
          let start = !pos in
          while
            !pos < n
            && (match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr pos
          done;
          if !pos = start then raise (Bad "value");
          Num (float_of_string (String.sub s start (!pos - start)))
      | None -> raise (Bad "eof")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

let traced_events () =
  with_obs (fun () ->
      ignore (Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()));
      Trace.events ())

let test_chrome_roundtrip () =
  let events = traced_events () in
  let json = Json.parse (Obs.Exporter.chrome_trace events) in
  let entries =
    match Json.member "traceEvents" json with
    | Some (Json.Arr es) -> es
    | _ -> Alcotest.fail "traceEvents array expected"
  in
  let spans, meta =
    List.partition
      (fun e ->
        match Json.member "ph" e with
        | Some (Json.Str ("X" | "i")) -> true
        | Some (Json.Str "M") -> false
        | _ -> Alcotest.fail "unexpected phase")
      entries
  in
  Alcotest.(check int) "every event exported" (List.length events)
    (List.length spans);
  (* Metadata names one process per distinct peer. *)
  let peers =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.peer) events)
  in
  Alcotest.(check int) "one process_name per peer" (List.length peers)
    (List.length meta);
  (* Timestamps are microseconds: the first X event's ts must be its
     source event's ts_ms x 1000. *)
  let x_events =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.Str "X"))
      spans
  in
  let first_span =
    List.find (fun (e : Trace.event) -> e.kind = Trace.Span) events
  in
  (match x_events with
  | first :: _ ->
      (match Json.member "ts" first with
      | Some (Json.Num ts) ->
          Alcotest.(check (float 0.5)) "microsecond timestamps"
            (first_span.ts_ms *. 1000.0) ts
      | _ -> Alcotest.fail "ts expected")
  | [] -> Alcotest.fail "no X events")

let test_jsonl_roundtrip () =
  let events = traced_events () in
  let lines =
    Obs.Exporter.jsonl events
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length events)
    (List.length lines);
  List.iter2
    (fun line (e : Trace.event) ->
      let j = Json.parse line in
      (match Json.member "name" j with
      | Some (Json.Str n) -> Alcotest.(check string) "name" e.name n
      | _ -> Alcotest.fail "name expected");
      (match Json.member "corr" j with
      | Some (Json.Num c) -> Alcotest.(check int) "corr" e.corr (int_of_float c)
      | _ -> Alcotest.fail "corr expected"))
    lines events

let test_metrics_json_parses () =
  with_obs (fun () ->
      ignore (Runtime.Exec.run_to_quiescence (join_system ()) ~ctx:p1 (join_plan ()));
      let j = Json.parse (Obs.Exporter.metrics_json Metrics.default) in
      match j with
      | Json.Arr entries ->
          Alcotest.(check int) "all entries exported"
            (List.length (Metrics.snapshot Metrics.default))
            (List.length entries)
      | _ -> Alcotest.fail "array expected")

(* --- run outcomes and Stats loopback ----------------------------- *)

let test_run_outcomes () =
  let sys = join_system () in
  let out = Runtime.Exec.run_to_quiescence sys ~ctx:p1 (join_plan ()) in
  Alcotest.(check bool) "quiescent" true (out.termination = `Quiescent);
  Alcotest.(check bool) "events counted" true (out.events > 0);
  let sys2 = join_system () in
  let out2 = Runtime.Exec.run_to_quiescence ~max_events:2 sys2 ~ctx:p1 (join_plan ()) in
  Alcotest.(check bool) "budget exhausted" true
    (out2.termination = `Budget_exhausted);
  Alcotest.(check bool) "truncated" true (not out2.finished)

let test_stats_loopback_trace () =
  let s = Net.Stats.create () in
  let a = peer "a" and b = peer "b" in
  Net.Stats.set_tracing s true;
  Net.Stats.record_send s ~at_ms:1.0 ~note:"remote" ~src:a ~dst:b ~bytes:10;
  Net.Stats.record_send s ~at_ms:2.0 ~note:"loop" ~src:a ~dst:a ~bytes:10;
  Alcotest.(check int) "loopback hidden by default" 1
    (List.length (Net.Stats.trace s));
  Net.Stats.set_trace_local s true;
  Alcotest.(check bool) "flag readable" true (Net.Stats.trace_local_enabled s);
  Net.Stats.record_send s ~at_ms:3.0 ~note:"loop" ~src:b ~dst:b ~bytes:5;
  (match Net.Stats.trace s with
  | [ _; e ] ->
      Alcotest.(check bool) "loopback entry recorded" true
        (Net.Peer_id.equal e.Net.Stats.src e.Net.Stats.dst)
  | es -> Alcotest.failf "2 entries expected, got %d" (List.length es));
  (* Local messages still never count toward bytes. *)
  let snap = Net.Stats.snapshot s in
  Alcotest.(check int) "bytes remote only" 10 snap.bytes;
  Alcotest.(check int) "local counted separately" 2 snap.local_messages

let suite =
  [
    Alcotest.test_case "span well-formedness" `Quick test_span_wellformed;
    Alcotest.test_case "cross-peer correlation" `Quick test_cross_peer_correlation;
    Alcotest.test_case "with_corr restores" `Quick test_with_corr_restores;
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "metrics deterministic" `Quick test_metrics_deterministic;
    Alcotest.test_case "metrics match Stats" `Quick test_metrics_match_stats;
    Alcotest.test_case "metric kinds" `Quick test_metrics_kinds;
    Alcotest.test_case "chrome exporter round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "jsonl exporter round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "metrics json parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "run outcomes" `Quick test_run_outcomes;
    Alcotest.test_case "stats loopback trace" `Quick test_stats_loopback_trace;
  ]
