(* V1-V7 of DESIGN.md: executable verification that the equivalence
   rules of Section 3.3 preserve behaviour.  For each base plan we
   enumerate every rewrite Rewrite.everywhere produces, execute the
   original and the rewritten plan on two freshly built, identical
   systems, and require (a) canonically equal emitted results, (b)
   equal Σ fingerprints (documents and services, auxiliary "_tmp"
   resources excluded), and (c) both runs to terminate. *)

open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names
module System = Runtime.System
module Exec = Runtime.Exec

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"
let all_peers = [ p1; p2; p3 ]

let catalog_xml =
  {|<catalog><item k="y"><name>alpha</name></item><item k="n"><name>beta</name></item><item k="y"><name>gamma</name></item><item k="n"><name>delta</name></item></catalog>|}

let orders_xml =
  {|<orders><order item="alpha"/><order item="gamma"/><order item="zeta"/></orders>|}

(* A fresh system with the reference Σ.  The inbox node id must be
   stable across rebuilds for plans with forward lists: we rebuild it
   with a dedicated namespace whose counter restarts every time. *)
let build_system ?transport ?wire ?flush_ms ?ack_delay_ms () =
  let sys =
    System.create ?transport ?wire ?flush_ms ?ack_delay_ms
      (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ])
  in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  System.load_document sys p3 ~name:"orders" ~xml:orders_xml;
  System.add_service sys p2
    (Doc.Service.declarative ~name:"find_wanted"
       (query
          {|query(1) for $x in $0//item where attr($x, "k") = "y" return <found>{$x}</found>|}));
  let inbox_gen = Xml.Node_id.Gen.create ~namespace:"inbox" in
  let inbox = Xml.Tree.element_of_string ~gen:inbox_gen "inbox" [] in
  let inbox_id = Option.get (Xml.Tree.id inbox) in
  System.add_document sys p3 ~name:"collector" inbox;
  (sys, inbox_id)

let sel_query =
  query
    {|query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{$x}</hit>|}

let join_query =
  query
    {|query(2) for $o in $0//order, $i in $1//item, $n in $i/name where attr($o, "item") = text($n) return <match>{$n}</match>|}

let wrap_query = query "query(1) for $h in $0 return <w>{$h}</w>"

let base_plans inbox_id =
  [
    ( "remote-selection",
      Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] );
    ( "two-site-join",
      Expr.query_at join_query ~at:p1
        ~args:[ Expr.doc "orders" ~at:"p3"; Expr.doc "cat" ~at:"p2" ] );
    ( "sc-with-forward",
      Expr.sc
        (Doc.Sc.make
           ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:p3 ]
           ~provider:(Names.At p2) ~service:"find_wanted"
           [ [ parse catalog_xml ] ])
        ~at:p1 );
    ( "query-over-sc",
      Expr.Query_app
        {
          query = Expr.Q_val { q = wrap_query; at = p1 };
          args =
            [
              Expr.Sc
                {
                  sc =
                    Doc.Sc.make ~provider:(Names.At p2) ~service:"find_wanted"
                      [ [ parse catalog_xml ] ];
                  at = p1;
                };
            ];
          at = p1;
        } );
    ( "duplicate-transfer",
      Expr.query_at
        (query
           {|query(2) for $x in $0//item, $y in $1//item where attr($x, "k") = "y" and attr($y, "k") = "n" return <pair/>|})
        ~at:p1
        ~args:
          [
            Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2");
            Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2");
          ] );
    ("plain-transfer", Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2"));
    ( "install-remote-copy",
      Expr.send_as_doc ~name:"catcopy" ~at:p1 (Expr.doc "cat" ~at:"p2") );
  ]

let execute plan =
  let sys, _ = build_system () in
  let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
  (out, System.fingerprint sys)

let fresh_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "_tmp_f%d" !n

let check_plan name plan =
  let (reference : Exec.outcome), ref_fp = execute plan in
  Alcotest.(check bool)
    (Printf.sprintf "%s: reference run terminates" name)
    true reference.finished;
  let rewrites =
    Algebra.Rewrite.everywhere ~peers:all_peers ~fresh:(fresh_counter ()) plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: has rewrites" name)
    true (rewrites <> []);
  List.iter
    (fun (r : Algebra.Rewrite.rewrite) ->
      let out, fp = execute r.result in
      let label = Printf.sprintf "%s / %s" name r.rule in
      Alcotest.(check bool)
        (Printf.sprintf "%s: terminates" label)
        true out.finished;
      Alcotest.(check bool)
        (Printf.sprintf "%s: same results" label)
        true
        (Xml.Canonical.equal_forest reference.results out.results);
      Alcotest.(check string)
        (Printf.sprintf "%s: same final state" label)
        ref_fp fp)
    rewrites

let make_case (name, plan) =
  ( Printf.sprintf "rules preserve: %s" name,
    `Quick,
    fun () -> check_plan name plan )

(* Two rewrite steps composed still preserve behaviour. *)
let test_two_step_composition () =
  let _, inbox_id = build_system () in
  ignore inbox_id;
  let plan = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let (reference : Exec.outcome), ref_fp = execute plan in
  let fresh = fresh_counter () in
  let step1 = Algebra.Rewrite.everywhere ~peers:all_peers ~fresh plan in
  let checked = ref 0 in
  List.iteri
    (fun i (r1 : Algebra.Rewrite.rewrite) ->
      if i mod 3 = 0 then
        (* Sample every third to keep runtime reasonable. *)
        List.iteri
          (fun j (r2 : Algebra.Rewrite.rewrite) ->
            if j mod 5 = 0 then begin
              incr checked;
              let out, fp = execute r2.result in
              let label = Printf.sprintf "%s; %s" r1.rule r2.rule in
              Alcotest.(check bool) (label ^ ": terminates") true out.finished;
              Alcotest.(check bool)
                (label ^ ": same results")
                true
                (Xml.Canonical.equal_forest reference.results out.results);
              Alcotest.(check string) (label ^ ": same state") ref_fp fp
            end)
          (Algebra.Rewrite.everywhere ~peers:all_peers ~fresh r1.result))
    step1;
  Alcotest.(check bool) "sampled some compositions" true (!checked > 5)

let suite =
  let _, inbox_id = build_system () in
  List.map make_case (base_plans inbox_id)
  @ [ ("two-step rule composition", `Quick, test_two_step_composition) ]
