(* Windowed telemetry engine, trace sampling and the query profiler:
   Timeseries ring semantics, the sampled-trace subset property,
   same-seed fingerprint determinism (including under faults and
   crash/restart), profiler sum-to-root, exporter escaping. *)

open Axml
open Helpers
module System = Runtime.System
module Trace = Obs.Trace
module Timeseries = Obs.Timeseries
module Metrics = Obs.Metrics

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

(* Every test owns the global observability state: start clean, leave
   clean (the runtime instruments the default registries). *)
let with_telemetry f =
  let reset () =
    Trace.set_enabled false;
    Trace.clear ();
    Trace.set_sampling ~seed:0 ~keep_one_in:1 ();
    Metrics.set_enabled Metrics.default false;
    Metrics.reset Metrics.default;
    Timeseries.set_enabled Timeseries.default false;
    Timeseries.reset Timeseries.default
  in
  reset ();
  Fun.protect ~finally:reset f

(* --- Timeseries ring semantics ----------------------------------- *)

let test_window_aggregates () =
  let t = Timeseries.create ~window_ms:10.0 ~ring:4 () in
  Timeseries.set_enabled t true;
  let h = Timeseries.handle t "k" in
  Timeseries.record_at h ~ts:12.0 3.0;
  Timeseries.record_at h ~ts:17.0 5.0;
  Timeseries.record_at h ~ts:25.0 7.0;
  (match Timeseries.read_window t "k" ~epoch:1 with
  | None -> Alcotest.fail "window 1 missing"
  | Some a ->
      Alcotest.(check int) "count" 2 a.Timeseries.w_count;
      Alcotest.(check (float 1e-9)) "sum" 8.0 a.Timeseries.w_sum;
      Alcotest.(check (float 1e-9)) "min" 3.0 a.Timeseries.w_min;
      Alcotest.(check (float 1e-9)) "max" 5.0 a.Timeseries.w_max;
      Alcotest.(check (float 1e-9)) "start" 10.0 a.Timeseries.w_start_ms);
  (match Timeseries.read_window t "k" ~epoch:2 with
  | None -> Alcotest.fail "window 2 missing"
  | Some a -> Alcotest.(check int) "count" 1 a.Timeseries.w_count);
  Alcotest.(check bool)
    "empty window absent" true
    (Timeseries.read_window t "k" ~epoch:0 = None)

let test_ring_eviction () =
  let t = Timeseries.create ~window_ms:10.0 ~ring:4 () in
  Timeseries.set_enabled t true;
  let h = Timeseries.handle t "k" in
  (* Epochs 0..5 through a 4-slot ring: 0 and 1 are overwritten by 4
     and 5 (same slot, newer epoch). *)
  for e = 0 to 5 do
    Timeseries.record_at h ~ts:(float_of_int e *. 10.0) 1.0
  done;
  Alcotest.(check bool)
    "epoch 0 evicted" true
    (Timeseries.read_window t "k" ~epoch:0 = None);
  Alcotest.(check bool)
    "epoch 1 evicted" true
    (Timeseries.read_window t "k" ~epoch:1 = None);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d live" e)
        true
        (Timeseries.read_window t "k" ~epoch:e <> None))
    [ 2; 3; 4; 5 ]

let test_rate_and_quantile () =
  let t = Timeseries.create ~window_ms:100.0 ~ring:8 () in
  Timeseries.set_enabled t true;
  let h = Timeseries.handle t "lat" in
  (* 10 observations in [0,100), 20 in [100,200); now = 250 so both are
     complete windows and the (empty) current one is excluded. *)
  for i = 0 to 9 do
    Timeseries.record_at h ~ts:(float_of_int i *. 10.0) 4.0
  done;
  for i = 0 to 19 do
    Timeseries.record_at h ~ts:(100.0 +. float_of_int i) 64.0
  done;
  Alcotest.(check (float 1e-9))
    "rate over 2 windows" 150.0
    (Timeseries.rate t "lat" ~now:250.0 ~windows:2);
  (* Merged histogram: 10 observations of 4.0, 20 of 64.0 — the median
     and above sit in the 64.0 bucket, low quantiles in the 4.0 one.
     Quantiles answer with the bucket's inclusive upper bound. *)
  let q q' = Timeseries.quantile t "lat" ~now:250.0 ~windows:8 ~q:q' in
  Alcotest.(check (float 1e-9)) "p25 bucket" 4.0 (q 0.25);
  Alcotest.(check (float 1e-9)) "p95 bucket" 64.0 (q 0.95);
  Alcotest.(check (float 1e-9)) "no data" 0.0
    (Timeseries.quantile t "none" ~now:250.0 ~windows:8 ~q:0.5)

let test_set_window_resets () =
  let t = Timeseries.create ~window_ms:10.0 ~ring:4 () in
  Timeseries.set_enabled t true;
  let h = Timeseries.handle t "k" in
  Timeseries.record_at h ~ts:5.0 1.0;
  Alcotest.(check bool) "live before" true (Timeseries.keys t <> []);
  Timeseries.set_window t 50.0;
  Alcotest.(check (float 1e-9)) "width changed" 50.0 (Timeseries.window_ms t);
  Alcotest.(check bool) "series dropped" true (Timeseries.keys t = []);
  (* Handles re-resolve against the new generation. *)
  Timeseries.record_at h ~ts:60.0 2.0;
  Alcotest.(check bool)
    "records in new grid" true
    (Timeseries.read_window t "k" ~epoch:1 <> None)

let test_disabled_records_nothing () =
  let t = Timeseries.create () in
  let h = Timeseries.handle t "k" in
  Timeseries.record_at h ~ts:1.0 1.0;
  Timeseries.observe t "k2" ~ts:1.0 1.0;
  Alcotest.(check bool) "no keys" true (Timeseries.keys t = []);
  Alcotest.(check string)
    "empty fingerprint is stable" (Timeseries.fingerprint t)
    (Timeseries.fingerprint (Timeseries.create ()))

(* --- flash-crowd runs under full telemetry ------------------------ *)

(* A small flash crowd (10 peers, 18 requests) driven to quiescence
   with everything enabled; returns (events, fingerprint). *)
let crowd_run ?fault ~scenario_seed ~keep () =
  Trace.set_enabled true;
  Trace.clear ();
  Trace.set_sampling ~seed:42 ~keep_one_in:keep ();
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  Timeseries.set_enabled Timeseries.default true;
  Timeseries.reset Timeseries.default;
  let fc =
    Workload.Scenarios.flash_crowd ~mirrors:3 ~subscribers:6
      ~requests_per_subscriber:3 ~transport:System.Reliable
      ~seed:scenario_seed ()
  in
  let sys = fc.Workload.Scenarios.fc_system in
  Option.iter (fun f -> System.inject_faults sys f) fault;
  let outcome, _ = System.run ~max_events:50_000 sys in
  Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
  (Trace.events (), Timeseries.fingerprint Timeseries.default)

(* Projection for trace comparisons: everything except the span ids
   (unsampled spans still consume no ids — but open/close interleaving
   differs between a thinned and a full recording, so parent links are
   the one field not preserved verbatim by sampling). *)
let project (e : Trace.event) =
  ( e.Trace.corr, e.Trace.op, e.Trace.name, e.Trace.cat, e.Trace.peer,
    e.Trace.ts_ms, e.Trace.dur_ms, e.Trace.kind = Trace.Instant, e.Trace.args )

let test_sampled_subset () =
  with_telemetry (fun () ->
      let full, _ = crowd_run ~scenario_seed:5 ~keep:1 () in
      let sampled, _ = crowd_run ~scenario_seed:5 ~keep:8 () in
      Alcotest.(check bool)
        "sampling thinned the trace" true
        (List.length sampled < List.length full && sampled <> []);
      (* keep_corr must reflect the sampled run's configuration. *)
      let expected =
        List.filter (fun (e : Trace.event) -> Trace.keep_corr e.Trace.corr) full
      in
      Alcotest.(check int)
        "same cardinality" (List.length expected) (List.length sampled);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "event matches" true (project a = project b))
        expected sampled)

let qcheck_sampled_subset =
  QCheck.Test.make ~count:6 ~name:"sampled trace = keep_corr subset of full"
    QCheck.(pair (int_range 1 50) (int_range 2 16))
    (fun (scenario_seed, keep) ->
      with_telemetry (fun () ->
          let full, _ = crowd_run ~scenario_seed ~keep:1 () in
          let sampled, _ = crowd_run ~scenario_seed ~keep () in
          let expected =
            List.filter
              (fun (e : Trace.event) -> Trace.keep_corr e.Trace.corr)
              full
          in
          List.length expected = List.length sampled
          && List.for_all2
               (fun a b -> project a = project b)
               expected sampled))

let test_fingerprint_deterministic () =
  with_telemetry (fun () ->
      let _, fp1 = crowd_run ~scenario_seed:7 ~keep:4 () in
      let _, fp2 = crowd_run ~scenario_seed:7 ~keep:4 () in
      Alcotest.(check string) "same-seed fingerprints agree" fp1 fp2;
      (* Sampling only thins the trace; the windowed load series are
         recorded unconditionally, so the fingerprint is also
         independent of the sampling rate. *)
      let _, fp3 = crowd_run ~scenario_seed:7 ~keep:1 () in
      Alcotest.(check string) "sampling-independent" fp1 fp3)

let test_fingerprint_deterministic_under_faults () =
  with_telemetry (fun () ->
      (* Lossy links plus a crash/restart of a mirror mid-run: the
         reliable transport re-delivers, and two same-seed replays must
         agree on every windowed aggregate. *)
      let fault () =
        Net.Fault.make
          ~profile:
            { Net.Fault.drop = 0.15; duplicate = 0.05; jitter_ms = 2.0 }
          ~events:
            [
              Net.Fault.Crash
                {
                  peer = peer "mirror001";
                  at_ms = 40.0;
                  restart_ms = Some 90.0;
                };
            ]
          ~quiet_after_ms:400.0 ~seed:13 ()
      in
      let _, fp1 = crowd_run ~fault:(fault ()) ~scenario_seed:9 ~keep:4 () in
      let _, fp2 = crowd_run ~fault:(fault ()) ~scenario_seed:9 ~keep:4 () in
      Alcotest.(check string) "replay fingerprints agree" fp1 fp2;
      Alcotest.(check bool)
        "faulty run differs from clean run" true
        (fp1 <> snd (crowd_run ~scenario_seed:9 ~keep:4 ())))

let test_doc_and_link_series_recorded () =
  with_telemetry (fun () ->
      let _, _ = crowd_run ~scenario_seed:3 ~keep:1 () in
      let keys = Timeseries.keys Timeseries.default in
      let has prefix =
        List.exists (fun k -> String.starts_with ~prefix k) keys
      in
      Alcotest.(check bool) "per-peer tx" true (has "peer/");
      Alcotest.(check bool) "per-link load" true (has "net/link/");
      Alcotest.(check bool) "per-doc load" true (has "doc/"))

(* --- profiler ------------------------------------------------------ *)

let join_system () =
  let sys = System.create (mesh [ "p1"; "p2"; "p3" ]) in
  let seed = ref 7 in
  List.iter
    (fun p ->
      let rng = Workload.Rng.create ~seed:!seed in
      incr seed;
      let g = System.gen_of sys p in
      System.add_document sys p ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng ~items:40 ~selectivity:0.2 ()))
    [ p2; p3 ];
  sys

let join_plan () =
  let join =
    query
      {|query(2) for $x in $0//item, $y in $1//item
        where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
        return <pair/>|}
  in
  Algebra.Expr.query_at join ~at:p1
    ~args:[ Algebra.Expr.doc "cat" ~at:"p2"; Algebra.Expr.doc "cat" ~at:"p3" ]

let test_profiler_sums_to_root () =
  with_telemetry (fun () ->
      Metrics.set_enabled Metrics.default true;
      let { Runtime.Exec.outcome; report } =
        Runtime.Exec.run_profiled (join_system ()) ~ctx:p1 (join_plan ())
      in
      Alcotest.(check bool) "finished" true outcome.Runtime.Exec.finished;
      Alcotest.(check bool)
        "exclusive times sum to root" true
        (Runtime.Profiler.sums_to_root report);
      Alcotest.(check bool)
        "root covers the run" true
        (report.Runtime.Profiler.root_ms > 0.0);
      (* query_app over two doc arguments = 3 operators, each with a
         finite estimate-error ratio. *)
      Alcotest.(check int)
        "one row per operator" 3
        (List.length report.Runtime.Profiler.rows);
      List.iter
        (fun (r : Runtime.Profiler.op_row) ->
          Alcotest.(check bool)
            (r.Runtime.Profiler.op_label ^ " err finite")
            true
            (Float.is_finite r.Runtime.Profiler.err_ratio
            && r.Runtime.Profiler.err_ratio >= 0.0))
        report.Runtime.Profiler.rows;
      (* The estimate-error distribution feeds the metrics registry. *)
      let snapshot = Metrics.snapshot Metrics.default in
      Alcotest.(check bool)
        "est_error_ratio recorded" true
        (List.exists
           (fun (e : Metrics.entry) ->
             e.Metrics.subsystem = "profiler"
             && e.Metrics.name = "est_error_ratio")
           snapshot))

let test_profiler_restores_sampling () =
  with_telemetry (fun () ->
      Trace.set_enabled false;
      Trace.set_sampling ~seed:3 ~keep_one_in:16 ();
      let _ = Runtime.Exec.run_profiled (join_system ()) ~ctx:p1 (join_plan ()) in
      Alcotest.(check bool) "tracing restored off" false (Trace.enabled ());
      Alcotest.(check bool)
        "sampling restored" true
        (Trace.sampling () = (3, 16)))

(* --- exporter escaping -------------------------------------------- *)

let test_exporter_escapes_hostile_names () =
  with_telemetry (fun () ->
      Trace.set_enabled true;
      let ts = 1.0 in
      Trace.instant ~cat:"t\tb" ~peer:"p\x01eer\xC3\xA9" ~ts
        ~args:[ ("k\"ey", "v\\al\nue") ]
        "sp\x7fan\"name";
      let events = Trace.events () in
      let ok_json s =
        (* Structural validity proxy: no raw control bytes survive
           (everything below 0x20 must be escaped to \uNNNN), and the
           quotes balance. *)
        String.for_all (fun c -> c = '\n' || Char.code c >= 0x20) s
        &&
        let quotes = ref 0 and escaped = ref false in
        String.iter
          (fun c ->
            if !escaped then escaped := false
            else if c = '\\' then escaped := true
            else if c = '"' then incr quotes)
          s;
        !quotes mod 2 = 0
      in
      Alcotest.(check bool)
        "chrome trace escapes" true
        (ok_json (Obs.Exporter.chrome_trace events));
      Alcotest.(check bool)
        "jsonl escapes" true
        (ok_json (Obs.Exporter.jsonl events));
      Alcotest.(check bool)
        "sanitize strips terminal controls" true
        (String.for_all
           (fun c -> Char.code c >= 0x20)
           (Obs.Exporter.sanitize "a\x1b[31mred\x07\tb")))

let suite =
  [
    Alcotest.test_case "timeseries: window aggregates" `Quick
      test_window_aggregates;
    Alcotest.test_case "timeseries: ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "timeseries: rate and quantile" `Quick
      test_rate_and_quantile;
    Alcotest.test_case "timeseries: set_window resets" `Quick
      test_set_window_resets;
    Alcotest.test_case "timeseries: disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "sampling: sampled trace is the keep_corr subset"
      `Quick test_sampled_subset;
    QCheck_alcotest.to_alcotest qcheck_sampled_subset;
    Alcotest.test_case "fingerprint: same-seed runs agree" `Quick
      test_fingerprint_deterministic;
    Alcotest.test_case "fingerprint: deterministic under faults + crash"
      `Quick test_fingerprint_deterministic_under_faults;
    Alcotest.test_case "series: doc, link and peer keys recorded" `Quick
      test_doc_and_link_series_recorded;
    Alcotest.test_case "profiler: exclusive times sum to root" `Quick
      test_profiler_sums_to_root;
    Alcotest.test_case "profiler: restores sampling state" `Quick
      test_profiler_restores_sampling;
    Alcotest.test_case "exporter: hostile names escaped" `Quick
      test_exporter_escapes_hostile_names;
  ]
