(* Web-scale harness coverage: the Pqueue hot-loop API, end-to-end
   determinism of the refactored System/Stats/Sim hot paths, and the
   flash-crowd scenario behind bench E20 / [axmlctl scale].

   The determinism tests are the contract the refactor had to keep:
   two runs of the same workload with the same seed must agree on the
   Σ fingerprint, the full statistics snapshot (per-link breakdown
   included) and the message trace, byte for byte. *)

open Axml
module Pqueue = Net.Pqueue
module System = Runtime.System
module Scenarios = Workload.Scenarios

(* --- Pqueue: take/last_time, cancellation, compaction ------------- *)

let test_take_matches_pop () =
  let mk () =
    let q = Pqueue.create () in
    List.iter
      (fun (t, v) -> Pqueue.push q ~time:t v)
      [ (3.0, "c"); (1.0, "a"); (1.0, "a2"); (2.0, "b"); (0.5, "z") ];
    q
  in
  let via_pop =
    let q = mk () in
    let rec drain acc =
      match Pqueue.pop q with
      | None -> List.rev acc
      | Some (t, v) -> drain ((t, v) :: acc)
    in
    drain []
  in
  let via_take =
    let q = mk () in
    let rec drain acc =
      match Pqueue.take q with
      | exception Pqueue.Empty -> List.rev acc
      | v -> drain ((Pqueue.last_time q, v) :: acc)
    in
    drain []
  in
  Alcotest.(check (list (pair (float 0.0) string)))
    "take drains in the same order as pop" via_pop via_take

let test_fifo_among_equal_times () =
  let q = Pqueue.create () in
  (* Interleave heap and ring paths: a strictly earlier push after the
     equal-time run forces the run into the heap. *)
  List.iter (fun s -> Pqueue.push q ~time:5.0 s) [ "a"; "b"; "c" ];
  Pqueue.push q ~time:1.0 "first";
  List.iter (fun s -> Pqueue.push q ~time:5.0 s) [ "d"; "e" ];
  let order =
    List.init 6 (fun _ -> snd (Option.get (Pqueue.pop q)))
  in
  Alcotest.(check (list string))
    "insertion order wins among equal times"
    [ "first"; "a"; "b"; "c"; "d"; "e" ]
    order

let test_cancelled_excluded_from_length () =
  let q = Pqueue.create () in
  let cancels =
    List.init 10 (fun i -> Pqueue.push_removable q ~time:(float_of_int i) i)
  in
  Alcotest.(check int) "all live" 10 (Pqueue.length q);
  (* Cancel the even entries; idempotence: cancel twice. *)
  List.iteri
    (fun i c ->
      if i mod 2 = 0 then begin
        c ();
        c ()
      end)
    cancels;
  Alcotest.(check int) "evens gone" 5 (Pqueue.length q);
  let popped =
    let rec drain acc =
      match Pqueue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> drain (v :: acc)
    in
    drain []
  in
  Alcotest.(check (list int)) "only odd survivors, in order"
    [ 1; 3; 5; 7; 9 ] popped;
  Alcotest.(check int) "empty afterwards" 0 (Pqueue.length q)

let test_compaction_preserves_order () =
  (* Cancel more than half the heap so compact fires, then verify the
     survivors still drain in (time, insertion) order. *)
  let q = Pqueue.create () in
  let n = 200 in
  let cancels =
    List.init n (fun i ->
        (i, Pqueue.push_removable q ~time:(float_of_int (i mod 7)) i))
  in
  List.iter (fun (i, c) -> if i mod 3 <> 0 then c ()) cancels;
  let survivors = List.filter (fun i -> i mod 3 = 0) (List.init n Fun.id) in
  Alcotest.(check int) "live count after mass cancel"
    (List.length survivors) (Pqueue.length q);
  let popped =
    let rec drain acc =
      match Pqueue.pop q with
      | None -> List.rev acc
      | Some (t, v) -> drain ((t, v) :: acc)
    in
    drain []
  in
  let expected =
    (* Stable sort by time keeps insertion order among equal times,
       which is exactly the queue's contract. *)
    List.stable_sort
      (fun (t1, _) (t2, _) -> compare (t1 : float) t2)
      (List.map (fun i -> (float_of_int (i mod 7), i)) survivors)
  in
  Alcotest.(check (list (pair (float 0.0) int)))
    "compaction preserves (time, insertion) order" expected popped

let test_cancel_after_pop_is_noop () =
  let q = Pqueue.create () in
  let cancel = Pqueue.push_removable q ~time:1.0 "x" in
  Pqueue.push q ~time:2.0 "y";
  Alcotest.(check (option string)) "pop x" (Some "x")
    (Option.map snd (Pqueue.pop q));
  cancel ();
  Alcotest.(check int) "y still live" 1 (Pqueue.length q);
  Alcotest.(check (option string)) "y pops" (Some "y")
    (Option.map snd (Pqueue.pop q))

(* --- Determinism of the refactored hot paths ---------------------- *)

(* Run one V-series base plan on a fresh system with tracing on and
   return everything observable: emitted results (canonical), the Σ
   fingerprint, the stats snapshot and the rendered trace. *)
let observe_plan plan =
  let sys, _ = Test_rules_exec.build_system () in
  let stats = Net.Sim.stats (System.sim sys) in
  Net.Stats.set_tracing stats true;
  let out = Runtime.Exec.run_to_quiescence sys ~ctx:(Helpers.peer "p1") plan in
  let results =
    List.map Xml.Canonical.fingerprint out.Runtime.Exec.results
  in
  let trace =
    List.map
      (fun e -> Format.asprintf "%a" Net.Stats.pp_trace_entry e)
      (Net.Stats.trace stats)
  in
  (results, System.fingerprint sys, System.stats sys, trace)

let test_plan_determinism () =
  let sys0, inbox_id = Test_rules_exec.build_system () in
  ignore sys0;
  List.iter
    (fun (name, plan) ->
      let r1, f1, s1, t1 = observe_plan plan in
      let r2, f2, s2, t2 = observe_plan plan in
      Alcotest.(check (list string)) (name ^ ": results") r1 r2;
      Alcotest.(check string) (name ^ ": fingerprint") f1 f2;
      Alcotest.(check bool) (name ^ ": stats snapshot") true (s1 = s2);
      Alcotest.(check (list string)) (name ^ ": trace") t1 t2)
    (Test_rules_exec.base_plans inbox_id)

let run_flash_crowd ~seed ~mirrors ~subscribers ~requests =
  let fc =
    Scenarios.flash_crowd ~mirrors ~subscribers
      ~requests_per_subscriber:requests ~seed ()
  in
  let sys = fc.Scenarios.fc_system in
  let budget = (8 * fc.Scenarios.fc_requests) + 10_000 in
  let outcome, events = System.run ~max_events:budget sys in
  (fc, sys, outcome, events)

let test_flash_crowd_smoke () =
  let fc, sys, outcome, _ =
    run_flash_crowd ~seed:7 ~mirrors:2 ~subscribers:4 ~requests:3
  in
  Alcotest.(check bool) "quiescent" true (outcome = `Quiescent);
  Alcotest.(check int) "all requests issued and completed"
    fc.Scenarios.fc_requests !(fc.Scenarios.fc_completed);
  Alcotest.(check int) "none unserved" 0 !(fc.Scenarios.fc_unserved);
  Alcotest.(check int) "requests = subscribers * per-subscriber" 12
    fc.Scenarios.fc_requests;
  let snap = System.stats sys in
  Alcotest.(check bool) "remote traffic flowed" true
    (snap.Net.Stats.messages > 0 && snap.Net.Stats.bytes > 0)

let flash_crowd_fingerprint ~seed =
  let fc, sys, _, events =
    run_flash_crowd ~seed ~mirrors:2 ~subscribers:3 ~requests:2
  in
  let snap = System.stats sys in
  ( System.fingerprint sys,
    System.now_ms sys,
    events,
    snap,
    !(fc.Scenarios.fc_completed) )

let flash_crowd_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"flash_crowd.same-seed-same-run"
       (QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 100_000))
       (fun seed ->
         let f1, now1, ev1, s1, c1 = flash_crowd_fingerprint ~seed in
         let f2, now2, ev2, s2, c2 = flash_crowd_fingerprint ~seed in
         f1 = f2 && now1 = now2 && ev1 = ev2 && s1 = s2 && c1 = c2))

let suite =
  [
    Alcotest.test_case "pqueue: take drains like pop" `Quick
      test_take_matches_pop;
    Alcotest.test_case "pqueue: FIFO among equal times" `Quick
      test_fifo_among_equal_times;
    Alcotest.test_case "pqueue: cancellation excluded from length" `Quick
      test_cancelled_excluded_from_length;
    Alcotest.test_case "pqueue: compaction preserves order" `Quick
      test_compaction_preserves_order;
    Alcotest.test_case "pqueue: cancel after pop is a no-op" `Quick
      test_cancel_after_pop_is_noop;
    Alcotest.test_case "determinism: V-series plans replay identically"
      `Quick test_plan_determinism;
    Alcotest.test_case "flash crowd: smoke" `Quick test_flash_crowd_smoke;
    flash_crowd_deterministic;
  ]
