(* Engine equivalence: the compiled/indexed fast path must be
   indistinguishable from the seed interpreter — same results, same
   order (byte-identical serialization), same tuple counts — and a
   structural index must stay consistent under randomized continuous
   appends.  All properties are seed-parameterized (see
   test_props.ml). *)

open Axml
module Rng = Workload.Rng
module Xml_gen = Workload.Xml_gen
module Query_gen = Workload.Query_gen

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let qtest ?(count = 80) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name seed_arb prop)

let fresh_gen =
  let n = ref 0 in
  fun () ->
    incr n;
    Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "engine%d" !n)

let with_threshold n f =
  let old = Query.Compile.index_threshold () in
  Query.Compile.set_index_threshold n;
  Fun.protect ~finally:(fun () -> Query.Compile.set_index_threshold old) f

let bytes_of = Xml.Serializer.forest_to_string

let random_query ~rng ~arity =
  let config = { Query_gen.default_config with Query_gen.arity } in
  if arity = 1 && Rng.bool rng then Query_gen.random_composed ~rng config
  else Query_gen.random_flwr ~rng config

(* Both engines on the same inputs: byte-identical output, identical
   tuple count. *)
let engines_agree ~threshold seed =
  let rng = Rng.create ~seed in
  let arity = 1 + Rng.int rng 2 in
  let q = random_query ~rng ~arity in
  let data_rng = Rng.create ~seed:(seed * 5) in
  let inputs =
    List.init arity (fun _ ->
        Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng
          ~trees:(1 + Rng.int rng 3) ())
  in
  with_threshold threshold (fun () ->
      let naive, n_count =
        Query.Compile.eval_counted ~engine:Query.Compile.Naive
          ~gen:(fresh_gen ()) q inputs
      in
      let indexed, i_count =
        Query.Compile.eval_counted ~engine:Query.Compile.Indexed
          ~gen:(fresh_gen ()) q inputs
      in
      bytes_of naive = bytes_of indexed && n_count = i_count)

let engines_agree_forced seed = engines_agree ~threshold:0 seed
let engines_agree_default seed = engines_agree ~threshold:128 seed

(* The compiled path raises exactly the interpreter's errors. *)
let errors_agree seed =
  let bad_queries =
    [
      (* unbound variable in where *)
      Query.Ast.flwr ~arity:1
        ~where:(Query.Ast.Exists ("ghost", []))
        [ { Query.Ast.var = "x"; source = Query.Ast.Input 0; path = [] } ]
        (Query.Ast.Copy_of "x");
      (* variable bound twice *)
      Query.Ast.flwr ~arity:1
        [
          { Query.Ast.var = "x"; source = Query.Ast.Input 0; path = [] };
          { Query.Ast.var = "x"; source = Query.Ast.Input 0; path = [] };
        ]
        (Query.Ast.Copy_of "x");
    ]
  in
  let arity_mismatch =
    Query.Ast.flwr ~arity:2
      [ { Query.Ast.var = "x"; source = Query.Ast.Input 0; path = [] } ]
      (Query.Ast.Copy_of "x")
  in
  let message engine q inputs =
    match Query.Compile.eval ~engine ~gen:(fresh_gen ()) q inputs with
    | _ -> None
    | exception Invalid_argument m -> Some m
  in
  ignore seed;
  List.for_all
    (fun (q, inputs) ->
      let a = message Query.Compile.Naive q inputs in
      let b = message Query.Compile.Indexed q inputs in
      a <> None && a = b)
    ((arity_mismatch, [ [] ])
    :: List.map (fun q -> (q, [ [] ])) bad_queries)

(* --- index maintenance ------------------------------------------- *)

let elements_of tree =
  let rec go acc t =
    match t with
    | Xml.Tree.Text _ -> acc
    | Xml.Tree.Element e -> List.fold_left go (e :: acc) e.children
  in
  List.rev (go [] tree)

(* Strict descendants of the root matching a label, in document order
   — the oracle for Index.descendants.  Collects the child values
   themselves (no rewrapping) so physical equality with the index's
   nodes is meaningful. *)
let naive_descendants ?label tree =
  let matches t =
    match (t, label) with
    | Xml.Tree.Element _, None -> true
    | Xml.Tree.Element e, Some l -> Xml.Label.equal e.label l
    | Xml.Tree.Text _, _ -> false
  in
  let rec go acc t =
    let acc = if matches t then t :: acc else acc in
    List.fold_left go acc (Xml.Tree.children t)
  in
  List.rev (List.fold_left go [] (Xml.Tree.children tree))

let index_consistent_after_appends seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let tree =
    ref
      (Xml.Tree.element ~gen:g
         (Xml.Label.of_string "root")
         [ Xml_gen.random_tree ~gen:g ~rng () ])
  in
  let ix = Xml.Index.build !tree in
  if not (Xml.Index.usable ix) then false
  else begin
    let rounds = 1 + Rng.int rng 6 in
    let ok = ref true in
    for _ = 1 to rounds do
      let targets = elements_of !tree in
      let target = (Rng.pick rng targets).Xml.Tree.id in
      let forest =
        Xml_gen.random_forest ~gen:g ~rng ~trees:(1 + Rng.int rng 2) ()
      in
      match Xml.Tree.insert_children ~under:target forest !tree with
      | None -> ok := false
      | Some tree' ->
          if not (Xml.Index.append ix ~new_root:tree' ~under:target forest)
          then ok := false
          else begin
            tree := tree';
            (* Every label (and the wildcard): postings agree with a
               fresh traversal, nodewise physically equal. *)
            let labels =
              None
              :: List.map
                   (fun l -> Some (Xml.Label.of_string l))
                   [ "a"; "b"; "c"; "item"; "name"; "value" ]
            in
            match Xml.Index.entry_of ix !tree with
            | None -> ok := false
            | Some root_entry ->
                List.iter
                  (fun label ->
                    let via_index =
                      List.map Xml.Index.node
                        (Xml.Index.descendants ?label ix root_entry)
                    in
                    let via_walk = naive_descendants ?label !tree in
                    if
                      List.length via_index <> List.length via_walk
                      || not (List.for_all2 ( == ) via_index via_walk)
                    then ok := false)
                  labels
          end
    done;
    !ok
  end

(* Incremental streaming with forced indexing: deltas still
   concatenate to the batch answer, and the cached input index keeps
   the same results as a from-scratch naive evaluation. *)
let incremental_indexed_equals_naive seed =
  let rng = Rng.create ~seed in
  let q = Query_gen.random_flwr ~rng Query_gen.default_config in
  let data_rng = Rng.create ~seed:(seed * 11) in
  let stream =
    Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng ~trees:6 ()
  in
  with_threshold 0 (fun () ->
      let g = fresh_gen () in
      let state = Query.Incremental.create q in
      let deltas =
        List.concat_map
          (fun t -> Query.Incremental.push ~gen:g state ~input:0 t)
          stream
      in
      let total = Query.Incremental.total_output ~gen:g state in
      let naive =
        Query.Compile.eval ~engine:Query.Compile.Naive ~gen:(fresh_gen ()) q
          [ stream ]
      in
      Xml.Canonical.equal_forest deltas total
      && bytes_of total = bytes_of naive)

(* Store-level inserts maintain the index rather than rebuilding: the
   indexed document keeps answering queries byte-identically. *)
let store_insert_maintains_index seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let store = Doc.Store.create () in
  let root =
    Xml.Tree.element ~gen:g
      (Xml.Label.of_string "root")
      [ Xml_gen.random_tree ~gen:g ~rng () ]
  in
  Doc.Store.add store (Doc.Document.make ~name:"d" root);
  let name = Doc.Names.Doc_name.of_string "d" in
  ignore (Doc.Store.index_of store name);
  let q =
    Query.Parser.parse_exn
      "query(1) for $x in $0//item return <out>{$x}</out>"
  in
  with_threshold 0 (fun () ->
      let ok = ref true in
      for _ = 1 to 1 + Rng.int rng 4 do
        let doc = Option.get (Doc.Store.find store name) in
        let targets = elements_of (Doc.Document.root doc) in
        let target = (Rng.pick rng targets).Xml.Tree.id in
        let forest = Xml_gen.random_forest ~gen:g ~rng ~trees:1 () in
        match Doc.Store.insert_under store name ~node:target forest with
        | None -> ok := false
        | Some doc' ->
            let inputs = [ [ Doc.Document.root doc' ] ] in
            let indexed =
              match Doc.Store.index_of store name with
              | Some ix when Xml.Index.usable ix ->
                  Query.Compile.eval_over ~engine:Query.Compile.Indexed
                    ~gen:(fresh_gen ()) q
                    [ ([ Doc.Document.root doc' ], Some ix) ]
              | _ ->
                  Query.Compile.eval ~engine:Query.Compile.Indexed
                    ~gen:(fresh_gen ()) q inputs
            in
            let naive =
              Query.Compile.eval ~engine:Query.Compile.Naive
                ~gen:(fresh_gen ()) q inputs
            in
            if bytes_of indexed <> bytes_of naive then ok := false
      done;
      !ok)

let suite =
  [
    qtest ~count:200 "indexed ≡ naive (forced indexing)" engines_agree_forced;
    qtest ~count:120 "indexed ≡ naive (default threshold)"
      engines_agree_default;
    qtest ~count:1 "error messages agree" errors_agree;
    qtest ~count:120 "index consistent under appends"
      index_consistent_after_appends;
    qtest ~count:80 "incremental indexed ≡ naive batch"
      incremental_indexed_equals_naive;
    qtest ~count:60 "store insert maintains index"
      store_insert_maintains_index;
  ]
