(* Property-based suites (qcheck, registered through qcheck-alcotest).

   Strategy: properties are parameterized by an integer seed; all
   structured values (trees, queries, streams) are derived
   deterministically from the seed through Workload.Rng, so failures
   reproduce exactly. *)

open Axml
module Rng = Workload.Rng
module Xml_gen = Workload.Xml_gen
module Query_gen = Workload.Query_gen

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let qtest ?(count = 60) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name seed_arb prop)

let fresh_gen =
  let n = ref 0 in
  fun () ->
    incr n;
    Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "prop%d" !n)

(* --- XML --- *)

let serialize_parse_roundtrip seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let t = Xml_gen.random_tree ~gen:g ~rng () in
  match t with
  | Xml.Tree.Text _ -> true (* bare text does not serialize standalone *)
  | Xml.Tree.Element _ ->
      let s = Xml.Serializer.to_string t in
      let t' = Xml.Parser.parse_exn ~keep_ws:true ~gen:(fresh_gen ()) s in
      Xml.Canonical.equal t t'

(* Serialize → parse → serialize must be byte-stable even on
   adversarial content: control characters and quotes in attribute
   values, carriage returns and markup characters in text, astral-
   plane code points, whitespace-only strings.  The first serialization
   fixes a canonical escaped form; reparsing and reserializing must
   reproduce it exactly (this is what lets serialized forests serve as
   dedup keys in batched transport frames). *)
let adversarial_fragments =
  [|
    "plain"; "two words"; ""; " "; "\n"; "\t"; "\r"; "\r\n"; "&"; "<"; ">";
    "\""; "'"; "&amp;"; "&#10;"; "]]>"; "\xc3\xa9" (* é *);
    "\xf0\x9d\x84\x9e" (* U+1D11E, astral *); "\xe2\x82\xac" (* € *);
    "a\nb\tc\rd"; "  leading and trailing  ";
  |]

let adversarial_string rng =
  String.concat ""
    (List.init (Rng.int rng 4) (fun _ ->
         adversarial_fragments.(Rng.int rng (Array.length adversarial_fragments))))

let rec adversarial_tree rng depth =
  let attrs =
    List.init (Rng.int rng 3) (fun i ->
        (Printf.sprintf "a%d" i, adversarial_string rng))
  in
  let children =
    if depth = 0 then []
    else
      List.init (Rng.int rng 4) (fun _ ->
          if Rng.int rng 3 = 0 then adversarial_tree rng (depth - 1)
          else Xml.Tree.Text (adversarial_string rng))
  in
  Xml.Tree.element_of_string ~attrs ~gen:(fresh_gen ())
    (Rng.pick rng [ "e"; "node"; "x-y"; "ns:tag" ])
    children

let adversarial_roundtrip_byte_stable seed =
  let rng = Rng.create ~seed in
  let t = adversarial_tree rng 3 in
  let s = Xml.Serializer.to_string t in
  let t' = Xml.Parser.parse_exn ~keep_ws:true ~gen:(fresh_gen ()) s in
  String.equal s (Xml.Serializer.to_string t')

(* Permute sibling elements only: element order is semantically free,
   while text segments keep their relative order (they denote one
   concatenated character stream). *)
let rec shuffle_tree rng = function
  | Xml.Tree.Text s -> Xml.Tree.Text s
  | Xml.Tree.Element e ->
      let children = List.map (shuffle_tree rng) e.children in
      let texts = List.filter Xml.Tree.is_text children in
      let elements =
        Rng.shuffle rng (List.filter Xml.Tree.is_element children)
      in
      Xml.Tree.Element { e with children = texts @ elements }

let canonical_invariant_under_permutation seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let t = Xml_gen.random_tree ~gen:g ~rng () in
  let shuffled = shuffle_tree (Rng.create ~seed:(seed + 1)) t in
  Xml.Canonical.equal t shuffled

let copy_preserves_canonical seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let t = Xml_gen.random_tree ~gen:g ~rng () in
  Xml.Canonical.equal t (Xml.Tree.copy ~gen:(fresh_gen ()) t)

let size_positive_and_additive seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let t = Xml_gen.random_tree ~gen:g ~rng () in
  let children_sum =
    List.fold_left (fun acc c -> acc + Xml.Tree.size c) 0 (Xml.Tree.children t)
  in
  Xml.Tree.size t = 1 + children_sum && Xml.Tree.size t > 0

let zipper_roundtrip seed =
  let rng = Rng.create ~seed in
  let g = fresh_gen () in
  let t = Xml_gen.random_tree ~gen:g ~rng () in
  let rec walk z budget =
    if budget = 0 then z
    else
      let moves =
        List.filter_map Fun.id
          [ Xml.Zipper.down z; Xml.Zipper.right z; Xml.Zipper.up z ]
      in
      match moves with
      | [] -> z
      | ms -> walk (Rng.pick rng ms) (budget - 1)
  in
  let z = walk (Xml.Zipper.of_tree t) 10 in
  Xml.Tree.equal_strict (Xml.Zipper.to_tree z) t

(* --- Content models --- *)

let alphabet = [ "a"; "b"; "c" ]

let rec random_model rng depth =
  let module Cm = Schema.Content_model in
  if depth = 0 then Cm.ref_ (Rng.pick rng alphabet)
  else
    match Rng.int rng 6 with
    | 0 -> Cm.seq [ random_model rng (depth - 1); random_model rng (depth - 1) ]
    | 1 -> Cm.alt [ random_model rng (depth - 1); random_model rng (depth - 1) ]
    | 2 -> Cm.star (random_model rng (depth - 1))
    | 3 -> Cm.plus (random_model rng (depth - 1))
    | 4 -> Cm.opt (random_model rng (depth - 1))
    | _ -> Cm.ref_ (Rng.pick rng alphabet)

let cm_matches m items =
  Schema.Content_model.matches_seq
    ~matches:(fun atom item ->
      match atom with
      | Schema.Content_model.Ref s -> s = item
      | Schema.Content_model.Text | Schema.Content_model.Wildcard -> true)
    items m

let nullable_iff_matches_empty seed =
  let rng = Rng.create ~seed in
  let m = random_model rng 3 in
  Schema.Content_model.nullable m = cm_matches m []

let star_closure seed =
  let module Cm = Schema.Content_model in
  let rng = Rng.create ~seed in
  let m = random_model rng 2 in
  let w = List.init (1 + Rng.int rng 3) (fun _ -> Rng.pick rng alphabet) in
  (* If m accepts w, star m accepts w repeated k times. *)
  if cm_matches m w then
    let k = 1 + Rng.int rng 3 in
    cm_matches (Cm.star m) (List.concat (List.init k (fun _ -> w)))
  else true

let seq_concatenation seed =
  let module Cm = Schema.Content_model in
  let rng = Rng.create ~seed in
  let m1 = random_model rng 2 and m2 = random_model rng 2 in
  let w1 = List.init (Rng.int rng 3) (fun _ -> Rng.pick rng alphabet) in
  let w2 = List.init (Rng.int rng 3) (fun _ -> Rng.pick rng alphabet) in
  if cm_matches m1 w1 && cm_matches m2 w2 then
    cm_matches (Cm.seq [ m1; m2 ]) (w1 @ w2)
  else true

(* --- Queries --- *)

let query_roundtrip seed =
  let rng = Rng.create ~seed in
  let q =
    if Rng.bool rng then Query_gen.random_flwr ~rng Query_gen.default_config
    else Query_gen.random_composed ~rng Query_gen.default_config
  in
  let s = Query.Ast.to_string q in
  match Query.Parser.parse s with
  | Ok q' -> Query.Ast.equal q q'
  | Error _ -> false

let query_eval_deterministic seed =
  let rng = Rng.create ~seed in
  let q = Query_gen.random_flwr ~rng Query_gen.default_config in
  let data_rng = Rng.create ~seed:(seed * 3) in
  let input =
    Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng ~trees:2 ()
  in
  let out1 = Query.Eval.eval ~gen:(fresh_gen ()) q [ input ] in
  let out2 = Query.Eval.eval ~gen:(fresh_gen ()) q [ input ] in
  Xml.Canonical.equal_forest out1 out2

let push_selection_equivalence seed =
  let rng = Rng.create ~seed in
  let q = Query_gen.random_flwr ~rng Query_gen.default_config in
  match Query.Compose.push_selection q with
  | None -> true
  | Some split ->
      let data_rng = Rng.create ~seed:(seed * 7) in
      let input =
        Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng ~trees:2 ()
      in
      let direct = Query.Eval.eval ~gen:(fresh_gen ()) q [ input ] in
      let composed =
        Query.Eval.eval ~gen:(fresh_gen ())
          (Query.Compose.apply_split split)
          [ input ]
      in
      Xml.Canonical.equal_forest direct composed

let incremental_equals_batch seed =
  let rng = Rng.create ~seed in
  let q = Query_gen.random_flwr ~rng Query_gen.default_config in
  let data_rng = Rng.create ~seed:(seed * 13) in
  let stream =
    Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng ~trees:4 ()
  in
  let g = fresh_gen () in
  let state = Query.Incremental.create q in
  let deltas =
    List.concat_map
      (fun t -> Query.Incremental.push ~gen:g state ~input:0 t)
      stream
  in
  Xml.Canonical.equal_forest deltas (Query.Incremental.total_output ~gen:g state)

let unfold_preserves_composition seed =
  (* Evaluating a composed query equals evaluating it unfolded by hand
     (rule 11 at the query level). *)
  let rng = Rng.create ~seed in
  let q = Query_gen.random_composed ~rng Query_gen.default_config in
  match q with
  | Query.Ast.Flwr _ -> true
  | Query.Ast.Compose (head, subs) ->
      let data_rng = Rng.create ~seed:(seed * 17) in
      let input =
        Xml_gen.random_forest ~gen:(fresh_gen ()) ~rng:data_rng ~trees:2 ()
      in
      let g = fresh_gen () in
      let direct = Query.Eval.eval ~gen:g q [ input ] in
      let intermediates =
        List.map (fun sub -> Query.Eval.eval ~gen:g sub [ input ]) subs
      in
      let staged =
        Query.Eval.eval ~gen:g (Query.Ast.Flwr head) intermediates
      in
      Xml.Canonical.equal_forest direct staged

(* --- Expressions --- *)

let random_expr rng =
  let module Expr = Algebra.Expr in
  let peers = [ "p1"; "p2"; "p3" ] in
  let rpeer () = Net.Peer_id.of_string (Rng.pick rng peers) in
  let rec go depth =
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 ->
          let data_rng = Rng.split rng in
          Expr.tree_at
            (Xml_gen.random_tree ~gen:(fresh_gen ()) ~rng:data_rng ())
            ~at:(rpeer ())
      | 1 -> Expr.doc "d" ~at:(Rng.pick rng peers)
      | _ -> Expr.doc_any "cls"
    else
      match Rng.int rng 5 with
      | 0 ->
          let q = Query_gen.random_flwr ~rng Query_gen.default_config in
          Expr.query_at q ~at:(rpeer ()) ~args:[ go (depth - 1) ]
      | 1 -> Expr.send_to_peer (rpeer ()) (go (depth - 1))
      | 2 -> Expr.eval_at (rpeer ()) (go (depth - 1))
      | 3 ->
          Expr.shared
            ~name:(Printf.sprintf "_tmp_p%d" (Rng.int rng 1000))
            ~at:(rpeer ()) ~value:(go (depth - 1)) ~body:(go (depth - 1))
      | _ -> Expr.send_as_doc ~name:"out" ~at:(rpeer ()) (go (depth - 1))
  in
  go (1 + Rng.int rng 2)

let expr_xml_roundtrip seed =
  let rng = Rng.create ~seed in
  let e = random_expr rng in
  match Algebra.Expr_xml.of_xml_string (Algebra.Expr_xml.to_xml_string e) with
  | Ok e' -> Algebra.Expr.equal e e'
  | Error _ -> false

let rewrites_are_wellformed seed =
  (* Every rewrite of a random expression serializes and deserializes:
     rewriting never produces garbage. *)
  let rng = Rng.create ~seed in
  let e = random_expr rng in
  let peers = List.map Net.Peer_id.of_string [ "p1"; "p2"; "p3" ] in
  let n = ref 0 in
  let fresh () =
    incr n;
    Printf.sprintf "_tmp_r%d" !n
  in
  List.for_all
    (fun (r : Algebra.Rewrite.rewrite) ->
      match
        Algebra.Expr_xml.of_xml_string (Algebra.Expr_xml.to_xml_string r.result)
      with
      | Ok e' -> Algebra.Expr.equal r.result e'
      | Error _ -> false)
    (Algebra.Rewrite.everywhere ~peers ~fresh e)

(* --- Rng --- *)

let rng_int_bounds seed =
  let rng = Rng.create ~seed in
  let bound = 1 + (seed mod 100) in
  List.for_all
    (fun _ ->
      let x = Rng.int rng bound in
      x >= 0 && x < bound)
    (List.init 50 Fun.id)

let rng_deterministic seed =
  let a = Rng.create ~seed and b = Rng.create ~seed in
  List.for_all (fun _ -> Rng.int a 1000 = Rng.int b 1000) (List.init 20 Fun.id)

let rng_shuffle_permutation seed =
  let rng = Rng.create ~seed in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  List.sort compare s = l

let suite =
  [
    qtest "serialize/parse round-trip" serialize_parse_roundtrip;
    qtest "adversarial round-trip is byte-stable" ~count:200
      adversarial_roundtrip_byte_stable;
    qtest "canonical invariant under sibling permutation"
      canonical_invariant_under_permutation;
    qtest "copy preserves canonical form" copy_preserves_canonical;
    qtest "tree size additive" size_positive_and_additive;
    qtest "zipper navigation preserves tree" zipper_roundtrip;
    qtest "nullable iff matches empty" nullable_iff_matches_empty;
    qtest "star closure" star_closure;
    qtest "seq concatenation" seq_concatenation;
    qtest "query print/parse round-trip" query_roundtrip;
    qtest "query evaluation deterministic" query_eval_deterministic;
    qtest "push-selection equivalence" push_selection_equivalence;
    qtest "incremental equals batch" ~count:40 incremental_equals_batch;
    qtest "unfold preserves composition" unfold_preserves_composition;
    qtest "expression xml round-trip" expr_xml_roundtrip;
    qtest "rewrites serialize cleanly" ~count:30 rewrites_are_wellformed;
    qtest "rng bounds" rng_int_bounds;
    qtest "rng deterministic" rng_deterministic;
    qtest "shuffle is a permutation" rng_shuffle_permutation;
  ]
