(* The unified planner: fingerprint soundness, visited-set ablation,
   cross-strategy agreement, reproducibility, and the planner's
   two-layer (rewrite search + per-site query optimization)
   pipeline. *)

open Axml
open Helpers
module Expr = Algebra.Expr
module Optimizer = Algebra.Optimizer
module Planner = Algebra.Planner

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"
let all_peers = [ p1; p2; p3 ]
let topo = mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ]

(* Large documents make delegation/pushing clearly profitable, so the
   strategies have something to disagree about. *)
let env = Algebra.Cost.default_env ~doc_bytes:(fun _ -> 60_000) topo
let sel_query = Workload.Xml_gen.selection_query ()

let join_query =
  query "query(2) for $a in $0, $b in $1 return <pair>{$a}{$b}</pair>"

let fixtures =
  [
    ("select", Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ]);
    ( "self-join",
      Expr.query_at join_query ~at:p1
        ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p2" ] );
    ( "join-2-peers",
      Expr.query_at join_query ~at:p1
        ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ] );
  ]

let run strategy ?visited plan =
  Optimizer.optimize ~env ~ctx:p1 ?visited strategy plan

let weight (r : Optimizer.result) = Algebra.Cost.weighted r.cost

(* --- fingerprint soundness -------------------------------------- *)

(* Two structurally equal expressions must have equal fingerprints,
   even when their embedded trees carry different node identifiers
   (Expr.equal compares forests canonically). *)
let test_fingerprint_node_id_blind () =
  let forest ns =
    let rng = Workload.Rng.create ~seed:7 in
    [
      Workload.Xml_gen.catalog
        ~gen:(Xml.Node_id.Gen.create ~namespace:ns)
        ~rng ~items:12 ~selectivity:0.25 ();
    ]
  in
  let e ns = Expr.Data_at { forest = forest ns; at = p1 } in
  let a = e "nsA" and b = e "nsB" in
  Alcotest.(check bool) "expressions equal" true (Expr.equal a b);
  Alcotest.(check bool) "fingerprints equal" true
    (Expr.Fingerprint.equal (Expr.fingerprint a) (Expr.fingerprint b))

(* Over random plans and all their rewrites: Expr.equal a b implies
   Fingerprint.equal (the visited table's correctness condition).
   Reuses the rules-preservation plan generator. *)
let fingerprint_soundness seed =
  let rng = Workload.Rng.create ~seed in
  let plan = Test_rules_random.random_plan rng in
  let n = ref 0 in
  let fresh () =
    incr n;
    Printf.sprintf "_tmp_fp%d" !n
  in
  let pool =
    plan
    :: List.map
         (fun (r : Algebra.Rewrite.rewrite) -> r.result)
         (Algebra.Rewrite.everywhere ~peers:all_peers ~fresh plan)
  in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          (not (Expr.equal a b))
          || Expr.Fingerprint.equal (Expr.fingerprint a) (Expr.fingerprint b))
        pool)
    pool

let fingerprint_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"Expr.equal implies Fingerprint.equal (plans and rewrites)"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
       fingerprint_soundness)

(* --- visited-set ablation ---------------------------------------- *)

(* The fingerprint memo must be a pure speedup: same plan set, same
   best cost, strictly fewer structural comparisons than the O(n²)
   list scan. *)
let test_fingerprint_memo_ablation () =
  List.iter
    (fun (name, plan) ->
      let equal_calls f =
        let before = Expr.equal_calls () in
        let r = f () in
        (r, Expr.equal_calls () - before)
      in
      let strategy = Optimizer.Exhaustive { depth = 2 } in
      let by_list, list_calls =
        equal_calls (fun () -> run strategy ~visited:`List plan)
      in
      let by_table, table_calls =
        equal_calls (fun () -> run strategy ~visited:`Fingerprint plan)
      in
      Alcotest.(check int)
        (name ^ ": same number of plans explored")
        by_list.explored by_table.explored;
      Alcotest.(check (float 1e-9))
        (name ^ ": same best cost")
        (weight by_list) (weight by_table);
      Alcotest.(check bool)
        (name ^ ": plans structurally equal")
        true
        (Expr.equal by_list.plan by_table.plan);
      Alcotest.(check bool)
        (Printf.sprintf "%s: fewer Expr.equal calls (%d < %d)" name table_calls
           list_calls)
        true (table_calls < list_calls))
    fixtures

(* --- cross-strategy agreement ------------------------------------ *)

let test_strategies_agree () =
  List.iter
    (fun (name, plan) ->
      let exhaustive = run (Optimizer.Exhaustive { depth = 2 }) plan in
      let greedy = run (Optimizer.Greedy { max_steps = 4 }) plan in
      let best_first = run (Optimizer.Best_first { max_expansions = 8 }) plan in
      let beam = run (Optimizer.Beam { width = 4; depth = 2 }) plan in
      Alcotest.(check bool)
        (name ^ ": best-first never costlier than greedy")
        true
        (weight best_first <= weight greedy +. 1e-9);
      Alcotest.(check bool)
        (name ^ ": beam never costlier than greedy")
        true
        (weight beam <= weight greedy +. 1e-9);
      Alcotest.(check (float 1e-9))
        (name ^ ": best-first matches exhaustive at depth 2")
        (weight exhaustive) (weight best_first);
      Alcotest.(check (float 1e-9))
        (name ^ ": beam matches exhaustive at depth 2")
        (weight exhaustive) (weight beam))
    fixtures

(* The select fixture needs an uphill step (push the selection, then
   delegate): greedy stalls in a local optimum there, and best-first's
   plateau-slack must climb out of it within a small budget. *)
let test_best_first_escapes_local_optimum () =
  let plan = List.assoc "select" fixtures in
  let greedy = run (Optimizer.Greedy { max_steps = 8 }) plan in
  let best_first = run (Optimizer.Best_first { max_expansions = 8 }) plan in
  Alcotest.(check bool) "greedy is stuck" true
    (weight greedy > weight best_first)

(* Deterministic fresh names (derived from the parent plan's
   fingerprint) make every strategy rebuild the identical best plan,
   and make re-runs reproducible. *)
let test_reproducible_plans () =
  List.iter
    (fun (name, plan) ->
      let a = run (Optimizer.Best_first { max_expansions = 8 }) plan in
      let b = run (Optimizer.Best_first { max_expansions = 8 }) plan in
      Alcotest.(check bool) (name ^ ": re-run returns the same plan") true
        (Expr.equal a.plan b.plan);
      Alcotest.(check (list string))
        (name ^ ": re-run returns the same trace")
        (List.map (fun (s : Optimizer.step) -> s.rule) a.trace)
        (List.map (fun (s : Optimizer.step) -> s.rule) b.trace);
      let exhaustive = run (Optimizer.Exhaustive { depth = 2 }) plan in
      Alcotest.(check bool)
        (name ^ ": exhaustive rebuilds the same best plan")
        true
        (Expr.equal a.plan exhaustive.plan))
    fixtures

(* --- map_children traversal order -------------------------------- *)

(* Regression: map_children must visit Shared's children in
   subexpressions order ([value; body]).  Record fields evaluate
   right-to-left, which used to swap the two slots for a stateful
   function — Rewrite.everywhere then rebuilt rewrites of the value
   into the body slot, silently deleting the query. *)
let test_map_children_order () =
  let value = Expr.doc "cat" ~at:"p2" in
  let body = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "shared" ~at:"p2" ] in
  let shared =
    Expr.Shared
      { name = Doc.Names.Doc_name.of_string "shared"; at = p2; value; body }
  in
  let seen = ref [] in
  ignore
    (Expr.map_children
       (fun c ->
         seen := c :: !seen;
         c)
       shared);
  Alcotest.(check int) "two children" 2 (List.length !seen);
  (match List.rev !seen with
  | [ first; second ] ->
      Alcotest.(check bool) "value visited first" true (Expr.equal first value);
      Alcotest.(check bool) "body visited second" true (Expr.equal second body)
  | _ -> Alcotest.fail "expected two children");
  (* Positional replacement of child 0 must land in the value slot. *)
  let replacement = Expr.doc "other" ~at:"p3" in
  let j = ref (-1) in
  match
    Expr.map_children
      (fun k ->
        incr j;
        if !j = 0 then replacement else k)
      shared
  with
  | Expr.Shared { value = v; body = b; _ } ->
      Alcotest.(check bool) "value replaced" true (Expr.equal v replacement);
      Alcotest.(check bool) "body intact" true (Expr.equal b body)
  | _ -> Alcotest.fail "still a Shared node"

(* --- the unified planner ----------------------------------------- *)

let test_planner_end_to_end () =
  let plan = List.assoc "select" fixtures in
  let r =
    Planner.plan ~env ~ctx:p1 (Optimizer.Best_first { max_expansions = 8 }) plan
  in
  Alcotest.(check bool) "improves on the naive plan" true
    (Algebra.Cost.weighted r.cost
    < Algebra.Cost.weighted r.search.Optimizer.initial_cost);
  Alcotest.(check bool) "counts structural comparisons" true (r.equal_calls > 0);
  Alcotest.(check string) "names its strategy" "best-first(expansions=8)"
    r.strategy;
  let json = Planner.explain_json r in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "explain JSON mentions %S" key)
        true
        (contains (Printf.sprintf "%S" key) json))
    [ "strategy"; "initial_cost"; "final_cost"; "trace"; "queries_optimized" ]

let test_planner_execution_correct () =
  (* The planner's chosen plan must produce the naive plan's answers
     on a live system, with less traffic. *)
  let build () =
    let sys = Runtime.System.create topo in
    let rng = Workload.Rng.create ~seed:21 in
    let g = Runtime.System.gen_of sys p2 in
    Runtime.System.add_document sys p2 ~name:"cat"
      (Workload.Xml_gen.catalog ~gen:g ~rng ~items:120 ~selectivity:0.1 ());
    sys
  in
  let naive = List.assoc "select" fixtures in
  let reference = Runtime.Exec.run_to_quiescence (build ()) ~ctx:p1 naive in
  let planned, outcome =
    Runtime.Exec.run_optimized (build ()) ~ctx:p1
      ~strategy:(Optimizer.Best_first { max_expansions = 8 })
      naive
  in
  Alcotest.(check bool) "same answers" true
    (Xml.Canonical.equal_forest reference.results outcome.results);
  Alcotest.(check bool) "fewer bytes on the wire" true
    (outcome.stats.bytes < reference.stats.bytes);
  Alcotest.(check bool) "planner reports an improvement" true
    (Algebra.Cost.weighted planned.Planner.cost
    < Algebra.Cost.weighted planned.Planner.search.Optimizer.initial_cost)

let suite =
  [
    ("fingerprints are node-id blind", `Quick, test_fingerprint_node_id_blind);
    fingerprint_prop;
    ("fingerprint memo: same plans, fewer comparisons", `Quick,
     test_fingerprint_memo_ablation);
    ("strategies agree on the fixtures", `Quick, test_strategies_agree);
    ("best-first escapes greedy's local optimum", `Quick,
     test_best_first_escapes_local_optimum);
    ("plans are reproducible across runs and strategies", `Quick,
     test_reproducible_plans);
    ("map_children visits Shared children in order", `Quick,
     test_map_children_order);
    ("planner end to end", `Quick, test_planner_end_to_end);
    ("planned execution stays correct", `Quick, test_planner_execution_correct);
  ]
