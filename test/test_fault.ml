(* Chaos and failover suite (DESIGN.md §12).

   The V-series plans of test_rules_exec.ml are re-run here under
   randomized fault plans with eventual connectivity.  The property:
   with the [Reliable] transport, a faulty run must reach quiescence
   with the same canonical results and the same Σ fingerprint as the
   fault-free run — faults may cost time and bytes, never answers.
   The [Raw] ablation shows the property is earned by the protocol,
   not vacuous: under the same fault plans, raw datagrams lose data.

   Crash/recovery is covered by directed tests (random plans never
   contain crashes: a crash wipes volatile continuations, so result
   equality is not a theorem there — durability of documents is). *)

open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names
module System = Runtime.System
module Exec = Runtime.Exec
module Fault = Net.Fault

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"
let all_peers = [ p1; p2; p3 ]

(* The shared base plans, and their fault-free Reliable reference
   outcomes.  The reference must itself run over [Reliable]: in-order
   buffering can normalize cross-message delivery order, so Raw and
   Reliable are compared each against their own transport's baseline. *)
let plans =
  lazy
    (let _, inbox_id = Test_rules_exec.build_system () in
     Test_rules_exec.base_plans inbox_id)

let run_reliable ?fault plan =
  let sys, _ = Test_rules_exec.build_system ~transport:System.Reliable () in
  Option.iter (System.inject_faults sys) fault;
  let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
  (out, System.fingerprint sys)

let reference =
  lazy
    (List.map
       (fun (name, plan) -> (name, run_reliable plan))
       (Lazy.force plans))

let agrees ~(reference : Exec.outcome * string) (out : Exec.outcome) fp =
  let ref_out, ref_fp = reference in
  out.termination = `Quiescent && out.finished
  && Xml.Canonical.equal_forest ref_out.results out.results
  && String.equal ref_fp fp

(* --- the chaos property ------------------------------------------- *)

let chaos_arb =
  let n = List.length (Lazy.force plans) in
  QCheck.make
    ~print:(fun (idx, seed) ->
      Printf.sprintf "plan=%s seed=%d" (fst (List.nth (Lazy.force plans) idx)) seed)
    QCheck.Gen.(pair (int_bound (n - 1)) (int_bound 99_999))

let chaos_property =
  QCheck.Test.make ~count:200
    ~name:"reliable runs match the fault-free Σ under random faults" chaos_arb
    (fun (idx, seed) ->
      let name, plan = List.nth (Lazy.force plans) idx in
      let out, fp =
        run_reliable ~fault:(Fault.random ~seed all_peers) plan
      in
      agrees ~reference:(List.assoc name (Lazy.force reference)) out fp)

(* --- the chaos property, batched transport ------------------------- *)

(* Same property, Reliable in batched mode: random coalescing windows
   and ack delays on top of random faults must still reproduce the
   fault-free forest and Σ fingerprint.  Knob value 0/0 is excluded by
   construction (that is the unbatched property above); the arrays mix
   flush-only, ack-delay-only and combined configurations. *)
let flush_choices = [| 0.0; 0.5; 2.0; 5.0 |]
let ack_choices = [| 1.0; 8.0; 20.0 |]

let batched_chaos_arb =
  let n = List.length (Lazy.force plans) in
  let knobs (ki : int) =
    (* 0..11: flush x ack, plus pure-flush rows with ack 0. *)
    if ki < Array.length flush_choices - 1 then (flush_choices.(ki + 1), 0.0)
    else
      let ki = ki - (Array.length flush_choices - 1) in
      (flush_choices.(ki / 3), ack_choices.(ki mod 3))
  in
  let n_knobs = Array.length flush_choices - 1 + (Array.length flush_choices * 3) in
  QCheck.make
    ~print:(fun (idx, seed, ki) ->
      let f, a = knobs ki in
      Printf.sprintf "plan=%s seed=%d flush_ms=%g ack_delay_ms=%g"
        (fst (List.nth (Lazy.force plans) idx))
        seed f a)
    QCheck.Gen.(
      triple (int_bound (n - 1)) (int_bound 99_999) (int_bound (n_knobs - 1)))
  |> fun arb -> (arb, knobs)

let batched_chaos_property =
  let arb, knobs = batched_chaos_arb in
  QCheck.Test.make ~count:200
    ~name:"batched reliable runs match the fault-free Σ under random faults"
    arb
    (fun (idx, seed, ki) ->
      let name, plan = List.nth (Lazy.force plans) idx in
      let flush_ms, ack_delay_ms = knobs ki in
      let sys, _ =
        Test_rules_exec.build_system ~transport:System.Reliable ~flush_ms
          ~ack_delay_ms ()
      in
      System.inject_faults sys (Fault.random ~seed all_peers);
      let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
      agrees
        ~reference:(List.assoc name (Lazy.force reference))
        out (System.fingerprint sys))

(* --- the chaos property, adaptive placement ------------------------ *)

(* The placement controller mutates live state — forwarding links,
   replica installs, class registrations — so it gets its own chaos
   property over the hotspot workload: with the controller ON, under
   random drops, a partition and two crash/restart cycles, the run
   must still quiesce with the {e static-placement fault-free} Σ
   content fingerprint ([System.content_fingerprint] collapses
   identical replicas, so converged copies are invisible and any
   lost, duplicated or stalled append is not).

   The hotspot's contents and appends are functions of the document
   index, but {e which} documents receive appends is the seed-chosen
   hot set — so the reference is computed per hotspot seed.

   Fault-plan shape: probabilistic faults quiet by 400 ms, crashes at
   2000/2600 ms.  The gap is deliberate: a message dropped before the
   quiet line has retried successfully by quiet + max-backoff
   (32·rto = 1280 ms), so no crash can wipe a pending retransmission
   whose sequence number the receiver still awaits — the one race the
   WAL-modelled transport cannot heal (durable cursors, volatile
   in-flight state).  Within that discipline, result equality under
   crashes is a theorem; the directed placement tests cover the
   crash-mid-handoff races themselves. *)

module Placement = Runtime.Placement
module Scenarios = Workload.Scenarios
module Rng = Net.Rng
module Ts = Obs.Timeseries

let hotspot_shape ~steered ~seed () =
  Scenarios.hotspot ~owners:3 ~spares:2 ~readers:4 ~docs:8 ~hot_fraction:0.15
    ~hot_share:0.9 ~reads_per_reader:6 ~appends:6 ~append_every_ms:300.0
    ~payload_bytes:512 ~think_ms:2.0 ~arrival_window_ms:100.0 ~steered ~seed ()

let placement_reference_fp hotspot_seed =
  (* Static placement, fault-free, telemetry off: readers spread by
     seeded [Random], nothing migrates. *)
  let hs = hotspot_shape ~steered:false ~seed:hotspot_seed () in
  let out, _ = System.run hs.Scenarios.hs_system in
  Alcotest.(check bool) "reference quiescent" true (out = `Quiescent);
  System.content_fingerprint hs.Scenarios.hs_system

let placement_chaos_plan ~seed (hs : Scenarios.hotspot) =
  let r = Rng.create ~seed:((seed * 31) + 5) in
  let storage = hs.Scenarios.hs_owners @ hs.Scenarios.hs_spares in
  let profile =
    {
      Fault.drop = 0.15 *. Net.Rng.float r 1.0;
      duplicate = 0.05 *. Net.Rng.float r 1.0;
      jitter_ms = 3.0 *. Net.Rng.float r 1.0;
    }
  in
  let island = [ List.nth storage (Rng.int r (List.length storage)) ] in
  let victims = Rng.shuffle r storage in
  Fault.make ~profile
    ~events:
      [
        Fault.Partition
          { island; window = Fault.window ~from_ms:100.0 ~until_ms:250.0 };
        Fault.Crash
          { peer = List.nth victims 0; at_ms = 2000.0; restart_ms = Some 2250.0 };
        Fault.Crash
          { peer = List.nth victims 1; at_ms = 2600.0; restart_ms = Some 2850.0 };
      ]
    ~quiet_after_ms:400.0 ~seed ()

(* Accumulated across all 200 cases; a vacuous property (controller
   never fires) must fail, not pass silently. *)
let placement_migrations_seen = ref 0

let placement_chaos_case (hotspot_seed, fault_seed) =
  let reference = placement_reference_fp hotspot_seed in
  let reg = Ts.default in
  Ts.set_window reg 10.0;
  Ts.set_enabled reg true;
  Fun.protect
    ~finally:(fun () ->
      Ts.set_enabled reg false;
      Ts.set_window reg 100.0)
    (fun () ->
      let hs = hotspot_shape ~steered:true ~seed:hotspot_seed () in
      let sys = hs.Scenarios.hs_system in
      let _fo = Runtime.Failover.enable sys in
      let storage = hs.Scenarios.hs_owners @ hs.Scenarios.hs_spares in
      let ctl =
        Placement.enable
          ~cfg:
            {
              Placement.default_config with
              tick_ms = 20.0;
              windows = 2;
              hot_rate = 20.0;
              migrations_per_tick = 2;
              handoff_timeout_ms = 500.0;
              seed = hotspot_seed + 99;
              eligible =
                Some (fun p -> List.exists (Net.Peer_id.equal p) storage);
            }
          sys
      in
      System.inject_faults sys (placement_chaos_plan ~seed:fault_seed hs);
      let out, _ = System.run sys in
      placement_migrations_seen :=
        !placement_migrations_seen + (Placement.stats ctl).Placement.s_started;
      out = `Quiescent && String.equal reference (System.content_fingerprint sys))

let placement_chaos_arb =
  QCheck.make
    ~print:(fun (hs, fs) -> Printf.sprintf "hotspot_seed=%d fault_seed=%d" hs fs)
    QCheck.Gen.(pair (int_bound 99_999) (int_bound 99_999))

let placement_chaos_property =
  QCheck.Test.make ~count:200
    ~name:
      "adaptive placement under drops/partitions/crashes matches the static \
       fault-free Σ content"
    placement_chaos_arb placement_chaos_case

(* --- Raw ablation -------------------------------------------------- *)

(* A harsh but eventually-quiet profile.  Reliable must still converge
   on every seed; Raw must diverge on at least one (in fact most). *)
let harsh seed =
  Fault.make
    ~profile:{ Fault.drop = 0.25; duplicate = 0.05; jitter_ms = 2.0 }
    ~quiet_after_ms:400.0 ~seed ()

let ablation_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_raw_ablation () =
  let name, plan = List.nth (Lazy.force plans) 1 (* two-site-join *) in
  let reference = List.assoc name (Lazy.force reference) in
  let raw_divergences =
    List.filter
      (fun seed ->
        (* Reliable survives this exact plan… *)
        let out, fp = run_reliable ~fault:(harsh seed) plan in
        Alcotest.(check bool)
          (Printf.sprintf "reliable converges (seed %d)" seed)
          true
          (agrees ~reference out fp);
        (* …Raw gets the same faults without the protocol. *)
        let sys, _ = Test_rules_exec.build_system ~transport:System.Raw () in
        System.inject_faults sys (harsh seed);
        let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
        not (agrees ~reference out (System.fingerprint sys)))
      ablation_seeds
  in
  Alcotest.(check bool) "raw transport loses data under drops" true
    (raw_divergences <> [])

(* --- determinism --------------------------------------------------- *)

(* Trace span ids and correlation ids come from global counters that
   [Trace.clear] deliberately does not reset, so two identical runs
   differ in raw ids.  Project ids out and renumber correlations by
   first occurrence; everything else must match bit-for-bit. *)
let normalized_trace () =
  let tbl = Hashtbl.create 32 in
  let norm_corr c =
    if c = 0 then 0
    else
      match Hashtbl.find_opt tbl c with
      | Some v -> v
      | None ->
          let v = Hashtbl.length tbl + 1 in
          Hashtbl.add tbl c v;
          v
  in
  List.map
    (fun (e : Obs.Trace.event) ->
      ( norm_corr e.corr, e.name, e.cat, e.peer, e.ts_ms, e.dur_ms,
        (match e.kind with Obs.Trace.Span -> "span" | Obs.Trace.Instant -> "instant"),
        e.args ))
    (Obs.Trace.events ())

let observed_chaos_run seed =
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  Obs.Metrics.reset Obs.Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ();
      Obs.Metrics.set_enabled Obs.Metrics.default false;
      Obs.Metrics.reset Obs.Metrics.default)
    (fun () ->
      let _, plan = List.nth (Lazy.force plans) 1 in
      let sys, _ =
        Test_rules_exec.build_system ~transport:System.Reliable ()
      in
      System.inject_faults sys (Fault.random ~seed all_peers);
      let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
      (out.stats, Obs.Metrics.snapshot Obs.Metrics.default, normalized_trace ()))

let test_same_seed_same_run () =
  let stats_a, metrics_a, trace_a = observed_chaos_run 42 in
  let stats_b, metrics_b, trace_b = observed_chaos_run 42 in
  Alcotest.(check bool) "identical stats" true (stats_a = stats_b);
  Alcotest.(check bool) "identical metrics snapshots" true
    (metrics_a = metrics_b);
  Alcotest.(check bool) "identical trace event sequences" true
    (trace_a = trace_b)

let test_different_seeds_differ () =
  Alcotest.(check bool) "seeds 1 and 2 give different plans" true
    (Fault.random ~seed:1 all_peers <> Fault.random ~seed:2 all_peers);
  Alcotest.(check bool) "seeds 3 and 4 give different plans" true
    (Fault.random ~seed:3 all_peers <> Fault.random ~seed:4 all_peers)

(* --- crash and recovery ------------------------------------------- *)

(* A continuous extern service streaming [k] numbered siblings, spaced
   out by [response_delay_ms] so batches straddle the crash window. *)
let streamer k =
  Doc.Service.extern ~name:"streamer"
    ~signature:(Schema.Signature.untyped ~arity:0)
    (fun _ ->
      let g = Xml.Node_id.Gen.create ~namespace:"stream" in
      List.init k (fun i ->
          Xml.Tree.element_of_string ~gen:g "s" [ Xml.Tree.text (string_of_int i) ]))

let batches = 6

let crash_system () =
  let sys =
    System.create ~transport:System.Reliable ~response_delay_ms:30.0
      (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ])
  in
  let fo = Runtime.Failover.enable sys in
  System.add_service sys p2 (streamer batches);
  let inbox_gen = Xml.Node_id.Gen.create ~namespace:"chaos-inbox" in
  let inbox = Xml.Tree.element_of_string ~gen:inbox_gen "inbox" [] in
  let inbox_id = Option.get (Xml.Tree.id inbox) in
  System.add_document sys p3 ~name:"collector" inbox;
  (sys, fo, inbox_id)

let child_texts tree =
  Xml.Tree.children tree
  |> List.map (fun c -> String.trim (Xml.Tree.text_content c))
  |> List.sort String.compare

let distinct l = List.length (List.sort_uniq String.compare l) = List.length l

let crash_plan ~at_ms ~restart_ms =
  Fault.make
    ~events:[ Fault.Crash { peer = p3; at_ms; restart_ms = Some restart_ms } ]
    ~seed:0 ()

(* Stream into a [Node] reply destination; crash the collector's host
   mid-stream.  Recovery must resume accumulation without duplicating
   or losing siblings — the restored inbox keeps its node identity, so
   pre-crash reply destinations stay routable. *)
let test_crash_recovery_node_dest () =
  let plan inbox_id =
    Expr.sc
      (Doc.Sc.make
         ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:p3 ]
         ~provider:(Names.At p2) ~service:"streamer" [])
      ~at:p1
  in
  let run fault =
    let sys, fo, inbox_id = crash_system () in
    Option.iter (System.inject_faults sys) fault;
    let out = Exec.run_to_quiescence sys ~ctx:p1 (plan inbox_id) in
    Alcotest.(check bool) "quiescent" true (out.termination = `Quiescent);
    let doc = Option.get (System.find_document sys p3 "collector") in
    (child_texts (Doc.Document.root doc), System.fingerprint sys, sys, fo)
  in
  let ref_texts, ref_fp, _, _ = run None in
  Alcotest.(check int) "fault-free run collects every batch" batches
    (List.length ref_texts);
  let texts, fp, sys, fo =
    run (Some (crash_plan ~at_ms:60.0 ~restart_ms:140.0))
  in
  Alcotest.(check bool) "a checkpoint was taken" true
    (Runtime.Failover.snapshot fo p3 <> None);
  let rc = System.reliability_counters sys in
  Alcotest.(check bool) "batches were retransmitted across the outage" true
    (rc.System.retransmits > 0);
  Alcotest.(check bool) "no duplicated or lost siblings" true (distinct texts);
  Alcotest.(check (list string)) "same siblings as the fault-free run"
    ref_texts texts;
  Alcotest.(check string) "same Σ fingerprint" ref_fp fp

(* Same crash, but the stream materializes as an installed document
   ([Install] destination): the first batch creates the document, the
   crash lands mid-accumulation, recovery restores the partial copy
   and the retransmitted batches finish it. *)
let test_crash_recovery_install_dest () =
  let plan =
    Expr.send_as_doc ~name:"copy" ~at:p3
      (Expr.sc (Doc.Sc.make ~provider:(Names.At p2) ~service:"streamer" []) ~at:p1)
  in
  let run fault =
    let sys, _, _ = crash_system () in
    Option.iter (System.inject_faults sys) fault;
    let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
    Alcotest.(check bool) "quiescent" true (out.termination = `Quiescent);
    let doc = Option.get (System.find_document sys p3 "copy") in
    (child_texts (Doc.Document.root doc), System.fingerprint sys)
  in
  let ref_texts, ref_fp = run None in
  (* The first batch's element becomes the root (its text is the
     root's first child), the later batches accumulate after it. *)
  Alcotest.(check int) "fault-free copy holds every batch" batches
    (List.length ref_texts);
  let texts, fp = run (Some (crash_plan ~at_ms:70.0 ~restart_ms:160.0)) in
  Alcotest.(check bool) "no duplicated or lost batches" true (distinct texts);
  Alcotest.(check (list string)) "same batches as the fault-free run"
    ref_texts texts;
  Alcotest.(check string) "same Σ fingerprint" ref_fp fp

(* --- runtime-level fault accounting -------------------------------- *)

(* A message to a crashed peer is a routable fault, not a programming
   error: it must count in Stats and the [net/drops] metric instead of
   raising (regression for the old [No_handler] escape hatch). *)
let test_crashed_peer_drop_counted () =
  let m = Obs.Metrics.default in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.reset m;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m false;
      Obs.Metrics.reset m)
    (fun () ->
      let sys, _ = Test_rules_exec.build_system () in
      System.crash sys p3;
      let out =
        Exec.run_to_quiescence sys ~ctx:p1 (Expr.doc "orders" ~at:"p3")
      in
      Alcotest.(check bool) "quiescent, not an exception" true
        (out.termination = `Quiescent);
      Alcotest.(check bool) "stream never closed" true (not out.finished);
      Alcotest.(check bool) "drop counted in Stats" true
        (out.stats.Net.Stats.drops >= 1);
      Alcotest.(check bool) "drop counted in net/drops metric" true
        (Obs.Metrics.counter_value m ~peer:"p3" ~subsystem:"net" "drops" >= 1))

(* With [Reliable] and no restart, the sender retries with backoff and
   eventually abandons — bounded effort, still quiescent. *)
let test_reliable_abandons_dead_peer () =
  let sys, _ = Test_rules_exec.build_system ~transport:System.Reliable () in
  System.crash sys p3;
  let out = Exec.run_to_quiescence sys ~ctx:p1 (Expr.doc "orders" ~at:"p3") in
  Alcotest.(check bool) "quiescent" true (out.termination = `Quiescent);
  let rc = System.reliability_counters sys in
  Alcotest.(check bool) "retried before giving up" true
    (rc.System.retransmits > 0);
  Alcotest.(check bool) "abandoned after max retries" true
    (rc.System.abandoned >= 1)

(* --- failover via generic resources -------------------------------- *)

let mirror_system () =
  let sys =
    System.create ~transport:System.Reliable
      (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ])
  in
  System.load_document sys p2 ~name:"cat" ~xml:Test_rules_exec.catalog_xml;
  System.load_document sys p3 ~name:"cat" ~xml:Test_rules_exec.catalog_xml;
  System.register_doc_class sys ~class_name:"mirror"
    (Names.Doc_ref.at_peer "cat" ~peer:"p2");
  System.register_doc_class sys ~class_name:"mirror"
    (Names.Doc_ref.at_peer "cat" ~peer:"p3");
  sys

let test_generic_skips_crashed_members () =
  (* Whichever replica the policy prefers, losing either peer must
     leave the class resolvable through the survivor. *)
  List.iter
    (fun crashed ->
      let sys = mirror_system () in
      System.crash sys crashed;
      let out = Exec.run_to_quiescence sys ~ctx:p1 (Expr.doc_any "mirror") in
      Alcotest.(check bool)
        (Printf.sprintf "served despite losing %s" (Net.Peer_id.to_string crashed))
        true
        (out.finished && out.results <> []))
    [ p2; p3 ];
  (* Every member down: resolves to nothing, terminates cleanly. *)
  let sys = mirror_system () in
  System.crash sys p2;
  System.crash sys p3;
  let out = Exec.run_to_quiescence sys ~ctx:p1 (Expr.doc_any "mirror") in
  Alcotest.(check bool) "no member left: empty but finished" true
    (out.finished && out.results = [])

let suite =
  [
    QCheck_alcotest.to_alcotest chaos_property;
    QCheck_alcotest.to_alcotest batched_chaos_property;
    QCheck_alcotest.to_alcotest placement_chaos_property;
    ( "placement chaos actually migrated",
      `Quick,
      fun () ->
        Alcotest.(check bool) "at least one migration across the 200 cases"
          true
          (!placement_migrations_seen > 0) );
    ("raw transport loses data (ablation)", `Quick, test_raw_ablation);
    ("same seed, same run", `Quick, test_same_seed_same_run);
    ("different seeds, different plans", `Quick, test_different_seeds_differ);
    ("crash recovery: node destination", `Quick, test_crash_recovery_node_dest);
    ("crash recovery: install destination", `Quick, test_crash_recovery_install_dest);
    ("message to crashed peer is a counted drop", `Quick, test_crashed_peer_drop_counted);
    ("reliable sender abandons a dead peer", `Quick, test_reliable_abandons_dead_peer);
    ("generic resolution skips crashed members", `Quick, test_generic_skips_crashed_members);
  ]
