let () =
  Alcotest.run "axml"
    [
      ("xml.tree", Test_tree.suite);
      ("xml.parser", Test_parser.suite);
      ("xml.canonical", Test_canonical.suite);
      ("xml.path-zipper", Test_path_zipper.suite);
      ("schema", Test_schema.suite);
      ("query.ast", Test_query_ast.suite);
      ("query.eval", Test_query_eval.suite);
      ("query.compose", Test_compose.suite);
      ("query.incremental", Test_incremental.suite);
      ("net", Test_net.suite);
      ("axml.doc", Test_axml_doc.suite);
      ("algebra.expr", Test_algebra.suite);
      ("algebra.rewrite", Test_rewrite.suite);
      ("runtime.exec", Test_exec.suite);
      ("rules.preservation", Test_rules_exec.suite);
      ("rules.preservation-random", Test_rules_random.suite);
      ("properties", Test_props.suite);
      ("query.engine", Test_engine.suite);
      ("runtime.system", Test_system.suite);
      ("scenarios", Test_scenarios.suite);
      ("optimizer", Test_optimizer.suite);
      ("planner", Test_planner.suite);
      ("lazy-evaluation", Test_lazy.suite);
      ("type-driven", Test_type_driven.suite);
      ("extensions", Test_extensions.suite);
      ("query.optimize", Test_query_optimize.suite);
      ("query.typecheck", Test_typecheck.suite);
      ("runtime.persist", Test_persist.suite);
      ("workload.schema-gen", Test_schema_gen.suite);
      ("workload.xmark", Test_xmark.suite);
      ("obs", Test_obs.suite);
      ("transport.batch", Test_transport_batch.suite);
      ("chaos", Test_fault.suite);
      ("scale", Test_scale.suite);
    ]
