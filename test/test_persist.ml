open Axml
open Helpers
module System = Runtime.System
module Persist = Runtime.Persist

let p1 = peer "p1"
let p2 = peer "p2"

let build ?(with_extern = true) () =
  let sys = System.create (mesh [ "p1"; "p2" ]) in
  System.load_document sys p1 ~name:"cat"
    ~xml:{|<catalog><item k="y">a</item><item k="n">b</item></catalog>|};
  System.load_document sys p2 ~name:"news" ~xml:"<feed><n>x</n></feed>";
  System.add_service sys p1
    (Doc.Service.declarative ~name:"find"
       (query {|query(1) for $x in $0//item where attr($x, "k") = "y" return {$x}|}));
  System.add_service sys p2 (Doc.Service.doc_feed ~name:"feed" ~doc:"news");
  if with_extern then
    System.add_service sys p2
      (Doc.Service.extern ~name:"opaque"
         ~signature:(Schema.Signature.untyped ~arity:0)
         (fun _ -> []));
  System.register_doc_class sys ~class_name:"mirror"
    (Doc.Names.Doc_ref.at_peer "cat" ~peer:"p1");
  System.register_service_class sys ~class_name:"finders"
    (Doc.Names.Service_ref.at_peer "find" ~peer:"p1");
  sys

let test_peer_xml_roundtrip () =
  let sys = build () in
  let xml = Persist.peer_to_xml sys p1 in
  let fresh = System.create (mesh [ "p1"; "p2" ]) in
  (match Persist.load_peer_xml fresh p1 xml with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Same documents... *)
  let doc_fp s =
    match System.find_document s p1 "cat" with
    | Some d -> Doc.Equivalence.fingerprint (Doc.Document.root d)
    | None -> "missing"
  in
  Alcotest.(check string) "document restored" (doc_fp sys) (doc_fp fresh);
  (* ...same declarative service, still runnable. *)
  let q =
    Doc.Registry.visible_query (System.peer fresh p1).Runtime.Peer.registry
      (Doc.Names.Service_name.of_string "find")
  in
  Alcotest.(check bool) "service restored" true (q <> None);
  (* ...and catalog knowledge. *)
  Alcotest.(check int) "doc class restored" 1
    (List.length
       (Doc.Generic.doc_members (System.peer fresh p1).Runtime.Peer.catalog
          ~class_name:"mirror"))

let test_save_load_directory () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "axml_persist_test" in
  (* Clean slate. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  (* Extern services cannot persist (opaque closures), so the
     fingerprint comparison uses a Σ without them. *)
  let sys = build ~with_extern:false () in
  Persist.save sys ~dir;
  let fresh = System.create (mesh [ "p1"; "p2" ]) in
  (match Persist.load fresh ~dir with
  | Ok n -> Alcotest.(check int) "two peers restored" 2 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "identical Σ fingerprints" (System.fingerprint sys)
    (System.fingerprint fresh);
  (* The restored system still runs: activate a feed subscription. *)
  System.load_document fresh p1 ~name:"digest"
    ~xml:{|<digest><sc><peer>p2</peer><service>feed</service></sc></digest>|};
  ignore (System.activate_all fresh ~peer:p1 ());
  ignore (System.run fresh);
  match System.find_document fresh p1 "digest" with
  | Some d ->
      Alcotest.(check bool) "feed flowed after restore" true
        (Xml.Tree.size (Doc.Document.root d) > 2)
  | None -> Alcotest.fail "digest lost"

let test_extern_skipped () =
  let sys = build () in
  let xml = Persist.peer_to_xml sys p2 in
  Alcotest.(check bool) "extern recorded" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains xml "opaque");
  let fresh = System.create (mesh [ "p1"; "p2" ]) in
  (match Persist.load_peer_xml fresh p2 xml with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "extern not restored" true
    (Doc.Registry.find_by_string (System.peer fresh p2).Runtime.Peer.registry
       "opaque"
    = None);
  Alcotest.(check bool) "feed restored" true
    (Doc.Registry.find_by_string (System.peer fresh p2).Runtime.Peer.registry
       "feed"
    <> None)

let test_load_errors () =
  let fresh = System.create (mesh [ "p1"; "p2" ]) in
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Persist.load_peer_xml fresh p1 "<notpeer/>"));
  Alcotest.(check bool) "bad xml rejected" true
    (Result.is_error (Persist.load_peer_xml fresh p1 "<peer"));
  Alcotest.(check bool) "bad query rejected" true
    (Result.is_error
       (Persist.load_peer_xml fresh p1
          {|<peer id="p1"><service name="s" kind="declarative">not a query</service></peer>|}))

let suite =
  [
    ("peer xml round-trip", `Quick, test_peer_xml_roundtrip);
    ("save/load directory", `Quick, test_save_load_directory);
    ("extern services skipped", `Quick, test_extern_skipped);
    ("load errors", `Quick, test_load_errors);
  ]
