(* Batched reliable transport (DESIGN.md §13).

   The batching layer is opt-in: with [flush_ms]/[ack_delay_ms] at
   their 0.0 defaults the per-message Reliable protocol must run
   unchanged, byte for byte.  With the knobs on, coalescing must cut
   physical message counts (and the fixed envelope cost), delayed acks
   must be piggybacked on reverse traffic or fired standalone, and
   within-frame transfer sharing must dedup identical forests — all
   without changing the delivered results or the final Σ. *)

open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names
module Message = Runtime.Message
module System = Runtime.System
module Exec = Runtime.Exec
module Fault = Net.Fault

let p1 = peer "p1"
let p2 = peer "p2"

(* --- Message.Batch accounting (pure) ------------------------------- *)

let stream_msg ?(g = gen ()) ~seq xml =
  let forest = Message.now [ parse ~g xml ] in
  Message.make ~seq (Message.Stream { key = 7; forest; final = false })

let test_batch_bytes () =
  let g = gen () in
  let m1 = stream_msg ~g ~seq:1 "<a><b>one</b></a>" in
  let m2 = stream_msg ~g ~seq:2 "<c>two two two</c>" in
  let payload = Message.batch ~ack:5 [ m1; m2 ] in
  Alcotest.(check int) "item count" 2 (Message.batch_size payload);
  Alcotest.(check int) "no dedup on distinct forests" 0
    (Message.batch_saved payload);
  let body m = Message.bytes m.Message.payload - Message.envelope in
  Alcotest.(check int) "one envelope + per-item headers"
    (Message.envelope
    + Message.item_header + body m1
    + Message.item_header + body m2)
    (Message.bytes payload);
  (* Coalescing two messages must beat sending them separately. *)
  Alcotest.(check bool) "cheaper than two envelopes" true
    (Message.bytes payload
    < Message.bytes m1.Message.payload + Message.bytes m2.Message.payload)

let test_batch_dedup () =
  let g = gen () in
  let xml = "<item k=\"y\"><name>alpha</name></item>" in
  let m1 = stream_msg ~g ~seq:1 xml in
  let m2 = stream_msg ~g ~seq:2 xml in
  let m3 = stream_msg ~g ~seq:3 "<other/>" in
  let payload = Message.batch ~ack:0 [ m1; m2; m3 ] in
  let forest_bytes =
    match m1.Message.payload with
    | Message.Stream { forest; _ } -> Xml.Forest.byte_size (Message.force forest)
    | _ -> assert false
  in
  Alcotest.(check int) "second copy shipped as a back-reference"
    forest_bytes
    (Message.batch_saved payload);
  (match payload with
  | Message.Batch { items; _ } -> (
      match items with
      | [ Message.Full _; Message.Shared { of_seq; saved; msg }; Message.Full _ ]
        ->
          Alcotest.(check int) "back-reference targets the first carrier" 1
            of_seq;
          Alcotest.(check int) "saved = forest size" forest_bytes saved;
          Alcotest.(check int) "full payload retained for delivery" 2
            msg.Message.seq
      | _ -> Alcotest.fail "expected [Full; Shared; Full]")
  | _ -> Alcotest.fail "expected a Batch");
  let no_dedup =
    Message.envelope
    + List.fold_left
        (fun acc (m : Message.t) ->
          acc + Message.item_header
          + (Message.bytes m.Message.payload - Message.envelope))
        0 [ m1; m2; m3 ]
  in
  Alcotest.(check int) "frame bytes discounted by saved - backref"
    (no_dedup - forest_bytes + Message.backref_bytes)
    (Message.bytes payload)

(* --- default knobs: the unbatched path, unchanged ------------------ *)

let run_plan ?flush_ms ?ack_delay_ms plan =
  let sys, _ =
    Test_rules_exec.build_system ~transport:System.Reliable ?flush_ms
      ?ack_delay_ms ()
  in
  let out = Exec.run_to_quiescence sys ~ctx:(peer "p1") plan in
  (out, System.fingerprint sys, System.reliability_counters sys)

let join_plan () =
  List.assoc "two-site-join"
    (Test_rules_exec.base_plans
       (snd (Test_rules_exec.build_system ())))

let test_default_knobs_identical () =
  let plan = join_plan () in
  let out_a, fp_a, rc_a = run_plan plan in
  let out_b, fp_b, rc_b = run_plan ~flush_ms:0.0 ~ack_delay_ms:0.0 plan in
  Alcotest.(check bool) "identical stats snapshots" true
    (out_a.Exec.stats = out_b.Exec.stats);
  Alcotest.(check string) "identical fingerprints" fp_a fp_b;
  Alcotest.(check bool) "identical reliability counters" true (rc_a = rc_b);
  Alcotest.(check int) "no batch frames" 0 rc_a.System.batches_sent;
  Alcotest.(check int) "no piggybacked acks" 0 rc_a.System.piggybacked_acks;
  Alcotest.(check int) "no delayed acks" 0 rc_a.System.delayed_acks;
  Alcotest.(check int) "physical = logical messages"
    out_a.Exec.stats.Net.Stats.messages
    out_a.Exec.stats.Net.Stats.payload_messages

(* --- coalescing on a chatty stream --------------------------------- *)

(* A continuous service streaming [k] small responses spaced by
   [response_delay_ms]: the workload where per-message envelopes and
   per-message acks dominate, and where batching pays. *)
let streamer k =
  Doc.Service.extern ~name:"streamer"
    ~signature:(Schema.Signature.untyped ~arity:0)
    (fun _ ->
      let g = Xml.Node_id.Gen.create ~namespace:"batch-stream" in
      List.init k (fun i ->
          Xml.Tree.element_of_string ~gen:g "s"
            [ Xml.Tree.text (string_of_int i) ]))

let stream_system ?flush_ms ?ack_delay_ms () =
  let sys =
    System.create ~transport:System.Reliable ~response_delay_ms:1.0 ?flush_ms
      ?ack_delay_ms
      (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2" ])
  in
  System.add_service sys p2 (streamer 30);
  let inbox_gen = Xml.Node_id.Gen.create ~namespace:"batch-inbox" in
  let inbox = Xml.Tree.element_of_string ~gen:inbox_gen "inbox" [] in
  let inbox_id = Option.get (Xml.Tree.id inbox) in
  System.add_document sys p1 ~name:"collector" inbox;
  (sys, inbox_id)

let stream_plan inbox_id =
  Expr.sc
    (Doc.Sc.make
       ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:p1 ]
       ~provider:(Names.At p2) ~service:"streamer" [])
    ~at:p1

let run_stream ?flush_ms ?ack_delay_ms ?fault () =
  let sys, inbox_id = stream_system ?flush_ms ?ack_delay_ms () in
  Option.iter (System.inject_faults sys) fault;
  let out = Exec.run_to_quiescence sys ~ctx:p1 (stream_plan inbox_id) in
  Alcotest.(check bool) "quiescent" true (out.Exec.termination = `Quiescent);
  let doc = Option.get (System.find_document sys p1 "collector") in
  let texts =
    Xml.Tree.children (Doc.Document.root doc)
    |> List.map (fun c -> String.trim (Xml.Tree.text_content c))
    |> List.sort String.compare
  in
  (out, texts, System.fingerprint sys, System.reliability_counters sys)

let test_coalescing_reduces_messages () =
  let out_off, texts_off, fp_off, rc_off = run_stream () in
  let out_on, texts_on, fp_on, rc_on =
    run_stream ~flush_ms:2.0 ~ack_delay_ms:8.0 ()
  in
  Alcotest.(check (list string)) "same collected stream" texts_off texts_on;
  Alcotest.(check string) "same Σ fingerprint" fp_off fp_on;
  let off = out_off.Exec.stats and on_ = out_on.Exec.stats in
  Alcotest.(check bool)
    (Printf.sprintf "fewer physical messages (%d -> %d)"
       off.Net.Stats.messages on_.Net.Stats.messages)
    true
    (on_.Net.Stats.messages < off.Net.Stats.messages);
  Alcotest.(check bool)
    (Printf.sprintf "fewer bytes (%d -> %d)" off.Net.Stats.bytes
       on_.Net.Stats.bytes)
    true
    (on_.Net.Stats.bytes < off.Net.Stats.bytes);
  Alcotest.(check bool) "logical messages exceed physical frames" true
    (on_.Net.Stats.payload_messages > on_.Net.Stats.messages);
  Alcotest.(check bool) "batch frames were shipped" true
    (rc_on.System.batches_sent > 0);
  Alcotest.(check bool) "frames carried multiple messages" true
    (rc_on.System.batched_messages > rc_on.System.batches_sent);
  Alcotest.(check bool) "delayed or piggybacked acknowledgements" true
    (rc_on.System.delayed_acks + rc_on.System.piggybacked_acks > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer standalone acks (%d -> %d)"
       rc_off.System.acks_sent rc_on.System.acks_sent)
    true
    (rc_on.System.acks_sent < rc_off.System.acks_sent)

(* --- piggybacking on request/response traffic ---------------------- *)

(* A two-site join ships data both ways; with a flush window shorter
   than the ack delay, the response batch must carry the request's
   acknowledgement instead of a standalone ack. *)
let test_piggybacked_acks () =
  let plan = join_plan () in
  let _, _, rc = run_plan ~flush_ms:2.0 ~ack_delay_ms:20.0 plan in
  Alcotest.(check bool) "some acks rode on reverse batches" true
    (rc.System.piggybacked_acks > 0)

(* --- within-frame transfer sharing --------------------------------- *)

let test_dedup_in_flight () =
  let plan =
    List.assoc "duplicate-transfer"
      (Test_rules_exec.base_plans
         (snd (Test_rules_exec.build_system ())))
  in
  let out_off, fp_off, _ = run_plan plan in
  let out_on, fp_on, rc_on = run_plan ~flush_ms:2.0 ~ack_delay_ms:8.0 plan in
  Alcotest.(check string) "same Σ fingerprint" fp_off fp_on;
  Alcotest.(check bool) "identical payload shipped once" true
    (rc_on.System.dedup_shared_bytes > 0);
  Alcotest.(check bool) "dedup shows up as fewer bytes" true
    (out_on.Exec.stats.Net.Stats.bytes < out_off.Exec.stats.Net.Stats.bytes)

(* --- faults: retransmission re-batches ----------------------------- *)

let test_batched_retransmission () =
  let harsh =
    Fault.make
      ~profile:{ Fault.drop = 0.3; duplicate = 0.05; jitter_ms = 2.0 }
      ~quiet_after_ms:400.0 ~seed:7 ()
  in
  let _, texts_ref, fp_ref, _ = run_stream () in
  let _, texts, fp, rc =
    run_stream ~flush_ms:2.0 ~ack_delay_ms:8.0 ~fault:harsh ()
  in
  Alcotest.(check bool) "frames were retransmitted" true
    (rc.System.retransmits > 0);
  Alcotest.(check (list string)) "stream intact despite drops" texts_ref texts;
  Alcotest.(check string) "same Σ fingerprint" fp_ref fp

let suite =
  [
    ("batch frame byte accounting", `Quick, test_batch_bytes);
    ("batch dedup back-references", `Quick, test_batch_dedup);
    ("default knobs run the unbatched path", `Quick, test_default_knobs_identical);
    ("coalescing cuts messages and bytes", `Quick, test_coalescing_reduces_messages);
    ("acks piggyback on reverse batches", `Quick, test_piggybacked_acks);
    ("identical forests dedup within a frame", `Quick, test_dedup_in_flight);
    ("retransmission re-batches pending messages", `Quick, test_batched_retransmission);
  ]
