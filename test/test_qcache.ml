(* Semantic result cache suite (DESIGN.md §18).

   Four layers, mirroring the module's trust chain:

   - unit tests against [Qcache] itself (hit/miss/install, collision
     hardening, stale drops, eager invalidation, LRU eviction);
   - directed regressions for every [Store] mutation path the
     invalidation protocol leans on (add/update/update_root/
     insert_under/install/remove, the Migrate_doc/Retract_doc apply
     paths, crash-restart fresh stamps);
   - exec-level tests: repeat evaluation hits with strictly fewer
     bytes, mutation invalidates, [run_optimized] rewrites a matching
     plan into a literal read (cross-plan rule (13)), sc-rooted
     results are never cached;
   - properties: a no-alias qcheck over random expressions, and a
     200-case chaos property — cache-on under drops, partitions and
     crash-restarts must reproduce the cache-off fault-free results
     and Σ content. *)

open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names
module System = Runtime.System
module Exec = Runtime.Exec
module Message = Runtime.Message
module RPeer = Runtime.Peer
module Fault = Net.Fault
module Sim = Net.Sim
module Qcache = Query.Qcache

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

let qfp e =
  let fp = Expr.fingerprint e in
  {
    Qcache.hash = fp.Expr.Fingerprint.hash;
    size = fp.Expr.Fingerprint.size;
    depth = fp.Expr.Fingerprint.depth;
  }

(* Never consulted: entries installed with [deps = [||]] carry no pins. *)
let no_current ~peer:_ ~doc:_ = None

(* --- unit: the cache data structure -------------------------------- *)

let fp1 = { Qcache.hash = 1; size = 1; depth = 1 }
let fp2 = { Qcache.hash = 2; size = 1; depth = 1 }
let fp3 = { Qcache.hash = 3; size = 1; depth = 1 }

let test_unit_hit_miss_install () =
  let c = Qcache.create ~equal:Int.equal () in
  Alcotest.(check bool) "empty cache misses" true
    (Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current = None);
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[||] ~forest:[ txt "one" ];
  (match Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current with
  | Some f -> check_canonical_forests "served forest" [ txt "one" ] f
  | None -> Alcotest.fail "installed entry not served");
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[||] ~forest:[ txt "uno" ];
  (match Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current with
  | Some f -> check_canonical_forests "reinstall replaces" [ txt "uno" ] f
  | None -> Alcotest.fail "reinstalled entry not served");
  Alcotest.(check int) "one live entry" 1 (Qcache.length c);
  let st = Qcache.stats c in
  Alcotest.(check int) "hits" 2 st.Qcache.hits;
  Alcotest.(check int) "misses" 1 st.Qcache.misses;
  Alcotest.(check int) "installs" 2 st.Qcache.installs;
  Qcache.clear c;
  Alcotest.(check int) "cleared" 0 (Qcache.length c)

let test_unit_collision () =
  let c = Qcache.create ~equal:Int.equal () in
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[||] ~forest:[ txt "one" ];
  (* Same fingerprint, different expression: must never alias. *)
  Alcotest.(check bool) "collision is a miss" true
    (Qcache.find c ~fp:fp1 ~expr:2 ~current:no_current = None);
  let st = Qcache.stats c in
  Alcotest.(check int) "collision counted" 1 st.Qcache.collisions;
  Alcotest.(check int) "and it is also a miss" 1 st.Qcache.misses;
  Alcotest.(check bool) "original entry survives" true
    (Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current <> None)

let test_unit_stale_drop () =
  let c = Qcache.create ~equal:Int.equal () in
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[| ("p2", "d", 5) |]
    ~forest:[ txt "one" ];
  (* Unchanged version: served. *)
  Alcotest.(check bool) "fresh entry served" true
    (Qcache.find c ~fp:fp1 ~expr:1
       ~current:(fun ~peer:_ ~doc:_ -> Some 5)
    <> None);
  (* Bumped version: dropped, never served. *)
  Alcotest.(check bool) "stale entry missed" true
    (Qcache.find c ~fp:fp1 ~expr:1
       ~current:(fun ~peer:_ ~doc:_ -> Some 6)
    = None);
  Alcotest.(check int) "entry dropped" 0 (Qcache.length c);
  Alcotest.(check int) "stale drop counted" 1 (Qcache.stats c).Qcache.stale_drops;
  (* Vanished document is as stale as a new version. *)
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[| ("p2", "d", 7) |]
    ~forest:[ txt "one" ];
  Alcotest.(check bool) "vanished dep missed" true
    (Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current = None);
  Alcotest.(check int) "second stale drop" 2 (Qcache.stats c).Qcache.stale_drops

let test_unit_invalidate_dep () =
  let c = Qcache.create ~equal:Int.equal () in
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[| ("p2", "d", 5) |]
    ~forest:[ txt "one" ];
  Qcache.install c ~fp:fp2 ~expr:2 ~deps:[| ("p2", "d", 5); ("p3", "e", 9) |]
    ~forest:[ txt "two" ];
  Qcache.install c ~fp:fp3 ~expr:3 ~deps:[| ("p3", "e", 9) |]
    ~forest:[ txt "three" ];
  Qcache.invalidate_dep c ~peer:"p2" ~doc:"d";
  Alcotest.(check int) "both (p2,d) entries dropped" 1 (Qcache.length c);
  Alcotest.(check int) "invalidations counted" 2
    (Qcache.stats c).Qcache.invalidations;
  Alcotest.(check bool) "unrelated entry survives" true
    (Qcache.find c ~fp:fp3 ~expr:3
       ~current:(fun ~peer:_ ~doc:_ -> Some 9)
    <> None);
  (* Idempotent on an already-clean dependency. *)
  Qcache.invalidate_dep c ~peer:"p2" ~doc:"d";
  Alcotest.(check int) "no further invalidations" 2
    (Qcache.stats c).Qcache.invalidations

let test_unit_lru_eviction () =
  let c = Qcache.create ~capacity:2 ~equal:Int.equal () in
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[||] ~forest:[ txt "one" ];
  Qcache.install c ~fp:fp2 ~expr:2 ~deps:[||] ~forest:[ txt "two" ];
  (* Touch entry 1 so entry 2 becomes the least recently probed. *)
  ignore (Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current);
  Qcache.install c ~fp:fp3 ~expr:3 ~deps:[||] ~forest:[ txt "three" ];
  Alcotest.(check int) "capacity held" 2 (Qcache.length c);
  Alcotest.(check int) "one eviction" 1 (Qcache.stats c).Qcache.evictions;
  Alcotest.(check bool) "recently probed entry kept" true
    (Qcache.find c ~fp:fp1 ~expr:1 ~current:no_current <> None);
  Alcotest.(check bool) "coldest entry evicted" true
    (Qcache.find c ~fp:fp2 ~expr:2 ~current:no_current = None)

let test_unit_probe_accounting () =
  let c = Qcache.create ~equal:Int.equal () in
  Qcache.install c ~fp:fp1 ~expr:1 ~deps:[||] ~forest:[ txt "one" ];
  (* [probe] serves without touching hit/miss; [record_hit] settles
     the account afterwards (the plan-rewrite protocol). *)
  Alcotest.(check bool) "probe serves" true
    (Qcache.probe c ~fp:fp1 ~expr:1 ~current:no_current <> None);
  Alcotest.(check bool) "probe misses silently" true
    (Qcache.probe c ~fp:fp2 ~expr:2 ~current:no_current = None);
  let st = Qcache.stats c in
  Alcotest.(check int) "no hits accounted" 0 st.Qcache.hits;
  Alcotest.(check int) "no misses accounted" 0 st.Qcache.misses;
  Qcache.record_hit c;
  Alcotest.(check int) "recorded hit" 1 (Qcache.stats c).Qcache.hits

(* --- directed: Store version stamps -------------------------------- *)

(* Every mutation path must draw a fresh monotonic stamp and fire the
   mutation hook; [remove] must clear the stamp.  A missed bump here
   is a stale-cache-served bug at the exec layer. *)
let test_store_version_bumps () =
  let st = Doc.Store.create () in
  let fired = ref 0 in
  Doc.Store.set_on_mutate st (fun _ -> incr fired);
  let g = gen () in
  let name = Names.Doc_name.of_string "a" in
  let version () = Option.get (Doc.Store.version_of st name) in

  Doc.Store.add st (Doc.Document.make ~name:"a" (elt g "r" []));
  let v_add = version () in
  Alcotest.(check int) "add fires the hook" 1 !fired;

  Doc.Store.update st (Doc.Document.make ~name:"a" (elt g "r" [ txt "x" ]));
  let v_update = version () in
  Alcotest.(check bool) "update bumps" true (v_update > v_add);
  Alcotest.(check int) "update fires the hook" 2 !fired;

  Alcotest.(check bool) "update_root applied" true
    (Doc.Store.update_root st name (fun r -> r));
  let v_root = version () in
  Alcotest.(check bool) "update_root bumps (even identity)" true
    (v_root > v_update);
  Alcotest.(check int) "update_root fires the hook" 3 !fired;

  let root_id =
    Option.get
      (Xml.Tree.id (Doc.Document.root (Option.get (Doc.Store.peek st name))))
  in
  Alcotest.(check bool) "insert_under applied" true
    (Doc.Store.insert_under st name ~node:root_id [ elt g "k" [] ] <> None);
  let v_insert = version () in
  Alcotest.(check bool) "insert_under bumps" true (v_insert > v_root);
  Alcotest.(check int) "insert_under fires the hook" 4 !fired;

  let b = Doc.Store.install st ~name:"b" (elt g "s" []) in
  Alcotest.(check bool) "install stamps" true
    (Doc.Store.version_of st b <> None);
  Alcotest.(check int) "install fires the hook" 5 !fired;

  Doc.Store.remove st name;
  Alcotest.(check bool) "remove clears the stamp" true
    (Doc.Store.version_of st name = None);
  Alcotest.(check int) "remove fires the hook" 6 !fired;
  (* Removing an absent document is a quiet no-op. *)
  Doc.Store.remove st name;
  Alcotest.(check int) "absent remove is silent" 6 !fired

(* The global counter is never reused: re-adding identical content
   draws a fresh stamp, so a pinned (doc, version) detects it. *)
let test_store_stamps_never_reused () =
  let g = gen () in
  let mk () =
    let st = Doc.Store.create () in
    Doc.Store.add st (Doc.Document.make ~name:"a" (elt g "r" [ txt "z" ]));
    Option.get (Doc.Store.version_of st (Names.Doc_name.of_string "a"))
  in
  let v1 = mk () in
  let v2 = mk () in
  Alcotest.(check bool) "same content, distinct stamps across stores" true
    (v1 <> v2)

(* Migrate_doc install-or-replace and Retract_doc must maintain the
   destination's stamps like any local mutation. *)
let test_migrate_retract_versions () =
  let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
  let g = gen () in
  let waits = ref 0 in
  let send_and_wait payload =
    let key = System.fresh_key sys in
    System.set_cont sys key (fun _ ~final -> if final then incr waits);
    (match payload with
    | `Migrate forest ->
        System.send sys ~src:p1 ~dst:p2
          (Message.Migrate_doc
             { name = "m"; forest = Message.now forest; notify = Some (p1, key) })
    | `Retract ->
        System.send sys ~src:p1 ~dst:p2
          (Message.Retract_doc { name = "m"; notify = Some (p1, key) }));
    let out, _ = System.run sys in
    Alcotest.(check bool) "quiescent" true (out = `Quiescent)
  in
  send_and_wait (`Migrate [ elt g "m" [ txt "one" ] ]);
  let v1 = System.doc_version sys ~peer:p2 ~doc:"m" in
  Alcotest.(check bool) "migrate apply stamps the replica" true (v1 <> None);
  (* Idempotent re-shipment replaces — and must re-stamp. *)
  send_and_wait (`Migrate [ elt g "m" [ txt "two" ] ]);
  let v2 = System.doc_version sys ~peer:p2 ~doc:"m" in
  Alcotest.(check bool) "re-shipment bumps" true (v2 <> None && v2 <> v1);
  send_and_wait `Retract;
  Alcotest.(check bool) "retract clears" true
    (System.doc_version sys ~peer:p2 ~doc:"m" = None);
  Alcotest.(check int) "every apply acknowledged" 3 !waits

(* Crash-restart reloads draw fresh stamps even for byte-identical
   checkpointed content: a pre-crash cache pin can never revalidate. *)
let test_crash_restart_fresh_stamps () =
  let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
  let _fo = Runtime.Failover.enable sys in
  let g = gen () in
  System.add_document sys p2 ~name:"d" (elt g "r" [ txt "z" ]);
  let v0 = Option.get (System.doc_version sys ~peer:p2 ~doc:"d") in
  System.crash sys p2;
  Alcotest.(check bool) "crashed peer has no versions" true
    (System.doc_version sys ~peer:p2 ~doc:"d" = None);
  System.restart sys p2;
  ignore (System.run sys);
  let v1 = System.doc_version sys ~peer:p2 ~doc:"d" in
  Alcotest.(check bool) "restored document is stamped" true (v1 <> None);
  Alcotest.(check bool) "with a fresh stamp" true (v1 <> Some v0)

(* --- exec: cache in front of the operational semantics ------------- *)

let catalog_query =
  query
    "query(1) for $i in $0//item where attr($i, \"cat\") = \"c0\" return \
     <r>{$i}</r>"

(* Built once: repeat issues must be the same structural expression. *)
let catalog_plan =
  Expr.eval_at p2
    (Expr.query_at catalog_query ~at:p2
       ~args:[ Expr.doc "catalog" ~at:"p2" ])

let exec_system ~cache () =
  let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
  if cache then System.enable_qcache sys;
  let g = System.gen_of sys p2 in
  let root =
    elt g "catalog"
      (List.init 6 (fun i ->
           elt g "item"
             ~attrs:[ ("cat", Printf.sprintf "c%d" (i mod 2)) ]
             [ txt (Printf.sprintf "v%d" i) ]))
  in
  System.add_document sys p2 ~name:"catalog" root;
  (sys, Option.get (Xml.Tree.id root))

let append_item sys root =
  let g = System.gen_of sys p2 in
  let store = (System.peer sys p2).RPeer.store in
  ignore
    (Doc.Store.insert_under store
       (Names.Doc_name.of_string "catalog")
       ~node:root
       [ elt g "item" ~attrs:[ ("cat", "c0") ] [ txt "fresh" ] ])

let test_exec_repeat_hit () =
  let m = Obs.Metrics.default in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.reset m;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m false;
      Obs.Metrics.reset m)
    (fun () ->
      let sys, _ = exec_system ~cache:true () in
      let o1 = Exec.run_to_quiescence sys ~ctx:p1 catalog_plan in
      let o2 = Exec.run_to_quiescence sys ~ctx:p1 catalog_plan in
      Alcotest.(check bool) "both finished" true (o1.finished && o2.finished);
      check_canonical_forests "identical results" o1.results o2.results;
      Alcotest.(check bool) "first run paid the network" true
        (o1.stats.Net.Stats.bytes > 0);
      Alcotest.(check int) "repeat run is free: zero bytes" 0
        o2.stats.Net.Stats.bytes;
      Alcotest.(check int) "and zero messages" 0 o2.stats.Net.Stats.messages;
      let st = System.qcache_stats sys in
      Alcotest.(check bool) "hit recorded" true (st.Qcache.hits >= 1);
      Alcotest.(check bool) "install recorded" true (st.Qcache.installs >= 1);
      Alcotest.(check bool) "hits surface in the metrics registry" true
        (Obs.Metrics.counter_value m ~peer:"p1" ~subsystem:"qcache" "hits" >= 1))

let test_exec_mutation_invalidation () =
  let sys, root = exec_system ~cache:true () in
  let o1 = Exec.run_to_quiescence sys ~ctx:p1 catalog_plan in
  let o2 = Exec.run_to_quiescence sys ~ctx:p1 catalog_plan in
  check_canonical_forests "warm hit" o1.results o2.results;
  append_item sys root;
  let o3 = Exec.run_to_quiescence sys ~ctx:p1 catalog_plan in
  (* The mutated catalog has one more c0 item than the cached result:
     serving stale would be visible immediately. *)
  Alcotest.(check int) "post-mutation result reflects the append"
    (List.length o2.results + 1)
    (List.length o3.results);
  (* And it matches a cache-free evaluation of the same mutated state. *)
  let ref_sys, ref_root = exec_system ~cache:false () in
  append_item ref_sys ref_root;
  let r = Exec.run_to_quiescence ref_sys ~ctx:p1 catalog_plan in
  check_canonical_forests "matches cache-off evaluation" r.results o3.results;
  let st = System.qcache_stats sys in
  Alcotest.(check bool) "eager invalidation fired at the source" true
    (st.Qcache.invalidations >= 1);
  Alcotest.(check bool) "stale pin dropped at the reader" true
    (st.Qcache.stale_drops >= 1)

let test_run_optimized_rewrite () =
  let sys, _ = exec_system ~cache:true () in
  let _, o1 = Exec.run_optimized sys ~ctx:p1 catalog_plan in
  let planned2, o2 = Exec.run_optimized sys ~ctx:p1 catalog_plan in
  Alcotest.(check bool)
    "second plan rewritten to a literal read (rule (13))" true
    (match planned2.Algebra.Planner.plan with
    | Expr.Data_at _ -> true
    | _ -> false);
  check_canonical_forests "rewritten plan, identical results" o1.results
    o2.results;
  Alcotest.(check int) "rewritten run is free" 0 o2.stats.Net.Stats.bytes

let test_sc_rooted_never_cached () =
  let sys = System.create ~transport:System.Reliable (mesh [ "p1"; "p2" ]) in
  System.enable_qcache sys;
  let g = System.gen_of sys p2 in
  let sc = Doc.Sc.make ~provider:(Names.At p2) ~service:"feed" [] in
  System.add_document sys p2 ~name:"scdoc" (Doc.Sc.to_tree ~gen:g sc);
  let e = Expr.doc "scdoc" ~at:"p2" in
  let o1 = Exec.run_to_quiescence sys ~ctx:p1 e in
  let o2 = Exec.run_to_quiescence sys ~ctx:p1 e in
  check_canonical_forests "both runs agree" o1.results o2.results;
  let st = System.qcache_stats sys in
  Alcotest.(check int)
    "sc-rooted results are never installed (activation semantics)" 0
    st.Qcache.installs;
  Alcotest.(check int) "and so never hit" 0 st.Qcache.hits;
  Alcotest.(check bool) "the probes did happen" true (st.Qcache.misses >= 2)

(* --- the overlap workload: cache-on ≡ cache-off, for less ---------- *)

let overlap_arm ~cache =
  let ov =
    Workload.Scenarios.overlap ~sources:2 ~subscribers:4
      ~queries_per_subscriber:3 ~rounds:3 ~overlap_pct:0.6 ~categories:2
      ~items:8 ~payload_bytes:32 ~cache ~seed:11 ()
  in
  let sys = ov.Workload.Scenarios.ov_system in
  let out, _ = System.run sys in
  Alcotest.(check bool) "quiescent" true (out = `Quiescent);
  Alcotest.(check int) "every request completed"
    ov.Workload.Scenarios.ov_requests
    !(ov.Workload.Scenarios.ov_completed);
  ( List.sort String.compare !(ov.Workload.Scenarios.ov_digests),
    (System.stats sys).Net.Stats.bytes,
    System.qcache_stats sys )

let test_overlap_digest_equality () =
  let off_digests, off_bytes, _ = overlap_arm ~cache:false in
  let on_digests, on_bytes, on_stats = overlap_arm ~cache:true in
  Alcotest.(check (list string))
    "per-request digests are byte-identical across arms" off_digests
    on_digests;
  Alcotest.(check bool) "the cache actually fired" true
    (on_stats.Qcache.hits > 0);
  Alcotest.(check bool) "and invalidation too" true
    (on_stats.Qcache.invalidations + on_stats.Qcache.stale_drops > 0);
  Alcotest.(check bool) "cache-on moves strictly fewer bytes" true
    (on_bytes < off_bytes)

(* --- property: the cache never aliases distinct expressions -------- *)

let alias_pool =
  lazy
    (let q0 = catalog_query in
     let q1 =
       query
         "query(1) for $i in $0//item where attr($i, \"cat\") = \"c1\" \
          return <r>{$i}</r>"
     in
     [|
       Expr.doc "a" ~at:"p1";
       Expr.doc "b" ~at:"p1";
       Expr.doc "a" ~at:"p2";
       Expr.query_at q0 ~at:p1 ~args:[ Expr.doc "a" ~at:"p1" ];
       Expr.query_at q0 ~at:p1 ~args:[ Expr.doc "b" ~at:"p1" ];
       Expr.query_at q1 ~at:p1 ~args:[ Expr.doc "a" ~at:"p1" ];
       Expr.eval_at p2 (Expr.doc "a" ~at:"p1");
       Expr.eval_at p2 (Expr.query_at q1 ~at:p2 ~args:[ Expr.doc "b" ~at:"p2" ]);
     |])

(* Accumulated across cases: drawing equal pairs must actually happen
   or the property is vacuous. *)
let alias_serves_seen = ref 0

let alias_property =
  QCheck.Test.make ~count:200
    ~name:"a probe serves exactly the structurally equal expression"
    (QCheck.make
       ~print:(fun (i, j) -> Printf.sprintf "pool[%d] vs pool[%d]" i j)
       QCheck.Gen.(pair (int_bound 7) (int_bound 7)))
    (fun (i, j) ->
      let pool = Lazy.force alias_pool in
      let a = pool.(i) and b = pool.(j) in
      let c = Qcache.create ~equal:Expr.equal () in
      Qcache.install c ~fp:(qfp a) ~expr:a ~deps:[||] ~forest:[ txt "marker" ];
      let served = Qcache.find c ~fp:(qfp b) ~expr:b ~current:no_current in
      if served <> None then incr alias_serves_seen;
      (served <> None) = Expr.equal a b)

(* --- property: chaos — faults never turn the cache into lies ------- *)

(* A three-peer plan driven from p1 (never crashed): two waves of
   sequentially chained reads and appends against the catalogs of
   p2/p3, the second wave scheduled after both sources have crashed
   and restarted from checkpoints.  Cache-on under random drops,
   duplicates, jitter, a partition and the two crash-restarts must
   reproduce, position by position, the results of the fault-free
   cache-off run — and the same Σ content.  Crashes wipe the victims'
   volatile caches; the restart reload draws fresh stamps, so the
   driver's surviving pins go stale instead of revalidating. *)

let chaos_q0 = catalog_query

let chaos_q1 =
  query
    "query(1) for $i in $0//item where attr($i, \"cat\") = \"c1\" return \
     <r>{$i}</r>"

let chaos_expr src q =
  Expr.eval_at src
    (Expr.query_at q ~at:src
       ~args:[ Expr.doc "catalog" ~at:(Net.Peer_id.to_string src) ])

(* Built once; repeat issues share the structural expression. *)
let e20 = chaos_expr p2 chaos_q0
let e21 = chaos_expr p2 chaos_q1
let e30 = chaos_expr p3 chaos_q0

let chaos_system ~cache () =
  let sys =
    System.create ~transport:System.Reliable (mesh [ "p1"; "p2"; "p3" ])
  in
  let _fo = Runtime.Failover.enable sys in
  if cache then System.enable_qcache sys;
  let catalog p tag =
    let g = System.gen_of sys p in
    let root =
      elt g "catalog"
        (List.init 5 (fun i ->
             elt g "item"
               ~attrs:[ ("cat", Printf.sprintf "c%d" (i mod 2)) ]
               [ txt (Printf.sprintf "%s%d" tag i) ]))
    in
    System.add_document sys p ~name:"catalog" root;
    Option.get (Xml.Tree.id root)
  in
  let root2 = catalog p2 "b" in
  ignore (catalog p3 "c");
  (sys, root2)

type chaos_op = Q of Expr.t | Append of Net.Peer_id.t * int

(* Run [ops] strictly one after the other — each starts only once the
   previous completed — so the catalog state any query observes is a
   pure function of its chain position, whatever the fault timing. *)
let run_chain sys ~root2 ~results ops k =
  let rec go = function
    | [] -> k ()
    | Q e :: rest ->
        let acc = ref [] in
        let key = System.fresh_key sys in
        System.set_cont sys key (fun forest ~final ->
            acc := !acc @ forest;
            if final then begin
              results := !acc :: !results;
              go rest
            end);
        System.send sys ~src:p1 ~dst:p1
          (Message.Eval_request
             { expr = e; replies = [ Message.Cont { peer = p1; key } ]; ack = None })
    | Append (dst, tag) :: rest ->
        let g = gen () in
        let key = System.fresh_key sys in
        System.set_cont sys key (fun _ ~final -> if final then go rest);
        System.send sys ~src:p1 ~dst
          (Message.Insert
             {
               node = root2;
               forest =
                 Message.now
                   [
                     elt g "item"
                       ~attrs:[ ("cat", "c0") ]
                       [ txt (Printf.sprintf "add%d" tag) ];
                   ];
               notify = Some (p1, key);
             })
  in
  go ops

let chaos_wave1 = [ Q e20; Q e20; Append (p2, 1); Q e20; Q e30; Q e30 ]
let chaos_wave2 = [ Append (p2, 2); Q e20; Q e20; Q e21; Q e30 ]
let chaos_queries = 9 (* Q ops across both waves *)

let qcache_chaos_run ~cache ~fault () =
  let sys, root2 = chaos_system ~cache () in
  Option.iter (System.inject_faults sys) fault;
  let sim = System.sim sys in
  let results = ref [] in
  run_chain sys ~root2 ~results chaos_wave1 (fun () ->
      (* Second wave strictly after both crash-restarts have healed. *)
      Sim.after sim ~peer:p1
        ~delay_ms:(Float.max 0.1 (3300.0 -. Sim.now sim))
        (fun () -> run_chain sys ~root2 ~results chaos_wave2 (fun () -> ())));
  let out, _ = System.run sys in
  ( List.rev !results,
    System.content_fingerprint sys,
    (System.qcache_stats sys).Qcache.hits,
    out = `Quiescent )

let qcache_chaos_reference =
  lazy
    (let results, fp, _, quiescent = qcache_chaos_run ~cache:false ~fault:None () in
     assert quiescent;
     assert (List.length results = chaos_queries);
     (results, fp))

let qcache_chaos_plan ~seed =
  let r = Net.Rng.create ~seed:((seed * 17) + 3) in
  let profile =
    {
      Fault.drop = 0.15 *. Net.Rng.float r 1.0;
      duplicate = 0.05 *. Net.Rng.float r 1.0;
      jitter_ms = 3.0 *. Net.Rng.float r 1.0;
    }
  in
  let island = [ (if Net.Rng.int r 2 = 0 then p2 else p3) ] in
  Fault.make ~profile
    ~events:
      [
        Fault.Partition
          { island; window = Fault.window ~from_ms:100.0 ~until_ms:250.0 };
        Fault.Crash { peer = p2; at_ms = 2000.0; restart_ms = Some 2250.0 };
        Fault.Crash { peer = p3; at_ms = 2600.0; restart_ms = Some 2850.0 };
      ]
    ~quiet_after_ms:400.0 ~seed ()

(* Accumulated across all 200 cases: a run that never serves from the
   cache proves nothing — the non-vacuity case below fails then. *)
let chaos_hits_seen = ref 0

let qcache_chaos_property =
  QCheck.Test.make ~count:200
    ~name:
      "cache-on under drops/partitions/crash-restarts reproduces the \
       cache-off fault-free results and Σ content"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "fault_seed=%d" seed)
       QCheck.Gen.(int_bound 99_999))
    (fun seed ->
      let ref_results, ref_fp = Lazy.force qcache_chaos_reference in
      let results, fp, hits, quiescent =
        qcache_chaos_run ~cache:true ~fault:(Some (qcache_chaos_plan ~seed)) ()
      in
      chaos_hits_seen := !chaos_hits_seen + hits;
      quiescent
      && List.length results = chaos_queries
      && List.for_all2 Xml.Canonical.equal_forest ref_results results
      && String.equal ref_fp fp)

let suite =
  [
    ("unit: hit, miss, install, replace", `Quick, test_unit_hit_miss_install);
    ("unit: fingerprint collision never aliases", `Quick, test_unit_collision);
    ("unit: stale pins are dropped, never served", `Quick, test_unit_stale_drop);
    ("unit: eager invalidation by dependency", `Quick, test_unit_invalidate_dep);
    ("unit: LRU eviction under capacity", `Quick, test_unit_lru_eviction);
    ("unit: probe/record_hit accounting", `Quick, test_unit_probe_accounting);
    ("store: every mutation path bumps", `Quick, test_store_version_bumps);
    ("store: stamps are never reused", `Quick, test_store_stamps_never_reused);
    ( "store: migrate/retract apply maintains stamps",
      `Quick,
      test_migrate_retract_versions );
    ( "store: crash-restart reload draws fresh stamps",
      `Quick,
      test_crash_restart_fresh_stamps );
    ("exec: repeat evaluation hits for zero bytes", `Quick, test_exec_repeat_hit);
    ( "exec: mutation invalidates before the next read",
      `Quick,
      test_exec_mutation_invalidation );
    ("exec: run_optimized rewrites a cached plan", `Quick, test_run_optimized_rewrite);
    ("exec: sc-rooted results are never cached", `Quick, test_sc_rooted_never_cached);
    ( "overlap: cache-on matches cache-off digests for fewer bytes",
      `Quick,
      test_overlap_digest_equality );
    QCheck_alcotest.to_alcotest alias_property;
    ( "alias property actually served equal pairs",
      `Quick,
      fun () ->
        Alcotest.(check bool) "at least one equal pair drawn" true
          (!alias_serves_seen > 0) );
    QCheck_alcotest.to_alcotest qcache_chaos_property;
    ( "chaos property actually served from the cache",
      `Quick,
      fun () ->
        Alcotest.(check bool) "hits across the 200 cases" true
          (!chaos_hits_seen > 0) );
  ]
