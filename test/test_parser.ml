open Axml
open Helpers

let roundtrip xml =
  let t = parse xml in
  let again = parse (Xml.Serializer.to_string t) in
  Alcotest.check tree_eq ("roundtrip " ^ xml) t again

let test_simple () =
  let t = parse "<a><b>hi</b></a>" in
  Alcotest.(check (option string)) "root" (Some "a")
    (Option.map Xml.Label.to_string (Xml.Tree.label t));
  Alcotest.(check string) "text" "hi" (Xml.Tree.text_content t)

let test_attributes () =
  let t = parse {|<item id="42" cat='x y'/>|} in
  Alcotest.(check (option string)) "double-quoted" (Some "42")
    (Xml.Tree.attr t "id");
  Alcotest.(check (option string)) "single-quoted" (Some "x y")
    (Xml.Tree.attr t "cat")

let test_entities () =
  let t = parse "<a>&lt;&amp;&gt;&quot;&apos;</a>" in
  Alcotest.(check string) "predefined entities" "<&>\"'" (Xml.Tree.text_content t);
  let t2 = parse "<a>&#65;&#x42;</a>" in
  Alcotest.(check string) "numeric refs" "AB" (Xml.Tree.text_content t2)

let test_unicode_refs () =
  let t = parse "<a>&#233;</a>" in
  Alcotest.(check string) "utf8 e-acute" "\xc3\xa9" (Xml.Tree.text_content t)

let test_comments_and_pi () =
  let t = parse "<?xml version=\"1.0\"?><!-- before --><a><!-- inside -->x<?pi data?></a><!-- after -->" in
  Alcotest.(check string) "comments skipped" "x" (Xml.Tree.text_content t)

let test_cdata () =
  let t = parse "<a><![CDATA[<not><parsed>&amp;]]></a>" in
  Alcotest.(check string) "cdata verbatim" "<not><parsed>&amp;"
    (Xml.Tree.text_content t)

let test_whitespace_handling () =
  let g = gen () in
  let dropped = Xml.Parser.parse_exn ~gen:g "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "ws dropped" 1 (List.length (Xml.Tree.children dropped));
  let kept = Xml.Parser.parse_exn ~keep_ws:true ~gen:g "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "ws kept" 3 (List.length (Xml.Tree.children kept))

let test_doctype_skipped () =
  let t = parse "<!DOCTYPE html><a>x</a>" in
  Alcotest.(check string) "doctype ignored" "x" (Xml.Tree.text_content t)

let expect_error xml =
  let g = gen () in
  match Xml.Parser.parse ~gen:g xml with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (Printf.sprintf "parse should fail: %s" xml)

let test_errors () =
  expect_error "";
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "<a><b></a></b>";
  expect_error "text only";
  expect_error "<a>&unknown;</a>";
  expect_error "<a attr=>x</a>";
  expect_error "<a>x</a><b>y</b>" (* trailing root *);
  expect_error "<1bad/>"

(* Numeric character references must be non-empty, pure decimal/hex,
   and denote a Unicode scalar value.  [int_of_string_opt] used to
   also accept [0x]-prefixed, [_]-separated and negative literals, and
   surrogates / out-of-range codes were UTF-8-"encoded" into invalid
   byte sequences. *)
let test_charref_rejections () =
  expect_error "<a>&#;</a>";
  expect_error "<a>&#x;</a>";
  expect_error "<a>&#0x41;</a>";
  expect_error "<a>&#6_5;</a>";
  expect_error "<a>&#-65;</a>";
  expect_error "<a>&#xD800;</a>" (* low surrogate bound *);
  expect_error "<a>&#xDFFF;</a>" (* high surrogate bound *);
  expect_error "<a>&#55296;</a>" (* 0xD800 in decimal *);
  expect_error "<a>&#x110000;</a>" (* beyond U+10FFFF *);
  expect_error "<a>&#99999999999999999999;</a>" (* would overflow int *)

let test_charref_boundaries () =
  let text s = Xml.Tree.text_content (parse s) in
  Alcotest.(check string) "U+D7FF, below the surrogates" "\xed\x9f\xbf"
    (text "<a>&#xD7FF;</a>");
  Alcotest.(check string) "U+E000, above the surrogates" "\xee\x80\x80"
    (text "<a>&#xE000;</a>");
  Alcotest.(check string) "U+10FFFF, last scalar value" "\xf4\x8f\xbf\xbf"
    (text "<a>&#x10FFFF;</a>")

(* Literal tab/newline in attribute values (and carriage returns
   anywhere) must serialize as character references: a conforming
   parser folds the literals in normalization, so only the escaped
   form survives a round trip byte-for-byte. *)
let test_control_char_roundtrip () =
  let t = parse "<a k=\"x&#10;y&#9;z&#13;\">line&#13;break</a>" in
  Alcotest.(check (option string)) "attr decoded" (Some "x\ny\tz\r")
    (Xml.Tree.attr t "k");
  Alcotest.(check string) "text decoded" "line\rbreak"
    (Xml.Tree.text_content t);
  let s = Xml.Serializer.to_string t in
  Alcotest.(check string) "re-serialization is byte-stable"
    "<a k=\"x&#10;y&#9;z&#13;\">line&#13;break</a>" s;
  (* And a tree built programmatically with the literals escapes them. *)
  let g = gen () in
  let built =
    Xml.Tree.element_of_string ~gen:g ~attrs:[ ("k", "a\nb\tc\rd") ] "e"
      [ Xml.Tree.text "t\rt" ]
  in
  Alcotest.(check string) "serializer escapes control characters"
    "<e k=\"a&#10;b&#9;c&#13;d\">t&#13;t</e>"
    (Xml.Serializer.to_string built)

let test_error_position () =
  let g = gen () in
  match Xml.Parser.parse ~gen:g "<a>\n<b>\n</c>\n</a>" with
  | Error e ->
      Alcotest.(check int) "error line" 3 e.line;
      Alcotest.(check bool) "message mentions tag" true
        (String.length e.message > 0)
  | Ok _ -> Alcotest.fail "should fail"

let test_parse_forest () =
  let g = gen () in
  match Xml.Parser.parse_forest ~gen:g "<a/><b/><c>x</c>" with
  | Ok f -> Alcotest.(check int) "three roots" 3 (List.length f)
  | Error e -> Alcotest.failf "forest: %a" Xml.Parser.pp_error e

let test_parse_forest_empty () =
  let g = gen () in
  match Xml.Parser.parse_forest ~gen:g "  " with
  | Ok f -> Alcotest.(check int) "empty forest" 0 (List.length f)
  | Error _ -> Alcotest.fail "empty input is an empty forest"

let test_roundtrips () =
  List.iter roundtrip
    [
      "<a/>";
      "<a><b/><c/></a>";
      {|<a x="1" y="two"><b>text</b>tail</a>|};
      "<a>&lt;escape&amp;me&gt;</a>";
      {|<q v="quote&quot;inside"/>|};
      "<deep><er><and><deeper>bottom</deeper></and></er></deep>";
    ]

let test_pretty_print_reparses () =
  let t =
    parse {|<catalog><item id="1"><name>x</name></item><item id="2"/></catalog>|}
  in
  let pretty = Xml.Serializer.to_string_pretty t in
  let again = parse pretty in
  Alcotest.check tree_eq "pretty output reparses" t again

let test_escape_functions () =
  Alcotest.(check string) "text escape" "a&amp;b&lt;c&gt;d"
    (Xml.Serializer.escape_text "a&b<c>d");
  Alcotest.(check string) "attr escape" "say &quot;hi&quot;"
    (Xml.Serializer.escape_attr {|say "hi"|})

let suite =
  [
    ("simple document", `Quick, test_simple);
    ("attributes", `Quick, test_attributes);
    ("entities", `Quick, test_entities);
    ("unicode character refs", `Quick, test_unicode_refs);
    ("comments and PIs", `Quick, test_comments_and_pi);
    ("CDATA sections", `Quick, test_cdata);
    ("whitespace handling", `Quick, test_whitespace_handling);
    ("doctype skipped", `Quick, test_doctype_skipped);
    ("malformed inputs rejected", `Quick, test_errors);
    ("character reference rejections", `Quick, test_charref_rejections);
    ("character reference boundaries", `Quick, test_charref_boundaries);
    ("control characters round-trip", `Quick, test_control_char_roundtrip);
    ("error positions", `Quick, test_error_position);
    ("forest parsing", `Quick, test_parse_forest);
    ("empty forest", `Quick, test_parse_forest_empty);
    ("serializer round-trips", `Quick, test_roundtrips);
    ("pretty printer reparses", `Quick, test_pretty_print_reparses);
    ("escape functions", `Quick, test_escape_functions);
  ]
