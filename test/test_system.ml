open Axml
open Helpers
module Names = Doc.Names
module System = Runtime.System

let p1 = peer "p1"
let p2 = peer "p2"

let make () = System.create (mesh ~latency:5.0 ~bandwidth:200.0 [ "p1"; "p2" ])

(* Document-level activation (Section 2.2, steps 1-3): results become
   siblings of the sc node. *)
let test_activate_call_default_forward () =
  let sys = make () in
  System.add_service sys p2
    (Doc.Service.declarative ~name:"double"
       (query "query(1) for $x in $0//n return <out>{text($x)}</out>"));
  System.load_document sys p1 ~name:"d"
    ~xml:
      {|<r><sc><peer>p2</peer><service>double</service><param1><q><n>1</n><n>2</n></q></param1></sc></r>|};
  let count = System.activate_all sys () in
  Alcotest.(check int) "one call activated" 1 count;
  ignore (System.run sys);
  match System.find_document sys p1 "d" with
  | Some doc ->
      let root = Doc.Document.root doc in
      Alcotest.(check int) "sc plus two results" 3
        (List.length (Xml.Tree.children root));
      Alcotest.(check int) "results are out elements" 2
        (List.length
           (Xml.Path.select (Xml.Path.of_string "/out") root))
  | None -> Alcotest.fail "document lost"

let test_activate_call_explicit_forward () =
  let sys = make () in
  System.add_service sys p2
    (Doc.Service.declarative ~name:"svc"
       (query "query(1) for $x in $0//n return <out/>"));
  (* Target document on p2; call lives on p1. *)
  let g2 = Runtime.System.gen_of sys p2 in
  let sink = Xml.Tree.element_of_string ~gen:g2 "sink" [] in
  let sink_id = Option.get (Xml.Tree.id sink) in
  System.add_document sys p2 ~name:"target" sink;
  let g1 = Runtime.System.gen_of sys p1 in
  let sc_tree =
    Doc.Sc.to_tree ~gen:g1
      (Doc.Sc.make
         ~forward:[ Names.Node_ref.make ~node:sink_id ~peer:p2 ]
         ~provider:(Names.At p2) ~service:"svc"
         [ [ parse "<q><n>a</n></q>" ] ])
  in
  System.add_document sys p1 ~name:"caller"
    (Xml.Tree.element_of_string ~gen:g1 "r" [ sc_tree ]);
  ignore (System.activate_all sys ());
  ignore (System.run sys);
  (match System.find_document sys p2 "target" with
  | Some doc ->
      Alcotest.(check int) "result forwarded to p2" 1
        (List.length (Xml.Tree.children (Doc.Document.root doc)))
  | None -> Alcotest.fail "target lost");
  (* The caller's document is untouched: results went elsewhere. *)
  match System.find_document sys p1 "caller" with
  | Some doc ->
      Alcotest.(check int) "caller unchanged" 1
        (List.length (Xml.Tree.children (Doc.Document.root doc)))
  | None -> Alcotest.fail "caller lost"

let test_activate_generic_provider () =
  let sys = make () in
  System.add_service sys p2
    (Doc.Service.declarative ~name:"real"
       (query "query(1) for $x in $0 return <ok/>"));
  System.register_service_class sys ~class_name:"cls"
    (Names.Service_ref.at_peer "real" ~peer:"p2");
  System.load_document sys p1 ~name:"d"
    ~xml:
      {|<r><sc><peer>any</peer><service>cls</service><param1><x/></param1></sc></r>|};
  ignore (System.activate_all sys ());
  ignore (System.run sys);
  match System.find_document sys p1 "d" with
  | Some doc ->
      Alcotest.(check int) "resolved and answered" 2
        (List.length (Xml.Tree.children (Doc.Document.root doc)))
  | None -> Alcotest.fail "doc lost"

let test_doc_feed_subscription () =
  let sys = make () in
  (* p2 publishes news; p1 subscribes via a doc_feed call. *)
  System.load_document sys p2 ~name:"news" ~xml:"<feed><n>first</n></feed>";
  System.add_service sys p2 (Doc.Service.doc_feed ~name:"feed" ~doc:"news");
  System.load_document sys p1 ~name:"digest"
    ~xml:{|<digest><sc><peer>p2</peer><service>feed</service></sc></digest>|};
  ignore (System.activate_all sys ());
  ignore (System.run sys);
  let digest_items () =
    match System.find_document sys p1 "digest" with
    | Some doc ->
        List.length
          (Xml.Path.select (Xml.Path.of_string "/n") (Doc.Document.root doc))
    | None -> -1
  in
  Alcotest.(check int) "initial item arrived" 1 (digest_items ());
  (* Publish another item: the feed pushes the delta. *)
  let p2_peer = System.peer sys p2 in
  let news = Option.get (Doc.Store.find_by_string p2_peer.Runtime.Peer.store "news") in
  let root_id = Option.get (Xml.Tree.id (Doc.Document.root news)) in
  let g2 = Runtime.System.gen_of sys p2 in
  System.send sys ~src:p2 ~dst:p2
    (Runtime.Message.Insert
       {
         node = root_id;
         forest =
           Runtime.Message.now
             [ Xml.Tree.element_of_string ~gen:g2 "n" [ txt "second" ] ];
         notify = None;
       });
  ignore (System.run sys);
  Alcotest.(check int) "delta pushed" 2 (digest_items ())

let test_fingerprint_stability () =
  let s1 = make () in
  let s2 = make () in
  List.iter
    (fun sys ->
      System.load_document sys p1 ~name:"a" ~xml:"<a><x/><y/></a>";
      System.add_service sys p2
        (Doc.Service.declarative ~name:"s"
           (query "query(1) for $x in $0 return {$x}")))
    [ s1; s2 ];
  Alcotest.(check string) "same state, same fingerprint"
    (System.fingerprint s1) (System.fingerprint s2);
  (* Permuted document children: still the same Σ. *)
  let s3 = make () in
  System.load_document s3 p1 ~name:"a" ~xml:"<a><y/><x/></a>";
  System.add_service s3 p2
    (Doc.Service.declarative ~name:"s" (query "query(1) for $x in $0 return {$x}"));
  Alcotest.(check string) "unordered fingerprint" (System.fingerprint s1)
    (System.fingerprint s3);
  (* Different content: different fingerprint. *)
  let s4 = make () in
  System.load_document s4 p1 ~name:"a" ~xml:"<a><x/></a>";
  System.add_service s4 p2
    (Doc.Service.declarative ~name:"s" (query "query(1) for $x in $0 return {$x}"));
  Alcotest.(check bool) "content matters" false
    (String.equal (System.fingerprint s1) (System.fingerprint s4))

let test_fingerprint_ignores_tmp () =
  let s1 = make () in
  let s2 = make () in
  System.load_document s2 p1 ~name:"_tmp_aux" ~xml:"<x/>";
  Alcotest.(check string) "tmp resources invisible" (System.fingerprint s1)
    (System.fingerprint s2)

let test_install_doc_accumulates () =
  let sys = make () in
  System.send sys ~src:p1 ~dst:p2
    (Runtime.Message.Install_doc
       {
         name = "log";
         forest = Runtime.Message.now [ parse "<entry>1</entry>" ];
         notify = None;
       });
  System.send sys ~src:p1 ~dst:p2
    (Runtime.Message.Install_doc
       {
         name = "log";
         forest = Runtime.Message.now [ parse "<entry>2</entry>" ];
         notify = None;
       });
  ignore (System.run sys);
  match System.find_document sys p2 "log" with
  | Some doc ->
      (* The first batch's tree becomes the document root (its text
         child), and the second batch accumulates under that root. *)
      let root = Doc.Document.root doc in
      Alcotest.(check (option string)) "root is first entry" (Some "entry")
        (Option.map Xml.Label.to_string (Xml.Tree.label root));
      Alcotest.(check int) "second batch accumulated" 2
        (List.length (Xml.Tree.children root))
  | None -> Alcotest.fail "log missing"

let test_unknown_service_degrades () =
  let sys = make () in
  System.load_document sys p1 ~name:"d"
    ~xml:{|<r><sc><peer>p2</peer><service>ghost</service></sc></r>|};
  ignore (System.activate_all sys ());
  ignore (System.run sys);
  (* No response, but the system settles and the document survives. *)
  match System.find_document sys p1 "d" with
  | Some doc ->
      Alcotest.(check int) "document intact" 1
        (List.length (Xml.Tree.children (Doc.Document.root doc)))
  | None -> Alcotest.fail "doc lost"

let suite =
  [
    ("activation: default forwarding", `Quick, test_activate_call_default_forward);
    ("activation: explicit forward list", `Quick, test_activate_call_explicit_forward);
    ("activation: generic provider", `Quick, test_activate_generic_provider);
    ("doc-feed subscription", `Quick, test_doc_feed_subscription);
    ("fingerprint stability", `Quick, test_fingerprint_stability);
    ("fingerprint ignores _tmp", `Quick, test_fingerprint_ignores_tmp);
    ("install accumulates", `Quick, test_install_doc_accumulates);
    ("unknown service degrades gracefully", `Quick, test_unknown_service_degrades);
  ]
