open Axml
open Helpers
module Scenarios = Workload.Scenarios
module System = Runtime.System
module Expr = Algebra.Expr
module Names = Doc.Names

let test_software_distribution_build () =
  let sd = Scenarios.software_distribution ~mirrors:3 ~packages:20 ~seed:1 () in
  Alcotest.(check int) "mirrors" 3 (List.length sd.sd_mirrors);
  List.iter
    (fun m ->
      match System.find_document sd.sd_system m "packages" with
      | Some doc ->
          Alcotest.(check int) "catalog size" 20
            (List.length (Xml.Tree.children (Doc.Document.root doc)))
      | None -> Alcotest.fail "mirror without catalog")
    sd.sd_mirrors;
  (* The catalog class is registered at every peer. *)
  let client_peer = System.peer sd.sd_system sd.sd_client in
  Alcotest.(check int) "class members" 3
    (List.length
       (Doc.Generic.doc_members client_peer.Runtime.Peer.catalog
          ~class_name:sd.sd_catalog_class))

let test_resolution_via_service_call () =
  let sd = Scenarios.software_distribution ~mirrors:2 ~packages:30 ~seed:2 () in
  let sys = sd.sd_system in
  let wanted = [ List.nth sd.sd_packages 3; List.nth sd.sd_packages 17 ] in
  let request = Scenarios.resolution_request sd ~at:sd.sd_client ~wanted in
  let mirror = List.hd sd.sd_mirrors in
  (* Call resolve@mirror with (request, catalog-as-param). *)
  let catalog =
    match System.find_document sys mirror "packages" with
    | Some d -> Doc.Document.root d
    | None -> Alcotest.fail "catalog"
  in
  let sc =
    Doc.Sc.make ~provider:(Names.At mirror) ~service:sd.sd_resolve
      [ [ request ]; [ catalog ] ]
  in
  let out =
    Runtime.Exec.run_to_quiescence sys ~ctx:sd.sd_client
      (Expr.sc sc ~at:sd.sd_client)
  in
  Alcotest.(check int) "both packages resolved" 2 (List.length out.results);
  List.iter
    (fun t ->
      Alcotest.(check (option string)) "resolved wrapper" (Some "resolved")
        (Option.map Xml.Label.to_string (Xml.Tree.label t)))
    out.results

let test_resolution_via_generic_catalog () =
  let sd = Scenarios.software_distribution ~mirrors:3 ~packages:15 ~seed:3 () in
  let sys = sd.sd_system in
  let wanted = [ List.nth sd.sd_packages 0 ] in
  let request = Scenarios.resolution_request sd ~at:sd.sd_client ~wanted in
  (* Apply the resolver query at the client over the generic catalog:
     pickDoc chooses a mirror (definition (9)). *)
  let resolver =
    query
      {|query(2) for $w in $0//want, $p in $1//package where attr($w, "name") = attr($p, "name") return <resolved>{$p}</resolved>|}
  in
  let e =
    Expr.query_at resolver ~at:sd.sd_client
      ~args:
        [
          Expr.tree_at request ~at:sd.sd_client;
          Expr.doc_any sd.sd_catalog_class;
        ]
  in
  let out = Runtime.Exec.run_to_quiescence sys ~ctx:sd.sd_client e in
  Alcotest.(check int) "resolved through pickDoc" 1 (List.length out.results)

let test_subscription_initial_and_updates () =
  let sub = Scenarios.subscription ~sources:3 ~seed:5 () in
  let sys = sub.sub_system in
  ignore (System.run sys);
  let digest_count () =
    match System.find_document sys sub.sub_aggregator sub.sub_digest_doc with
    | Some doc ->
        List.length
          (Xml.Path.select
             (Xml.Path.of_string "/items/news")
             (Doc.Document.root doc))
    | None -> -1
  in
  let initial = digest_count () in
  Alcotest.(check bool) "initial items flowed" true (initial >= 3);
  (* Publish on two sources; deltas propagate. *)
  Scenarios.publish sub ~source:(List.hd sub.sub_sources) ~headline:"breaking";
  Scenarios.publish sub
    ~source:(List.nth sub.sub_sources 1)
    ~headline:"more news";
  ignore (System.run sys);
  Alcotest.(check int) "two deltas arrived" (initial + 2) (digest_count ())

let test_subscription_isolated_sources () =
  let sub = Scenarios.subscription ~sources:2 ~seed:6 () in
  let sys = sub.sub_system in
  ignore (System.run sys);
  (* A publish on source0 must not touch source1's news doc. *)
  let source1 = List.nth sub.sub_sources 1 in
  let before =
    match System.find_document sys source1 sub.sub_news_doc with
    | Some d -> Xml.Tree.size (Doc.Document.root d)
    | None -> -1
  in
  Scenarios.publish sub ~source:(List.hd sub.sub_sources) ~headline:"x";
  ignore (System.run sys);
  let after =
    match System.find_document sys source1 sub.sub_news_doc with
    | Some d -> Xml.Tree.size (Doc.Document.root d)
    | None -> -1
  in
  Alcotest.(check int) "source1 untouched" before after

let suite =
  [
    ("software distribution: construction", `Quick, test_software_distribution_build);
    ("software distribution: resolve call", `Quick, test_resolution_via_service_call);
    ( "software distribution: generic catalog",
      `Quick,
      test_resolution_via_generic_catalog );
    ("subscription: initial and deltas", `Quick, test_subscription_initial_and_updates);
    ("subscription: source isolation", `Quick, test_subscription_isolated_sources);
  ]
