(* The experiment tables E1-E10 (see DESIGN.md §4 and EXPERIMENTS.md).
   The paper publishes no numeric tables, so each experiment
   regenerates the *claim* behind a rule of Section 3.3 with measured
   simulator statistics: who wins, by what factor, and where the
   crossovers sit. *)

open Axml
open Bench_util
module Expr = Algebra.Expr
module Names = Doc.Names
module Rewrite = Algebra.Rewrite
module System = Runtime.System

(* --- E1: Example 1, pushing selections -------------------------- *)

let e1 () =
  section "E1  Example 1: pushing selections (rule 10+11)";
  Printf.printf
    "query: names of matching items; naive ships the catalog, pushed ships hits\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let rows =
    List.concat_map
      (fun items ->
        List.map
          (fun sel ->
            let build () = catalog_system ~items ~selectivity:sel ~seed:42 () in
            let naive = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
            let sys, cat_bytes = build () in
            let out_n = run_plan sys naive in
            let pushed =
              match Rewrite.r11_push_selection naive with
              | [ r ] -> r.result
              | _ -> assert false
            in
            let sys2, _ = build () in
            let out_p = run_plan sys2 pushed in
            check_same "E1" out_n.results out_p.results;
            [
              string_of_int items;
              Printf.sprintf "%.0f%%" (sel *. 100.0);
              fmt_bytes cat_bytes;
              fmt_bytes out_n.stats.bytes;
              fmt_bytes out_p.stats.bytes;
              fmt_ratio
                (float_of_int out_n.stats.bytes
                /. float_of_int (max 1 out_p.stats.bytes));
              fmt_ms out_n.elapsed_ms;
              fmt_ms out_p.elapsed_ms;
            ])
          [ 0.01; 0.1; 0.5 ])
      [ 100; 1000; 5000 ]
  in
  table
    ~headers:
      [
        "items"; "sel"; "doc"; "naive B"; "pushed B"; "B ratio"; "naive ms";
        "pushed ms";
      ]
    rows;
  Printf.printf
    "\nshape: pushing wins everywhere; the factor grows as selectivity drops\n"

(* --- E2: rule 10, delegation crossover -------------------------- *)

let e2 () =
  section "E2  Rule 10: query delegation vs local evaluation";
  Printf.printf
    "data at p1, consumer at p2: evaluate locally then ship results, or\n\
     delegate (ship data+query to p2, evaluate there)?  The winner flips\n\
     with output/input ratio (selectivity).\n\n";
  let items = 1500 in
  let rows =
    List.map
      (fun sel ->
        let build () =
          let sys = mesh_system () in
          let rng = Workload.Rng.create ~seed:7 in
          let g = Runtime.System.gen_of sys p1 in
          Runtime.System.add_document sys p1 ~name:"cat"
            (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:sel ());
          sys
        in
        (* An output-expanding query: each matching item appears twice
           in the result, so at high selectivity the output outweighs
           the input and shipping raw data beats shipping results. *)
        let q =
          Query.Parser.parse_exn
            {|query(1) for $i in $0//item where attr($i, "category") = "wanted"
              return <hit>{$i}{$i}</hit>|}
        in
        (* Local: evaluate at p1, ship only results to p2 (installed as
           a document there). *)
        let local =
          Expr.send_as_doc ~name:"res" ~at:p2
            (Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p1" ])
        in
        (* Delegated: ship query and data to p2, evaluate and install
           there. *)
        let delegated =
          Expr.send_as_doc ~name:"res" ~at:p2
            (Expr.Query_app
               {
                 query = Expr.Q_send { dest = p2; q = Expr.Q_val { q; at = p1 } };
                 args = [ Expr.send_to_peer p2 (Expr.doc "cat" ~at:"p1") ];
                 at = p2;
               })
        in
        let sys_l = build () in
        let out_l = run_plan sys_l local in
        let sys_d = build () in
        let out_d = run_plan sys_d delegated in
        let doc_fp sys =
          match System.find_document sys p2 "res" with
          | Some d -> Doc.Equivalence.fingerprint (Doc.Document.root d)
          | None -> "missing"
        in
        if doc_fp sys_l <> doc_fp sys_d then Printf.printf "  !! E2 mismatch\n";
        [
          Printf.sprintf "%.0f%%" (sel *. 100.0);
          fmt_bytes out_l.stats.bytes;
          fmt_bytes out_d.stats.bytes;
          (if out_l.stats.bytes <= out_d.stats.bytes then "local" else "delegate");
        ])
      [ 0.02; 0.1; 0.3; 0.6; 0.9 ]
  in
  table ~headers:[ "sel"; "eval-local B"; "delegate B"; "winner" ] rows;
  Printf.printf
    "\nshape: local-then-ship wins while results are small; once the\n\
     (expanding) output outweighs the input, delegation wins — the\n\
     crossover the rule exists for\n"

(* --- E3: rule 11, distributing a composed query ------------------ *)

let e3 () =
  section "E3  Rule 11: decomposing a composition across peers";
  Printf.printf
    "q = join(hits@p2, hits@p3): centralized (fetch both catalogs to p1)\n\
     vs distributed (sub-queries pushed to the data, rule 11 + rule 10)\n\n";
  let sub_query peer_doc =
    ignore peer_doc;
    Query.Parser.parse_exn
      {|query(1) for $x in $0//item where attr($x, "category") = "wanted" return <hit>{$x}</hit>|}
  in
  let head =
    Query.Parser.parse_exn
      "query(2) for $a in $0, $b in $1 return <pair>{$a}{$b}</pair>"
  in
  let rows =
    List.map
      (fun items ->
        let build () =
          let sys = mesh_system () in
          List.iteri
            (fun i p ->
              let rng = Workload.Rng.create ~seed:(100 + i) in
              let g = Runtime.System.gen_of sys p in
              Runtime.System.add_document sys p ~name:"cat"
                (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:0.05 ()))
            [ p2; p3 ];
          sys
        in
        (* Centralized: fetch both documents and run everything at p1. *)
        let centralized =
          Expr.Query_app
            {
              query =
                Expr.Q_val
                  {
                    q =
                      Query.Parser.parse_exn
                        {|compose { query(2) for $a in $0, $b in $1 return <pair>{$a}{$b}</pair> }
                          ({ query(2) for $x in $0//item where attr($x, "category") = "wanted" return <hit>{$x}</hit> };
                           { query(2) for $x in $1//item where attr($x, "category") = "wanted" return <hit>{$x}</hit> })|};
                    at = p1;
                  };
              args = [ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ];
              at = p1;
            }
        in
        (* Distributed: each selection runs at its data peer; only hits
           travel (rule 11 unfold + rule 10 per sub-query). *)
        let pushed_sub peer =
          Expr.Query_app
            {
              query =
                Expr.Q_send
                  { dest = peer; q = Expr.Q_val { q = sub_query peer; at = p1 } };
              args = [ Expr.doc "cat" ~at:(Net.Peer_id.to_string peer) ];
              at = peer;
            }
        in
        let distributed =
          Expr.Query_app
            {
              query = Expr.Q_val { q = head; at = p1 };
              args = [ pushed_sub p2; pushed_sub p3 ];
              at = p1;
            }
        in
        let out_c = run_plan (build ()) centralized in
        let out_d = run_plan (build ()) distributed in
        [
          string_of_int items;
          fmt_bytes out_c.stats.bytes;
          fmt_bytes out_d.stats.bytes;
          fmt_ratio
            (float_of_int out_c.stats.bytes /. float_of_int (max 1 out_d.stats.bytes));
          fmt_ms out_c.elapsed_ms;
          fmt_ms out_d.elapsed_ms;
        ])
      [ 200; 1000; 4000 ]
  in
  table
    ~headers:[ "items/peer"; "central B"; "distrib B"; "ratio"; "central ms"; "distrib ms" ]
    rows;
  Printf.printf "\nshape: distribution wins and scales with catalog size\n"

(* --- E4: rule 12, intermediary stops ----------------------------- *)

let e4 () =
  section "E4  Rule 12: when an intermediary stop pays off";
  Printf.printf
    "moving 1 catalog p2 -> p1 with a relay p3; the direct p2->p1 link is\n\
     slow, relay links are fast.  Sweeping the direct link's bandwidth.\n\n";
  let items = 1200 in
  let rows =
    List.map
      (fun direct_bw ->
        let slow = Net.Link.make ~latency_ms:40.0 ~bandwidth_bytes_per_ms:direct_bw in
        let fast = Net.Link.make ~latency_ms:5.0 ~bandwidth_bytes_per_ms:500.0 in
        let topo =
          Net.Topology.of_links ~default:slow
            [ (p2, p3, fast); (p3, p1, fast); (p1, p3, fast); (p3, p2, fast) ]
            [ p1; p2; p3 ]
        in
        let build () =
          let sys = Runtime.System.create topo in
          let rng = Workload.Rng.create ~seed:4 in
          let g = Runtime.System.gen_of sys p2 in
          Runtime.System.add_document sys p2 ~name:"cat"
            (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:0.1 ());
          sys
        in
        let direct = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
        let relayed =
          Expr.Send
            {
              dest = Expr.To_peer p1;
              expr =
                Expr.Send { dest = Expr.To_peer p3; expr = Expr.doc "cat" ~at:"p2" };
            }
        in
        let out_d = run_plan (build ()) direct in
        let out_r = run_plan (build ()) relayed in
        [
          Printf.sprintf "%.0f B/ms" direct_bw;
          fmt_ms out_d.elapsed_ms;
          fmt_ms out_r.elapsed_ms;
          fmt_bytes out_d.stats.bytes;
          fmt_bytes out_r.stats.bytes;
          (if out_d.elapsed_ms <= out_r.elapsed_ms then "direct" else "relay");
        ])
      [ 500.0; 100.0; 50.0; 20.0; 5.0 ]
  in
  table
    ~headers:[ "direct bw"; "direct ms"; "relay ms"; "direct B"; "relay B"; "faster" ]
    rows;
  Printf.printf
    "\nshape: the relay doubles bytes but wins on time once the direct link\n\
     is slow enough — the paper's remark that rule 12 is not one-way\n"

(* --- E5: rule 13, transfer sharing ------------------------------- *)

let e5 () =
  section "E5  Rule 13: sharing a repeated transfer via materialization";
  Printf.printf
    "a self-join needs the remote catalog twice; sharing materializes it\n\
     once (bytes halve); the sequencing the paper warns about stays off\n\
     the critical path here because both copies share one source link\n\n";
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item
        where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
        return <pair/>|}
  in
  let rows =
    List.map
      (fun items ->
        let build () = catalog_system ~items ~selectivity:0.05 ~seed:5 () in
        let fetch = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
        let twice = Expr.query_at join ~at:p1 ~args:[ fetch; fetch ] in
        let shared =
          match Rewrite.r13_share ~fresh:(fun () -> "_tmp_e5") twice with
          | r :: _ -> r.result
          | [] -> assert false
        in
        let sys1, _ = build () in
        let out_t = run_plan sys1 twice in
        let sys2, _ = build () in
        let out_s = run_plan sys2 shared in
        check_same "E5" out_t.results out_s.results;
        [
          string_of_int items;
          fmt_bytes out_t.stats.bytes;
          fmt_bytes out_s.stats.bytes;
          fmt_ratio
            (float_of_int out_t.stats.bytes /. float_of_int (max 1 out_s.stats.bytes));
          fmt_ms out_t.elapsed_ms;
          fmt_ms out_s.elapsed_ms;
        ])
      [ 200; 1000; 3000 ]
  in
  table
    ~headers:[ "items"; "unshared B"; "shared B"; "ratio"; "unshared ms"; "shared ms" ]
    rows;
  Printf.printf "\nshape: bytes halve at every size; latency gap stays small\n"

(* --- E6: rule 15, relocating sc evaluation ----------------------- *)

let e6 () =
  section "E6  Rule 15: relocating sc-rooted trees (fan-out sweep)";
  Printf.printf
    "an sc with k forward targets; activating it from the caller vs\n\
     relocating the activation to the provider (params skip one hop)\n\n";
  let items = 600 in
  let peers =
    p1 :: p2
    :: List.init 16 (fun i -> Net.Peer_id.of_string (Printf.sprintf "t%d" i))
  in
  let rows =
    List.map
      (fun k ->
        let build () =
          let sys =
            Runtime.System.create (Net.Topology.full_mesh ~link:default_link peers)
          in
          let rng = Workload.Rng.create ~seed:6 in
          let g2 = Runtime.System.gen_of sys p2 in
          Runtime.System.add_service sys p2
            (Doc.Service.declarative ~name:"find"
               (Workload.Xml_gen.selection_query ()));
          let param =
            Workload.Xml_gen.catalog ~gen:g2 ~rng ~items ~selectivity:0.05 ()
          in
          (* k inbox documents on k target peers *)
          let targets =
            List.init k (fun i ->
                let tp = Net.Peer_id.of_string (Printf.sprintf "t%d" i) in
                let g = Runtime.System.gen_of sys tp in
                let inbox = Xml.Tree.element_of_string ~gen:g "inbox" [] in
                Runtime.System.add_document sys tp ~name:"inbox" inbox;
                Names.Node_ref.make ~node:(Option.get (Xml.Tree.id inbox)) ~peer:tp)
          in
          let sc =
            Doc.Sc.make ~forward:targets ~provider:(Names.At p2) ~service:"find"
              [ [ param ] ]
          in
          (sys, sc)
        in
        let sys1, sc1 = build () in
        let caller = run_plan sys1 (Expr.sc sc1 ~at:p1) in
        let sys2, sc2 = build () in
        let relocated =
          Expr.Eval_at { at = p2; expr = Expr.Sc { sc = sc2; at = p2 } }
        in
        let reloc = run_plan sys2 relocated in
        [
          string_of_int k;
          fmt_bytes caller.stats.bytes;
          fmt_bytes reloc.stats.bytes;
          fmt_ms caller.elapsed_ms;
          fmt_ms reloc.elapsed_ms;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  table
    ~headers:[ "fan-out k"; "at-caller B"; "relocated B"; "caller ms"; "reloc ms" ]
    rows;
  Printf.printf
    "\nshape: the rule's claim is location independence — relocating the\n\
     activation changes neither results nor (within <1%% plan-shipping\n\
     overhead) cost; the response fan-out dominates and is identical\n"

(* --- E7: rule 16, pushing queries over service calls ------------- *)

let e7 () =
  section "E7  Rule 16: pushing a query over a service call";
  Printf.printf
    "q extracts names from a service's response; the provider's service\n\
     returns matching items.  Sweeping the match rate (= response size):\n\
     pushed ships q instead of the response, but re-ships parameters.\n\n";
  let probe =
    Query.Parser.parse_exn
      {|query(1) for $h in $0, $n in $h//name return <just_name>{$n}</just_name>|}
  in
  let items = 800 in
  let rows =
    List.map
      (fun match_rate ->
        let build () =
          let sys = mesh_system () in
          let rng = Workload.Rng.create ~seed:77 in
          let g = Runtime.System.gen_of sys p1 in
          let param =
            Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:match_rate
              ~payload_bytes:96 ()
          in
          Runtime.System.add_service sys p2
            (Doc.Service.declarative ~name:"wanted"
               (Workload.Xml_gen.selection_query_with_payload ()));
          (sys, param)
        in
        let plan param =
          Expr.Query_app
            {
              query = Expr.Q_val { q = probe; at = p1 };
              args =
                [
                  Expr.Sc
                    {
                      sc =
                        Doc.Sc.make ~provider:(Names.At p2) ~service:"wanted"
                          [ [ param ] ];
                      at = p1;
                    };
                ];
              at = p1;
            }
        in
        let sys1, param1 = build () in
        let naive = run_plan sys1 (plan param1) in
        let sys2, param2 = build () in
        let pushed_plan =
          match Rewrite.r16_push_query_over_sc (plan param2) with
          | [ r ] -> r.result
          | _ -> assert false
        in
        let pushed = run_plan sys2 pushed_plan in
        check_same "E7" naive.results pushed.results;
        [
          Printf.sprintf "%.0f%%" (match_rate *. 100.0);
          fmt_bytes naive.stats.bytes;
          fmt_bytes pushed.stats.bytes;
          (if naive.stats.bytes <= pushed.stats.bytes then "as-is" else "push");
        ])
      [ 0.02; 0.1; 0.3; 0.6; 0.9 ]
  in
  table ~headers:[ "match rate"; "naive B"; "pushed B"; "winner" ] rows;
  Printf.printf
    "\nshape: parameters ship once either way; pushing replaces the response\n\
     transfer with the (tiny) final result, so its margin grows with the\n\
     service's match rate\n"

(* --- E8: generic services, pick policies ------------------------- *)

let e8 () =
  section "E8  Definition 9: pick policies for generic resources";
  Printf.printf
    "one catalog replicated on 4 mirrors with heterogeneous links from the\n\
     client; 6 consecutive generic queries per policy\n\n";
  let mirrors =
    List.init 4 (fun i -> Net.Peer_id.of_string (Printf.sprintf "m%d" i))
  in
  let client = p1 in
  let build () =
    (* Mirror m_i sits behind a link of latency 5*(i+1), bw 500/(i+1). *)
    (* Mirror m0 (the one reference order picks first) sits behind the
       worst link; quality improves with the index. *)
    let links =
      List.concat
        (List.mapi
           (fun i m ->
             let rank = float_of_int (List.length mirrors - i) in
             let l =
               Net.Link.make ~latency_ms:(5.0 *. rank)
                 ~bandwidth_bytes_per_ms:(500.0 /. rank)
             in
             [ (client, m, l); (m, client, l) ])
           mirrors)
    in
    let topo =
      Net.Topology.of_links ~default:default_link links (client :: mirrors)
    in
    let sys = Runtime.System.create topo in
    List.iteri
      (fun i m ->
        let rng = Workload.Rng.create ~seed:(800 + i) in
        let g = Runtime.System.gen_of sys m in
        Runtime.System.add_document sys m ~name:"cat"
          (Workload.Xml_gen.catalog ~gen:g ~rng ~items:700 ~selectivity:0.05 ());
        Runtime.System.register_doc_class sys ~class_name:"mirror"
          (Names.Doc_ref.at_peer "cat" ~peer:(Net.Peer_id.to_string m)))
      mirrors;
    sys
  in
  let q = Workload.Xml_gen.selection_query () in
  let plan = Expr.query_at q ~at:client ~args:[ Expr.doc_any "mirror" ] in
  let rows =
    List.map
      (fun (name, policy_of) ->
        let sys = build () in
        (System.peer sys client).Runtime.Peer.policy <- policy_of sys;
        let total_bytes = ref 0 and total_ms = ref 0.0 in
        for _ = 1 to 6 do
          let out = run_plan sys plan in
          total_bytes := !total_bytes + out.stats.bytes;
          total_ms := !total_ms +. out.elapsed_ms
        done;
        [ name; fmt_bytes !total_bytes; fmt_ms !total_ms ])
      [
        ("First", fun _ -> Doc.Generic.First);
        ("Random", fun _ -> Doc.Generic.Random 17);
        ( "Nearest",
          fun sys ->
            Doc.Generic.Nearest
              {
                from = client;
                topology = Net.Sim.topology (System.sim sys);
                probe_bytes = 16_384;
              } );
        ( "LeastLoaded",
          fun sys ->
            Doc.Generic.Least_loaded
              (fun p -> Net.Sim.busy_until (System.sim sys) p) );
      ]
  in
  table ~headers:[ "policy"; "bytes (6 runs)"; "total ms" ] rows;
  Printf.printf "\nshape: Nearest beats First/Random on completion time\n"

(* --- E9: continuous evaluation ----------------------------------- *)

let e9 () =
  section "E9  Continuous queries: incremental vs re-evaluation";
  Printf.printf
    "a stream of n catalog fragments into a continuous selection; CPU time\n\
     of processing every arrival incrementally vs re-running from scratch\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let fragment seed =
    let rng = Workload.Rng.create ~seed in
    let g = Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "e9-%d" seed) in
    Workload.Xml_gen.catalog ~gen:g ~rng ~items:30 ~selectivity:0.2 ()
  in
  let rows =
    List.map
      (fun n ->
        let stream = List.init n fragment in
        let g = Xml.Node_id.Gen.create ~namespace:"e9" in
        (* Incremental. *)
        let t0 = Sys.time () in
        let state = Query.Incremental.create q in
        let deltas =
          List.concat_map
            (fun t -> Query.Incremental.push ~gen:g state ~input:0 t)
            stream
        in
        let t_inc = Sys.time () -. t0 in
        (* Re-evaluation per arrival. *)
        let t0 = Sys.time () in
        let full = ref [] in
        let seen = ref [] in
        List.iter
          (fun t ->
            seen := !seen @ [ t ];
            full := Query.Eval.eval ~gen:g q [ !seen ])
          stream;
        let t_re = Sys.time () -. t0 in
        if not (Xml.Canonical.equal_forest deltas !full) then
          Printf.printf "  !! E9 mismatch\n";
        [
          string_of_int n;
          Printf.sprintf "%.1f" (t_inc *. 1000.0);
          Printf.sprintf "%.1f" (t_re *. 1000.0);
          fmt_ratio (t_re /. max 1e-9 t_inc);
        ])
      [ 16; 64; 128 ]
  in
  table ~headers:[ "stream len"; "incremental ms"; "re-eval ms"; "speedup" ] rows;
  Printf.printf "\nshape: re-evaluation grows quadratically, incremental linearly\n"

(* --- E10: optimizer end-to-end ----------------------------------- *)

let e10 () =
  section "E10 Optimizer: naive vs greedy vs exhaustive (+ablation)";
  Printf.printf
    "the E1 plan under the cost model; estimated cost, plans explored, and\n\
     the simulator-measured bytes of each strategy's chosen plan\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let naive = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let build () = catalog_system ~items:2000 ~selectivity:0.05 ~seed:10 () in
  let _, cat_bytes = build () in
  let env =
    Algebra.Cost.default_env
      ~doc_bytes:(fun _ -> cat_bytes)
      (Net.Topology.full_mesh ~link:default_link [ p1; p2; p3 ])
  in
  let strategies =
    [
      ("naive (no search)", None);
      ("greedy(5)", Some (Algebra.Optimizer.Greedy { max_steps = 5 }));
      ("exhaustive(1)", Some (Algebra.Optimizer.Exhaustive { depth = 1 }));
      ("exhaustive(2)", Some (Algebra.Optimizer.Exhaustive { depth = 2 }));
      ( "best-first(24)",
        Some (Algebra.Optimizer.Best_first { max_expansions = 24 }) );
      ("beam(4,2)", Some (Algebra.Optimizer.Beam { width = 4; depth = 2 }));
    ]
  in
  let reference = ref [] in
  let rows =
    List.map
      (fun (name, strategy) ->
        let plan, explored, est =
          match strategy with
          | None -> (naive, 1, Algebra.Cost.of_expr env ~ctx:p1 naive)
          | Some s ->
              let r = Algebra.Optimizer.optimize ~env ~ctx:p1 s naive in
              (r.plan, r.explored, r.cost)
        in
        let t0 = Sys.time () in
        let sys, _ = build () in
        let out = run_plan sys plan in
        let wall = (Sys.time () -. t0) *. 1000.0 in
        if !reference = [] then reference := out.results
        else check_same "E10" !reference out.results;
        [
          name;
          string_of_int explored;
          fmt_bytes est.Algebra.Cost.bytes;
          fmt_bytes out.stats.bytes;
          fmt_ms out.elapsed_ms;
          Printf.sprintf "%.0f" wall;
        ])
      strategies
  in
  table
    ~headers:
      [ "strategy"; "plans"; "est B"; "measured B"; "sim ms"; "search+run wall ms" ]
    rows;
  Printf.printf
    "\nshape: both strategies find the pushed plan; exhaustive explores far\n\
     more plans for the same answer — greedy is the practical default\n"

(* --- E11: lazy vs eager call activation -------------------------- *)

let e11 () =
  section "E11 Lazy evaluation: activating only query-relevant calls";
  Printf.printf
    "a portal document with one call per section; the query inspects one\n\
     section.  Eager activation fires everything; lazy activation uses the\n\
     path-relevance analysis (Query.Relevance).  Sweeping section count.\n\n";
  let build sections =
    let sys = mesh_system () in
    (* One service per section at p2; section k's response weighs
       ~2^k KB so that skipping matters. *)
    List.iter
      (fun k ->
        let bytes = 1024 * (1 + k) in
        System.add_service sys p2
          (Doc.Service.extern
             ~name:(Printf.sprintf "feed%d" k)
             ~signature:(Axml_schema.Signature.untyped ~arity:0)
             (fun _ ->
               let g =
                 Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "f%d" k)
               in
               [
                 Xml.Tree.element_of_string ~gen:g "item"
                   [ Xml.Tree.text (String.make bytes 'x') ];
               ])))
      (List.init sections Fun.id);
    let section_xml k =
      Printf.sprintf
        "<section%d><sc><peer>p2</peer><service>feed%d</service></sc></section%d>"
        k k k
    in
    System.load_document sys p1 ~name:"portal"
      ~xml:
        (Printf.sprintf "<portal>%s</portal>"
           (String.concat ""
              (List.map section_xml (List.init sections Fun.id))));
    sys
  in
  let q =
    Query.Parser.parse_exn
      "query(1) for $i in $0/section0//item return <got/>"
  in
  let rows =
    List.map
      (fun sections ->
        let eager =
          Axml_peer.Lazy_eval.eval_over_document (build sections) ~ctx:p1
            ~mode:Axml_peer.Lazy_eval.Eager ~query:q ~doc:"portal"
        in
        let lazy_ =
          Axml_peer.Lazy_eval.eval_over_document (build sections) ~ctx:p1
            ~mode:Axml_peer.Lazy_eval.Lazy ~query:q ~doc:"portal"
        in
        if not (Xml.Canonical.equal_forest eager.results lazy_.results) then
          Printf.printf "  !! E11 mismatch\n";
        [
          string_of_int sections;
          Printf.sprintf "%d/%d" eager.activated sections;
          Printf.sprintf "%d/%d" lazy_.activated sections;
          fmt_bytes eager.stats.bytes;
          fmt_bytes lazy_.stats.bytes;
          fmt_ratio
            (float_of_int eager.stats.bytes
            /. float_of_int (max 1 lazy_.stats.bytes));
        ])
      [ 2; 4; 8; 16 ]
  in
  table
    ~headers:
      [ "sections"; "eager calls"; "lazy calls"; "eager B"; "lazy B"; "ratio" ]
    rows;
  Printf.printf
    "\nshape: lazy activates exactly one call regardless of document size;\n\
     savings grow with the number of irrelevant sections\n"

(* --- E12: heterogeneous peers — delegating to a faster CPU ------- *)

let e12 () =
  section "E12 Heterogeneous peers: delegating computation off a slow peer";
  Printf.printf
    "the data lives on a slow peer p1; p2 is fast and nearby.  Rule 10\n\
     delegation ships data+query to p2; the winner flips with p1's\n\
     slowdown factor.\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let build factor =
    let sys =
      Runtime.System.create
        (Net.Topology.full_mesh
           ~link:(Net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:2000.0)
           [ p1; p2; p3 ])
    in
    Net.Sim.set_cpu_factor (System.sim sys) p1 factor;
    let rng = Workload.Rng.create ~seed:12 in
    let g = Runtime.System.gen_of sys p1 in
    Runtime.System.add_document sys p1 ~name:"cat"
      (Workload.Xml_gen.catalog ~gen:g ~rng ~items:2000 ~selectivity:0.05 ());
    sys
  in
  let local = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p1" ] in
  let delegated =
    Expr.Query_app
      {
        query = Expr.Q_send { dest = p2; q = Expr.Q_val { q; at = p1 } };
        args = [ Expr.send_to_peer p2 (Expr.doc "cat" ~at:"p1") ];
        at = p2;
      }
  in
  let rows =
    List.map
      (fun factor ->
        let out_l = run_plan (build factor) local in
        let out_d = run_plan (build factor) delegated in
        check_same "E12" out_l.results out_d.results;
        [
          Printf.sprintf "%.0fx" factor;
          fmt_ms out_l.elapsed_ms;
          fmt_ms out_d.elapsed_ms;
          (if out_l.elapsed_ms <= out_d.elapsed_ms then "local" else "delegate");
        ])
      [ 1.0; 10.0; 50.0; 200.0; 1000.0 ]
  in
  table ~headers:[ "p1 slowdown"; "local ms"; "delegate ms"; "winner" ] rows;
  Printf.printf
    "\nshape: once the slow peer's compute time exceeds the round-trip\n\
     transfer, delegation wins; the crossover moves with the factor\n"

(* --- E13: single-site query optimization (ablation) -------------- *)

let e13 () =
  section "E13 Query-level optimization: binding reordering ablation";
  Printf.printf
    "a self-join whose selective binding is written last; Optimize moves it\n\
     first so the early-filter evaluator prunes.  Enumerated binding tuples\n\
     and wall-clock CPU per catalog size:\n\n";
  let q =
    Query.Parser.parse_exn
      {|query(1) for $all in $0//item, $sel in $0//item
        where attr($sel, "category") = "wanted"
        return <pair/>|}
  in
  let optimized = Query.Optimize.optimize q in
  let rows =
    List.map
      (fun items ->
        let rng = Workload.Rng.create ~seed:13 in
        let g =
          Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "e13-%d" items)
        in
        let input =
          [ Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:0.05 () ]
        in
        let measure query =
          let t0 = Sys.time () in
          let out, tuples =
            Query.Eval.eval_counted
              ~gen:(Xml.Node_id.Gen.create ~namespace:"e13run")
              query [ input ]
          in
          (List.length out, tuples, (Sys.time () -. t0) *. 1000.0)
        in
        let n1, t1, ms1 = measure q in
        let n2, t2, ms2 = measure optimized in
        if n1 <> n2 then Printf.printf "  !! E13 result mismatch\n";
        [
          string_of_int items;
          string_of_int t1;
          string_of_int t2;
          fmt_ratio (float_of_int t1 /. float_of_int (max 1 t2));
          Printf.sprintf "%.1f" ms1;
          Printf.sprintf "%.1f" ms2;
        ])
      [ 100; 400; 1600 ]
  in
  table
    ~headers:
      [ "items"; "tuples naive"; "tuples reord"; "ratio"; "naive ms"; "reord ms" ]
    rows;
  Printf.printf
    "\nshape: reordering turns O(n^2) enumeration into ~O(n + hits*n);\n\
     the saving factor approaches 1/(1+sel) * n/selected\n"

(* --- E14: distributed join over region-partitioned XMark data ---- *)

let e14 () =
  section "E14 XMark: distributed join over region-partitioned auction data";
  Printf.printf
    "items are partitioned by region across peers; the auction list lives\n\
     on a hub.  Join auctions to item names: fetch every region's items to\n\
     the hub, or ship the (small) auction list to each region and join\n\
     there (rule 10 per partition).\n\n";
  let join_q =
    Query.Parser.parse_exn
      {|query(2) for $a in $0//auction, $i in $1//item, $n in $i/name, $c in $a/current
        where attr($a, "item") = attr($i, "id")
        return <sale>{$n}<price>{text($c)}</price></sale>|}
  in
  let hub = p1 in
  let region_peers =
    List.map Net.Peer_id.of_string Workload.Xmark.regions
  in
  let build scale_desc =
    let sys =
      Runtime.System.create
        (Net.Topology.star ~hub
           ~spoke_link:(Net.Link.make ~latency_ms:8.0 ~bandwidth_bytes_per_ms:120.0)
           (hub :: region_peers))
    in
    let rng = Workload.Rng.create ~seed:14 in
    let ggen = Runtime.System.gen_of sys hub in
    let scale =
      { Workload.Xmark.default_scale with description_bytes = scale_desc }
    in
    let site = Workload.Xmark.site ~scale ~gen:ggen ~rng () in
    (* Partition: auctions at the hub, each region's items at its
       peer. *)
    let part path =
      List.hd (Xml.Path.select (Xml.Path.of_string path) site)
    in
    Runtime.System.add_document sys hub ~name:"auctions"
      (Xml.Tree.copy ~gen:ggen (part "/auctions"));
    List.iter2
      (fun rp rname ->
        let g = Runtime.System.gen_of sys rp in
        Runtime.System.add_document sys rp ~name:"items"
          (Xml.Tree.copy ~gen:g (part ("/regions/" ^ rname))))
      region_peers Workload.Xmark.regions;
    sys
  in
  let naive =
    List.map
      (fun rp ->
        Expr.query_at join_q ~at:hub
          ~args:
            [
              Expr.doc "auctions" ~at:(Net.Peer_id.to_string hub);
              Expr.doc "items" ~at:(Net.Peer_id.to_string rp);
            ])
      region_peers
  in
  let distributed =
    List.map
      (fun rp ->
        Expr.Query_app
          {
            query = Expr.Q_send { dest = rp; q = Expr.Q_val { q = join_q; at = hub } };
            args =
              [
                Expr.send_to_peer rp (Expr.doc "auctions" ~at:"p1");
                Expr.doc "items" ~at:(Net.Peer_id.to_string rp);
              ];
            at = rp;
          })
      region_peers
  in
  let run_all sys plans =
    List.fold_left
      (fun (bytes, ms, results) plan ->
        let out = run_plan sys plan in
        (bytes + out.stats.bytes, max ms out.elapsed_ms, results @ out.results))
      (0, 0.0, []) plans
  in
  let rows =
    List.map
      (fun desc_bytes ->
        let nb, nms, nres = run_all (build desc_bytes) naive in
        let db, dms, dres = run_all (build desc_bytes) distributed in
        check_same "E14" nres dres;
        [
          string_of_int desc_bytes;
          fmt_bytes nb;
          fmt_bytes db;
          fmt_ratio (float_of_int nb /. float_of_int (max 1 db));
          fmt_ms nms;
          fmt_ms dms;
        ])
      [ 60; 240; 960 ]
  in
  table
    ~headers:
      [ "desc bytes"; "fetch-all B"; "join-at-data B"; "ratio"; "fetch ms"; "dist ms" ]
    rows;
  Printf.printf
    "\nshape: a genuine crossover — with small items, shipping the auction\n\
     list to every region costs more than fetching the items; as item\n\
     payloads grow, joining at the data wins by a widening margin\n"

(* --- E15: the unified planner ------------------------------------ *)

let e15 () =
  section "E15 Planner: fingerprint memo ablation and search strategies";
  Printf.printf
    "part A — the visited set: exhaustive(2) with the seed's O(n^2) list\n\
     scan vs the fingerprint-bucketed memo.  Same plan space, same best\n\
     cost; the memo pays for structural Expr.equal only on hash-bucket\n\
     collisions.\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item
        where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
        return <pair/>|}
  in
  let fetch = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
  let fixtures =
    [
      ("select", Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ]);
      ("self-join", Expr.query_at join ~at:p1 ~args:[ fetch; fetch ]);
      ( "join-2-peers",
        Expr.query_at join ~at:p1
          ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ] );
    ]
  in
  let env =
    Algebra.Cost.default_env
      ~doc_bytes:(fun _ -> 60_000)
      (Net.Topology.full_mesh ~link:default_link [ p1; p2; p3 ])
  in
  let timed_search ~visited strategy plan =
    let eq0 = Expr.equal_calls () in
    let t0 = Sys.time () in
    let r = Algebra.Optimizer.optimize ~env ~ctx:p1 ~visited strategy plan in
    ((Sys.time () -. t0) *. 1000.0, Expr.equal_calls () - eq0, r)
  in
  let rows =
    List.concat_map
      (fun (name, plan) ->
        let strategy = Algebra.Optimizer.Exhaustive { depth = 2 } in
        let ms_l, eq_l, r_l = timed_search ~visited:`List strategy plan in
        let ms_f, eq_f, r_f = timed_search ~visited:`Fingerprint strategy plan in
        if
          r_l.Algebra.Optimizer.explored <> r_f.Algebra.Optimizer.explored
          || Algebra.Cost.weighted r_l.cost <> Algebra.Cost.weighted r_f.cost
        then Printf.printf "  !! E15 memo/list divergence on %s\n" name;
        [
          [
            name; "list"; string_of_int r_l.Algebra.Optimizer.explored;
            string_of_int eq_l; fmt_ms ms_l;
            Printf.sprintf "%.0f" (Algebra.Cost.weighted r_l.cost);
          ];
          [
            name; "fingerprint"; string_of_int r_f.Algebra.Optimizer.explored;
            string_of_int eq_f; fmt_ms ms_f;
            Printf.sprintf "%.0f" (Algebra.Cost.weighted r_f.cost);
          ];
        ])
      fixtures
  in
  table
    ~headers:[ "plan"; "visited"; "explored"; "Expr.equal"; "search ms"; "best cost" ]
    rows;
  Printf.printf
    "\npart B — strategies on the same space: expansions and plans explored\n\
     to reach (or approach) the exhaustive-optimal cost.\n\n";
  let strategies =
    [
      Algebra.Optimizer.Exhaustive { depth = 2 };
      Algebra.Optimizer.Greedy { max_steps = 4 };
      Algebra.Optimizer.Best_first { max_expansions = 8 };
      Algebra.Optimizer.Beam { width = 4; depth = 2 };
    ]
  in
  let rows =
    List.concat_map
      (fun (name, plan) ->
        let optimum =
          (Algebra.Optimizer.optimize ~env ~ctx:p1
             (Algebra.Optimizer.Exhaustive { depth = 2 })
             plan)
            .Algebra.Optimizer.cost
        in
        List.map
          (fun strategy ->
            let ms, _, r = timed_search ~visited:`Fingerprint strategy plan in
            [
              name;
              Algebra.Optimizer.strategy_name strategy;
              string_of_int r.Algebra.Optimizer.expansions;
              string_of_int r.Algebra.Optimizer.explored;
              fmt_ms ms;
              Printf.sprintf "%.0f" (Algebra.Cost.weighted r.cost);
              (if
                 Algebra.Cost.weighted r.cost
                 <= Algebra.Cost.weighted optimum +. 1e-9
               then "yes"
               else "no");
            ])
          strategies)
      fixtures
  in
  table
    ~headers:
      [ "plan"; "strategy"; "expansions"; "explored"; "ms"; "cost"; "optimal?" ]
    rows;
  Printf.printf
    "\npart C — optimize-then-execute: the naive plan vs the planner's\n\
     choice (Exec.run_optimized against the live system's cost oracles),\n\
     simulator-measured.\n\n";
  let rows =
    List.map
      (fun items ->
        let build () = catalog_system ~items ~selectivity:0.05 ~seed:15 () in
        let naive = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
        let sys_n, _ = build () in
        let out_n = run_plan sys_n naive in
        let sys_o, _ = build () in
        let planned, out_o =
          Runtime.Exec.run_optimized sys_o ~ctx:p1
            ~strategy:(Algebra.Optimizer.Best_first { max_expansions = 16 })
            naive
        in
        check_same "E15" out_n.results out_o.results;
        [
          string_of_int items;
          fmt_bytes out_n.stats.bytes;
          fmt_bytes out_o.stats.bytes;
          string_of_int out_n.stats.messages;
          string_of_int out_o.stats.messages;
          string_of_int planned.Algebra.Planner.search.Algebra.Optimizer.explored;
          fmt_ms out_n.elapsed_ms;
          fmt_ms out_o.elapsed_ms;
        ])
      [ 200; 1000; 4000 ]
  in
  table
    ~headers:
      [
        "items"; "naive B"; "planned B"; "naive msgs"; "planned msgs";
        "explored"; "naive ms"; "planned ms";
      ]
    rows;
  Printf.printf
    "\nshape: the memo explores the identical plan set for a fraction of the\n\
     structural comparisons; best-first reaches the exhaustive optimum\n\
     with a fraction of the expansions; the executed planned plan ships\n\
     a fraction of the naive bytes\n"

(* --- E16: observability ------------------------------------------ *)

let e16 () =
  section "E16 Observability: traced Example-1, per-peer breakdowns";
  Printf.printf
    "part A — the Example-1 runs of E1 under tracing + metrics: where the\n\
     bytes and CPU go, per peer, for the naive and the planned plan.\n\n";
  let q = Workload.Xml_gen.selection_query () in
  let naive = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let dist_sum snapshot ~peer ~subsystem name =
    List.fold_left
      (fun acc (e : Obs.Metrics.entry) ->
        match e.sample with
        | Obs.Metrics.Dist d
          when e.peer = peer && e.subsystem = subsystem && e.name = name ->
            acc +. d.sum
        | _ -> acc)
      0.0 snapshot
  in
  let traced_run label ~planned =
    Obs.Trace.set_enabled true;
    Obs.Trace.clear ();
    Obs.Metrics.set_enabled Obs.Metrics.default true;
    Obs.Metrics.reset Obs.Metrics.default;
    let sys, _ = catalog_system ~items:1000 ~selectivity:0.05 ~seed:7 () in
    let out =
      if planned then snd (Runtime.Exec.run_optimized sys ~ctx:p1 naive)
      else run_plan sys naive
    in
    let events = Obs.Trace.events () in
    let snapshot = Obs.Metrics.snapshot Obs.Metrics.default in
    let rows =
      List.map
        (fun peer ->
          let pname = Net.Peer_id.to_string peer in
          let bytes =
            Obs.Metrics.counter_value Obs.Metrics.default ~peer:pname
              ~subsystem:"net" "bytes_sent"
          in
          let msgs =
            Obs.Metrics.counter_value Obs.Metrics.default ~peer:pname
              ~subsystem:"net" "messages_sent"
          in
          let cpu = dist_sum snapshot ~peer:pname ~subsystem:"peer" "cpu_ms" in
          let spans =
            List.length
              (List.filter
                 (fun (e : Obs.Trace.event) -> e.peer = pname)
                 events)
          in
          [
            label; pname; fmt_bytes bytes; string_of_int msgs;
            Printf.sprintf "%.2f" cpu; string_of_int spans;
          ])
        [ p1; p2; p3 ]
    in
    let metric_bytes =
      int_of_float
        (Obs.Metrics.total Obs.Metrics.default ~subsystem:"net" "bytes_sent")
    in
    if metric_bytes <> out.Runtime.Exec.stats.bytes then
      Printf.printf "  !! E16 %s: metrics %dB vs stats %dB\n" label metric_bytes
        out.Runtime.Exec.stats.bytes;
    (rows, events, out)
  in
  let rows_n, _, _ = traced_run "naive" ~planned:false in
  let rows_p, events_p, _ = traced_run "planned" ~planned:true in
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  Obs.Metrics.set_enabled Obs.Metrics.default false;
  Obs.Metrics.reset Obs.Metrics.default;
  table
    ~headers:[ "plan"; "peer"; "sent B"; "msgs"; "cpu ms"; "events" ]
    (rows_n @ rows_p);
  let cross =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (e : Obs.Trace.event) ->
        if e.corr <> 0 then begin
          let ps = Option.value ~default:[] (Hashtbl.find_opt tbl e.corr) in
          if not (List.mem e.peer ps) then Hashtbl.replace tbl e.corr (e.peer :: ps)
        end)
      events_p;
    Hashtbl.fold (fun _ ps acc -> acc + if List.length ps >= 2 then 1 else 0) tbl 0
  in
  Printf.printf
    "\nplanned run: %d trace events, %d correlation id(s) crossing >=2 peers\n"
    (List.length events_p) cross;
  Printf.printf
    "\npart B — cost of the instrumentation on the Sim.send hot path:\n\
     minor-heap words allocated per send, measured with Gc.minor_words.\n\
     Disabled tracing must add nothing: two disabled measurements around\n\
     an enabled one must agree to the word.\n\n";
  let words_per_send () =
    let sim =
      Net.Sim.create (Net.Topology.full_mesh ~link:default_link [ p1; p2 ])
    in
    Net.Sim.set_handler sim p2 (fun ~src:_ () -> ());
    Net.Sim.set_handler sim p1 (fun ~src:_ () -> ());
    (* Warm up so one-time allocation (stats tables, heap nodes) is
       not charged to the measured window. *)
    Net.Sim.send sim ~src:p1 ~dst:p2 ~bytes:8 ();
    ignore (Net.Sim.run sim);
    let sends = 10_000 in
    let w0 = Gc.minor_words () in
    for _ = 1 to sends do
      Net.Sim.send sim ~src:p1 ~dst:p2 ~bytes:8 ()
    done;
    let w1 = Gc.minor_words () in
    ignore (Net.Sim.run sim);
    (w1 -. w0) /. float_of_int sends
  in
  let disabled_a = words_per_send () in
  Obs.Trace.set_enabled true;
  let enabled = words_per_send () in
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  let disabled_b = words_per_send () in
  table
    ~headers:[ "tracing"; "words/send" ]
    [
      [ "disabled (before)"; Printf.sprintf "%.1f" disabled_a ];
      [ "enabled"; Printf.sprintf "%.1f" enabled ];
      [ "disabled (after)"; Printf.sprintf "%.1f" disabled_b ];
    ];
  if disabled_a <> disabled_b then
    Printf.printf "  !! E16: disabled-path allocation changed (%.1f vs %.1f)\n"
      disabled_a disabled_b;
  Printf.printf
    "\nshape: the per-peer table decomposes E1's byte totals — the catalog\n\
     transfer is all of p2's bytes under naive and vanishes under the\n\
     planned plan; disabled tracing allocates exactly the baseline\n\
     (the two disabled rows agree), enabled tracing pays ~a span record\n\
     per transfer\n"

(* --- E17: indexed document stores vs naive evaluation ------------ *)

(* Wall-clock milliseconds of the best of [n] runs (first-run noise —
   allocation, lazy compilation — must not be charged to either
   engine). *)
let best_ms ?(n = 3) f =
  let best = ref infinity in
  let res = ref None in
  for _ = 1 to n do
    let t0 = Sys.time () in
    let r = f () in
    let ms = (Sys.time () -. t0) *. 1000.0 in
    if ms < !best then best := ms;
    res := Some r
  done;
  (!best, Option.get !res)

(* A catalog whose descendant-step selectivity is controlled twice
   over: a [sel] fraction of items carries the "wanted" category
   attribute (candidate-bound selection: the predicate is checked per
   item by both engines), and the same fraction carries a <promo>
   child element (label-bound selection: the index answers //promo
   from postings while the interpreter walks the whole document). *)
let promo_catalog ~gen ~rng ~items ~sel =
  let open Xml in
  let item i =
    let matches = Workload.Rng.float rng 1.0 < sel in
    let category = if matches then "wanted" else "misc" in
    let promo =
      if matches then
        [
          Tree.element ~gen (Label.of_string "promo")
            [ Tree.text (Printf.sprintf "deal-%d" i) ];
        ]
      else []
    in
    Tree.element ~gen (Label.of_string "item")
      ~attrs:[ ("id", string_of_int i); ("category", category) ]
      (promo
      @ [
          Tree.element ~gen (Label.of_string "name")
            [ Tree.text (Printf.sprintf "item-%d" i) ];
          Tree.element ~gen (Label.of_string "price")
            [ Tree.text (string_of_int (1 + Workload.Rng.int rng 1000)) ];
          Tree.element ~gen (Label.of_string "payload")
            [ Tree.text (String.make 64 'x') ];
        ])
  in
  Tree.element ~gen (Label.of_string "catalog") (List.init items item)

let rare_label_query =
  lazy (Query.Parser.parse_exn "query(1) for $p in $0//promo return <hit>{$p}</hit>")

(* Minimal JSON rendering — every number this experiment emits is
   finite by construction (ratios divide by a clamped denominator). *)
let json_f x = Printf.sprintf "%.6g" x
let json_b b = if b then "true" else "false"
let json_s s = Printf.sprintf "%S" s
let json_obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_s k ^ ": " ^ v) fields) ^ "}"
let json_arr items = "[" ^ String.concat ", " items ^ "]"

let write_json path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

(* A previous BENCH_summary.json may hold experiments whose
   per-experiment artifact is no longer on disk (pruned, or produced
   by an earlier invocation in another tree).  Those entries must
   survive a re-run of any single experiment, so the envelope is a
   merge, not a rebuild — see {!write_summary}.  This extracts the
   ["experiments"] object of the old envelope as raw (key, json-text)
   pairs with a scanner matched to the hand-rolled writer: strings are
   skipped escape-aware, composite values are delimited by bracket
   balance.  Any parse trouble degrades to "no previous entries" —
   the summary is a derived artifact, never an input to experiments. *)
exception Bad_summary

let previous_summary_entries path =
  if not (Sys.file_exists path) then []
  else
    try
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let n = String.length s in
      let ws i =
        let j = ref i in
        while
          !j < n
          && match s.[!j] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
        do
          incr j
        done;
        !j
      in
      (* [i] at the opening quote; index just past the closing one. *)
      let string_end i =
        let j = ref (i + 1) in
        while !j < n && s.[!j] <> '"' do
          if s.[!j] = '\\' then j := !j + 2 else incr j
        done;
        if !j >= n then raise Bad_summary;
        !j + 1
      in
      let value_end i =
        let i = ws i in
        if i >= n then raise Bad_summary;
        match s.[i] with
        | '"' -> string_end i
        | ('{' | '[') as opening ->
            let close = if opening = '{' then '}' else ']' in
            let depth = ref 1 and j = ref (i + 1) in
            while !depth > 0 do
              if !j >= n then raise Bad_summary;
              (match s.[!j] with
              | '"' -> j := string_end !j - 1
              | c when c = opening -> incr depth
              | c when c = close -> decr depth
              | _ -> ());
              incr j
            done;
            !j
        | _ ->
            let j = ref i in
            while
              !j < n
              && match s.[!j] with ',' | '}' | ']' -> false | _ -> true
            do
              incr j
            done;
            !j
      in
      (* [i] at (or before) '{'; [f key value_start value_end] per
         member; index just past the matching '}'. *)
      let parse_object i f =
        let i = ws i in
        if i >= n || s.[i] <> '{' then raise Bad_summary;
        let j = ref (ws (i + 1)) in
        if !j < n && s.[!j] = '}' then !j + 1
        else begin
          let result = ref (-1) in
          while !result < 0 do
            let k0 = ws !j in
            if k0 >= n || s.[k0] <> '"' then raise Bad_summary;
            let k1 = string_end k0 in
            let key = String.sub s (k0 + 1) (k1 - k0 - 2) in
            let c = ws k1 in
            if c >= n || s.[c] <> ':' then raise Bad_summary;
            let v0 = ws (c + 1) in
            let v1 = value_end v0 in
            f key v0 v1;
            let next = ws v1 in
            if next < n && s.[next] = ',' then j := next + 1
            else if next < n && s.[next] = '}' then result := next + 1
            else raise Bad_summary
          done;
          !result
        end
      in
      let entries = ref [] in
      ignore
        (parse_object 0 (fun key v0 _v1 ->
             if String.equal key "experiments" then
               ignore
                 (parse_object v0 (fun k e0 e1 ->
                      entries := (k, String.sub s e0 (e1 - e0)) :: !entries))));
      List.rev !entries
    with _ -> []

(* BENCH_summary.json: one uniform envelope embedding every
   BENCH_E<n>.json artifact, keyed by experiment id.  Every experiment
   calls this after writing its own artifact — a dashboard reads one
   file with one schema instead of one ad-hoc schema per experiment.
   The envelope merges the previous summary with the artifacts present
   in the working directory, on-disk artifacts winning on key clashes.
   (Regression: it used to be rebuilt from the directory scan alone,
   so re-running one experiment silently dropped every entry whose
   BENCH_E<n>.json was not sitting next to it.) *)
let write_summary () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f ->
           String.starts_with ~prefix:"BENCH_E" f
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  let disk =
    List.map
      (fun f ->
        let key =
          let base = Filename.chop_suffix f ".json" in
          String.sub base 6 (String.length base - 6)
        in
        let ic = open_in_bin f in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (key, String.trim contents))
      files
  in
  let merged =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v)
      (previous_summary_entries "BENCH_summary.json");
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) disk;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  write_json "BENCH_summary.json"
    ("{" ^ json_s "schema_version" ^ ": 2, " ^ json_s "experiments" ^ ": {"
    ^ String.concat ", "
        (List.map (fun (k, v) -> json_s k ^ ": " ^ v) merged)
    ^ "}}")

let e17 ?(smoke = false) () =
  section
    (if smoke then "E17  indexed store vs naive evaluation (smoke)"
     else "E17  indexed store vs naive evaluation");
  Printf.printf
    "part A — one query, two engines over the same document: the Naive\n\
     engine is the seed interpreter (full traversal per descendant step),\n\
     Indexed serves descendant steps from the store's structural index.\n\
     \"rare-label\" binds //promo (matches only the selected fraction);\n\
     \"attr-sel\" binds //item and filters on an attribute (candidate\n\
     work dominates — the honest case where indexing helps less).\n\n";
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  Obs.Metrics.reset Obs.Metrics.default;
  let item_sizes = if smoke then [ 14; 143 ] else [ 14; 143; 1_430; 14_300 ] in
  let sels = [ 0.01; 0.1; 0.5 ] in
  let all_identical = ref true in
  let eval_gen () = Xml.Node_id.Gen.create ~namespace:"e17out" in
  let sweep =
    List.concat_map
      (fun items ->
        List.concat_map
          (fun sel ->
            let rng = Workload.Rng.create ~seed:17 in
            let g = Xml.Node_id.Gen.create ~namespace:"e17" in
            let doc = promo_catalog ~gen:g ~rng ~items ~sel in
            let nodes = Xml.Tree.size doc in
            let build_ms, ix = best_ms (fun () -> Xml.Index.build doc) in
            List.map
              (fun (qname, q) ->
                let naive_ms, out_n =
                  best_ms (fun () ->
                      Query.Compile.eval ~engine:Query.Compile.Naive
                        ~gen:(eval_gen ()) q [ [ doc ] ])
                in
                let indexed_ms, out_i =
                  best_ms (fun () ->
                      Query.Compile.eval_over ~engine:Query.Compile.Indexed
                        ~gen:(eval_gen ()) q
                        [ ([ doc ], Some ix) ])
                in
                let identical =
                  Xml.Serializer.forest_to_string out_n
                  = Xml.Serializer.forest_to_string out_i
                in
                if not identical then begin
                  all_identical := false;
                  Printf.printf "  !! E17 %s items=%d sel=%.2f: outputs differ\n"
                    qname items sel
                end;
                let speedup = naive_ms /. max indexed_ms 1e-4 in
                (qname, items, nodes, sel, build_ms, naive_ms, indexed_ms,
                 speedup, identical))
              [
                ("rare-label", Lazy.force rare_label_query);
                ("attr-sel", Workload.Xml_gen.selection_query ());
              ])
          sels)
      item_sizes
  in
  table
    ~headers:
      [ "query"; "items"; "nodes"; "sel"; "build ms"; "naive ms"; "indexed ms";
        "speedup" ]
    (List.map
       (fun (qn, items, nodes, sel, b, n, i, s, _) ->
         [
           qn; string_of_int items; string_of_int nodes;
           Printf.sprintf "%.2f" sel; Printf.sprintf "%.2f" b;
           Printf.sprintf "%.3f" n; Printf.sprintf "%.4f" i;
           fmt_ratio s;
         ])
       sweep);
  let hits =
    int_of_float (Obs.Metrics.total Obs.Metrics.default ~subsystem:"query" "index_hits")
  in
  let fallbacks =
    int_of_float (Obs.Metrics.total Obs.Metrics.default ~subsystem:"query" "fallback")
  in
  Printf.printf
    "\nmetrics: %d descendant steps served from postings, %d traversal fallbacks\n"
    hits fallbacks;
  Obs.Metrics.set_enabled Obs.Metrics.default false;
  Obs.Metrics.reset Obs.Metrics.default;
  Printf.printf
    "\npart B — streaming appends: one small item appended per round at a\n\
     random existing node; the index absorbs each append as a fresh\n\
     segment (cost bounded by the appended subtree and the rebuilt\n\
     spine), versus rebuilding the index from scratch each round\n\
     (cost proportional to the whole document).\n\n";
  let append_rounds = if smoke then 10 else 50 in
  let maint_sizes = if smoke then [ 143 ] else [ 143; 1_430; 14_300 ] in
  let maintenance =
    List.map
      (fun items ->
        let rng = Workload.Rng.create ~seed:18 in
        let g = Xml.Node_id.Gen.create ~namespace:"e17b" in
        let doc = ref (promo_catalog ~gen:g ~rng ~items ~sel:0.1) in
        let nodes0 = Xml.Tree.size !doc in
        let targets =
          let rec collect acc t =
            match t with
            | Xml.Tree.Text _ -> acc
            | Xml.Tree.Element e -> List.fold_left collect (e.id :: acc) e.children
          in
          Array.of_list (collect [] !doc)
        in
        let ix = Xml.Index.build !doc in
        let insert_ms = ref 0.0
        and maintain_ms = ref 0.0
        and rebuild_ms = ref 0.0
        and rebuild_samples = ref 0 in
        for i = 1 to append_rounds do
          let under = targets.(Workload.Rng.int rng (Array.length targets)) in
          let forest =
            [
              Xml.Tree.element ~gen:g (Xml.Label.of_string "item")
                ~attrs:[ ("id", Printf.sprintf "new%d" i); ("category", "wanted") ]
                [
                  Xml.Tree.element ~gen:g (Xml.Label.of_string "name")
                    [ Xml.Tree.text (Printf.sprintf "fresh-%d" i) ];
                ];
            ]
          in
          let t0 = Sys.time () in
          let t' = Option.get (Xml.Tree.insert_children ~under forest !doc) in
          insert_ms := !insert_ms +. ((Sys.time () -. t0) *. 1000.0);
          let t0 = Sys.time () in
          let ok = Xml.Index.append ix ~new_root:t' ~under forest in
          maintain_ms := !maintain_ms +. ((Sys.time () -. t0) *. 1000.0);
          if not ok then Printf.printf "  !! E17 append rejected (round %d)\n" i;
          (* Sample the from-scratch alternative sparsely: at 1e5 nodes
             a full rebuild costs ~100ms and would dominate the run. *)
          if i mod 10 = 1 then begin
            let t0 = Sys.time () in
            ignore (Xml.Index.build t');
            rebuild_ms := !rebuild_ms +. ((Sys.time () -. t0) *. 1000.0);
            incr rebuild_samples
          end;
          doc := t'
        done;
        let per x = x /. float_of_int append_rounds in
        let rebuild_per = !rebuild_ms /. float_of_int (max 1 !rebuild_samples) in
        let q = Workload.Xml_gen.selection_query () in
        let out_i =
          Query.Compile.eval_over ~engine:Query.Compile.Indexed ~gen:(eval_gen ())
            q [ ([ !doc ], Some ix) ]
        in
        let out_n =
          Query.Compile.eval ~engine:Query.Compile.Naive ~gen:(eval_gen ()) q
            [ [ !doc ] ]
        in
        let identical =
          Xml.Serializer.forest_to_string out_i
          = Xml.Serializer.forest_to_string out_n
        in
        if not identical then begin
          all_identical := false;
          Printf.printf "  !! E17 post-append results differ (%d items)\n" items
        end;
        (items, nodes0, per !insert_ms, per !maintain_ms, rebuild_per,
         rebuild_per /. max (per !maintain_ms) 1e-4,
         Xml.Index.segment_count ix, identical))
      maint_sizes
  in
  table
    ~headers:
      [ "items"; "nodes"; "insert ms"; "maintain ms"; "rebuild ms"; "ratio";
        "segments" ]
    (List.map
       (fun (items, nodes, ins, m, r, ratio, segs, _) ->
         [
           string_of_int items; string_of_int nodes; Printf.sprintf "%.4f" ins;
           Printf.sprintf "%.4f" m; Printf.sprintf "%.3f" r; fmt_ratio ratio;
           string_of_int segs;
         ])
       maintenance);
  Printf.printf
    "\npart C — planner output estimates for query(doc) with and without\n\
     store statistics: \"before\" is the flat input/5 heuristic, \"after\"\n\
     reads exact per-label counts off the document's index\n\
     (Selectivity.sketch).  err = |estimate - actual| / actual.\n\n";
  let items_c = if smoke then 143 else 1_430 in
  let topo = Net.Topology.full_mesh ~link:default_link [ p1; p2 ] in
  let cost_rows =
    List.concat_map
      (fun sel ->
        let rng = Workload.Rng.create ~seed:19 in
        let g = Xml.Node_id.Gen.create ~namespace:"e17c" in
        let doc = promo_catalog ~gen:g ~rng ~items:items_c ~sel in
        let store = Doc.Store.create () in
        Doc.Store.add store (Doc.Document.make ~name:"cat" doc);
        let stats =
          Doc.Store.stats_of store (Doc.Names.Doc_name.of_string "cat")
        in
        let bytes = Xml.Tree.byte_size doc in
        let env_before = Algebra.Cost.default_env ~doc_bytes:(fun _ -> bytes) topo in
        let env_after =
          Algebra.Cost.default_env ~doc_bytes:(fun _ -> bytes)
            ~doc_stats:(fun _ -> stats) topo
        in
        List.map
          (fun (qname, q) ->
            let plan =
              Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ]
            in
            let est env =
              (Algebra.Cost.of_expr env ~ctx:p1 plan).Algebra.Cost.result_bytes
            in
            let actual =
              Xml.Forest.byte_size
                (Query.Compile.eval ~gen:(eval_gen ()) q [ [ doc ] ])
            in
            let err est =
              Float.abs (float_of_int (est - actual)) /. float_of_int (max 1 actual)
            in
            (qname, sel, actual, est env_before, est env_after,
             err (est env_before), err (est env_after)))
          [
            ("rare-label", Lazy.force rare_label_query);
            ("attr-sel", Workload.Xml_gen.selection_query ());
          ])
      sels
  in
  table
    ~headers:
      [ "query"; "sel"; "actual B"; "est before"; "est after"; "err before";
        "err after" ]
    (List.map
       (fun (qn, sel, actual, eb, ea, errb, erra) ->
         [
           qn; Printf.sprintf "%.2f" sel; string_of_int actual;
           string_of_int eb; string_of_int ea; Printf.sprintf "%.1fx" errb;
           Printf.sprintf "%.1fx" erra;
         ])
       cost_rows);
  (* --- machine-readable artifacts -------------------------------- *)
  let sweep_json =
    json_arr
      (List.map
         (fun (qn, items, nodes, sel, b, n, i, s, ident) ->
           json_obj
             [
               ("query", json_s qn); ("items", string_of_int items);
               ("nodes", string_of_int nodes); ("selectivity", json_f sel);
               ("build_ms", json_f b); ("naive_ms", json_f n);
               ("indexed_ms", json_f i); ("speedup", json_f s);
               ("identical", json_b ident);
             ])
         sweep)
  in
  let maint_json =
    json_arr
      (List.map
         (fun (items, nodes, ins, m, r, ratio, segs, ident) ->
           json_obj
             [
               ("items", string_of_int items); ("nodes", string_of_int nodes);
               ("appends", string_of_int append_rounds);
               ("insert_ms_per_append", json_f ins);
               ("maintain_ms_per_append", json_f m);
               ("rebuild_ms_per_append", json_f r); ("ratio", json_f ratio);
               ("segments", string_of_int segs); ("identical", json_b ident);
             ])
         maintenance)
  in
  let cost_json =
    json_arr
      (List.map
         (fun (qn, sel, actual, eb, ea, errb, erra) ->
           json_obj
             [
               ("query", json_s qn); ("selectivity", json_f sel);
               ("actual_bytes", string_of_int actual);
               ("est_before", string_of_int eb); ("est_after", string_of_int ea);
               ("err_before", json_f errb); ("err_after", json_f erra);
             ])
         cost_rows)
  in
  let max_nodes =
    List.fold_left (fun acc (_, _, n, _, _, _, _, _, _) -> max acc n) 0 sweep
  in
  let max_items =
    List.fold_left (fun acc (_, i, _, _, _, _, _, _, _) -> max acc i) 0 sweep
  in
  let speedup_at_max =
    List.fold_left
      (fun acc (qn, i, _, _, _, _, _, s, _) ->
        if qn = "rare-label" && i = max_items then max acc s else acc)
      0.0 sweep
  in
  let max_speedup =
    List.fold_left (fun acc (_, _, _, _, _, _, _, s, _) -> max acc s) 0.0 sweep
  in
  let ratio_max =
    List.fold_left (fun acc (_, _, _, _, _, r, _, _) -> max acc r) 0.0 maintenance
  in
  let mean f rows =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows
    /. float_of_int (max 1 (List.length rows))
  in
  write_json "BENCH_E17.json"
    (json_obj
       [
         ("experiment", json_s "E17"); ("smoke", json_b smoke);
         ("sweep", sweep_json); ("maintenance", maint_json);
         ("cost_estimate", cost_json);
         ( "summary",
           json_obj
             [
               ("max_nodes", string_of_int max_nodes);
               ("max_speedup", json_f max_speedup);
               ("speedup_rare_label_at_max_size", json_f speedup_at_max);
               ("all_outputs_identical", json_b !all_identical);
               ("maintain_vs_rebuild_ratio_max", json_f ratio_max);
               ("mean_cost_err_before",
                json_f (mean (fun (_, _, _, _, _, e, _) -> e) cost_rows));
               ("mean_cost_err_after",
                json_f (mean (fun (_, _, _, _, _, _, e) -> e) cost_rows));
               ("index_hits", string_of_int hits);
               ("fallbacks", string_of_int fallbacks);
             ] );
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E17.json and BENCH_summary.json\n\
     shape: the index pays off exactly where traversal dominated — the\n\
     rare-label speedup grows with document size and scarcity while the\n\
     candidate-bound query is flat; per-append maintenance stays roughly\n\
     constant as rebuild cost grows with the document; statistics shrink\n\
     the planner's output-size error by an order of magnitude on the\n\
     label-bound query\n"

(* --- E18: reliable delivery overhead under injected faults ------- *)

(* A chatty two-site join under a seeded lossy network (DESIGN.md §12):
   the Reliable transport must keep producing the fault-free answer at
   every drop rate, and this experiment prices that guarantee — extra
   bytes (retransmissions) and extra virtual time (retry backoff)
   relative to the drop-free run.  A Raw ablation column counts how
   often plain datagrams lose the answer under the same fault plans. *)

let e18 ?(smoke = false) () =
  section
    (if smoke then "E18  reliable delivery overhead vs drop rate (smoke)"
     else "E18  reliable delivery overhead vs drop rate");
  Printf.printf
    "workload: repeated two-site joins at p1 over catalogs stored at p2\n\
     and p3; per-link drop probability swept, faults quiet after 30s\n\
     virtual (eventual connectivity), several fault seeds per rate\n\n";
  let p1 = Net.Peer_id.of_string "p1" in
  let p2 = Net.Peer_id.of_string "p2" in
  let p3 = Net.Peer_id.of_string "p3" in
  let items = if smoke then 20 else 40 in
  let build transport =
    (* rto sized above the ~90ms ack round-trip of a catalog transfer,
       so the drop-free baseline has zero spurious retransmissions. *)
    let sys =
      System.create ~transport ~rto_ms:150.0
        (Net.Topology.full_mesh
           ~link:(Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
           [ p1; p2; p3 ])
    in
    List.iteri
      (fun i p ->
        let rng = Workload.Rng.create ~seed:(180 + i) in
        System.add_document sys p ~name:"cat"
          (Workload.Xml_gen.catalog ~gen:(System.gen_of sys p) ~rng ~items
             ~selectivity:0.2 ()))
      [ p2; p3 ];
    sys
  in
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item where attr($x, "category") = "wanted" and attr($y, "category") = "wanted" return <pair>{attr($x, "id")}{attr($y, "id")}</pair>|}
  in
  let plan =
    Expr.query_at join ~at:p1
      ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ]
  in
  (* Several rounds of the join over one faulty system: more messages
     through the fault plan per trial, cumulative stats at the end. *)
  let rounds = if smoke then 2 else 4 in
  let run transport fault =
    let sys = build transport in
    Option.iter (System.inject_faults sys) fault;
    let outs =
      List.init rounds (fun i ->
          Runtime.Exec.run_to_quiescence ~reset_stats:(i = 0) sys ~ctx:p1 plan)
    in
    let elapsed =
      List.fold_left (fun a (o : Runtime.Exec.outcome) -> a +. o.elapsed_ms) 0.0 outs
    in
    (outs, elapsed, System.fingerprint sys, System.reliability_counters sys)
  in
  let ref_outs, base_ms, ref_fp, _ = run System.Reliable None in
  let ref_results = (List.hd ref_outs).Runtime.Exec.results in
  let agrees outs fp =
    List.for_all
      (fun (o : Runtime.Exec.outcome) ->
        o.finished && Xml.Canonical.equal_forest ref_results o.results)
      outs
    && String.equal ref_fp fp
  in
  let cumulative outs = (List.nth outs (rounds - 1) : Runtime.Exec.outcome).stats in
  let base_bytes = (cumulative ref_outs).bytes in
  let rates = if smoke then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.3 ] in
  let seeds = if smoke then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let fault ~drop ~seed =
    if drop = 0.0 then None
    else
      Some
        (Net.Fault.make
           ~profile:{ Net.Fault.drop; duplicate = 0.0; jitter_ms = 0.0 }
           ~quiet_after_ms:30_000.0 ~seed ())
  in
  let rows =
    List.map
      (fun drop ->
        let n = List.length seeds in
        let bytes = ref 0 and ms = ref 0.0 and rt = ref 0 and drops = ref 0 in
        let dup = ref 0 and correct = ref 0 and raw_lost = ref 0 in
        List.iter
          (fun seed ->
            let outs, elapsed, fp, rc = run System.Reliable (fault ~drop ~seed) in
            let stats = cumulative outs in
            bytes := !bytes + stats.bytes;
            ms := !ms +. elapsed;
            rt := !rt + rc.System.retransmits;
            drops := !drops + stats.drops;
            dup := !dup + rc.System.dup_suppressed;
            if agrees outs fp then incr correct;
            let outs_r, _, fp_r, _ = run System.Raw (fault ~drop ~seed) in
            if not (agrees outs_r fp_r) then incr raw_lost)
          seeds;
        let avg_bytes = float_of_int !bytes /. float_of_int n in
        let avg_ms = !ms /. float_of_int n in
        ( drop, n,
          avg_bytes, avg_bytes /. float_of_int (max base_bytes 1),
          avg_ms, avg_ms /. max base_ms 1e-6,
          float_of_int !rt /. float_of_int n,
          float_of_int !drops /. float_of_int n,
          float_of_int !dup /. float_of_int n,
          !correct, !raw_lost ))
      rates
  in
  table
    ~headers:
      [ "drop"; "bytes"; "byte ovh"; "virt ms"; "time ovh"; "retx"; "drops";
        "dup supp"; "reliable ok"; "raw lost" ]
    (List.map
       (fun (d, n, b, bo, m, mo, rt, dr, du, ok, lost) ->
         [
           Printf.sprintf "%.2f" d; Printf.sprintf "%.0f" b;
           Printf.sprintf "%.2fx" bo; Printf.sprintf "%.1f" m;
           Printf.sprintf "%.2fx" mo; Printf.sprintf "%.1f" rt;
           Printf.sprintf "%.1f" dr; Printf.sprintf "%.1f" du;
           Printf.sprintf "%d/%d" ok n; Printf.sprintf "%d/%d" lost n;
         ])
       rows);
  let all_reliable_correct =
    List.for_all (fun (_, n, _, _, _, _, _, _, _, ok, _) -> ok = n) rows
  in
  let raw_lost_total =
    List.fold_left (fun acc (_, _, _, _, _, _, _, _, _, _, l) -> acc + l) 0 rows
  in
  if not all_reliable_correct then
    Printf.printf "  !! E18 a reliable run diverged from the fault-free answer\n";
  write_json "BENCH_E18.json"
    (json_obj
       [
         ("experiment", json_s "E18"); ("smoke", json_b smoke);
         ("base_bytes", string_of_int base_bytes);
         ("base_virtual_ms", json_f base_ms);
         ("all_reliable_correct", json_b all_reliable_correct);
         ("raw_lost_runs", string_of_int raw_lost_total);
         ( "rows",
           json_arr
             (List.map
                (fun (d, n, b, bo, m, mo, rt, dr, du, ok, lost) ->
                  json_obj
                    [
                      ("drop", json_f d); ("runs", string_of_int n);
                      ("bytes_avg", json_f b); ("byte_overhead", json_f bo);
                      ("virtual_ms_avg", json_f m); ("time_overhead", json_f mo);
                      ("retransmits_avg", json_f rt); ("drops_avg", json_f dr);
                      ("dup_suppressed_avg", json_f du);
                      ("reliable_correct", string_of_int ok);
                      ("raw_lost", string_of_int lost);
                    ])
                rows) );
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E18.json and BENCH_summary.json\n\
     shape: byte and time overheads grow with the drop rate while the\n\
     reliable answer column stays full — the protocol converts loss into\n\
     latency and retransmitted bytes; the raw ablation loses the answer\n\
     at the same rates\n"

(* --- E19: batched transport ablation ----------------------------- *)

(* Coalescing ablation (DESIGN.md §13): the same chatty workloads run
   with the per-message Reliable protocol and with batching on, and
   the delta prices what per-message envelopes and per-message acks
   cost.  Three traffic shapes: a continuous service streaming many
   tiny responses (envelope-dominated), repeated two-site joins
   (request/response traffic, where acks can ride reverse batches),
   and a double catalog fetch (identical in-flight transfers, so
   within-frame sharing — rule (13) at the transport layer — fires).
   Correctness bar: every batched run must reproduce its unbatched
   twin's answer and final Σ fingerprint. *)

let e19 ?(smoke = false) () =
  section
    (if smoke then "E19  batched transport ablation (smoke)"
     else "E19  batched transport ablation");
  Printf.printf
    "workloads: stream (chatty continuous service), join (request/response\n\
     rounds), dup (identical concurrent transfers); each runs with the\n\
     per-message Reliable protocol (flush 0/ack 0) and with batching on\n\n";
  let link = Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0 in
  (* stream: a continuous service at p2 pushing [stream_k] one-element
     responses, spaced 1ms apart, into a collector document at p1 — the
     envelope-per-message worst case the flush window exists for. *)
  let stream_k = if smoke then 15 else 40 in
  let run_stream ~flush_ms ~ack_delay_ms =
    let sys =
      System.create ~transport:System.Reliable ~response_delay_ms:1.0 ~flush_ms
        ~ack_delay_ms
        (Net.Topology.full_mesh ~link [ p1; p2 ])
    in
    System.add_service sys p2
      (Doc.Service.extern ~name:"streamer"
         ~signature:(Schema.Signature.untyped ~arity:0)
         (fun _ ->
           let g = Xml.Node_id.Gen.create ~namespace:"e19-stream" in
           List.init stream_k (fun i ->
               Xml.Tree.element_of_string ~gen:g "s"
                 [ Xml.Tree.text (string_of_int i) ])));
    let inbox =
      Xml.Tree.element_of_string
        ~gen:(Xml.Node_id.Gen.create ~namespace:"e19-inbox")
        "inbox" []
    in
    let inbox_id = Option.get (Xml.Tree.id inbox) in
    System.add_document sys p1 ~name:"collector" inbox;
    let plan =
      Expr.sc
        (Doc.Sc.make
           ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:p1 ]
           ~provider:(Names.At p2) ~service:"streamer" [])
        ~at:p1
    in
    let out = Runtime.Exec.run_to_quiescence sys ~ctx:p1 plan in
    (* The stream's answer lives in the collector document; compare the
       final Σ rather than the (empty) plan results. *)
    ( out.Runtime.Exec.results, out.Runtime.Exec.finished,
      out.Runtime.Exec.stats, System.fingerprint sys,
      System.reliability_counters sys )
  in
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item where attr($x, "category") = "wanted" and attr($y, "category") = "wanted" return <pair>{attr($x, "id")}{attr($y, "id")}</pair>|}
  in
  let items = if smoke then 15 else 30 in
  let catalog_at sys ~seed p =
    let rng = Workload.Rng.create ~seed in
    System.add_document sys p ~name:"cat"
      (Workload.Xml_gen.catalog ~gen:(System.gen_of sys p) ~rng ~items
         ~selectivity:0.2 ())
  in
  (* join: repeated two-site joins at p1 over catalogs at p2/p3 — the
     request/response shape where delayed acks piggyback. *)
  let join_rounds = if smoke then 2 else 3 in
  let run_join ~flush_ms ~ack_delay_ms =
    let sys =
      System.create ~transport:System.Reliable ~rto_ms:150.0 ~flush_ms
        ~ack_delay_ms
        (Net.Topology.full_mesh ~link [ p1; p2; p3 ])
    in
    List.iteri (fun i p -> catalog_at sys ~seed:(190 + i) p) [ p2; p3 ];
    let plan =
      Expr.query_at join ~at:p1
        ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ]
    in
    let outs =
      List.init join_rounds (fun i ->
          Runtime.Exec.run_to_quiescence ~reset_stats:(i = 0) sys ~ctx:p1 plan)
    in
    let last = List.nth outs (join_rounds - 1) in
    ( (List.hd outs).Runtime.Exec.results,
      List.for_all (fun (o : Runtime.Exec.outcome) -> o.finished) outs,
      last.Runtime.Exec.stats, System.fingerprint sys,
      System.reliability_counters sys )
  in
  (* dup: both join inputs fetch the same catalog from p2, so two
     identical transfers are in flight in the same flush window. *)
  let run_dup ~flush_ms ~ack_delay_ms =
    let sys =
      System.create ~transport:System.Reliable ~rto_ms:150.0 ~flush_ms
        ~ack_delay_ms
        (Net.Topology.full_mesh ~link [ p1; p2 ])
    in
    catalog_at sys ~seed:191 p2;
    let fetch = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
    let plan = Expr.query_at join ~at:p1 ~args:[ fetch; fetch ] in
    let out = Runtime.Exec.run_to_quiescence sys ~ctx:p1 plan in
    ( out.Runtime.Exec.results, out.Runtime.Exec.finished,
      out.Runtime.Exec.stats, System.fingerprint sys,
      System.reliability_counters sys )
  in
  let configs = [ (0.5, 2.0); (2.0, 8.0); (5.0, 20.0) ] in
  let headline_flush, headline_ack = (2.0, 8.0) in
  let per_workload =
    List.map
      (fun (name, run) ->
        let res0, fin0, st0, fp0, rc0 = run ~flush_ms:0.0 ~ack_delay_ms:0.0 in
        if not fin0 then Printf.printf "  !! E19 %s baseline did not finish\n" name;
        let runs =
          List.map
            (fun (flush_ms, ack_delay_ms) ->
              let res, fin, st, fp, rc = run ~flush_ms ~ack_delay_ms in
              let correct =
                fin && fin0
                && Xml.Canonical.equal_forest res0 res
                && String.equal fp0 fp
              in
              (flush_ms, ack_delay_ms, st, rc, correct))
            configs
        in
        (name, st0, rc0, runs))
      [ ("stream", run_stream); ("join", run_join); ("dup", run_dup) ]
  in
  let reduction base v =
    1.0 -. (float_of_int v /. float_of_int (max 1 base))
  in
  let pct x = Printf.sprintf "%.0f%%" (x *. 100.0) in
  table
    ~headers:
      [ "workload"; "flush/ack ms"; "frames"; "logical"; "bytes"; "acks";
        "pb+del"; "dedup B"; "msg red"; "byte red"; "ok" ]
    (List.concat_map
       (fun (name, (st0 : Net.Stats.snapshot), rc0, runs) ->
         let base_row =
           [
             name; "off"; string_of_int st0.messages;
             string_of_int st0.payload_messages; string_of_int st0.bytes;
             string_of_int rc0.System.acks_sent; "-"; "-"; "-"; "-"; "yes";
           ]
         in
         base_row
         :: List.map
              (fun (f, a, (st : Net.Stats.snapshot), rc, correct) ->
                [
                  name; Printf.sprintf "%g/%g" f a; string_of_int st.messages;
                  string_of_int st.payload_messages; string_of_int st.bytes;
                  string_of_int rc.System.acks_sent;
                  string_of_int
                    (rc.System.piggybacked_acks + rc.System.delayed_acks);
                  string_of_int rc.System.dedup_shared_bytes;
                  pct (reduction st0.messages st.messages);
                  pct (reduction st0.bytes st.bytes);
                  (if correct then "yes" else "NO");
                ])
              runs)
       per_workload);
  let all_correct =
    List.for_all
      (fun (_, _, _, runs) ->
        List.for_all (fun (_, _, _, _, ok) -> ok) runs)
      per_workload
  in
  if not all_correct then
    Printf.printf "  !! E19 a batched run diverged from its unbatched twin\n";
  (* Headline: aggregate frame/byte reduction across the three
     workloads at the default-recommended knobs. *)
  let sum f =
    List.fold_left
      (fun (base, on_) (_, (st0 : Net.Stats.snapshot), _, runs) ->
        let _, _, (st : Net.Stats.snapshot), _, _ =
          List.find (fun (fl, a, _, _, _) -> fl = headline_flush && a = headline_ack) runs
        in
        (base + f st0, on_ + f st))
      (0, 0) per_workload
  in
  let base_msgs, on_msgs = sum (fun st -> st.Net.Stats.messages) in
  let base_bytes, on_bytes = sum (fun st -> st.Net.Stats.bytes) in
  let msg_red = reduction base_msgs on_msgs in
  let byte_red = reduction base_bytes on_bytes in
  Printf.printf
    "\nheadline (flush %g / ack delay %g): %d -> %d frames (%s), %d -> %d \
     bytes (%s)\n"
    headline_flush headline_ack base_msgs on_msgs (pct msg_red) base_bytes
    on_bytes (pct byte_red);
  if msg_red < 0.30 then
    Printf.printf "  !! E19 headline message reduction below the 30%% bar\n";
  write_json "BENCH_E19.json"
    (json_obj
       [
         ("experiment", json_s "E19"); ("smoke", json_b smoke);
         ("headline_flush_ms", json_f headline_flush);
         ("headline_ack_delay_ms", json_f headline_ack);
         ("headline_message_reduction", json_f msg_red);
         ("headline_byte_reduction", json_f byte_red);
         ("meets_30pct_message_reduction", json_b (msg_red >= 0.30));
         ("all_correct", json_b all_correct);
         ( "rows",
           json_arr
             (List.concat_map
                (fun (name, (st0 : Net.Stats.snapshot), rc0, runs) ->
                  let row ~flush ~ack (st : Net.Stats.snapshot)
                      (rc : System.reliability_counters) ~msg_red ~byte_red
                      ~correct =
                    json_obj
                      [
                        ("workload", json_s name); ("flush_ms", json_f flush);
                        ("ack_delay_ms", json_f ack);
                        ("messages", string_of_int st.messages);
                        ("payload_messages", string_of_int st.payload_messages);
                        ("bytes", string_of_int st.bytes);
                        ("acks_sent", string_of_int rc.System.acks_sent);
                        ("batches_sent", string_of_int rc.System.batches_sent);
                        ("batched_messages",
                         string_of_int rc.System.batched_messages);
                        ("piggybacked_acks",
                         string_of_int rc.System.piggybacked_acks);
                        ("delayed_acks", string_of_int rc.System.delayed_acks);
                        ("dedup_shared_bytes",
                         string_of_int rc.System.dedup_shared_bytes);
                        ("message_reduction", json_f msg_red);
                        ("byte_reduction", json_f byte_red);
                        ("correct", json_b correct);
                      ]
                  in
                  row ~flush:0.0 ~ack:0.0 st0 rc0 ~msg_red:0.0 ~byte_red:0.0
                    ~correct:true
                  :: List.map
                       (fun (f, a, st, rc, correct) ->
                         row ~flush:f ~ack:a st rc
                           ~msg_red:(reduction st0.messages st.Net.Stats.messages)
                           ~byte_red:(reduction st0.bytes st.Net.Stats.bytes)
                           ~correct)
                       runs)
                per_workload) );
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E19.json and BENCH_summary.json\n\
     shape: the chatty stream collapses into a handful of frames — the\n\
     flush window removes envelopes and the ack delay removes standalone\n\
     acks (piggybacked on reverse batches where traffic flows both ways);\n\
     the dup workload additionally ships its second identical transfer\n\
     as a back-reference\n"

(* --- E20: web-scale flash crowd ------------------------------- *)

(* Pre-refactor reference points, measured with this exact scenario and
   bench code on the harness as it stood before the dense-id /
   connection-record / counter-handle / array-heap refactor (string-keyed
   Peer_id, tuple-keyed System tables, pairing-heap Pqueue, per-event
   metric hash lookups).  (peers, messages, events, wall_s,
   events_per_sec, words_per_event). *)
let e20_pre_refactor_baseline : (int * int * int * float * float * float) list
    =
  [
    (10, 9603, 14403, 0.022, 6.52e5, 109.2);
    (100, 100108, 150158, 0.382, 3.93e5, 165.0);
    (1000, 998424, 1497624, 6.773, 2.21e5, 226.2);
  ]

let e20 ?(smoke = false) () =
  section
    (if smoke then "E20  web-scale flash crowd (smoke)"
     else "E20  web-scale flash crowd");
  Printf.printf
    "scenario: 1 publisher, N mirrors behind a generic fetch class, M\n\
     subscribers arriving on a flash-crowd ramp, each running a closed\n\
     request loop (Invoke + Stream response = 2 remote messages per\n\
     request); measures events/sec, wall-clock and allocation per event\n\
     across peer-count tiers\n\n";
  (* (mirrors, subscribers, requests per subscriber): tiers of 10, 100
     and 1000 peers (publisher included), sized so the top tier delivers
     ~10^6 messages. *)
  let tiers =
    if smoke then [ (3, 6, 20); (8, 41, 20) ]
    else [ (3, 6, 800); (8, 91, 550); (24, 975, 512) ]
  in
  (* Harness GC policy: with ~10^3 concurrent requests the in-flight
     state (continuations, messages on the wire, armed timers) is
     comparable to the default 256k-word nursery, so nearly every
     in-flight object survives a minor collection and is promoted —
     the major GC then dominates the run.  A simulation-scale nursery
     keeps short-lived state out of the major heap.  Restored after
     the experiment so co-resident benches measure under defaults. *)
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  let run_tier (mirrors, subscribers, reqs) =
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors ~subscribers
        ~requests_per_subscriber:reqs ~seed:11 ()
    in
    let sys = fc.Workload.Scenarios.fc_system in
    let budget =
      (4 * fc.Workload.Scenarios.fc_requests)
      + (20 * (1 + mirrors + subscribers))
      + 10_000
    in
    Gc.compact ();
    (* [Gc.minor_words] is the precise allocation counter; the
       [quick_stat] fields are only refreshed at collection points,
       which a simulation-sized nursery may never reach. *)
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    let outcome, events = System.run ~max_events:budget sys in
    let wall = Sys.time () -. t0 in
    let words = Gc.minor_words () -. w0 in
    let st = System.stats sys in
    let peers = 1 + mirrors + subscribers in
    let eps = float_of_int events /. Float.max wall 1e-9 in
    let wpe = words /. Float.max (float_of_int events) 1.0 in
    let ok =
      outcome = `Quiescent
      && !(fc.Workload.Scenarios.fc_completed)
         = fc.Workload.Scenarios.fc_requests
      && !(fc.Workload.Scenarios.fc_unserved) = 0
    in
    ( peers, fc.Workload.Scenarios.fc_requests, st.Net.Stats.messages,
      st.Net.Stats.bytes, events, System.now_ms sys, wall, eps, wpe, ok )
  in
  let results = List.map run_tier tiers in
  table
    ~headers:
      [
        "peers"; "requests"; "messages"; "events"; "virtual ms"; "wall s";
        "events/s"; "words/event"; "ok";
      ]
    (List.map
       (fun (peers, reqs, msgs, _bytes, events, vms, wall, eps, wpe, ok) ->
         [
           string_of_int peers; string_of_int reqs; string_of_int msgs;
           string_of_int events;
           Printf.sprintf "%.0f" vms;
           Printf.sprintf "%.3f" wall;
           Printf.sprintf "%.3g" eps;
           Printf.sprintf "%.1f" wpe;
           (if ok then "yes" else "NO");
         ])
       results);
  let baseline_for peers =
    List.find_opt
      (fun (p, _, _, _, _, _) -> p = peers)
      e20_pre_refactor_baseline
  in
  let rows_json =
    json_arr
      (List.map
         (fun (peers, reqs, msgs, bytes, events, vms, wall, eps, wpe, ok) ->
           let speedup =
             match baseline_for peers with
             | Some (_, _, _, _, base_eps, _) when base_eps > 0.0 ->
                 eps /. base_eps
             | _ -> 0.0
           in
           json_obj
             [
               ("peers", string_of_int peers);
               ("requests", string_of_int reqs);
               ("messages", string_of_int msgs);
               ("bytes", string_of_int bytes);
               ("events", string_of_int events);
               ("completion_virtual_ms", json_f vms);
               ("wall_s", json_f wall);
               ("events_per_sec", json_f eps);
               ("words_per_event", json_f wpe);
               ("speedup_vs_pre_refactor", json_f speedup);
               ("quiescent_and_complete", json_b ok);
             ])
         results)
  in
  let baseline_json =
    json_arr
      (List.map
         (fun (peers, msgs, events, wall, eps, wpe) ->
           json_obj
             [
               ("peers", string_of_int peers);
               ("messages", string_of_int msgs);
               ("events", string_of_int events);
               ("wall_s", json_f wall);
               ("events_per_sec", json_f eps);
               ("words_per_event", json_f wpe);
             ])
         e20_pre_refactor_baseline)
  in
  write_json "BENCH_E20.json"
    (json_obj
       [
         ("experiment", json_s "E20");
         ("smoke", json_b smoke);
         ("gc_minor_heap_words", string_of_int (8 * 1024 * 1024));
         ( "baseline_source",
           json_s
             "pre-refactor harness (string-keyed Peer_id, tuple-keyed \
              System tables, pairing-heap Pqueue, per-event metric hash \
              lookups), same scenario and bench code" );
         ("pre_refactor_baseline", baseline_json);
         ("rows", rows_json);
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E20.json and BENCH_summary.json\n\
     shape: events/sec should stay flat as peer count grows — per-event\n\
     work is array-indexed, not string-hashed — and the top tier should\n\
     complete its ~10^6 messages in single-digit seconds\n"

(* --- E21: observability overhead ablation ------------------------ *)

(* Prices the telemetry stack of DESIGN.md §15 on the flash-crowd
   scenario of E20: the same tiers run with everything off, with
   cumulative metrics, with metrics + head-sampled tracing (1 in 64
   correlations), and with the full stack (+ windowed timeseries).
   Two invariants gate the design:
   - the disabled path must allocate nothing — the two "off" arms
     bracketing the instrumented ones must agree on words/event to the
     word (the E16 invariant, extended to every record site);
   - the metrics arm must stay within ~10% of the off arm's wall
     clock, and the sampled-trace arms must complete the largest tier
     (head sampling is what makes tracing viable at 10^3 peers). *)
let e21 ?(smoke = false) () =
  section
    (if smoke then "E21  observability overhead ablation (smoke)"
     else "E21  observability overhead ablation");
  Printf.printf
    "scenario: the E20 flash crowd per observability arm — off /\n\
     metrics / metrics+sampled traces (1/64) / full stack / off again;\n\
     words/event of the two off arms must agree exactly, the metrics\n\
     arm must cost <= ~10%% extra wall clock, and the sampled arms must\n\
     complete every tier\n\n";
  let tiers =
    if smoke then [ (3, 6, 20); (8, 41, 20) ]
    else [ (3, 6, 800); (8, 91, 550); (24, 975, 512) ]
  in
  (* (label, metrics, timeseries, keep-one-in; 0 = tracing off) *)
  let arms =
    [
      ("off", false, false, 0);
      ("metrics", true, false, 0);
      ("metrics+traces", true, false, 64);
      ("full", true, true, 64);
      ("off (after)", false, false, 0);
    ]
  in
  let disable_all () =
    Obs.Metrics.set_enabled Obs.Metrics.default false;
    Obs.Metrics.reset Obs.Metrics.default;
    Obs.Timeseries.set_enabled Obs.Timeseries.default false;
    Obs.Timeseries.reset Obs.Timeseries.default;
    Obs.Trace.set_enabled false;
    Obs.Trace.clear ();
    Obs.Trace.set_sampling ~seed:0 ~keep_one_in:1 ()
  in
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Fun.protect ~finally:(fun () ->
      disable_all ();
      Gc.set gc0)
  @@ fun () ->
  let run_arm (mirrors, subscribers, reqs) (label, metrics, ts, keep) =
    Obs.Metrics.set_enabled Obs.Metrics.default metrics;
    Obs.Metrics.reset Obs.Metrics.default;
    Obs.Timeseries.set_enabled Obs.Timeseries.default ts;
    Obs.Timeseries.reset Obs.Timeseries.default;
    if keep > 0 then begin
      Obs.Trace.set_enabled true;
      Obs.Trace.clear ();
      Obs.Trace.set_sampling ~seed:11 ~keep_one_in:keep ()
    end
    else begin
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ()
    end;
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors ~subscribers
        ~requests_per_subscriber:reqs ~seed:11 ()
    in
    let sys = fc.Workload.Scenarios.fc_system in
    let peers = 1 + mirrors + subscribers in
    let budget =
      (8 * fc.Workload.Scenarios.fc_requests) + (40 * peers) + 10_000
    in
    Gc.compact ();
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    let outcome, events = System.run ~max_events:budget sys in
    let wall = Sys.time () -. t0 in
    let words = Gc.minor_words () -. w0 in
    let ok =
      outcome = `Quiescent
      && !(fc.Workload.Scenarios.fc_completed)
         = fc.Workload.Scenarios.fc_requests
      && !(fc.Workload.Scenarios.fc_unserved) = 0
    in
    let spans = if keep > 0 then Obs.Trace.count () else 0 in
    let series = List.length (Obs.Timeseries.keys Obs.Timeseries.default) in
    disable_all ();
    ( label, peers, events, wall,
      words /. Float.max 1.0 (float_of_int events), spans, series, ok )
  in
  let checks = ref [] in
  let tier_results =
    List.map
      (fun tier ->
        let rows = List.map (run_arm tier) arms in
        let wall_of l =
          List.fold_left
            (fun acc (label, _, _, wall, _, _, _, _) ->
              if label = l then wall else acc)
            0.0 rows
        in
        let wpe_of l =
          List.fold_left
            (fun acc (label, _, _, _, wpe, _, _, _) ->
              if label = l then wpe else acc)
            0.0 rows
        in
        let peers =
          match rows with (_, p, _, _, _, _, _, _) :: _ -> p | [] -> 0
        in
        let off_wpe_agree = wpe_of "off" = wpe_of "off (after)" in
        let metrics_ratio =
          wall_of "metrics" /. Float.max 1e-9 (wall_of "off")
        in
        let all_complete =
          List.for_all (fun (_, _, _, _, _, _, _, ok) -> ok) rows
        in
        checks :=
          (peers, off_wpe_agree, metrics_ratio, all_complete) :: !checks;
        (peers, rows))
      tiers
  in
  let checks = List.rev !checks in
  List.iter
    (fun (peers, rows) ->
      Printf.printf "-- %d peers --\n" peers;
      table
        ~headers:
          [ "arm"; "events"; "wall s"; "words/event"; "spans"; "series"; "ok" ]
        (List.map
           (fun (label, _, events, wall, wpe, spans, series, ok) ->
             [
               label; string_of_int events;
               Printf.sprintf "%.3f" wall;
               Printf.sprintf "%.1f" wpe;
               string_of_int spans; string_of_int series;
               (if ok then "yes" else "NO");
             ])
           rows))
    tier_results;
  List.iter
    (fun (peers, agree, ratio, complete) ->
      if not agree then
        Printf.printf
          "  !! E21 %d peers: disabled-path words/event changed across arms\n"
          peers;
      if ratio > 1.10 then
        Printf.printf
          "  ~~ E21 %d peers: metrics arm wall ratio %.2fx (> 1.10x target; \
           wall clock is noisy at small tiers)\n"
          peers ratio;
      if not complete then
        Printf.printf "  !! E21 %d peers: an arm failed to complete\n" peers)
    checks;
  let rows_json =
    json_arr
      (List.concat_map
         (fun (peers, rows) ->
           List.map
             (fun (label, _, events, wall, wpe, spans, series, ok) ->
               json_obj
                 [
                   ("peers", string_of_int peers);
                   ("arm", json_s label);
                   ("events", string_of_int events);
                   ("wall_s", json_f wall);
                   ("words_per_event", json_f wpe);
                   ("sampled_spans", string_of_int spans);
                   ("timeseries_keys", string_of_int series);
                   ("quiescent_and_complete", json_b ok);
                 ])
             rows)
         tier_results)
  in
  let checks_json =
    json_arr
      (List.map
         (fun (peers, agree, ratio, complete) ->
           json_obj
             [
               ("peers", string_of_int peers);
               ("disabled_words_per_event_stable", json_b agree);
               ("metrics_wall_ratio", json_f ratio);
               ("all_arms_complete", json_b complete);
             ])
         checks)
  in
  write_json "BENCH_E21.json"
    (json_obj
       [
         ("experiment", json_s "E21");
         ("smoke", json_b smoke);
         ("sample_keep_one_in", string_of_int 64);
         ("rows", rows_json);
         ("checks", checks_json);
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E21.json and BENCH_summary.json\n\
     shape: words/event is identical in both off arms (the disabled\n\
     path allocates nothing), the metrics arm adds low-single-digit\n\
     percent wall, and the sampled-trace arms complete every tier with\n\
     a span count ~1/64th of a full trace\n"

(* --- E22: binary wire codec ablation ------------------------------ *)

(* Prices the compact binary wire (DESIGN.md §16) against the XML
   sizing model on the E20 flash crowd.  The headline arms run the
   batched Reliable transport (flush 2 ms, ack delay 8 ms): there every
   physical frame is sized on send and re-sized on every retransmission
   re-batch, so the wire's accounting cost is on the per-event path —
   the XML model walks per-forest memo tables per charge, the binary
   wire reads one cached frame-length integer.  Raw arms ride along as
   the floor where both wires charge once per message.  Three
   invariants gate the design:
   - the wire never changes answers: per tier and transport, the XML
     and binary arms reach the same Σ fingerprint (binary-strict, which
     round-trips every transmission through encode/decode, included);
   - binary frames are strictly smaller than the XML sizing model;
   - a relay re-batches binary frames without decoding any payload
     (Message.payload_decodes stays flat across slice + re-frame). *)
let e22 ?(smoke = false) () =
  section
    (if smoke then "E22  binary wire codec ablation (smoke)"
     else "E22  binary wire codec ablation");
  Printf.printf
    "scenario: the E20 flash crowd per wire arm — raw and batched\n\
     reliable (flush 2 ms, ack 8 ms) under the XML sizing model vs the\n\
     binary codec; per tier and transport the two wires must agree on\n\
     the final Σ while the binary wire ships smaller frames, and on the\n\
     batched arms it should cost less wall and allocation per event\n\n";
  let tiers =
    if smoke then [ (3, 6, 20); (8, 41, 20) ]
    else [ (3, 6, 800); (8, 91, 550); (24, 975, 512) ]
  in
  (* (label, transport, wire, flush_ms, ack_delay_ms) *)
  let arms =
    [
      ("raw/xml", System.Raw, System.Xml, 0.0, 0.0);
      ("raw/binary", System.Raw, System.Binary, 0.0, 0.0);
      ("batched/xml", System.Reliable, System.Xml, 2.0, 8.0);
      ("batched/binary", System.Reliable, System.Binary, 2.0, 8.0);
    ]
  in
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  let run_arm (mirrors, subscribers, reqs) (label, transport, wire, flush, ack)
      =
    let fc =
      Workload.Scenarios.flash_crowd ~mirrors ~subscribers
        ~requests_per_subscriber:reqs ~transport ~wire ~flush_ms:flush
        ~ack_delay_ms:ack ~seed:11 ()
    in
    let sys = fc.Workload.Scenarios.fc_system in
    let peers = 1 + mirrors + subscribers in
    (* The batched arms spend ~12 events per request (flush timers,
       acks and retransmission bookkeeping on top of the request
       round trip), where E20/E21's raw arms spend ~3 — hence the
       larger multiplier. *)
    let budget =
      (16 * fc.Workload.Scenarios.fc_requests) + (40 * peers) + 10_000
    in
    Gc.compact ();
    let d0 = Runtime.Message.payload_decodes () in
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    let outcome, events = System.run ~max_events:budget sys in
    let wall = Sys.time () -. t0 in
    let words = Gc.minor_words () -. w0 in
    let decodes = Runtime.Message.payload_decodes () - d0 in
    let st = System.stats sys in
    let ok =
      outcome = `Quiescent
      && !(fc.Workload.Scenarios.fc_completed)
         = fc.Workload.Scenarios.fc_requests
      && !(fc.Workload.Scenarios.fc_unserved) = 0
    in
    ( label, peers, events, st.Net.Stats.messages, st.Net.Stats.bytes, wall,
      words /. Float.max 1.0 (float_of_int events), decodes,
      System.fingerprint sys, ok )
  in
  let checks = ref [] in
  let tier_results =
    List.map
      (fun tier ->
        let rows = List.map (run_arm tier) arms in
        let field f l =
          List.fold_left
            (fun acc ((label, _, _, _, _, _, _, _, _, _) as row) ->
              if label = l then f row else acc)
            (f (List.hd rows))
            rows
        in
        let fp_of l = field (fun (_, _, _, _, _, _, _, _, fp, _) -> fp) l in
        let bytes_of l = field (fun (_, _, _, _, b, _, _, _, _, _) -> b) l in
        let wall_of l = field (fun (_, _, _, _, _, w, _, _, _, _) -> w) l in
        let wpe_of l = field (fun (_, _, _, _, _, _, w, _, _, _) -> w) l in
        let peers =
          match rows with (_, p, _, _, _, _, _, _, _, _) :: _ -> p | [] -> 0
        in
        let fps_agree =
          String.equal (fp_of "raw/xml") (fp_of "raw/binary")
          && String.equal (fp_of "batched/xml") (fp_of "batched/binary")
        in
        let binary_smaller =
          bytes_of "raw/binary" < bytes_of "raw/xml"
          && bytes_of "batched/binary" < bytes_of "batched/xml"
        in
        let wall_ratio =
          wall_of "batched/binary" /. Float.max 1e-9 (wall_of "batched/xml")
        in
        let wpe_ratio =
          wpe_of "batched/binary" /. Float.max 1e-9 (wpe_of "batched/xml")
        in
        let all_complete =
          List.for_all (fun (_, _, _, _, _, _, _, _, _, ok) -> ok) rows
        in
        checks :=
          (peers, fps_agree, binary_smaller, wall_ratio, wpe_ratio,
           all_complete)
          :: !checks;
        (peers, rows))
      tiers
  in
  let checks = List.rev !checks in
  List.iter
    (fun (peers, rows) ->
      Printf.printf "-- %d peers --\n" peers;
      table
        ~headers:
          [
            "arm"; "events"; "messages"; "bytes"; "wall s"; "words/event";
            "decodes"; "ok";
          ]
        (List.map
           (fun (label, _, events, msgs, bytes, wall, wpe, decodes, _, ok) ->
             [
               label; string_of_int events; string_of_int msgs;
               string_of_int bytes;
               Printf.sprintf "%.3f" wall;
               Printf.sprintf "%.1f" wpe;
               string_of_int decodes;
               (if ok then "yes" else "NO");
             ])
           rows))
    tier_results;
  List.iter
    (fun (peers, fps, smaller, wall_r, wpe_r, complete) ->
      if not fps then
        Printf.printf "  !! E22 %d peers: wires disagree on the final Σ\n"
          peers;
      if not smaller then
        Printf.printf
          "  !! E22 %d peers: binary frames not smaller than the XML model\n"
          peers;
      if wall_r > 1.0 then
        Printf.printf
          "  ~~ E22 %d peers: batched binary wall ratio %.2fx (> 1.0x \
           target; wall clock is noisy at small tiers)\n"
          peers wall_r;
      if wpe_r > 1.0 then
        Printf.printf
          "  ~~ E22 %d peers: batched binary words/event ratio %.2fx\n" peers
          wpe_r;
      if not complete then
        Printf.printf "  !! E22 %d peers: an arm failed to complete\n" peers)
    checks;
  (* Strict-wire arm (smallest tier): every transmission crosses
     encode/decode, and lazy decode keeps payload parses bounded by the
     logical messages actually delivered. *)
  let strict_row =
    run_arm (List.hd tiers)
      ("batched/binary-strict", System.Reliable, System.Binary_strict, 2.0, 8.0)
  in
  let ( _, _, strict_events, strict_msgs, _, _, _, strict_decodes, strict_fp,
        strict_ok ) =
    strict_row
  in
  let strict_fp_agrees =
    match tier_results with
    | (_, rows) :: _ ->
        List.exists
          (fun (l, _, _, _, _, _, _, _, fp, _) ->
            l = "batched/xml" && String.equal fp strict_fp)
          rows
    | [] -> false
  in
  Printf.printf
    "\nstrict wire (smallest tier): %d events, %d payload decodes, Σ %s\n"
    strict_events strict_decodes
    (if strict_fp_agrees then "agrees" else "DIFFERS");
  (* Relay micro-check: slice and re-frame an encoded batch; the
     decode counter must not move. *)
  let relay_decodes, relay_ns =
    let g = Xml.Node_id.Gen.create ~namespace:"e22-relay" in
    let msgs =
      List.init 16 (fun i ->
          Runtime.Message.make ~seq:(i + 1)
            (Runtime.Message.Stream
               {
                 key = i;
                 forest =
                   Runtime.Message.now
                     [
                       Xml.Parser.parse_exn ~gen:g
                         (Printf.sprintf
                            "<pkg name=\"pkg%03d\"><blob>%s</blob></pkg>" i
                            (String.make 64 'x'));
                     ];
                 final = true;
               }))
    in
    let frame =
      Runtime.Codec.encode
        (Runtime.Message.make (Runtime.Message.batch ~ack:3 msgs))
    in
    let iters = if smoke then 1_000 else 20_000 in
    let d0 = Runtime.Message.payload_decodes () in
    let t0 = Sys.time () in
    for i = 1 to iters do
      match Runtime.Codec.Relay.parse_batch frame with
      | Ok (_, items) -> ignore (Runtime.Codec.Relay.rebatch ~ack:i items)
      | Error _ -> failwith "E22: relay parse failed"
    done;
    let per_op = (Sys.time () -. t0) /. float_of_int iters *. 1e9 in
    (Runtime.Message.payload_decodes () - d0, per_op)
  in
  Printf.printf
    "relay: slice + re-frame a 16-message batch, %d payload decodes, %.0f \
     ns/frame\n"
    relay_decodes relay_ns;
  let rows_json =
    json_arr
      (List.concat_map
         (fun (peers, rows) ->
           List.map
             (fun (label, _, events, msgs, bytes, wall, wpe, decodes, fp, ok)
                ->
               json_obj
                 [
                   ("peers", string_of_int peers);
                   ("arm", json_s label);
                   ("events", string_of_int events);
                   ("messages", string_of_int msgs);
                   ("bytes", string_of_int bytes);
                   ("wall_s", json_f wall);
                   ("words_per_event", json_f wpe);
                   ("payload_decodes", string_of_int decodes);
                   ("fingerprint", json_s fp);
                   ("quiescent_and_complete", json_b ok);
                 ])
             rows)
         tier_results)
  in
  let checks_json =
    json_arr
      (List.map
         (fun (peers, fps, smaller, wall_r, wpe_r, complete) ->
           json_obj
             [
               ("peers", string_of_int peers);
               ("fingerprints_agree_across_wires", json_b fps);
               ("binary_bytes_smaller", json_b smaller);
               ("batched_binary_wall_ratio", json_f wall_r);
               ("batched_binary_words_ratio", json_f wpe_r);
               ("all_arms_complete", json_b complete);
             ])
         checks)
  in
  write_json "BENCH_E22.json"
    (json_obj
       [
         ("experiment", json_s "E22");
         ("smoke", json_b smoke);
         ("rows", rows_json);
         ("checks", checks_json);
         ( "strict_wire",
           json_obj
             [
               ("events", string_of_int strict_events);
               ("messages", string_of_int strict_msgs);
               ("payload_decodes", string_of_int strict_decodes);
               ("fingerprint_agrees", json_b strict_fp_agrees);
               ("quiescent_and_complete", json_b strict_ok);
             ] );
         ( "relay",
           json_obj
             [
               ("payload_decodes", string_of_int relay_decodes);
               ("ns_per_frame", json_f relay_ns);
             ] );
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E22.json and BENCH_summary.json\n\
     shape: identical Σ per tier across wires, binary bytes well below\n\
     the XML model, batched-binary wall and words/event at or below the\n\
     batched-XML arm, and zero relay payload decodes\n"

(* --- E23: adaptive replica placement ------------------------------ *)

(* Prices the adaptive placement controller (DESIGN.md §17) against
   static placement on the hotspot workload: a handful of documents
   draw 90 % of a closed-loop read population while streaming appends
   keep them live.  Serving a read costs real CPU at the serving peer
   (0.4 cpu-ms/KB), so a static system queues at the hot owners; the
   controller watches windowed Timeseries signals, ships the hot
   documents to idle spares mid-stream and steers reads to the least
   loaded replica.  Two tiers: calm links, and a chaos tier (random
   drops/duplicates/jitter quiet by 400 ms, a 150 ms partition of a
   spare, an owner crash/restart with failover) — the same fault plan
   on both arms.  Gates:
   - every run quiesces with every read served;
   - all four runs agree on the final Σ content fingerprint — the
     controller never changes answers, even under faults;
   - the adaptive arm actually commits migrations and beats static on
     p95/p99 read latency and/or bytes (it is allowed to spend bytes:
     replication is traffic). *)

module Placement = Runtime.Placement
module Sc = Workload.Scenarios

let e23 ?(smoke = false) () =
  section
    (if smoke then "E23  adaptive replica placement (smoke)"
     else "E23  adaptive replica placement");
  Printf.printf
    "scenario: hotspot — 10%% of documents draw 90%% of a closed-loop\n\
     read population under streaming appends; static placement (seeded\n\
     random reader picks, no controller) vs adaptive (load-steered\n\
     picks + the §17 migration controller), on calm links and under a\n\
     chaos plan; Σ content must agree across all four runs while the\n\
     adaptive arm relieves the hot-owner queue\n\n";
  let owners, spares, readers, docs, reads_per_reader =
    if smoke then (4, 2, 16, 12, 10) else (6, 4, 32, 40, 50)
  in
  let appends, append_every_ms, payload_bytes =
    if smoke then (4, 10.0, 1024) else (6, 40.0, 2048)
  in
  (* Serving a read is CPU work at the serving peer; at 3 cpu-ms/KB a
     hot owner saturates under the closed-loop population, which is
     exactly the queue the controller is supposed to drain. *)
  let cpu_ms_per_kb = 3.0 in
  let hot_fraction = 0.1 and hot_share = 0.9 and seed = 11 in
  let chaos_plan (hs : Sc.hotspot) =
    (* Probabilistic faults quiet by 400 ms shape the read tails; the
       owner crash sits after the read streams drain (and past quiet +
       max retransmission backoff, 32·rto = 1280 ms — the discipline
       under which the WAL-modelled transport provably converges, see
       test_fault.ml).  A mid-stream crash would eat in-flight eval
       state — volatile by design — so it gates Σ convergence through
       failover + replica resync, not the latency table. *)
    let island = [ List.hd hs.Sc.hs_spares ] in
    let victim = List.hd hs.Sc.hs_owners in
    Net.Fault.make
      ~profile:{ Net.Fault.drop = 0.12; duplicate = 0.04; jitter_ms = 2.0 }
      ~events:
        [
          Net.Fault.Partition
            {
              island;
              window = Net.Fault.window ~from_ms:100.0 ~until_ms:250.0;
            };
          Net.Fault.Crash
            { peer = victim; at_ms = 8000.0; restart_ms = Some 8250.0 };
        ]
      ~quiet_after_ms:400.0 ~seed:23 ()
  in
  let pct l q =
    match List.sort compare l with
    | [] -> Float.nan
    | sorted ->
        let a = Array.of_list sorted in
        let n = Array.length a in
        let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) i))
  in
  let run_arm ~chaos ~adaptive =
    let reg = Obs.Timeseries.default in
    if adaptive then begin
      Obs.Timeseries.set_window reg 10.0;
      Obs.Timeseries.set_enabled reg true
    end;
    Fun.protect
      ~finally:(fun () ->
        Obs.Timeseries.set_enabled reg false;
        Obs.Timeseries.set_window reg 100.0)
    @@ fun () ->
    let hs =
      Sc.hotspot ~owners ~spares ~readers ~docs ~hot_fraction ~hot_share
        ~reads_per_reader ~appends ~append_every_ms ~payload_bytes
        ~think_ms:2.0 ~arrival_window_ms:100.0 ~steered:adaptive
        ~cpu_ms_per_kb ~seed ()
    in
    let sys = hs.Sc.hs_system in
    let storage = hs.Sc.hs_owners @ hs.Sc.hs_spares in
    if chaos then ignore (Runtime.Failover.enable sys);
    let ctl =
      if adaptive then
        Some
          (Placement.enable
             ~cfg:
               {
                 Placement.default_config with
                 tick_ms = 20.0;
                 windows = 3;
                 hot_rate = 100.0;
                 migrations_per_tick = 2;
                 seed = seed + 99;
                 eligible =
                   Some (fun p -> List.exists (Net.Peer_id.equal p) storage);
               }
             sys)
      else None
    in
    if chaos then System.inject_faults sys (chaos_plan hs);
    let t0 = Sys.time () in
    let outcome, events = System.run sys in
    let wall = Sys.time () -. t0 in
    let st = System.stats sys in
    let lats = !(hs.Sc.hs_latencies) in
    let committed =
      match ctl with
      | Some c -> (Placement.stats c).Placement.s_committed
      | None -> 0
    in
    let ok =
      outcome = `Quiescent
      && !(hs.Sc.hs_completed) = hs.Sc.hs_requests
      && !(hs.Sc.hs_unserved) = 0
    in
    ( events, !(hs.Sc.hs_completed), !(hs.Sc.hs_unserved), pct lats 0.50,
      pct lats 0.95, pct lats 0.99, st.Net.Stats.messages, st.Net.Stats.bytes,
      committed, System.content_fingerprint sys, wall, ok )
  in
  let tiers = [ ("calm", false); ("chaos", true) ] in
  let arms = [ ("static", false); ("adaptive", true) ] in
  let rows =
    List.concat_map
      (fun (tier, chaos) ->
        List.map
          (fun (arm, adaptive) -> (tier, arm, run_arm ~chaos ~adaptive))
          arms)
      tiers
  in
  List.iter
    (fun (tier, _) ->
      Printf.printf "-- %s --\n" tier;
      table
        ~headers:
          [
            "arm"; "served"; "p50 ms"; "p95 ms"; "p99 ms"; "messages";
            "bytes"; "migr"; "ok";
          ]
        (List.filter_map
           (fun (t, arm, (_, served, _, p50, p95, p99, msgs, bytes, migr, _,
                          _, ok)) ->
             if t <> tier then None
             else
               Some
                 [
                   arm; string_of_int served;
                   Printf.sprintf "%.1f" p50;
                   Printf.sprintf "%.1f" p95;
                   Printf.sprintf "%.1f" p99;
                   string_of_int msgs; string_of_int bytes;
                   string_of_int migr;
                   (if ok then "yes" else "NO");
                 ])
           rows))
    tiers;
  let field tier arm f =
    List.fold_left
      (fun acc (t, a, row) -> if t = tier && a = arm then f row else acc)
      Float.nan rows
  in
  let p95_of t a = field t a (fun (_, _, _, _, p, _, _, _, _, _, _, _) -> p) in
  let p99_of t a = field t a (fun (_, _, _, _, _, p, _, _, _, _, _, _) -> p) in
  let bytes_of t a =
    field t a (fun (_, _, _, _, _, _, _, b, _, _, _, _) -> float_of_int b)
  in
  let migr_of t a =
    field t a (fun (_, _, _, _, _, _, _, _, m, _, _, _) -> float_of_int m)
  in
  let fps =
    List.map (fun (_, _, (_, _, _, _, _, _, _, _, _, fp, _, _)) -> fp) rows
  in
  let sigma_agree =
    match fps with
    | fp :: rest -> List.for_all (String.equal fp) rest
    | [] -> false
  in
  let all_ok =
    List.for_all (fun (_, _, (_, _, _, _, _, _, _, _, _, _, _, ok)) -> ok) rows
  in
  let checks =
    List.map
      (fun (tier, _) ->
        let beats =
          p95_of tier "adaptive" < p95_of tier "static"
          || p99_of tier "adaptive" < p99_of tier "static"
          || bytes_of tier "adaptive" < bytes_of tier "static"
        in
        let migrated = migr_of tier "adaptive" > 0.0 in
        (tier, beats, migrated))
      tiers
  in
  Printf.printf "\nΣ content %s across all four runs\n"
    (if sigma_agree then "agrees" else "DIFFERS");
  if not all_ok then Printf.printf "!! E23: an arm failed to complete\n";
  List.iter
    (fun (tier, beats, migrated) ->
      if not migrated then
        Printf.printf "!! E23 %s: the controller never committed a migration\n"
          tier;
      if not beats then
        Printf.printf
          "!! E23 %s: adaptive beat static on neither tail latency nor bytes\n"
          tier
      else
        Printf.printf
          "%s: adaptive p95 %.1f ms vs static %.1f ms (p99 %.1f vs %.1f), \
           %.2fx bytes, %.0f migrations\n"
          tier (p95_of tier "adaptive") (p95_of tier "static")
          (p99_of tier "adaptive") (p99_of tier "static")
          (bytes_of tier "adaptive" /. Float.max 1.0 (bytes_of tier "static"))
          (migr_of tier "adaptive"))
    checks;
  let rows_json =
    json_arr
      (List.map
         (fun (tier, arm, (events, served, unserved, p50, p95, p99, msgs,
                           bytes, migr, fp, wall, ok)) ->
           json_obj
             [
               ("tier", json_s tier);
               ("arm", json_s arm);
               ("events", string_of_int events);
               ("served", string_of_int served);
               ("unserved", string_of_int unserved);
               ("p50_ms", json_f p50);
               ("p95_ms", json_f p95);
               ("p99_ms", json_f p99);
               ("messages", string_of_int msgs);
               ("bytes", string_of_int bytes);
               ("migrations_committed", string_of_int migr);
               ("fingerprint", json_s fp);
               ("wall_s", json_f wall);
               ("quiescent_and_complete", json_b ok);
             ])
         rows)
  in
  let checks_json =
    json_arr
      (List.map
         (fun (tier, beats, migrated) ->
           json_obj
             [
               ("tier", json_s tier);
               ("adaptive_beats_static", json_b beats);
               ("controller_migrated", json_b migrated);
             ])
         checks)
  in
  write_json "BENCH_E23.json"
    (json_obj
       [
         ("experiment", json_s "E23");
         ("smoke", json_b smoke);
         ("rows", rows_json);
         ("checks", checks_json);
         ("sigma_agrees_across_runs", json_b sigma_agree);
         ("all_arms_complete", json_b all_ok);
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E23.json and BENCH_summary.json\n\
     shape: identical Σ across static/adaptive × calm/chaos, the\n\
     controller committing migrations on both tiers and pulling the\n\
     hot-owner read tail below the static arm's\n"

let e24 ?(smoke = false) () =
  section
    (if smoke then "E24  semantic result cache (smoke)"
     else "E24  semantic result cache");
  Printf.printf
    "scenario: overlap — subscribers re-issue fixed slates of\n\
     continuous queries against shared source catalogs, round after\n\
     round, with a rotating slice of the catalogs mutating between\n\
     rounds; cache-off vs cache-on (per-peer semantic cache, DESIGN.md\n\
     §18) on the same shape and seed.  The gate is byte-identical\n\
     per-request result digests and Σ content across the two arms,\n\
     with the cached arm strictly cheaper on bytes AND completion\n\n";
  let sources, subscribers, queries_per_subscriber, rounds, items =
    if smoke then (3, 8, 3, 3, 12) else (4, 24, 4, 4, 24)
  in
  let overlap_pct = 0.6 and mutate_fraction = 0.25 and seed = 24 in
  let pct l q =
    match List.sort compare l with
    | [] -> Float.nan
    | sorted ->
        let a = Array.of_list sorted in
        let n = Array.length a in
        let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) i))
  in
  let run_arm ~cache =
    let ov =
      Sc.overlap ~sources ~subscribers ~queries_per_subscriber ~rounds
        ~overlap_pct ~items ~mutate_fraction ~cache ~seed ()
    in
    let sys = ov.Sc.ov_system in
    let t0 = Sys.time () in
    let outcome, events = System.run sys in
    let wall = Sys.time () -. t0 in
    let st = System.stats sys in
    let qs = System.qcache_stats sys in
    let lats = !(ov.Sc.ov_latencies) in
    let ok = outcome = `Quiescent && !(ov.Sc.ov_completed) = ov.Sc.ov_requests in
    ( events, !(ov.Sc.ov_completed), pct lats 0.50, pct lats 0.95,
      st.Net.Stats.messages, st.Net.Stats.bytes,
      st.Net.Stats.completion_ms, qs,
      List.sort String.compare !(ov.Sc.ov_digests),
      System.content_fingerprint sys, wall, ok )
  in
  let arms = [ ("cache-off", false); ("cache-on", true) ] in
  let rows = List.map (fun (arm, cache) -> (arm, run_arm ~cache)) arms in
  table
    ~headers:
      [
        "arm"; "completed"; "p50 ms"; "p95 ms"; "messages"; "bytes";
        "done ms"; "hits"; "inval"; "ok";
      ]
    (List.map
       (fun (arm, (_, completed, p50, p95, msgs, bytes, done_ms, qs, _, _,
                   _, ok)) ->
         [
           arm; string_of_int completed;
           Printf.sprintf "%.1f" p50;
           Printf.sprintf "%.1f" p95;
           string_of_int msgs; string_of_int bytes;
           Printf.sprintf "%.1f" done_ms;
           string_of_int qs.Query.Qcache.hits;
           string_of_int
             (qs.Query.Qcache.invalidations + qs.Query.Qcache.stale_drops);
           (if ok then "yes" else "NO");
         ])
       rows);
  let get arm f = f (List.assoc arm rows) in
  let digests_of (_, _, _, _, _, _, _, _, d, _, _, _) = d in
  let bytes_of (_, _, _, _, _, b, _, _, _, _, _, _) = b in
  let done_of (_, _, _, _, _, _, d, _, _, _, _, _) = d in
  let fp_of (_, _, _, _, _, _, _, _, _, fp, _, _) = fp in
  let ok_of (_, _, _, _, _, _, _, _, _, _, _, ok) = ok in
  let qs_on = get "cache-on" (fun (_, _, _, _, _, _, _, q, _, _, _, _) -> q) in
  let digests_agree =
    get "cache-off" digests_of = get "cache-on" digests_of
  in
  let sigma_agree =
    String.equal (get "cache-off" fp_of) (get "cache-on" fp_of)
  in
  let all_ok = List.for_all (fun (_, row) -> ok_of row) rows in
  let bytes_win = get "cache-on" bytes_of < get "cache-off" bytes_of in
  let completion_win = get "cache-on" done_of < get "cache-off" done_of in
  let cache_fired = qs_on.Query.Qcache.hits > 0 in
  let invalidated =
    qs_on.Query.Qcache.invalidations + qs_on.Query.Qcache.stale_drops > 0
  in
  Printf.printf "\nper-request digests %s across the arms; Σ content %s\n"
    (if digests_agree then "byte-identical" else "DIFFER")
    (if sigma_agree then "agrees" else "DIFFERS");
  if not all_ok then Printf.printf "!! E24: an arm failed to complete\n";
  if not cache_fired then Printf.printf "!! E24: the cache never hit\n";
  if not invalidated then
    Printf.printf "!! E24: the mutations never invalidated an entry\n";
  if bytes_win && completion_win then
    Printf.printf
      "cache-on: %.2fx bytes, %.2fx completion (%d hits / %d misses, %d \
       invalidations)\n"
      (float_of_int (get "cache-on" bytes_of)
      /. Float.max 1.0 (float_of_int (get "cache-off" bytes_of)))
      (get "cache-on" done_of /. Float.max 1.0 (get "cache-off" done_of))
      qs_on.Query.Qcache.hits qs_on.Query.Qcache.misses
      (qs_on.Query.Qcache.invalidations + qs_on.Query.Qcache.stale_drops)
  else
    Printf.printf
      "!! E24: cache-on was not strictly cheaper (bytes %s, completion %s)\n"
      (if bytes_win then "ok" else "NOT lower")
      (if completion_win then "ok" else "NOT lower");
  let rows_json =
    json_arr
      (List.map
         (fun (arm, (events, completed, p50, p95, msgs, bytes, done_ms, qs,
                     _, fp, wall, ok)) ->
           json_obj
             [
               ("arm", json_s arm);
               ("events", string_of_int events);
               ("completed", string_of_int completed);
               ("p50_ms", json_f p50);
               ("p95_ms", json_f p95);
               ("messages", string_of_int msgs);
               ("bytes", string_of_int bytes);
               ("completion_ms", json_f done_ms);
               ("cache_hits", string_of_int qs.Query.Qcache.hits);
               ("cache_misses", string_of_int qs.Query.Qcache.misses);
               ( "cache_invalidations",
                 string_of_int
                   (qs.Query.Qcache.invalidations
                  + qs.Query.Qcache.stale_drops) );
               ("cache_installs", string_of_int qs.Query.Qcache.installs);
               ("fingerprint", json_s fp);
               ("wall_s", json_f wall);
               ("quiescent_and_complete", json_b ok);
             ])
         rows)
  in
  write_json "BENCH_E24.json"
    (json_obj
       [
         ("experiment", json_s "E24");
         ("smoke", json_b smoke);
         ("rows", rows_json);
         ("digests_identical_across_arms", json_b digests_agree);
         ("sigma_agrees_across_arms", json_b sigma_agree);
         ("all_arms_complete", json_b all_ok);
         ("cache_hits_nonzero", json_b cache_fired);
         ("invalidation_exercised", json_b invalidated);
         ("bytes_strictly_lower", json_b bytes_win);
         ("completion_strictly_lower", json_b completion_win);
       ]);
  write_summary ();
  Printf.printf
    "\nwrote BENCH_E24.json and BENCH_summary.json\n\
     shape: identical digests and Σ across cache-off/cache-on, the\n\
     cached arm strictly lower on both bytes and completion, with\n\
     non-zero hits and exercised invalidation\n"

let all =
  [
    e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16;
    (fun () -> e17 ());
    (fun () -> e18 ());
    (fun () -> e19 ());
    (fun () -> e20 ());
    (fun () -> e21 ());
    (fun () -> e22 ());
    (fun () -> e23 ());
    (fun () -> e24 ());
  ]
