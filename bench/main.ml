(* Benchmark harness.

   Two layers:
   1. the experiment tables E1-E10 (Experiments.all) — the rows and
      series EXPERIMENTS.md records, regenerated from the simulator;
   2. one Bechamel micro-benchmark per experiment (plus substrate
      kernels), measuring the wall-clock cost of a representative
      kernel of that experiment.

   Run everything:        dune exec bench/main.exe
   Tables only:           dune exec bench/main.exe -- --tables
   Micro-benchmarks only: dune exec bench/main.exe -- --micro
   E17 only:              dune exec bench/main.exe -- --e17 [--smoke]
   E18 only:              dune exec bench/main.exe -- --e18 [--smoke]
   E19 only:              dune exec bench/main.exe -- --e19 [--smoke]
   E20 only:              dune exec bench/main.exe -- --e20 [--smoke]
   E21 only:              dune exec bench/main.exe -- --e21 [--smoke]
   E22 only:              dune exec bench/main.exe -- --e22 [--smoke]
   E23 only:              dune exec bench/main.exe -- --e23 [--smoke]
   E24 only:              dune exec bench/main.exe -- --e24 [--smoke]

   E17-E24 each write a BENCH_E<n>.json artifact to the current
   directory, then regenerate BENCH_summary.json — a uniform
   {schema_version, experiments: {E17: ..., ...}} envelope embedding
   every artifact present; --smoke shrinks them to CI size. *)

open Axml
open Bench_util
module Expr = Algebra.Expr

(* --- Bechamel micro-benchmarks ---------------------------------- *)

let catalog_xml =
  let rng = Workload.Rng.create ~seed:123 in
  let g = Xml.Node_id.Gen.create ~namespace:"bench" in
  Xml.Serializer.to_string
    (Workload.Xml_gen.catalog ~gen:g ~rng ~items:300 ~selectivity:0.1 ())

let parsed_catalog =
  Xml.Parser.parse_exn
    ~gen:(Xml.Node_id.Gen.create ~namespace:"bench2")
    catalog_xml

let sel_query = Workload.Xml_gen.selection_query ()

(* E1 kernel: run the pushed-selection plan end to end on a small
   system. *)
let bench_e1 () =
  let sys, _ = catalog_system ~items:100 ~selectivity:0.1 ~seed:1 () in
  let naive = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let plan =
    match Algebra.Rewrite.r11_push_selection naive with
    | [ r ] -> r.result
    | _ -> assert false
  in
  ignore (run_plan sys plan)

let bench_e2 () =
  let sys = mesh_system () in
  let rng = Workload.Rng.create ~seed:2 in
  let g = Runtime.System.gen_of sys p1 in
  Runtime.System.add_document sys p1 ~name:"cat"
    (Workload.Xml_gen.catalog ~gen:g ~rng ~items:100 ~selectivity:0.1 ());
  let plan =
    Expr.Query_app
      {
        query = Expr.Q_send { dest = p2; q = Expr.Q_val { q = sel_query; at = p1 } };
        args = [ Expr.send_to_peer p2 (Expr.doc "cat" ~at:"p1") ];
        at = p2;
      }
  in
  ignore (run_plan sys plan)

let bench_e3 () =
  let sys = mesh_system () in
  List.iteri
    (fun i p ->
      let rng = Workload.Rng.create ~seed:(30 + i) in
      let g = Runtime.System.gen_of sys p in
      Runtime.System.add_document sys p ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng ~items:60 ~selectivity:0.1 ()))
    [ p2; p3 ];
  let pushed_sub peer =
    Expr.Query_app
      {
        query = Expr.Q_send { dest = peer; q = Expr.Q_val { q = sel_query; at = p1 } };
        args = [ Expr.doc "cat" ~at:(Net.Peer_id.to_string peer) ];
        at = peer;
      }
  in
  let head =
    Query.Parser.parse_exn
      "query(2) for $a in $0, $b in $1 return <pair>{$a}{$b}</pair>"
  in
  ignore
    (run_plan sys
       (Expr.Query_app
          {
            query = Expr.Q_val { q = head; at = p1 };
            args = [ pushed_sub p2; pushed_sub p3 ];
            at = p1;
          }))

let bench_e4 () =
  let sys, _ = catalog_system ~items:100 ~selectivity:0.1 ~seed:4 () in
  let relayed =
    Expr.Send
      {
        dest = Expr.To_peer p1;
        expr = Expr.Send { dest = Expr.To_peer p3; expr = Expr.doc "cat" ~at:"p2" };
      }
  in
  ignore (run_plan sys relayed)

let bench_e5 () =
  let sys, _ = catalog_system ~items:100 ~selectivity:0.1 ~seed:5 () in
  let fetch = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item where attr($x, "category") = "wanted" and attr($y, "category") = "wanted" return <pair/>|}
  in
  let twice = Expr.query_at join ~at:p1 ~args:[ fetch; fetch ] in
  let shared =
    match Algebra.Rewrite.r13_share ~fresh:(fun () -> "_tmp_b") twice with
    | r :: _ -> r.result
    | [] -> assert false
  in
  ignore (run_plan sys shared)

let bench_e9 () =
  let g = Xml.Node_id.Gen.create ~namespace:"b9" in
  let state = Query.Incremental.create sel_query in
  let rng = Workload.Rng.create ~seed:9 in
  for _ = 1 to 8 do
    let t =
      Workload.Xml_gen.catalog ~gen:g ~rng ~items:10 ~selectivity:0.2 ()
    in
    ignore (Query.Incremental.push ~gen:g state ~input:0 t)
  done

let bench_e10 () =
  let env =
    Algebra.Cost.default_env ~doc_bytes:(fun _ -> 16_384)
      (Net.Topology.full_mesh ~link:default_link [ p1; p2; p3 ])
  in
  let naive = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  ignore
    (Algebra.Optimizer.optimize ~env ~ctx:p1
       (Algebra.Optimizer.Greedy { max_steps = 4 })
       naive)

let bench_e15 () =
  let env =
    Algebra.Cost.default_env ~doc_bytes:(fun _ -> 16_384)
      (Net.Topology.full_mesh ~link:default_link [ p1; p2; p3 ])
  in
  let naive = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  ignore
    (Algebra.Planner.plan ~env ~ctx:p1
       (Algebra.Optimizer.Best_first { max_expansions = 16 })
       naive)

let micro_tests =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* Substrate kernels. *)
    t "xml.parse 300-item catalog" (fun () ->
        ignore
          (Xml.Parser.parse_exn
             ~gen:(Xml.Node_id.Gen.create ~namespace:"k")
             catalog_xml));
    t "xml.serialize 300-item catalog" (fun () ->
        ignore (Xml.Serializer.to_string parsed_catalog));
    t "xml.canonicalize 300-item catalog" (fun () ->
        ignore (Xml.Canonical.fingerprint parsed_catalog));
    t "query.eval selection over catalog" (fun () ->
        ignore
          (Query.Eval.eval
             ~gen:(Xml.Node_id.Gen.create ~namespace:"k2")
             sel_query
             [ [ parsed_catalog ] ]));
    (* One kernel per experiment table. *)
    t "E1 pushed-selection plan" bench_e1;
    t "E2 delegated evaluation" bench_e2;
    t "E3 distributed composition" bench_e3;
    t "E4 relayed transfer" bench_e4;
    t "E5 shared transfer" bench_e5;
    t "E6 sc activation" (fun () ->
        let sys = mesh_system () in
        Runtime.System.add_service sys p2
          (Doc.Service.declarative ~name:"find" sel_query);
        let sc =
          Doc.Sc.make ~provider:(Doc.Names.At p2) ~service:"find"
            [ [ Xml.Tree.copy ~gen:(Runtime.System.gen_of sys p1) parsed_catalog ] ]
        in
        ignore (run_plan sys (Expr.sc sc ~at:p1)));
    t "E7 push query over sc" (fun () ->
        let sys = mesh_system () in
        Runtime.System.add_service sys p2
          (Doc.Service.declarative ~name:"find" sel_query);
        let probe = Query.Parser.parse_exn "query(1) for $h in $0 return <n/>" in
        let plan =
          Expr.Query_app
            {
              query = Expr.Q_val { q = probe; at = p1 };
              args =
                [
                  Expr.Sc
                    {
                      sc =
                        Doc.Sc.make ~provider:(Doc.Names.At p2) ~service:"find"
                          [
                            [
                              Xml.Tree.copy
                                ~gen:(Runtime.System.gen_of sys p1)
                                parsed_catalog;
                            ];
                          ];
                      at = p1;
                    };
                ];
              at = p1;
            }
        in
        let pushed =
          match Algebra.Rewrite.r16_push_query_over_sc plan with
          | [ r ] -> r.result
          | _ -> assert false
        in
        ignore (run_plan sys pushed));
    t "E8 pick-policy resolution" (fun () ->
        let sys, _ = catalog_system ~items:50 ~selectivity:0.1 ~seed:8 () in
        Runtime.System.register_doc_class sys ~class_name:"m"
          (Doc.Names.Doc_ref.at_peer "cat" ~peer:"p2");
        ignore (run_plan sys (Expr.doc_any "m")));
    t "E9 incremental push x8" bench_e9;
    t "E10 greedy optimizer" bench_e10;
    t "E15 best-first planner" bench_e15;
    t "expr.fingerprint naive plan" (fun () ->
        ignore
          (Algebra.Expr.fingerprint
             (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ])));
  ]

let run_micro () =
  let open Bechamel in
  section "Bechamel micro-benchmarks (monotonic clock per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let rows =
    List.filter_map
      (fun test ->
        let results =
          Benchmark.all cfg [ instance ]
            (Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ])
        in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
                Some
                  [
                    name;
                    (if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                     else if est >= 1e3 then Printf.sprintf "%.1f us" (est /. 1e3)
                     else Printf.sprintf "%.0f ns" est);
                  ]
            | _ -> acc)
          analyzed None)
      micro_tests
  in
  table ~headers:[ "kernel"; "time/run" ] rows

let () =
  let args = Array.to_list Sys.argv in
  let tables_only = List.mem "--tables" args in
  let micro_only = List.mem "--micro" args in
  let e17_only = List.mem "--e17" args in
  let e18_only = List.mem "--e18" args in
  let e19_only = List.mem "--e19" args in
  let e20_only = List.mem "--e20" args in
  let e21_only = List.mem "--e21" args in
  let e22_only = List.mem "--e22" args in
  let e23_only = List.mem "--e23" args in
  let e24_only = List.mem "--e24" args in
  let smoke = List.mem "--smoke" args in
  if e17_only then Experiments.e17 ~smoke ()
  else if e18_only then Experiments.e18 ~smoke ()
  else if e19_only then Experiments.e19 ~smoke ()
  else if e20_only then Experiments.e20 ~smoke ()
  else if e21_only then Experiments.e21 ~smoke ()
  else if e22_only then Experiments.e22 ~smoke ()
  else if e23_only then Experiments.e23 ~smoke ()
  else if e24_only then Experiments.e24 ~smoke ()
  else begin
    if not micro_only then begin
      print_endline "AXML framework experiment harness (see EXPERIMENTS.md)";
      List.iter (fun e -> e ()) Experiments.all
    end;
    if not tables_only then run_micro ()
  end;
  print_newline ()
