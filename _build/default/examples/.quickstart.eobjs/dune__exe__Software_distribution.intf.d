examples/software_distribution.mli:
