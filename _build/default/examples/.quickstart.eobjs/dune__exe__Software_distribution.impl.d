examples/software_distribution.ml: Algebra Axml Doc Format List Net Option Query Runtime String Workload Xml
