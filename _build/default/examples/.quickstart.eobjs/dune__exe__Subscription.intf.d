examples/subscription.mli:
