examples/subscription.ml: Axml Doc Format List Net Option Runtime String Workload Xml
