examples/quickstart.ml: Algebra Axml Doc Format List Net Query Runtime Xml
