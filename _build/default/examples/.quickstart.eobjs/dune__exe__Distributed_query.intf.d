examples/distributed_query.mli:
