examples/typed_portal.mli:
