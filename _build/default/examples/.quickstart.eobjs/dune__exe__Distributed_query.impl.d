examples/distributed_query.ml: Algebra Axml Doc Format List Net Query Runtime String Workload Xml
