examples/quickstart.mli:
