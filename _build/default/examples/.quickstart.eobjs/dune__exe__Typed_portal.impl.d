examples/typed_portal.ml: Axml Doc Filename Format Net Option Query Result Runtime Schema String Xml
