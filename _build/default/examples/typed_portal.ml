(* Typed, lazy, persistent AXML — the Section 2.2 activation modes in
   one scenario.

   A portal document embeds three calls: headlines (relevant to our
   query), an archive dump (irrelevant and expensive), and a summary
   generator (needed to make the document conform to its declared
   type).  We (1) run a query lazily, activating only the relevant
   call; (2) bring the document to its target type by activating
   exactly the type-completing call; (3) persist the whole Σ and
   restore it in a fresh system.

     dune exec examples/typed_portal.exe *)

open Axml
module System = Runtime.System
module Cm = Schema.Content_model

let p1 = Net.Peer_id.of_string "portal"
let p2 = Net.Peer_id.of_string "provider"

let portal_schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"portal" ~label:"portal" ~mixed:false
        ~content:
          (Cm.seq
             [ Cm.ref_ "summary"; Cm.ref_ "news"; Cm.ref_ "archive" ])
        ();
      Schema.Schema.decl ~name:"summary" ~label:"summary" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"news" ~label:"news" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "item")) ();
      Schema.Schema.decl ~name:"archive" ~label:"archive" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "blob")) ();
      Schema.Schema.decl ~name:"item" ~label:"item" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"blob" ~label:"blob" ~mixed:true
        ~content:Cm.Epsilon ();
    ]

let build () =
  let sys =
    System.create
      (Net.Topology.full_mesh
         ~link:(Net.Link.make ~latency_ms:8.0 ~bandwidth_bytes_per_ms:150.0)
         [ p1; p2 ])
  in
  System.add_service sys p2
    (Doc.Service.declarative ~name:"headlines"
       (Query.Parser.parse_exn
          {|query(0) return <item>"framework reproduces EDBT 2006 paper"</item>|}));
  System.add_service sys p2
    (Doc.Service.extern ~name:"archive_dump"
       ~signature:(Schema.Signature.untyped ~arity:0)
       (fun _ ->
         let g = Xml.Node_id.Gen.create ~namespace:"dump" in
         [
           Xml.Tree.element_of_string ~gen:g "blob"
             [ Xml.Tree.text (String.make 80_000 'z') ];
         ]));
  System.add_service sys p2
    (Doc.Service.declarative ~name:"summarize"
       (Query.Parser.parse_exn
          {|query(0) return <summary>"auto-generated portal summary"</summary>|}));
  System.load_document sys p1 ~name:"portal"
    ~xml:
      {|<portal>
          <sc><peer>provider</peer><service>summarize</service></sc>
          <news><sc><peer>provider</peer><service>headlines</service></sc></news>
          <archive><sc><peer>provider</peer><service>archive_dump</service></sc></archive>
        </portal>|};
  sys

let () =
  (* --- 1. Lazy query evaluation -------------------------------- *)
  let q =
    Query.Parser.parse_exn
      "query(1) for $i in $0/news//item return <headline>{text($i)}</headline>"
  in
  Format.printf "== lazy query evaluation ==@.";
  let lazy_out =
    Runtime.Lazy_eval.eval_over_document (build ()) ~ctx:p1
      ~mode:Runtime.Lazy_eval.Lazy ~query:q ~doc:"portal"
  in
  let eager_out =
    Runtime.Lazy_eval.eval_over_document (build ()) ~ctx:p1
      ~mode:Runtime.Lazy_eval.Eager ~query:q ~doc:"portal"
  in
  Format.printf
    "lazy : %d call(s) activated, %d skipped, %d bytes shipped@."
    lazy_out.activated lazy_out.skipped lazy_out.stats.bytes;
  Format.printf "eager: %d call(s) activated, %d bytes shipped@."
    eager_out.activated eager_out.stats.bytes;
  Format.printf "same answers: %b; first: %s@."
    (Xml.Canonical.equal_forest lazy_out.results eager_out.results)
    (match lazy_out.results with
    | t :: _ -> Xml.Tree.text_content t
    | [] -> "<none>");

  (* --- 2. Type-driven activation -------------------------------- *)
  Format.printf "@.== type-driven activation ==@.";
  let sys = build () in
  let before =
    Runtime.Type_driven.conforms_modulo_calls ~schema:portal_schema
      ~type_name:"portal"
      (Doc.Document.root (Option.get (System.find_document sys p1 "portal")))
  in
  Format.printf "conforms before: %b@." (Result.is_ok before);
  let report =
    Runtime.Type_driven.activate_until_valid sys ~owner:p1 ~doc:"portal"
      ~schema:portal_schema ~type_name:"portal" ()
  in
  Format.printf
    "after %d round(s), %d call(s) activated: conforms = %b@." report.rounds
    report.activated report.conforms;

  (* --- 3. Persist and restore ----------------------------------- *)
  Format.printf "@.== persistence ==@.";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "axml_portal" in
  Runtime.Persist.save sys ~dir;
  Format.printf "saved Σ to %s@." dir;
  let restored = build () in
  (* A fresh build already has the documents; load into empty peers
     instead. *)
  let fresh =
    System.create
      (Net.Topology.full_mesh
         ~link:(Net.Link.make ~latency_ms:8.0 ~bandwidth_bytes_per_ms:150.0)
         [ p1; p2 ])
  in
  (match Runtime.Persist.load fresh ~dir with
  | Ok n -> Format.printf "restored %d peer(s)@." n
  | Error e -> Format.printf "restore failed: %s@." e);
  ignore restored;
  match System.find_document fresh p1 "portal" with
  | Some doc ->
      Format.printf "restored portal still conforms: %b@."
        (Result.is_ok
           (Runtime.Type_driven.conforms_modulo_calls ~schema:portal_schema
              ~type_name:"portal" (Doc.Document.root doc)))
  | None -> Format.printf "portal missing after restore@."
