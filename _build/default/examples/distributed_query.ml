(* Distributed query optimization, rule by rule (Section 3.3).

   A three-peer system with data at p2 and p3; we walk through the
   equivalence rules, executing original and rewritten plans and
   printing what each one shipped — Example 1 (pushing selections),
   delegation (rule 10/14), intermediary stops (rule 12), transfer
   sharing (rule 13), and pushing queries over service calls
   (rule 16).

     dune exec examples/distributed_query.exe *)

open Axml
module Expr = Algebra.Expr
module Names = Doc.Names
module System = Runtime.System
module Rewrite = Algebra.Rewrite

let p1 = Net.Peer_id.of_string "p1"
let p2 = Net.Peer_id.of_string "p2"
let p3 = Net.Peer_id.of_string "p3"

let catalog_xml =
  let rng = Workload.Rng.create ~seed:99 in
  let g = Xml.Node_id.Gen.create ~namespace:"gen" in
  Xml.Serializer.to_string
    (Workload.Xml_gen.catalog ~gen:g ~rng ~items:150 ~selectivity:0.05
       ~payload_bytes:80 ())

let build () =
  (* An asymmetric topology: p1-p2 is slow; p3 is well connected to
     both (the "relay" of rule 12's discussion). *)
  let slow = Net.Link.make ~latency_ms:40.0 ~bandwidth_bytes_per_ms:20.0 in
  let fast = Net.Link.make ~latency_ms:5.0 ~bandwidth_bytes_per_ms:500.0 in
  let topo =
    Net.Topology.of_links ~default:slow
      [
        (p1, p3, fast); (p3, p1, fast);
        (p2, p3, fast); (p3, p2, fast);
      ]
      [ p1; p2; p3 ]
  in
  let sys = System.create topo in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  System.add_service sys p2
    (Doc.Service.declarative ~name:"wanted_items"
       (Workload.Xml_gen.selection_query_with_payload ()));
  sys

let measure label sys plan =
  let out = Runtime.Exec.run_to_quiescence sys ~ctx:p1 plan in
  Format.printf "  %-28s %7d bytes %4d msgs %8.1f ms  (%d results)@." label
    out.stats.bytes out.stats.messages out.elapsed_ms
    (List.length out.results);
  out

let () =
  Format.printf "catalog: %d bytes at p2, selectivity 5%%@.@."
    (String.length catalog_xml);

  (* --- Example 1: pushing selections --------------------------- *)
  Format.printf "Example 1 — pushing selections:@.";
  let q = Workload.Xml_gen.selection_query () in
  let naive = Expr.query_at q ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let reference = measure "naive (ship whole doc)" (build ()) naive in
  (match Rewrite.r11_push_selection naive with
  | [ r ] ->
      let out = measure r.rule (build ()) r.result in
      Format.printf "  same answers: %b@."
        (Xml.Canonical.equal_forest reference.results out.results)
  | _ -> assert false);

  (* --- Rule 12: the intermediary stop that helps ---------------- *)
  Format.printf "@.Rule 12 — relaying through a well-connected peer:@.";
  let transfer = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
  ignore (measure "direct p2 -> p1 (slow link)" (build ()) transfer);
  let relayed =
    Expr.Send
      {
        dest = Expr.To_peer p1;
        expr = Expr.Send { dest = Expr.To_peer p3; expr = Expr.doc "cat" ~at:"p2" };
      }
  in
  ignore (measure "via p3 (two fast links)" (build ()) relayed);

  (* --- Rule 13: sharing a repeated transfer --------------------- *)
  Format.printf "@.Rule 13 — transfer sharing:@.";
  let join =
    Query.Parser.parse_exn
      {|query(2) for $x in $0//item, $y in $1//item
        where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
        return <pair/>|}
  in
  let fetch = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
  let twice = Expr.query_at join ~at:p1 ~args:[ fetch; fetch ] in
  ignore (measure "fetch the catalog twice" (build ()) twice);
  (match Rewrite.r13_share ~fresh:(fun () -> "_tmp_shared") twice with
  | r :: _ -> ignore (measure r.rule (build ()) r.result)
  | [] -> assert false);

  (* --- Rule 16: pushing a query over a service call ------------- *)
  Format.printf "@.Rule 16 — pushing a query over a service call:@.";
  let probe =
    Query.Parser.parse_exn
      {|query(1) for $h in $0, $n in $h//name return <just_name>{$n}</just_name>|}
  in
  let sc =
    Doc.Sc.make ~provider:(Names.At p2) ~service:"wanted_items"
      [ [ Xml.Parser.parse_exn ~gen:(Xml.Node_id.Gen.create ~namespace:"x") catalog_xml ] ]
  in
  let over_call =
    Expr.Query_app
      {
        query = Expr.Q_val { q = probe; at = p1 };
        args = [ Expr.Sc { sc; at = p1 } ];
        at = p1;
      }
  in
  let ref16 = measure "q over sc at caller" (build ()) over_call in
  (match Rewrite.r16_push_query_over_sc over_call with
  | [ r ] ->
      let out = measure r.rule (build ()) r.result in
      Format.printf "  same answers: %b@."
        (Xml.Canonical.equal_forest ref16.results out.results);
      Format.printf
        "  (here the call's parameters dominate, so pushing loses — the@.";
      Format.printf
        "   crossover vs. service-output size is swept in bench E7)@."
  | _ -> assert false);

  (* --- Full optimizer ------------------------------------------- *)
  Format.printf "@.Optimizer (greedy, cost-model driven) on the naive plan:@.";
  let sys = build () in
  let env =
    Algebra.Cost.default_env
      ~doc_bytes:(fun _ -> String.length catalog_xml)
      ~service_query:(fun r ->
        if Names.Service_ref.to_string r = "wanted_items@p2" then
          Some (Workload.Xml_gen.selection_query_with_payload ())
        else None)
      (Net.Sim.topology (System.sim sys))
  in
  let result =
    Algebra.Optimizer.optimize ~env ~ctx:p1
      (Algebra.Optimizer.Greedy { max_steps = 6 })
      naive
  in
  Format.printf "%a@." Algebra.Optimizer.pp_result result;
  ignore (measure "optimizer's plan, executed" (build ()) result.plan)
