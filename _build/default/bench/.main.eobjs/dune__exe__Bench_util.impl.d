bench/bench_util.ml: Array Axml List Net Printf Runtime String Workload Xml
