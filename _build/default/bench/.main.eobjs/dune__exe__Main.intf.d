bench/main.mli:
