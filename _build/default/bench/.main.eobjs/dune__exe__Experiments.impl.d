bench/experiments.ml: Algebra Axml Axml_peer Axml_schema Bench_util Doc Fun List Net Option Printf Query Runtime String Sys Workload Xml
