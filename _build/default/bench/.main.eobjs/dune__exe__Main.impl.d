bench/main.ml: Algebra Analyze Array Axml Bechamel Bench_util Benchmark Doc Experiments Hashtbl List Measure Net Printf Query Runtime Staged Sys Test Time Toolkit Workload Xml
