(* Shared infrastructure for the experiment harness: plain-text table
   rendering and standard system builders. *)

open Axml

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n" bar title bar

(* Render a table with left-aligned first column and right-aligned
   numeric columns. *)
let table ~headers rows =
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  List.iteri
    (fun i h -> widths.(i) <- max widths.(i) (String.length h))
    headers;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row cells =
    List.iteri
      (fun i cell ->
        if i = 0 then Printf.printf "  %-*s" widths.(i) cell
        else Printf.printf "  %*s" widths.(i) cell)
      cells;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let fmt_bytes b =
  if b >= 1_000_000 then Printf.sprintf "%.1fMB" (float_of_int b /. 1e6)
  else if b >= 10_000 then Printf.sprintf "%.1fkB" (float_of_int b /. 1e3)
  else Printf.sprintf "%dB" b

let fmt_ms = Printf.sprintf "%.1f"
let fmt_ratio = Printf.sprintf "%.1fx"

let p1 = Net.Peer_id.of_string "p1"
let p2 = Net.Peer_id.of_string "p2"
let p3 = Net.Peer_id.of_string "p3"

let default_link = Net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0

let mesh_system ?(peers = [ p1; p2; p3 ]) ?(link = default_link) () =
  Runtime.System.create (Net.Topology.full_mesh ~link peers)

(* A system with a synthetic catalog of [items] at p2. *)
let catalog_system ~items ~selectivity ?(payload_bytes = 64) ~seed () =
  let sys = mesh_system () in
  let rng = Workload.Rng.create ~seed in
  let g = Runtime.System.gen_of sys p2 in
  let catalog =
    Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity ~payload_bytes ()
  in
  Runtime.System.add_document sys p2 ~name:"cat" catalog;
  (sys, Xml.Tree.byte_size catalog)

let run_plan sys plan = Runtime.Exec.run_to_quiescence sys ~ctx:p1 plan

let check_same label a b =
  if not (Xml.Canonical.equal_forest a b) then
    Printf.printf "  !! %s: result mismatch\n" label
