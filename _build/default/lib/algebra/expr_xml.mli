(** XML serialization of expressions.

    "An expression can be viewed (serialized) as an XML tree, whose
    root is labeled with the expression constructor, and whose children
    are the expression parameters" (Section 3.1).  This encoding is the
    wire format used when a peer delegates evaluation of an expression
    to another peer, and its byte size is what the cost model charges
    for shipping plans. *)

val to_tree : gen:Axml_xml.Node_id.Gen.t -> Expr.t -> Axml_xml.Tree.t

val of_tree : Axml_xml.Tree.t -> (Expr.t, string) result
(** Inverse of {!to_tree} modulo node identifiers. *)

val to_xml_string : Expr.t -> string
(** [to_tree] composed with the XML serializer (private identifier
    namespace). *)

val of_xml_string : string -> (Expr.t, string) result

val byte_size : Expr.t -> int
(** Size of the serialized form — the shipping cost of the plan
    itself. *)
