type strategy = Exhaustive of { depth : int } | Greedy of { max_steps : int }

type step = { rule : string; cost : Cost.t }

type result = {
  plan : Expr.t;
  cost : Cost.t;
  initial_cost : Cost.t;
  explored : int;
  trace : step list;
}

(* The "_tmp" prefix marks auxiliary materializations; the runtime's
   Σ fingerprint ignores them (System.fingerprint). *)
let make_fresh () =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "_tmp_shared_%d" !counter

(* A visited list with structural equality.  Plan counts stay small
   (bounded depth or greedy path), so a list suffices and avoids
   hashing expressions. *)
let seen visited e = List.exists (Expr.equal e) visited

let default_objective c = Cost.weighted c

let optimize ~env ~ctx ?(objective = default_objective) ?peers strategy expr =
  let peers =
    match peers with
    | Some ps -> ps
    | None -> Axml_net.Topology.peers env.Cost.topology
  in
  let fresh = make_fresh () in
  let cost_of e = Cost.of_expr env ~ctx e in
  let initial_cost = cost_of expr in
  let explored = ref 1 in
  match strategy with
  | Greedy { max_steps } ->
      let rec descend current current_cost trace steps =
        if steps >= max_steps then (current, current_cost, trace)
        else begin
          let candidates = Rewrite.everywhere ~peers ~fresh current in
          explored := !explored + List.length candidates;
          let best =
            List.fold_left
              (fun acc (r : Rewrite.rewrite) ->
                let c = cost_of r.result in
                match acc with
                | Some (_, _, best_c) when objective c >= objective best_c ->
                    acc
                | Some _ | None ->
                    if objective c < objective current_cost then
                      Some (r.rule, r.result, c)
                    else acc)
              None candidates
          in
          match best with
          | None -> (current, current_cost, trace)
          | Some (rule, next, c) ->
              descend next c (trace @ [ { rule; cost = c } ]) (steps + 1)
        end
      in
      let plan, cost, trace = descend expr initial_cost [] 0 in
      { plan; cost; initial_cost; explored = !explored; trace }
  | Exhaustive { depth } ->
      (* Breadth-first enumeration of the rewrite closure; remember
         the cheapest plan and the rule path that produced it. *)
      let visited = ref [ expr ] in
      let best = ref (expr, initial_cost, []) in
      let frontier = ref [ (expr, []) ] in
      let level = ref 0 in
      while !level < depth && !frontier <> [] do
        incr level;
        let next_frontier = ref [] in
        List.iter
          (fun (e, path) ->
            List.iter
              (fun (r : Rewrite.rewrite) ->
                if not (seen !visited r.result) then begin
                  visited := r.result :: !visited;
                  incr explored;
                  let c = cost_of r.result in
                  let path = path @ [ { rule = r.rule; cost = c } ] in
                  let _, best_c, _ = !best in
                  if objective c < objective best_c then
                    best := (r.result, c, path);
                  next_frontier := (r.result, path) :: !next_frontier
                end)
              (Rewrite.everywhere ~peers ~fresh e))
          !frontier;
        frontier := !next_frontier
      done;
      let plan, cost, trace = !best in
      { plan; cost; initial_cost; explored = !explored; trace }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>initial: %a@ best:    %a@ explored %d plans, %d rewrite steps@ " Cost.pp
    r.initial_cost Cost.pp r.cost r.explored (List.length r.trace);
  List.iter
    (fun s -> Format.fprintf fmt "  %s -> %a@ " s.rule Cost.pp s.cost)
    r.trace;
  Format.fprintf fmt "plan: %a@]" Expr.pp r.plan
