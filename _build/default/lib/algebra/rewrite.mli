(** The equivalence rules of Section 3.3.

    Each rule transforms an expression into an equivalent one — same
    effect on any system state Σ (verified by the property suites in
    [test/test_rules.ml]) — with potentially different cost.  Rules are
    exposed individually (each returns the rewrites applicable {e at
    the root} of the given expression) and collectively
    ({!everywhere}), parameterized by the candidate peers of the
    system.

    Naming follows the paper:
    - (10) query delegation,
    - (11) composition/decomposition (unfold/fold) and Example 1's
      selection pushing,
    - (12) intermediary stop introduction/elimination,
    - (13) transfer sharing by materialization,
    - (14) delegation of expression evaluation,
    - (15) relocation of sc-rooted trees,
    - (16) pushing queries over service calls. *)

type rewrite = { rule : string; result : Expr.t }

val pp_rewrite : Format.formatter -> rewrite -> unit

(** {1 Individual rules (root position)} *)

val r10_delegate : peers:Expr.Peer_id.t list -> Expr.t -> rewrite list
(** eval\@p1(q(t)) ⇒ send_p2→p1((send_p1→p2(q))(send_p1→p2(t))),
    one rewrite per candidate delegate p2. *)

val r10_undelegate : Expr.t -> rewrite list
(** The inverse: collapse a fully-delegated application back. *)

val r11_unfold : Expr.t -> rewrite list
(** Apply a composed query by applying its parts:
    q1(q2,…)(args) ⇒ q1(q2(args), …). *)

val r11_fold : Expr.t -> rewrite list
(** Inverse of {!r11_unfold} when all sub-applications share the same
    argument list. *)

val r11_push_selection : Expr.t -> rewrite list
(** Example 1: for a unary application q(arg) with the argument's data
    at a remote peer, ship the pushable selection σ(q2) to the data
    and keep q1 at the caller. *)

val r12_skip_stop : Expr.t -> rewrite list
(** send(p2, send(p1, e)) ⇒ send(p2, e). *)

val r12_add_stop : peers:Expr.Peer_id.t list -> Expr.t -> rewrite list
(** send(p2, e) ⇒ send(p2, send(p1, e)) for each candidate relay p1 —
    "data in transit may make an intermediary stop" (and sometimes
    should: see E4). *)

val r13_share : fresh:(unit -> string) -> Expr.t -> rewrite list
(** When the same transfer send(p, x) occurs at least twice inside the
    expression, materialize it once as a document d\@p and reference
    the document from every occurrence. *)

val r14_delegate : peers:Expr.Peer_id.t list -> Expr.t -> rewrite list
(** e ⇒ eval\@p1(send(p, eval\@p(e))): hand the whole evaluation to a
    delegate. *)

val r14_undelegate : Expr.t -> rewrite list

val r15_relocate_sc : peers:Expr.Peer_id.t list -> Expr.t -> rewrite list
(** The peer where an sc-rooted tree is evaluated does not matter when
    results flow to an explicit forward list. *)

val r16_push_query_over_sc : Expr.t -> rewrite list
(** q(sc(p1, s1, parList, fwList)) ⇒ ship q to p1 and evaluate q over
    s1's implementation directly there, sending results to fwList. *)

(** {1 Combined application} *)

val at_root :
  peers:Expr.Peer_id.t list -> fresh:(unit -> string) -> Expr.t -> rewrite list
(** Every rule, root position only. *)

val everywhere :
  peers:Expr.Peer_id.t list -> fresh:(unit -> string) -> Expr.t -> rewrite list
(** Every rule at every position of the expression tree; each result
    is the whole expression with one position rewritten. *)
