lib/algebra/expr_xml.mli: Axml_xml Expr
