lib/algebra/expr.mli: Axml_doc Axml_net Axml_query Axml_xml Format
