lib/algebra/expr_xml.ml: Axml_doc Axml_net Axml_query Axml_xml Expr Format List Printf Result String
