lib/algebra/expr.ml: Axml_doc Axml_net Axml_query Axml_xml Format List String
