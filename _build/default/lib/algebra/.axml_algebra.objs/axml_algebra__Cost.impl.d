lib/algebra/cost.ml: Axml_doc Axml_net Axml_query Axml_xml Expr Expr_xml Format List Option String
