lib/algebra/rewrite.ml: Axml_doc Axml_net Axml_query Expr Format Fun List Option Printf Result
