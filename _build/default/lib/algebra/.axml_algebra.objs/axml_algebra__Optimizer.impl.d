lib/algebra/optimizer.ml: Axml_net Cost Expr Format List Printf Rewrite
