lib/algebra/optimizer.mli: Cost Expr Format
