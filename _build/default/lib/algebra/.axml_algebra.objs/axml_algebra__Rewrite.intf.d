lib/algebra/rewrite.mli: Expr Format
