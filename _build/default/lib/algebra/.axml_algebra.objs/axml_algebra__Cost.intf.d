lib/algebra/cost.mli: Axml_doc Axml_net Axml_query Expr Format
