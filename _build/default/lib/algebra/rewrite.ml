module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type rewrite = { rule : string; result : Expr.t }

let pp_rewrite fmt r =
  Format.fprintf fmt "@[<hv 2>[%s]@ %a@]" r.rule Expr.pp r.result

let other_peers ~peers p = List.filter (fun p2 -> not (Peer_id.equal p2 p)) peers

(* Rule (10), left to right.  The application and its query must be
   co-located; the rewrite ships query and arguments to a delegate and
   the result back. *)
let r10_delegate ~peers expr =
  match expr with
  | Expr.Query_app { query = Expr.Q_val { q; at = qat }; args; at }
    when Peer_id.equal qat at ->
      List.map
        (fun p2 ->
          {
            rule = Printf.sprintf "r10-delegate(%s)" (Peer_id.to_string p2);
            result =
              Expr.Send
                {
                  dest = Expr.To_peer at;
                  expr =
                    Expr.Query_app
                      {
                        query =
                          Expr.Q_send
                            { dest = p2; q = Expr.Q_val { q; at } };
                        args =
                          List.map
                            (fun arg ->
                              Expr.Send { dest = Expr.To_peer p2; expr = arg })
                            args;
                        at = p2;
                      };
                };
          })
        (other_peers ~peers at)
  | _ -> []

let r10_undelegate expr =
  match expr with
  | Expr.Send
      {
        dest = Expr.To_peer p1;
        expr =
          Expr.Query_app
            {
              query = Expr.Q_send { dest = p2; q = Expr.Q_val { q; at = qat } };
              args;
              at;
            };
      }
    when Peer_id.equal p2 at && Peer_id.equal qat p1 ->
      let unshipped =
        List.map
          (function
            | Expr.Send { dest = Expr.To_peer p; expr = arg }
              when Peer_id.equal p p2 ->
                Some arg
            | _ -> None)
          args
      in
      if List.for_all Option.is_some unshipped then
        [
          {
            rule = "r10-undelegate";
            result =
              Expr.Query_app
                {
                  query = Expr.Q_val { q; at = p1 };
                  args = List.filter_map Fun.id unshipped;
                  at = p1;
                };
          };
        ]
      else []
  | _ -> []

(* Rule (11): eval distributes over query composition. *)
let r11_unfold expr =
  match expr with
  | Expr.Query_app
      { query = Expr.Q_val { q = Axml_query.Ast.Compose (head, subs); at = qat };
        args;
        at;
      }
    when Peer_id.equal qat at ->
      [
        {
          rule = "r11-unfold";
          result =
            Expr.Query_app
              {
                query = Expr.Q_val { q = Axml_query.Ast.Flwr head; at };
                args =
                  List.map
                    (fun sub ->
                      Expr.Query_app
                        { query = Expr.Q_val { q = sub; at }; args; at })
                    subs;
                at;
              };
        };
      ]
  | _ -> []

let r11_fold expr =
  match expr with
  | Expr.Query_app
      { query = Expr.Q_val { q = Axml_query.Ast.Flwr head; at = qat }; args; at }
    when Peer_id.equal qat at && args <> [] ->
      let sub_parts =
        List.map
          (function
            | Expr.Query_app
                { query = Expr.Q_val { q = sub; at = sat }; args = sub_args; at = aat }
              when Peer_id.equal sat at && Peer_id.equal aat at ->
                Some (sub, sub_args)
            | _ -> None)
          args
      in
      if List.for_all Option.is_some sub_parts then
        let sub_parts = List.filter_map Fun.id sub_parts in
        match sub_parts with
        | [] -> []
        | (_, first_args) :: _
          when List.for_all
                 (fun (_, a) -> List.equal Expr.equal a first_args)
                 sub_parts ->
            let subs = List.map fst sub_parts in
            let composed = Axml_query.Ast.Compose (head, subs) in
            if Result.is_ok (Axml_query.Ast.check composed) then
              [
                {
                  rule = "r11-fold";
                  result =
                    Expr.Query_app
                      {
                        query = Expr.Q_val { q = composed; at };
                        args = first_args;
                        at;
                      };
                };
              ]
            else []
        | _ :: _ -> []
      else []
  | _ -> []

(* Example 1: push the selection part of a unary query next to the
   data. *)
let r11_push_selection expr =
  match expr with
  | Expr.Query_app { query = Expr.Q_val { q; at = qat }; args = [ arg ]; at }
    when Peer_id.equal qat at -> (
      match (Axml_query.Compose.push_selection q, Expr.site arg) with
      | Some { outer; pushed }, Names.At data_peer
        when not (Peer_id.equal data_peer at) ->
          [
            {
              rule = "r11-push-selection";
              result =
                Expr.Query_app
                  {
                    query = Expr.Q_val { q = outer; at };
                    args =
                      [
                        Expr.Query_app
                          {
                            query =
                              Expr.Q_send
                                { dest = data_peer; q = Expr.Q_val { q = pushed; at } };
                            args = [ arg ];
                            at = data_peer;
                          };
                      ];
                    at;
                  };
            };
          ]
      | (Some _ | None), _ -> [])
  | _ -> []

(* Rule (12), left to right: remove an intermediary stop (the relay is
   an inner send-to-peer under any outer destination). *)
let r12_skip_stop expr =
  match expr with
  | Expr.Send
      { dest; expr = Expr.Send { dest = Expr.To_peer _; expr = inner } } ->
      [ { rule = "r12-skip-stop"; result = Expr.Send { dest; expr = inner } } ]
  | _ -> []

(* Rule (12), right to left: data in transit may halt at a relay.  For
   multicast destinations (To_nodes, To_doc) the relay additionally
   acts as a distribution point: the source link carries the payload
   once instead of once per target. *)
let r12_add_stop ~peers expr =
  match expr with
  | Expr.Send { dest; expr = inner } ->
      let src =
        match Expr.site inner with Names.At p -> Some p | Names.Any -> None
      in
      let excluded =
        match dest with
        | Expr.To_peer p2 -> [ Some p2; src ]
        | Expr.To_nodes _ | Expr.To_doc _ -> [ src ]
      in
      peers
      |> List.filter (fun p1 -> not (List.mem (Some p1) excluded))
      |> List.map (fun p1 ->
             {
               rule = Printf.sprintf "r12-add-stop(%s)" (Peer_id.to_string p1);
               result =
                 Expr.Send
                   {
                     dest;
                     expr = Expr.Send { dest = Expr.To_peer p1; expr = inner };
                   };
             })
  | _ -> []

(* Rule (13): share a repeated transfer through a materialized
   document. *)
let r13_share ~fresh expr =
  (* Candidate transfers: send(p, x) subexpressions, grouped by
     destination and payload. *)
  let rec collect acc e =
    let acc =
      match e with
      | Expr.Send { dest = Expr.To_peer p; expr = inner } -> (p, inner) :: acc
      | _ -> acc
    in
    List.fold_left collect acc (Expr.subexpressions e)
  in
  let candidates = collect [] expr in
  let duplicated =
    List.filter
      (fun (p, inner) ->
        2
        <= List.length
             (List.filter
                (fun (p', inner') ->
                  Peer_id.equal p p' && Expr.equal inner inner')
                candidates))
      candidates
  in
  (* Deduplicate candidate groups. *)
  let groups =
    List.fold_left
      (fun acc (p, inner) ->
        if
          List.exists
            (fun (p', inner') -> Peer_id.equal p p' && Expr.equal inner inner')
            acc
        then acc
        else (p, inner) :: acc)
      [] duplicated
  in
  List.map
    (fun (p, inner) ->
      let name = fresh () in
      let doc_ref =
        Expr.Doc (Names.Doc_ref.make (Names.Doc_name.of_string name) (Names.At p))
      in
      let rec replace e =
        match e with
        | Expr.Send { dest = Expr.To_peer p'; expr = inner' }
          when Peer_id.equal p p' && Expr.equal inner inner' ->
            doc_ref
        | e -> Expr.map_children replace e
      in
      {
        rule = "r13-share";
        result =
          Expr.Shared
            {
              name = Names.Doc_name.of_string name;
              at = p;
              value = inner;
              body = replace expr;
            };
      })
    groups

(* Rule (14): whole-expression delegation.  Not applied to
   send(p, e)-rooted expressions: their value materializes at their
   destination and evaluates to ∅ anywhere else (definition (3)), so
   moving the evaluation site would change what the original driver
   observes.  (The paper's formulation side-steps this by re-wrapping
   the delegated result in a send; for every other expression shape our
   Eval_at's implicit result stream is exactly that send.) *)
let r14_delegate ~peers expr =
  match expr with
  | Expr.Eval_at _ | Expr.Send { dest = Expr.To_peer _; _ } -> []
  | _ ->
      let here =
        match Expr.site expr with Names.At p -> Some p | Names.Any -> None
      in
      peers
      |> List.filter (fun p1 ->
             match here with Some h -> not (Peer_id.equal p1 h) | None -> true)
      |> List.map (fun p1 ->
             {
               rule = Printf.sprintf "r14-delegate(%s)" (Peer_id.to_string p1);
               result = Expr.Eval_at { at = p1; expr };
             })

let r14_undelegate expr =
  match expr with
  | Expr.Eval_at { expr = inner; _ } ->
      [ { rule = "r14-undelegate"; result = inner } ]
  | _ -> []

(* Rule (15): an sc-rooted tree with an explicit forward list may be
   activated from any peer — results flow to fwList either way. *)
let r15_relocate_sc ~peers expr =
  match expr with
  | Expr.Sc { sc; at } when sc.Axml_doc.Sc.forward <> [] ->
      List.map
        (fun p2 ->
          {
            rule = Printf.sprintf "r15-relocate-sc(%s)" (Peer_id.to_string p2);
            result = Expr.Eval_at { at = p2; expr = Expr.Sc { sc; at = p2 } };
          })
        (other_peers ~peers at)
  | _ -> []

(* Rule (16): push a query over a service call — ship q to the
   provider and evaluate q over the service's implementation there,
   delivering straight to the forward list. *)
let r16_push_query_over_sc expr =
  match expr with
  | Expr.Query_app
      { query = Expr.Q_val { q; at = qat }; args = [ Expr.Sc { sc; at = sc_at } ]; at }
    when Peer_id.equal qat at && Peer_id.equal sc_at at -> (
      match sc.Axml_doc.Sc.provider with
      | Names.Any -> []
      | Names.At p1 ->
          let service_app =
            Expr.Query_app
              {
                query =
                  Expr.Q_service
                    (Names.Service_ref.make sc.Axml_doc.Sc.service
                       (Names.At p1));
                (* The parameters travel once, inside the shipped plan
                   (send_p→p1(parList)); after that shipping they live
                   at the provider. *)
                args =
                  List.map
                    (fun forest -> Expr.Data_at { forest; at = p1 })
                    sc.Axml_doc.Sc.params;
                at = p1;
              }
          in
          let pushed =
            Expr.Query_app
              {
                query = Expr.Q_send { dest = p1; q = Expr.Q_val { q; at } };
                args = [ service_app ];
                at = p1;
              }
          in
          let result =
            match sc.Axml_doc.Sc.forward with
            | [] -> Expr.Send { dest = Expr.To_peer at; expr = pushed }
            | fw -> Expr.Send { dest = Expr.To_nodes fw; expr = pushed }
          in
          [ { rule = "r16-push-query-over-sc"; result } ])
  | _ -> []

let at_root ~peers ~fresh expr =
  List.concat
    [
      r10_delegate ~peers expr;
      r10_undelegate expr;
      r11_unfold expr;
      r11_fold expr;
      r11_push_selection expr;
      r12_skip_stop expr;
      r12_add_stop ~peers expr;
      r13_share ~fresh expr;
      r14_delegate ~peers expr;
      r14_undelegate expr;
      r15_relocate_sc ~peers expr;
      r16_push_query_over_sc expr;
    ]

(* Apply rules at every position: for each subexpression position,
   rewrite there and rebuild the enclosing expression. *)
let everywhere ~peers ~fresh expr =
  let rec go rebuild e =
    let here =
      List.map
        (fun r -> { r with result = rebuild r.result })
        (at_root ~peers ~fresh e)
    in
    let children = Expr.subexpressions e in
    let deeper =
      List.concat
        (List.mapi
           (fun i child ->
             let rebuild_child c =
               let j = ref (-1) in
               rebuild
                 (Expr.map_children
                    (fun k ->
                      incr j;
                      if !j = i then c else k)
                    e)
             in
             go rebuild_child child)
           children)
    in
    here @ deeper
  in
  go Fun.id expr
