(** Transfer statistics.

    The quantities the paper's optimizations trade in: messages sent,
    bytes shipped (total and per directed link), and the virtual time
    at which the system went quiescent. *)

type t

type snapshot = {
  messages : int;
  bytes : int;
  local_messages : int;  (** Loopback deliveries, not counted in [bytes]. *)
  completion_ms : float;  (** Time of the last processed event. *)
  per_link : ((Peer_id.t * Peer_id.t) * (int * int)) list;
      (** (src, dst) -> (messages, bytes), remote links only. *)
}

type trace_entry = {
  at_ms : float;  (** Virtual send time. *)
  src : Peer_id.t;
  dst : Peer_id.t;
  trace_bytes : int;
  note : string;  (** Message kind, e.g. ["invoke find/1"]. *)
}

val create : unit -> t

val record_send :
  ?at_ms:float ->
  ?note:string ->
  t ->
  src:Peer_id.t ->
  dst:Peer_id.t ->
  bytes:int ->
  unit

val record_time : t -> float -> unit
val snapshot : t -> snapshot
val reset : t -> unit
(** Clears counters and the trace; tracing stays in its current
    enabled/disabled state. *)

val set_tracing : t -> bool -> unit
(** Record a {!trace_entry} per remote message (off by default; local
    messages are not traced). *)

val tracing_enabled : t -> bool

val trace : t -> trace_entry list
(** Recorded entries, oldest first. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
val pp_trace_entry : Format.formatter -> trace_entry -> unit
