module Pmap = Peer_id.Map

type t = {
  peer_list : Peer_id.t list;
  peer_set : Peer_id.Set.t;
  links : Link.t Pmap.t Pmap.t;  (** src -> dst -> link *)
  default : Peer_id.t -> Peer_id.t -> Link.t;
}

let peers t = t.peer_list
let mem t p = Peer_id.Set.mem p t.peer_set

let link t ~src ~dst =
  if not (mem t src && mem t dst) then raise Not_found;
  if Peer_id.equal src dst then Link.local
  else
    match Pmap.find_opt src t.links |> Fun.flip Option.bind (Pmap.find_opt dst) with
    | Some l -> l
    | None -> t.default src dst

let override t ~src ~dst l =
  let row = Option.value ~default:Pmap.empty (Pmap.find_opt src t.links) in
  { t with links = Pmap.add src (Pmap.add dst l row) t.links }

let base peer_list default =
  {
    peer_list;
    peer_set = Peer_id.Set.of_list peer_list;
    links = Pmap.empty;
    default;
  }

let full_mesh ~link peer_list = base peer_list (fun _ _ -> link)

let scale l factor =
  Link.make
    ~latency_ms:(l.Link.latency_ms *. factor)
    ~bandwidth_bytes_per_ms:(l.Link.bandwidth_bytes_per_ms /. factor)

let star ~hub ~spoke_link peer_list =
  let default src dst =
    if Peer_id.equal src hub || Peer_id.equal dst hub then spoke_link
    else scale spoke_link 2.0
  in
  base peer_list default

let ring ~hop_link peer_list =
  let arr = Array.of_list peer_list in
  let n = Array.length arr in
  let index p =
    let rec go i = if Peer_id.equal arr.(i) p then i else go (i + 1) in
    go 0
  in
  let default src dst =
    let d = abs (index src - index dst) in
    let hops = min d (n - d) in
    scale hop_link (float_of_int (max 1 hops))
  in
  base peer_list default

let clustered ~intra ~inter clusters =
  let peer_list = List.concat clusters in
  let cluster_of =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun ci members ->
        List.iter (fun p -> Hashtbl.replace tbl (Peer_id.to_string p) ci) members)
      clusters;
    fun p -> Hashtbl.find tbl (Peer_id.to_string p)
  in
  let default src dst =
    if cluster_of src = cluster_of dst then intra else inter
  in
  base peer_list default

let of_links ~default links peer_list =
  List.fold_left
    (fun t (src, dst, l) -> override t ~src ~dst l)
    (base peer_list (fun _ _ -> default))
    links

let pp fmt t =
  Format.fprintf fmt "@[<v>topology over {%s}@]"
    (String.concat ", " (List.map Peer_id.to_string t.peer_list))
