(** Point-to-point link characteristics.

    The cost of moving a message of [b] bytes over a link is
    [latency_ms + b / bandwidth_bytes_per_ms] milliseconds — the affine
    model standard in distributed query processing cost studies. *)

type t = { latency_ms : float; bandwidth_bytes_per_ms : float }

val make : latency_ms:float -> bandwidth_bytes_per_ms:float -> t
(** @raise Invalid_argument on non-positive bandwidth or negative
    latency. *)

val local : t
(** The loopback link: zero latency, effectively infinite bandwidth. *)

val transfer_ms : t -> bytes:int -> float
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
