(** Peer network topologies.

    The paper makes "no assumption about the structure of the peer
    network" and promises to "discuss the impact of various network
    structures"; experiment E4 does exactly that.  A topology assigns a
    {!Link.t} to every ordered peer pair; the loopback pair always gets
    {!Link.local}. *)

type t

val peers : t -> Peer_id.t list
val mem : t -> Peer_id.t -> bool

val link : t -> src:Peer_id.t -> dst:Peer_id.t -> Link.t
(** @raise Not_found if either peer is not part of the topology. *)

val override : t -> src:Peer_id.t -> dst:Peer_id.t -> Link.t -> t
(** Functional update of one directed link. *)

(** {1 Builders}

    All builders take the full peer list; default links are symmetric. *)

val full_mesh : link:Link.t -> Peer_id.t list -> t
(** Every pair connected with the same link. *)

val star : hub:Peer_id.t -> spoke_link:Link.t -> Peer_id.t list -> t
(** Spokes reach each other through double the spoke link cost
    (modelled as a direct link of doubled latency and halved
    bandwidth); hub-spoke pairs use [spoke_link]. *)

val ring : hop_link:Link.t -> Peer_id.t list -> t
(** Neighbours on the ring use [hop_link]; non-neighbours use a link
    scaled by their ring distance. *)

val clustered :
  intra:Link.t -> inter:Link.t -> Peer_id.t list list -> t
(** Peers grouped in clusters: cheap [intra] links inside a cluster,
    expensive [inter] links across. *)

val of_links :
  default:Link.t -> (Peer_id.t * Peer_id.t * Link.t) list -> Peer_id.t list -> t
(** Explicit directed link list over [peers]; unlisted pairs get
    [default]. *)

val pp : Format.formatter -> t -> unit
