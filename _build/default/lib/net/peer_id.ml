type t = string

let valid s =
  String.length s > 0
  && not
       (String.exists
          (fun c -> c = '@' || c = ' ' || c = '\t' || c = '\n' || c = '\r')
          s)

let of_string_opt s = if valid s then Some s else None

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Peer_id.of_string: %S" s)

let to_string p = p
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
