type 'a node = {
  time : float;
  seq : int;
  value : 'a;
  mutable kids : 'a node list;
}

type 'a heap = Empty | Node of 'a node
type 'a t = { mutable heap : 'a heap; mutable next_seq : int; mutable size : int }

let create () = { heap = Empty; next_seq = 0; size = 0 }
let is_empty t = t.heap = Empty
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let meld a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node x, Node y ->
      if before x y then begin
        x.kids <- y :: x.kids;
        Node x
      end
      else begin
        y.kids <- x :: y.kids;
        Node y
      end

let push t ~time value =
  if Float.is_nan time then invalid_arg "Pqueue.push: NaN time";
  let node = { time; seq = t.next_seq; value; kids = [] } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  t.heap <- meld t.heap (Node node)

let rec meld_pairs = function
  | [] -> Empty
  | [ n ] -> Node n
  | a :: b :: rest -> meld (meld (Node a) (Node b)) (meld_pairs rest)

let pop t =
  match t.heap with
  | Empty -> None
  | Node n ->
      t.heap <- meld_pairs n.kids;
      t.size <- t.size - 1;
      Some (n.time, n.value)

let peek_time t = match t.heap with Empty -> None | Node n -> Some n.time
let clear t =
  t.heap <- Empty;
  t.size <- 0
