lib/net/sim.ml: Link Option Peer_id Pqueue Stats Topology
