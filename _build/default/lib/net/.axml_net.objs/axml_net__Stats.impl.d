lib/net/stats.ml: Format Hashtbl List Option Peer_id
