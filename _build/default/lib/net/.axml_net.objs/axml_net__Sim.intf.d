lib/net/sim.mli: Peer_id Stats Topology
