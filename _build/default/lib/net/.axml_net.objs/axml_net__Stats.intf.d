lib/net/stats.mli: Format Peer_id
