lib/net/topology.ml: Array Format Fun Hashtbl Link List Option Peer_id String
