lib/net/peer_id.ml: Format Hashtbl Map Printf Set String
