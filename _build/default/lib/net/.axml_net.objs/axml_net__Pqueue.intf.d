lib/net/pqueue.mli:
