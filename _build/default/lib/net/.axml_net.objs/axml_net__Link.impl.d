lib/net/link.ml: Float Format
