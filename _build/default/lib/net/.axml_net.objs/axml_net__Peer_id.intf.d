lib/net/peer_id.mli: Format Hashtbl Map Set
