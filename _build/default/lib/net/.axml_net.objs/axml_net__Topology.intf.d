lib/net/topology.mli: Format Link Peer_id
