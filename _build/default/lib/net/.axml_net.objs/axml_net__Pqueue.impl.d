lib/net/pqueue.ml: Float
