(** Priority queue of timestamped events.

    A pairing heap keyed by [(time, sequence)]: among equal times,
    insertion order wins, which makes simulator runs deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
val clear : 'a t -> unit
