type t = { latency_ms : float; bandwidth_bytes_per_ms : float }

let make ~latency_ms ~bandwidth_bytes_per_ms =
  if latency_ms < 0.0 then invalid_arg "Link.make: negative latency";
  if bandwidth_bytes_per_ms <= 0.0 then
    invalid_arg "Link.make: bandwidth must be positive";
  { latency_ms; bandwidth_bytes_per_ms }

let local = { latency_ms = 0.0; bandwidth_bytes_per_ms = 1e12 }

let transfer_ms l ~bytes =
  l.latency_ms +. (float_of_int bytes /. l.bandwidth_bytes_per_ms)

let pp fmt l =
  Format.fprintf fmt "%.1fms+%.0fB/ms" l.latency_ms l.bandwidth_bytes_per_ms

let equal a b =
  Float.equal a.latency_ms b.latency_ms
  && Float.equal a.bandwidth_bytes_per_ms b.bandwidth_bytes_per_ms
