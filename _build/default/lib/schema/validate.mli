(** Tree validation against schema types.

    Decides the type-membership judgement "tree [t] belongs to type τ"
    used by service signatures: a service with signature (τin, τout)
    accepts input forests of type τin and emits trees of type τout
    (Section 2.1). *)

type error = {
  at : Axml_xml.Node_id.t option;  (** Node where validation failed. *)
  expected : string;  (** Type name expected at that node. *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

val tree :
  ?unordered:bool ->
  schema:Schema.t ->
  type_name:string ->
  Axml_xml.Tree.t ->
  (unit, error) result
(** Does the tree conform to the named type?  The universal type
    {!Schema.any_type_name} accepts any element.  With
    [unordered:true] (default [false]), content models are matched
    modulo sibling permutation ({!Content_model.matches_multiset}) —
    the right notion for the paper's unordered trees, where call
    results accumulate at arbitrary sibling positions. *)

val conforms :
  ?unordered:bool -> schema:Schema.t -> type_name:string -> Axml_xml.Tree.t -> bool

val forest :
  ?unordered:bool ->
  schema:Schema.t ->
  type_names:string list ->
  Axml_xml.Tree.t list ->
  (unit, error) result
(** Point-wise validation of a forest against a list of types (service
    input validation; arities must agree). *)
