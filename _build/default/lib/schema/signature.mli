(** Service type signatures.

    A Web service s\@p has a unique signature (τin, τout) with
    τin ∈ Θⁿ and τout ∈ Θ (Section 2.1).  A signature bundles the
    schema its type names live in. *)

type t

val make : schema:Schema.t -> inputs:string list -> output:string -> t
(** @raise Invalid_argument if a named type is neither declared nor the
    universal type. *)

val untyped : arity:int -> t
(** The fully generic signature: [arity] universal inputs, universal
    output.  Used for services whose types are unknown. *)

val schema : t -> Schema.t
val inputs : t -> string list
val output : t -> string
val arity : t -> int

val check_inputs : t -> Axml_xml.Tree.t list -> (unit, Validate.error) result
val check_output : t -> Axml_xml.Tree.t -> (unit, Validate.error) result

val compatible : t -> t -> bool
(** Same arity and syntactically equal type names — the notion used to
    group generic services into equivalence classes. *)

val pp : Format.formatter -> t -> unit
