(** Schemas: regular tree grammars.

    A schema is a finite set of named type declarations.  Each
    declaration constrains an element's label, its attributes and its
    content.  This realizes the set Θ of XML tree types of the paper
    (Section 2.1) in a DTD-like fragment sufficient for service
    signatures and type-membership checks. *)

type attr_rule = { attr_name : string; required : bool }

type decl = {
  type_name : string;  (** The name by which other models refer to it. *)
  elt_label : Axml_xml.Label.t;  (** Required element label. *)
  attributes : attr_rule list;
  content : Content_model.t;
  mixed : bool;
      (** If [true], text children are allowed anywhere and ignored by
          the content model. *)
}

type t

val empty : t

val add : decl -> t -> t
(** @raise Invalid_argument if a declaration with the same type name
    exists. *)

val of_decls : decl list -> t
val find : t -> string -> decl option
val mem : t -> string -> bool
val type_names : t -> string list

val decl :
  ?attributes:attr_rule list ->
  ?mixed:bool ->
  ?content:Content_model.t ->
  name:string ->
  label:string ->
  unit ->
  decl
(** Convenience constructor.  [content] defaults to
    [Content_model.star Content_model.wildcard] (any children);
    [mixed] defaults to [true]. *)

val check_closed : t -> (unit, string list) result
(** All type names referenced from content models are declared; the
    error lists the dangling references. *)

val union : t -> t -> (t, string) result
(** Disjoint union; the error names the first clashing type. *)

val any_type_name : string
(** ["#any"] — the universal type, implicitly declared in every
    schema: any single element tree belongs to it.  {!module:Validate}
    special-cases it, and {!check_closed} accepts references to it. *)

val pp : Format.formatter -> t -> unit
