type t = { schema : Schema.t; inputs : string list; output : string }

let check_declared schema name =
  if name <> Schema.any_type_name && not (Schema.mem schema name) then
    invalid_arg (Printf.sprintf "Signature.make: type %S not declared" name)

let make ~schema ~inputs ~output =
  List.iter (check_declared schema) inputs;
  check_declared schema output;
  { schema; inputs; output }

let untyped ~arity =
  {
    schema = Schema.empty;
    inputs = List.init arity (fun _ -> Schema.any_type_name);
    output = Schema.any_type_name;
  }

let schema s = s.schema
let inputs s = s.inputs
let output s = s.output
let arity s = List.length s.inputs

let check_inputs s trees =
  Validate.forest ~schema:s.schema ~type_names:s.inputs trees

let check_output s tree =
  Validate.tree ~schema:s.schema ~type_name:s.output tree

let compatible a b =
  List.equal String.equal a.inputs b.inputs && String.equal a.output b.output

let pp fmt s =
  Format.fprintf fmt "(%s) -> %s" (String.concat ", " s.inputs) s.output
