module Label = Axml_xml.Label

type attr_rule = { attr_name : string; required : bool }

type decl = {
  type_name : string;
  elt_label : Label.t;
  attributes : attr_rule list;
  content : Content_model.t;
  mixed : bool;
}

module Smap = Map.Make (String)

type t = decl Smap.t

let empty = Smap.empty
let any_type_name = "#any"

let add d t =
  if Smap.mem d.type_name t then
    invalid_arg (Printf.sprintf "Schema.add: duplicate type %S" d.type_name)
  else Smap.add d.type_name d t

let of_decls decls = List.fold_left (fun t d -> add d t) empty decls
let find t name = Smap.find_opt name t
let mem t name = Smap.mem name t
let type_names t = Smap.bindings t |> List.map fst

let decl ?(attributes = []) ?(mixed = true)
    ?(content = Content_model.star Content_model.wildcard) ~name ~label () =
  {
    type_name = name;
    elt_label = Label.of_string label;
    attributes;
    content;
    mixed;
  }

let check_closed t =
  let dangling =
    Smap.fold
      (fun _ d acc ->
        List.fold_left
          (fun acc atom ->
            match atom with
            | Content_model.Ref name
              when (not (Smap.mem name t)) && name <> any_type_name ->
                if List.mem name acc then acc else name :: acc
            | Content_model.Ref _ | Content_model.Text
            | Content_model.Wildcard ->
                acc)
          acc
          (Content_model.atoms d.content))
      t []
  in
  match dangling with [] -> Ok () | missing -> Error (List.rev missing)

let union a b =
  let clash = ref None in
  let merged =
    Smap.union
      (fun name _ _ ->
        if !clash = None then clash := Some name;
        None)
      a b
  in
  match !clash with
  | Some name -> Error (Printf.sprintf "Schema.union: type %S declared twice" name)
  | None -> Ok merged

let pp fmt t =
  Smap.iter
    (fun name d ->
      Format.fprintf fmt "type %s = element %a { %a }%s@." name Label.pp
        d.elt_label Content_model.pp d.content
        (if d.mixed then " (mixed)" else ""))
    t
