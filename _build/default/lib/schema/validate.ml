module Tree = Axml_xml.Tree
module Label = Axml_xml.Label

type error = {
  at : Axml_xml.Node_id.t option;
  expected : string;
  reason : string;
}

let pp_error fmt e =
  Format.fprintf fmt "validation failed (expected type %s%a): %s" e.expected
    (fun fmt -> function
      | Some id -> Format.fprintf fmt " at node %a" Axml_xml.Node_id.pp id
      | None -> ())
    e.at e.reason

exception Invalid of error

let error ?at expected reason = raise_notrace (Invalid { at; expected; reason })

(* Validation is top-down: check the label and attributes of the node,
   then match the child sequence against the content model, recursing
   into children as dictated by the atoms they are matched with.  With
   derivative-based matching, an atom decides element membership by a
   recursive conformance test; this realizes local tree grammar
   validation. *)
let rec check_type ~unordered schema type_name t =
  if type_name = Schema.any_type_name then begin
    match t with
    | Tree.Element _ -> ()
    | Tree.Text _ ->
        error Schema.any_type_name "expected an element, found a text node"
  end
  else
    match Schema.find schema type_name with
    | None -> error type_name (Printf.sprintf "type %S not declared" type_name)
    | Some d -> (
        match t with
        | Tree.Text _ ->
            error type_name "expected an element, found a text node"
        | Tree.Element e ->
            if not (Label.equal e.label d.elt_label) then
              error ~at:e.id type_name
                (Printf.sprintf "label is %S, expected %S"
                   (Label.to_string e.label)
                   (Label.to_string d.elt_label));
            check_attrs type_name d e;
            check_content ~unordered schema type_name d e)

and check_attrs type_name d e =
  List.iter
    (fun (rule : Schema.attr_rule) ->
      if rule.required && not (List.mem_assoc rule.attr_name e.attrs) then
        error ~at:e.id type_name
          (Printf.sprintf "missing required attribute %S" rule.attr_name))
    d.attributes

and check_content ~unordered schema type_name d e =
  let children =
    if d.mixed then List.filter Tree.is_element e.children else e.children
  in
  let matches atom child =
    match (atom, child) with
    | Content_model.Text, Tree.Text _ -> true
    | Content_model.Text, Tree.Element _ -> false
    | Content_model.Wildcard, _ -> true
    | Content_model.Ref name, _ -> (
        match check_type ~unordered schema name child with
        | () -> true
        | exception Invalid _ -> false)
  in
  let accepted =
    if unordered then Content_model.matches_multiset ~matches children d.content
    else Content_model.matches_seq ~matches children d.content
  in
  if not accepted then
    error ~at:e.id type_name
      (Printf.sprintf "children do not match content model %s%s"
         (Content_model.to_string d.content)
         (if unordered then " (modulo sibling order)" else ""))

let tree ?(unordered = false) ~schema ~type_name t =
  match check_type ~unordered schema type_name t with
  | () -> Ok ()
  | exception Invalid e -> Error e

let conforms ?unordered ~schema ~type_name t =
  Result.is_ok (tree ?unordered ~schema ~type_name t)

let forest ?unordered ~schema ~type_names trees =
  if List.length type_names <> List.length trees then
    Error
      {
        at = None;
        expected = String.concat ", " type_names;
        reason =
          Printf.sprintf "arity mismatch: %d types, %d trees"
            (List.length type_names) (List.length trees);
      }
  else
    let rec go = function
      | [], [] -> Ok ()
      | ty :: tys, t :: ts -> (
          match tree ?unordered ~schema ~type_name:ty t with
          | Ok () -> go (tys, ts)
          | Error _ as e -> e)
      | _ -> assert false
    in
    go (type_names, trees)
