(** Content models.

    A content model constrains the child sequence of an element: a
    regular expression whose atoms are references to declared types,
    text nodes, or a wildcard.  Matching uses Brzozowski derivatives,
    which keeps the implementation small and worst-case linear in the
    input for the deterministic models used in practice. *)

type t =
  | Empty  (** Matches no sequence at all (the empty language). *)
  | Epsilon  (** Matches exactly the empty sequence. *)
  | Atom of atom
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

and atom =
  | Ref of string  (** A child element conforming to the named type. *)
  | Text  (** A text node. *)
  | Wildcard  (** Any single node, element or text. *)

(** {1 Constructors} *)

val seq : t list -> t
(** Right-nested sequence; [seq []] is {!Epsilon}. *)

val alt : t list -> t
(** Alternation; [alt []] is {!Empty}. *)

val ref_ : string -> t
val text : t
val wildcard : t
val star : t -> t
val plus : t -> t
val opt : t -> t

(** {1 Matching} *)

val nullable : t -> bool
(** Does the model accept the empty sequence? *)

val derivative : matches:(atom -> 'item -> bool) -> 'item -> t -> t
(** [derivative ~matches item m] is the residual model after consuming
    [item]; [matches] decides whether an atom accepts the item. *)

val matches_seq : matches:(atom -> 'item -> bool) -> 'item list -> t -> bool
(** Accept a whole sequence by iterated derivatives. *)

val matches_multiset : matches:(atom -> 'item -> bool) -> 'item list -> t -> bool
(** Unordered acceptance: does {e some permutation} of the items match
    the model?  This is the conformance notion for the paper's
    unordered trees, where service results accumulate at arbitrary
    positions among their siblings.  Backtracking over derivatives
    with empty-residual pruning; exponential worst case, linear on the
    deterministic models used in practice. *)

val atoms : t -> atom list
(** All atoms, left to right, without duplicates. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
