type t =
  | Empty
  | Epsilon
  | Atom of atom
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

and atom = Ref of string | Text | Wildcard

(* Smart constructors keep derivatives small by normalizing away
   Empty/Epsilon units as they appear. *)

let seq2 a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, x | x, Epsilon -> x
  | a, b -> Seq (a, b)

let alt2 a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | a, b -> if a = b then a else Alt (a, b)

let seq list = List.fold_right seq2 list Epsilon
let alt list = List.fold_right alt2 list Empty
let ref_ name = Atom (Ref name)
let text = Atom Text
let wildcard = Atom Wildcard

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as m -> m
  | m -> Star m

let plus = function Empty -> Empty | Epsilon -> Epsilon | m -> Plus m
let opt = function Empty | Epsilon -> Epsilon | m -> Opt m

let rec nullable = function
  | Empty | Atom _ -> false
  | Epsilon | Star _ | Opt _ -> true
  | Plus m -> nullable m
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

let rec derivative ~matches item = function
  | Empty | Epsilon -> Empty
  | Atom a -> if matches a item then Epsilon else Empty
  | Seq (x, y) ->
      let dx = seq2 (derivative ~matches item x) y in
      if nullable x then alt2 dx (derivative ~matches item y) else dx
  | Alt (x, y) -> alt2 (derivative ~matches item x) (derivative ~matches item y)
  | Star x as m -> seq2 (derivative ~matches item x) m
  | Plus x -> seq2 (derivative ~matches item x) (star x)
  | Opt x -> derivative ~matches item x

let matches_seq ~matches items model =
  let residual =
    List.fold_left (fun m item -> derivative ~matches item m) model items
  in
  nullable residual

(* Unordered acceptance: search for a permutation whose iterated
   derivative is nullable.  At each step, each remaining item is tried
   as the next consumed one; Empty residuals prune immediately, and
   items with equal behaviour need not be retried at the same step
   (symmetry breaking by the residual they produce). *)
let matches_multiset ~matches items model =
  let rec go model = function
    | [] -> nullable model
    | items ->
        let rec try_each tried seen_residuals = function
          | [] -> false
          | item :: rest ->
              let residual = derivative ~matches item model in
              let rest_items = List.rev_append tried rest in
              if residual <> Empty
                 && (not (List.mem residual seen_residuals))
                 && go residual rest_items
              then true
              else try_each (item :: tried) (residual :: seen_residuals) rest
        in
        try_each [] [] items
  in
  model <> Empty && go model items

let atoms model =
  let rec go acc = function
    | Empty | Epsilon -> acc
    | Atom a -> if List.mem a acc then acc else a :: acc
    | Seq (x, y) | Alt (x, y) -> go (go acc x) y
    | Star x | Plus x | Opt x -> go acc x
  in
  List.rev (go [] model)

let rec pp fmt = function
  | Empty -> Format.pp_print_string fmt "#empty"
  | Epsilon -> Format.pp_print_string fmt "()"
  | Atom (Ref n) -> Format.pp_print_string fmt n
  | Atom Text -> Format.pp_print_string fmt "#text"
  | Atom Wildcard -> Format.pp_print_string fmt "#any"
  | Seq (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | Alt (a, b) -> Format.fprintf fmt "(%a | %a)" pp a pp b
  | Star m -> Format.fprintf fmt "%a*" pp m
  | Plus m -> Format.fprintf fmt "%a+" pp m
  | Opt m -> Format.fprintf fmt "%a?" pp m

let to_string m = Format.asprintf "%a" pp m
let equal = ( = )
