lib/schema/content_model.mli: Format
