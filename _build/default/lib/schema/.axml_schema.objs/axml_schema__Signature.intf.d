lib/schema/signature.mli: Axml_xml Format Schema Validate
