lib/schema/content_model.ml: Format List
