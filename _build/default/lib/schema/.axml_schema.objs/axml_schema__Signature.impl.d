lib/schema/signature.ml: Format List Printf Schema String Validate
