lib/schema/validate.mli: Axml_xml Format Schema
