lib/schema/schema.mli: Axml_xml Content_model Format
