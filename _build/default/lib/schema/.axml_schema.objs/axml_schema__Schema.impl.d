lib/schema/schema.ml: Axml_xml Content_model Format List Map Printf String
