lib/schema/validate.ml: Axml_xml Content_model Format List Printf Result Schema String
