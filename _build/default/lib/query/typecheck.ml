module Schema = Axml_schema.Schema
module Cm = Axml_schema.Content_model
module Label = Axml_xml.Label

type error = string

let any = Schema.any_type_name
let all_types schema = any :: Schema.type_names schema

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l

let child_types schema type_name =
  if type_name = any then all_types schema
  else
    match Schema.find schema type_name with
    | None -> []
    | Some d ->
        dedup
          (List.concat_map
             (fun atom ->
               match atom with
               | Cm.Ref n when n = any -> all_types schema
               | Cm.Ref n -> [ n ]
               | Cm.Wildcard -> all_types schema
               | Cm.Text -> [])
             (Cm.atoms d.Schema.content))

let label_of schema type_name =
  if type_name = any then None
  else
    Option.map
      (fun (d : Schema.decl) -> d.elt_label)
      (Schema.find schema type_name)

let matches_test schema test type_name =
  match test with
  | Ast.Any_elt -> true
  | Ast.Name l -> (
      match label_of schema type_name with
      | Some dl -> Label.equal dl l
      | None -> type_name = any (* the universal type matches any label *))

(* Transitive closure of child_types. *)
let descendant_types schema froms =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | t :: rest ->
        let kids =
          List.filter (fun k -> not (List.mem k seen)) (child_types schema t)
        in
        go (seen @ kids) (rest @ kids)
  in
  go [] froms

let step_types schema froms (step : Ast.step) =
  let candidates =
    match step.axis with
    | Ast.Child -> dedup (List.concat_map (child_types schema) froms)
    | Ast.Descendant -> descendant_types schema froms
  in
  List.filter (matches_test schema step.test) candidates

let types_via_path schema ~from path =
  List.fold_left (step_types schema) (dedup from) path

let flwr_var_types schema ~input_types (q : Ast.flwr) =
  let tbl = Hashtbl.create 8 in
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc (b : Ast.binding) ->
        let* () = acc in
        let* origin =
          match b.source with
          | Ast.Input i ->
              if i < List.length input_types then Ok [ List.nth input_types i ]
              else Error (Printf.sprintf "input $%d has no declared type" i)
          | Ast.Var v -> (
              match Hashtbl.find_opt tbl v with
              | Some ts -> Ok ts
              | None -> Error (Printf.sprintf "variable %s unbound" v))
        in
        Hashtbl.replace tbl b.var (types_via_path schema ~from:origin b.path);
        Ok ())
      (Ok ()) q.bindings
  in
  Ok
    (List.map
       (fun (b : Ast.binding) ->
         (b.var, Option.value ~default:[] (Hashtbl.find_opt tbl b.var)))
       q.bindings)

let var_types schema ~inputs (q : Ast.t) =
  match q with
  | Ast.Flwr f -> flwr_var_types schema ~input_types:inputs f
  | Ast.Compose (head, _) ->
      (* The head consumes derived data whose precise types come from
         infer_output on the subs; for variable typing purposes treat
         them as universal. *)
      flwr_var_types schema
        ~input_types:(List.init head.arity (fun _ -> any))
        head

(* Synthesize content-model pieces and auxiliary declarations for a
   construct.  Returns (model, produces_text, new_decls). *)
let rec construct_model schema ~vtypes ~fresh (c : Ast.construct) =
  match c with
  | Ast.Text _ -> (Cm.Epsilon, true, [])
  | Ast.Content_of _ -> (Cm.Epsilon, true, [])
  | Ast.Attr_content _ -> (Cm.Epsilon, true, [])
  | Ast.Copy_of v -> (
      match List.assoc_opt v vtypes with
      | None | Some [] -> (Cm.Empty, false, [])
      | Some ts ->
          let atom t = if t = any then Cm.wildcard else Cm.ref_ t in
          (Cm.alt (List.map atom ts), false, []))
  | Ast.Elem { label; attrs = _; children } ->
      let models, texts, decls =
        List.fold_left
          (fun (ms, txt, ds) child ->
            let m, t, d = construct_model schema ~vtypes ~fresh child in
            (ms @ [ m ], txt || t, ds @ d))
          ([], false, []) children
      in
      let name = fresh () in
      let decl =
        Schema.decl ~name ~label:(Label.to_string label) ~mixed:texts
          ~content:(Cm.seq models) ()
      in
      (Cm.ref_ name, false, decls @ [ decl ])

let infer_output schema ~inputs ~prefix (q : Ast.t) =
  let ( let* ) = Result.bind in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter
  in
  let rec go schema q =
    match q with
    | Ast.Flwr f ->
        let* vtypes = flwr_var_types schema ~input_types:inputs f in
        (match f.return_ with
        | Ast.Copy_of v ->
            Ok (schema, Option.value ~default:[] (List.assoc_opt v vtypes))
        | Ast.Text _ | Ast.Content_of _ | Ast.Attr_content _ ->
            Error "the query returns bare text, which has no element type"
        | Ast.Elem _ as c ->
            let model, _texts, decls = construct_model schema ~vtypes ~fresh c in
            let* root_name =
              match model with
              | Cm.Atom (Cm.Ref n) -> Ok n
              | _ -> Error "internal: element construct must synthesize a type"
            in
            let* schema =
              List.fold_left
                (fun acc d ->
                  let* s = acc in
                  match Schema.add d s with
                  | s -> Ok s
                  | exception Invalid_argument msg -> Error msg)
                (Ok schema) decls
            in
            Ok (schema, [ root_name ]))
    | Ast.Compose (head, _) ->
        (* Sub-query outputs are derived; type the head with universal
           inputs — sound, loses precision. *)
        go schema (Ast.Flwr { head with arity = List.length inputs })
  in
  go schema q

