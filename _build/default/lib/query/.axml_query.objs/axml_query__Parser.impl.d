lib/query/parser.ml: Ast Axml_xml Buffer Format List Printf String
