lib/query/ast.mli: Axml_xml Format
