lib/query/typecheck.mli: Ast Axml_schema Axml_xml
