lib/query/ast.ml: Axml_xml Float Format List Printf Result String
