lib/query/parser.mli: Ast Format
