lib/query/selectivity.ml: Array Ast Axml_xml Eval Float List Map Option String
