lib/query/compose.ml: Ast List Printf
