lib/query/incremental.ml: Array Ast Axml_xml Eval Hashtbl List Option
