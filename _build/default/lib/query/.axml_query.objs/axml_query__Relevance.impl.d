lib/query/relevance.ml: Array Ast Axml_xml Hashtbl List Option
