lib/query/eval.mli: Ast Axml_xml
