lib/query/incremental.mli: Ast Axml_xml
