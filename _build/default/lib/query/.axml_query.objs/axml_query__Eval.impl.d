lib/query/eval.ml: Array Ast Axml_xml Float List Option Printf String
