lib/query/relevance.mli: Ast Axml_xml
