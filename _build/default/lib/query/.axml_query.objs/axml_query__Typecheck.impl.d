lib/query/typecheck.ml: Ast Axml_schema Axml_xml Hashtbl List Option Printf Result
