lib/query/optimize.mli: Ast Axml_xml Selectivity
