lib/query/selectivity.mli: Ast Axml_xml
