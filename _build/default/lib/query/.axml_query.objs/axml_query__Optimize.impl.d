lib/query/optimize.ml: Ast Axml_xml Eval List Option Selectivity
