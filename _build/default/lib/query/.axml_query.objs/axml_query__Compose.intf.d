lib/query/compose.mli: Ast
