module Label = Axml_xml.Label

(* NFA states over a path s1…sn: the integer i means "about to match
   step i"; i = n is accepting.  On a label l:
     Child t:      i -> i+1              if t matches l
     Descendant t: i -> i (skip a level) and i -> i+1 if t matches l *)
let test_matches test l =
  match test with Ast.Any_elt -> true | Ast.Name n -> Label.equal n l

let step_on steps l states =
  let n = Array.length steps in
  List.sort_uniq compare
    (List.concat_map
       (fun i ->
         if i >= n then []
         else
           match steps.(i) with
           | { Ast.axis = Ast.Child; test } ->
               if test_matches test l then [ i + 1 ] else []
           | { Ast.axis = Ast.Descendant; test } ->
               i :: (if test_matches test l then [ i + 1 ] else []))
       states)

let path_may_enter (path : Ast.path) ~prefix =
  let steps = Array.of_list path in
  let n = Array.length steps in
  let rec go states = function
    | [] ->
        (* Exhausted π with live states: the query can still descend
           into the subtree (or already accepted an ancestor). *)
        states <> []
    | l :: rest ->
        if List.mem n states then true (* bound an ancestor of π *)
        else
          let next = step_on steps l states in
          next <> [] && go next rest
  in
  go [ 0 ] prefix

(* Absolute binding paths w.r.t. one input: chase Var chains and
   append Exists predicate paths. *)
let flwr_paths (q : Ast.flwr) ~input =
  let absolute = Hashtbl.create 8 in
  let bound = ref [] in
  List.iter
    (fun (b : Ast.binding) ->
      match b.source with
      | Ast.Input i when i = input ->
          Hashtbl.replace absolute b.var b.path;
          bound := b.var :: !bound
      | Ast.Input _ -> ()
      | Ast.Var v -> (
          match Hashtbl.find_opt absolute v with
          | Some base ->
              Hashtbl.replace absolute b.var (base @ b.path);
              bound := b.var :: !bound
          | None -> ()))
    q.bindings;
  let binding_paths =
    List.filter_map (Hashtbl.find_opt absolute) (List.rev !bound)
  in
  let exists_paths =
    List.filter_map
      (function
        | Ast.Exists (v, p) ->
            Option.map (fun base -> base @ p) (Hashtbl.find_opt absolute v)
        | _ -> None)
      ((* Collect atoms through conjunction, disjunction and negation:
          all of them inspect their paths. *)
       let rec atoms acc = function
         | Ast.And (a, b) | Ast.Or (a, b) -> atoms (atoms acc a) b
         | Ast.Not p -> atoms acc p
         | (Ast.Exists _ | Ast.Cmp _ | Ast.True) as p -> p :: acc
       in
       atoms [] q.where)
  in
  binding_paths @ exists_paths

let rec query_paths (q : Ast.t) ~input =
  match q with
  | Ast.Flwr f -> flwr_paths f ~input
  | Ast.Compose (_, subs) ->
      List.concat_map (fun sub -> query_paths sub ~input) subs

let relevant q ~input ~prefix =
  prefix = []
  || List.exists (fun p -> path_may_enter p ~prefix) (query_paths q ~input)
