(** Query composition and decomposition (rule (11) and Example 1).

    Rule (11): if q ≡ q1(q2, …, qn) then evaluation distributes over
    the composition.  This module builds composed queries, recognizes
    decomposition opportunities, and implements the selection-pushing
    decomposition of Example 1: q ≡ q1(σ(q2)) with σ pushed down as far
    as possible. *)

val projection : arity:int -> input:int -> Ast.t
(** The query of the given arity that copies input forest [#input]
    unchanged and ignores the others. *)

val identity : Ast.t
(** [projection ~arity:1 ~input:0]: the unary identity query. *)

val compose : Ast.t -> Ast.t list -> Ast.t
(** [compose q1 subs] is q1(subs…).
    @raise Invalid_argument if arities do not line up (q1's arity must
    equal [List.length subs]; all subs must agree on arity). *)

val selection : arity:int -> path:Ast.path -> where:Ast.pred -> Ast.t
(** σ: the unary-shaped selection [query(arity) for $x in $0<path>
    where <pred($x)> return {$x}] — keeps matching nodes whole.  The
    predicate must reference only the variable ["x"]. *)

type split = {
  outer : Ast.t;  (** q1: runs where the original query ran. *)
  pushed : Ast.t;  (** q3 = σ(q2): runs next to the data. *)
}

val push_selection : Ast.t -> split option
(** Example 1.  For a [Flwr] query whose first binding draws from
    [Input 0], split the [where] clause into conjuncts that depend only
    on the first bound variable (pushed into q3, evaluated at the data)
    and the rest (kept in q1).  Returns [None] if the query has no
    first-input binding or nothing can be pushed.

    The contract, verified by property tests:
    [eval q inputs ≡ eval outer (eval pushed inputs :: tl inputs)]
    — modulo fresh node identifiers, i.e. up to {!Axml_xml.Canonical}
    forest equality. *)

val apply_split : split -> Ast.t
(** Recompose a split into the equivalent composed query
    q1(q3, π1, …, πn-1) where πi projects input i. *)
