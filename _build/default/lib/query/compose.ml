let projection ~arity ~input =
  if input < 0 || input >= arity then
    invalid_arg "Compose.projection: input out of range";
  Ast.Flwr
    {
      arity;
      bindings = [ { Ast.var = "x"; source = Ast.Input input; path = [] } ];
      where = Ast.True;
      return_ = Ast.Copy_of "x";
    }

let identity = projection ~arity:1 ~input:0

let compose q1 subs =
  let head =
    match q1 with
    | Ast.Flwr f -> f
    | Ast.Compose _ ->
        invalid_arg "Compose.compose: head of a composition must be a Flwr"
  in
  let q = Ast.Compose (head, subs) in
  match Ast.check q with
  | Ok () -> q
  | Error msg -> invalid_arg ("Compose.compose: " ^ msg)

let selection ~arity ~path ~where =
  (match List.filter (fun v -> v <> "x") (Ast.pred_vars where) with
  | [] -> ()
  | v :: _ ->
      invalid_arg
        (Printf.sprintf
           "Compose.selection: predicate refers to %s; only \"x\" is bound" v));
  Ast.Flwr
    {
      arity;
      bindings = [ { Ast.var = "x"; source = Ast.Input 0; path } ];
      where;
      return_ = Ast.Copy_of "x";
    }

type split = { outer : Ast.t; pushed : Ast.t }

(* Example 1: split q into q1(σ(q2)).  The first binding (over input 0)
   together with the conjuncts that mention only its variable form the
   pushed selection; the outer query re-binds the variable over the
   selection's output roots. *)
let push_selection = function
  | Ast.Compose _ -> None
  | Ast.Flwr q -> (
      match q.bindings with
      | ({ source = Ast.Input 0; _ } as b0) :: rest ->
          let other_uses_input0 =
            List.exists
              (fun (b : Ast.binding) -> b.source = Ast.Input 0)
              rest
          in
          if other_uses_input0 then None
          else begin
            let local, remote =
              List.partition
                (fun conjunct ->
                  match Ast.pred_vars conjunct with
                  | [ v ] -> v = b0.var
                  | [] | _ :: _ -> false)
                (Ast.conjuncts q.where)
            in
            if local = [] then None
            else
              let pushed =
                Ast.Flwr
                  {
                    arity = q.arity;
                    bindings = [ b0 ];
                    where = Ast.conj local;
                    return_ = Ast.Copy_of b0.var;
                  }
              in
              let outer =
                Ast.Flwr
                  {
                    arity = q.arity;
                    bindings = { b0 with path = [] } :: rest;
                    where = Ast.conj remote;
                    return_ = q.return_;
                  }
              in
              Some { outer; pushed }
          end
      | _ -> None)

let apply_split { outer; pushed } =
  let arity = Ast.arity pushed in
  let subs =
    pushed :: List.init (arity - 1) (fun i -> projection ~arity ~input:(i + 1))
  in
  (* The outer query of a split has the same arity as the original; as
     a composition head it consumes one intermediate per sub. *)
  compose outer subs
