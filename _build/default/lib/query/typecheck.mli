(** Static typing of queries against schemas.

    Services carry signatures (τin, τout) (Section 2.1); when a
    service is {e declarative}, its output type need not be declared
    blindly — it can be inferred from the implementing query and the
    input types.  This module implements the inference:

    - {e path typing}: the set of declared types a path can reach from
      a set of origin types, by evaluating the path over the grammar
      instead of over data;
    - {e variable typing}: each [for] variable gets the types its
      binding path can produce (chasing [Var] chains);
    - {e output synthesis}: the [return] construct is turned into
      fresh type declarations over the variables' types, extending the
      schema.

    Soundness (property-tested): every tree the query emits on inputs
    conforming to the input types validates against one of the
    inferred output types. *)

type error = string

val child_types : Axml_schema.Schema.t -> string -> string list
(** Types that may occur as element children of the given type
    (atoms of its content model; [Wildcard] and references to
    {!Axml_schema.Schema.any_type_name} yield every declared type plus
    the universal type). *)

val types_via_path :
  Axml_schema.Schema.t -> from:string list -> Ast.path -> string list
(** Grammar-level path evaluation.  The universal type propagates: a
    step from [#any] can reach any declared type and [#any] itself. *)

val var_types :
  Axml_schema.Schema.t -> inputs:string list -> Ast.t ->
  ((string * string list) list, error) result
(** The possible types of every variable of a FLWR block (composed
    queries: of the head, over the inferred outputs of the
    sub-queries).  An empty list for a variable means its binding path
    is unsatisfiable under the schema — the query returns nothing on
    typed inputs. *)

val infer_output :
  Axml_schema.Schema.t ->
  inputs:string list ->
  prefix:string ->
  Ast.t ->
  (Axml_schema.Schema.t * string list, error) result
(** Synthesize declarations for the query's output trees: returns the
    extended schema and the possible output type names (fresh names
    derived from [prefix]).  A [Copy_of] at the top of the [return]
    clause yields the bound variable's types directly. *)

val label_of :
  Axml_schema.Schema.t -> string -> Axml_xml.Label.t option
(** The element label a declared type requires ([None] for the
    universal type and undeclared names). *)
