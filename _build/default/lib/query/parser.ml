module Label = Axml_xml.Label

type error = { position : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "query parse error at offset %d: %s" e.position e.message

exception Parse_error of error

type state = { src : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1
let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let skip_ws st = while (not (eof st)) && is_ws (peek st) do advance st done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let eat st prefix =
  if looking_at st prefix then begin
    st.pos <- st.pos + String.length prefix;
    true
  end
  else false

let expect st prefix =
  if not (eat st prefix) then fail st (Printf.sprintf "expected %S" prefix)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let read_ident st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && is_ident_char (peek st) do advance st done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.src start (st.pos - start)

(* A keyword must not be glued to a longer identifier. *)
let eat_keyword st kw =
  skip_ws st;
  let n = String.length kw in
  if
    looking_at st kw
    && (st.pos + n >= String.length st.src
       || not (is_ident_char st.src.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let expect_keyword st kw =
  if not (eat_keyword st kw) then fail st (Printf.sprintf "expected %S" kw)

let read_string_lit st =
  skip_ws st;
  expect st "\"";
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          if eof st then fail st "unterminated escape"
          else begin
            (match peek st with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            advance st;
            go ()
          end
      | c ->
          Buffer.add_char buf c;
          advance st;
          go ()
  in
  go ();
  Buffer.contents buf

let read_number st =
  skip_ws st;
  let start = st.pos in
  if peek st = '-' then advance st;
  while (not (eof st)) && ((peek st >= '0' && peek st <= '9') || peek st = '.') do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail st (Printf.sprintf "invalid number %S" s)

let read_var st =
  skip_ws st;
  expect st "$";
  read_ident st

let read_path st =
  let rec go acc =
    let axis =
      if looking_at st "//" then begin
        st.pos <- st.pos + 2;
        Some Ast.Descendant
      end
      else if peek st = '/' then begin
        advance st;
        Some Ast.Child
      end
      else None
    in
    match axis with
    | None -> List.rev acc
    | Some axis ->
        let test =
          if eat st "*" then Ast.Any_elt
          else Ast.Name (Label.of_string (read_ident st))
        in
        go ({ Ast.axis; test } :: acc)
  in
  go []

let read_source st =
  skip_ws st;
  expect st "$";
  skip_ws st;
  let c = peek st in
  if c >= '0' && c <= '9' then begin
    let start = st.pos in
    while (not (eof st)) && peek st >= '0' && peek st <= '9' do advance st done;
    Ast.Input (int_of_string (String.sub st.src start (st.pos - start)))
  end
  else Ast.Var (read_ident st)

let read_operand st =
  skip_ws st;
  if peek st = '"' then Ast.Const (read_string_lit st)
  else if peek st = '-' || (peek st >= '0' && peek st <= '9') then
    Ast.Number (read_number st)
  else if eat_keyword st "text" then begin
    skip_ws st;
    expect st "(";
    let v = read_var st in
    skip_ws st;
    expect st ")";
    Ast.Text_of v
  end
  else if eat_keyword st "attr" then begin
    skip_ws st;
    expect st "(";
    let v = read_var st in
    skip_ws st;
    expect st ",";
    let a = read_string_lit st in
    skip_ws st;
    expect st ")";
    Ast.Attr_of (v, a)
  end
  else fail st "expected an operand"

let read_cmp_op st =
  skip_ws st;
  if eat st "!=" then Ast.Neq
  else if eat st "<=" then Ast.Le
  else if eat st ">=" then Ast.Ge
  else if eat st "=" then Ast.Eq
  else if eat st "<" then Ast.Lt
  else if eat st ">" then Ast.Gt
  else if eat_keyword st "contains" then Ast.Contains
  else fail st "expected a comparison operator"

let rec read_pred st = read_or st

and read_or st =
  let left = read_and st in
  if eat_keyword st "or" then Ast.Or (left, read_or st) else left

and read_and st =
  let left = read_unary st in
  if eat_keyword st "and" then Ast.And (left, read_and st) else left

and read_unary st =
  skip_ws st;
  if eat_keyword st "not" then Ast.Not (read_unary st)
  else if eat_keyword st "true" then Ast.True
  else if eat_keyword st "exists" then begin
    skip_ws st;
    expect st "(";
    let v = read_var st in
    let p = read_path st in
    skip_ws st;
    expect st ")";
    Ast.Exists (v, p)
  end
  else if peek st = '(' then begin
    advance st;
    let p = read_pred st in
    skip_ws st;
    expect st ")";
    p
  end
  else
    let a = read_operand st in
    let op = read_cmp_op st in
    let b = read_operand st in
    Ast.Cmp (a, op, b)

let rec read_construct st =
  skip_ws st;
  if peek st = '"' then Ast.Text (read_string_lit st)
  else if peek st = '{' then begin
    advance st;
    skip_ws st;
    let c =
      if eat_keyword st "text" then begin
        skip_ws st;
        expect st "(";
        let v = read_var st in
        skip_ws st;
        expect st ")";
        Ast.Content_of v
      end
      else if eat_keyword st "attr" then begin
        skip_ws st;
        expect st "(";
        let v = read_var st in
        skip_ws st;
        expect st ",";
        let a = read_string_lit st in
        skip_ws st;
        expect st ")";
        Ast.Attr_content (v, a)
      end
      else Ast.Copy_of (read_var st)
    in
    skip_ws st;
    expect st "}";
    c
  end
  else if peek st = '<' then read_element st
  else fail st "expected a construct"

and read_element st =
  expect st "<";
  let name = read_ident st in
  let label = Label.of_string name in
  let rec read_attrs acc =
    skip_ws st;
    if peek st = '/' || peek st = '>' then List.rev acc
    else begin
      let k = read_ident st in
      skip_ws st;
      expect st "=";
      let v = read_string_lit st in
      read_attrs ((k, v) :: acc)
    end
  in
  let attrs = read_attrs [] in
  skip_ws st;
  if eat st "/>" then Ast.Elem { label; attrs; children = [] }
  else begin
    expect st ">";
    let rec read_children acc =
      skip_ws st;
      if looking_at st "</" then List.rev acc
      else read_children (read_construct st :: acc)
    in
    let children = read_children [] in
    expect st "</";
    let close = read_ident st in
    if close <> name then
      fail st (Printf.sprintf "mismatched </%s>, expected </%s>" close name);
    skip_ws st;
    expect st ">";
    Ast.Elem { label; attrs; children }
  end

let read_binding st =
  let var = read_var st in
  expect_keyword st "in";
  let source = read_source st in
  let path = read_path st in
  { Ast.var; source; path }

let read_flwr st =
  expect_keyword st "query";
  skip_ws st;
  expect st "(";
  skip_ws st;
  let arity = int_of_float (read_number st) in
  skip_ws st;
  expect st ")";
  let bindings =
    if eat_keyword st "for" then begin
      let rec go acc =
        let b = read_binding st in
        skip_ws st;
        if eat st "," then go (b :: acc) else List.rev (b :: acc)
      in
      go []
    end
    else []
  in
  let where = if eat_keyword st "where" then read_pred st else Ast.True in
  expect_keyword st "return";
  let return_ = read_construct st in
  { Ast.arity; bindings; where; return_ }

let rec read_query st =
  skip_ws st;
  if eat_keyword st "compose" then begin
    skip_ws st;
    expect st "{";
    let head = read_flwr st in
    skip_ws st;
    expect st "}";
    skip_ws st;
    expect st "(";
    let rec read_subs acc =
      skip_ws st;
      expect st "{";
      let q = read_query st in
      skip_ws st;
      expect st "}";
      skip_ws st;
      if eat st ";" then read_subs (q :: acc) else List.rev (q :: acc)
    in
    let subs = if (skip_ws st; peek st = ')') then [] else read_subs [] in
    skip_ws st;
    expect st ")";
    Ast.Compose (head, subs)
  end
  else Ast.Flwr (read_flwr st)

let run f =
  match f () with
  | v -> Ok v
  | exception Parse_error e -> Error e
  | exception Invalid_argument msg -> Error { position = -1; message = msg }

let parse s =
  run (fun () ->
      let st = { src = s; pos = 0 } in
      let q = read_query st in
      skip_ws st;
      if not (eof st) then fail st "trailing input after query";
      match Ast.check q with
      | Ok () -> q
      | Error message -> raise (Parse_error { position = st.pos; message }))

let parse_exn s =
  match parse s with Ok q -> q | Error e -> raise (Parse_error e)

let parse_path s =
  run (fun () ->
      let st = { src = s; pos = 0 } in
      let p = read_path st in
      skip_ws st;
      if not (eof st) then fail st "trailing input after path";
      p)
