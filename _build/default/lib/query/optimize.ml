let rec simplify_pred (p : Ast.pred) : Ast.pred =
  match p with
  | Ast.True -> Ast.True
  | Ast.Cmp (Ast.Const a, op, Ast.Const b) ->
      if Eval.holds (Ast.Cmp (Ast.Const a, op, Ast.Const b)) [] then Ast.True
      else Ast.Not Ast.True
  | Ast.Cmp (Ast.Number a, op, Ast.Number b) ->
      if Eval.holds (Ast.Cmp (Ast.Number a, op, Ast.Number b)) [] then Ast.True
      else Ast.Not Ast.True
  | Ast.Cmp _ -> p
  | Ast.Exists _ -> p
  | Ast.Not q -> (
      match simplify_pred q with
      | Ast.Not r -> r (* double negation *)
      | q -> Ast.Not q)
  | Ast.And (a, b) -> (
      match (simplify_pred a, simplify_pred b) with
      | Ast.True, x | x, Ast.True -> x
      | Ast.Not Ast.True, _ | _, Ast.Not Ast.True -> Ast.Not Ast.True
      | a, b -> Ast.And (a, b))
  | Ast.Or (a, b) -> (
      match (simplify_pred a, simplify_pred b) with
      | Ast.True, _ | _, Ast.True -> Ast.True
      | Ast.Not Ast.True, x | x, Ast.Not Ast.True -> x
      | a, b -> Ast.Or (a, b))

(* A binding's score: how many conjuncts become checkable once it is
   bound (more is better — schedule it early), then its estimated
   match count (fewer is better).  Dependencies constrain the order:
   a Var-sourced binding must follow its source. *)
let binding_score ~conjuncts ~stats (b : Ast.binding) =
  let enables =
    List.length
      (List.filter
         (fun c -> List.mem b.var (Ast.pred_vars c))
         conjuncts)
  in
  let estimated_matches =
    match (b.source, stats) with
    | Ast.Input i, Some stats when i < List.length stats ->
        let st = List.nth stats i in
        let last =
          List.fold_left
            (fun acc (s : Ast.step) ->
              match s.test with
              | Ast.Name l -> Selectivity.Stats.label_count st l
              | Ast.Any_elt -> acc)
            (Selectivity.Stats.total_nodes st)
            b.path
        in
        last
    | _ -> 1000
  in
  (-enables, estimated_matches)

let reorder_flwr ?stats (q : Ast.flwr) =
  let conjuncts = Ast.conjuncts q.where in
  (* Greedy topological order: among the bindings whose dependencies
     are satisfied, pick the best-scoring one. *)
  let rec schedule placed pending =
    if pending = [] then List.rev placed
    else begin
      let ready =
        List.filter
          (fun (b : Ast.binding) ->
            match b.source with
            | Ast.Input _ -> true
            | Ast.Var v ->
                List.exists (fun (p : Ast.binding) -> p.var = v) placed)
          pending
      in
      match ready with
      | [] -> List.rev_append placed pending (* cycle-proof fallback *)
      | ready ->
          let best =
            List.fold_left
              (fun acc b ->
                match acc with
                | None -> Some b
                | Some current ->
                    if
                      binding_score ~conjuncts ~stats b
                      < binding_score ~conjuncts ~stats current
                    then Some b
                    else acc)
              None ready
          in
          let best = Option.get best in
          schedule (best :: placed)
            (List.filter (fun b -> b != best) pending)
    end
  in
  { q with bindings = schedule [] q.bindings }

let rec reorder_bindings ?stats (q : Ast.t) =
  match q with
  | Ast.Flwr f -> Ast.Flwr (reorder_flwr ?stats f)
  | Ast.Compose (head, subs) ->
      Ast.Compose
        (reorder_flwr head, List.map (reorder_bindings ?stats) subs)

let rec simplify (q : Ast.t) =
  match q with
  | Ast.Flwr f -> Ast.Flwr { f with where = simplify_pred f.where }
  | Ast.Compose (head, subs) ->
      Ast.Compose
        ({ head with where = simplify_pred head.where }, List.map simplify subs)

let optimize ?stats q = reorder_bindings ?stats (simplify q)

let enumeration_cost q inputs =
  let gen = Axml_xml.Node_id.Gen.create ~namespace:"enumcost" in
  snd (Eval.eval_counted ~gen q inputs)
