type t = { query : Ast.t; seen : Axml_xml.Forest.t array }

let create q =
  (match Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Incremental.create: " ^ msg));
  { query = q; seen = Array.make (max 1 (Ast.arity q)) [] }

let query t = t.query
let seen t i = t.seen.(i)

let with_input forests i value =
  List.mapi (fun j f -> if j = i then value else f) forests

(* Multiset difference [full − old] by canonical fingerprints. *)
let multiset_diff full old =
  let tbl = Hashtbl.create 16 in
  let count t =
    let k = Axml_xml.Canonical.fingerprint t in
    Hashtbl.replace tbl k
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter count old;
  List.filter
    (fun t ->
      let k = Axml_xml.Canonical.fingerprint t in
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 ->
          Hashtbl.replace tbl k (n - 1);
          false
      | Some _ | None -> true)
    full

(* The delta of one arriving tree.  When the query is a single FLWR
   block in which exactly one binding draws from the touched input, the
   new output tuples are exactly those whose pinned binding root lies
   in the delta — so we evaluate once with the input restricted to the
   delta.  Otherwise (several bindings on the same input, or a
   composition) we fall back to the reference semantics
   eval(after) − eval(before), a canonical multiset difference. *)
let eval_delta ~gen (q : Ast.t) seen ~input ~(delta : Axml_xml.Forest.t) =
  let arity = Ast.arity q in
  let before = Array.to_list (Array.sub seen 0 arity) in
  let single_occurrence =
    match q with
    | Ast.Flwr f ->
        List.length
          (List.filter
             (fun (b : Ast.binding) -> b.source = Ast.Input input)
             f.bindings)
        = 1
    | Ast.Compose _ -> false
  in
  if single_occurrence then Eval.eval ~gen q (with_input before input delta)
  else begin
    let after = with_input before input (seen.(input) @ delta) in
    multiset_diff (Eval.eval ~gen q after) (Eval.eval ~gen q before)
  end

let push ~gen t ~input tree =
  if input < 0 || input >= Array.length t.seen then
    invalid_arg "Incremental.push: input out of range";
  let delta = [ tree ] in
  let out = eval_delta ~gen t.query t.seen ~input ~delta in
  t.seen.(input) <- t.seen.(input) @ delta;
  out

let push_forest ~gen t ~input forest =
  List.concat_map (fun tree -> push ~gen t ~input tree) forest

let total_output ~gen t =
  Eval.eval ~gen t.query
    (Array.to_list (Array.sub t.seen 0 (Ast.arity t.query)))
