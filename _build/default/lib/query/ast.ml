module Label = Axml_xml.Label

type axis = Child | Descendant
type test = Name of Label.t | Any_elt
type step = { axis : axis; test : test }
type path = step list
type source = Input of int | Var of string

type operand =
  | Const of string
  | Number of float
  | Text_of of string
  | Attr_of of string * string

type cmp = Eq | Neq | Lt | Le | Gt | Ge | Contains

type pred =
  | True
  | Cmp of operand * cmp * operand
  | Exists of string * path
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type construct =
  | Elem of {
      label : Label.t;
      attrs : (string * string) list;
      children : construct list;
    }
  | Text of string
  | Copy_of of string
  | Content_of of string
  | Attr_content of string * string

type binding = { var : string; source : source; path : path }

type flwr = {
  arity : int;
  bindings : binding list;
  where : pred;
  return_ : construct;
}

type t = Flwr of flwr | Compose of flwr * t list

let child name = { axis = Child; test = Name (Label.of_string name) }
let desc name = { axis = Descendant; test = Name (Label.of_string name) }
let child_any = { axis = Child; test = Any_elt }
let desc_any = { axis = Descendant; test = Any_elt }

let flwr ?(where = True) ~arity bindings return_ =
  Flwr { arity; bindings; where; return_ }

let rec conj = function
  | [] -> True
  | [ p ] -> p
  | p :: rest -> And (p, conj rest)

let conjuncts p =
  let rec go acc = function
    | True -> acc
    | And (a, b) -> go (go acc a) b
    | p -> p :: acc
  in
  List.rev (go [] p)

let arity = function Flwr q -> q.arity | Compose (_, qs) -> (
    match qs with [] -> 0 | q :: _ -> (
      match q with Flwr f -> f.arity | Compose (f, _) -> f.arity))

let operand_vars = function
  | Const _ | Number _ -> []
  | Text_of v | Attr_of (v, _) -> [ v ]

let rec pred_vars_in_order = function
  | True -> []
  | Cmp (a, _, b) -> operand_vars a @ operand_vars b
  | Exists (v, _) -> [ v ]
  | And (a, b) | Or (a, b) -> pred_vars_in_order a @ pred_vars_in_order b
  | Not p -> pred_vars_in_order p

let dedup vs = List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ]) [] vs
let pred_vars p = dedup (pred_vars_in_order p)

let rec construct_vars_acc acc = function
  | Elem { children; _ } -> List.fold_left construct_vars_acc acc children
  | Text _ -> acc
  | Copy_of v | Content_of v | Attr_content (v, _) -> v :: acc

let construct_vars c = dedup (List.rev (construct_vars_acc [] c))

let check_flwr q =
  let ( let* ) = Result.bind in
  let* bound =
    List.fold_left
      (fun acc b ->
        let* bound = acc in
        let* () =
          if List.mem b.var bound then
            Error (Printf.sprintf "variable %s bound twice" b.var)
          else Ok ()
        in
        let* () =
          match b.source with
          | Input i when i < 0 || i >= q.arity ->
              Error (Printf.sprintf "input $%d out of range (arity %d)" i q.arity)
          | Input _ -> Ok ()
          | Var v when not (List.mem v bound) ->
              Error (Printf.sprintf "variable %s used before binding" v)
          | Var _ -> Ok ()
        in
        Ok (b.var :: bound))
      (Ok []) q.bindings
  in
  let check_used context vs =
    match List.find_opt (fun v -> not (List.mem v bound)) vs with
    | Some v -> Error (Printf.sprintf "unbound variable %s in %s" v context)
    | None -> Ok ()
  in
  let* () = check_used "where clause" (pred_vars q.where) in
  check_used "return clause" (construct_vars q.return_)

let rec check = function
  | Flwr q -> check_flwr q
  | Compose (head, subs) ->
      let ( let* ) = Result.bind in
      let* () = check_flwr head in
      let* () =
        if head.arity <> List.length subs then
          Error
            (Printf.sprintf
               "composition head has arity %d but %d sub-queries are given"
               head.arity (List.length subs))
        else Ok ()
      in
      let* () =
        match subs with
        | [] -> Ok ()
        | first :: rest ->
            let a = arity first in
            if List.for_all (fun q -> arity q = a) rest then Ok ()
            else Error "sub-queries of a composition disagree on arity"
      in
      List.fold_left
        (fun acc q ->
          let* () = acc in
          check q)
        (Ok ()) subs

(* Concrete syntax, kept parseable by Parser. *)

let step_to_string { axis; test } =
  let slash = match axis with Child -> "/" | Descendant -> "//" in
  let name = match test with Name l -> Label.to_string l | Any_elt -> "*" in
  slash ^ name

let path_to_string p = String.concat "" (List.map step_to_string p)

let source_to_string = function
  | Input i -> Printf.sprintf "$%d" i
  | Var v -> "$" ^ v

let operand_to_string = function
  | Const s -> Printf.sprintf "%S" s
  | Number f ->
      if Float.is_integer f then Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Text_of v -> Printf.sprintf "text($%s)" v
  | Attr_of (v, a) -> Printf.sprintf "attr($%s, %S)" v a

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Contains -> "contains"

let rec pred_to_string = function
  | True -> "true"
  | Cmp (a, op, b) ->
      Printf.sprintf "%s %s %s" (operand_to_string a) (cmp_to_string op)
        (operand_to_string b)
  | Exists (v, p) -> Printf.sprintf "exists($%s%s)" v (path_to_string p)
  | And (a, b) ->
      Printf.sprintf "(%s and %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s or %s)" (pred_to_string a) (pred_to_string b)
  | Not p -> Printf.sprintf "(not %s)" (pred_to_string p)

let rec construct_to_string = function
  | Text s -> Printf.sprintf "%S" s
  | Copy_of v -> Printf.sprintf "{$%s}" v
  | Content_of v -> Printf.sprintf "{text($%s)}" v
  | Attr_content (v, a) -> Printf.sprintf "{attr($%s, %S)}" v a
  | Elem { label; attrs; children } ->
      let attrs =
        List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs
        |> String.concat ""
      in
      let name = Label.to_string label in
      if children = [] then Printf.sprintf "<%s%s/>" name attrs
      else
        Printf.sprintf "<%s%s>%s</%s>" name attrs
          (String.concat " " (List.map construct_to_string children))
          name

let binding_to_string b =
  Printf.sprintf "$%s in %s%s" b.var (source_to_string b.source)
    (path_to_string b.path)

let flwr_to_string q =
  let for_clause =
    match q.bindings with
    | [] -> ""
    | bindings ->
        " for " ^ String.concat ", " (List.map binding_to_string bindings)
  in
  let where =
    match q.where with
    | True -> ""
    | p -> " where " ^ pred_to_string p
  in
  Printf.sprintf "query(%d)%s%s return %s" q.arity for_clause where
    (construct_to_string q.return_)

let rec to_string = function
  | Flwr q -> flwr_to_string q
  | Compose (head, subs) ->
      Printf.sprintf "compose { %s } (%s)" (flwr_to_string head)
        (String.concat "; " (List.map (fun q -> "{ " ^ to_string q ^ " }") subs))

let pp fmt q = Format.pp_print_string fmt (to_string q)
let equal (a : t) (b : t) = a = b
