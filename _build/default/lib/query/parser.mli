(** Concrete syntax parser for queries.

    The syntax is the one produced by {!Ast.to_string}:

    {v
    query(1) for $x in $0//item, $n in $x/name
             where text($n) contains "xml" and attr($x, "id") != "0"
             return <hit>{$x}</hit>
    v}

    Composed queries (rule (11)) read:

    {v
    compose { query(1) ... } ({ query(1) ... }; { query(1) ... })
    v}

    Queries being shippable values of the algebra, this module is the
    wire decoder matching {!Ast.to_string}'s encoder. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Parse_error of error

val parse : string -> (Ast.t, error) result
val parse_exn : string -> Ast.t

val parse_path : string -> (Ast.path, error) result
(** Parse a bare path such as ["//item/name"]. *)
