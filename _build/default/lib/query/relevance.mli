(** Call-relevance analysis for lazy evaluation.

    AXML supports activating a call "only when the call result is
    needed to evaluate some query over the enclosing document"
    (Section 2.2, citing the lazy-evaluation work).  Deciding
    need exactly is as hard as query evaluation; this module implements
    the standard sound approximation: a service call is {e relevant} to
    a query unless the query provably never inspects the region of the
    document where the call's results will accumulate.

    The test is a path-automaton reachability check: every query
    binding (with [Var] chains concatenated and [Exists] paths
    appended) denotes a regular language of label paths from the input
    root; results of a call accumulate under its [sc] node's parent,
    reachable by a concrete label path π.  The call may matter iff some
    query path language either (a) can consume π and continue (the
    query descends into the accumulation region), or (b) accepts a
    proper prefix of π (the query binds an ancestor and copies or
    inspects its whole subtree). *)

val path_may_enter : Ast.path -> prefix:Axml_xml.Label.t list -> bool
(** [path_may_enter p ~prefix] — can the path language of [p] reach
    into (or bind an ancestor of) a node whose label path from the
    root is [prefix]?  The empty prefix is always reachable. *)

val query_paths : Ast.t -> input:int -> Ast.path list
(** The absolute path of every binding rooted (transitively) at the
    given input, with [Exists] predicate paths appended to their
    variable's path.  Compositions contribute the paths of every
    sub-query on that input (the head runs over intermediate results,
    which are derived data). *)

val relevant : Ast.t -> input:int -> prefix:Axml_xml.Label.t list -> bool
(** Is a call whose results accumulate under the node at [prefix]
    (labels from the input root, root's own label excluded) possibly
    relevant to the query? *)
