(** Query-level (single-site) optimization.

    The algebra of Section 3 moves work {e between} peers; this module
    optimizes the query a single peer then runs — the classical
    logical rewrites, kept separate from the distributed rules:

    - {e predicate simplification}: constant folding, double-negation
      and [True]-unit elimination, flattening;
    - {e filter hoisting}: a conjunct is evaluated as soon as all the
      variables it mentions are bound, instead of after the full
      binding tuple is enumerated — realized by {!reorder}, which also
      moves highly selective bindings early.

    All rewrites preserve results {e exactly} (same multiset of output
    trees), property-tested against random queries and data. *)

val simplify_pred : Ast.pred -> Ast.pred
(** Logical simplification: [not not p = p],
    [p and true = p], [p or true = true], constant comparisons folded,
    [exists] kept (data-dependent). *)

val reorder_bindings : ?stats:Selectivity.Stats.t list -> Ast.t -> Ast.t
(** Reorder the [for] clauses of each FLWR block so that (a) variable
    dependencies are respected and (b) bindings that enable more
    selective conjuncts come first.  With [stats], estimated match
    counts break ties (smaller first).  Results are unchanged —
    binding order only affects enumeration order, which the unordered
    data model ignores. *)

val optimize : ?stats:Selectivity.Stats.t list -> Ast.t -> Ast.t
(** {!simplify_pred} on every block, then {!reorder_bindings}. *)

val enumeration_cost : Ast.t -> Axml_xml.Forest.t list -> int
(** Instrumentation for tests and benches: the number of binding
    tuples enumerated when evaluating the query on the given inputs
    (filters applied as early as {!Eval} applies them — at the tuple
    level), so reorderings can be compared. *)
