(** Abstract syntax of the declarative query language.

    The paper relies on "declarative Web services, whose implementation
    is a declarative XML query" (Section 2.2) with composition,
    decomposition and selections (Section 3.3, rule (11) and
    Example 1).  We realize this with a FLWR fragment: nested [for]
    bindings over child/descendant paths, a [where] predicate, and an
    XML-constructing [return] clause.  Queries are composable
    ({!Compose}) and serializable to text ({!to_string} /
    {!module:Parser}), hence shippable between peers as XML. *)

type axis = Child | Descendant
type test = Name of Axml_xml.Label.t | Any_elt
type step = { axis : axis; test : test }
type path = step list

type source =
  | Input of int  (** [$k]: the k-th input forest of the query. *)
  | Var of string  (** A previously bound variable. *)

type operand =
  | Const of string  (** String literal. *)
  | Number of float  (** Numeric literal. *)
  | Text_of of string  (** [text($x)]: concatenated text content. *)
  | Attr_of of string * string  (** [attr($x, "name")]. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge | Contains

type pred =
  | True
  | Cmp of operand * cmp * operand
  | Exists of string * path  (** [exists($x/path)]. *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type construct =
  | Elem of {
      label : Axml_xml.Label.t;
      attrs : (string * string) list;
      children : construct list;
    }
  | Text of string
  | Copy_of of string  (** [{$x}]: deep copy of the bound subtree. *)
  | Content_of of string  (** [{text($x)}]: text content as a text node. *)
  | Attr_content of string * string
      (** [{attr($x,"a")}]: attribute value as a text node. *)

type binding = { var : string; source : source; path : path }

type flwr = {
  arity : int;  (** Number of input forests; inputs are [$0..$n-1]. *)
  bindings : binding list;
  where : pred;
  return_ : construct;
}

type t =
  | Flwr of flwr
  | Compose of flwr * t list
      (** [Compose (q1, [q2; …; qn])] is the composed query
          q1(q2, …, qn) of rule (11): each qi consumes the composed
          query's inputs, and q1 consumes their outputs. *)

(** {1 Construction helpers} *)

val child : string -> step
val desc : string -> step
val child_any : step
val desc_any : step
val flwr : ?where:pred -> arity:int -> binding list -> construct -> t
val conj : pred list -> pred
val conjuncts : pred -> pred list
(** Flatten nested {!And}s; [conj (conjuncts p)] is equivalent to [p]. *)

(** {1 Analysis} *)

val arity : t -> int
val pred_vars : pred -> string list
(** Variables a predicate refers to, without duplicates. *)

val construct_vars : construct -> string list

val check : t -> (unit, string) result
(** Well-formedness: variables are bound before use, bound at most
    once, and input indices are within arity; composed queries have
    matching arities. *)

(** {1 Printing}

    [to_string] emits the concrete syntax accepted by
    {!module:Parser}; the round-trip [Parser.parse (to_string q)]
    yields a query structurally equal to [q]. *)

val path_to_string : path -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
(** Structural (syntactic) equality. *)
