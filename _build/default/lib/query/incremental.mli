(** Continuous (incremental) query evaluation.

    "Recall that all queries are continuous" (Section 3.2): inputs are
    streams of XML trees accumulating under input nodes, and
    "eval\@p(q) produces a result whenever the arrival of some new tree
    in the input streams leads to creating some output".

    A {!t} holds the trees seen so far on each input.  {!push} feeds
    one new tree on one input and returns exactly the *new* output
    trees — the delta — computed by evaluating the query with the new
    tree pinned on its input and all previously seen trees on the
    others (correct for our FLWR fragment because every output tuple
    draws at most one binding root per input, making evaluation
    monotone and distributive over input arrival). *)

type t

val create : Ast.t -> t
(** @raise Invalid_argument if the query is ill-formed. *)

val query : t -> Ast.t
val seen : t -> int -> Axml_xml.Forest.t
(** Trees received so far on an input. *)

val push :
  gen:Axml_xml.Node_id.Gen.t -> t -> input:int -> Axml_xml.Tree.t ->
  Axml_xml.Forest.t
(** Feed one tree; the returned forest contains only outputs newly
    enabled by this tree.  Mutates the state. *)

val push_forest :
  gen:Axml_xml.Node_id.Gen.t -> t -> input:int -> Axml_xml.Forest.t ->
  Axml_xml.Forest.t

val total_output :
  gen:Axml_xml.Node_id.Gen.t -> t -> Axml_xml.Forest.t
(** Evaluate the query over everything seen so far (reference
    semantics; the concatenated deltas are canonically equal to it —
    a property-tested invariant). *)
