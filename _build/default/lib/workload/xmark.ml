module Tree = Axml_xml.Tree
module Label = Axml_xml.Label

type scale = {
  people : int;
  items_per_region : int;
  auctions : int;
  max_bidders : int;
  description_bytes : int;
}

let default_scale =
  {
    people = 50;
    items_per_region = 40;
    auctions = 60;
    max_bidders = 5;
    description_bytes = 120;
  }

let regions = [ "europe"; "namerica"; "asia" ]
let categories = [ "c0"; "c1"; "c2"; "c3"; "c4"; "c5" ]

let l = Label.of_string

let words rng n =
  String.concat " "
    (List.init (max 1 (n / 6)) (fun _ ->
         String.init (3 + Rng.int rng 6) (fun _ ->
             Char.chr (Char.code 'a' + Rng.int rng 26))))

let person ~gen ~rng i =
  Tree.element ~gen (l "person")
    ~attrs:[ ("id", Printf.sprintf "p%d" i) ]
    ([
       Tree.element ~gen (l "name") [ Tree.text (words rng 12) ];
       Tree.element ~gen (l "emailaddress")
         [ Tree.text (Printf.sprintf "p%d@example.net" i) ];
     ]
    @ List.init (Rng.int rng 3) (fun _ ->
          Tree.element ~gen (l "interest")
            ~attrs:[ ("category", Rng.pick rng categories) ]
            []))

let item ~gen ~rng ~scale id =
  Tree.element ~gen (l "item")
    ~attrs:
      [ ("id", Printf.sprintf "i%d" id); ("category", Rng.pick rng categories) ]
    [
      Tree.element ~gen (l "name") [ Tree.text (words rng 18) ];
      Tree.element ~gen (l "description")
        [ Tree.text (words rng scale.description_bytes) ];
    ]

let auction ~gen ~rng ~scale ~total_items i =
  let bidders =
    List.init (Rng.int rng (scale.max_bidders + 1)) (fun _ ->
        Tree.element ~gen (l "bidder")
          ~attrs:[ ("person", Printf.sprintf "p%d" (Rng.int rng scale.people)) ]
          [
            Tree.element ~gen (l "increase")
              [ Tree.text (string_of_int (1 + Rng.int rng 20)) ];
          ])
  in
  Tree.element ~gen (l "auction")
    ~attrs:
      [
        ("id", Printf.sprintf "a%d" i);
        ("item", Printf.sprintf "i%d" (Rng.int rng total_items));
      ]
    ([
       Tree.element ~gen (l "seller")
         ~attrs:[ ("person", Printf.sprintf "p%d" (Rng.int rng scale.people)) ]
         [];
     ]
    @ bidders
    @ [
        Tree.element ~gen (l "current")
          [ Tree.text (string_of_int (10 + Rng.int rng 190)) ];
      ])

let site ?(scale = default_scale) ~gen ~rng () =
  let people =
    Tree.element ~gen (l "people")
      (List.init scale.people (person ~gen ~rng))
  in
  let total_items = scale.items_per_region * List.length regions in
  let region_elts =
    List.mapi
      (fun ri name ->
        Tree.element ~gen (l name)
          (List.init scale.items_per_region (fun k ->
               item ~gen ~rng ~scale ((ri * scale.items_per_region) + k))))
      regions
  in
  let auctions =
    Tree.element ~gen (l "auctions")
      (List.init scale.auctions (auction ~gen ~rng ~scale ~total_items))
  in
  Tree.element ~gen (l "site")
    [ people; Tree.element ~gen (l "regions") region_elts; auctions ]

let q_items_of_region region =
  Axml_query.Parser.parse_exn
    (Printf.sprintf
       "query(1) for $i in $0/regions/%s/item, $n in $i/name return \
        <listing>{$n}</listing>"
       region)

let q_auction_item_join =
  Axml_query.Parser.parse_exn
    {|query(1) for $a in $0/auctions/auction, $i in $0/regions//item, $n in $i/name, $c in $a/current
      where attr($a, "item") = attr($i, "id")
      return <sale>{$n}<price>{text($c)}</price></sale>|}

let q_bidders_of_category category =
  Axml_query.Parser.parse_exn
    (Printf.sprintf
       {|query(1) for $a in $0/auctions/auction, $i in $0/regions//item, $b in $a/bidder, $p in $0/people/person
         where attr($a, "item") = attr($i, "id")
           and attr($i, "category") = %S
           and attr($b, "person") = attr($p, "id")
         return <interested>{attr($p, "id")}</interested>|}
       category)

let q_expensive_auctions threshold =
  Axml_query.Parser.parse_exn
    (Printf.sprintf
       {|query(1) for $a in $0/auctions/auction, $c in $a/current
         where text($c) > %g
         return <hot>{attr($a, "id")}</hot>|}
       threshold)
