(** An XMark-flavoured auction-site workload.

    The de-facto standard XML benchmark shape: a site with people,
    regional item listings and open auctions referencing items and
    bidders.  Scaled-down and synthetic, but structurally faithful —
    joins by reference attributes, region-partitioned data, skewed
    text sizes — so distributed-plan experiments get realistic access
    patterns instead of flat catalogs.

    {v
    <site>
      <people>    <person id="p0"><name>…</name><interest category="c3"/>…</person>… </people>
      <regions>   <europe><item id="i0" category="c1"><name>…</name><description>…</description></item>…</europe>
                  <namerica>…</namerica><asia>…</asia> </regions>
      <auctions>  <auction id="a0" item="i42"><seller person="p7"/>
                    <bidder person="p3"><increase>12</increase></bidder>…
                    <current>57</current></auction>… </auctions>
    </site>
    v} *)

type scale = {
  people : int;
  items_per_region : int;
  auctions : int;
  max_bidders : int;
  description_bytes : int;
}

val default_scale : scale
(** 50 people, 40 items × 3 regions, 60 auctions, ≤5 bidders,
    120-byte descriptions. *)

val regions : string list
(** [["europe"; "namerica"; "asia"]]. *)

val categories : string list

val site :
  ?scale:scale ->
  gen:Axml_xml.Node_id.Gen.t ->
  rng:Rng.t ->
  unit ->
  Axml_xml.Tree.t

(** {1 Canned queries over the site document (arity 1)} *)

val q_items_of_region : string -> Axml_query.Ast.t
(** Names of the items listed in one region. *)

val q_auction_item_join : Axml_query.Ast.t
(** Join auctions to the items they sell (reference attribute
    equality): returns [<sale><name>…</name><current>…</current></sale>]. *)

val q_bidders_of_category : string -> Axml_query.Ast.t
(** People bidding on auctions for items of a category — a three-way
    join (person ⋈ bidder ⋈ item). *)

val q_expensive_auctions : float -> Axml_query.Ast.t
(** Auctions whose current price exceeds the threshold. *)
