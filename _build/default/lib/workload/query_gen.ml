module Ast = Axml_query.Ast

type config = {
  labels : string list;
  max_bindings : int;
  max_path_len : int;
  max_preds : int;
  arity : int;
}

let default_config =
  {
    labels = [ "a"; "b"; "c"; "item"; "name"; "value" ];
    max_bindings = 3;
    max_path_len = 3;
    max_preds = 2;
    arity = 1;
  }

let random_step ~rng config =
  let axis = if Rng.bool rng then Ast.Child else Ast.Descendant in
  let test =
    if Rng.int rng 10 = 0 then Ast.Any_elt
    else Ast.Name (Axml_xml.Label.of_string (Rng.pick rng config.labels))
  in
  { Ast.axis; test }

let random_path ~rng config =
  List.init (1 + Rng.int rng config.max_path_len) (fun _ ->
      random_step ~rng config)

let random_operand ~rng ~vars =
  match Rng.int rng 4 with
  | 0 -> Ast.Const (Rng.pick rng [ "foo"; "bar"; "xml"; "42" ])
  | 1 -> Ast.Number (float_of_int (Rng.int rng 100))
  | 2 -> Ast.Text_of (Rng.pick rng vars)
  | _ -> Ast.Attr_of (Rng.pick rng vars, Rng.pick rng [ "id"; "category" ])

let random_cmp ~rng =
  Rng.pick rng [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Contains ]

let rec random_pred ~rng ~vars config =
  if vars = [] then Ast.True
  else
    match Rng.int rng 8 with
    | 0 ->
        Ast.And
          (random_pred ~rng ~vars config, random_pred ~rng ~vars config)
    | 1 ->
        Ast.Or (random_pred ~rng ~vars config, random_pred ~rng ~vars config)
    | 2 -> Ast.Not (random_pred ~rng ~vars config)
    | 3 -> Ast.Exists (Rng.pick rng vars, random_path ~rng config)
    | _ ->
        Ast.Cmp
          ( random_operand ~rng ~vars,
            random_cmp ~rng,
            random_operand ~rng ~vars )

let random_construct ~rng ~vars config =
  let label = Axml_xml.Label.of_string (Rng.pick rng config.labels) in
  let children =
    if vars = [] then [ Ast.Text "leaf" ]
    else
      List.init
        (1 + Rng.int rng 2)
        (fun _ ->
          match Rng.int rng 3 with
          | 0 -> Ast.Copy_of (Rng.pick rng vars)
          | 1 -> Ast.Content_of (Rng.pick rng vars)
          | _ -> Ast.Text (Rng.pick rng [ "x"; "y"; "z" ]))
  in
  Ast.Elem { label; attrs = []; children }

let random_flwr_block ~rng config =
  let n_bindings = 1 + Rng.int rng config.max_bindings in
  let bindings, vars =
    List.fold_left
      (fun (bindings, vars) i ->
        let var = Printf.sprintf "v%d" i in
        let source =
          if vars = [] || Rng.int rng 3 = 0 then
            Ast.Input (Rng.int rng config.arity)
          else Ast.Var (Rng.pick rng vars)
        in
        let b = { Ast.var; source; path = random_path ~rng config } in
        (bindings @ [ b ], vars @ [ var ]))
      ([], [])
      (List.init n_bindings Fun.id)
  in
  let preds =
    List.init (Rng.int rng (config.max_preds + 1)) (fun _ ->
        random_pred ~rng ~vars config)
  in
  {
    Ast.arity = config.arity;
    bindings;
    where = Ast.conj preds;
    return_ = random_construct ~rng ~vars config;
  }

let random_flwr ~rng config =
  let q = Ast.Flwr (random_flwr_block ~rng config) in
  match Ast.check q with
  | Ok () -> q
  | Error msg -> invalid_arg ("Query_gen.random_flwr: " ^ msg)

let random_composed ~rng config =
  let n = 1 + Rng.int rng 2 in
  let head_config = { config with arity = n } in
  let head = random_flwr_block ~rng head_config in
  let subs = List.init n (fun _ -> random_flwr ~rng config) in
  let q = Ast.Compose (head, subs) in
  match Ast.check q with
  | Ok () -> q
  | Error msg -> invalid_arg ("Query_gen.random_composed: " ^ msg)
