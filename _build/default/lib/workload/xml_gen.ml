module Tree = Axml_xml.Tree
module Label = Axml_xml.Label

type shape = {
  depth : int;
  fanout : int;
  labels : string list;
  text_length : int;
}

let default_shape =
  {
    depth = 4;
    fanout = 4;
    labels = [ "a"; "b"; "c"; "item"; "name"; "value" ];
    text_length = 8;
  }

let random_text rng n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let rec random_tree ?(shape = default_shape) ~gen ~rng () =
  if shape.depth <= 1 then Tree.text (random_text rng shape.text_length)
  else begin
    let label = Label.of_string (Rng.pick rng shape.labels) in
    let kids = Rng.int rng (shape.fanout + 1) in
    let children =
      List.init kids (fun _ ->
          random_tree ~shape:{ shape with depth = shape.depth - 1 } ~gen ~rng ())
    in
    Tree.element ~gen label children
  end

let random_forest ?shape ~gen ~rng ~trees () =
  List.init trees (fun _ -> random_tree ?shape ~gen ~rng ())

let decoy_categories = [ "misc"; "other"; "spare"; "bulk"; "legacy" ]

let catalog ~gen ~rng ~items ~selectivity ?(payload_bytes = 64)
    ?(target_category = "wanted") () =
  let item i =
    let matches = Rng.float rng 1.0 < selectivity in
    let category =
      if matches then target_category else Rng.pick rng decoy_categories
    in
    Tree.element ~gen (Label.of_string "item")
      ~attrs:[ ("id", string_of_int i); ("category", category) ]
      [
        Tree.element ~gen (Label.of_string "name")
          [ Tree.text (Printf.sprintf "item-%d" i) ];
        Tree.element ~gen (Label.of_string "price")
          [ Tree.text (string_of_int (1 + Rng.int rng 1000)) ];
        Tree.element ~gen (Label.of_string "payload")
          [ Tree.text (random_text rng payload_bytes) ];
      ]
  in
  Tree.element ~gen (Label.of_string "catalog") (List.init items item)

let selection_query ?(target_category = "wanted") () =
  Axml_query.Parser.parse_exn
    (Printf.sprintf
       "query(1) for $i in $0//item, $n in $i/name where attr($i, \
        \"category\") = %S return <hit>{$n}</hit>"
       target_category)

let selection_query_with_payload ?(target_category = "wanted") () =
  Axml_query.Parser.parse_exn
    (Printf.sprintf
       "query(1) for $i in $0//item where attr($i, \"category\") = %S return \
        <hit>{$i}</hit>"
       target_category)
