module Schema = Axml_schema.Schema
module Cm = Axml_schema.Content_model
module Tree = Axml_xml.Tree
module Label = Axml_xml.Label

let random_text rng =
  String.init (3 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

(* Expand a content model into a list of atoms to instantiate,
   choosing alternatives and repetition counts randomly. *)
let rec expand ~rng ~max_star (model : Cm.t) : Cm.atom list =
  match model with
  | Cm.Empty ->
      (* No word exists; caller detects the impossibility through a
         distinguished exception. *)
      raise_notrace Exit
  | Cm.Epsilon -> []
  | Cm.Atom a -> [ a ]
  | Cm.Seq (a, b) -> expand ~rng ~max_star a @ expand ~rng ~max_star b
  | Cm.Alt (a, b) -> (
      (* Prefer a side that can produce a word; try both orders. *)
      let first, second = if Rng.bool rng then (a, b) else (b, a) in
      match expand ~rng ~max_star first with
      | atoms -> atoms
      | exception Exit -> expand ~rng ~max_star second)
  | Cm.Star inner ->
      List.concat
        (List.init (Rng.int rng (max_star + 1)) (fun _ ->
             try expand ~rng ~max_star inner with Exit -> []))
  | Cm.Plus inner ->
      let head = expand ~rng ~max_star inner in
      head
      @ List.concat
          (List.init (Rng.int rng max_star) (fun _ ->
               try expand ~rng ~max_star inner with Exit -> []))
  | Cm.Opt inner -> (
      if Rng.bool rng then []
      else try expand ~rng ~max_star inner with Exit -> [])

let rec tree_of_type ~schema ~gen ~rng ~max_star ~depth type_name =
  if depth <= 0 then None
  else if type_name = Schema.any_type_name then
    Some
      (Tree.element ~gen (Label.of_string "any")
         [ Tree.text (random_text rng) ])
  else
    match Schema.find schema type_name with
    | None -> None
    | Some d -> (
        match expand ~rng ~max_star d.Schema.content with
        | exception Exit -> None
        | atoms ->
            let children =
              List.fold_left
                (fun acc atom ->
                  match acc with
                  | None -> None
                  | Some kids -> (
                      match atom with
                      | Cm.Text -> Some (kids @ [ Tree.text (random_text rng) ])
                      | Cm.Wildcard ->
                          Some
                            (kids
                            @ [
                                Tree.element ~gen (Label.of_string "any")
                                  [ Tree.text (random_text rng) ];
                              ])
                      | Cm.Ref name -> (
                          match
                            tree_of_type ~schema ~gen ~rng ~max_star
                              ~depth:(depth - 1) name
                          with
                          | Some t -> Some (kids @ [ t ])
                          | None -> None)))
                (Some []) atoms
            in
            (match children with
            | None -> None
            | Some kids ->
                let kids =
                  if d.Schema.mixed && Rng.bool rng then
                    Tree.text (random_text rng) :: kids
                  else kids
                in
                let attrs =
                  List.map
                    (fun (rule : Schema.attr_rule) ->
                      (rule.attr_name, random_text rng))
                    d.Schema.attributes
                in
                Some (Tree.element ~gen ~attrs d.Schema.elt_label kids)))

let tree ~schema ~type_name ~gen ~rng ?(max_depth = 12) ?(max_star = 2) () =
  tree_of_type ~schema ~gen ~rng ~max_star ~depth:max_depth type_name

let forest ~schema ~type_names ~gen ~rng () =
  List.fold_left
    (fun acc ty ->
      match acc with
      | None -> None
      | Some ts -> (
          match tree ~schema ~type_name:ty ~gen ~rng () with
          | Some t -> Some (ts @ [ t ])
          | None -> None))
    (Some []) type_names
