(** Random query generation.

    Produces well-formed FLWR queries over a given label alphabet —
    the fuzz fuel for the property suites (rule-preservation,
    round-trips, incremental-vs-batch agreement). *)

type config = {
  labels : string list;  (** Alphabet for path steps. *)
  max_bindings : int;
  max_path_len : int;
  max_preds : int;
  arity : int;
}

val default_config : config

val random_path : rng:Rng.t -> config -> Axml_query.Ast.path
val random_pred : rng:Rng.t -> vars:string list -> config -> Axml_query.Ast.pred
val random_flwr : rng:Rng.t -> config -> Axml_query.Ast.t
(** Always passes {!Axml_query.Ast.check}. *)

val random_composed : rng:Rng.t -> config -> Axml_query.Ast.t
(** A 1-level composition of random FLWR blocks. *)
