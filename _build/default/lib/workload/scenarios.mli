(** Ready-made multi-peer scenarios.

    The paper motivates the framework with a real-life software
    distribution application (Section 1; detailed only in the
    unavailable extended report) and with continuous subscriptions.
    These builders reconstruct both as synthetic but structurally
    faithful workloads over the simulator. *)

module Peer_id = Axml_net.Peer_id

(** {1 Software distribution (the eDos-style application)}

    [n] mirror peers each host a replicated package catalog (declared
    as a generic document class), a declarative dependency-resolution
    service, and an update feed.  A client peer issues resolution
    requests. *)

type software_distribution = {
  sd_system : Axml_peer.System.t;
  sd_client : Peer_id.t;
  sd_mirrors : Peer_id.t list;
  sd_resolve : string;  (** Service name of the resolver (on every mirror). *)
  sd_catalog_class : string;  (** Generic-document class of the catalog. *)
  sd_packages : string list;  (** All package names. *)
}

val software_distribution :
  ?mirrors:int ->
  ?packages:int ->
  ?deps_per_package:int ->
  ?payload_bytes:int ->
  seed:int ->
  unit ->
  software_distribution
(** Defaults: 3 mirrors, 60 packages, ≤3 deps each, 96-byte payloads.
    The resolver service has arity 2: a request document of
    [<want name="…"/>] elements, and a catalog; it returns the wanted
    [<package>] subtrees. *)

val resolution_request :
  software_distribution -> at:Peer_id.t -> wanted:string list -> Axml_xml.Tree.t
(** Build a request tree at the given peer. *)

(** {1 News subscription}

    [sources] peers each expose a continuous feed over their local
    news document; an aggregator document holds one call per feed with
    a forward list pointing into itself — the classic AXML
    subscription pattern. *)

type subscription = {
  sub_system : Axml_peer.System.t;
  sub_aggregator : Peer_id.t;
  sub_sources : Peer_id.t list;
  sub_digest_doc : string;  (** Aggregator document collecting items. *)
  sub_feed_service : string;
  sub_news_doc : string;  (** Source-local document each feed watches. *)
}

val subscription : ?sources:int -> seed:int -> unit -> subscription
(** Builds the system and activates the calls; run the system, then
    publish with {!publish} and run again to see propagation. *)

val publish :
  subscription -> source:Peer_id.t -> headline:string -> unit
(** Insert a news item at a source (triggering its feed). *)
