lib/workload/schema_gen.mli: Axml_schema Axml_xml Rng
