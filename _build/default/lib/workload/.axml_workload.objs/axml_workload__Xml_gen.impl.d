lib/workload/xml_gen.ml: Axml_query Axml_xml Char List Printf Rng String
