lib/workload/scenarios.ml: Axml_doc Axml_net Axml_peer Axml_query Axml_xml Hashtbl List Option Printf Rng String
