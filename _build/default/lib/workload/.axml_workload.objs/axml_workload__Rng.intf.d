lib/workload/rng.mli:
