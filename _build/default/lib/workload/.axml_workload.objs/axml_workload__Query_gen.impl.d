lib/workload/query_gen.ml: Axml_query Axml_xml Fun List Printf Rng
