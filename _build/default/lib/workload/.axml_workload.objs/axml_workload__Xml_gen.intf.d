lib/workload/xml_gen.mli: Axml_query Axml_xml Rng
