lib/workload/xmark.mli: Axml_query Axml_xml Rng
