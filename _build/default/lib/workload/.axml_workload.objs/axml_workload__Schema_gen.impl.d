lib/workload/schema_gen.ml: Axml_schema Axml_xml Char List Rng String
