lib/workload/xmark.ml: Axml_query Axml_xml Char List Printf Rng String
