lib/workload/query_gen.mli: Axml_query Rng
