lib/workload/scenarios.mli: Axml_net Axml_peer Axml_xml
