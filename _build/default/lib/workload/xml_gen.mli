(** Synthetic XML data.

    Substitutes the data sets of the paper's (unavailable) testbed.
    Two families:

    - {!random_tree}: label-uniform trees with controlled size/shape,
      for property tests and stress runs;
    - {!catalog}: an item catalog with a controlled {e selectivity} —
      the fraction of items matching a known predicate — the knob of
      Example 1 / experiment E1. *)

type shape = {
  depth : int;  (** Maximum tree depth. *)
  fanout : int;  (** Maximum children per element. *)
  labels : string list;  (** Label alphabet. *)
  text_length : int;  (** Length of generated text payloads. *)
}

val default_shape : shape

val random_tree :
  ?shape:shape -> gen:Axml_xml.Node_id.Gen.t -> rng:Rng.t -> unit -> Axml_xml.Tree.t

val random_forest :
  ?shape:shape ->
  gen:Axml_xml.Node_id.Gen.t ->
  rng:Rng.t ->
  trees:int ->
  unit ->
  Axml_xml.Forest.t

(** An item catalog:

    {v
    <catalog>
      <item id="…" category="…">
        <name>…</name> <price>…</price> <payload>…</payload>
      </item> …
    </catalog>
    v} *)

val catalog :
  gen:Axml_xml.Node_id.Gen.t ->
  rng:Rng.t ->
  items:int ->
  selectivity:float ->
  ?payload_bytes:int ->
  ?target_category:string ->
  unit ->
  Axml_xml.Tree.t
(** Fraction [selectivity] of items carry [target_category] (default
    ["wanted"]); the rest draw from decoy categories.  [payload_bytes]
    (default 64) pads each item so result-size ratios translate into
    byte ratios. *)

val selection_query : ?target_category:string -> unit -> Axml_query.Ast.t
(** The unary query returning the names of wanted items wrapped in
    [<hit>] elements — selective, so pushing it to the data pays off. *)

val selection_query_with_payload :
  ?target_category:string -> unit -> Axml_query.Ast.t
(** Like {!selection_query} but copying whole matching items — result
    size scales with selectivity × payload. *)
