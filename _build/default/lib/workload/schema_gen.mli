(** Schema-driven data generation.

    Produces random trees that {e conform} to a declared type — by
    walking the content-model regular expression and instantiating
    each atom — so properties of typed code paths (validation, query
    output typing, signature checking) can be fuzzed with valid
    inputs. *)

val tree :
  schema:Axml_schema.Schema.t ->
  type_name:string ->
  gen:Axml_xml.Node_id.Gen.t ->
  rng:Rng.t ->
  ?max_depth:int ->
  ?max_star:int ->
  unit ->
  Axml_xml.Tree.t option
(** A random tree of the given type.  [max_star] bounds the expansion
    of [Star]/[Plus] (default 2); [max_depth] (default 12) bounds
    recursion through recursive grammars — when the bound cannot be
    respected (the type needs deeper structure), [None].  For the
    universal type a small generic element is produced.

    Guarantee (property-tested): [Some t] implies
    [Validate.conforms ~schema ~type_name t]. *)

val forest :
  schema:Axml_schema.Schema.t ->
  type_names:string list ->
  gen:Axml_xml.Node_id.Gen.t ->
  rng:Rng.t ->
  unit ->
  Axml_xml.Forest.t option
(** Point-wise {!tree}; [None] if any position fails. *)
