(** Canonical forms for unordered trees.

    The paper's trees are unordered: two trees that differ only in the
    relative order of siblings denote the same data.  This module
    provides a canonical ordering (a deterministic total order on
    subtrees), canonical equality, comparison and hashing — the basis
    for document equivalence checking and for verifying that two
    evaluation strategies produced the same system state. *)

val canonicalize : Tree.t -> Tree.t
(** Recursively sort sibling elements and attribute lists into a
    canonical order, and concatenate sibling text nodes (in document
    order) into one — the identification the serialized form makes,
    since adjacent text nodes are indistinguishable on the wire.
    Identifiers are preserved but ignored by the order. *)

val equal : Tree.t -> Tree.t -> bool
(** Unordered structural equality, ignoring node identifiers. *)

val compare : Tree.t -> Tree.t -> int
(** A total order compatible with {!equal}. *)

val hash : Tree.t -> int
(** [equal a b] implies [hash a = hash b]. *)

val equal_forest : Tree.t list -> Tree.t list -> bool
(** Unordered equality of forests: multiset equality of canonical
    trees. *)

val fingerprint : Tree.t -> string
(** A stable textual digest of the canonical form (the canonical
    serialization); equal iff {!equal}. *)
