lib/xml/node_id.ml: Format Hashtbl Int Map Printf Set String
