lib/xml/canonical.ml: Hashtbl Label List Printf String Tree
