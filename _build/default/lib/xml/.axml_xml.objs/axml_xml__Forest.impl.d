lib/xml/forest.ml: Format List Tree
