lib/xml/tree.mli: Format Label Node_id
