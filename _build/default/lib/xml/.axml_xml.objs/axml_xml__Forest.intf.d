lib/xml/forest.mli: Format Node_id Tree
