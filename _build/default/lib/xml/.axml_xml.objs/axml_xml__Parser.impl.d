lib/xml/parser.ml: Buffer Char Format Label List Node_id Option Printf String Tree
