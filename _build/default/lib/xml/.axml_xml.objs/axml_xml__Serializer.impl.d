lib/xml/serializer.ml: Buffer Format Label List String Tree
