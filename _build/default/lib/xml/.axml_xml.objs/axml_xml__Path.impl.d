lib/xml/path.ml: Format Label List String Tree
