lib/xml/canonical.mli: Tree
