lib/xml/label.ml: Format Hashtbl Printf String
