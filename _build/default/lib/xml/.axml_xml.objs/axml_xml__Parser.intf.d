lib/xml/parser.mli: Format Node_id Tree
