lib/xml/zipper.mli: Node_id Tree
