lib/xml/path.mli: Format Label Tree
