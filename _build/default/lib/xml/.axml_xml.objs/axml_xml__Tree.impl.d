lib/xml/tree.ml: Format Label List Node_id Option String
