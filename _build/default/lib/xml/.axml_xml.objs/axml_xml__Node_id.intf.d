lib/xml/node_id.mli: Format Hashtbl Map Set
