lib/xml/zipper.ml: Label List Node_id Tree
