lib/xml/serializer.mli: Format Tree
