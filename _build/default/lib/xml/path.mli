(** Simple label paths into trees.

    A path is a sequence of steps from the root; each step selects
    children by label ({!Child}) or descendants by label
    ({!Descendant}).  Paths are the addressing vocabulary shared by the
    query language and by tests; they are not the full query language
    (see {!module:Axml_query}). *)

type step = Child of Label.t | Descendant of Label.t
type t = step list

val of_string : string -> t
(** Parse ["/a/b//c"]-style syntax: [/l] is a child step, [//l] a
    descendant step.  A leading [/] is optional.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val select : t -> Tree.t -> Tree.t list
(** All nodes reached from the root of the given tree by the path.
    The empty path selects the root itself. *)

val select_forest : t -> Tree.t list -> Tree.t list

val exists : t -> Tree.t -> bool
