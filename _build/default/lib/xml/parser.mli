(** XML parser.

    A self-contained recursive-descent parser for the XML fragment the
    framework manipulates: elements, attributes, character data, entity
    and character references, comments, CDATA sections and processing
    instructions (the latter two are accepted and, respectively,
    inlined and skipped).  DTDs are not supported — types are handled
    by {!module:Axml_schema} instead.

    Node identifiers for parsed elements are minted from the generator
    supplied by the caller, so a document parsed on a peer belongs to
    that peer's identifier namespace. *)

type error = { position : int; line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Parse_error of error

val parse : ?keep_ws:bool -> gen:Node_id.Gen.t -> string -> (Tree.t, error) result
(** [parse ~gen s] parses a single XML document (one root element,
    optionally preceded by an XML declaration).  Whitespace-only text
    nodes between elements are dropped unless [keep_ws] is [true]
    (default [false]). *)

val parse_exn : ?keep_ws:bool -> gen:Node_id.Gen.t -> string -> Tree.t
(** @raise Parse_error *)

val parse_forest :
  ?keep_ws:bool -> gen:Node_id.Gen.t -> string -> (Tree.t list, error) result
(** Parse a sequence of root elements (an XML forest, as exchanged in
    service parameters). *)
