type crumb = {
  parent_id : Node_id.t;
  parent_label : Label.t;
  parent_attrs : (string * string) list;
  lefts : Tree.t list; (* reversed *)
  rights : Tree.t list;
}

type t = { focus : Tree.t; crumbs : crumb list }

let of_tree t = { focus = t; crumbs = [] }
let focus z = z.focus

let up z =
  match z.crumbs with
  | [] -> None
  | c :: rest ->
      let children = List.rev_append c.lefts (z.focus :: c.rights) in
      Some
        {
          focus =
            Tree.with_id c.parent_id ~attrs:c.parent_attrs c.parent_label
              children;
          crumbs = rest;
        }

let rec root z = match up z with None -> z | Some z' -> root z'
let to_tree z = (root z).focus

let down z =
  match z.focus with
  | Tree.Text _ | Tree.Element { children = []; _ } -> None
  | Tree.Element ({ children = first :: rest; _ } as e) ->
      Some
        {
          focus = first;
          crumbs =
            {
              parent_id = e.id;
              parent_label = e.label;
              parent_attrs = e.attrs;
              lefts = [];
              rights = rest;
            }
            :: z.crumbs;
        }

let left z =
  match z.crumbs with
  | { lefts = l :: ls; _ } as c :: rest ->
      Some
        { focus = l; crumbs = { c with lefts = ls; rights = z.focus :: c.rights } :: rest }
  | _ -> None

let right z =
  match z.crumbs with
  | { rights = r :: rs; _ } as c :: rest ->
      Some
        { focus = r; crumbs = { c with rights = rs; lefts = z.focus :: c.lefts } :: rest }
  | _ -> None

let replace t z = { z with focus = t }

let append_child t z =
  match z.focus with
  | Tree.Text _ -> invalid_arg "Zipper.append_child: focus is a text node"
  | Tree.Element e ->
      { z with focus = Tree.Element { e with children = e.children @ [ t ] } }

let insert_right t z =
  match z.crumbs with
  | [] -> None
  | c :: rest -> Some { z with crumbs = { c with rights = t :: c.rights } :: rest }

let delete z =
  match z.crumbs with
  | [] -> None
  | c :: rest ->
      let children = List.rev_append c.lefts c.rights in
      Some
        {
          focus =
            Tree.with_id c.parent_id ~attrs:c.parent_attrs c.parent_label
              children;
          crumbs = rest;
        }

let find_id nid z =
  let rec dfs z =
    let matches =
      match z.focus with
      | Tree.Element e -> Node_id.equal e.id nid
      | Tree.Text _ -> false
    in
    if matches then Some z
    else
      let rec try_siblings z =
        match dfs z with
        | Some hit -> Some hit
        | None -> ( match right z with None -> None | Some z' -> try_siblings z')
      in
      match down z with None -> None | Some child -> try_siblings child
  in
  dfs (root z)
