(** Element labels.

    The paper models XML trees as unranked, unordered trees whose nodes
    carry labels from an infinite alphabet [L].  We represent labels as
    non-empty strings restricted to an NCName-like grammar so that every
    label can be serialized as an XML element name. *)

type t = private string

val of_string : string -> t
(** [of_string s] validates [s] as a label.
    @raise Invalid_argument if [s] is empty or contains characters that
    cannot appear in an XML element name. *)

val of_string_opt : string -> t option

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val is_valid : string -> bool
(** [is_valid s] is [true] iff [of_string s] would succeed. *)
