(* Canonicalization of unordered trees.

   Sibling *elements* form a multiset: they are sorted by their
   canonical serialization, computed bottom-up.  Sibling *text* nodes
   are concatenated in document order into a single text node — the
   same identification the XML serialization makes (adjacent text
   nodes are indistinguishable on the wire), which keeps query
   construction (several text pieces) and reparsing (one text node)
   canonically equal.  The fingerprint doubles as the sort key. *)

let split_children kids =
  let texts =
    List.filter_map
      (function Tree.Text s -> Some s | Tree.Element _ -> None)
      kids
  in
  let elements = List.filter Tree.is_element kids in
  (String.concat "" texts, elements)

let rec key = function
  | Tree.Text s -> "t:" ^ s
  | Tree.Element e ->
      let attrs =
        List.sort compare e.attrs
        |> List.map (fun (k, v) -> k ^ "=" ^ v)
        |> String.concat ","
      in
      let text, elements = split_children e.children in
      let kids = List.map key elements |> List.sort String.compare in
      let kids = if text = "" then kids else ("t:" ^ text) :: kids in
      Printf.sprintf "e:%s[%s]{%s}"
        (Label.to_string e.label)
        attrs
        (String.concat "|" kids)

let rec canonicalize = function
  | Tree.Text s -> Tree.Text s
  | Tree.Element e ->
      let text, elements = split_children e.children in
      let elements = List.map canonicalize elements in
      let elements =
        List.sort (fun a b -> String.compare (key a) (key b)) elements
      in
      let children =
        if text = "" then elements else Tree.Text text :: elements
      in
      Tree.Element { e with attrs = List.sort compare e.attrs; children }

let fingerprint t = key t
let compare a b = String.compare (key a) (key b)
let equal a b = compare a b = 0
let hash t = Hashtbl.hash (key t)

let equal_forest a b =
  let sorted f = List.map key f |> List.sort String.compare in
  List.equal String.equal (sorted a) (sorted b)
