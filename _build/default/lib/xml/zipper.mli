(** Tree zipper.

    A purely functional cursor into a {!Tree.t}, supporting navigation
    and local edits in O(1) amortized per step.  The peer runtime uses
    zippers to apply streams of insertions under designated nodes
    without rebuilding whole documents on every event. *)

type t

val of_tree : Tree.t -> t
(** Cursor focused on the root. *)

val to_tree : t -> Tree.t
(** Rebuild the full tree from any focus position. *)

val focus : t -> Tree.t
(** The subtree currently under the cursor. *)

(** {1 Navigation} — [None] when the move is impossible. *)

val up : t -> t option
val down : t -> t option
(** First child. *)

val left : t -> t option
val right : t -> t option
val root : t -> t
(** Move all the way up. *)

val find_id : Node_id.t -> t -> t option
(** Cursor on the element with the given identifier, searching the
    whole tree from the root. *)

(** {1 Edits} *)

val replace : Tree.t -> t -> t
(** Replace the focused subtree. *)

val append_child : Tree.t -> t -> t
(** Append a child to the focused element.
    @raise Invalid_argument if the focus is a text node. *)

val insert_right : Tree.t -> t -> t option
(** Insert a sibling immediately to the right of the focus; [None] at
    the root. *)

val delete : t -> t option
(** Delete the focused subtree; the cursor moves to the parent.
    [None] at the root. *)
