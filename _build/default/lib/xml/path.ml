type step = Child of Label.t | Descendant of Label.t
type t = step list

let of_string s =
  if s = "" || s = "/" then []
  else begin
    let n = String.length s in
    let steps = ref [] in
    let i = ref 0 in
    if s.[0] <> '/' then begin
      (* Allow a leading bare label. *)
      let j = match String.index_opt s '/' with None -> n | Some j -> j in
      steps := [ Child (Label.of_string (String.sub s 0 j)) ];
      i := j
    end;
    while !i < n do
      if s.[!i] <> '/' then invalid_arg ("Path.of_string: " ^ s);
      let descendant = !i + 1 < n && s.[!i + 1] = '/' in
      let start = !i + if descendant then 2 else 1 in
      if start >= n then invalid_arg ("Path.of_string: trailing slash in " ^ s);
      let stop =
        match String.index_from_opt s start '/' with None -> n | Some j -> j
      in
      let label = Label.of_string (String.sub s start (stop - start)) in
      steps := (if descendant then Descendant label else Child label) :: !steps;
      i := stop
    done;
    List.rev !steps
  end

let to_string p =
  String.concat ""
    (List.map
       (function
         | Child l -> "/" ^ Label.to_string l
         | Descendant l -> "//" ^ Label.to_string l)
       p)

let pp fmt p = Format.pp_print_string fmt (to_string p)

let rec descendants_by_label l t =
  let here =
    match t with
    | Tree.Element e when Label.equal e.label l -> [ t ]
    | Tree.Element _ | Tree.Text _ -> []
  in
  here @ List.concat_map (descendants_by_label l) (Tree.children t)

let step_select step nodes =
  match step with
  | Child l -> List.concat_map (fun n -> Tree.children_by_label n l) nodes
  | Descendant l ->
      List.concat_map
        (fun n -> List.concat_map (descendants_by_label l) (Tree.children n))
        nodes

let select path t = List.fold_left (fun nodes s -> step_select s nodes) [ t ] path

let select_forest path f =
  match path with
  | [] -> f
  | first :: rest ->
      (* The first step applies to each root of the forest as if the
         forest were the child list of a virtual root. *)
      let initial =
        match first with
        | Child l ->
            List.filter
              (function
                | Tree.Element e -> Label.equal e.label l | Tree.Text _ -> false)
              f
        | Descendant l -> List.concat_map (descendants_by_label l) f
      in
      List.fold_left (fun nodes s -> step_select s nodes) initial rest

let exists path t = select path t <> []
