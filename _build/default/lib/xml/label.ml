type t = string

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let is_valid s =
  String.length s > 0
  && is_name_start s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_name_char c) then ok := false) s;
      !ok)

let of_string_opt s = if is_valid s then Some s else None

let of_string s =
  match of_string_opt s with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Label.of_string: %S" s)

let to_string l = l
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp fmt l = Format.pp_print_string fmt l
