(** Type-driven call activation.

    "A call may be activated … in order to turn d0's XML type into
    some other desired type" (Section 2.2; the rewriting studied in
    the paper's reference [6]).  Given a target type, activate the
    pending calls that can supply the missing content, round by round,
    until the document validates (pending calls are transparent to
    validation) or no activatable call remains.

    The strategy is the practical fixpoint loop: validate with [sc]
    subtrees erased; on a content-model failure at a node that still
    owns unactivated calls, activate them and re-run the system.  This
    terminates (each round strictly consumes calls) and is sound
    (success means the final document, calls erased, conforms). *)

type report = {
  conforms : bool;  (** Final validation verdict. *)
  rounds : int;  (** Activation rounds performed. *)
  activated : int;  (** Total calls activated. *)
  last_error : string option;
      (** The validation error that remained, when [conforms = false]. *)
}

val erase_calls : Axml_xml.Tree.t -> Axml_xml.Tree.t
(** Remove every [sc] subtree — the view validation judges. *)

val conforms_modulo_calls :
  schema:Axml_schema.Schema.t ->
  type_name:string ->
  Axml_xml.Tree.t ->
  (unit, Axml_schema.Validate.error) result

val activate_until_valid :
  System.t ->
  owner:Axml_net.Peer_id.t ->
  doc:string ->
  schema:Axml_schema.Schema.t ->
  type_name:string ->
  ?max_rounds:int ->
  unit ->
  report
(** @raise Invalid_argument if the document does not exist. *)
