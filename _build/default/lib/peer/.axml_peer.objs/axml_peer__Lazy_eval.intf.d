lib/peer/lazy_eval.mli: Axml_doc Axml_net Axml_query Axml_xml System
