lib/peer/exec.ml: Axml_algebra Axml_doc Axml_net Axml_query Axml_xml List Logs Message Peer System
