lib/peer/message.ml: Axml_algebra Axml_doc Axml_net Axml_query Axml_xml Format List String
