lib/peer/system.ml: Axml_algebra Axml_doc Axml_net Axml_query Axml_xml Buffer Digest Format Hashtbl List Logs Message Peer Printexc String
