lib/peer/peer.mli: Axml_doc Axml_net Axml_xml Hashtbl Message
