lib/peer/system.mli: Axml_algebra Axml_doc Axml_net Axml_xml Format Message Peer
