lib/peer/persist.mli: Axml_net System
