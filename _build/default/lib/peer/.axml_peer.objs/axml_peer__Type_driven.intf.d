lib/peer/type_driven.mli: Axml_net Axml_schema Axml_xml System
