lib/peer/type_driven.ml: Axml_doc Axml_schema Axml_xml Format List Printf System
