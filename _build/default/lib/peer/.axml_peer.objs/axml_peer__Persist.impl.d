lib/peer/persist.ml: Array Axml_doc Axml_net Axml_query Axml_xml Filename Format Fun List Option Peer Printf Result String Sys System
