lib/peer/exec.mli: Axml_algebra Axml_net Axml_xml System
