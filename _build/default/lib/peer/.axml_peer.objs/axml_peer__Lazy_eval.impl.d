lib/peer/lazy_eval.ml: Axml_doc Axml_net Axml_query Axml_xml List Printf System
