lib/peer/peer.ml: Axml_doc Axml_net Axml_xml Hashtbl List Message
