lib/peer/message.mli: Axml_algebra Axml_doc Axml_net Axml_query Axml_xml Format
