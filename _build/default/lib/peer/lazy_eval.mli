(** Lazy query evaluation over AXML documents.

    "A call may be activated only when the call result is needed to
    evaluate some query over the enclosing document" (Section 2.2).
    Evaluating a query over a document with embedded calls eagerly
    activates everything; lazily, only the calls whose results could
    fall inside a region the query inspects ({!Axml_query.Relevance})
    are activated.  Irrelevant calls — often the expensive ones — never
    ship their parameters or pull their results. *)

type activation_mode = Eager | Lazy

type outcome = {
  results : Axml_xml.Forest.t;
  activated : int;  (** Calls actually activated. *)
  skipped : int;  (** Calls proven irrelevant (Lazy only). *)
  stats : Axml_net.Stats.snapshot;
  elapsed_ms : float;
}

val relevant_calls :
  Axml_query.Ast.t ->
  Axml_doc.Document.t ->
  (Axml_xml.Node_id.t * Axml_doc.Sc.t) list * (Axml_xml.Node_id.t * Axml_doc.Sc.t) list
(** Partition the document's calls into (relevant, irrelevant) for the
    given unary query.  Relevance is judged against the label path of
    each call's accumulation region (the [sc] node's parent, or the
    forward-list targets when present — calls forwarding elsewhere are
    irrelevant to a query over {e this} document). *)

val eval_over_document :
  System.t ->
  ctx:Axml_net.Peer_id.t ->
  mode:activation_mode ->
  query:Axml_query.Ast.t ->
  doc:string ->
  outcome
(** Evaluate a unary query over a document stored at [ctx]: activate
    calls according to [mode], run the system to quiescence, then
    evaluate the query over the (now extended) document.
    @raise Invalid_argument if the document is missing, or the query
    is not unary. *)
