module Tree = Axml_xml.Tree

type t = { name : Names.Doc_name.t; root : Tree.t }

let make ~name root = { name = Names.Doc_name.of_string name; root }
let name d = d.name
let root d = d.root
let with_root d root = { d with root }
let calls d = Sc.find_calls d.root
let has_calls d = calls d <> []
let byte_size d = Tree.byte_size d.root
let size d = Tree.size d.root

let insert_under ~node forest d =
  Option.map (fun root -> { d with root })
    (Tree.insert_children ~under:node forest d.root)

let insert_after ~node forest d =
  Option.map (fun root -> { d with root })
    (Tree.insert_siblings ~of_:node forest d.root)

let pp fmt d =
  Format.fprintf fmt "document %a =@ %a" Names.Doc_name.pp d.name Tree.pp d.root

let to_xml_string d = Axml_xml.Serializer.to_string_pretty d.root
