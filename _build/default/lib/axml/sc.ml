module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Forest = Axml_xml.Forest

type t = {
  provider : Names.location;
  service : Names.Service_name.t;
  params : Forest.t list;
  forward : Names.Node_ref.t list;
}

let sc_label = Label.of_string "sc"
let peer_label = Label.of_string "peer"
let service_label = Label.of_string "service"
let forw_label = Label.of_string "forw"

let make ?(forward = []) ~provider ~service params =
  { provider; service = Names.Service_name.of_string service; params; forward }

let param_label i = Label.of_string (Printf.sprintf "param%d" (i + 1))

(* param<k> -> k-1, if the label is a well-formed parameter name. *)
let param_index label =
  let s = Label.to_string label in
  if String.length s > 5 && String.sub s 0 5 = "param" then
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some k when k >= 1 -> Some (k - 1)
    | Some _ | None -> None
  else None

let to_tree ~gen sc =
  let kids =
    [
      Tree.element ~gen peer_label
        [ Tree.text (Format.asprintf "%a" Names.pp_location sc.provider) ];
      Tree.element ~gen service_label
        [ Tree.text (Names.Service_name.to_string sc.service) ];
    ]
    @ List.mapi
        (fun i forest ->
          Tree.element ~gen (param_label i) (Forest.copy ~gen forest))
        sc.params
    @ List.map
        (fun target ->
          Tree.element ~gen forw_label
            [ Tree.text (Names.Node_ref.to_string target) ])
        sc.forward
  in
  Tree.element ~gen sc_label kids

let of_element (e : Tree.element) =
  if not (Label.equal e.label sc_label) then Error "element is not labeled sc"
  else begin
    let provider = ref None
    and service = ref None
    and params = ref []
    and forward = ref [] in
    let problem = ref None in
    let set_problem msg = if !problem = None then problem := Some msg in
    List.iter
      (fun child ->
        match child with
        | Tree.Text _ -> ()
        | Tree.Element ce ->
            if Label.equal ce.label peer_label then begin
              match
                Names.location_of_string (String.trim (Tree.text_content child))
              with
              | loc -> provider := Some loc
              | exception Invalid_argument _ -> set_problem "invalid peer"
            end
            else if Label.equal ce.label service_label then begin
              match
                Names.Service_name.of_string_opt
                  (String.trim (Tree.text_content child))
              with
              | Some s -> service := Some s
              | None -> set_problem "invalid service name"
            end
            else if Label.equal ce.label forw_label then begin
              match
                Names.Node_ref.of_string (String.trim (Tree.text_content child))
              with
              | Some r -> forward := r :: !forward
              | None -> set_problem "invalid forw target"
            end
            else begin
              match param_index ce.label with
              | Some i -> params := (i, ce.children) :: !params
              | None -> ()
            end)
      e.children;
    match (!problem, !provider, !service) with
    | Some msg, _, _ -> Error msg
    | None, None, _ -> Error "sc element lacks a peer child"
    | None, _, None -> Error "sc element lacks a service child"
    | None, Some provider, Some service ->
        let params = List.sort compare !params in
        let expected = List.length params in
        let indices = List.map fst params in
        if indices <> List.init expected Fun.id then
          Error "sc parameters are not numbered consecutively from 1"
        else
          Ok
            {
              provider;
              service;
              params = List.map snd params;
              forward = List.rev !forward;
            }
  end

let is_sc = function
  | Tree.Element e -> Label.equal e.label sc_label
  | Tree.Text _ -> false

let find_calls t =
  let acc = ref [] in
  Tree.iter
    (fun node ->
      match node with
      | Tree.Element e when Label.equal e.label sc_label -> (
          match of_element e with
          | Ok sc -> acc := (e.id, sc) :: !acc
          | Error _ -> ())
      | Tree.Element _ | Tree.Text _ -> ())
    t;
  List.rev !acc

let equal a b =
  Names.location_equal a.provider b.provider
  && Names.Service_name.equal a.service b.service
  && List.equal Axml_xml.Canonical.equal_forest a.params b.params
  && List.equal Names.Node_ref.equal
       (List.sort Names.Node_ref.compare a.forward)
       (List.sort Names.Node_ref.compare b.forward)

let pp fmt sc =
  Format.fprintf fmt "sc(%a, %a, [%d params], [%s])" Names.pp_location
    sc.provider Names.Service_name.pp sc.service (List.length sc.params)
    (String.concat "; " (List.map Names.Node_ref.to_string sc.forward))
