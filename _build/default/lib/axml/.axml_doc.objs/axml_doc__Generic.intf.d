lib/axml/generic.mli: Axml_net Names
