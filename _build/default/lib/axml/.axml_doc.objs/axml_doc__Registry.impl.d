lib/axml/registry.ml: Hashtbl List Names Option Printf Service
