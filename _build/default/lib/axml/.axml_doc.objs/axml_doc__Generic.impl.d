lib/axml/generic.ml: Axml_net Hashtbl List Names Option String
