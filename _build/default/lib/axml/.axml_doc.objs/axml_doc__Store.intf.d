lib/axml/store.mli: Axml_xml Document Names
