lib/axml/store.ml: Document Hashtbl List Names Printf
