lib/axml/document.mli: Axml_xml Format Names Sc
