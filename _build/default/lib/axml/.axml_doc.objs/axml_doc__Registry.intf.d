lib/axml/registry.mli: Axml_query Names Service
