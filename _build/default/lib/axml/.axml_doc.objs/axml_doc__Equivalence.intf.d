lib/axml/equivalence.mli: Axml_xml Document
