lib/axml/service.ml: Axml_query Axml_schema Axml_xml Format List Names Printf
