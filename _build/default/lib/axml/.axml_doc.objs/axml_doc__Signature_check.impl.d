lib/axml/signature_check.ml: Axml_query Axml_schema Axml_xml List Printf Registry Service String
