lib/axml/sc.mli: Axml_xml Format Names
