lib/axml/names.mli: Axml_net Axml_xml Format Map Set
