lib/axml/sc.ml: Axml_xml Format Fun List Names Printf String
