lib/axml/signature_check.mli: Axml_schema Names Registry Service
