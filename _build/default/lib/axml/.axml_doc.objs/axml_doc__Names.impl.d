lib/axml/names.ml: Axml_net Axml_xml Format Map Printf Set String
