lib/axml/service.mli: Axml_query Axml_schema Axml_xml Format Names
