lib/axml/equivalence.ml: Axml_xml Document Format List Names Printf Sc String
