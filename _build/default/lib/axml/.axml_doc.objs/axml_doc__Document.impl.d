lib/axml/document.ml: Axml_xml Format Names Option Sc
