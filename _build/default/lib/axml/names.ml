module Peer_id = Axml_net.Peer_id
module Node_id = Axml_xml.Node_id

module type NAME = sig
  type t = private string

  val of_string : string -> t
  val of_string_opt : string -> t option
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make_name (Kind : sig
  val kind : string
end) : NAME = struct
  type t = string

  let valid s =
    String.length s > 0
    && not
         (String.exists
            (fun c -> c = '@' || c = ' ' || c = '\t' || c = '\n' || c = '\r')
            s)

  let of_string_opt s = if valid s then Some s else None

  let of_string s =
    match of_string_opt s with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "%s.of_string: %S" Kind.kind s)

  let to_string n = n
  let equal = String.equal
  let compare = String.compare
  let pp = Format.pp_print_string

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Map = Map.Make (Ord)
  module Set = Set.Make (Ord)
end

module Doc_name = Make_name (struct
  let kind = "Doc_name"
end)

module Service_name = Make_name (struct
  let kind = "Service_name"
end)

type location = At of Peer_id.t | Any

let location_equal a b =
  match (a, b) with
  | Any, Any -> true
  | At p, At q -> Peer_id.equal p q
  | (Any | At _), _ -> false

let pp_location fmt = function
  | Any -> Format.pp_print_string fmt "any"
  | At p -> Peer_id.pp fmt p

let location_of_string = function
  | "any" -> Any
  | s -> At (Peer_id.of_string s)

let location_to_string = function
  | Any -> "any"
  | At p -> Peer_id.to_string p

let location_compare a b =
  match (a, b) with
  | Any, Any -> 0
  | Any, At _ -> -1
  | At _, Any -> 1
  | At p, At q -> Peer_id.compare p q

module Make_ref (Name : NAME) = struct
  type t = { name : Name.t; at : location }

  let make name at = { name; at }
  let at_peer name ~peer = { name = Name.of_string name; at = At (Peer_id.of_string peer) }
  let any name = { name = Name.of_string name; at = Any }

  let equal a b = Name.equal a.name b.name && location_equal a.at b.at

  let compare a b =
    match Name.compare a.name b.name with
    | 0 -> location_compare a.at b.at
    | c -> c

  let to_string r =
    Printf.sprintf "%s@%s" (Name.to_string r.name) (location_to_string r.at)

  let pp fmt r = Format.pp_print_string fmt (to_string r)

  let of_string s =
    match String.index_opt s '@' with
    | None -> invalid_arg (Printf.sprintf "ref of_string: missing '@' in %S" s)
    | Some i ->
        let name = Name.of_string (String.sub s 0 i) in
        let at =
          location_of_string (String.sub s (i + 1) (String.length s - i - 1))
        in
        { name; at }
end

module Doc_ref = Make_ref (Doc_name)
module Service_ref = Make_ref (Service_name)

module Node_ref = struct
  type t = { node : Node_id.t; peer : Peer_id.t }

  let make ~node ~peer = { node; peer }
  let equal a b = Node_id.equal a.node b.node && Peer_id.equal a.peer b.peer

  let compare a b =
    match Node_id.compare a.node b.node with
    | 0 -> Peer_id.compare a.peer b.peer
    | c -> c

  let to_string r =
    Printf.sprintf "%s@%s" (Node_id.to_string r.node) (Peer_id.to_string r.peer)

  let pp fmt r = Format.pp_print_string fmt (to_string r)

  let of_string s =
    match String.index_opt s '@' with
    | None -> None
    | Some i -> (
        let node = Node_id.of_string (String.sub s 0 i) in
        let peer =
          Peer_id.of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        in
        match (node, peer) with
        | Some node, Some peer -> Some { node; peer }
        | _ -> None)
end
