(** Service call elements.

    An AXML document embeds calls as [sc]-labeled elements whose
    children are [peer], [service], [param1..paramk] and the optional
    [forw] forward targets introduced in Section 2.3:

    {v
    <sc>
      <peer>p1</peer> <service>s1</service>
      <param1>…</param1> … <paramk>…</paramk>
      <forw>n7@p2</forw>
    </sc>
    v}

    This module converts between the XML form and a structured view.
    The extended notation of the paper reads
    sc((pprov|any), serv, [param1..paramk], [forw1..forwm]). *)

type t = {
  provider : Names.location;  (** The peer providing the service, or Any. *)
  service : Names.Service_name.t;
  params : Axml_xml.Forest.t list;  (** Contents of the parami elements. *)
  forward : Names.Node_ref.t list;
      (** Where responses go; empty means the default — as siblings of
          the [sc] node (Section 2.3). *)
}

val sc_label : Axml_xml.Label.t
(** The distinguished label ["sc"]. *)

val make :
  ?forward:Names.Node_ref.t list ->
  provider:Names.location ->
  service:string ->
  Axml_xml.Forest.t list ->
  t

val to_tree : gen:Axml_xml.Node_id.Gen.t -> t -> Axml_xml.Tree.t
(** Encode as an [sc] element (fresh identifiers throughout). *)

val of_element : Axml_xml.Tree.element -> (t, string) result
(** Decode an element labeled [sc].  Parameters are collected in
    [param1], [param2], … index order regardless of child order. *)

val is_sc : Axml_xml.Tree.t -> bool

val find_calls : Axml_xml.Tree.t -> (Axml_xml.Node_id.t * t) list
(** All well-formed service calls in a tree, pre-order, with the node
    identifier of their [sc] element.  Calls nested inside other
    calls' parameters are included. *)

val equal : t -> t -> bool
(** Structural equality modulo parameter-forest node identifiers,
    sibling order ({!Axml_xml.Canonical}) and forward-list order. *)

val pp : Format.formatter -> t -> unit
