(** Services.

    A Web service (p, s) has a type signature (τin, τout); when it
    receives an input forest it replies with one or more output trees
    ("continuous" services send several — Section 2.1, and "we consider
    all services are continuous", Section 2.2).

    Two implementations exist:

    - {e declarative} services are implemented by a visible query —
      the ones the algebra can optimize (ship, compose, push into);
    - {e extern} services are opaque OCaml functions, the analogue of
      arbitrary WSDL operations.  The algebra treats them as black
      boxes. *)

type impl =
  | Declarative of Axml_query.Ast.t
  | Extern of (Axml_xml.Forest.t list -> Axml_xml.Forest.t)
  | Doc_feed of Names.Doc_name.t
      (** A continuous subscription to a provider-local document: the
          call's response stream is the document's current children
          followed by every subtree later inserted into it.  This is
          the canonical continuous service of the AXML model (results
          "accumulate as siblings of the sc node", Section 2.2). *)

type t

val declarative :
  ?signature:Axml_schema.Signature.t ->
  ?continuous:bool ->
  name:string ->
  Axml_query.Ast.t ->
  t
(** [signature] defaults to the untyped signature of the query's
    arity; [continuous] defaults to [true].
    @raise Invalid_argument if the query is ill-formed or the
    signature arity differs from the query's. *)

val extern :
  ?continuous:bool ->
  name:string ->
  signature:Axml_schema.Signature.t ->
  (Axml_xml.Forest.t list -> Axml_xml.Forest.t) ->
  t

val doc_feed : name:string -> doc:string -> t
(** A nullary continuous service streaming the named local document. *)

val name : t -> Names.Service_name.t
val signature : t -> Axml_schema.Signature.t
val arity : t -> int
val continuous : t -> bool
val impl : t -> impl

val query : t -> Axml_query.Ast.t option
(** The implementing query, for declarative services — what other
    peers may inspect to enable optimizations (Section 2.2). *)

val is_declarative : t -> bool

val apply :
  gen:Axml_xml.Node_id.Gen.t -> t -> Axml_xml.Forest.t list -> Axml_xml.Forest.t
(** One evaluation round on a full input (for declarative services, a
    plain query evaluation).  Streaming behaviour is orchestrated by
    the peer runtime on top of {!module:Axml_query.Incremental}.
    @raise Invalid_argument on arity mismatch or on a {!Doc_feed}
    service, whose semantics exists only inside a peer runtime. *)

val pp : Format.formatter -> t -> unit
