type t = {
  services : (Names.Service_name.t, Service.t) Hashtbl.t;
  mutable next_fresh : int;
}

let create () = { services = Hashtbl.create 16; next_fresh = 0 }

let add t s =
  let name = Service.name s in
  if Hashtbl.mem t.services name then
    invalid_arg
      (Printf.sprintf "Registry.add: service %S already exists"
         (Names.Service_name.to_string name))
  else Hashtbl.replace t.services name s

let replace t s = Hashtbl.replace t.services (Service.name s) s
let find t name = Hashtbl.find_opt t.services name

let find_by_string t s =
  match Names.Service_name.of_string_opt s with
  | None -> None
  | Some n -> find t n

let mem t name = Hashtbl.mem t.services name
let remove t name = Hashtbl.remove t.services name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.services []
  |> List.sort Names.Service_name.compare

let services t = List.filter_map (find t) (names t)

let visible_query t name = Option.bind (find t name) Service.query

let install_query t ~prefix q =
  let rec pick i =
    let candidate = Printf.sprintf "%s_%d" prefix i in
    match Names.Service_name.of_string_opt candidate with
    | Some n when not (Hashtbl.mem t.services n) -> (candidate, n)
    | Some _ | None -> pick (i + 1)
  in
  let candidate, name = pick t.next_fresh in
  t.next_fresh <- t.next_fresh + 1;
  add t (Service.declarative ~name:candidate q);
  name
