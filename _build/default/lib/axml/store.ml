type t = (Names.Doc_name.t, Document.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let add t doc =
  let name = Document.name doc in
  if Hashtbl.mem t name then
    invalid_arg
      (Printf.sprintf "Store.add: document %S already exists"
         (Names.Doc_name.to_string name))
  else Hashtbl.replace t name doc

let install t ~name root =
  let rec pick candidate i =
    let dn = Names.Doc_name.of_string candidate in
    if Hashtbl.mem t dn then pick (Printf.sprintf "%s_%d" name i) (i + 1)
    else dn
  in
  let dn = pick name 1 in
  Hashtbl.replace t dn
    (Document.make ~name:(Names.Doc_name.to_string dn) root);
  dn

let find t name = Hashtbl.find_opt t name

let find_by_string t s =
  match Names.Doc_name.of_string_opt s with
  | None -> None
  | Some n -> find t n

let mem t name = Hashtbl.mem t name
let remove t name = Hashtbl.remove t name

let update t doc =
  let name = Document.name doc in
  if not (Hashtbl.mem t name) then raise Not_found;
  Hashtbl.replace t name doc

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t []
  |> List.sort Names.Doc_name.compare

let documents t = List.filter_map (find t) (names t)

let total_bytes t =
  Hashtbl.fold (fun _ d acc -> acc + Document.byte_size d) t 0

let update_root t name f =
  match Hashtbl.find_opt t name with
  | None -> false
  | Some doc ->
      Hashtbl.replace t name (Document.with_root doc (f (Document.root doc)));
      true
