(** AXML documents.

    "An XML document is a tuple (t, d) where t is an XML tree and
    d ∈ D is a document name" (Section 2.1); an AXML document
    additionally contains [sc] nodes (Section 2.2). *)

type t

val make : name:string -> Axml_xml.Tree.t -> t
val name : t -> Names.Doc_name.t
val root : t -> Axml_xml.Tree.t
val with_root : t -> Axml_xml.Tree.t -> t

val calls : t -> (Axml_xml.Node_id.t * Sc.t) list
(** All service calls embedded in the document. *)

val has_calls : t -> bool

val byte_size : t -> int
val size : t -> int

val insert_under :
  node:Axml_xml.Node_id.t -> Axml_xml.Forest.t -> t -> t option
(** Add trees as children of an identified node (how forwarded results
    land, Section 2.3). *)

val insert_after :
  node:Axml_xml.Node_id.t -> Axml_xml.Forest.t -> t -> t option
(** Add trees as siblings of an identified node (default accumulation
    of call results, Section 2.2 step 3). *)

val pp : Format.formatter -> t -> unit
val to_xml_string : t -> string
