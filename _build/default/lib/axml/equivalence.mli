(** Document and tree equivalence (Section 2.3).

    "Two trees t1 and t2 are equivalent iff their potential evolution,
    via service call activations, will eventually reach the same
    fixpoint" — formalized in the Positive AXML paper [5] and
    undecidable in general.  We implement a sound, decidable
    approximation adequate for the optimizer:

    - plain (call-free) parts are compared as unordered trees
      ({!Axml_xml.Canonical});
    - [sc] subtrees are compared as calls: same provider, service,
      forward targets and (recursively) equivalent parameters.  Two
      documents carrying the same pending calls evolve identically
      under the same system, hence reach the same fixpoint.

    Soundness: [equivalent t1 t2 = true] implies paper-equivalence.
    Completeness fails by design (e.g. a call and its materialized
    result are paper-equivalent but we report [false]). *)

val equivalent : Axml_xml.Tree.t -> Axml_xml.Tree.t -> bool

val normalize : Axml_xml.Tree.t -> Axml_xml.Tree.t
(** The normal form compared by {!equivalent}: canonical ordering with
    [sc] subtrees replaced by a canonical call encoding (parameters
    canonicalized, forward list sorted). *)

val equivalent_documents : Document.t -> Document.t -> bool
(** Tree equivalence of the roots; names may differ (equivalence
    classes group documents under {e different} names/peers). *)

val fingerprint : Axml_xml.Tree.t -> string
(** Digest of {!normalize}; equal iff {!equivalent}. *)
