module Schema = Axml_schema.Schema
module Signature = Axml_schema.Signature
module Typecheck = Axml_query.Typecheck
module Label = Axml_xml.Label

let any = Schema.any_type_name

let check schema service =
  match Service.query service with
  | None -> Ok () (* nothing to check for opaque services *)
  | Some q -> (
      let signature = Service.signature service in
      let inputs = Signature.inputs signature in
      let declared_out = Signature.output signature in
      if declared_out = any then Ok ()
      else
        match Typecheck.infer_output schema ~inputs ~prefix:"_inferred" q with
        | Error e -> Error e
        | Ok (extended, inferred) ->
            let compatible t =
              t = declared_out || t = any
              ||
              match
                ( Typecheck.label_of extended t,
                  Typecheck.label_of extended declared_out )
              with
              | Some a, Some b -> Label.equal a b
              | _ -> false
            in
            if inferred <> [] && List.for_all compatible inferred then Ok ()
            else
              Error
                (Printf.sprintf
                   "declared output type %S does not cover inferred types [%s]"
                   declared_out
                   (String.concat "; " inferred)))

let check_registry schema registry =
  List.filter_map
    (fun svc ->
      match check schema svc with
      | Ok () -> None
      | Error msg -> Some (Service.name svc, msg))
    (Registry.services registry)
