(** Per-peer service registry.

    The services a peer provides, keyed by name.  Declarative
    services' implementing statements "are visible to other peers,
    enabling many optimizations" (Section 2.2) — {!visible_query}
    is that inspection hook. *)

type t

val create : unit -> t

val add : t -> Service.t -> unit
(** @raise Invalid_argument on duplicate names. *)

val replace : t -> Service.t -> unit
val find : t -> Names.Service_name.t -> Service.t option
val find_by_string : t -> string -> Service.t option
val mem : t -> Names.Service_name.t -> bool
val remove : t -> Names.Service_name.t -> unit
val names : t -> Names.Service_name.t list
val services : t -> Service.t list

val visible_query : t -> Names.Service_name.t -> Axml_query.Ast.t option
(** The implementing query of a declarative service, if registered. *)

val install_query :
  t -> prefix:string -> Axml_query.Ast.t -> Names.Service_name.t
(** Deploy a query as a new declarative service under a fresh name
    derived from [prefix] — definition (8): evaluating
    send(p2, q\@p1) "deploys query q on peer p2 as a new service". *)
