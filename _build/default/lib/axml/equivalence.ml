module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Canonical = Axml_xml.Canonical

(* Rebuild sc subtrees in a canonical shape: peer, service, params (in
   index order, canonicalized), forw targets sorted textually.  Fresh
   structure reuses the original sc node identifier so that normalize
   is identity on identifiers (Canonical ignores them anyway). *)
let rec normalize t =
  match t with
  | Tree.Text _ -> t
  | Tree.Element e when Label.equal e.label Sc.sc_label -> (
      match Sc.of_element e with
      | Error _ -> normalize_children t
      | Ok sc ->
          let mk label kids = Tree.with_id e.id (Label.of_string label) kids in
          let peer =
            mk "peer" [ Tree.text (Format.asprintf "%a" Names.pp_location sc.provider) ]
          in
          let service =
            mk "service" [ Tree.text (Names.Service_name.to_string sc.service) ]
          in
          let params =
            List.mapi
              (fun i forest ->
                Tree.with_id e.id
                  (Label.of_string (Printf.sprintf "param%d" (i + 1)))
                  (List.map normalize forest))
              sc.params
          in
          let forward =
            sc.forward
            |> List.map Names.Node_ref.to_string
            |> List.sort String.compare
            |> List.map (fun s -> mk "forw" [ Tree.text s ])
          in
          Canonical.canonicalize
            (Tree.with_id e.id Sc.sc_label ((peer :: service :: params) @ forward)))
  | Tree.Element _ -> normalize_children t

and normalize_children t =
  match t with
  | Tree.Text _ -> t
  | Tree.Element e ->
      Canonical.canonicalize
        (Tree.Element { e with children = List.map normalize e.children })

let fingerprint t = Canonical.fingerprint (normalize t)
let equivalent a b = String.equal (fingerprint a) (fingerprint b)

let equivalent_documents d1 d2 =
  equivalent (Document.root d1) (Document.root d2)
