(** Service signature checking.

    A declarative service's declared output type τout can be checked
    against what its implementing query can actually produce
    ({!Axml_query.Typecheck}).  The check is structural compatibility
    — every inferred output type must be the declared one, the
    universal type, or at least carry the declared element label —
    not full regular-language inclusion (undecidable to do cheaply and
    unnecessary for catching the common mistakes). *)

val check :
  Axml_schema.Schema.t -> Service.t -> (unit, string) result
(** [Ok ()] for opaque (extern / feed) services and for services whose
    declared output is the universal type. *)

val check_registry :
  Axml_schema.Schema.t -> Registry.t -> (Names.Service_name.t * string) list
(** Check every registered service; returns the failures. *)
