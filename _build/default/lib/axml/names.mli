(** Document and service names.

    The paper's sets D (document names) and S (service names), plus the
    qualified references [d\@p], [s\@p], [n\@p] and the generic
    [d\@any] / [s\@any] forms of Section 2.3. *)

module type NAME = sig
  type t = private string

  val of_string : string -> t
  (** @raise Invalid_argument on the empty string or strings with
      ['@'] or whitespace. *)

  val of_string_opt : string -> t option
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Doc_name : NAME
module Service_name : NAME

(** Where a resource lives: a specific peer, or "any" — an equivalence
    class resolved by a pick function (definition (9)). *)
type location = At of Axml_net.Peer_id.t | Any

val location_equal : location -> location -> bool
val pp_location : Format.formatter -> location -> unit

val location_of_string : string -> location
(** ["any"] maps to {!Any}; anything else parses as a peer identifier.
    @raise Invalid_argument on an invalid peer identifier. *)

(** A document reference [d\@p] or [d\@any]. *)
module Doc_ref : sig
  type t = { name : Doc_name.t; at : location }

  val make : Doc_name.t -> location -> t
  val at_peer : string -> peer:string -> t
  val any : string -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
  (** ["d\@p"] notation. *)

  val of_string : string -> t
  (** @raise Invalid_argument on malformed input. *)
end

(** A service reference [s\@p] or [s\@any]. *)
module Service_ref : sig
  type t = { name : Service_name.t; at : location }

  val make : Service_name.t -> location -> t
  val at_peer : string -> peer:string -> t
  val any : string -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val of_string : string -> t
end

(** A node reference [n\@p] — the targets of forward lists. *)
module Node_ref : sig
  type t = { node : Axml_xml.Node_id.t; peer : Axml_net.Peer_id.t }

  val make : node:Axml_xml.Node_id.t -> peer:Axml_net.Peer_id.t -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val of_string : string -> t option
end
