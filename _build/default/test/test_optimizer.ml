open Axml
open Helpers
module Expr = Algebra.Expr
module Optimizer = Algebra.Optimizer
module System = Runtime.System

let p1 = peer "p1"
let p2 = peer "p2"

let topo = mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ]

let catalog_xml seed items sel =
  let rng = Workload.Rng.create ~seed in
  let g = Xml.Node_id.Gen.create ~namespace:"cat" in
  Xml.Serializer.to_string
    (Workload.Xml_gen.catalog ~gen:g ~rng ~items ~selectivity:sel ())

let sel_query = Workload.Xml_gen.selection_query ()

let naive_plan = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ]

let env =
  Algebra.Cost.default_env ~doc_bytes:(fun _ -> 20_000) topo

let test_greedy_improves () =
  let r = Optimizer.optimize ~env ~ctx:p1 (Optimizer.Greedy { max_steps = 5 }) naive_plan in
  Alcotest.(check bool) "strictly better" true
    (Algebra.Cost.weighted r.cost < Algebra.Cost.weighted r.initial_cost);
  Alcotest.(check bool) "took at least one step" true (r.trace <> []);
  Alcotest.(check bool) "explored plans" true (r.explored > 1)

let test_exhaustive_no_worse_than_greedy () =
  let greedy =
    Optimizer.optimize ~env ~ctx:p1 (Optimizer.Greedy { max_steps = 4 }) naive_plan
  in
  let exhaustive =
    Optimizer.optimize ~env ~ctx:p1 (Optimizer.Exhaustive { depth = 2 }) naive_plan
  in
  Alcotest.(check bool) "exhaustive <= greedy" true
    (Algebra.Cost.weighted exhaustive.cost
    <= Algebra.Cost.weighted greedy.cost +. 1e-9)

let test_optimized_plan_still_correct () =
  (* The optimizer's favourite plan must produce the same answers on
     the live system. *)
  let xml = catalog_xml 11 80 0.1 in
  let build () =
    let sys = System.create topo in
    System.load_document sys p2 ~name:"cat" ~xml;
    sys
  in
  let reference =
    Runtime.Exec.run_to_quiescence (build ()) ~ctx:p1 naive_plan
  in
  let r =
    Optimizer.optimize ~env ~ctx:p1 (Optimizer.Greedy { max_steps = 5 }) naive_plan
  in
  let optimized = Runtime.Exec.run_to_quiescence (build ()) ~ctx:p1 r.plan in
  Alcotest.(check bool) "same results" true
    (Xml.Canonical.equal_forest reference.results optimized.results);
  Alcotest.(check bool) "fewer bytes on the wire" true
    (optimized.stats.bytes < reference.stats.bytes)

let test_stable_when_optimal () =
  (* A purely local plan cannot be improved; the optimizer must return
     it unchanged. *)
  let local = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p1" ] in
  let r = Optimizer.optimize ~env ~ctx:p1 (Optimizer.Greedy { max_steps = 5 }) local in
  Alcotest.(check bool) "unchanged" true (Expr.equal r.plan local);
  Alcotest.(check (list string)) "no steps" []
    (List.map (fun (s : Optimizer.step) -> s.rule) r.trace)

let test_objective_respected () =
  (* With a latency-only objective, the chosen plan's latency must not
     exceed the bytes-optimal plan's latency. *)
  let latency_only c = c.Algebra.Cost.latency_ms in
  let bytes_only c = float_of_int c.Algebra.Cost.bytes in
  let by_latency =
    Optimizer.optimize ~env ~ctx:p1 ~objective:latency_only
      (Optimizer.Exhaustive { depth = 2 }) naive_plan
  in
  let by_bytes =
    Optimizer.optimize ~env ~ctx:p1 ~objective:bytes_only
      (Optimizer.Exhaustive { depth = 2 }) naive_plan
  in
  Alcotest.(check bool) "latency objective" true
    (by_latency.cost.Algebra.Cost.latency_ms
    <= by_bytes.cost.Algebra.Cost.latency_ms +. 1e-9);
  Alcotest.(check bool) "bytes objective" true
    (by_bytes.cost.Algebra.Cost.bytes <= by_latency.cost.Algebra.Cost.bytes)

let suite =
  [
    ("greedy improves the naive plan", `Quick, test_greedy_improves);
    ("exhaustive at least as good", `Quick, test_exhaustive_no_worse_than_greedy);
    ("optimized plan stays correct", `Quick, test_optimized_plan_still_correct);
    ("local plans are fixpoints", `Quick, test_stable_when_optimal);
    ("objective function respected", `Quick, test_objective_respected);
  ]
