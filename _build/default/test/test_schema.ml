open Axml
open Helpers
module Cm = Schema.Content_model

let test_content_model_basics () =
  let matches atom (c : char) =
    match atom with
    | Cm.Ref s -> s = String.make 1 c
    | Cm.Text -> c = '#'
    | Cm.Wildcard -> true
  in
  let accepts model s =
    Cm.matches_seq ~matches (List.init (String.length s) (String.get s)) model
  in
  let ab = Cm.seq [ Cm.ref_ "a"; Cm.ref_ "b" ] in
  Alcotest.(check bool) "seq ok" true (accepts ab "ab");
  Alcotest.(check bool) "seq wrong order" false (accepts ab "ba");
  Alcotest.(check bool) "seq too short" false (accepts ab "a");
  let astar = Cm.star (Cm.ref_ "a") in
  Alcotest.(check bool) "star empty" true (accepts astar "");
  Alcotest.(check bool) "star many" true (accepts astar "aaaa");
  Alcotest.(check bool) "star wrong" false (accepts astar "ab");
  let aplus = Cm.plus (Cm.ref_ "a") in
  Alcotest.(check bool) "plus empty rejected" false (accepts aplus "");
  Alcotest.(check bool) "plus one" true (accepts aplus "a");
  let aopt = Cm.opt (Cm.ref_ "a") in
  Alcotest.(check bool) "opt empty" true (accepts aopt "");
  Alcotest.(check bool) "opt two" false (accepts aopt "aa");
  let alt = Cm.alt [ Cm.ref_ "a"; Cm.ref_ "b" ] in
  Alcotest.(check bool) "alt left" true (accepts alt "a");
  Alcotest.(check bool) "alt right" true (accepts alt "b");
  Alcotest.(check bool) "alt both" false (accepts alt "ab");
  let complex =
    Cm.seq [ Cm.ref_ "a"; Cm.star (Cm.alt [ Cm.ref_ "b"; Cm.ref_ "c" ]); Cm.opt (Cm.ref_ "d") ]
  in
  Alcotest.(check bool) "complex 1" true (accepts complex "abcbd");
  Alcotest.(check bool) "complex 2" true (accepts complex "a");
  Alcotest.(check bool) "complex 3" false (accepts complex "ad d")

let test_multiset_matching () =
  let matches atom (c : char) =
    match atom with
    | Cm.Ref s -> s = String.make 1 c
    | Cm.Text -> c = '#'
    | Cm.Wildcard -> true
  in
  let accepts model s =
    Cm.matches_multiset ~matches
      (List.init (String.length s) (String.get s))
      model
  in
  let abc = Cm.seq [ Cm.ref_ "a"; Cm.ref_ "b"; Cm.ref_ "c" ] in
  Alcotest.(check bool) "in order" true (accepts abc "abc");
  Alcotest.(check bool) "permuted" true (accepts abc "cab");
  Alcotest.(check bool) "another permutation" true (accepts abc "bca");
  Alcotest.(check bool) "missing element" false (accepts abc "ac");
  Alcotest.(check bool) "extra element" false (accepts abc "abca");
  let a_star_b = Cm.seq [ Cm.star (Cm.ref_ "a"); Cm.ref_ "b" ] in
  Alcotest.(check bool) "star permuted" true (accepts a_star_b "aba");
  Alcotest.(check bool) "star missing mandatory" false (accepts a_star_b "aaa");
  let choice = Cm.alt [ Cm.ref_ "a"; Cm.seq [ Cm.ref_ "b"; Cm.ref_ "c" ] ] in
  Alcotest.(check bool) "alt branch permuted" true (accepts choice "cb");
  Alcotest.(check bool) "empty vs epsilon" true
    (Cm.matches_multiset ~matches [] Cm.Epsilon);
  Alcotest.(check bool) "empty language rejects" false
    (Cm.matches_multiset ~matches [] Cm.Empty)

let test_unordered_validation () =
  let schema =
    Schema.Schema.of_decls
      [
        Schema.Schema.decl ~name:"r" ~label:"r" ~mixed:false
          ~content:(Cm.seq [ Cm.ref_ "a"; Cm.ref_ "b" ]) ();
        Schema.Schema.decl ~name:"a" ~label:"a" ~mixed:true ~content:Cm.Epsilon ();
        Schema.Schema.decl ~name:"b" ~label:"b" ~mixed:true ~content:Cm.Epsilon ();
      ]
  in
  let swapped = parse "<r><b/><a/></r>" in
  Alcotest.(check bool) "ordered rejects swap" false
    (Schema.Validate.conforms ~schema ~type_name:"r" swapped);
  Alcotest.(check bool) "unordered accepts swap" true
    (Schema.Validate.conforms ~unordered:true ~schema ~type_name:"r" swapped);
  Alcotest.(check bool) "unordered still rejects junk" false
    (Schema.Validate.conforms ~unordered:true ~schema ~type_name:"r"
       (parse "<r><b/><b/></r>"))

let test_nullable () =
  Alcotest.(check bool) "epsilon" true (Cm.nullable Cm.Epsilon);
  Alcotest.(check bool) "empty" false (Cm.nullable Cm.Empty);
  Alcotest.(check bool) "star" true (Cm.nullable (Cm.star (Cm.ref_ "a")));
  Alcotest.(check bool) "plus of nullable" true
    (Cm.nullable (Cm.plus (Cm.opt (Cm.ref_ "a"))));
  Alcotest.(check bool) "plus of atom" false (Cm.nullable (Cm.plus (Cm.ref_ "a")))

let test_atoms () =
  let m = Cm.seq [ Cm.ref_ "a"; Cm.alt [ Cm.ref_ "b"; Cm.ref_ "a" ]; Cm.text ] in
  Alcotest.(check int) "dedup atoms" 3 (List.length (Cm.atoms m))

let library_schema () =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"lib" ~label:"lib" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "book"))
        ();
      Schema.Schema.decl ~name:"book" ~label:"book" ~mixed:false
        ~content:(Cm.seq [ Cm.ref_ "title"; Cm.opt (Cm.ref_ "year") ])
        ~attributes:[ { Schema.Schema.attr_name = "isbn"; required = true } ]
        ();
      Schema.Schema.decl ~name:"title" ~label:"title" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"year" ~label:"year" ~mixed:true
        ~content:Cm.Epsilon ();
    ]

let ok = Alcotest.(check bool) "valid" true
let bad = Alcotest.(check bool) "invalid" false

let conforms xml ty =
  Schema.Validate.conforms ~schema:(library_schema ()) ~type_name:ty (parse xml)

let test_validate_accepts () =
  ok (conforms {|<lib><book isbn="1"><title>ml</title></book></lib>|} "lib");
  ok
    (conforms
       {|<lib><book isbn="1"><title>ml</title><year>2006</year></book><book isbn="2"><title>db</title></book></lib>|}
       "lib");
  ok (conforms "<lib/>" "lib");
  ok (conforms "<title>anything at all</title>" "title")

let test_validate_rejects () =
  bad (conforms {|<lib><book><title>no isbn</title></book></lib>|} "lib");
  bad (conforms {|<lib><book isbn="1"><year>2006</year></book></lib>|} "lib")
    (* missing mandatory title *);
  bad (conforms {|<lib><book isbn="1"><title>t</title><title>t2</title></book></lib>|} "lib");
  bad (conforms {|<shelf/>|} "lib") (* wrong label *);
  bad (conforms {|<lib><magazine/></lib>|} "lib")

let test_any_type () =
  ok
    (Schema.Validate.conforms ~schema:Schema.Schema.empty
       ~type_name:Schema.Schema.any_type_name (parse "<whatever/>"));
  bad
    (Schema.Validate.conforms ~schema:Schema.Schema.empty
       ~type_name:Schema.Schema.any_type_name (Xml.Tree.text "bare text"))

let test_mixed_content () =
  let schema =
    Schema.Schema.of_decls
      [
        Schema.Schema.decl ~name:"p" ~label:"p" ~mixed:true
          ~content:(Cm.star (Cm.ref_ "b")) ();
        Schema.Schema.decl ~name:"b" ~label:"b" ~mixed:true ~content:Cm.Epsilon ();
      ]
  in
  ok (Schema.Validate.conforms ~schema ~type_name:"p" (parse "<p>text <b>bold</b> more</p>"))

let test_check_closed () =
  let dangling =
    Schema.Schema.of_decls
      [
        Schema.Schema.decl ~name:"a" ~label:"a" ~mixed:false
          ~content:(Cm.ref_ "ghost") ();
      ]
  in
  (match Schema.Schema.check_closed dangling with
  | Error [ "ghost" ] -> ()
  | Error other -> Alcotest.failf "unexpected dangling set: %s" (String.concat "," other)
  | Ok () -> Alcotest.fail "should report ghost");
  Alcotest.(check bool) "library closed" true
    (Result.is_ok (Schema.Schema.check_closed (library_schema ())));
  let with_any =
    Schema.Schema.of_decls
      [
        Schema.Schema.decl ~name:"a" ~label:"a" ~mixed:false
          ~content:(Cm.ref_ Schema.Schema.any_type_name) ();
      ]
  in
  Alcotest.(check bool) "#any is always declared" true
    (Result.is_ok (Schema.Schema.check_closed with_any))

let test_union () =
  let s1 =
    Schema.Schema.of_decls [ Schema.Schema.decl ~name:"a" ~label:"a" () ]
  in
  let s2 =
    Schema.Schema.of_decls [ Schema.Schema.decl ~name:"b" ~label:"b" () ]
  in
  (match Schema.Schema.union s1 s2 with
  | Ok u -> Alcotest.(check int) "merged" 2 (List.length (Schema.Schema.type_names u))
  | Error e -> Alcotest.fail e);
  match Schema.Schema.union s1 s1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "clash should fail"

let test_signature () =
  let schema = library_schema () in
  let sg = Schema.Signature.make ~schema ~inputs:[ "book" ] ~output:"lib" in
  Alcotest.(check int) "arity" 1 (Schema.Signature.arity sg);
  Alcotest.(check bool) "good input" true
    (Result.is_ok
       (Schema.Signature.check_inputs sg
          [ parse {|<book isbn="3"><title>x</title></book>|} ]));
  Alcotest.(check bool) "bad input" false
    (Result.is_ok (Schema.Signature.check_inputs sg [ parse "<lib/>" ]));
  Alcotest.(check bool) "arity mismatch" false
    (Result.is_ok (Schema.Signature.check_inputs sg []));
  Alcotest.(check bool) "good output" true
    (Result.is_ok (Schema.Signature.check_output sg (parse "<lib/>")));
  (match Schema.Signature.make ~schema ~inputs:[ "ghost" ] ~output:"lib" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared type must be rejected");
  let u = Schema.Signature.untyped ~arity:2 in
  Alcotest.(check bool) "untyped accepts anything" true
    (Result.is_ok
       (Schema.Signature.check_inputs u [ parse "<a/>"; parse "<b/>" ]));
  Alcotest.(check bool) "compatible" true
    (Schema.Signature.compatible u (Schema.Signature.untyped ~arity:2));
  Alcotest.(check bool) "incompatible arity" false
    (Schema.Signature.compatible u (Schema.Signature.untyped ~arity:1))

let suite =
  [
    ("content model matching", `Quick, test_content_model_basics);
    ("multiset (unordered) matching", `Quick, test_multiset_matching);
    ("unordered validation", `Quick, test_unordered_validation);
    ("nullable", `Quick, test_nullable);
    ("atoms", `Quick, test_atoms);
    ("validation accepts", `Quick, test_validate_accepts);
    ("validation rejects", `Quick, test_validate_rejects);
    ("universal type", `Quick, test_any_type);
    ("mixed content", `Quick, test_mixed_content);
    ("closedness check", `Quick, test_check_closed);
    ("schema union", `Quick, test_union);
    ("service signatures", `Quick, test_signature);
  ]
