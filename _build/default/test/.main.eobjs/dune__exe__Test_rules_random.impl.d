test/test_rules_random.ml: Algebra Axml Doc Helpers List Printf QCheck QCheck_alcotest Runtime String Workload Xml
