test/main.mli:
