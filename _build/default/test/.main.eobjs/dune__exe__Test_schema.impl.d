test/test_schema.ml: Alcotest Axml Helpers List Result Schema String Xml
