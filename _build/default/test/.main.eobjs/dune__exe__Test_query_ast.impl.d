test/test_query_ast.ml: Alcotest Axml Helpers List Printf Query
