test/test_lazy.ml: Alcotest Axml Axml_doc Doc Helpers List Option Query Result Runtime Schema String Xml
