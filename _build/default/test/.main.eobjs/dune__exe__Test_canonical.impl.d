test/test_canonical.ml: Alcotest Axml Helpers String Xml
