test/test_type_driven.ml: Alcotest Axml Doc Helpers List Result Runtime Schema Xml
