test/test_algebra.ml: Alcotest Algebra Axml Doc Helpers List Net Printf Xml
