test/test_rewrite.ml: Alcotest Algebra Axml Doc Helpers List Net Printf String Xml
