test/test_compose.ml: Alcotest Axml Helpers List Printf Query Result Xml
