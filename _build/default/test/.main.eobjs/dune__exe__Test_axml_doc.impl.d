test/test_axml_doc.ml: Alcotest Axml Doc Helpers List Net Option Schema Xml
