test/test_tree.ml: Alcotest Axml Fun Helpers List Option String Xml
