test/test_scenarios.ml: Alcotest Algebra Axml Doc Helpers List Option Runtime Workload Xml
