test/test_rules_exec.ml: Alcotest Algebra Axml Doc Helpers List Option Printf Runtime Xml
