test/test_optimizer.ml: Alcotest Algebra Axml Helpers List Runtime Workload Xml
