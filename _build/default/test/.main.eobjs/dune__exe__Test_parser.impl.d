test/test_parser.ml: Alcotest Axml Helpers List Option Printf String Xml
