test/test_path_zipper.ml: Alcotest Axml Helpers List Option Xml
