test/test_query_optimize.ml: Alcotest Axml Helpers List Printf QCheck QCheck_alcotest Query Workload Xml
