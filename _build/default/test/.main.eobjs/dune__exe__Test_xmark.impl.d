test/test_xmark.ml: Alcotest Axml Helpers List Printf Query Workload Xml
