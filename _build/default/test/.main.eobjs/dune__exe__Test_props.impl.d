test/test_props.ml: Algebra Axml Fun List Net Printf QCheck QCheck_alcotest Query Schema Workload Xml
