test/test_persist.ml: Alcotest Array Axml Doc Filename Helpers List Result Runtime Schema String Sys Xml
