test/test_extensions.ml: Alcotest Algebra Axml Helpers List Net Query Runtime Workload Xml
