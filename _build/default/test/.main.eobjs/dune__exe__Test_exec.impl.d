test/test_exec.ml: Alcotest Algebra Axml Doc Helpers List Net Option Runtime Schema String Xml
