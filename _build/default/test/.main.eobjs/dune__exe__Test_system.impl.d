test/test_system.ml: Alcotest Axml Doc Helpers List Option Runtime String Xml
