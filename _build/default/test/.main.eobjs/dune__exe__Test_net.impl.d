test/test_net.ml: Alcotest Axml Float Helpers List Net Option
