test/helpers.ml: Alcotest Axml Fmt List Net Query Result Xml
