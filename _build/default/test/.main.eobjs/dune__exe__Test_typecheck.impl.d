test/test_typecheck.ml: Alcotest Axml Doc Helpers List Query Result Schema String
