test/test_query_eval.ml: Alcotest Axml Helpers Option Query Xml
