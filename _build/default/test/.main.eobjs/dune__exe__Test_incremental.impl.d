test/test_incremental.ml: Alcotest Axml Helpers List Query
