test/test_schema_gen.ml: Alcotest Axml List Printf QCheck QCheck_alcotest Query Schema Workload Xml
