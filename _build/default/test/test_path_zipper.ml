open Axml
open Helpers

let doc () =
  parse
    {|<lib><shelf><book><title>ml</title></book><book><title>db</title></book></shelf><title>root-title</title></lib>|}

let labels_of nodes =
  List.filter_map
    (fun n -> Option.map Xml.Label.to_string (Xml.Tree.label n))
    nodes

let test_path_parse_print () =
  let cases = [ "/a/b"; "//x"; "/a//b/c"; "//a//b" ] in
  List.iter
    (fun s ->
      let p = Xml.Path.of_string s in
      Alcotest.(check string) ("roundtrip " ^ s) s (Xml.Path.to_string p))
    cases;
  Alcotest.(check int) "empty path" 0 (List.length (Xml.Path.of_string "/"));
  Alcotest.(check int) "bare label" 1 (List.length (Xml.Path.of_string "a"))

let test_path_parse_errors () =
  List.iter
    (fun s ->
      match Xml.Path.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" s)
    [ "/a/"; "a//"; "/a b" ]

let test_child_selection () =
  let t = doc () in
  let titles = Xml.Path.select (Xml.Path.of_string "/title") t in
  Alcotest.(check int) "direct child only" 1 (List.length titles);
  Alcotest.(check string) "value" "root-title"
    (Xml.Tree.text_content (List.hd titles))

let test_descendant_selection () =
  let t = doc () in
  let titles = Xml.Path.select (Xml.Path.of_string "//title") t in
  Alcotest.(check int) "all titles" 3 (List.length titles);
  let books = Xml.Path.select (Xml.Path.of_string "//book/title") t in
  Alcotest.(check int) "book titles" 2 (List.length books)

let test_mixed_path () =
  let t = doc () in
  let r = Xml.Path.select (Xml.Path.of_string "/shelf//title") t in
  Alcotest.(check int) "shelf titles" 2 (List.length r)

let test_exists () =
  let t = doc () in
  Alcotest.(check bool) "exists" true
    (Xml.Path.exists (Xml.Path.of_string "//book") t);
  Alcotest.(check bool) "not exists" false
    (Xml.Path.exists (Xml.Path.of_string "//magazine") t)

let test_select_forest () =
  let g = gen () in
  let f = [ elt g "a" [ elt g "b" [] ]; elt g "b" [] ] in
  let direct = Xml.Path.select_forest (Xml.Path.of_string "/b") f in
  Alcotest.(check int) "forest child step hits roots" 1 (List.length direct);
  let desc = Xml.Path.select_forest (Xml.Path.of_string "//b") f in
  Alcotest.(check int) "forest descendant" 2 (List.length desc)

let test_zipper_navigation () =
  let t = doc () in
  let z = Xml.Zipper.of_tree t in
  let z = Option.get (Xml.Zipper.down z) in
  Alcotest.(check (list string)) "first child" [ "shelf" ]
    (labels_of [ Xml.Zipper.focus z ]);
  let z = Option.get (Xml.Zipper.right z) in
  Alcotest.(check (list string)) "second child" [ "title" ]
    (labels_of [ Xml.Zipper.focus z ]);
  Alcotest.(check bool) "no right of last" true (Xml.Zipper.right z = None);
  let z = Option.get (Xml.Zipper.left z) in
  let z = Option.get (Xml.Zipper.up z) in
  Alcotest.(check (list string)) "back at root" [ "lib" ]
    (labels_of [ Xml.Zipper.focus z ])

let test_zipper_edit_rebuild () =
  let t = doc () in
  let g = gen () in
  let z = Xml.Zipper.of_tree t in
  let z = Option.get (Xml.Zipper.down z) in
  let z = Xml.Zipper.append_child (elt g "book" [ txt "new" ]) z in
  let t' = Xml.Zipper.to_tree z in
  Alcotest.(check int) "book added" 3
    (List.length (Xml.Path.select (Xml.Path.of_string "//book") t'))

let test_zipper_find_id () =
  let t = doc () in
  let target =
    List.nth (Xml.Path.select (Xml.Path.of_string "//book") t) 1
  in
  let tid = Option.get (Xml.Tree.id target) in
  match Xml.Zipper.find_id tid (Xml.Zipper.of_tree t) with
  | Some z ->
      Alcotest.(check (list string)) "focused" [ "book" ]
        (labels_of [ Xml.Zipper.focus z ])
  | None -> Alcotest.fail "find_id"

let test_zipper_delete () =
  let t = doc () in
  let shelf = List.hd (Xml.Path.select (Xml.Path.of_string "/shelf") t) in
  let sid = Option.get (Xml.Tree.id shelf) in
  let z = Option.get (Xml.Zipper.find_id sid (Xml.Zipper.of_tree t)) in
  let z = Option.get (Xml.Zipper.delete z) in
  let t' = Xml.Zipper.to_tree z in
  Alcotest.(check int) "shelf gone" 0
    (List.length (Xml.Path.select (Xml.Path.of_string "/shelf") t'));
  Alcotest.(check bool) "cannot delete root" true
    (Xml.Zipper.delete (Xml.Zipper.of_tree t') = None)

let test_zipper_insert_right () =
  let t = parse "<r><a/></r>" in
  let g = gen () in
  let z = Option.get (Xml.Zipper.down (Xml.Zipper.of_tree t)) in
  let z = Option.get (Xml.Zipper.insert_right (elt g "b" []) z) in
  let t' = Xml.Zipper.to_tree z in
  Alcotest.(check (list string)) "order a,b" [ "a"; "b" ]
    (labels_of (Xml.Tree.children t'));
  Alcotest.(check bool) "no insert_right at root" true
    (Xml.Zipper.insert_right (elt g "c" []) (Xml.Zipper.of_tree t') = None)

let suite =
  [
    ("path parse/print", `Quick, test_path_parse_print);
    ("path parse errors", `Quick, test_path_parse_errors);
    ("child selection", `Quick, test_child_selection);
    ("descendant selection", `Quick, test_descendant_selection);
    ("mixed path", `Quick, test_mixed_path);
    ("exists", `Quick, test_exists);
    ("forest selection", `Quick, test_select_forest);
    ("zipper navigation", `Quick, test_zipper_navigation);
    ("zipper edit and rebuild", `Quick, test_zipper_edit_rebuild);
    ("zipper find by id", `Quick, test_zipper_find_id);
    ("zipper delete", `Quick, test_zipper_delete);
    ("zipper insert right", `Quick, test_zipper_insert_right);
  ]
