open Axml
open Helpers
module Opt = Query.Optimize
module Ast = Query.Ast

(* --- Predicate simplification ------------------------------------- *)

let p_true = Ast.True
let p_false = Ast.Not Ast.True
let cmp_xy = Ast.Cmp (Ast.Text_of "x", Ast.Eq, Ast.Const "y")

let test_simplify_constants () =
  let simp p = Opt.simplify_pred p in
  Alcotest.(check bool) "const eq folds true" true
    (simp (Ast.Cmp (Ast.Const "a", Ast.Eq, Ast.Const "a")) = p_true);
  Alcotest.(check bool) "const neq folds false" true
    (simp (Ast.Cmp (Ast.Const "a", Ast.Eq, Ast.Const "b")) = p_false);
  Alcotest.(check bool) "numeric folds" true
    (simp (Ast.Cmp (Ast.Number 2.0, Ast.Lt, Ast.Number 3.0)) = p_true)

let test_simplify_connectives () =
  let simp = Opt.simplify_pred in
  Alcotest.(check bool) "p and true = p" true
    (simp (Ast.And (cmp_xy, p_true)) = cmp_xy);
  Alcotest.(check bool) "p or true = true" true
    (simp (Ast.Or (cmp_xy, p_true)) = p_true);
  Alcotest.(check bool) "p and false = false" true
    (simp (Ast.And (cmp_xy, p_false)) = p_false);
  Alcotest.(check bool) "p or false = p" true
    (simp (Ast.Or (cmp_xy, p_false)) = cmp_xy);
  Alcotest.(check bool) "double negation" true
    (simp (Ast.Not (Ast.Not cmp_xy)) = cmp_xy);
  Alcotest.(check bool) "nested fold" true
    (simp
       (Ast.And
          ( Ast.Or (p_false, cmp_xy),
            Ast.Not (Ast.Cmp (Ast.Const "q", Ast.Neq, Ast.Const "q")) ))
    = cmp_xy)

(* --- Binding reordering ------------------------------------------- *)

let sample_inputs () =
  let rng = Workload.Rng.create ~seed:31 in
  let g = Xml.Node_id.Gen.create ~namespace:"opt" in
  [ [ Workload.Xml_gen.catalog ~gen:g ~rng ~items:80 ~selectivity:0.05 () ] ]

let unselective_first =
  (* The filtered binding comes last: the unfiltered one fans out
     first and the filter only prunes late. *)
  query
    {|query(1) for $all in $0//item, $sel in $0//item
      where attr($sel, "category") = "wanted"
      return <pair/>|}

let test_reorder_preserves_results () =
  let inputs = sample_inputs () in
  let reordered = Opt.optimize unselective_first in
  let g () = Xml.Node_id.Gen.create ~namespace:"opt2" in
  let a = Query.Eval.eval ~gen:(g ()) unselective_first inputs in
  let b = Query.Eval.eval ~gen:(g ()) reordered inputs in
  check_canonical_forests "reordering preserves results" a b

let test_reorder_reduces_enumeration () =
  let inputs = sample_inputs () in
  let before = Opt.enumeration_cost unselective_first inputs in
  let after = Opt.enumeration_cost (Opt.optimize unselective_first) inputs in
  Alcotest.(check bool)
    (Printf.sprintf "fewer tuples (%d -> %d)" before after)
    true (after < before)

let test_reorder_respects_dependencies () =
  let q =
    query
      {|query(1) for $a in $0/x, $b in $a/y, $c in $b/z where text($c) = "1" return {$c}|}
  in
  match Opt.reorder_bindings q with
  | Ast.Flwr f ->
      let order = List.map (fun (b : Ast.binding) -> b.var) f.bindings in
      let pos v =
        let rec go i = function
          | [] -> -1
          | x :: _ when x = v -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 order
      in
      Alcotest.(check bool) "a before b" true (pos "a" < pos "b");
      Alcotest.(check bool) "b before c" true (pos "b" < pos "c")
  | Ast.Compose _ -> Alcotest.fail "shape"

let test_early_filtering_cuts_work () =
  (* Even without reordering, a selective conjunct on the first
     binding must prune before the second binding enumerates. *)
  let selective_first =
    query
      {|query(1) for $sel in $0//item, $all in $0//item
        where attr($sel, "category") = "wanted"
        return <pair/>|}
  in
  let inputs = sample_inputs () in
  let cost_sel_first = Opt.enumeration_cost selective_first inputs in
  let cost_sel_last = Opt.enumeration_cost unselective_first inputs in
  Alcotest.(check bool)
    (Printf.sprintf "early filter cheaper (%d < %d)" cost_sel_first cost_sel_last)
    true
    (cost_sel_first < cost_sel_last)

(* Property: optimize never changes results. *)
let prop_optimize_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"optimize preserves results"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
       (fun seed ->
         let rng = Workload.Rng.create ~seed in
         let q = Workload.Query_gen.random_flwr ~rng Workload.Query_gen.default_config in
         let data_rng = Workload.Rng.create ~seed:(seed * 5) in
         let g = Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "po%d" seed) in
         let input = Workload.Xml_gen.random_forest ~gen:g ~rng:data_rng ~trees:2 () in
         let a = Query.Eval.eval ~gen:g q [ input ] in
         let b = Query.Eval.eval ~gen:g (Opt.optimize q) [ input ] in
         Xml.Canonical.equal_forest a b))

let suite =
  [
    ("constant folding", `Quick, test_simplify_constants);
    ("connective simplification", `Quick, test_simplify_connectives);
    ("reordering preserves results", `Quick, test_reorder_preserves_results);
    ("reordering reduces enumeration", `Quick, test_reorder_reduces_enumeration);
    ("dependencies respected", `Quick, test_reorder_respects_dependencies);
    ("early filtering cuts work", `Quick, test_early_filtering_cuts_work);
    prop_optimize_preserves;
  ]
