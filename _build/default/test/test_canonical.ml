open Axml
open Helpers

let test_sibling_order_ignored () =
  let a = parse "<r><x/><y/></r>" in
  let b = parse "<r><y/><x/></r>" in
  Alcotest.(check bool) "unordered equal" true (Xml.Canonical.equal a b);
  Alcotest.(check bool) "strict shape differs" false (Xml.Tree.equal_shape a b)

let test_ids_ignored () =
  let a = parse "<r><x/></r>" in
  let b = parse "<r><x/></r>" in
  Alcotest.(check bool) "fresh ids, still equal" true (Xml.Canonical.equal a b)

let test_labels_matter () =
  Alcotest.(check bool) "different labels" false
    (Xml.Canonical.equal (parse "<r><x/></r>") (parse "<r><z/></r>"))

let test_text_matters () =
  Alcotest.(check bool) "different text" false
    (Xml.Canonical.equal (parse "<r>a</r>") (parse "<r>b</r>"))

let test_attr_order_ignored () =
  let a = parse {|<r a="1" b="2"/>|} in
  let b = parse {|<r b="2" a="1"/>|} in
  Alcotest.(check bool) "attr order" true (Xml.Canonical.equal a b)

let test_multiset_semantics () =
  (* Duplicate children are a multiset, not a set. *)
  let two = parse "<r><x/><x/></r>" in
  let one = parse "<r><x/></r>" in
  Alcotest.(check bool) "multiset" false (Xml.Canonical.equal two one)

let test_deep_permutation () =
  let a = parse "<r><g><x/><y>t</y></g><g><z/></g></r>" in
  let b = parse "<r><g><z/></g><g><y>t</y><x/></g></r>" in
  Alcotest.(check bool) "nested permutation" true (Xml.Canonical.equal a b)

let test_compare_total_order () =
  let a = parse "<r><x/></r>" and b = parse "<r><y/></r>" in
  let cab = Xml.Canonical.compare a b and cba = Xml.Canonical.compare b a in
  Alcotest.(check bool) "antisymmetric" true (cab = -cba && cab <> 0);
  Alcotest.(check int) "reflexive" 0 (Xml.Canonical.compare a a)

let test_hash_consistent () =
  let a = parse "<r><x/><y/></r>" and b = parse "<r><y/><x/></r>" in
  Alcotest.(check int) "equal implies same hash" (Xml.Canonical.hash a)
    (Xml.Canonical.hash b)

let test_fingerprint () =
  let a = parse "<r><x/><y/></r>" and b = parse "<r><y/><x/></r>" in
  Alcotest.(check string) "same fingerprint" (Xml.Canonical.fingerprint a)
    (Xml.Canonical.fingerprint b);
  Alcotest.(check bool) "differs for different trees" false
    (String.equal
       (Xml.Canonical.fingerprint a)
       (Xml.Canonical.fingerprint (parse "<r><x/></r>")))

let test_forest_equality () =
  let g = gen () in
  let f1 = [ elt g "a" []; elt g "b" [] ] in
  let f2 = [ elt g "b" []; elt g "a" [] ] in
  Alcotest.(check bool) "forest permutation" true
    (Xml.Canonical.equal_forest f1 f2);
  Alcotest.(check bool) "forest multiset" false
    (Xml.Canonical.equal_forest f1 [ elt g "a" [] ])

let test_canonicalize_idempotent () =
  let t = parse "<r><b/><a><z/><y/></a></r>" in
  let c1 = Xml.Canonical.canonicalize t in
  let c2 = Xml.Canonical.canonicalize c1 in
  Alcotest.(check bool) "idempotent" true (Xml.Tree.equal_strict c1 c2)

let suite =
  [
    ("sibling order ignored", `Quick, test_sibling_order_ignored);
    ("node ids ignored", `Quick, test_ids_ignored);
    ("labels distinguish", `Quick, test_labels_matter);
    ("text distinguishes", `Quick, test_text_matters);
    ("attribute order ignored", `Quick, test_attr_order_ignored);
    ("children form a multiset", `Quick, test_multiset_semantics);
    ("deep permutation", `Quick, test_deep_permutation);
    ("compare is a total order", `Quick, test_compare_total_order);
    ("hash consistent with equal", `Quick, test_hash_consistent);
    ("fingerprints", `Quick, test_fingerprint);
    ("forest equality", `Quick, test_forest_equality);
    ("canonicalize idempotent", `Quick, test_canonicalize_idempotent);
  ]
