open Axml
open Helpers
module Inc = Query.Incremental

let push_all ~g state ~input trees =
  List.concat_map (fun t -> Inc.push ~gen:g state ~input t) trees

let test_single_input_deltas () =
  let g = gen () in
  let q = query {|query(1) for $x in $0//i where text($x) = "hit" return <o/>|} in
  let state = Inc.create q in
  let d1 = Inc.push ~gen:g state ~input:0 (parse ~g "<r><i>hit</i></r>") in
  Alcotest.(check int) "first delta" 1 (List.length d1);
  let d2 = Inc.push ~gen:g state ~input:0 (parse ~g "<r><i>miss</i></r>") in
  Alcotest.(check int) "no new output" 0 (List.length d2);
  let d3 = Inc.push ~gen:g state ~input:0 (parse ~g "<r><i>hit</i><i>hit</i></r>") in
  Alcotest.(check int) "two more" 2 (List.length d3)

let test_deltas_sum_to_batch () =
  let g = gen () in
  let q =
    query {|query(1) for $x in $0//i where attr($x, "k") = "y" return <hit>{text($x)}</hit>|}
  in
  let state = Inc.create q in
  let stream =
    [
      parse ~g {|<r><i k="y">1</i></r>|};
      parse ~g {|<r><i k="n">2</i></r>|};
      parse ~g {|<r><i k="y">3</i><i k="y">4</i></r>|};
    ]
  in
  let deltas = push_all ~g state ~input:0 stream in
  let batch = Inc.total_output ~gen:g state in
  check_canonical_forests "deltas = batch" batch deltas

let test_join_deltas () =
  let g = gen () in
  let q =
    query
      {|query(2) for $x in $0//l, $y in $1//r where text($x) = text($y) return <m>{text($x)}</m>|}
  in
  let state = Inc.create q in
  let d1 = Inc.push ~gen:g state ~input:0 (parse ~g "<a><l>1</l></a>") in
  Alcotest.(check int) "no partner yet" 0 (List.length d1);
  let d2 = Inc.push ~gen:g state ~input:1 (parse ~g "<b><r>1</r></b>") in
  Alcotest.(check int) "join fires" 1 (List.length d2);
  let d3 = Inc.push ~gen:g state ~input:0 (parse ~g "<a><l>1</l></a>") in
  Alcotest.(check int) "new left joins old right" 1 (List.length d3);
  let batch = Inc.total_output ~gen:g state in
  Alcotest.(check int) "total" 2 (List.length batch)

let test_join_deltas_sum_to_batch () =
  let g = gen () in
  let q =
    query
      {|query(2) for $x in $0//l, $y in $1//r where text($x) = text($y) return <m>{text($x)}</m>|}
  in
  let state = Inc.create q in
  let deltas = ref [] in
  let feed input xml =
    deltas := !deltas @ Inc.push ~gen:g state ~input (parse ~g xml)
  in
  feed 0 "<a><l>1</l><l>2</l></a>";
  feed 1 "<b><r>2</r></b>";
  feed 0 "<a><l>2</l></a>";
  feed 1 "<b><r>1</r><r>2</r></b>";
  check_canonical_forests "join deltas = batch"
    (Inc.total_output ~gen:g state)
    !deltas

let test_self_join_same_input () =
  (* Two bindings over the same input force the difference fallback. *)
  let g = gen () in
  let q =
    query
      {|query(1) for $x in $0//a, $y in $0//b where text($x) = text($y) return <m/>|}
  in
  let state = Inc.create q in
  let deltas = ref [] in
  let feed xml = deltas := !deltas @ Inc.push ~gen:g state ~input:0 (parse ~g xml) in
  feed "<r><a>1</a></r>";
  feed "<r><b>1</b></r>";
  feed "<r><a>1</a><b>2</b></r>";
  check_canonical_forests "self-join deltas = batch"
    (Inc.total_output ~gen:g state)
    !deltas

let test_push_forest () =
  let g = gen () in
  let q = query "query(1) for $x in $0//i return <o/>" in
  let state = Inc.create q in
  let out =
    Inc.push_forest ~gen:g state ~input:0
      [ parse ~g "<r><i/></r>"; parse ~g "<r><i/><i/></r>" ]
  in
  Alcotest.(check int) "forest push" 3 (List.length out)

let test_seen () =
  let g = gen () in
  let q = query "query(1) for $x in $0 return {$x}" in
  let state = Inc.create q in
  ignore (Inc.push ~gen:g state ~input:0 (parse ~g "<r/>"));
  Alcotest.(check int) "one seen" 1 (List.length (Inc.seen state 0))

let test_out_of_range_input () =
  let q = query "query(1) for $x in $0 return {$x}" in
  let state = Inc.create q in
  match Inc.push ~gen:(gen ()) state ~input:7 (parse "<r/>") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range"

let test_composed_incremental () =
  let g = gen () in
  let q =
    query
      {|compose { query(1) for $h in $0 return <f>{text($h)}</f> }
        ({ query(1) for $x in $0//i where text($x) = "y" return <hit>{text($x)}</hit> })|}
  in
  let state = Inc.create q in
  let deltas = ref [] in
  let feed xml = deltas := !deltas @ Inc.push ~gen:g state ~input:0 (parse ~g xml) in
  feed "<r><i>y</i></r>";
  feed "<r><i>n</i></r>";
  feed "<r><i>y</i></r>";
  check_canonical_forests "composed deltas = batch"
    (Inc.total_output ~gen:g state)
    !deltas;
  Alcotest.(check int) "two outputs" 2 (List.length !deltas)

let suite =
  [
    ("single input deltas", `Quick, test_single_input_deltas);
    ("deltas sum to batch", `Quick, test_deltas_sum_to_batch);
    ("join deltas", `Quick, test_join_deltas);
    ("join deltas sum to batch", `Quick, test_join_deltas_sum_to_batch);
    ("self-join fallback", `Quick, test_self_join_same_input);
    ("push forest", `Quick, test_push_forest);
    ("seen bookkeeping", `Quick, test_seen);
    ("input range check", `Quick, test_out_of_range_input);
    ("composed query incremental", `Quick, test_composed_incremental);
  ]
