open Axml
open Helpers
module Td = Runtime.Type_driven
module System = Runtime.System
module Cm = Schema.Content_model

let p1 = peer "p1"
let p2 = peer "p2"

(* Target type: a report must contain a summary and at least one
   entry. *)
let report_schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"report" ~label:"report" ~mixed:false
        ~content:(Cm.seq [ Cm.ref_ "summary"; Cm.plus (Cm.ref_ "entry") ])
        ();
      Schema.Schema.decl ~name:"summary" ~label:"summary" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"entry" ~label:"entry" ~mixed:true
        ~content:Cm.Epsilon ();
    ]

let test_erase_calls () =
  let t =
    parse
      {|<r><keep/><sc><peer>p</peer><service>s</service></sc><also><sc><peer>p</peer><service>s</service></sc></also></r>|}
  in
  let erased = Td.erase_calls t in
  Alcotest.(check int) "no sc left" 0
    (List.length (Doc.Sc.find_calls erased));
  Alcotest.(check int) "keep and also remain" 2
    (List.length (Xml.Tree.children erased))

let test_conforms_modulo_calls () =
  let ok =
    parse
      {|<report><summary>s</summary><entry>e</entry><sc><peer>p</peer><service>x</service></sc></report>|}
  in
  Alcotest.(check bool) "calls transparent" true
    (Result.is_ok
       (Td.conforms_modulo_calls ~schema:report_schema ~type_name:"report" ok));
  let missing = parse {|<report><summary>s</summary></report>|} in
  Alcotest.(check bool) "missing entry caught" false
    (Result.is_ok
       (Td.conforms_modulo_calls ~schema:report_schema ~type_name:"report"
          missing))

let build_system ~doc_xml =
  let sys = System.create (mesh [ "p1"; "p2" ]) in
  System.add_service sys p2
    (Doc.Service.declarative ~name:"make_entries"
       (query {|query(0) return <entry>"generated"</entry>|}));
  System.add_service sys p2
    (Doc.Service.declarative ~name:"make_summary"
       (query {|query(0) return <summary>"auto"</summary>|}));
  System.load_document sys p1 ~name:"rep" ~xml:doc_xml;
  sys

let test_activation_completes_type () =
  (* The document lacks its mandatory entry, but owns a call that can
     produce one. *)
  let sys =
    build_system
      ~doc_xml:
        {|<report><summary>s</summary><sc><peer>p2</peer><service>make_entries</service></sc></report>|}
  in
  let report =
    Td.activate_until_valid sys ~owner:p1 ~doc:"rep" ~schema:report_schema
      ~type_name:"report" ()
  in
  Alcotest.(check bool) "conforms after activation" true report.conforms;
  Alcotest.(check int) "one call fired" 1 report.activated;
  Alcotest.(check bool) "at least one round" true (report.rounds >= 1)

let test_multiple_rounds () =
  (* Both summary and entry are missing; two calls must fire.  The
     loop may need several rounds since fixing one hole reveals the
     next. *)
  let sys =
    build_system
      ~doc_xml:
        {|<report><sc><peer>p2</peer><service>make_summary</service></sc><sc><peer>p2</peer><service>make_entries</service></sc></report>|}
  in
  let report =
    Td.activate_until_valid sys ~owner:p1 ~doc:"rep" ~schema:report_schema
      ~type_name:"report" ()
  in
  Alcotest.(check bool) "conforms" true report.conforms;
  Alcotest.(check int) "both calls fired" 2 report.activated

let test_already_valid_no_activation () =
  let sys =
    build_system
      ~doc_xml:
        {|<report><summary>s</summary><entry>e</entry><sc><peer>p2</peer><service>make_entries</service></sc></report>|}
  in
  let report =
    Td.activate_until_valid sys ~owner:p1 ~doc:"rep" ~schema:report_schema
      ~type_name:"report" ()
  in
  Alcotest.(check bool) "already conforms" true report.conforms;
  Alcotest.(check int) "nothing fired" 0 report.activated;
  Alcotest.(check int) "zero rounds" 0 report.rounds

let test_unreachable_type_reports_failure () =
  (* The available call produces entries, never the missing summary. *)
  let sys =
    build_system
      ~doc_xml:
        {|<report><entry>e</entry><sc><peer>p2</peer><service>make_entries</service></sc></report>|}
  in
  let report =
    Td.activate_until_valid sys ~owner:p1 ~doc:"rep" ~schema:report_schema
      ~type_name:"report" ()
  in
  Alcotest.(check bool) "does not conform" false report.conforms;
  Alcotest.(check bool) "error reported" true (report.last_error <> None);
  Alcotest.(check bool) "tried the call" true (report.activated >= 1)

let test_missing_document_guard () =
  let sys = build_system ~doc_xml:"<report/>" in
  match
    Td.activate_until_valid sys ~owner:p1 ~doc:"ghost" ~schema:report_schema
      ~type_name:"report" ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing document"

let suite =
  [
    ("erase calls", `Quick, test_erase_calls);
    ("conformance modulo calls", `Quick, test_conforms_modulo_calls);
    ("activation completes the type", `Quick, test_activation_completes_type);
    ("multiple rounds", `Quick, test_multiple_rounds);
    ("already valid: no activation", `Quick, test_already_valid_no_activation);
    ("unreachable type reported", `Quick, test_unreachable_type_reports_failure);
    ("missing document guard", `Quick, test_missing_document_guard);
  ]
