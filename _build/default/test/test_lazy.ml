open Axml
open Helpers
module Relevance = Query.Relevance
module Lazy_eval = Runtime.Lazy_eval
module System = Runtime.System

let lbls names = List.map Xml.Label.of_string names

(* --- Relevance analysis (pure) ---------------------------------- *)

let test_path_may_enter_child () =
  let p = (Query.Parser.parse_path "/a/b" : (Query.Ast.path, _) result) in
  let p = Result.get_ok p in
  Alcotest.(check bool) "enters /a" true
    (Relevance.path_may_enter p ~prefix:(lbls [ "a" ]));
  Alcotest.(check bool) "enters /a/b" true
    (Relevance.path_may_enter p ~prefix:(lbls [ "a"; "b" ]));
  Alcotest.(check bool) "not /x" false
    (Relevance.path_may_enter p ~prefix:(lbls [ "x" ]));
  Alcotest.(check bool) "not beyond a full match + child" false
    (Relevance.path_may_enter p ~prefix:(lbls [ "a"; "x" ]))

let test_path_may_enter_descendant () =
  let p = Result.get_ok (Query.Parser.parse_path "//b") in
  Alcotest.(check bool) "descendant reaches anywhere" true
    (Relevance.path_may_enter p ~prefix:(lbls [ "x"; "y"; "z" ]))

let test_path_accept_prefix_means_relevant () =
  (* /a binds the a node; anything under it is inspected (copy). *)
  let p = Result.get_ok (Query.Parser.parse_path "/a") in
  Alcotest.(check bool) "ancestor bound" true
    (Relevance.path_may_enter p ~prefix:(lbls [ "a"; "deep"; "deeper" ]))

let test_relevant_judgement () =
  let q =
    query {|query(1) for $x in $0/news//item where text($x) = "x" return {$x}|}
  in
  Alcotest.(check bool) "news region relevant" true
    (Relevance.relevant q ~input:0 ~prefix:(lbls [ "news" ]));
  Alcotest.(check bool) "ads region irrelevant" false
    (Relevance.relevant q ~input:0 ~prefix:(lbls [ "ads" ]));
  Alcotest.(check bool) "root always relevant" true
    (Relevance.relevant q ~input:0 ~prefix:[])

let test_relevance_via_var_chain () =
  let q =
    query
      {|query(1) for $x in $0/a, $y in $x/b/c where exists($y/d) return <r/>|}
  in
  (* The chain reaches /a/b/c/d. *)
  Alcotest.(check bool) "chained path region" true
    (Relevance.relevant q ~input:0 ~prefix:(lbls [ "a"; "b"; "c"; "d" ]));
  Alcotest.(check bool) "sibling region out" false
    (Relevance.relevant q ~input:0 ~prefix:(lbls [ "z" ]))

let test_relevance_other_input () =
  let q = query "query(2) for $x in $1/only return {$x}" in
  Alcotest.(check bool) "input 0 untouched" false
    (Relevance.relevant q ~input:0 ~prefix:(lbls [ "only" ]));
  Alcotest.(check bool) "input 1 touched" true
    (Relevance.relevant q ~input:1 ~prefix:(lbls [ "only" ]))

(* --- Lazy evaluation over a live system -------------------------- *)

let p1 = peer "p1"
let p2 = peer "p2"

let build_doc_system () =
  let sys = System.create (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2" ]) in
  (* Two services at p2: a cheap one and an expensive one. *)
  System.add_service sys p2
    (Doc.Service.declarative ~name:"headlines"
       (query {|query(0) return <item>"breaking"</item>|}));
  System.add_service sys p2
    (Doc.Service.extern ~name:"huge_dump"
       ~signature:(Schema.Signature.untyped ~arity:0)
       (fun _ ->
         let g = Xml.Node_id.Gen.create ~namespace:"dump" in
         [
           Xml.Tree.element_of_string ~gen:g "blob"
             [ Xml.Tree.text (String.make 50_000 'x') ];
         ]));
  (* The document: the query looks only under /news; the huge call
     accumulates under /archive. *)
  System.load_document sys p1 ~name:"portal"
    ~xml:
      {|<portal>
          <news><sc><peer>p2</peer><service>headlines</service></sc></news>
          <archive><sc><peer>p2</peer><service>huge_dump</service></sc></archive>
        </portal>|};
  sys

let news_query =
  query "query(1) for $i in $0/news//item return <got>{text($i)}</got>"

let test_lazy_skips_irrelevant () =
  let sys = build_doc_system () in
  let out =
    Lazy_eval.eval_over_document sys ~ctx:p1 ~mode:Lazy_eval.Lazy
      ~query:news_query ~doc:"portal"
  in
  Alcotest.(check int) "one call activated" 1 out.activated;
  Alcotest.(check int) "one call skipped" 1 out.skipped;
  Alcotest.(check int) "answer found" 1 (List.length out.results);
  Alcotest.(check bool) "cheap on the wire" true (out.stats.bytes < 5_000)

let test_eager_activates_all () =
  let sys = build_doc_system () in
  let out =
    Lazy_eval.eval_over_document sys ~ctx:p1 ~mode:Lazy_eval.Eager
      ~query:news_query ~doc:"portal"
  in
  Alcotest.(check int) "both calls activated" 2 out.activated;
  Alcotest.(check bool) "expensive on the wire" true (out.stats.bytes > 50_000)

let test_lazy_eager_same_answers () =
  let out_l =
    Lazy_eval.eval_over_document (build_doc_system ()) ~ctx:p1
      ~mode:Lazy_eval.Lazy ~query:news_query ~doc:"portal"
  in
  let out_e =
    Lazy_eval.eval_over_document (build_doc_system ()) ~ctx:p1
      ~mode:Lazy_eval.Eager ~query:news_query ~doc:"portal"
  in
  check_canonical_forests "lazy = eager answers" out_e.results out_l.results

let test_forwarded_calls_are_irrelevant () =
  let sys = build_doc_system () in
  (* A call forwarding elsewhere can never feed a query over this
     document. *)
  let g = System.gen_of sys p1 in
  let elsewhere = Xml.Tree.element_of_string ~gen:g "elsewhere" [] in
  System.add_document sys p1 ~name:"other" elsewhere;
  let target = Option.get (Xml.Tree.id elsewhere) in
  let sc =
    Doc.Sc.make
      ~forward:[ Doc.Names.Node_ref.make ~node:target ~peer:p1 ]
      ~provider:(Doc.Names.At p2) ~service:"headlines" []
  in
  let doc = Option.get (System.find_document sys p1 "portal") in
  let root = Axml_doc.Document.root doc in
  let news =
    List.hd (Xml.Path.select (Xml.Path.of_string "/news") root)
  in
  let doc' =
    Option.get
      (Doc.Document.insert_under
         ~node:(Option.get (Xml.Tree.id news))
         [ Doc.Sc.to_tree ~gen:g sc ]
         doc)
  in
  Doc.Store.update (System.peer sys p1).Runtime.Peer.store doc';
  let relevant, irrelevant =
    Lazy_eval.relevant_calls news_query
      (Option.get (System.find_document sys p1 "portal"))
  in
  Alcotest.(check int) "still one relevant" 1 (List.length relevant);
  Alcotest.(check int) "forwarded + archive skipped" 2 (List.length irrelevant)

let test_unary_guard () =
  let sys = build_doc_system () in
  match
    Lazy_eval.eval_over_document sys ~ctx:p1 ~mode:Lazy_eval.Lazy
      ~query:(query "query(2) for $x in $0, $y in $1 return <r/>")
      ~doc:"portal"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "binary query must be rejected"

let suite =
  [
    ("path automaton: child steps", `Quick, test_path_may_enter_child);
    ("path automaton: descendant steps", `Quick, test_path_may_enter_descendant);
    ("path automaton: ancestor binding", `Quick, test_path_accept_prefix_means_relevant);
    ("relevance judgement", `Quick, test_relevant_judgement);
    ("relevance through var chains", `Quick, test_relevance_via_var_chain);
    ("relevance per input", `Quick, test_relevance_other_input);
    ("lazy skips irrelevant calls", `Quick, test_lazy_skips_irrelevant);
    ("eager activates everything", `Quick, test_eager_activates_all);
    ("lazy and eager agree", `Quick, test_lazy_eager_same_answers);
    ("forwarded calls irrelevant", `Quick, test_forwarded_calls_are_irrelevant);
    ("unary guard", `Quick, test_unary_guard);
  ]
