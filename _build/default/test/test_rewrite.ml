open Axml
open Helpers
module Expr = Algebra.Expr
module Rewrite = Algebra.Rewrite
module Names = Doc.Names

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"
let all_peers = [ p1; p2; p3 ]
let fresh_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "_tmp_t%d" !n

let sel_query =
  query {|query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{$x}</hit>|}

let rule_names rs = List.map (fun (r : Rewrite.rewrite) -> r.rule) rs

let test_r10_delegate_shape () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.tree_at (parse "<c/>") ~at:p1 ] in
  let rs = Rewrite.r10_delegate ~peers:all_peers e in
  Alcotest.(check int) "one per other peer" 2 (List.length rs);
  List.iter
    (fun (r : Rewrite.rewrite) ->
      match r.result with
      | Expr.Send
          {
            dest = Expr.To_peer back;
            expr = Expr.Query_app { query = Expr.Q_send _; args; _ };
          } ->
          Alcotest.(check bool) "result returns home" true (Net.Peer_id.equal back p1);
          List.iter
            (function
              | Expr.Send { dest = Expr.To_peer _; _ } -> ()
              | _ -> Alcotest.fail "args must be shipped")
            args
      | _ -> Alcotest.fail "unexpected shape")
    rs

let test_r10_roundtrip () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.tree_at (parse "<c/>") ~at:p1 ] in
  match Rewrite.r10_delegate ~peers:all_peers e with
  | r :: _ -> (
      match Rewrite.r10_undelegate r.result with
      | [ back ] ->
          Alcotest.(check bool) "undelegate inverts" true
            (Expr.equal back.result e)
      | other -> Alcotest.failf "expected one inverse, got %d" (List.length other))
  | [] -> Alcotest.fail "no delegation"

let test_r10_not_applicable () =
  (* Query and application sites differ: not the rule's pattern. *)
  let e =
    Expr.Query_app
      {
        query = Expr.Q_val { q = sel_query; at = p2 };
        args = [ Expr.tree_at (parse "<c/>") ~at:p1 ];
        at = p1;
      }
  in
  Alcotest.(check int) "no rewrites" 0
    (List.length (Rewrite.r10_delegate ~peers:all_peers e))

let test_r11_unfold_fold () =
  let composed =
    query
      {|compose { query(1) for $h in $0 return <w>{$h}</w> } ({ query(1) for $x in $0//a return {$x} })|}
  in
  let e = Expr.query_at composed ~at:p1 ~args:[ Expr.doc "d" ~at:"p1" ] in
  match Rewrite.r11_unfold e with
  | [ r ] -> (
      (match r.result with
      | Expr.Query_app { args = [ Expr.Query_app _ ]; _ } -> ()
      | _ -> Alcotest.fail "unfolded shape");
      match Rewrite.r11_fold r.result with
      | [ folded ] ->
          Alcotest.(check bool) "fold inverts unfold" true
            (Expr.equal folded.result e)
      | other -> Alcotest.failf "fold count %d" (List.length other))
  | other -> Alcotest.failf "unfold count %d" (List.length other)

let test_r11_push_selection_shape () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p2" ] in
  match Rewrite.r11_push_selection e with
  | [ r ] -> (
      match r.result with
      | Expr.Query_app
          {
            at = outer_at;
            args =
              [ Expr.Query_app { query = Expr.Q_send { dest; _ }; at = inner_at; _ } ];
            _;
          } ->
          Alcotest.(check bool) "outer stays home" true (Net.Peer_id.equal outer_at p1);
          Alcotest.(check bool) "inner at data" true (Net.Peer_id.equal inner_at p2);
          Alcotest.(check bool) "selection shipped to data" true
            (Net.Peer_id.equal dest p2)
      | _ -> Alcotest.fail "shape")
  | other -> Alcotest.failf "rewrite count %d" (List.length other)

let test_r11_push_selection_local_data_no_rewrite () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p1" ] in
  Alcotest.(check int) "local data: nothing to push" 0
    (List.length (Rewrite.r11_push_selection e))

let test_r12_both_directions () =
  let inner = Expr.doc "d" ~at:"p1" in
  let direct = Expr.send_to_peer p2 inner in
  let stops = Rewrite.r12_add_stop ~peers:all_peers direct in
  (* Relays: not the destination, not the source. *)
  Alcotest.(check (list string)) "relay candidates" [ "r12-add-stop(p3)" ]
    (rule_names stops);
  match stops with
  | [ r ] -> (
      match Rewrite.r12_skip_stop r.result with
      | [ skipped ] ->
          Alcotest.(check bool) "skip undoes add" true
            (Expr.equal skipped.result direct)
      | other -> Alcotest.failf "skip count %d" (List.length other))
  | _ -> Alcotest.fail "one relay expected"

let test_r13_share () =
  let fetch = Expr.send_to_peer p1 (Expr.doc "big" ~at:"p2") in
  let e =
    Expr.query_at
      (query "query(2) for $x in $0, $y in $1 return <p/>")
      ~at:p1 ~args:[ fetch; fetch ]
  in
  match Rewrite.r13_share ~fresh:(fresh_counter ()) e with
  | [ r ] -> (
      match r.result with
      | Expr.Shared { at; value; body; name } ->
          Alcotest.(check bool) "materialized at consumer" true
            (Net.Peer_id.equal at p1);
          Alcotest.(check bool) "value is the fetched doc" true
            (Expr.equal value (Expr.doc "big" ~at:"p2"));
          Alcotest.(check bool) "tmp name" true
            (String.length (Names.Doc_name.to_string name) > 4);
          (* Both occurrences replaced by doc references. *)
          let rec count_docs e =
            (match e with
            | Expr.Doc r
              when Names.Doc_name.equal r.Names.Doc_ref.name name ->
                1
            | _ -> 0)
            + List.fold_left
                (fun acc c -> acc + count_docs c)
                0 (Expr.subexpressions e)
          in
          Alcotest.(check int) "both occurrences rewritten" 2 (count_docs body)
      | _ -> Alcotest.fail "shared shape")
  | other -> Alcotest.failf "r13 count %d" (List.length other)

let test_r13_requires_duplicate () =
  let once =
    Expr.query_at sel_query ~at:p1
      ~args:[ Expr.send_to_peer p1 (Expr.doc "d" ~at:"p2") ]
  in
  Alcotest.(check int) "no duplicate, no rule" 0
    (List.length (Rewrite.r13_share ~fresh:(fresh_counter ()) once))

let test_r14_delegate_undelegate () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p1" ] in
  let rs = Rewrite.r14_delegate ~peers:all_peers e in
  Alcotest.(check int) "two delegates" 2 (List.length rs);
  List.iter
    (fun (r : Rewrite.rewrite) ->
      match Rewrite.r14_undelegate r.result with
      | [ u ] -> Alcotest.(check bool) "inverse" true (Expr.equal u.result e)
      | _ -> Alcotest.fail "undelegate")
    rs;
  (* No double wrapping. *)
  match rs with
  | r :: _ ->
      Alcotest.(check int) "no nested delegation" 0
        (List.length (Rewrite.r14_delegate ~peers:all_peers r.result))
  | [] -> ()

let test_r15_needs_forward_list () =
  let g = gen () in
  let node = Xml.Node_id.Gen.fresh g in
  let with_fw =
    Expr.sc
      (Doc.Sc.make
         ~forward:[ Names.Node_ref.make ~node ~peer:p3 ]
         ~provider:(Names.At p2) ~service:"s" [])
      ~at:p1
  in
  let without_fw =
    Expr.sc (Doc.Sc.make ~provider:(Names.At p2) ~service:"s" []) ~at:p1
  in
  Alcotest.(check int) "relocatable" 2
    (List.length (Rewrite.r15_relocate_sc ~peers:all_peers with_fw));
  Alcotest.(check int) "default forwarding pins the site" 0
    (List.length (Rewrite.r15_relocate_sc ~peers:all_peers without_fw))

let test_r16_shape () =
  let sc = Doc.Sc.make ~provider:(Names.At p2) ~service:"svc" [ [ parse "<in/>" ] ] in
  let e =
    Expr.Query_app
      {
        query = Expr.Q_val { q = query "query(1) for $x in $0 return {$x}"; at = p1 };
        args = [ Expr.Sc { sc; at = p1 } ];
        at = p1;
      }
  in
  match Rewrite.r16_push_query_over_sc e with
  | [ r ] -> (
      match r.result with
      | Expr.Send
          {
            dest = Expr.To_peer home;
            expr =
              Expr.Query_app
                {
                  query = Expr.Q_send { dest; _ };
                  args = [ Expr.Query_app { query = Expr.Q_service svc_ref; at = svc_at; _ } ];
                  at;
                };
          } ->
          Alcotest.(check bool) "results return to caller" true
            (Net.Peer_id.equal home p1);
          Alcotest.(check bool) "query shipped to provider" true
            (Net.Peer_id.equal dest p2);
          Alcotest.(check bool) "evaluated at provider" true
            (Net.Peer_id.equal at p2 && Net.Peer_id.equal svc_at p2);
          Alcotest.(check string) "service referenced" "svc@p2"
            (Names.Service_ref.to_string svc_ref)
      | _ -> Alcotest.fail "shape")
  | other -> Alcotest.failf "r16 count %d" (List.length other)

let test_r16_with_forward_list () =
  let g = gen () in
  let node = Xml.Node_id.Gen.fresh g in
  let sc =
    Doc.Sc.make
      ~forward:[ Names.Node_ref.make ~node ~peer:p3 ]
      ~provider:(Names.At p2) ~service:"svc" []
  in
  let e =
    Expr.Query_app
      {
        query = Expr.Q_val { q = query "query(1) for $x in $0 return {$x}"; at = p1 };
        args = [ Expr.Sc { sc; at = p1 } ];
        at = p1;
      }
  in
  match Rewrite.r16_push_query_over_sc e with
  | [ { result = Expr.Send { dest = Expr.To_nodes [ target ]; _ }; _ } ] ->
      Alcotest.(check bool) "straight to forward target" true
        (Net.Peer_id.equal target.Names.Node_ref.peer p3)
  | _ -> Alcotest.fail "forward-list shape"

let test_everywhere_reaches_subterms () =
  (* The rewritable application sits under a send; `everywhere` must
     still find it. *)
  let inner = Expr.query_at sel_query ~at:p2 ~args:[ Expr.doc "d" ~at:"p2" ] in
  let e = Expr.send_to_peer p1 inner in
  let rs = Rewrite.everywhere ~peers:all_peers ~fresh:(fresh_counter ()) e in
  let applied_inside =
    List.exists
      (fun (r : Rewrite.rewrite) ->
        match r.result with
        | Expr.Send { expr = Expr.Send _; _ } -> true (* r10 on inner *)
        | _ -> false)
      rs
  in
  Alcotest.(check bool) "inner rewrites reachable" true applied_inside;
  (* All rewrites preserve the root constructor or wrap it. *)
  Alcotest.(check bool) "some rewrites" true (List.length rs > 0)

let test_at_root_aggregates () =
  let e = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p2" ] in
  let rs = Rewrite.at_root ~peers:all_peers ~fresh:(fresh_counter ()) e in
  let names = rule_names rs in
  Alcotest.(check bool) "has r10" true
    (List.exists (fun n -> String.length n >= 3 && String.sub n 0 3 = "r10") names);
  Alcotest.(check bool) "has r11 push" true
    (List.mem "r11-push-selection" names);
  Alcotest.(check bool) "has r14" true
    (List.exists (fun n -> String.length n >= 3 && String.sub n 0 3 = "r14") names)

let suite =
  [
    ("r10 delegation shape", `Quick, test_r10_delegate_shape);
    ("r10 round-trip", `Quick, test_r10_roundtrip);
    ("r10 pattern guard", `Quick, test_r10_not_applicable);
    ("r11 unfold/fold", `Quick, test_r11_unfold_fold);
    ("r11 push-selection shape", `Quick, test_r11_push_selection_shape);
    ("r11 push-selection guard", `Quick, test_r11_push_selection_local_data_no_rewrite);
    ("r12 add/skip stops", `Quick, test_r12_both_directions);
    ("r13 sharing", `Quick, test_r13_share);
    ("r13 needs duplicates", `Quick, test_r13_requires_duplicate);
    ("r14 delegate/undelegate", `Quick, test_r14_delegate_undelegate);
    ("r15 forward-list requirement", `Quick, test_r15_needs_forward_list);
    ("r16 push over service call", `Quick, test_r16_shape);
    ("r16 forward list", `Quick, test_r16_with_forward_list);
    ("everywhere traversal", `Quick, test_everywhere_reaches_subterms);
    ("at_root aggregation", `Quick, test_at_root_aggregates);
  ]
