open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names
module System = Runtime.System
module Exec = Runtime.Exec

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

let make_system () =
  System.create (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ])

let sel_query =
  query {|query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{$x}</hit>|}

let catalog_xml =
  {|<catalog><item k="y"><name>a</name></item><item k="n"><name>b</name></item><item k="y"><name>c</name></item></catalog>|}

let run sys ~ctx e = Exec.run_to_quiescence sys ~ctx e

(* Definition (1): a plain local tree evaluates to itself. *)
let test_local_data () =
  let sys = make_system () in
  let t = parse "<a><b>x</b></a>" in
  let out = run sys ~ctx:p1 (Expr.tree_at t ~at:p1) in
  Alcotest.(check bool) "finished" true out.finished;
  check_canonical_forests "identity" [ t ] out.results;
  Alcotest.(check int) "no network traffic" 0 out.stats.messages

(* Definition (5): remote data is evaluated at its home and shipped. *)
let test_remote_data () =
  let sys = make_system () in
  let t = parse "<a>remote</a>" in
  let out = run sys ~ctx:p1 (Expr.tree_at t ~at:p2) in
  check_canonical_forests "shipped" [ t ] out.results;
  Alcotest.(check bool) "messages flowed" true (out.stats.messages >= 2);
  Alcotest.(check bool) "took time" true (out.elapsed_ms > 0.0)

let test_local_doc () =
  let sys = make_system () in
  System.load_document sys p1 ~name:"cat" ~xml:catalog_xml;
  let out = run sys ~ctx:p1 (Expr.doc "cat" ~at:"p1") in
  Alcotest.(check int) "one tree" 1 (List.length out.results);
  Alcotest.(check int) "local: no messages" 0 out.stats.messages

let test_remote_doc () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let out = run sys ~ctx:p1 (Expr.doc "cat" ~at:"p2") in
  Alcotest.(check int) "one tree" 1 (List.length out.results);
  Alcotest.(check bool) "doc bytes shipped" true
    (out.stats.bytes > String.length catalog_xml / 2)

let test_missing_doc_yields_empty () =
  let sys = make_system () in
  let out = run sys ~ctx:p1 (Expr.doc "ghost" ~at:"p1") in
  Alcotest.(check bool) "finished empty" true
    (out.finished && out.results = [])

(* Definition (2): local query application. *)
let test_local_query_app () =
  let sys = make_system () in
  System.load_document sys p1 ~name:"cat" ~xml:catalog_xml;
  let out =
    run sys ~ctx:p1
      (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p1" ])
  in
  Alcotest.(check int) "two hits" 2 (List.length out.results);
  Alcotest.(check bool) "finished" true out.finished

(* Definition (7)/(5): remote argument fetched to the query. *)
let test_query_over_remote_doc () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let out =
    run sys ~ctx:p1
      (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ])
  in
  Alcotest.(check int) "two hits" 2 (List.length out.results)

(* Definition (7): the query ships when applied away from home. *)
let test_query_applied_remotely () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let e =
    Expr.Query_app
      {
        query = Expr.Q_val { q = sel_query; at = p1 };
        args = [ Expr.doc "cat" ~at:"p2" ];
        at = p2;
      }
  in
  let out = run sys ~ctx:p1 e in
  Alcotest.(check int) "two hits" 2 (List.length out.results);
  (* The query text must have crossed p1 -> p2. *)
  let crossed =
    List.exists
      (fun ((src, dst), _) ->
        Net.Peer_id.equal src p1 && Net.Peer_id.equal dst p2)
      out.stats.per_link
  in
  Alcotest.(check bool) "query shipped p1->p2" true crossed

(* Definition (8): send(p2, q) deploys a service. *)
let test_query_send_deploys () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let e =
    Expr.Query_app
      {
        query = Expr.Q_send { dest = p2; q = Expr.Q_val { q = sel_query; at = p1 } };
        args = [ Expr.doc "cat" ~at:"p2" ];
        at = p2;
      }
  in
  let out = run sys ~ctx:p1 e in
  Alcotest.(check int) "two hits" 2 (List.length out.results);
  let p2_services =
    Doc.Registry.names (System.peer sys p2).Runtime.Peer.registry
  in
  Alcotest.(check bool) "service deployed at p2" true
    (List.exists
       (fun n ->
         let s = Names.Service_name.to_string n in
         String.length s >= 4 && String.sub s 0 4 = "_tmp")
       p2_services)

(* Definition (6): sc activation, response back to the caller. *)
let register_resolver sys at =
  System.add_service sys at
    (Doc.Service.declarative ~name:"find"
       (query
          {|query(1) for $x in $0//item where attr($x, "k") = "y" return <found>{$x}</found>|}))

let test_sc_call_response () =
  let sys = make_system () in
  register_resolver sys p2;
  let sc =
    Doc.Sc.make ~provider:(Names.At p2) ~service:"find"
      [ [ parse catalog_xml ] ]
  in
  let out = run sys ~ctx:p1 (Expr.sc sc ~at:p1) in
  Alcotest.(check int) "two found" 2 (List.length out.results)

(* Definition (6) with forward list: results flow into a document. *)
let test_sc_forward_list () =
  let sys = make_system () in
  register_resolver sys p2;
  let gen3 = System.gen_of sys p3 in
  let inbox = Xml.Tree.element_of_string ~gen:gen3 "inbox" [] in
  let inbox_id = Option.get (Xml.Tree.id inbox) in
  System.add_document sys p3 ~name:"collector" inbox;
  let sc =
    Doc.Sc.make
      ~forward:[ Names.Node_ref.make ~node:inbox_id ~peer:p3 ]
      ~provider:(Names.At p2) ~service:"find"
      [ [ parse catalog_xml ] ]
  in
  let out = run sys ~ctx:p1 (Expr.sc sc ~at:p1) in
  Alcotest.(check int) "caller gets nothing" 0 (List.length out.results);
  match System.find_document sys p3 "collector" with
  | Some doc ->
      Alcotest.(check int) "results landed at p3" 2
        (List.length (Xml.Tree.children (Doc.Document.root doc)))
  | None -> Alcotest.fail "collector disappeared"

(* Extern continuous service: successive responses. *)
let test_extern_continuous_stream () =
  let sys = make_system () in
  let svc =
    Doc.Service.extern ~name:"ticker"
      ~signature:(Schema.Signature.untyped ~arity:0)
      (fun _ ->
        let g = Xml.Node_id.Gen.create ~namespace:"tick" in
        List.init 3 (fun i ->
            Xml.Tree.element_of_string ~gen:g "tick"
              [ Xml.Tree.text (string_of_int i) ]))
  in
  System.add_service sys p2 svc;
  let sc = Doc.Sc.make ~provider:(Names.At p2) ~service:"ticker" [] in
  let out = run sys ~ctx:p1 (Expr.sc sc ~at:p1) in
  Alcotest.(check int) "three ticks" 3 (List.length out.results);
  Alcotest.(check bool) "spread in time" true (out.elapsed_ms > 2.0)

(* Definition (9): generic documents resolve through the catalog. *)
let test_generic_doc_resolution () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  System.load_document sys p3 ~name:"cat" ~xml:catalog_xml;
  System.register_doc_class sys ~class_name:"mirror"
    (Names.Doc_ref.at_peer "cat" ~peer:"p2");
  System.register_doc_class sys ~class_name:"mirror"
    (Names.Doc_ref.at_peer "cat" ~peer:"p3");
  let out = run sys ~ctx:p1 (Expr.doc_any "mirror") in
  Alcotest.(check int) "resolved" 1 (List.length out.results);
  (* Unknown class: empty. *)
  let out2 = run sys ~ctx:p1 (Expr.doc_any "nothing") in
  Alcotest.(check bool) "unknown class empty" true
    (out2.finished && out2.results = [])

let test_generic_service_resolution () =
  let sys = make_system () in
  register_resolver sys p2;
  System.register_service_class sys ~class_name:"find_any"
    (Names.Service_ref.at_peer "find" ~peer:"p2");
  let sc =
    Doc.Sc.make ~provider:Names.Any ~service:"find_any" [ [ parse catalog_xml ] ]
  in
  let out = run sys ~ctx:p1 (Expr.sc sc ~at:p1) in
  Alcotest.(check int) "resolved service" 2 (List.length out.results)

(* send to a third peer. *)
let test_send_to_peer_moves_data () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let e = Expr.send_to_peer p1 (Expr.doc "cat" ~at:"p2") in
  let out = run sys ~ctx:p1 e in
  Alcotest.(check int) "arrived" 1 (List.length out.results);
  let direct =
    List.exists
      (fun ((src, dst), _) ->
        Net.Peer_id.equal src p2 && Net.Peer_id.equal dst p1)
      out.stats.per_link
  in
  Alcotest.(check bool) "data moved p2->p1" true direct

(* Definition (4): multicast into nodes, ∅ result. *)
let test_send_to_nodes () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let add_inbox p =
    let g = System.gen_of sys p in
    let inbox = Xml.Tree.element_of_string ~gen:g "inbox" [] in
    System.add_document sys p ~name:"inbox" inbox;
    Option.get (Xml.Tree.id inbox)
  in
  let n1 = add_inbox p1 and n3 = add_inbox p3 in
  let e =
    Expr.send_to_nodes
      [
        Names.Node_ref.make ~node:n1 ~peer:p1;
        Names.Node_ref.make ~node:n3 ~peer:p3;
      ]
      (Expr.doc "cat" ~at:"p2")
  in
  let out = run sys ~ctx:p1 e in
  Alcotest.(check int) "empty result" 0 (List.length out.results);
  Alcotest.(check bool) "finished" true out.finished;
  let inbox_count p =
    match System.find_document sys p "inbox" with
    | Some d -> List.length (Xml.Tree.children (Doc.Document.root d))
    | None -> -1
  in
  Alcotest.(check int) "p1 inbox" 1 (inbox_count p1);
  Alcotest.(check int) "p3 inbox" 1 (inbox_count p3)

(* Installing as a new document (send(d@p2, e)). *)
let test_send_as_doc () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let e = Expr.send_as_doc ~name:"copy" ~at:p3 (Expr.doc "cat" ~at:"p2") in
  let out = run sys ~ctx:p1 e in
  Alcotest.(check bool) "empty and finished" true
    (out.finished && out.results = []);
  match System.find_document sys p3 "copy" with
  | Some d ->
      Alcotest.(check bool) "installed" true
        (Xml.Canonical.equal (Doc.Document.root d) (parse catalog_xml))
  | None -> Alcotest.fail "document not installed"

(* Rule (14) executable form: delegation via Eval_at. *)
let test_eval_at_delegation () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let inner = Expr.query_at sel_query ~at:p2 ~args:[ Expr.doc "cat" ~at:"p2" ] in
  let out = run sys ~ctx:p1 (Expr.eval_at p2 inner) in
  Alcotest.(check int) "hits" 2 (List.length out.results)

(* Rule (13) executable form: Shared materializes then reuses. *)
let test_shared_materialization () =
  let sys = make_system () in
  System.load_document sys p2 ~name:"cat" ~xml:catalog_xml;
  let joined =
    query
      {|query(2) for $x in $0//item, $y in $1//item where attr($x, "k") = "y" and attr($y, "k") = "y" return <pair/>|}
  in
  let shared =
    Expr.shared ~name:"_tmp_m" ~at:p1
      ~value:(Expr.doc "cat" ~at:"p2")
      ~body:
        (Expr.query_at joined ~at:p1
           ~args:[ Expr.doc "_tmp_m" ~at:"p1"; Expr.doc "_tmp_m" ~at:"p1" ])
  in
  let out = run sys ~ctx:p1 shared in
  Alcotest.(check int) "2x2 pairs" 4 (List.length out.results);
  (* The catalog crossed the network exactly once. *)
  let p2_to_p1 =
    List.fold_left
      (fun acc ((src, dst), (m, _)) ->
        if Net.Peer_id.equal src p2 && Net.Peer_id.equal dst p1 then acc + m
        else acc)
      0 out.stats.per_link
  in
  Alcotest.(check int) "one transfer from p2" 1 p2_to_p1

let test_composed_query_exec () =
  let sys = make_system () in
  System.load_document sys p1 ~name:"cat" ~xml:catalog_xml;
  let composed =
    query
      {|compose { query(1) for $h in $0 return <w>{text($h)}</w> } ({ query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{text($x)}</hit> })|}
  in
  let out =
    run sys ~ctx:p1
      (Expr.query_at composed ~at:p1 ~args:[ Expr.doc "cat" ~at:"p1" ])
  in
  Alcotest.(check int) "wrapped hits" 2 (List.length out.results)

let suite =
  [
    ("def 1: local data", `Quick, test_local_data);
    ("def 5: remote data ships", `Quick, test_remote_data);
    ("local document", `Quick, test_local_doc);
    ("remote document", `Quick, test_remote_doc);
    ("missing document", `Quick, test_missing_doc_yields_empty);
    ("def 2: local query application", `Quick, test_local_query_app);
    ("query over remote doc", `Quick, test_query_over_remote_doc);
    ("def 7: query ships to site", `Quick, test_query_applied_remotely);
    ("def 8: query send deploys", `Quick, test_query_send_deploys);
    ("def 6: sc call and response", `Quick, test_sc_call_response);
    ("def 6: forward list", `Quick, test_sc_forward_list);
    ("continuous extern stream", `Quick, test_extern_continuous_stream);
    ("def 9: generic document", `Quick, test_generic_doc_resolution);
    ("def 9: generic service", `Quick, test_generic_service_resolution);
    ("send to peer", `Quick, test_send_to_peer_moves_data);
    ("def 4: send to nodes", `Quick, test_send_to_nodes);
    ("install as document", `Quick, test_send_as_doc);
    ("rule 14 delegation", `Quick, test_eval_at_delegation);
    ("rule 13 materialization", `Quick, test_shared_materialization);
    ("composed query execution", `Quick, test_composed_query_exec);
  ]
