open Axml
module Cm = Schema.Content_model
module Sg = Workload.Schema_gen

let library_schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"lib" ~label:"lib" ~mixed:false
        ~content:(Cm.plus (Cm.ref_ "shelf")) ();
      Schema.Schema.decl ~name:"shelf" ~label:"shelf" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "book")) ();
      Schema.Schema.decl ~name:"book" ~label:"book" ~mixed:false
        ~content:(Cm.seq [ Cm.ref_ "title"; Cm.opt (Cm.ref_ "year") ])
        ~attributes:[ { Schema.Schema.attr_name = "isbn"; required = true } ]
        ();
      Schema.Schema.decl ~name:"title" ~label:"title" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"year" ~label:"year" ~mixed:true
        ~content:Cm.Epsilon ();
    ]

(* A recursive grammar: trees of categories. *)
let recursive_schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"cat" ~label:"cat" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "cat"))
        ();
    ]

let impossible_schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"loop" ~label:"loop" ~mixed:false
        ~content:(Cm.plus (Cm.ref_ "loop"))
        ();
    ]

let seeded_gen seed = Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "sg%d" seed)

let prop name ~count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
       f)

let generated_conforms seed =
  let rng = Workload.Rng.create ~seed in
  match
    Sg.tree ~schema:library_schema ~type_name:"lib" ~gen:(seeded_gen seed) ~rng ()
  with
  | None -> false (* lib is always satisfiable *)
  | Some t ->
      Schema.Validate.conforms ~schema:library_schema ~type_name:"lib" t

let recursive_generation_bounded seed =
  let rng = Workload.Rng.create ~seed in
  match
    Sg.tree ~schema:recursive_schema ~type_name:"cat" ~gen:(seeded_gen seed)
      ~rng ~max_depth:5 ()
  with
  | None -> true (* bound hit: acceptable *)
  | Some t ->
      Xml.Tree.depth t <= 5
      && Schema.Validate.conforms ~schema:recursive_schema ~type_name:"cat" t

let test_impossible_type () =
  let rng = Workload.Rng.create ~seed:1 in
  Alcotest.(check bool) "plus-of-self is unsatisfiable" true
    (Sg.tree ~schema:impossible_schema ~type_name:"loop" ~gen:(seeded_gen 1)
       ~rng ()
    = None)

let test_unknown_type () =
  let rng = Workload.Rng.create ~seed:2 in
  Alcotest.(check bool) "unknown type" true
    (Sg.tree ~schema:library_schema ~type_name:"ghost" ~gen:(seeded_gen 2) ~rng ()
    = None)

let test_any_type () =
  let rng = Workload.Rng.create ~seed:3 in
  match
    Sg.tree ~schema:library_schema ~type_name:Schema.Schema.any_type_name
      ~gen:(seeded_gen 3) ~rng ()
  with
  | Some t -> Alcotest.(check bool) "element" true (Xml.Tree.is_element t)
  | None -> Alcotest.fail "universal type is satisfiable"

let test_forest () =
  let rng = Workload.Rng.create ~seed:4 in
  match
    Sg.forest ~schema:library_schema ~type_names:[ "book"; "shelf" ]
      ~gen:(seeded_gen 4) ~rng ()
  with
  | Some [ b; s ] ->
      Alcotest.(check bool) "book" true
        (Schema.Validate.conforms ~schema:library_schema ~type_name:"book" b);
      Alcotest.(check bool) "shelf" true
        (Schema.Validate.conforms ~schema:library_schema ~type_name:"shelf" s)
  | Some _ | None -> Alcotest.fail "forest generation"

(* Typecheck soundness under fuzzing: random binding paths over the
   library labels; inferred output types accept every actual output. *)
let typecheck_sound seed =
  let rng = Workload.Rng.create ~seed in
  let labels = [ "shelf"; "book"; "title"; "year" ] in
  let random_path () =
    List.init
      (1 + Workload.Rng.int rng 2)
      (fun _ ->
        let l = Workload.Rng.pick rng labels in
        if Workload.Rng.bool rng then Query.Ast.child l else Query.Ast.desc l)
  in
  let q =
    Query.Ast.Flwr
      {
        arity = 1;
        bindings =
          [
            { Query.Ast.var = "x"; source = Query.Ast.Input 0; path = random_path () };
            { Query.Ast.var = "y"; source = Query.Ast.Var "x"; path = random_path () };
          ];
        where = Query.Ast.True;
        return_ =
          Query.Ast.Elem
            {
              label = Xml.Label.of_string "out";
              attrs = [];
              children = [ Query.Ast.Copy_of (Workload.Rng.pick rng [ "x"; "y" ]) ];
            };
      }
  in
  match Query.Typecheck.infer_output library_schema ~inputs:[ "lib" ] ~prefix:"t" q with
  | Error _ -> false
  | Ok (extended, out_types) -> (
      match
        Sg.tree ~schema:library_schema ~type_name:"lib" ~gen:(seeded_gen seed)
          ~rng ()
      with
      | None -> false
      | Some data ->
          let out = Query.Eval.eval ~gen:(seeded_gen (seed + 1)) q [ [ data ] ] in
          List.for_all
            (fun t ->
              List.exists
                (fun ty ->
                  Schema.Validate.conforms ~schema:extended ~type_name:ty t)
                out_types)
            out)

let suite =
  [
    prop "generated trees conform" ~count:80 generated_conforms;
    prop "recursive grammars bounded" ~count:60 recursive_generation_bounded;
    ("impossible type", `Quick, test_impossible_type);
    ("unknown type", `Quick, test_unknown_type);
    ("universal type", `Quick, test_any_type);
    ("forest generation", `Quick, test_forest);
    prop "typecheck soundness" ~count:80 typecheck_sound;
  ]
