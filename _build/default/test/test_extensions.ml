(* Tests for the heterogeneous-CPU extension, the message trace, and
   the selectivity estimators. *)

open Axml
open Helpers

let p1 = peer "p1"
let p2 = peer "p2"

(* --- CPU factors -------------------------------------------------- *)

let test_cpu_factor_scales_busy_time () =
  let sim = Net.Sim.create (mesh [ "p1"; "p2" ]) in
  Net.Sim.set_cpu_factor sim p2 4.0;
  Net.Sim.consume_cpu sim ~peer:p1 ~ms:10.0;
  Net.Sim.consume_cpu sim ~peer:p2 ~ms:10.0;
  Alcotest.(check (float 0.001)) "normal peer" 10.0 (Net.Sim.busy_until sim p1);
  Alcotest.(check (float 0.001)) "slow peer" 40.0 (Net.Sim.busy_until sim p2);
  match Net.Sim.set_cpu_factor sim p1 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero factor"

let test_cpu_factor_in_cost_model () =
  let topo = mesh [ "p1"; "p2" ] in
  let factor p = if Net.Peer_id.equal p p2 then 10.0 else 1.0 in
  let env =
    Algebra.Cost.default_env ~cpu_ms_per_kb:1.0 ~cpu_factor:factor topo
  in
  let q = query "query(1) for $x in $0//a return <r/>" in
  let plan at =
    Algebra.Expr.query_at q ~at
      ~args:[ Algebra.Expr.tree_at (parse "<c><a/></c>") ~at ]
  in
  let fast = Algebra.Cost.of_expr env ~ctx:p1 (plan p1) in
  let slow = Algebra.Cost.of_expr env ~ctx:p2 (plan p2) in
  Alcotest.(check bool) "slow peer costs more latency" true
    (slow.Algebra.Cost.latency_ms > fast.Algebra.Cost.latency_ms)

let test_cpu_factor_runtime_delegation () =
  (* Same plan run on a system where p1 is very slow: delegating the
     computation to p2 must finish earlier despite the transfers. *)
  let build factor_p1 =
    let sys = Runtime.System.create (mesh ~latency:1.0 ~bandwidth:10000.0 [ "p1"; "p2" ]) in
    Net.Sim.set_cpu_factor (Runtime.System.sim sys) p1 factor_p1;
    let rng = Workload.Rng.create ~seed:3 in
    let g = Runtime.System.gen_of sys p1 in
    Runtime.System.add_document sys p1 ~name:"cat"
      (Workload.Xml_gen.catalog ~gen:g ~rng ~items:400 ~selectivity:0.1 ());
    sys
  in
  let q = Workload.Xml_gen.selection_query () in
  let local =
    Algebra.Expr.query_at q ~at:p1 ~args:[ Algebra.Expr.doc "cat" ~at:"p1" ]
  in
  let delegated =
    Algebra.Expr.Query_app
      {
        query =
          Algebra.Expr.Q_send { dest = p2; q = Algebra.Expr.Q_val { q; at = p1 } };
        args =
          [
            Algebra.Expr.Send
              { dest = Algebra.Expr.To_peer p2; expr = Algebra.Expr.doc "cat" ~at:"p1" };
          ];
        at = p2;
      }
  in
  (* Raise the price of computation so the CPU term dominates. *)
  let sys1 =
    let s = build 200.0 in
    s
  in
  let out_local = Runtime.Exec.run_to_quiescence sys1 ~ctx:p1 local in
  let sys2 = build 200.0 in
  let out_delegated = Runtime.Exec.run_to_quiescence sys2 ~ctx:p1 delegated in
  Alcotest.(check bool) "same answers" true
    (Xml.Canonical.equal_forest out_local.results out_delegated.results);
  Alcotest.(check bool) "delegation to the fast peer is faster" true
    (out_delegated.elapsed_ms < out_local.elapsed_ms)

(* --- Message tracing ---------------------------------------------- *)

let test_trace_records_messages () =
  let sys = Runtime.System.create (mesh [ "p1"; "p2" ]) in
  let stats = Net.Sim.stats (Runtime.System.sim sys) in
  Net.Stats.set_tracing stats true;
  Runtime.System.load_document sys p2 ~name:"d" ~xml:"<d><x/></d>";
  let out =
    Runtime.Exec.run_to_quiescence ~reset_stats:false sys ~ctx:p1
      (Algebra.Expr.doc "d" ~at:"p2")
  in
  Alcotest.(check int) "fetched" 1 (List.length out.results);
  let trace = Net.Stats.trace stats in
  Alcotest.(check bool) "trace nonempty" true (trace <> []);
  (* The eval-request and the stream back appear, with notes. *)
  Alcotest.(check bool) "notes rendered" true
    (List.for_all (fun (e : Net.Stats.trace_entry) -> e.note <> "") trace);
  let directions =
    List.map
      (fun (e : Net.Stats.trace_entry) ->
        (Net.Peer_id.to_string e.src, Net.Peer_id.to_string e.dst))
      trace
  in
  Alcotest.(check bool) "p1->p2 request" true
    (List.mem ("p1", "p2") directions);
  Alcotest.(check bool) "p2->p1 response" true
    (List.mem ("p2", "p1") directions);
  (* Reset clears the trace. *)
  Net.Stats.reset stats;
  Alcotest.(check int) "cleared" 0 (List.length (Net.Stats.trace stats))

let test_trace_off_by_default () =
  let sys = Runtime.System.create (mesh [ "p1"; "p2" ]) in
  Runtime.System.load_document sys p2 ~name:"d" ~xml:"<d/>";
  ignore
    (Runtime.Exec.run_to_quiescence sys ~ctx:p1 (Algebra.Expr.doc "d" ~at:"p2"));
  Alcotest.(check int) "no trace" 0
    (List.length (Net.Stats.trace (Net.Sim.stats (Runtime.System.sim sys))))

(* --- Selectivity estimators --------------------------------------- *)

let catalog_forest () =
  let rng = Workload.Rng.create ~seed:21 in
  let g = Xml.Node_id.Gen.create ~namespace:"selcat" in
  [ Workload.Xml_gen.catalog ~gen:g ~rng ~items:200 ~selectivity:0.1 () ]

let test_oracle_estimate () =
  let q = Workload.Xml_gen.selection_query () in
  let est =
    Query.Selectivity.oracle
      ~gen:(Xml.Node_id.Gen.create ~namespace:"est")
      q [ catalog_forest () ]
  in
  Alcotest.(check bool) "cardinality near 10%" true
    (est.cardinality > 5 && est.cardinality < 50);
  Alcotest.(check bool) "bytes positive" true (est.bytes > 0)

let test_stats_histogram () =
  let stats = Query.Selectivity.Stats.of_forest (catalog_forest ()) in
  Alcotest.(check int) "items counted" 200
    (Query.Selectivity.Stats.label_count stats (Xml.Label.of_string "item"));
  Alcotest.(check int) "absent label" 0
    (Query.Selectivity.Stats.label_count stats (Xml.Label.of_string "zzz"));
  Alcotest.(check bool) "avg bytes plausible" true
    (Query.Selectivity.Stats.avg_bytes stats (Xml.Label.of_string "item") > 50);
  Alcotest.(check bool) "totals" true
    (Query.Selectivity.Stats.total_nodes stats > 600
    && Query.Selectivity.Stats.total_bytes stats > 10_000)

let test_sketch_estimate_in_ballpark () =
  let q = Workload.Xml_gen.selection_query () in
  let stats = [ Query.Selectivity.Stats.of_forest (catalog_forest ()) ] in
  let sketch = Query.Selectivity.sketch q stats in
  let oracle =
    Query.Selectivity.oracle
      ~gen:(Xml.Node_id.Gen.create ~namespace:"est2")
      q [ catalog_forest () ]
  in
  (* The sketch knows nothing about data correlations; require the
     order of magnitude only. *)
  Alcotest.(check bool) "within 100x of truth" true
    (sketch.cardinality <= oracle.cardinality * 100
    && oracle.cardinality <= max 1 sketch.cardinality * 100);
  Alcotest.(check bool) "bytes positive" true (sketch.bytes > 0)

let test_sketch_monotone_in_predicates () =
  (* Adding a conjunct cannot increase the estimated cardinality. *)
  let base = query "query(1) for $x in $0//item return <r>{$x}</r>" in
  let narrowed =
    query
      {|query(1) for $x in $0//item where attr($x, "category") = "wanted" return <r>{$x}</r>|}
  in
  let stats = [ Query.Selectivity.Stats.of_forest (catalog_forest ()) ] in
  let e_base = Query.Selectivity.sketch base stats in
  let e_narrow = Query.Selectivity.sketch narrowed stats in
  Alcotest.(check bool) "narrowing shrinks estimate" true
    (e_narrow.cardinality <= e_base.cardinality)

let suite =
  [
    ("cpu factor scales busy time", `Quick, test_cpu_factor_scales_busy_time);
    ("cpu factor in cost model", `Quick, test_cpu_factor_in_cost_model);
    ("delegation to a fast peer wins", `Quick, test_cpu_factor_runtime_delegation);
    ("trace records messages", `Quick, test_trace_records_messages);
    ("trace off by default", `Quick, test_trace_off_by_default);
    ("oracle estimate", `Quick, test_oracle_estimate);
    ("label histograms", `Quick, test_stats_histogram);
    ("sketch in the ballpark", `Quick, test_sketch_estimate_in_ballpark);
    ("sketch monotone in predicates", `Quick, test_sketch_monotone_in_predicates);
  ]
