(* Randomized rule preservation: the fixed-plan suite
   (test_rules_exec.ml) is complemented here by fuzzing — random
   documents, random selection/join plans, and a random sample of the
   rewrites applicable anywhere in each plan.  Every sampled rewrite
   must preserve emitted results and the Σ fingerprint. *)

open Axml
open Helpers
module Expr = Algebra.Expr
module System = Runtime.System
module Exec = Runtime.Exec

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"
let all_peers = [ p1; p2; p3 ]

(* A deterministic system derived from the seed: catalogs of varying
   shape on p2 and p3, a declarative service on p2. *)
let build_system seed =
  let sys = System.create (mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ]) in
  List.iteri
    (fun i p ->
      let rng = Workload.Rng.create ~seed:(seed + i) in
      let g = System.gen_of sys p in
      System.add_document sys p ~name:"cat"
        (Workload.Xml_gen.catalog ~gen:g ~rng
           ~items:(20 + Workload.Rng.int rng 30)
           ~selectivity:(0.05 +. Workload.Rng.float rng 0.4)
           ()))
    [ p2; p3 ];
  System.add_service sys p2
    (Doc.Service.declarative ~name:"wanted"
       (Workload.Xml_gen.selection_query ()));
  sys

(* A random plan from a family known to terminate: selections, joins
   and service calls over the stored catalogs. *)
let random_plan rng =
  let sel = Workload.Xml_gen.selection_query () in
  let datap = Workload.Rng.pick rng [ "p2"; "p3" ] in
  match Workload.Rng.int rng 5 with
  | 0 -> Expr.query_at sel ~at:p1 ~args:[ Expr.doc "cat" ~at:datap ]
  | 1 ->
      Expr.query_at
        (query
           {|query(2) for $x in $0//item, $y in $1//item
             where attr($x, "category") = "wanted" and attr($y, "category") = "wanted"
             return <pair>{attr($x, "id")}{attr($y, "id")}</pair>|})
        ~at:p1
        ~args:[ Expr.doc "cat" ~at:"p2"; Expr.doc "cat" ~at:"p3" ]
  | 2 -> Expr.send_to_peer p1 (Expr.doc "cat" ~at:datap)
  | 3 ->
      Expr.Query_app
        {
          query = Expr.Q_val { q = query "query(1) for $h in $0 return <w>{$h}</w>"; at = p1 };
          args =
            [
              Expr.Sc
                {
                  sc =
                    Doc.Sc.make ~provider:(Doc.Names.At p2) ~service:"wanted"
                      [
                        [
                          Workload.Xml_gen.catalog
                            ~gen:(Xml.Node_id.Gen.create ~namespace:"prm")
                            ~rng ~items:15 ~selectivity:0.3 ();
                        ];
                      ];
                  at = p1;
                };
            ];
          at = p1;
        }
  | _ ->
      Expr.send_as_doc ~name:"copy" ~at:p1
        (Expr.query_at sel ~at:p1 ~args:[ Expr.doc "cat" ~at:datap ])

let execute seed plan =
  let sys = build_system seed in
  let out = Exec.run_to_quiescence sys ~ctx:p1 plan in
  (out, System.fingerprint sys)

let preservation seed =
  let rng = Workload.Rng.create ~seed in
  let plan = random_plan rng in
  let reference, ref_fp = execute seed plan in
  if not reference.finished then false
  else begin
    let n = ref 0 in
    let fresh () =
      incr n;
      Printf.sprintf "_tmp_rr%d" !n
    in
    let rewrites = Algebra.Rewrite.everywhere ~peers:all_peers ~fresh plan in
    (* Sample up to 6 rewrites deterministically. *)
    let sampled =
      List.filteri (fun i _ -> i mod max 1 (List.length rewrites / 6) = 0) rewrites
    in
    List.for_all
      (fun (r : Algebra.Rewrite.rewrite) ->
        let out, fp = execute seed r.result in
        out.finished
        && Xml.Canonical.equal_forest reference.results out.results
        && String.equal ref_fp fp)
      sampled
  end

let prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"random plans: rewrites preserve results and Σ"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
       preservation)

let suite = [ prop ]
