(* Shared helpers for the test suites. *)

open Axml

let gen () = Xml.Node_id.Gen.create ~namespace:"test"

let parse ?(g = gen ()) s = Xml.Parser.parse_exn ~gen:g s

let elt ?attrs g name kids = Xml.Tree.element_of_string ?attrs ~gen:g name kids
let txt s = Xml.Tree.text s

let tree_eq = Alcotest.testable Xml.Tree.pp Xml.Canonical.equal

let forest_eq =
  Alcotest.testable
    (Fmt.Dump.list Xml.Tree.pp)
    Xml.Canonical.equal_forest

let query s = Query.Parser.parse_exn s

let peer = Net.Peer_id.of_string

let mesh ?(latency = 10.0) ?(bandwidth = 100.0) names =
  Net.Topology.full_mesh
    ~link:(Net.Link.make ~latency_ms:latency ~bandwidth_bytes_per_ms:bandwidth)
    (List.map peer names)

let check_canonical_forests msg a b =
  Alcotest.(check bool) msg true (Xml.Canonical.equal_forest a b)

(* Evaluate a query on XML snippets, compare with expected XML forest. *)
let eval_query_on ~q ~inputs ~expect =
  let g = gen () in
  let input_forests =
    List.map (fun xml -> Result.get_ok (Xml.Parser.parse_forest ~gen:g xml)) inputs
  in
  let out = Query.Eval.eval ~gen:g (query q) input_forests in
  let expected = Result.get_ok (Xml.Parser.parse_forest ~gen:g expect) in
  check_canonical_forests "query output" expected out
