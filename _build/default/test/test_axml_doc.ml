open Axml
open Helpers
module Names = Doc.Names

let test_names () =
  let d = Names.Doc_ref.of_string "catalog@p1" in
  Alcotest.(check string) "doc ref roundtrip" "catalog@p1"
    (Names.Doc_ref.to_string d);
  let any = Names.Doc_ref.of_string "catalog@any" in
  Alcotest.(check bool) "any location" true (any.Names.Doc_ref.at = Names.Any);
  (match Names.Doc_ref.of_string "no-at-sign" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing @");
  let sr = Names.Service_ref.at_peer "resolve" ~peer:"m1" in
  Alcotest.(check string) "service ref" "resolve@m1"
    (Names.Service_ref.to_string sr)

let test_node_ref () =
  let g = Xml.Node_id.Gen.create ~namespace:"px" in
  let node = Xml.Node_id.Gen.fresh g in
  let r = Names.Node_ref.make ~node ~peer:(peer "px") in
  let s = Names.Node_ref.to_string r in
  match Names.Node_ref.of_string s with
  | Some r2 -> Alcotest.(check bool) "roundtrip" true (Names.Node_ref.equal r r2)
  | None -> Alcotest.failf "node ref parse: %s" s

let mk_sc ?(forward = []) () =
  Doc.Sc.make ~forward ~provider:(Names.At (peer "p1")) ~service:"svc"
    [ [ parse "<arg1/>" ]; [ parse "<arg2a/>"; txt "x" ] ]

let test_sc_roundtrip () =
  let g = gen () in
  let node = Xml.Node_id.Gen.fresh g in
  let sc =
    mk_sc ~forward:[ Names.Node_ref.make ~node ~peer:(peer "p9") ] ()
  in
  let tree = Doc.Sc.to_tree ~gen:g sc in
  Alcotest.(check bool) "is_sc" true (Doc.Sc.is_sc tree);
  match tree with
  | Xml.Tree.Element e -> (
      match Doc.Sc.of_element e with
      | Ok sc2 ->
          Alcotest.(check bool) "roundtrip" true (Doc.Sc.equal sc sc2);
          Alcotest.(check int) "params" 2 (List.length sc2.Doc.Sc.params);
          Alcotest.(check int) "forward" 1 (List.length sc2.Doc.Sc.forward)
      | Error msg -> Alcotest.fail msg)
  | Xml.Tree.Text _ -> Alcotest.fail "tree shape"

let test_sc_via_xml_text () =
  (* An sc element parsed from raw XML, the way documents ship it. *)
  let xml =
    {|<sc><peer>p1</peer><service>news</service><param1><q>x</q></param1></sc>|}
  in
  let t = parse xml in
  match t with
  | Xml.Tree.Element e -> (
      match Doc.Sc.of_element e with
      | Ok sc ->
          Alcotest.(check string) "service" "news"
            (Names.Service_name.to_string sc.Doc.Sc.service);
          Alcotest.(check int) "one param" 1 (List.length sc.Doc.Sc.params)
      | Error msg -> Alcotest.fail msg)
  | _ -> Alcotest.fail "shape"

let test_sc_any_provider () =
  let t = parse "<sc><peer>any</peer><service>s</service></sc>" in
  match t with
  | Xml.Tree.Element e -> (
      match Doc.Sc.of_element e with
      | Ok sc -> Alcotest.(check bool) "any" true (sc.Doc.Sc.provider = Names.Any)
      | Error m -> Alcotest.fail m)
  | _ -> Alcotest.fail "shape"

let test_sc_errors () =
  let reject xml =
    let t = parse xml in
    match t with
    | Xml.Tree.Element e -> (
        match Doc.Sc.of_element e with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "should reject %s" xml)
    | _ -> Alcotest.fail "shape"
  in
  reject "<sc><service>s</service></sc>" (* no peer *);
  reject "<sc><peer>p</peer></sc>" (* no service *);
  reject "<sc><peer>p</peer><service>s</service><param2/></sc>"
    (* param numbering gap *);
  reject "<notsc/>"

let test_find_calls () =
  let xml =
    {|<doc>
        <sc><peer>p1</peer><service>a</service></sc>
        <nested><sc><peer>p2</peer><service>b</service></sc></nested>
        <sc><peer>broken</peer></sc>
      </doc>|}
  in
  let calls = Doc.Sc.find_calls (parse xml) in
  Alcotest.(check int) "two well-formed calls" 2 (List.length calls);
  let services =
    List.map
      (fun (_, sc) -> Names.Service_name.to_string sc.Doc.Sc.service)
      calls
  in
  Alcotest.(check (list string)) "pre-order" [ "a"; "b" ] services

let test_document_ops () =
  let root = parse "<r><sc><peer>p</peer><service>s</service></sc></r>" in
  let d = Doc.Document.make ~name:"d1" root in
  Alcotest.(check bool) "has calls" true (Doc.Document.has_calls d);
  let sc_node = fst (List.hd (Doc.Document.calls d)) in
  (match Doc.Document.insert_after ~node:sc_node [ parse "<result/>" ] d with
  | Some d' ->
      Alcotest.(check int) "result is sibling" 2
        (List.length (Xml.Tree.children (Doc.Document.root d')))
  | None -> Alcotest.fail "insert_after");
  let rid = Option.get (Xml.Tree.id root) in
  match Doc.Document.insert_under ~node:rid [ parse "<x/>" ] d with
  | Some d' ->
      Alcotest.(check int) "child added" 2
        (List.length (Xml.Tree.children (Doc.Document.root d')))
  | None -> Alcotest.fail "insert_under"

let test_store () =
  let s = Doc.Store.create () in
  Doc.Store.add s (Doc.Document.make ~name:"a" (parse "<a/>"));
  (match Doc.Store.add s (Doc.Document.make ~name:"a" (parse "<a/>")) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate add");
  let fresh = Doc.Store.install s ~name:"a" (parse "<other/>") in
  Alcotest.(check bool) "renamed on conflict" false
    (Names.Doc_name.to_string fresh = "a");
  Alcotest.(check int) "two docs" 2 (List.length (Doc.Store.names s));
  Alcotest.(check bool) "update_root" true
    (Doc.Store.update_root s (Names.Doc_name.of_string "a") (fun _ ->
         parse "<changed/>"));
  (match Doc.Store.find_by_string s "a" with
  | Some d ->
      Alcotest.(check (option string)) "updated" (Some "changed")
        (Option.map Xml.Label.to_string (Xml.Tree.label (Doc.Document.root d)))
  | None -> Alcotest.fail "find");
  Doc.Store.remove s (Names.Doc_name.of_string "a");
  Alcotest.(check int) "one left" 1 (List.length (Doc.Store.names s))

let test_registry () =
  let r = Doc.Registry.create () in
  let q = query "query(1) for $x in $0//a return {$x}" in
  Doc.Registry.add r (Doc.Service.declarative ~name:"find_a" q);
  Alcotest.(check bool) "query visible" true
    (Doc.Registry.visible_query r (Names.Service_name.of_string "find_a")
    <> None);
  let extern =
    Doc.Service.extern ~name:"opaque"
      ~signature:(Schema.Signature.untyped ~arity:1)
      (fun inputs -> List.concat inputs)
  in
  Doc.Registry.add r extern;
  Alcotest.(check bool) "extern not visible" true
    (Doc.Registry.visible_query r (Names.Service_name.of_string "opaque") = None);
  let n1 = Doc.Registry.install_query r ~prefix:"_tmp_q" q in
  let n2 = Doc.Registry.install_query r ~prefix:"_tmp_q" q in
  Alcotest.(check bool) "fresh names" false (Names.Service_name.equal n1 n2);
  Alcotest.(check int) "four services" 4 (List.length (Doc.Registry.names r))

let test_service_apply () =
  let g = gen () in
  let q = query {|query(1) for $x in $0//a return <hit/>|} in
  let svc = Doc.Service.declarative ~name:"s" q in
  let out = Doc.Service.apply ~gen:g svc [ [ parse "<r><a/><a/></r>" ] ] in
  Alcotest.(check int) "declarative apply" 2 (List.length out);
  (match Doc.Service.apply ~gen:g svc [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch");
  let feed = Doc.Service.doc_feed ~name:"f" ~doc:"news" in
  match Doc.Service.apply ~gen:g feed [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "doc feed outside runtime"

let test_generic_policies () =
  let cat = Doc.Generic.create () in
  let m1 = Names.Doc_ref.at_peer "d" ~peer:"p1" in
  let m2 = Names.Doc_ref.at_peer "d" ~peer:"p2" in
  Doc.Generic.register_doc cat ~class_name:"mirror" m1;
  Doc.Generic.register_doc cat ~class_name:"mirror" m2;
  Doc.Generic.register_doc cat ~class_name:"mirror" m2 (* dedup *);
  Alcotest.(check int) "members" 2
    (List.length (Doc.Generic.doc_members cat ~class_name:"mirror"));
  (* First: deterministic smallest. *)
  (match Doc.Generic.pick_doc cat ~policy:Doc.Generic.First ~class_name:"mirror" with
  | Some r -> Alcotest.(check string) "first" "d@p1" (Names.Doc_ref.to_string r)
  | None -> Alcotest.fail "pick");
  (* Unknown class. *)
  Alcotest.(check bool) "unknown class" true
    (Doc.Generic.pick_doc cat ~policy:Doc.Generic.First ~class_name:"nope" = None);
  (* Nearest picks the cheaper link. *)
  let topo =
    Net.Topology.of_links
      ~default:(Net.Link.make ~latency_ms:100.0 ~bandwidth_bytes_per_ms:10.0)
      [
        ( peer "me",
          peer "p2",
          Net.Link.make ~latency_ms:1.0 ~bandwidth_bytes_per_ms:1000.0 );
      ]
      [ peer "me"; peer "p1"; peer "p2" ]
  in
  (match
     Doc.Generic.pick_doc cat
       ~policy:
         (Doc.Generic.Nearest
            { from = peer "me"; topology = topo; probe_bytes = 1000 })
       ~class_name:"mirror"
   with
  | Some r -> Alcotest.(check string) "nearest" "d@p2" (Names.Doc_ref.to_string r)
  | None -> Alcotest.fail "nearest pick");
  (* Least loaded. *)
  let gauge p = if Net.Peer_id.to_string p = "p1" then 0.5 else 3.0 in
  (match
     Doc.Generic.pick_doc cat ~policy:(Doc.Generic.Least_loaded gauge)
       ~class_name:"mirror"
   with
  | Some r -> Alcotest.(check string) "least loaded" "d@p1" (Names.Doc_ref.to_string r)
  | None -> Alcotest.fail "least loaded pick");
  (* Random is deterministic per seed. *)
  let p1 = Doc.Generic.pick_doc cat ~policy:(Doc.Generic.Random 7) ~class_name:"mirror" in
  let p2 = Doc.Generic.pick_doc cat ~policy:(Doc.Generic.Random 7) ~class_name:"mirror" in
  Alcotest.(check bool) "random deterministic" true (p1 = p2)

let test_generic_rejects_any_member () =
  let cat = Doc.Generic.create () in
  match
    Doc.Generic.register_doc cat ~class_name:"c" (Names.Doc_ref.any "d")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Any member must be rejected"

let test_equivalence () =
  let eq = Doc.Equivalence.equivalent in
  (* Permuted plain trees. *)
  Alcotest.(check bool) "plain permutation" true
    (eq (parse "<r><a/><b/></r>") (parse "<r><b/><a/></r>"));
  (* Same call, different forw order and param ids. *)
  let doc1 =
    parse
      {|<r><sc><peer>p</peer><service>s</service><param1><x/></param1><forw>a:1@p1</forw><forw>a:2@p2</forw></sc></r>|}
  in
  let doc2 =
    parse
      {|<r><sc><forw>a:2@p2</forw><peer>p</peer><forw>a:1@p1</forw><service>s</service><param1><x/></param1></sc></r>|}
  in
  Alcotest.(check bool) "same call modulo order" true (eq doc1 doc2);
  (* Different service: not equivalent. *)
  let doc3 =
    parse {|<r><sc><peer>p</peer><service>other</service><param1><x/></param1><forw>a:1@p1</forw><forw>a:2@p2</forw></sc></r>|}
  in
  Alcotest.(check bool) "different call" false (eq doc1 doc3);
  (* A call vs its absence. *)
  Alcotest.(check bool) "call vs data" false (eq doc1 (parse "<r/>"))

let test_equivalent_documents () =
  let d1 = Doc.Document.make ~name:"x" (parse "<r><a/></r>") in
  let d2 = Doc.Document.make ~name:"y" (parse "<r><a/></r>") in
  Alcotest.(check bool) "names may differ" true
    (Doc.Equivalence.equivalent_documents d1 d2)

let suite =
  [
    ("names and refs", `Quick, test_names);
    ("node refs", `Quick, test_node_ref);
    ("sc tree round-trip", `Quick, test_sc_roundtrip);
    ("sc from raw xml", `Quick, test_sc_via_xml_text);
    ("sc generic provider", `Quick, test_sc_any_provider);
    ("sc malformed", `Quick, test_sc_errors);
    ("find calls", `Quick, test_find_calls);
    ("document operations", `Quick, test_document_ops);
    ("store", `Quick, test_store);
    ("registry", `Quick, test_registry);
    ("service application", `Quick, test_service_apply);
    ("generic pick policies", `Quick, test_generic_policies);
    ("generic member validation", `Quick, test_generic_rejects_any_member);
    ("tree equivalence", `Quick, test_equivalence);
    ("document equivalence", `Quick, test_equivalent_documents);
  ]
