open Axml
open Helpers
module Expr = Algebra.Expr
module Names = Doc.Names

let p1 = peer "p1"
let p2 = peer "p2"
let p3 = peer "p3"

let sel_query = query {|query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{$x}</hit>|}

let sample_exprs () =
  let g = gen () in
  let node = Xml.Node_id.Gen.fresh g in
  [
    Expr.tree_at (parse "<a><b/></a>") ~at:p1;
    Expr.data_at [ parse "<a/>"; txt "t" ] ~at:p2;
    Expr.doc "cat" ~at:"p2";
    Expr.doc_any "mirror";
    Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ];
    Expr.sc
      (Doc.Sc.make
         ~forward:[ Names.Node_ref.make ~node ~peer:p3 ]
         ~provider:(Names.At p2) ~service:"svc"
         [ [ parse "<arg/>" ] ])
      ~at:p1;
    Expr.send_to_peer p2 (Expr.tree_at (parse "<x/>") ~at:p1);
    Expr.send_to_nodes
      [ Names.Node_ref.make ~node ~peer:p3 ]
      (Expr.doc "cat" ~at:"p2");
    Expr.send_as_doc ~name:"copy" ~at:p3 (Expr.doc "cat" ~at:"p2");
    Expr.eval_at p3 (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ]);
    Expr.shared ~name:"_tmp_m" ~at:p2
      ~value:(Expr.doc "cat" ~at:"p2")
      ~body:(Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "_tmp_m" ~at:"p2" ]);
    Expr.Query_app
      {
        query = Expr.Q_send { dest = p2; q = Expr.Q_val { q = sel_query; at = p1 } };
        args = [ Expr.doc "cat" ~at:"p2" ];
        at = p2;
      };
    Expr.Query_app
      {
        query = Expr.Q_service (Names.Service_ref.at_peer "resolve" ~peer:"p2");
        args = [ Expr.tree_at (parse "<req/>") ~at:p1 ];
        at = p2;
      };
  ]

let test_site () =
  let check e loc = Alcotest.(check bool) (Expr.to_string e) true (Expr.site e = loc) in
  check (Expr.tree_at (parse "<a/>") ~at:p1) (Names.At p1);
  check (Expr.doc "d" ~at:"p2") (Names.At p2);
  check (Expr.doc_any "d") Names.Any;
  check (Expr.send_to_peer p3 (Expr.doc "d" ~at:"p2")) (Names.At p3);
  (* Side-effecting sends return ∅ at the operand's site. *)
  check
    (Expr.send_as_doc ~name:"n" ~at:p3 (Expr.doc "d" ~at:"p2"))
    (Names.At p2);
  check
    (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p2" ])
    (Names.At p1)

let test_peers () =
  let e =
    Expr.send_to_peer p3
      (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "cat" ~at:"p2" ])
  in
  let ps = List.map Net.Peer_id.to_string (Expr.peers e) in
  List.iter
    (fun p -> Alcotest.(check bool) ("mentions " ^ p) true (List.mem p ps))
    [ "p1"; "p2"; "p3" ]

let test_size_subexpr () =
  let e =
    Expr.send_to_peer p3
      (Expr.query_at sel_query ~at:p1
         ~args:[ Expr.doc "cat" ~at:"p2"; Expr.tree_at (parse "<x/>") ~at:p1 ])
  in
  Alcotest.(check int) "size" 4 (Expr.size e);
  Alcotest.(check int) "children of send" 1
    (List.length (Expr.subexpressions e))

let test_equal () =
  let a = Expr.doc "d" ~at:"p1" and b = Expr.doc "d" ~at:"p1" in
  Alcotest.(check bool) "equal" true (Expr.equal a b);
  Alcotest.(check bool) "different peer" false
    (Expr.equal a (Expr.doc "d" ~at:"p2"));
  (* Literal data compares by shape, not ids. *)
  Alcotest.(check bool) "data by shape" true
    (Expr.equal
       (Expr.tree_at (parse "<a><b/></a>") ~at:p1)
       (Expr.tree_at (parse "<a><b/></a>") ~at:p1))

let test_xml_roundtrip () =
  List.iter
    (fun e ->
      let xml = Algebra.Expr_xml.to_xml_string e in
      match Algebra.Expr_xml.of_xml_string xml with
      | Ok e2 ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %s" (Expr.to_string e))
            true (Expr.equal e e2)
      | Error msg -> Alcotest.failf "decode %s: %s" xml msg)
    (sample_exprs ())

let test_xml_decode_errors () =
  List.iter
    (fun xml ->
      match Algebra.Expr_xml.of_xml_string xml with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %s" xml)
    [
      "<unknown/>";
      "<e-data/>" (* missing at *);
      {|<e-send kind="peer"><e-doc ref="d@p"/></e-send>|} (* missing peer attr *);
      {|<e-apply at="p"><q-val at="p">not a query</q-val><args/></e-apply>|};
      {|<e-share at="p" name="n"><value><e-doc ref="d@p"/></value></e-share>|}
      (* missing body *);
    ]

let test_byte_size_positive () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "positive" true (Algebra.Expr_xml.byte_size e > 0))
    (sample_exprs ())

(* Cost model sanity. *)

let topo = mesh ~latency:10.0 ~bandwidth:100.0 [ "p1"; "p2"; "p3" ]

let env =
  Algebra.Cost.default_env ~doc_bytes:(fun _ -> 10_000) topo

let cost e = Algebra.Cost.of_expr env ~ctx:p1 e

let test_cost_local_data_free () =
  let c = cost (Expr.tree_at (parse "<a/>") ~at:p1) in
  Alcotest.(check int) "no transfer" 0 c.Algebra.Cost.bytes;
  Alcotest.(check int) "no messages" 0 c.Algebra.Cost.messages

let test_cost_remote_fetch_charges () =
  (* Applying a query at p1 to a remote document must ship the doc. *)
  let local =
    cost (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p1" ])
  in
  let remote =
    cost (Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p2" ])
  in
  Alcotest.(check bool) "remote costs more bytes" true
    (remote.Algebra.Cost.bytes > local.Algebra.Cost.bytes);
  Alcotest.(check bool) "remote has latency" true
    (remote.Algebra.Cost.latency_ms > local.Algebra.Cost.latency_ms)

let test_cost_push_selection_cheaper () =
  let naive = Expr.query_at sel_query ~at:p1 ~args:[ Expr.doc "d" ~at:"p2" ] in
  let pushed =
    match Algebra.Rewrite.r11_push_selection naive with
    | [ r ] -> r.Algebra.Rewrite.result
    | _ -> Alcotest.fail "expected one rewrite"
  in
  let cn = cost naive and cp = cost pushed in
  Alcotest.(check bool) "pushed ships fewer bytes" true
    (cp.Algebra.Cost.bytes < cn.Algebra.Cost.bytes)

let test_cost_dominates_weighted () =
  let a = { Algebra.Cost.bytes = 10; messages = 1; latency_ms = 5.0; result_bytes = 0 } in
  let b = { Algebra.Cost.bytes = 20; messages = 2; latency_ms = 9.0; result_bytes = 0 } in
  Alcotest.(check bool) "a dominates b" true (Algebra.Cost.dominates a b);
  Alcotest.(check bool) "b not dominates a" false (Algebra.Cost.dominates b a);
  Alcotest.(check bool) "weighted orders" true
    (Algebra.Cost.weighted a < Algebra.Cost.weighted b)

let test_cost_shared_adds_latency_saves_bytes () =
  let fetch = Expr.send_to_peer p1 (Expr.doc "d" ~at:"p2") in
  let twice =
    Expr.query_at
      (query "query(2) for $x in $0, $y in $1 return <p/>")
      ~at:p1 ~args:[ fetch; fetch ]
  in
  let shared =
    match Algebra.Rewrite.r13_share ~fresh:(fun () -> "_tmp_s") twice with
    | r :: _ -> r.Algebra.Rewrite.result
    | [] -> Alcotest.fail "r13 should apply"
  in
  let ct = cost twice and cs = cost shared in
  Alcotest.(check bool) "sharing saves bytes" true
    (cs.Algebra.Cost.bytes < ct.Algebra.Cost.bytes)

let suite =
  [
    ("expression sites", `Quick, test_site);
    ("peers mentioned", `Quick, test_peers);
    ("size and subexpressions", `Quick, test_size_subexpr);
    ("structural equality", `Quick, test_equal);
    ("xml round-trips", `Quick, test_xml_roundtrip);
    ("xml decode errors", `Quick, test_xml_decode_errors);
    ("serialized sizes positive", `Quick, test_byte_size_positive);
    ("cost: local data free", `Quick, test_cost_local_data_free);
    ("cost: remote fetch charged", `Quick, test_cost_remote_fetch_charges);
    ("cost: pushed selection cheaper", `Quick, test_cost_push_selection_cheaper);
    ("cost: dominance and weighting", `Quick, test_cost_dominates_weighted);
    ("cost: rule 13 sharing", `Quick, test_cost_shared_adds_latency_saves_bytes);
  ]
