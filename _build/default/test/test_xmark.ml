open Axml
open Helpers
module Xmark = Workload.Xmark

let make_site ?scale seed =
  let rng = Workload.Rng.create ~seed in
  let g = Xml.Node_id.Gen.create ~namespace:(Printf.sprintf "xm%d" seed) in
  Xmark.site ?scale ~gen:g ~rng ()

let eval q site =
  Query.Eval.eval ~gen:(gen ()) q [ [ site ] ]

let test_site_shape () =
  let site = make_site 1 in
  let count p = List.length (Xml.Path.select (Xml.Path.of_string p) site) in
  Alcotest.(check int) "people" Xmark.default_scale.people
    (count "/people/person");
  let region_count =
    match Xml.Path.select (Xml.Path.of_string "/regions") site with
    | [ r ] -> List.length (List.filter Xml.Tree.is_element (Xml.Tree.children r))
    | _ -> -1
  in
  Alcotest.(check int) "regions" (List.length Xmark.regions) region_count;
  Alcotest.(check int) "items"
    (Xmark.default_scale.items_per_region * List.length Xmark.regions)
    (count "/regions//item");
  Alcotest.(check int) "auctions" Xmark.default_scale.auctions
    (count "/auctions/auction")

let test_deterministic () =
  Alcotest.(check bool) "same seed, same site" true
    (Xml.Canonical.equal (make_site 7) (make_site 7));
  Alcotest.(check bool) "different seed differs" false
    (Xml.Canonical.equal (make_site 7) (make_site 8))

let test_region_query () =
  let site = make_site 2 in
  let out = eval (Xmark.q_items_of_region "europe") site in
  Alcotest.(check int) "one listing per item"
    Xmark.default_scale.items_per_region (List.length out)

let test_auction_join () =
  let site = make_site 3 in
  let out = eval Xmark.q_auction_item_join site in
  (* Every auction references an existing item, so the join is total. *)
  Alcotest.(check int) "join total" Xmark.default_scale.auctions
    (List.length out);
  List.iter
    (fun sale ->
      Alcotest.(check bool) "has price" true
        (Xml.Path.exists (Xml.Path.of_string "/price") sale))
    out

let test_category_join_subset () =
  let site = make_site 4 in
  let per_cat =
    List.map
      (fun c -> List.length (eval (Xmark.q_bidders_of_category c) site))
      Xmark.categories
  in
  let total_bidders =
    List.length (Xml.Path.select (Xml.Path.of_string "/auctions/auction/bidder") site)
  in
  Alcotest.(check int) "categories partition the bidders" total_bidders
    (List.fold_left ( + ) 0 per_cat)

let test_price_threshold_monotone () =
  let site = make_site 5 in
  let count t = List.length (eval (Xmark.q_expensive_auctions t) site) in
  Alcotest.(check bool) "higher threshold, fewer hits" true
    (count 150.0 <= count 50.0);
  Alcotest.(check int) "none above max" 0 (count 1000.0);
  Alcotest.(check int) "all above min" Xmark.default_scale.auctions (count 0.0)

let test_scaling () =
  let scale =
    { Xmark.default_scale with people = 5; items_per_region = 3; auctions = 4 }
  in
  let site = make_site ~scale 6 in
  Alcotest.(check int) "scaled people" 5
    (List.length (Xml.Path.select (Xml.Path.of_string "/people/person") site))

let suite =
  [
    ("site shape", `Quick, test_site_shape);
    ("deterministic generation", `Quick, test_deterministic);
    ("region query", `Quick, test_region_query);
    ("auction-item join", `Quick, test_auction_join);
    ("category join partitions bidders", `Quick, test_category_join_subset);
    ("price threshold monotone", `Quick, test_price_threshold_monotone);
    ("custom scale", `Quick, test_scaling);
  ]
