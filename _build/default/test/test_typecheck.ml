open Axml
open Helpers
module Tc = Query.Typecheck
module Cm = Schema.Content_model

(* A small library grammar. *)
let schema =
  Schema.Schema.of_decls
    [
      Schema.Schema.decl ~name:"lib" ~label:"lib" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "shelf")) ();
      Schema.Schema.decl ~name:"shelf" ~label:"shelf" ~mixed:false
        ~content:(Cm.star (Cm.ref_ "book")) ();
      Schema.Schema.decl ~name:"book" ~label:"book" ~mixed:false
        ~content:(Cm.seq [ Cm.ref_ "title"; Cm.opt (Cm.ref_ "year") ]) ();
      Schema.Schema.decl ~name:"title" ~label:"title" ~mixed:true
        ~content:Cm.Epsilon ();
      Schema.Schema.decl ~name:"year" ~label:"year" ~mixed:true
        ~content:Cm.Epsilon ();
    ]

let test_child_types () =
  Alcotest.(check (list string)) "lib children" [ "shelf" ]
    (Tc.child_types schema "lib");
  Alcotest.(check (list string)) "book children" [ "title"; "year" ]
    (Tc.child_types schema "book");
  Alcotest.(check (list string)) "leaf" [] (Tc.child_types schema "title");
  Alcotest.(check bool) "universal has all" true
    (List.length (Tc.child_types schema Schema.Schema.any_type_name) >= 5)

let path s = Result.get_ok (Query.Parser.parse_path s)

let test_types_via_path () =
  Alcotest.(check (list string)) "child chain" [ "book" ]
    (Tc.types_via_path schema ~from:[ "lib" ] (path "/shelf/book"));
  Alcotest.(check (list string)) "descendant" [ "title" ]
    (Tc.types_via_path schema ~from:[ "lib" ] (path "//title"));
  Alcotest.(check (list string)) "unsatisfiable" []
    (Tc.types_via_path schema ~from:[ "lib" ] (path "/book"));
  (* Wildcard step. *)
  Alcotest.(check (list string)) "wildcard step" [ "shelf" ]
    (Tc.types_via_path schema ~from:[ "lib" ] (path "/*"));
  (* From the universal type everything is reachable. *)
  Alcotest.(check bool) "from any" true
    (List.mem "book"
       (Tc.types_via_path schema
          ~from:[ Schema.Schema.any_type_name ]
          (path "//book")))

let test_var_types () =
  let q =
    query
      {|query(1) for $s in $0/shelf, $b in $s/book, $t in $b/title return {$t}|}
  in
  match Tc.var_types schema ~inputs:[ "lib" ] q with
  | Ok vt ->
      Alcotest.(check (list string)) "s" [ "shelf" ] (List.assoc "s" vt);
      Alcotest.(check (list string)) "b" [ "book" ] (List.assoc "b" vt);
      Alcotest.(check (list string)) "t" [ "title" ] (List.assoc "t" vt)
  | Error e -> Alcotest.fail e

let test_var_types_empty_when_unsatisfiable () =
  let q = query "query(1) for $x in $0/nonexistent return {$x}" in
  match Tc.var_types schema ~inputs:[ "lib" ] q with
  | Ok [ ("x", types) ] -> Alcotest.(check (list string)) "empty" [] types
  | Ok _ -> Alcotest.fail "one var expected"
  | Error e -> Alcotest.fail e

let test_infer_output_and_validate () =
  let q =
    query
      {|query(1) for $b in $0//book where exists($b/year) return <hit><count>"1"</count>{$b}</hit>|}
  in
  match Tc.infer_output schema ~inputs:[ "lib" ] ~prefix:"out" q with
  | Error e -> Alcotest.fail e
  | Ok (extended, out_types) ->
      Alcotest.(check int) "one output type" 1 (List.length out_types);
      (* Evaluate on conforming data; every output validates against
         the inferred type. *)
      let data =
        parse
          {|<lib><shelf><book><title>a</title><year>2001</year></book><book><title>b</title></book></shelf></lib>|}
      in
      Alcotest.(check bool) "input conforms" true
        (Schema.Validate.conforms ~schema ~type_name:"lib" data);
      let out = Query.Eval.eval ~gen:(gen ()) q [ [ data ] ] in
      Alcotest.(check int) "one hit" 1 (List.length out);
      List.iter
        (fun t ->
          let ok =
            List.exists
              (fun ty ->
                Schema.Validate.conforms ~schema:extended ~type_name:ty t)
              out_types
          in
          Alcotest.(check bool) "output validates against inference" true ok)
        out

let test_infer_copy_passthrough () =
  let q = query "query(1) for $b in $0//book return {$b}" in
  match Tc.infer_output schema ~inputs:[ "lib" ] ~prefix:"o" q with
  | Ok (_, [ "book" ]) -> ()
  | Ok (_, other) ->
      Alcotest.failf "expected [book], got [%s]" (String.concat ";" other)
  | Error e -> Alcotest.fail e

let test_infer_rejects_bare_text () =
  let q = query "query(1) for $b in $0//book return {text($b)}" in
  Alcotest.(check bool) "bare text rejected" true
    (Result.is_error (Tc.infer_output schema ~inputs:[ "lib" ] ~prefix:"o" q))

let test_signature_check () =
  (* A service honestly declaring book output. *)
  let sig_ok =
    Schema.Signature.make ~schema ~inputs:[ "lib" ] ~output:"book"
  in
  let svc_ok =
    Doc.Service.declarative ~signature:sig_ok ~name:"books"
      (query "query(1) for $b in $0//book return {$b}")
  in
  Alcotest.(check bool) "honest signature accepted" true
    (Result.is_ok (Doc.Signature_check.check schema svc_ok));
  (* A service claiming to return shelves while producing books. *)
  let sig_bad =
    Schema.Signature.make ~schema ~inputs:[ "lib" ] ~output:"shelf"
  in
  let svc_bad =
    Doc.Service.declarative ~signature:sig_bad ~name:"liar"
      (query "query(1) for $b in $0//book return {$b}")
  in
  Alcotest.(check bool) "lying signature rejected" true
    (Result.is_error (Doc.Signature_check.check schema svc_bad));
  (* Untyped services always pass. *)
  let svc_untyped =
    Doc.Service.declarative ~name:"anything"
      (query "query(1) for $b in $0//book return {$b}")
  in
  Alcotest.(check bool) "universal output accepted" true
    (Result.is_ok (Doc.Signature_check.check schema svc_untyped))

let test_check_registry () =
  let reg = Doc.Registry.create () in
  Doc.Registry.add reg
    (Doc.Service.declarative ~name:"fine"
       (query "query(1) for $b in $0//book return {$b}"));
  Doc.Registry.add reg
    (Doc.Service.declarative
       ~signature:(Schema.Signature.make ~schema ~inputs:[ "lib" ] ~output:"shelf")
       ~name:"broken"
       (query "query(1) for $b in $0//book return {$b}"));
  let failures = Doc.Signature_check.check_registry schema reg in
  Alcotest.(check int) "one failure" 1 (List.length failures);
  Alcotest.(check string) "the broken one" "broken"
    (Doc.Names.Service_name.to_string (fst (List.hd failures)))

let suite =
  [
    ("child types", `Quick, test_child_types);
    ("path typing", `Quick, test_types_via_path);
    ("variable typing", `Quick, test_var_types);
    ("unsatisfiable path", `Quick, test_var_types_empty_when_unsatisfiable);
    ("output inference validates", `Quick, test_infer_output_and_validate);
    ("copy pass-through", `Quick, test_infer_copy_passthrough);
    ("bare text rejected", `Quick, test_infer_rejects_bare_text);
    ("signature check", `Quick, test_signature_check);
    ("registry sweep", `Quick, test_check_registry);
  ]
