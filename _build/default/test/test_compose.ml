open Axml
open Helpers
module Ast = Query.Ast
module Compose = Query.Compose

let g2 () = gen ()

let eval q inputs =
  let g = g2 () in
  Query.Eval.eval ~gen:g q inputs

let test_identity_query () =
  let f = Result.get_ok (Xml.Parser.parse_forest ~gen:(g2 ()) "<a/><b>x</b>") in
  check_canonical_forests "identity" f (eval Compose.identity [ f ])

let test_projection () =
  let fa = [ parse "<a/>" ] and fb = [ parse "<b/>" ] in
  let p1 = Compose.projection ~arity:2 ~input:1 in
  check_canonical_forests "projects input 1" fb (eval p1 [ fa; fb ]);
  match Compose.projection ~arity:2 ~input:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range projection"

let test_compose_builder () =
  let head = query "query(1) for $x in $0 return <w>{$x}</w>" in
  let sub = query "query(1) for $x in $0//a return {$x}" in
  let q = Compose.compose head [ sub ] in
  Alcotest.(check bool) "checks" true (Result.is_ok (Ast.check q));
  (* arity mismatch rejected *)
  match Compose.compose head [ sub; sub ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch"

let test_selection_builder () =
  let sel =
    Compose.selection ~arity:1
      ~path:[ Ast.desc "item" ]
      ~where:(Ast.Cmp (Ast.Attr_of ("x", "k"), Ast.Eq, Ast.Const "y"))
  in
  let input =
    Result.get_ok
      (Xml.Parser.parse_forest ~gen:(g2 ())
         {|<c><item k="y">1</item><item k="n">2</item></c>|})
  in
  let out = eval sel [ input ] in
  Alcotest.(check int) "one kept" 1 (List.length out);
  (* predicates over other variables are rejected *)
  match
    Compose.selection ~arity:1 ~path:[]
      ~where:(Ast.Cmp (Ast.Text_of "other", Ast.Eq, Ast.Const "v"))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign variable"

(* The contract of Example 1: eval q I == eval outer (eval pushed I :: tl I),
   canonically. *)
let check_split_equivalence q_str input_xml =
  let q = query q_str in
  match Compose.push_selection q with
  | None -> Alcotest.failf "expected a split for %s" q_str
  | Some { outer; pushed } ->
      let g = g2 () in
      let inputs =
        [ Result.get_ok (Xml.Parser.parse_forest ~gen:g input_xml) ]
      in
      let direct = eval q inputs in
      let staged = eval outer [ eval pushed inputs ] in
      check_canonical_forests "split equivalence" direct staged;
      (* And via the composed form. *)
      let composed = Compose.apply_split { outer; pushed } in
      check_canonical_forests "composed equivalence" direct
        (eval composed inputs)

let test_push_selection_basic () =
  check_split_equivalence
    {|query(1) for $x in $0//item where attr($x, "k") = "y" return <hit>{$x}</hit>|}
    {|<c><item k="y"><p>a</p></item><item k="n"><p>b</p></item><item k="y"/></c>|}

let test_push_selection_multi_binding () =
  check_split_equivalence
    {|query(1) for $x in $0//item, $n in $x/name where attr($x, "k") = "y" and text($n) contains "a" return <r>{$n}</r>|}
    {|<c><item k="y"><name>abc</name></item><item k="n"><name>aaa</name></item><item k="y"><name>zzz</name></item></c>|}

let test_push_selection_splits_conjuncts () =
  let q =
    query
      {|query(1) for $x in $0//item, $n in $x/name where attr($x, "k") = "y" and text($n) = "a" return {$n}|}
  in
  match Compose.push_selection q with
  | None -> Alcotest.fail "split expected"
  | Some { pushed; outer } -> (
      (match pushed with
      | Ast.Flwr f ->
          Alcotest.(check int) "pushed keeps local conjunct" 1
            (List.length (Ast.conjuncts f.where))
      | _ -> Alcotest.fail "pushed shape");
      match outer with
      | Ast.Flwr f ->
          Alcotest.(check int) "outer keeps remote conjunct" 1
            (List.length (Ast.conjuncts f.where))
      | _ -> Alcotest.fail "outer shape")

let test_push_selection_none_cases () =
  let none s =
    Alcotest.(check bool)
      (Printf.sprintf "no split for %s" s)
      true
      (Compose.push_selection (query s) = None)
  in
  (* Nothing pushable: predicate involves the second variable. *)
  none
    {|query(1) for $x in $0//a, $y in $x/b where text($y) = "1" return {$x}|};
  (* No predicate at all. *)
  none "query(1) for $x in $0//a return {$x}";
  (* First binding not on input 0. *)
  none
    {|query(2) for $x in $1//a where text($x) = "1" return {$x}|};
  (* Composition is not split. *)
  none
    {|compose { query(1) for $x in $0 return {$x} } ({ query(1) for $x in $0//a where text($x) = "1" return {$x} })|}

let test_push_selection_skips_shared_input () =
  (* A second binding over input 0 would change meaning; must refuse. *)
  Alcotest.(check bool) "shared input refused" true
    (Compose.push_selection
       (query
          {|query(1) for $x in $0//a, $y in $0//b where text($x) = "1" return {$y}|})
    = None)

let suite =
  [
    ("identity query", `Quick, test_identity_query);
    ("projection", `Quick, test_projection);
    ("compose builder", `Quick, test_compose_builder);
    ("selection builder", `Quick, test_selection_builder);
    ("push selection: basic equivalence", `Quick, test_push_selection_basic);
    ( "push selection: multi-binding equivalence",
      `Quick,
      test_push_selection_multi_binding );
    ("push selection: conjunct split", `Quick, test_push_selection_splits_conjuncts);
    ("push selection: inapplicable cases", `Quick, test_push_selection_none_cases);
    ("push selection: shared input refused", `Quick, test_push_selection_skips_shared_input);
  ]
