open Axml
open Helpers
module Ast = Query.Ast

let roundtrip s =
  let q = query s in
  let printed = Ast.to_string q in
  let again = Query.Parser.parse_exn printed in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip %s" s)
    true (Ast.equal q again)

let test_parse_simple () =
  let q = query "query(1) for $x in $0//item return {$x}" in
  Alcotest.(check int) "arity" 1 (Ast.arity q);
  match q with
  | Ast.Flwr f ->
      Alcotest.(check int) "bindings" 1 (List.length f.bindings);
      Alcotest.(check bool) "no where" true (f.where = Ast.True)
  | Ast.Compose _ -> Alcotest.fail "expected flwr"

let test_parse_full () =
  let q =
    query
      {|query(2) for $x in $0//item, $n in $x/name, $y in $1/other
        where text($n) contains "xml" and (attr($x, "id") != "0" or not exists($y/sub))
        return <res kind="hit">{$n} {text($x)} "lit"</res>|}
  in
  match q with
  | Ast.Flwr f ->
      Alcotest.(check int) "bindings" 3 (List.length f.bindings);
      Alcotest.(check int) "conjuncts" 2 (List.length (Ast.conjuncts f.where))
  | Ast.Compose _ -> Alcotest.fail "expected flwr"

let test_parse_compose () =
  let q =
    query
      {|compose { query(2) for $a in $0/x, $b in $1/y return <pair>{$a}{$b}</pair> }
        ({ query(1) for $v in $0//l return {$v} };
         { query(1) for $w in $0//r return {$w} })|}
  in
  match q with
  | Ast.Compose (head, subs) ->
      Alcotest.(check int) "head arity" 2 head.arity;
      Alcotest.(check int) "subs" 2 (List.length subs);
      Alcotest.(check int) "composed arity is subs'" 1 (Ast.arity q)
  | Ast.Flwr _ -> Alcotest.fail "expected compose"

let test_roundtrips () =
  List.iter roundtrip
    [
      "query(1) for $x in $0//item return {$x}";
      "query(1) for $x in $0/a/b, $y in $x//c return <out>{$y}</out>";
      {|query(1) for $x in $0//item where attr($x, "cat") = "y" return {text($x)}|};
      {|query(1) for $x in $0//i where text($x) < 10 and text($x) >= 2 return <n>{text($x)}</n>|};
      {|query(2) for $a in $0//x, $b in $1//y where exists($a/z) or not true return <p a="1">{$a}{$b}</p>|};
      {|query(1) for $x in $0//* where text($x) contains "q" return {attr($x, "id")}|};
      "query(0) return <constant/>";
      {|compose { query(1) for $r in $0 return <w>{$r}</w> } ({ query(1) for $x in $0//a return {$x} })|};
    ]

let test_check_rejects () =
  let reject s reason =
    match Query.Parser.parse s with
    | Error _ -> ()
    | Ok q -> (
        match Ast.check q with
        | Error _ -> ()
        | Ok () -> Alcotest.failf "should reject (%s): %s" reason s)
  in
  reject "query(1) for $x in $5//a return {$x}" "input out of range";
  reject "query(1) for $x in $0/a return {$ghost}" "unbound in return";
  reject {|query(1) for $x in $0/a where text($y) = "1" return {$x}|}
    "unbound in where";
  reject "query(1) for $x in $0/a, $x in $0/b return {$x}" "duplicate binding";
  reject "query(1) for $x in $y/a return {$x}" "use before binding"

let test_parse_errors () =
  List.iter
    (fun s ->
      match Query.Parser.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [
      "";
      "query(1) return";
      "query(1) for $x in return {$x}";
      "query(1) for $x in $0/a where return {$x}";
      "query(1) for $x in $0/a return <a>{$x}</b>";
      "query(1) for $x in $0/a return {$x} trailing";
      "query(x) return <a/>";
    ]

let test_conj_conjuncts () =
  let a = Ast.Cmp (Ast.Const "1", Ast.Eq, Ast.Const "1") in
  let b = Ast.Exists ("x", []) in
  let c = Ast.Not Ast.True in
  Alcotest.(check int) "three conjuncts" 3
    (List.length (Ast.conjuncts (Ast.conj [ a; b; c ])));
  Alcotest.(check bool) "empty conj is true" true (Ast.conj [] = Ast.True);
  Alcotest.(check int) "true vanishes" 1
    (List.length (Ast.conjuncts (Ast.And (Ast.True, b))))

let test_vars () =
  let q =
    query
      {|query(1) for $x in $0//a, $y in $x/b where text($x) = "1" and exists($y/c) return <r>{$y}</r>|}
  in
  match q with
  | Ast.Flwr f ->
      Alcotest.(check (list string)) "pred vars" [ "x"; "y" ]
        (Ast.pred_vars f.where);
      Alcotest.(check (list string)) "construct vars" [ "y" ]
        (Ast.construct_vars f.return_)
  | Ast.Compose _ -> Alcotest.fail "flwr expected"

let test_path_to_string () =
  let q = query "query(1) for $x in $0//a/b return {$x}" in
  match q with
  | Ast.Flwr { bindings = [ b ]; _ } ->
      Alcotest.(check string) "path" "//a/b" (Ast.path_to_string b.path)
  | _ -> Alcotest.fail "shape"

let suite =
  [
    ("parse simple", `Quick, test_parse_simple);
    ("parse full syntax", `Quick, test_parse_full);
    ("parse composition", `Quick, test_parse_compose);
    ("print/parse round-trips", `Quick, test_roundtrips);
    ("well-formedness rejections", `Quick, test_check_rejects);
    ("syntax errors", `Quick, test_parse_errors);
    ("conj/conjuncts", `Quick, test_conj_conjuncts);
    ("variable analysis", `Quick, test_vars);
    ("path printing", `Quick, test_path_to_string);
  ]
