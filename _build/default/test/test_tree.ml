open Axml
open Helpers

let test_label_validation () =
  Alcotest.(check bool) "valid simple" true (Xml.Label.is_valid "item");
  Alcotest.(check bool) "valid with digits" true (Xml.Label.is_valid "p2p");
  Alcotest.(check bool) "valid underscore start" true (Xml.Label.is_valid "_x");
  Alcotest.(check bool) "invalid empty" false (Xml.Label.is_valid "");
  Alcotest.(check bool) "invalid digit start" false (Xml.Label.is_valid "2x");
  Alcotest.(check bool) "invalid space" false (Xml.Label.is_valid "a b");
  Alcotest.check Alcotest.(option string) "of_string_opt rejects"
    None
    (Option.map Xml.Label.to_string (Xml.Label.of_string_opt "<bad>"));
  match Xml.Label.of_string "bad name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_string should raise"

let test_node_id_gen () =
  let g1 = Xml.Node_id.Gen.create ~namespace:"a" in
  let g2 = Xml.Node_id.Gen.create ~namespace:"b" in
  let a1 = Xml.Node_id.Gen.fresh g1 in
  let a2 = Xml.Node_id.Gen.fresh g1 in
  let b1 = Xml.Node_id.Gen.fresh g2 in
  Alcotest.(check bool) "distinct in stream" false (Xml.Node_id.equal a1 a2);
  Alcotest.(check bool) "distinct across namespaces" false
    (Xml.Node_id.equal a1 b1);
  let round id =
    Xml.Node_id.of_string (Xml.Node_id.to_string id)
    |> Option.map (Xml.Node_id.equal id)
  in
  Alcotest.(check (option bool)) "round-trip" (Some true) (round a1)

let test_node_id_of_string_invalid () =
  Alcotest.(check bool) "garbage" true (Xml.Node_id.of_string "nope" = None);
  Alcotest.(check bool) "negative" true (Xml.Node_id.of_string "a:-1" = None);
  Alcotest.(check bool) "empty ns" true (Xml.Node_id.of_string ":3" = None)

let test_construction_and_accessors () =
  let g = gen () in
  let t = elt g "root" [ elt g "kid" [ txt "hello" ]; txt "tail" ] in
  Alcotest.(check bool) "is_element" true (Xml.Tree.is_element t);
  Alcotest.(check int) "size" 4 (Xml.Tree.size t);
  Alcotest.(check int) "depth" 3 (Xml.Tree.depth t);
  Alcotest.(check string) "text_content" "hellotail"
    (Xml.Tree.text_content t);
  Alcotest.(check int) "children count" 2 (List.length (Xml.Tree.children t));
  Alcotest.(check (option string)) "label" (Some "root")
    (Option.map Xml.Label.to_string (Xml.Tree.label t))

let test_attrs () =
  let g = gen () in
  let t = elt ~attrs:[ ("id", "7"); ("cat", "x") ] g "item" [] in
  Alcotest.(check (option string)) "attr id" (Some "7") (Xml.Tree.attr t "id");
  Alcotest.(check (option string)) "attr missing" None (Xml.Tree.attr t "nope")

let test_find_and_parent () =
  let g = gen () in
  let inner = elt g "needle" [] in
  let inner_id = Option.get (Xml.Tree.id inner) in
  let t = elt g "root" [ elt g "mid" [ inner ] ] in
  (match Xml.Tree.find_by_id inner_id t with
  | Some e -> Alcotest.(check string) "found" "needle" (Xml.Label.to_string e.label)
  | None -> Alcotest.fail "find_by_id");
  (match Xml.Tree.parent_of inner_id t with
  | Some e -> Alcotest.(check string) "parent" "mid" (Xml.Label.to_string e.label)
  | None -> Alcotest.fail "parent_of");
  Alcotest.(check bool) "root has no parent" true
    (Xml.Tree.parent_of (Option.get (Xml.Tree.id t)) t = None)

let test_insert_children () =
  let g = gen () in
  let target = elt g "target" [] in
  let tid = Option.get (Xml.Tree.id target) in
  let t = elt g "root" [ target ] in
  match Xml.Tree.insert_children ~under:tid [ txt "new" ] t with
  | None -> Alcotest.fail "insert_children"
  | Some t' ->
      Alcotest.(check string) "inserted" "new" (Xml.Tree.text_content t');
      (* Original tree untouched (persistence). *)
      Alcotest.(check string) "original" "" (Xml.Tree.text_content t)

let test_insert_siblings () =
  let g = gen () in
  let sc = elt g "sc" [] in
  let sc_id = Option.get (Xml.Tree.id sc) in
  let t = elt g "root" [ txt "before"; sc; txt "after" ] in
  match Xml.Tree.insert_siblings ~of_:sc_id [ elt g "result" [] ] t with
  | None -> Alcotest.fail "insert_siblings"
  | Some t' ->
      let labels =
        List.filter_map
          (fun c -> Option.map Xml.Label.to_string (Xml.Tree.label c))
          (Xml.Tree.children t')
      in
      Alcotest.(check (list string)) "sibling order" [ "sc"; "result" ] labels;
      (* Result must follow the sc node immediately. *)
      (match Xml.Tree.children t' with
      | [ _; a; b; _ ] ->
          Alcotest.(check (option string)) "sc first" (Some "sc")
            (Option.map Xml.Label.to_string (Xml.Tree.label a));
          Alcotest.(check (option string)) "result second" (Some "result")
            (Option.map Xml.Label.to_string (Xml.Tree.label b))
      | _ -> Alcotest.fail "expected 4 children")

let test_insert_siblings_of_root_fails () =
  let g = gen () in
  let t = elt g "root" [] in
  Alcotest.(check bool) "no parent for root" true
    (Xml.Tree.insert_siblings ~of_:(Option.get (Xml.Tree.id t)) [ txt "x" ] t
    = None)

let test_remove_node () =
  let g = gen () in
  let victim = elt g "victim" [ txt "payload" ] in
  let vid = Option.get (Xml.Tree.id victim) in
  let t = elt g "root" [ victim; elt g "keep" [] ] in
  match Xml.Tree.remove_node vid t with
  | None -> Alcotest.fail "remove_node"
  | Some t' ->
      Alcotest.(check int) "one child left" 1
        (List.length (Xml.Tree.children t'));
      Alcotest.(check bool) "victim gone" false (Xml.Tree.mem_id vid t')

let test_update_node () =
  let g = gen () in
  let target = elt g "x" [] in
  let tid = Option.get (Xml.Tree.id target) in
  let t = elt g "root" [ target ] in
  (match
     Xml.Tree.update_node tid
       (fun e -> { e with attrs = [ ("touched", "yes") ] })
       t
   with
  | Some t' -> (
      match Xml.Tree.find_by_id tid t' with
      | Some e -> Alcotest.(check bool) "attr set" true (e.attrs = [ ("touched", "yes") ])
      | None -> Alcotest.fail "node lost")
  | None -> Alcotest.fail "update_node");
  let missing =
    Xml.Node_id.Gen.fresh (Xml.Node_id.Gen.create ~namespace:"elsewhere")
  in
  Alcotest.(check bool) "missing id" true (Xml.Tree.update_node missing Fun.id t = None)

let test_copy_fresh_ids () =
  let g = gen () in
  let t = elt g "root" [ elt g "kid" [] ] in
  let g2 = Xml.Node_id.Gen.create ~namespace:"other" in
  let c = Xml.Tree.copy ~gen:g2 t in
  Alcotest.(check bool) "same shape" true (Xml.Tree.equal_shape t c);
  Alcotest.(check bool) "different ids" false (Xml.Tree.equal_strict t c);
  let ids t =
    List.map (fun (e : Xml.Tree.element) -> e.id) (Xml.Tree.elements t)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) "no id reuse" false
        (List.exists (Xml.Node_id.equal id) (ids t)))
    (ids c)

let test_fold_order () =
  let g = gen () in
  let t = elt g "a" [ elt g "b" [ txt "1" ]; elt g "c" [] ] in
  let labels =
    List.rev
      (Xml.Tree.fold
         (fun acc n ->
           match Xml.Tree.label n with
           | Some l -> Xml.Label.to_string l :: acc
           | None -> acc)
         [] t)
  in
  Alcotest.(check (list string)) "pre-order" [ "a"; "b"; "c" ] labels

let test_byte_size_monotone () =
  let g = gen () in
  let small = elt g "a" [ txt "x" ] in
  let big = elt g "a" [ txt "x"; elt g "b" [ txt (String.make 100 'y') ] ] in
  Alcotest.(check bool) "bigger tree, more bytes" true
    (Xml.Tree.byte_size big > Xml.Tree.byte_size small)

let test_forest_ops () =
  let g = gen () in
  let f = [ elt g "a" []; txt "t"; elt g "b" [ txt "x" ] ] in
  Alcotest.(check int) "size" 4 (Xml.Forest.size f);
  Alcotest.(check int) "elements" 2 (List.length (Xml.Forest.elements f));
  let c = Xml.Forest.copy ~gen:(gen ()) f in
  Alcotest.(check bool) "copy equal shape" true (Xml.Forest.equal_shape f c)

let suite =
  [
    ("label validation", `Quick, test_label_validation);
    ("node id generation", `Quick, test_node_id_gen);
    ("node id parse errors", `Quick, test_node_id_of_string_invalid);
    ("construction and accessors", `Quick, test_construction_and_accessors);
    ("attributes", `Quick, test_attrs);
    ("find and parent", `Quick, test_find_and_parent);
    ("insert children", `Quick, test_insert_children);
    ("insert siblings after sc", `Quick, test_insert_siblings);
    ("insert siblings of root fails", `Quick, test_insert_siblings_of_root_fails);
    ("remove node", `Quick, test_remove_node);
    ("update node", `Quick, test_update_node);
    ("copy mints fresh ids", `Quick, test_copy_fresh_ids);
    ("fold is pre-order", `Quick, test_fold_order);
    ("byte size monotone", `Quick, test_byte_size_monotone);
    ("forest operations", `Quick, test_forest_ops);
  ]
