open Axml
open Helpers

let test_identity_copy () =
  eval_query_on ~q:"query(1) for $x in $0 return {$x}"
    ~inputs:[ "<a><b/></a>" ] ~expect:"<a><b/></a>"

let test_child_binding () =
  eval_query_on ~q:"query(1) for $x in $0/b return {$x}"
    ~inputs:[ "<a><b>1</b><b>2</b><c/></a>" ] ~expect:"<b>1</b><b>2</b>"

let test_descendant_binding () =
  eval_query_on ~q:"query(1) for $x in $0//b return {$x}"
    ~inputs:[ "<a><b>1</b><c><b>2</b></c></a>" ] ~expect:"<b>1</b><b>2</b>"

let test_wildcard () =
  eval_query_on ~q:"query(1) for $x in $0/* return <w>{text($x)}</w>"
    ~inputs:[ "<a><b>1</b><c>2</c></a>" ] ~expect:"<w>1</w><w>2</w>"

let test_construction () =
  eval_query_on
    ~q:{|query(1) for $x in $0//b return <out tag="v"><inner>{text($x)}</inner></out>|}
    ~inputs:[ "<a><b>42</b></a>" ]
    ~expect:{|<out tag="v"><inner>42</inner></out>|}

let test_where_text_eq () =
  eval_query_on
    ~q:{|query(1) for $x in $0//b where text($x) = "keep" return {$x}|}
    ~inputs:[ "<a><b>keep</b><b>drop</b></a>" ]
    ~expect:"<b>keep</b>"

let test_where_attr () =
  eval_query_on
    ~q:{|query(1) for $x in $0//i where attr($x, "k") = "y" return {$x}|}
    ~inputs:[ {|<a><i k="y">1</i><i k="n">2</i><i>3</i></a>|} ]
    ~expect:{|<i k="y">1</i>|}

let test_numeric_comparison () =
  eval_query_on
    ~q:{|query(1) for $x in $0//n where text($x) < 10 return {$x}|}
    ~inputs:[ "<a><n>9</n><n>10</n><n>2</n></a>" ]
    ~expect:"<n>9</n><n>2</n>";
  (* Numeric, not lexicographic: "9" < "10" numerically. *)
  eval_query_on
    ~q:{|query(1) for $x in $0//n where text($x) <= 10 return {$x}|}
    ~inputs:[ "<a><n>9</n><n>10</n><n>11</n></a>" ]
    ~expect:"<n>9</n><n>10</n>"

let test_string_comparison () =
  eval_query_on
    ~q:{|query(1) for $x in $0//s where text($x) > "m" return {$x}|}
    ~inputs:[ "<a><s>alpha</s><s>zulu</s></a>" ]
    ~expect:"<s>zulu</s>"

let test_contains () =
  eval_query_on
    ~q:{|query(1) for $x in $0//s where text($x) contains "ell" return {$x}|}
    ~inputs:[ "<a><s>hello</s><s>world</s></a>" ]
    ~expect:"<s>hello</s>"

let test_exists () =
  eval_query_on
    ~q:"query(1) for $x in $0//i where exists($x/flag) return <got>{text($x)}</got>"
    ~inputs:[ "<a><i><flag/>1</i><i>2</i></a>" ]
    ~expect:"<got>1</got>"

let test_not_and_or () =
  eval_query_on
    ~q:{|query(1) for $x in $0//i where not text($x) = "b" and (text($x) = "a" or text($x) = "c") return {$x}|}
    ~inputs:[ "<r><i>a</i><i>b</i><i>c</i><i>d</i></r>" ]
    ~expect:"<i>a</i><i>c</i>"

let test_join_two_inputs () =
  eval_query_on
    ~q:{|query(2) for $x in $0//l, $y in $1//r where text($x) = text($y) return <m>{text($x)}</m>|}
    ~inputs:
      [ "<a><l>1</l><l>2</l></a>"; "<b><r>2</r><r>3</r><r>2</r></b>" ]
    ~expect:"<m>2</m><m>2</m>"

let test_dependent_binding () =
  eval_query_on
    ~q:"query(1) for $x in $0//item, $n in $x/name return {$n}"
    ~inputs:
      [ "<c><item><name>a</name></item><item><name>b</name><name>c</name></item></c>" ]
    ~expect:"<name>a</name><name>b</name><name>c</name>"

let test_cartesian_product () =
  eval_query_on
    ~q:"query(1) for $x in $0/a, $y in $0/b return <p>{text($x)}{text($y)}</p>"
    ~inputs:[ "<r><a>1</a><a>2</a><b>x</b></r>" ]
    ~expect:"<p>1x</p><p>2x</p>"

let test_attr_content () =
  eval_query_on
    ~q:{|query(1) for $x in $0//i return <id>{attr($x, "k")}</id>|}
    ~inputs:[ {|<a><i k="7"/></a>|} ]
    ~expect:"<id>7</id>"

let test_empty_result () =
  eval_query_on ~q:"query(1) for $x in $0//missing return {$x}"
    ~inputs:[ "<a><b/></a>" ] ~expect:""

let test_arity_zero () =
  eval_query_on ~q:"query(0) return <k/>" ~inputs:[] ~expect:"<k/>"

let test_eval_guards () =
  let g = gen () in
  let q = query "query(1) for $x in $0 return {$x}" in
  (match Query.Eval.eval ~gen:g q [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch should raise");
  let bad =
    Query.Ast.Flwr
      {
        arity = 1;
        bindings = [];
        where = Query.Ast.True;
        return_ = Query.Ast.Copy_of "ghost";
      }
  in
  match Query.Eval.eval ~gen:g bad [ [] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ill-formed query should raise"

let test_compose_eval () =
  (* The sub-query's outputs are the roots of the intermediate forest,
     so the head binds them with an empty path (XQuery-style: a path
     step moves to children, never to self). *)
  eval_query_on
    ~q:
      {|compose { query(1) for $h in $0 return <final>{text($h)}</final> }
        ({ query(1) for $x in $0//i where attr($x, "k") = "y" return <hit>{text($x)}</hit> })|}
    ~inputs:[ {|<r><i k="y">a</i><i k="n">b</i><i k="y">c</i></r>|} ]
    ~expect:"<final>a</final><final>c</final>"

let test_copy_has_fresh_ids () =
  let g = gen () in
  let input =
    Xml.Parser.parse_exn
      ~gen:(Xml.Node_id.Gen.create ~namespace:"input")
      "<a><b/></a>"
  in
  let out =
    Query.Eval.eval ~gen:g (query "query(1) for $x in $0 return {$x}") [ [ input ] ]
  in
  match out with
  | [ copy ] ->
      let orig_id = Option.get (Xml.Tree.id input) in
      Alcotest.(check bool) "no id shared" false (Xml.Tree.mem_id orig_id copy)
  | _ -> Alcotest.fail "one result expected"

let test_holds_direct () =
  let g = gen () in
  let t = parse ~g "<i>5</i>" in
  let env = [ ("x", t) ] in
  let check b p = Alcotest.(check bool) "holds" b (Query.Eval.holds p env) in
  check true (Query.Ast.Cmp (Query.Ast.Text_of "x", Query.Ast.Eq, Query.Ast.Number 5.0));
  check false (Query.Ast.Cmp (Query.Ast.Text_of "ghost", Query.Ast.Eq, Query.Ast.Const "5"));
  check true Query.Ast.True

let suite =
  [
    ("identity copy", `Quick, test_identity_copy);
    ("child binding", `Quick, test_child_binding);
    ("descendant binding", `Quick, test_descendant_binding);
    ("wildcard step", `Quick, test_wildcard);
    ("element construction", `Quick, test_construction);
    ("where text equality", `Quick, test_where_text_eq);
    ("where attribute", `Quick, test_where_attr);
    ("numeric comparison", `Quick, test_numeric_comparison);
    ("string comparison", `Quick, test_string_comparison);
    ("contains", `Quick, test_contains);
    ("exists predicate", `Quick, test_exists);
    ("boolean connectives", `Quick, test_not_and_or);
    ("join across inputs", `Quick, test_join_two_inputs);
    ("dependent bindings", `Quick, test_dependent_binding);
    ("cartesian product", `Quick, test_cartesian_product);
    ("attribute projection", `Quick, test_attr_content);
    ("empty result", `Quick, test_empty_result);
    ("arity zero constant", `Quick, test_arity_zero);
    ("evaluation guards", `Quick, test_eval_guards);
    ("composed query evaluation", `Quick, test_compose_eval);
    ("copies mint fresh ids", `Quick, test_copy_has_fresh_ids);
    ("predicate evaluation", `Quick, test_holds_direct);
  ]
