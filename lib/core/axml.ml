(** Umbrella entry point for the distributed AXML framework.

    One alias per subsystem; see DESIGN.md for the map from the paper's
    sections to these modules.

    {ul
    {- {!Xml}: trees, parser, serializer, canonical forms (Section 2.1).}
    {- {!Schema}: tree types and service signatures (Section 2.1).}
    {- {!Query}: the declarative query language (Section 2.2).}
    {- {!Net}: peers, topologies, the discrete-event simulator.}
    {- {!Doc}: AXML documents, service calls, generic resources
       (Sections 2.2–2.3).}
    {- {!Algebra}: the expression language E, evaluation definitions,
       equivalence rules and the optimizer (Section 3).}
    {- {!Runtime}: the peer runtime executing expressions over the
       simulated network (Section 3.2).}
    {- {!Workload}: synthetic data, query fuzzers and the scenario
       builders used by examples and benchmarks.}
    {- {!Obs}: causal tracing, per-peer metrics and the Chrome-trace /
       JSONL exporters (DESIGN.md §10).}} *)

module Xml = struct
  module Label = Axml_xml.Label
  module Node_id = Axml_xml.Node_id
  module Tree = Axml_xml.Tree
  module Forest = Axml_xml.Forest
  module Parser = Axml_xml.Parser
  module Serializer = Axml_xml.Serializer
  module Canonical = Axml_xml.Canonical
  module Path = Axml_xml.Path
  module Zipper = Axml_xml.Zipper
  module Index = Axml_xml.Index
end

module Schema = struct
  module Content_model = Axml_schema.Content_model
  module Schema = Axml_schema.Schema
  module Validate = Axml_schema.Validate
  module Signature = Axml_schema.Signature
end

module Query = struct
  module Ast = Axml_query.Ast
  module Parser = Axml_query.Parser
  module Eval = Axml_query.Eval
  module Compile = Axml_query.Compile
  module Compose = Axml_query.Compose
  module Incremental = Axml_query.Incremental
  module Qcache = Axml_query.Qcache
  module Selectivity = Axml_query.Selectivity
  module Relevance = Axml_query.Relevance
  module Optimize = Axml_query.Optimize
  module Typecheck = Axml_query.Typecheck
end

module Net = struct
  module Peer_id = Axml_net.Peer_id
  module Link = Axml_net.Link
  module Topology = Axml_net.Topology
  module Sim = Axml_net.Sim
  module Stats = Axml_net.Stats
  module Pqueue = Axml_net.Pqueue
  module Rng = Axml_net.Rng
  module Fault = Axml_net.Fault
end

module Doc = struct
  module Names = Axml_doc.Names
  module Service = Axml_doc.Service
  module Sc = Axml_doc.Sc
  module Document = Axml_doc.Document
  module Store = Axml_doc.Store
  module Registry = Axml_doc.Registry
  module Generic = Axml_doc.Generic
  module Equivalence = Axml_doc.Equivalence
  module Signature_check = Axml_doc.Signature_check
end

module Algebra = struct
  module Expr = Axml_algebra.Expr
  module Expr_xml = Axml_algebra.Expr_xml
  module Cost = Axml_algebra.Cost
  module Rewrite = Axml_algebra.Rewrite
  module Optimizer = Axml_algebra.Optimizer
  module Planner = Axml_algebra.Planner
end

module Runtime = struct
  module Message = Axml_peer.Message
  module Codec = Axml_peer.Codec
  module Peer = Axml_peer.Peer
  module System = Axml_peer.System
  module Exec = Axml_peer.Exec
  module Lazy_eval = Axml_peer.Lazy_eval
  module Type_driven = Axml_peer.Type_driven
  module Persist = Axml_peer.Persist
  module Failover = Axml_peer.Failover
  module Placement = Axml_peer.Placement
  module Profiler = Axml_peer.Profiler
end

module Obs = struct
  module Trace = Axml_obs.Trace
  module Metrics = Axml_obs.Metrics
  module Timeseries = Axml_obs.Timeseries
  module Exporter = Axml_obs.Exporter
end

module Workload = struct
  module Rng = Axml_workload.Rng
  module Xml_gen = Axml_workload.Xml_gen
  module Schema_gen = Axml_workload.Schema_gen
  module Xmark = Axml_workload.Xmark
  module Query_gen = Axml_workload.Query_gen
  module Scenarios = Axml_workload.Scenarios
end
