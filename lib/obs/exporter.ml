(* Minimal JSON emission — the toolkit deliberately has no JSON
   dependency (same convention as Planner.explain_json).

   Escaping covers the full non-printable range on BOTH sides: control
   characters below 0x20 and every byte at or above 0x7F.  Span and
   peer names come from document labels, which are attacker-supplied
   in hostile workloads — emitting raw high bytes would let a label
   smuggle invalid UTF-8 (or terminal escape sequences, for the table
   renderers) into exporter output.  Bytes >= 0x80 are escaped as
   their Latin-1 code points, keeping the output pure ASCII. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The same range, for plain-terminal output (axmlctl tables): control
   and non-ASCII bytes become  \xNN  so hostile labels cannot inject
   terminal escape sequences. *)
let sanitize s =
  if
    String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x7F) s
  then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if Char.code c >= 0x20 && Char.code c < 0x7F then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c)))
      s;
    Buffer.contents buf
  end

(* JSON numbers must not be [nan]/[inf]; timestamps and durations are
   finite by construction but durations of still-open spans are -1. *)
let num f = if Float.is_finite f then Printf.sprintf "%.3f" f else "0"

let args_json extra args =
  let field (k, v) = Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v) in
  String.concat "," (List.map field (extra @ args))

(* --- Chrome trace_event ------------------------------------------ *)

(* One process row per distinct peer, in order of first appearance;
   timestamps are microseconds. *)
let chrome_trace (events : Trace.event list) =
  let peers = ref [] in
  let pid_of peer =
    match List.assoc_opt peer !peers with
    | Some pid -> pid
    | None ->
        let pid = List.length !peers + 1 in
        peers := !peers @ [ (peer, pid) ];
        pid
  in
  let event_json (e : Trace.event) =
    let pid = pid_of e.Trace.peer in
    let args =
      args_json
        ([
           ("span", string_of_int e.Trace.id);
           ( "parent",
             match e.Trace.parent with Some p -> string_of_int p | None -> ""
           );
           ("corr", string_of_int e.Trace.corr);
         ]
        @ if e.Trace.op >= 0 then [ ("op", string_of_int e.Trace.op) ] else [])
        e.Trace.args
    in
    match e.Trace.kind with
    | Trace.Span ->
        Printf.sprintf
          {|{"name":"%s","cat":"%s","ph":"X","pid":%d,"tid":1,"ts":%s,"dur":%s,"args":{%s}}|}
          (json_escape e.Trace.name) (json_escape e.Trace.cat) pid
          (num (e.Trace.ts_ms *. 1000.0))
          (num (Float.max 0.0 e.Trace.dur_ms *. 1000.0))
          args
    | Trace.Instant ->
        Printf.sprintf
          {|{"name":"%s","cat":"%s","ph":"i","s":"t","pid":%d,"tid":1,"ts":%s,"args":{%s}}|}
          (json_escape e.Trace.name) (json_escape e.Trace.cat) pid
          (num (e.Trace.ts_ms *. 1000.0))
          args
  in
  let spans = List.map event_json events in
  let metadata =
    List.map
      (fun (peer, pid) ->
        Printf.sprintf
          {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}|}
          pid (json_escape peer))
      !peers
  in
  Printf.sprintf {|{"traceEvents":[%s]}|} (String.concat ",\n" (metadata @ spans))

(* --- JSONL -------------------------------------------------------- *)

let jsonl (events : Trace.event list) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"id":%d,"parent":%s,"corr":%d,"kind":"%s","name":"%s","cat":"%s","peer":"%s","ts_ms":%s,"dur_ms":%s|}
           e.Trace.id
           (match e.Trace.parent with
           | Some p -> string_of_int p
           | None -> "null")
           e.Trace.corr
           (match e.Trace.kind with Trace.Span -> "span" | Trace.Instant -> "instant")
           (json_escape e.Trace.name) (json_escape e.Trace.cat)
           (json_escape e.Trace.peer) (num e.Trace.ts_ms) (num e.Trace.dur_ms));
      if e.Trace.op >= 0 then
        Buffer.add_string buf (Printf.sprintf {|,"op":%d|} e.Trace.op);
      if e.Trace.args <> [] then begin
        Buffer.add_string buf {|,"args":{|};
        Buffer.add_string buf (args_json [] e.Trace.args);
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n")
    events;
  Buffer.contents buf

(* --- Metrics ------------------------------------------------------ *)

let metrics_json m =
  let entry (e : Metrics.entry) =
    let key =
      Printf.sprintf {|"peer":"%s","subsystem":"%s","name":"%s"|}
        (json_escape e.Metrics.peer)
        (json_escape e.Metrics.subsystem)
        (json_escape e.Metrics.name)
    in
    match e.Metrics.sample with
    | Metrics.Count n -> Printf.sprintf {|{%s,"kind":"counter","count":%d}|} key n
    | Metrics.Value { value; max_value } ->
        Printf.sprintf {|{%s,"kind":"gauge","value":%s,"max":%s}|} key (num value)
          (num max_value)
    | Metrics.Dist { count; sum; buckets } ->
        let bs =
          buckets
          |> List.map (fun (bound, n) ->
                 Printf.sprintf {|{"le":%s,"count":%d}|}
                   (if Float.is_finite bound then Printf.sprintf "%g" bound
                    else {|"inf"|})
                   n)
          |> String.concat ","
        in
        Printf.sprintf {|{%s,"kind":"histogram","count":%d,"sum":%s,"buckets":[%s]}|}
          key count (num sum) bs
  in
  Printf.sprintf "[%s]"
    (String.concat ",\n" (List.map entry (Metrics.snapshot m)))
