(** Causal spans.

    A lightweight tracing facility for following one logical
    computation across peers and hops.  Three ingredients:

    - {b spans}: named intervals with parent links.  Nesting is
      ambient — a span begun while another is open becomes its child —
      which matches the runtime's event-driven shape: all spans of one
      delivery open and close inside that delivery's handler.
    - {b correlation ids}: minted once per logical computation
      ({!Axml_peer.Exec.run_to_quiescence}, {!Axml_peer.System.activate_call})
      and carried inside every {!Axml_peer.Message.t} the computation
      causes, so spans recorded at different peers — connected only by
      messages — share one id.
    - {b timestamps}: supplied by the caller.  The simulator stamps
      virtual milliseconds; the planner stamps wall-clock milliseconds
      (see {!wall_ms}).  Exporters keep the two apart by category.

    Collection is global and {b off by default}.  Every instrumentation
    site in the runtime guards itself with {!enabled}, so the disabled
    path costs one boolean load and allocates nothing. *)

type span_id = int

val null : span_id
(** The id returned by {!begin_span} while tracing is disabled;
    {!end_span} on it is a no-op. *)

type kind = Span | Instant

type event = {
  id : span_id;
  parent : span_id option;  (** Enclosing span at begin time. *)
  corr : int;  (** Correlation id; [0] = uncorrelated. *)
  name : string;
  cat : string;  (** Subsystem: ["net"], ["sim"], ["peer"], ["exec"], ["plan"], ["rewrite"]. *)
  peer : string;  (** Track the event belongs to (peer id or ["planner"]). *)
  ts_ms : float;
  mutable dur_ms : float;  (** [-1.0] while the span is open. *)
  kind : kind;
  args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events and open spans; the enabled flag and id
    counters are untouched (ids stay unique across clears). *)

(** {1 Correlation} *)

val fresh_corr : unit -> int
(** Mint a correlation id (always positive; works even when tracing is
    disabled, so message envelopes are stable either way). *)

val current_corr : unit -> int
(** Ambient correlation id, [0] outside any {!with_corr}. *)

val with_corr : int -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient correlation id set; restores the
    previous id on exit (also on exceptions). *)

(** {1 Recording} *)

val begin_span :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  string ->
  span_id
(** Open a span; its parent is the innermost open span.  Returns
    {!null} when disabled. *)

val end_span : span_id -> ts:float -> unit
(** Close a span, recording [ts - start] as its duration.  Closing
    {!null}, an unknown id, or out of order is tolerated (inner spans
    still open are closed at the same timestamp). *)

val complete :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  dur_ms:float ->
  string ->
  unit
(** Record an already-measured span (e.g. a link transfer whose
    departure and arrival are both known at send time). *)

val instant :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  string ->
  unit
(** Record a point event. *)

(** {1 Reading} *)

val events : unit -> event list
(** All recorded events in recording order. *)

val count : unit -> int

val wall_ms : unit -> float
(** Wall-clock milliseconds ({!Sys.time}-based) — the planner's clock. *)
