(** Causal spans.

    A lightweight tracing facility for following one logical
    computation across peers and hops.  Three ingredients:

    - {b spans}: named intervals with parent links.  Nesting is
      ambient — a span begun while another is open becomes its child —
      which matches the runtime's event-driven shape: all spans of one
      delivery open and close inside that delivery's handler.
    - {b correlation ids}: minted once per logical computation
      ({!Axml_peer.Exec.run_to_quiescence}, {!Axml_peer.System.activate_call})
      and carried inside every {!Axml_peer.Message.t} the computation
      causes, so spans recorded at different peers — connected only by
      messages — share one id.
    - {b timestamps}: supplied by the caller.  The simulator stamps
      virtual milliseconds; the planner stamps wall-clock milliseconds
      (see {!wall_ms}).  Exporters keep the two apart by category.

    Collection is global and {b off by default}.  Every instrumentation
    site in the runtime guards itself with {!enabled} (or, on paths
    that build span arguments, {!sampled}), so the disabled path costs
    one boolean load and allocates nothing. *)

type span_id = int

val null : span_id
(** The id returned by {!begin_span} while tracing is disabled;
    {!end_span} on it is a no-op. *)

type kind = Span | Instant

type event = {
  id : span_id;
  parent : span_id option;  (** Enclosing span at begin time. *)
  corr : int;  (** Correlation id; [0] = uncorrelated. *)
  op : int;  (** Plan-operator id (profiler); [-1] = unattributed. *)
  name : string;
  cat : string;  (** Subsystem: ["net"], ["sim"], ["peer"], ["exec"], ["plan"], ["rewrite"], ["slo"]. *)
  peer : string;  (** Track the event belongs to (peer id or ["planner"]). *)
  ts_ms : float;
  mutable dur_ms : float;  (** [-1.0] while the span is open. *)
  kind : kind;
  args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events and open spans and restart the span and
    correlation counters — same-seed runs separated by [clear] assign
    identical ids, so their traces compare byte for byte.  The enabled
    flag and the sampling configuration are untouched. *)

(** {1 Deterministic head sampling}

    The keep/drop decision is a pure function of the sampling seed and
    an event's correlation id, so whole cross-peer computations are
    kept or dropped atomically and the kept set is identical across
    same-seed runs — a sampled trace is exactly the subset of the full
    trace whose correlation ids pass {!keep_corr}.  The decision for
    the ambient correlation is cached when it changes; a sampled-out
    recording site returns immediately and allocates nothing. *)

val set_sampling : ?seed:int -> keep_one_in:int -> unit -> unit
(** Keep roughly one correlation in [keep_one_in] ([1] = keep all,
    the default).  Raises on [keep_one_in < 1]. *)

val sampling : unit -> int * int
(** Current [(seed, keep_one_in)]. *)

val keep_corr : int -> bool
(** The (pure, deterministic) sampling decision for a correlation id.
    The null id [0] — ambient work belonging to no computation — is
    always dropped while sampling is active ([keep_one_in > 1]):
    background timers and untagged deliveries would otherwise ride one
    hash outcome as an all-or-nothing block. *)

val sampled : unit -> bool
(** [enabled () && decision for the ambient correlation] — guard span
    argument construction on hot paths with this so the sampled-out
    path allocates nothing. *)

(** {1 Correlation} *)

val fresh_corr : unit -> int
(** Mint a correlation id (always positive; works even when tracing is
    disabled, so message envelopes are stable either way). *)

val current_corr : unit -> int
(** Ambient correlation id, [0] outside any {!with_corr}. *)

val with_corr : int -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient correlation id set; restores the
    previous id on exit (also on exceptions). *)

val swap_corr : int -> int
(** Set the ambient correlation id, returning the previous one —
    the closure-free variant of {!with_corr} for per-message hot
    paths.  Pair with {!restore_corr} (also on exceptions). *)

val restore_corr : int -> unit

(** {1 Operator attribution (profiler)}

    An ambient plan-operator id, [-1] = unattributed.  Carried like
    the correlation id: set around an operator's evaluation, stamped
    into every event recorded meanwhile, shipped inside message
    envelopes and re-established at dispatch, so remote work folds
    back onto the operator that caused it
    (see {!Axml_peer.Profiler}). *)

val current_op : unit -> int
val with_op : int -> (unit -> 'a) -> 'a
val swap_op : int -> int
val restore_op : int -> unit

(** {1 Recording} *)

val begin_span :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  string ->
  span_id
(** Open a span; its parent is the innermost open span.  Returns
    {!null} when disabled or sampled out. *)

val end_span : span_id -> ts:float -> unit
(** Close a span, recording [ts - start] as its duration.  Closing
    {!null}, an unknown id, or out of order is tolerated (inner spans
    still open are closed at the same timestamp). *)

val complete :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  dur_ms:float ->
  string ->
  unit
(** Record an already-measured span (e.g. a link transfer whose
    departure and arrival are both known at send time). *)

val instant :
  ?args:(string * string) list ->
  cat:string ->
  peer:string ->
  ts:float ->
  string ->
  unit
(** Record a point event. *)

(** {1 Reading} *)

val events : unit -> event list
(** All recorded events in recording order. *)

val count : unit -> int

val wall_ms : unit -> float
(** Wall-clock milliseconds ({!Sys.time}-based) — the planner's clock. *)
