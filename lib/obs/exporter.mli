(** Trace and metrics exporters.

    Two trace formats, both hand-rolled (the switch deliberately has
    no JSON dependency — same style as [Planner.explain_json]):

    - {b Chrome [trace_event]} ({!chrome_trace}): a
      [{"traceEvents":[...]}] document loadable in [about:tracing] and
      Perfetto.  Each distinct peer becomes one process row (metadata
      [process_name] events); spans are ["X"] complete events with
      microsecond timestamps, instants are ["i"] events; span id,
      parent and correlation id travel in [args].
    - {b JSONL} ({!jsonl}): one self-contained JSON object per event
      per line — grep/jq-friendly, stream-appendable.

    {!metrics_json} serializes a {!Metrics} snapshot. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes.  Control
    characters and every byte >= 0x7F are escaped as [\uNNNN] (the
    byte's Latin-1 code point), so the output is pure ASCII even when
    span/peer names carry hostile document labels. *)

val sanitize : string -> string
(** Escape control and non-ASCII bytes as [\xNN] for plain-terminal
    output (the [axmlctl] table renderers).  Printable ASCII strings
    are returned unchanged, without allocating. *)

val chrome_trace : Trace.event list -> string
val jsonl : Trace.event list -> string
val metrics_json : Metrics.t -> string
(** A JSON array of [{"peer","subsystem","name","kind",...}] objects,
    in snapshot (deterministic) order. *)
