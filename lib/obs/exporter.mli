(** Trace and metrics exporters.

    Two trace formats, both hand-rolled (the switch deliberately has
    no JSON dependency — same style as [Planner.explain_json]):

    - {b Chrome [trace_event]} ({!chrome_trace}): a
      [{"traceEvents":[...]}] document loadable in [about:tracing] and
      Perfetto.  Each distinct peer becomes one process row (metadata
      [process_name] events); spans are ["X"] complete events with
      microsecond timestamps, instants are ["i"] events; span id,
      parent and correlation id travel in [args].
    - {b JSONL} ({!jsonl}): one self-contained JSON object per event
      per line — grep/jq-friendly, stream-appendable.

    {!metrics_json} serializes a {!Metrics} snapshot. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

val chrome_trace : Trace.event list -> string
val jsonl : Trace.event list -> string
val metrics_json : Metrics.t -> string
(** A JSON array of [{"peer","subsystem","name","kind",...}] objects,
    in snapshot (deterministic) order. *)
