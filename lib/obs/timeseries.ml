(* Sim-clock-aligned windowed aggregates.

   Each registered key owns a fixed ring of windows; a window covers
   [epoch * window_ms, (epoch + 1) * window_ms) of the driving clock
   (virtual sim time in the runtime) and aggregates count/sum/min/max
   plus a mergeable log-scale histogram (the {!Metrics} bucket
   geometry), so p50/p95/p99 over any span of recent windows come from
   merging bucket counts.  Overwriting on wrap-around keeps memory
   fixed per key regardless of run length.

   Everything is deterministic: windows are keyed by the virtual
   clock, not wall time, and {!snapshot} orders keys lexicographically
   — two same-seed runs produce byte-identical snapshots.  The
   disabled hot path is one boolean load and allocates nothing (the
   E16 invariant), mirroring the pre-resolved {!Metrics} handles. *)

type window = {
  mutable epoch : int;  (* -1 = slot never filled *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type series = { skey : string; ring : window array }

type t = {
  tbl : (string, series) Hashtbl.t;
  mutable enabled : bool;
  mutable gen : int;
      (* Bumped on [reset]: outstanding handles re-resolve lazily. *)
  mutable window_ms : float;
  ring_size : int;
  mutable clock : unit -> float;
}

let fresh_window () =
  {
    epoch = -1;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make Metrics.hist_buckets 0;
  }

let create ?(window_ms = 100.0) ?(ring = 64) () =
  if window_ms <= 0.0 then invalid_arg "Timeseries.create: window_ms <= 0";
  if ring < 2 then invalid_arg "Timeseries.create: ring < 2";
  {
    tbl = Hashtbl.create 64;
    enabled = false;
    gen = 0;
    window_ms;
    ring_size = ring;
    clock = (fun () -> 0.0);
  }

let default = create ()
let set_enabled t b = t.enabled <- b
let is_on t = t.enabled
let window_ms t = t.window_ms
let ring_size t = t.ring_size
let set_clock t f = t.clock <- f
let now t = t.clock ()

let reset t =
  Hashtbl.reset t.tbl;
  t.gen <- t.gen + 1

(* Epochs are positions in the [window_ms] grid, so a width change
   invalidates every live window — the registry is reset wholesale
   rather than re-binned. *)
let set_window t ms =
  if ms <= 0.0 then invalid_arg "Timeseries.set_window: window_ms <= 0";
  if ms <> t.window_ms then begin
    t.window_ms <- ms;
    reset t
  end

let epoch_of t ts = int_of_float (Float.max 0.0 ts /. t.window_ms)
let window_start t epoch = float_of_int epoch *. t.window_ms

let series t key =
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
      let s =
        { skey = key; ring = Array.init t.ring_size (fun _ -> fresh_window ()) }
      in
      Hashtbl.replace t.tbl key s;
      s

(* --- pre-resolved handles ---------------------------------------- *)

type handle = {
  hreg : t;
  hkey : string;
  mutable hgen : int;  (* generation [hcell] was resolved under; -1 = never *)
  mutable hcell : series;
}

let sink = { skey = ""; ring = [||] }
let handle t key = { hreg = t; hkey = key; hgen = -1; hcell = sink }

let resolve h =
  h.hcell <- series h.hreg h.hkey;
  h.hgen <- h.hreg.gen

let observe_window (w : window) epoch v =
  if w.epoch <> epoch then begin
    w.epoch <- epoch;
    w.count <- 0;
    w.sum <- 0.0;
    w.min_v <- infinity;
    w.max_v <- neg_infinity;
    Array.fill w.buckets 0 (Array.length w.buckets) 0
  end;
  w.count <- w.count + 1;
  w.sum <- w.sum +. v;
  if v < w.min_v then w.min_v <- v;
  if v > w.max_v then w.max_v <- v;
  let i = Metrics.bucket_index v in
  w.buckets.(i) <- w.buckets.(i) + 1

let record_at h ~ts v =
  if h.hreg.enabled then begin
    if h.hgen <> h.hreg.gen then resolve h;
    let s = h.hcell in
    let n = Array.length s.ring in
    if n > 0 then begin
      let epoch = epoch_of h.hreg ts in
      observe_window s.ring.(epoch mod n) epoch v
    end
  end

let record h v = record_at h ~ts:(h.hreg.clock ()) v

let observe t key ~ts v =
  if t.enabled then begin
    let s = series t key in
    observe_window s.ring.(epoch_of t ts mod Array.length s.ring) (epoch_of t ts) v
  end

(* --- reading ------------------------------------------------------ *)

type agg = {
  w_epoch : int;
  w_start_ms : float;
  w_count : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_buckets : int array;  (* a copy; mutation-safe *)
}

let agg_of t (w : window) =
  {
    w_epoch = w.epoch;
    w_start_ms = window_start t w.epoch;
    w_count = w.count;
    w_sum = w.sum;
    w_min = w.min_v;
    w_max = w.max_v;
    w_buckets = Array.copy w.buckets;
  }

let read_window t key ~epoch =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some s ->
      let w = s.ring.(epoch mod Array.length s.ring) in
      if w.epoch = epoch then Some (agg_of t w) else None

(* The windows of [key] still live in the ring whose epoch falls in
   [lo, hi], ascending. *)
let windows_in t key ~lo ~hi =
  match Hashtbl.find_opt t.tbl key with
  | None -> []
  | Some s ->
      let n = Array.length s.ring in
      let acc = ref [] in
      for e = hi downto max 0 lo do
        let w = s.ring.(e mod n) in
        if w.epoch = e then acc := w :: !acc
      done;
      !acc

(* Events per second over the [windows] complete windows preceding the
   one containing [now] (the current window is excluded: it is still
   filling and would bias the rate down). *)
let rate t key ~now ~windows =
  if windows <= 0 then 0.0
  else
    let cur = epoch_of t now in
    let ws = windows_in t key ~lo:(cur - windows) ~hi:(cur - 1) in
    let total = List.fold_left (fun acc (w : window) -> acc + w.count) 0 ws in
    float_of_int total /. (float_of_int windows *. t.window_ms /. 1000.0)

(* Merged log-histogram quantile over the last [windows] windows up to
   and including the one containing [now].  Returns the inclusive
   upper bound of the bucket holding the q-th observation — the same
   resolution Metrics distributions have — or 0 with no data. *)
let quantile t key ~now ~windows ~q =
  let q = Float.min 1.0 (Float.max 0.0 q) in
  let cur = epoch_of t now in
  let ws = windows_in t key ~lo:(cur - windows + 1) ~hi:cur in
  let merged = Array.make Metrics.hist_buckets 0 in
  let total = ref 0 in
  List.iter
    (fun (w : window) ->
      total := !total + w.count;
      Array.iteri (fun i n -> merged.(i) <- merged.(i) + n) w.buckets)
    ws;
  if !total = 0 then 0.0
  else begin
    let target =
      max 1 (int_of_float (Float.round (q *. float_of_int !total)))
    in
    let rec walk i seen =
      if i >= Metrics.hist_buckets then Metrics.bucket_bound (Metrics.hist_buckets - 1)
      else
        let seen = seen + merged.(i) in
        if seen >= target then Metrics.bucket_bound i else walk (i + 1) seen
    in
    walk 0 0
  end

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

(* Every live window of every key, keys sorted, windows ascending —
   byte-for-byte identical across same-seed runs. *)
let snapshot t =
  List.map
    (fun key ->
      match Hashtbl.find_opt t.tbl key with
      | None -> (key, [])
      | Some s ->
          let ws =
            Array.to_list s.ring
            |> List.filter (fun (w : window) -> w.epoch >= 0)
            |> List.sort (fun (a : window) b -> compare a.epoch b.epoch)
            |> List.map (agg_of t)
          in
          (key, ws))
    (keys t)

(* A compact deterministic rendering of a snapshot, for fingerprint
   comparisons in tests (crash/restart replay determinism). *)
let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, ws) ->
      Buffer.add_string buf key;
      Buffer.add_char buf '{';
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "%d:n=%d,s=%.6f,min=%.6f,max=%.6f;" a.w_epoch
               a.w_count a.w_sum
               (if a.w_count = 0 then 0.0 else a.w_min)
               (if a.w_count = 0 then 0.0 else a.w_max)))
        ws;
      Buffer.add_string buf "}\n")
    (snapshot t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
