type span_id = int

let null = 0

type kind = Span | Instant

type event = {
  id : span_id;
  parent : span_id option;
  corr : int;
  name : string;
  cat : string;
  peer : string;
  ts_ms : float;
  mutable dur_ms : float;
  kind : kind;
  args : (string * string) list;
}

(* Global collector.  The runtime is single-threaded (discrete-event
   simulation), so plain mutable state suffices. *)
let enabled_flag = ref false
let events_rev : event list ref = ref []
let event_count = ref 0
let open_stack : event list ref = ref []
let next_id = ref 0
let next_corr = ref 0
let corr = ref 0

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let clear () =
  events_rev := [];
  event_count := 0;
  open_stack := [];
  corr := 0

let fresh_corr () =
  incr next_corr;
  !next_corr

let current_corr () = !corr

let with_corr c f =
  let saved = !corr in
  corr := c;
  Fun.protect ~finally:(fun () -> corr := saved) f

let record e =
  events_rev := e :: !events_rev;
  incr event_count

let parent_id () =
  match !open_stack with [] -> None | e :: _ -> Some e.id

let begin_span ?(args = []) ~cat ~peer ~ts name =
  if not !enabled_flag then null
  else begin
    incr next_id;
    let e =
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = -1.0;
        kind = Span;
        args;
      }
    in
    record e;
    open_stack := e :: !open_stack;
    e.id
  end

let end_span id ~ts =
  if id <> null then begin
    (* Close any forgotten inner spans at the same timestamp; stop at
       the matching one.  An id not on the stack (double close) leaves
       the stack untouched. *)
    let rec close = function
      | [] -> None
      | e :: rest ->
          e.dur_ms <- Float.max 0.0 (ts -. e.ts_ms);
          if e.id = id then Some rest else close rest
    in
    if List.exists (fun e -> e.id = id) !open_stack then
      match close !open_stack with
      | Some rest -> open_stack := rest
      | None -> ()
  end

let complete ?(args = []) ~cat ~peer ~ts ~dur_ms name =
  if !enabled_flag then begin
    incr next_id;
    record
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = Float.max 0.0 dur_ms;
        kind = Span;
        args;
      }
  end

let instant ?(args = []) ~cat ~peer ~ts name =
  if !enabled_flag then begin
    incr next_id;
    record
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = 0.0;
        kind = Instant;
        args;
      }
  end

let events () = List.rev !events_rev
let count () = !event_count
let wall_ms () = Sys.time () *. 1000.0
