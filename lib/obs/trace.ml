type span_id = int

let null = 0

type kind = Span | Instant

type event = {
  id : span_id;
  parent : span_id option;
  corr : int;
  op : int;
  name : string;
  cat : string;
  peer : string;
  ts_ms : float;
  mutable dur_ms : float;
  kind : kind;
  args : (string * string) list;
}

(* Global collector.  The runtime is single-threaded (discrete-event
   simulation), so plain mutable state suffices. *)
let enabled_flag = ref false
let events_rev : event list ref = ref []
let event_count = ref 0
let open_stack : event list ref = ref []
let next_id = ref 0
let next_corr = ref 0
let corr = ref 0
let op = ref (-1)

(* --- deterministic head sampling ---------------------------------

   The keep/drop decision is a pure function of (seed, correlation
   id): whole cross-peer computations are kept or dropped atomically,
   and the kept set is identical across same-seed runs whether or not
   sampling was active when they executed.  The decision is computed
   once per ambient-correlation change and cached in [keep_flag], so
   the per-record check is two boolean loads; a sampled-out site
   records nothing and allocates nothing. *)
let sample_seed = ref 0
let sample_keep_one_in = ref 1
let keep_flag = ref true

(* splitmix-style avalanche, confined to 30 bits so the result is
   stable across 32/64-bit native ints. *)
let corr_hash seed c =
  let x = (c * 0x9E3779B9) lxor (seed * 0x85EBCA6B) in
  let x = x lxor (x lsr 16) in
  let x = x * 0xC2B2AE35 in
  let x = x lxor (x lsr 13) in
  x land 0x3FFFFFFF

(* The null correlation (0 — ambient timers, untagged deliveries) is
   sampled out whenever sampling is active: it is not a computation, so
   keeping it would tie an unbounded stream of background events to a
   single hash outcome instead of thinning per request. *)
let keep_corr c =
  !sample_keep_one_in <= 1
  || (c <> 0 && corr_hash !sample_seed c mod !sample_keep_one_in = 0)

let set_sampling ?(seed = 0) ~keep_one_in () =
  if keep_one_in < 1 then invalid_arg "Trace.set_sampling: keep_one_in < 1";
  sample_seed := seed;
  sample_keep_one_in := keep_one_in;
  keep_flag := keep_corr !corr

let sampling () = (!sample_seed, !sample_keep_one_in)
let sampled () = !enabled_flag && !keep_flag

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let clear () =
  events_rev := [];
  event_count := 0;
  open_stack := [];
  next_id := 0;
  next_corr := 0;
  (* Restarting the correlation counter makes same-seed runs separated
     by [clear] assign identical ids — traces, and the sampling
     decisions derived from them, compare byte for byte. *)
  corr := 0;
  op := -1;
  keep_flag := keep_corr 0

let fresh_corr () =
  incr next_corr;
  !next_corr

let current_corr () = !corr

(* Closure-free ambient switching for the per-message hot path: the
   caller saves the previous id, dispatches, and restores — no
   Fun.protect allocation on the sampled-out path. *)
let swap_corr c =
  let saved = !corr in
  corr := c;
  keep_flag := keep_corr c;
  saved

let restore_corr c =
  corr := c;
  keep_flag := keep_corr c

let with_corr c f =
  let saved = swap_corr c in
  Fun.protect ~finally:(fun () -> restore_corr saved) f

(* --- ambient plan-operator id (profiler) -------------------------

   [-1] = unattributed.  Carried like the correlation id: set around
   an operator's evaluation, stamped into every span/instant recorded
   meanwhile, shipped inside message envelopes and re-established at
   dispatch — so remote work folds back onto the operator that caused
   it. *)
let current_op () = !op

let swap_op o =
  let saved = !op in
  op := o;
  saved

let restore_op o = op := o

let with_op o f =
  let saved = swap_op o in
  Fun.protect ~finally:(fun () -> restore_op saved) f

let record e =
  events_rev := e :: !events_rev;
  incr event_count

let parent_id () =
  match !open_stack with [] -> None | e :: _ -> Some e.id

let begin_span ?(args = []) ~cat ~peer ~ts name =
  if not (!enabled_flag && !keep_flag) then null
  else begin
    incr next_id;
    let e =
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        op = !op;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = -1.0;
        kind = Span;
        args;
      }
    in
    record e;
    open_stack := e :: !open_stack;
    e.id
  end

let end_span id ~ts =
  if id <> null then begin
    (* Close any forgotten inner spans at the same timestamp; stop at
       the matching one.  An id not on the stack (double close) leaves
       the stack untouched. *)
    let rec close = function
      | [] -> None
      | e :: rest ->
          e.dur_ms <- Float.max 0.0 (ts -. e.ts_ms);
          if e.id = id then Some rest else close rest
    in
    if List.exists (fun e -> e.id = id) !open_stack then
      match close !open_stack with
      | Some rest -> open_stack := rest
      | None -> ()
  end

let complete ?(args = []) ~cat ~peer ~ts ~dur_ms name =
  if !enabled_flag && !keep_flag then begin
    incr next_id;
    record
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        op = !op;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = Float.max 0.0 dur_ms;
        kind = Span;
        args;
      }
  end

let instant ?(args = []) ~cat ~peer ~ts name =
  if !enabled_flag && !keep_flag then begin
    incr next_id;
    record
      {
        id = !next_id;
        parent = parent_id ();
        corr = !corr;
        op = !op;
        name;
        cat;
        peer;
        ts_ms = ts;
        dur_ms = 0.0;
        kind = Instant;
        args;
      }
  end

let events () = List.rev !events_rev
let count () = !event_count
let wall_ms () = Sys.time () *. 1000.0
