(* Log-scale histogram geometry: bucket [i] counts observations in
   (2^(i-5), 2^(i-4)]; the last bucket overflows to infinity.  Spans
   ~60 ns to ~70 min when observations are milliseconds. *)
let hist_buckets = 28
let bucket_bound i =
  if i >= hist_buckets - 1 then infinity else Float.pow 2.0 (float_of_int (i - 4))

(* The bounds are cached so the per-observation walk below compares
   against array cells instead of recomputing powers — [bucket_index]
   sits on the per-delivery hot path of the enabled-metrics arm. *)
let bounds = Array.init hist_buckets bucket_bound

let bucket_index v =
  let rec find i =
    if i >= hist_buckets - 1 then hist_buckets - 1
    else if v <= Array.unsafe_get bounds i then i
    else find (i + 1)
  in
  find 0

type counter = { mutable count : int }
type gauge = { mutable value : float; mutable max_value : float }
type hist = { mutable n : int; mutable sum : float; buckets : int array }

type value = Vcounter of counter | Vgauge of gauge | Vhist of hist

type t = {
  tbl : (string * string * string, value) Hashtbl.t;
  mutable enabled : bool;
  mutable gen : int;
      (* Bumped on [reset]: outstanding handles notice their cached
         cell is stale and re-resolve lazily. *)
}

let create () = { tbl = Hashtbl.create 64; enabled = false; gen = 0 }
let default = create ()
let set_enabled t b = t.enabled <- b
let is_on t = t.enabled

let reset t =
  Hashtbl.reset t.tbl;
  t.gen <- t.gen + 1

let find_or_add t key make =
  match Hashtbl.find_opt t.tbl key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace t.tbl key v;
      v

let incr t ?(peer = "") ?(by = 1) ~subsystem name =
  if t.enabled then
    match
      find_or_add t (peer, subsystem, name) (fun () -> Vcounter { count = 0 })
    with
    | Vcounter c -> c.count <- c.count + by
    | Vgauge _ | Vhist _ -> ()

(* --- pre-resolved handles ---------------------------------------

   A handle caches the mutable cell behind one (peer, subsystem, name)
   key so that a hot-loop update is a generation check plus an in-place
   mutation — no tuple allocation, no hashing.  Cells are resolved
   lazily and only while the registry is enabled, so holding a handle
   over a disabled registry creates no table entry and allocates
   nothing per update (the E16 invariant). *)

type counter_handle = {
  creg : t;
  ckey : string * string * string;
  mutable cgen : int;  (* generation [ccell] was resolved under; -1 = never *)
  mutable ccell : counter;
}

(* Sink for kind-mismatched keys: updates go nowhere, exactly like the
   keyed mutators, but stay O(1) instead of re-probing the table. *)
let counter_sink = { count = 0 }

let counter_handle t ?(peer = "") ~subsystem name =
  { creg = t; ckey = (peer, subsystem, name); cgen = -1; ccell = counter_sink }

let resolve_counter h =
  let t = h.creg in
  (match find_or_add t h.ckey (fun () -> Vcounter { count = 0 }) with
  | Vcounter c -> h.ccell <- c
  | Vgauge _ | Vhist _ -> h.ccell <- counter_sink);
  h.cgen <- t.gen

let incr_h h ~by =
  if h.creg.enabled then begin
    if h.cgen <> h.creg.gen then resolve_counter h;
    h.ccell.count <- h.ccell.count + by
  end

type gauge_handle = {
  greg : t;
  gkey : string * string * string;
  mutable ggen : int;
  mutable gcell : gauge;
}

let gauge_sink = { value = 0.0; max_value = neg_infinity }

let gauge_handle t ?(peer = "") ~subsystem name =
  { greg = t; gkey = (peer, subsystem, name); ggen = -1; gcell = gauge_sink }

let resolve_gauge h =
  let t = h.greg in
  (match
     find_or_add t h.gkey (fun () ->
         Vgauge { value = 0.0; max_value = neg_infinity })
   with
  | Vgauge g -> h.gcell <- g
  | Vcounter _ | Vhist _ -> h.gcell <- gauge_sink);
  h.ggen <- t.gen

let gauge_set_h h v =
  if h.greg.enabled then begin
    if h.ggen <> h.greg.gen then resolve_gauge h;
    let g = h.gcell in
    g.value <- v;
    if v > g.max_value then g.max_value <- v
  end

let gauge_max_h h v =
  if h.greg.enabled then begin
    if h.ggen <> h.greg.gen then resolve_gauge h;
    let g = h.gcell in
    if v > g.max_value then begin
      g.max_value <- v;
      g.value <- v
    end
  end

type hist_handle = {
  hreg : t;
  hkey : string * string * string;
  mutable hgen : int;
  mutable hcell : hist;
}

let hist_sink = { n = 0; sum = 0.0; buckets = [||] }

let hist_handle t ?(peer = "") ~subsystem name =
  { hreg = t; hkey = (peer, subsystem, name); hgen = -1; hcell = hist_sink }

let resolve_hist h =
  let t = h.hreg in
  (match
     find_or_add t h.hkey (fun () ->
         Vhist { n = 0; sum = 0.0; buckets = Array.make hist_buckets 0 })
   with
  | Vhist d -> h.hcell <- d
  | Vcounter _ | Vgauge _ -> h.hcell <- hist_sink);
  h.hgen <- t.gen

let observe_h h v =
  if h.hreg.enabled then begin
    if h.hgen <> h.hreg.gen then resolve_hist h;
    let d = h.hcell in
    if Array.length d.buckets > 0 then begin
      d.n <- d.n + 1;
      d.sum <- d.sum +. v;
      let i = bucket_index v in
      d.buckets.(i) <- d.buckets.(i) + 1
    end
  end

let gauge_set t ?(peer = "") ~subsystem name v =
  if t.enabled then
    match
      find_or_add t (peer, subsystem, name) (fun () ->
          Vgauge { value = 0.0; max_value = neg_infinity })
    with
    | Vgauge g ->
        g.value <- v;
        if v > g.max_value then g.max_value <- v
    | Vcounter _ | Vhist _ -> ()

let gauge_max t ?(peer = "") ~subsystem name v =
  if t.enabled then
    match
      find_or_add t (peer, subsystem, name) (fun () ->
          Vgauge { value = 0.0; max_value = neg_infinity })
    with
    | Vgauge g ->
        if v > g.max_value then begin
          g.max_value <- v;
          g.value <- v
        end
    | Vcounter _ | Vhist _ -> ()

let observe t ?(peer = "") ~subsystem name v =
  if t.enabled then
    match
      find_or_add t (peer, subsystem, name) (fun () ->
          Vhist { n = 0; sum = 0.0; buckets = Array.make hist_buckets 0 })
    with
    | Vhist h ->
        h.n <- h.n + 1;
        h.sum <- h.sum +. v;
        let i = bucket_index v in
        h.buckets.(i) <- h.buckets.(i) + 1
    | Vcounter _ | Vgauge _ -> ()

type sample =
  | Count of int
  | Value of { value : float; max_value : float }
  | Dist of { count : int; sum : float; buckets : (float * int) list }

type entry = { peer : string; subsystem : string; name : string; sample : sample }

let snapshot t =
  Hashtbl.fold
    (fun (peer, subsystem, name) v acc ->
      let sample =
        match v with
        | Vcounter { count } -> Count count
        | Vgauge { value; max_value } -> Value { value; max_value }
        | Vhist { n; sum; buckets } ->
            let filled = ref [] in
            for i = hist_buckets - 1 downto 0 do
              if buckets.(i) > 0 then
                filled := (bucket_bound i, buckets.(i)) :: !filled
            done;
            Dist { count = n; sum; buckets = !filled }
      in
      { peer; subsystem; name; sample } :: acc)
    t.tbl []
  |> List.sort (fun a b ->
         compare (a.peer, a.subsystem, a.name) (b.peer, b.subsystem, b.name))

let counter_value t ?(peer = "") ~subsystem name =
  match Hashtbl.find_opt t.tbl (peer, subsystem, name) with
  | Some (Vcounter { count }) -> count
  | Some (Vgauge _ | Vhist _) | None -> 0

let total t ~subsystem name =
  Hashtbl.fold
    (fun (_, s, n) v acc ->
      if String.equal s subsystem && String.equal n name then
        acc
        +.
        match v with
        | Vcounter { count } -> float_of_int count
        | Vgauge { value; _ } -> value
        | Vhist { sum; _ } -> sum
      else acc)
    t.tbl 0.0

let pp_sample fmt = function
  | Count n -> Format.fprintf fmt "%d" n
  | Value { value; max_value } ->
      if value = max_value then Format.fprintf fmt "%.2f" value
      else Format.fprintf fmt "%.2f (max %.2f)" value max_value
  | Dist { count; sum; _ } ->
      Format.fprintf fmt "n=%d sum=%.2f mean=%.3f" count sum
        (if count = 0 then 0.0 else sum /. float_of_int count)

let pp_table fmt t =
  let entries = snapshot t in
  let rows =
    List.map
      (fun e ->
        ( (if e.peer = "" then "-" else e.peer),
          e.subsystem ^ "/" ^ e.name,
          Format.asprintf "%a" pp_sample e.sample ))
      entries
  in
  let w3 f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows in
  let wp = max 4 (w3 (fun (p, _, _) -> p))
  and wm = max 6 (w3 (fun (_, m, _) -> m)) in
  Format.fprintf fmt "@[<v>%-*s  %-*s  %s@ " wp "peer" wm "metric" "value";
  Format.fprintf fmt "%s  %s  %s@ " (String.make wp '-') (String.make wm '-')
    "-----";
  List.iter
    (fun (p, m, v) -> Format.fprintf fmt "%-*s  %-*s  %s@ " wp p wm m v)
    rows;
  Format.fprintf fmt "@]"
