(** Per-peer metrics registry.

    Named counters, gauges and log-scale histograms keyed by
    [(peer, subsystem, name)].  The registry the runtime instruments is
    {!default}; scenarios that want isolation can {!create} their own.

    Collection is {b off by default}: every mutator returns immediately
    on a disabled registry, and hot paths guard themselves with
    {!is_on} so that the disabled path is one boolean load with no
    allocation.

    Metric names recorded by the runtime (see DESIGN.md §10):
    - [net/messages_sent], [net/bytes_sent], [net/local_messages] —
      per sending peer, mirroring {!Axml_net.Stats} exactly;
    - [sim/events], [sim/queue_depth] (gauge, high-water mark);
    - [peer/cpu_ms] (histogram per peer), [peer/activations],
      [peer/routed_batches];
    - [stream/batches] (histogram: batches per response stream);
    - [plan/expansions], [plan/explored], [plan/rewrite_steps],
      [plan/equal_calls], [plan/queries_optimized],
      [plan/search_ms] (histogram);
    - [qcache/hits], [qcache/misses], [qcache/collisions],
      [qcache/stale_drops], [qcache/invalidations],
      [qcache/installs], [qcache/evictions] — per peer, the semantic
      result cache ([Axml_query.Qcache], DESIGN.md §18). *)

(** {1 Histogram geometry}

    Shared with {!Timeseries} so per-window distributions merge with
    cumulative ones: bucket [i] covers [(2^(i-5), 2^(i-4)]], the last
    bucket overflows to infinity. *)

val hist_buckets : int
val bucket_bound : int -> float
val bucket_index : float -> int

type t

val create : unit -> t
val default : t
(** The registry the runtime's instrumentation writes to. *)

val set_enabled : t -> bool -> unit
val is_on : t -> bool
val reset : t -> unit
(** Drop every metric; the enabled flag is untouched. *)

(** {1 Mutators}

    [peer] defaults to [""] — a system-wide (per-subsystem) metric. *)

val incr : t -> ?peer:string -> ?by:int -> subsystem:string -> string -> unit
val gauge_set : t -> ?peer:string -> subsystem:string -> string -> float -> unit

val gauge_max : t -> ?peer:string -> subsystem:string -> string -> float -> unit
(** Keep the maximum of the observed values (high-water mark). *)

val observe : t -> ?peer:string -> subsystem:string -> string -> float -> unit
(** Add one observation to a log-scale histogram (powers-of-two
    buckets). *)

(** {1 Pre-resolved handles}

    A handle caches the mutable cell behind one (peer, subsystem,
    name) key, turning a hot-loop update into a generation check plus
    an in-place mutation — no tuple allocation, no hashing.  Handles
    are cheap to create and resolve lazily: while the registry is
    disabled they create no table entry and an update allocates
    nothing (the E16 invariant), and after {!reset} they transparently
    re-resolve.  A handle over a key already bound to a different
    metric kind updates nothing, like the keyed mutators. *)

type counter_handle
type gauge_handle
type hist_handle

val counter_handle :
  t -> ?peer:string -> subsystem:string -> string -> counter_handle

val gauge_handle : t -> ?peer:string -> subsystem:string -> string -> gauge_handle
val hist_handle : t -> ?peer:string -> subsystem:string -> string -> hist_handle

val incr_h : counter_handle -> by:int -> unit
val gauge_set_h : gauge_handle -> float -> unit
val gauge_max_h : gauge_handle -> float -> unit
val observe_h : hist_handle -> float -> unit

(** {1 Reading} *)

type sample =
  | Count of int
  | Value of { value : float; max_value : float }
  | Dist of { count : int; sum : float; buckets : (float * int) list }
      (** [buckets]: (inclusive upper bound, observations) for
          non-empty buckets only; the bound of the overflow bucket is
          [infinity]. *)

type entry = { peer : string; subsystem : string; name : string; sample : sample }

val snapshot : t -> entry list
(** Deterministic: sorted by (peer, subsystem, name). *)

val counter_value : t -> ?peer:string -> subsystem:string -> string -> int
(** [0] when absent or not a counter. *)

val total : t -> subsystem:string -> string -> float
(** Sum of a metric across all peers: counters contribute their count,
    gauges their current value, histograms their sum. *)

val pp_table : Format.formatter -> t -> unit
(** Render the snapshot as an aligned per-peer table. *)
