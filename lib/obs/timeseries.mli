(** Windowed telemetry: sim-clock-aligned ring aggregates.

    Where {!Metrics} keeps one cumulative cell per key for a whole
    run, a timeseries keeps the recent past: each key owns a fixed
    ring of windows, each covering [window_ms] of the driving clock
    (virtual sim time in the runtime) and aggregating
    count/sum/min/max plus a mergeable log-scale histogram in the
    {!Metrics} bucket geometry.  The pull API ({!read_window},
    {!rate}, {!quantile}) answers "what happened to this document /
    link / peer over the last N windows" — the observed-load signal a
    placement controller consumes.

    Conventions for keys wired into the runtime:
    - [doc/<name>/reads], [doc/<name>/write_bytes] — per-document load
      (recorded by [Axml_doc.Store]);
    - [net/link/<src>-><dst>/bytes], [net/link/<src>-><dst>/latency_ms]
      — per-directed-link load (recorded by [Axml_net.Sim]);
    - [peer/<p>/tx], [peer/<p>/latency_ms], [peer/<p>/inflight] — the
      per-peer view behind [axmlctl top].

    Determinism: windows are keyed by the virtual clock; {!snapshot}
    sorts keys; same-seed runs produce byte-identical snapshots.
    Collection is {b off by default}; the disabled path is one boolean
    load and allocates nothing (E16/E21 invariant). *)

type t

val create : ?window_ms:float -> ?ring:int -> unit -> t
(** Defaults: 100 ms windows, 64-slot ring (6.4 s of history). *)

val default : t
val set_enabled : t -> bool -> unit
val is_on : t -> bool

val reset : t -> unit
(** Drop every series; outstanding handles re-resolve lazily. *)

val window_ms : t -> float
val ring_size : t -> int

val set_window : t -> float -> unit
(** Change the window width (e.g. [axmlctl top --interval-ms]).
    Epochs index the window grid, so this drops every live series —
    equivalent to {!reset} — when the width actually changes.
    @raise Invalid_argument on a non-positive width. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the driving clock ([Sim.now] in the runtime — virtual
    milliseconds, so recordings stay deterministic).  Default: a
    constant 0. *)

val now : t -> float

val epoch_of : t -> float -> int
(** The window index containing a timestamp. *)

val window_start : t -> int -> float

(** {1 Recording} *)

type handle
(** A pre-resolved series reference: a hot-loop record is a generation
    check plus in-place mutation — no hashing, no allocation.  Held
    over a disabled registry it creates no table entry. *)

val handle : t -> string -> handle
val record : handle -> float -> unit
(** Record at the clock's current time. *)

val record_at : handle -> ts:float -> float -> unit
val observe : t -> string -> ts:float -> float -> unit
(** One-shot (non-handle) record, for cold paths. *)

(** {1 Reading} *)

type agg = {
  w_epoch : int;
  w_start_ms : float;
  w_count : int;
  w_sum : float;
  w_min : float;  (** [infinity] when the window is empty. *)
  w_max : float;
  w_buckets : int array;  (** Log-histogram counts (a copy). *)
}

val read_window : t -> string -> epoch:int -> agg option
(** The aggregate for one window, if it still lives in the ring. *)

val rate : t -> string -> now:float -> windows:int -> float
(** Events per second over the [windows] complete windows preceding
    the one containing [now] (the still-filling current window is
    excluded). *)

val quantile : t -> string -> now:float -> windows:int -> q:float -> float
(** Merged-histogram quantile over the last [windows] windows up to
    and including [now]'s: the inclusive upper bound of the bucket
    holding the q-th observation; [0.] with no data. *)

val keys : t -> string list
(** Sorted. *)

val snapshot : t -> (string * agg list) list
(** Every live window of every key — keys sorted, windows ascending;
    byte-identical across same-seed runs. *)

val fingerprint : t -> string
(** Digest of {!snapshot}, for replay-determinism checks. *)
