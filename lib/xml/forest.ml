type t = Tree.t list

let empty = []
let size f = List.fold_left (fun acc t -> acc + Tree.size t) 0 f
let byte_size f = List.fold_left (fun acc t -> acc + Tree.byte_size t) 0 f

let byte_size_cached f =
  List.fold_left (fun acc t -> acc + Tree.byte_size_cached t) 0 f

let shape_hash f =
  let h =
    List.fold_left
      (fun h t -> ((h * 0x01000193) + Tree.shape_hash t) land max_int)
      0x811c9dc5 f
  in
  if h = 0 then 1 else h
let equal_shape = List.equal Tree.equal_shape
let copy ~gen f = List.map (Tree.copy ~gen) f
let concat_map = List.concat_map
let elements f = List.concat_map Tree.elements f

let pp fmt f =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
    Tree.pp fmt f
