(* Structural index: preorder interval numbering + label postings,
   with LSM-style segments absorbing streaming appends.

   Within one segment every element has [pre] (preorder rank among the
   segment's elements) and [post] (largest rank in its subtree), so
   descendancy is interval containment and a labelled descendant step
   is a binary search in that label's postings.  An appended forest
   becomes a fresh segment attached at its insertion entry; global
   document order across segments falls out of the attachment chain:
   a segment attached at entry [a] with sequence number [q] sorts as
   the pair [(a.post, q)] — after every base node of [a]'s subtree
   (pairs [(pre, 0)] with [pre <= a.post]) and before the first node
   outside it, later attachments after earlier ones. *)

type entry = {
  mutable enode : Tree.t;
  pre : int;
  mutable post : int;
  seg : seg;
}

and attach = Base | Top of int | At of entry * int

and seg = {
  attach : attach;
  labels : (Label.t, entry array) Hashtbl.t;
  mutable elems : entry array;
  mutable kids : (int * seg) list;  (* (attach entry's pre, segment) *)
}

type t = {
  by_id : entry Node_id.Table.t;
  mutable segs : int;
  mutable next_seq : int;
  mutable base_elems : int;
  mutable appended_elems : int;
  mutable nodes : int;
  mutable bytes : int;
  lstats : (Label.t, int * int) Hashtbl.t;  (* count, subtree bytes *)
  mutable usable : bool;
}

let usable t = t.usable
let element_count t = t.base_elems + t.appended_elems
let total_nodes t = t.nodes
let total_bytes t = t.bytes
let segment_count t = t.segs
let appended_elements t = t.appended_elems
let node e = e.enode
let find t id = Node_id.Table.find_opt t.by_id id

let entry_of t tree =
  match tree with
  | Tree.Text _ -> None
  | Tree.Element e -> (
      (* The entry stands for this subtree only while the tree is the
         one indexed (append repairs spines, so pointer equality is
         the right test — an id-equal copy has different content). *)
      match find t e.id with
      | Some ent when ent.enode == tree -> Some ent
      | Some _ | None -> None)

(* One pass over [forest]: number elements, fill postings, accumulate
   label statistics.  Returns the element count. *)
let index_forest t seg forest =
  let tmp : (Label.t, entry list) Hashtbl.t = Hashtbl.create 16 in
  let all = ref [] in
  let counter = ref 0 in
  let rec walk tree =
    t.nodes <- t.nodes + 1;
    match tree with
    | Tree.Text s -> String.length s
    | Tree.Element e ->
        let pre = !counter in
        incr counter;
        let ent = { enode = tree; pre; post = pre; seg } in
        if Node_id.Table.mem t.by_id e.id then t.usable <- false
        else Node_id.Table.replace t.by_id e.id ent;
        let kid_bytes =
          List.fold_left (fun acc c -> acc + walk c) 0 e.children
        in
        ent.post <- !counter - 1;
        let tag = String.length (Label.to_string e.label) in
        let attr_bytes =
          List.fold_left
            (fun acc (k, v) -> acc + String.length k + String.length v + 4)
            0 e.attrs
        in
        let sub = (2 * tag) + 5 + attr_bytes + kid_bytes in
        Hashtbl.replace tmp e.label
          (ent :: Option.value ~default:[] (Hashtbl.find_opt tmp e.label));
        all := ent :: !all;
        let c, b =
          Option.value ~default:(0, 0) (Hashtbl.find_opt t.lstats e.label)
        in
        Hashtbl.replace t.lstats e.label (c + 1, b + sub);
        sub
  in
  t.bytes <- t.bytes + List.fold_left (fun acc tr -> acc + walk tr) 0 forest;
  (* Entries are accumulated in post-order (an entry is pushed after
     its subtree is walked, once its byte size is known); the postings
     arrays must be sorted by [pre] for the binary search. *)
  let by_pre entries =
    let arr = Array.of_list entries in
    Array.sort (fun a b -> Int.compare a.pre b.pre) arr;
    arr
  in
  Hashtbl.iter
    (fun l entries -> Hashtbl.replace seg.labels l (by_pre entries))
    tmp;
  seg.elems <- by_pre !all;
  !counter

let fresh_seg attach = { attach; labels = Hashtbl.create 16; elems = [||]; kids = [] }

let build_forest forest =
  let t =
    {
      by_id = Node_id.Table.create 256;
      segs = 1;
      next_seq = 1;
      base_elems = 0;
      appended_elems = 0;
      nodes = 0;
      bytes = 0;
      lstats = Hashtbl.create 16;
      usable = true;
    }
  in
  t.base_elems <- index_forest t (fresh_seg Base) forest;
  t

let build tree = build_forest [ tree ]

(* --- appends ---------------------------------------------------- *)

let rec forest_has_indexed_id t forest =
  List.exists
    (fun tree ->
      match tree with
      | Tree.Text _ -> false
      | Tree.Element e ->
          Node_id.Table.mem t.by_id e.id || forest_has_indexed_id t e.children)
    forest

(* Re-point entries along the rebuilt spine.  Functional inserts copy
   exactly the root-to-target path; every unchanged subtree (and the
   freshly indexed forest) is physically shared, so the walk stops at
   the first pointer that still agrees. *)
let rec repair_walk t tree =
  match tree with
  | Tree.Text _ -> ()
  | Tree.Element e -> (
      match Node_id.Table.find_opt t.by_id e.id with
      | Some ent when ent.enode != tree ->
          ent.enode <- tree;
          List.iter (repair_walk t) e.children
      | Some _ | None -> ())

(* O(spine) repair: the entry registered for [new_root]'s id still
   holds the PREVIOUS root, so walking old and new in lockstep finds
   the rebuilt path with pointer comparisons alone — a table lookup
   is paid only for the nodes actually re-pointed.  Children appended
   by the insert (the freshly indexed forest, physically shared) show
   up as a new-side suffix and need no repair.  Any positional id
   mismatch means the tree changed in a shape this diff does not
   understand; fall back to the full walk for that subtree. *)
let repair t new_root =
  let rec sync old_ new_ =
    if old_ != new_ then
      match (old_, new_) with
      | Tree.Element oe, Tree.Element ne when Node_id.equal oe.id ne.id ->
          (match Node_id.Table.find_opt t.by_id ne.id with
          | Some ent -> ent.enode <- new_
          | None -> ());
          sync_kids oe.children ne.children
      | _ -> repair_walk t new_
  and sync_kids olds news =
    match (olds, news) with
    | o :: os, n :: ns ->
        sync o n;
        sync_kids os ns
    | [], _ | _, [] -> ()
  in
  match new_root with
  | Tree.Text _ -> ()
  | Tree.Element e -> (
      match Node_id.Table.find_opt t.by_id e.id with
      | Some root_ent -> sync root_ent.enode new_root
      | None -> repair_walk t new_root)

let attach_seg t attach forest =
  let seg = fresh_seg attach in
  let n = index_forest t seg forest in
  t.appended_elems <- t.appended_elems + n;
  t.segs <- t.segs + 1;
  seg

let append t ~new_root ~under forest =
  if not t.usable then false
  else
    match Node_id.Table.find_opt t.by_id under with
    | None -> false
    | Some _ when forest_has_indexed_id t forest -> false
    | Some a ->
        let q = t.next_seq in
        t.next_seq <- t.next_seq + 1;
        let seg = attach_seg t (At (a, q)) forest in
        a.seg.kids <- (a.pre, seg) :: a.seg.kids;
        repair t new_root;
        t.usable

let append_roots t forest =
  if not t.usable then false
  else if forest_has_indexed_id t forest then false
  else begin
    let q = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    ignore (attach_seg t (Top q) forest);
    t.usable
  end

let needs_compaction t = t.appended_elems >= max 1 t.base_elems

(* --- descendant enumeration ------------------------------------- *)

(* Entries of [arr] (sorted by pre) with lo < pre <= hi. *)
let slice arr lo hi =
  let n = Array.length arr in
  let rec bs l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if arr.(m).pre <= lo then bs (m + 1) r else bs l m
  in
  let i0 = bs 0 n in
  let rec take i acc =
    if i < n && arr.(i).pre <= hi then take (i + 1) (arr.(i) :: acc)
    else List.rev acc
  in
  take i0 []

let postings seg label =
  match label with
  | Some l -> Option.value ~default:[||] (Hashtbl.find_opt seg.labels l)
  | None -> seg.elems

(* Every entry of [seg] and of its transitively attached segments
   (document order restored by the caller's sort). *)
let rec seg_all label seg acc =
  let acc = Array.fold_left (fun acc e -> e :: acc) acc (postings seg label) in
  List.fold_left (fun acc (_, kid) -> seg_all label kid acc) acc seg.kids

(* One key element per attachment level: base entries are [(pre,0,0)];
   a segment attached at [a] contributes [(a.post, max_int - a.pre, q)]
   — after every base node of [a]'s subtree (first component), and
   when two attachment points share a [post] (one's subtree is the
   suffix of the other's) the deeper one first (second component),
   later appends at the same point after earlier ones (third). *)
let rec key_prefix seg acc =
  match seg.attach with
  | Base -> acc
  | Top q -> (max_int, 0, q) :: acc
  | At (a, q) -> key_prefix a.seg ((a.post, max_int - a.pre, q) :: acc)

let sort_key e = key_prefix e.seg [] @ [ (e.pre, 0, 0) ]

let descendants ?label t c =
  ignore t;
  let base = slice (postings c.seg label) c.pre c.post in
  let attached =
    List.filter (fun (p, _) -> p >= c.pre && p <= c.post) c.seg.kids
  in
  match attached with
  | [] -> base
  | _ ->
      let all =
        List.fold_left (fun acc (_, seg) -> seg_all label seg acc) base attached
      in
      List.map (fun e -> (sort_key e, e)) all
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd

(* --- statistics -------------------------------------------------- *)

let label_count t l =
  match Hashtbl.find_opt t.lstats l with Some (c, _) -> c | None -> 0

let label_stats t =
  Hashtbl.fold (fun l (c, b) acc -> (l, c, b) :: acc) t.lstats []
  |> List.sort (fun (a, _, _) (b, _, _) -> Label.compare a b)
