(** XML forests: ordered lists of trees.

    Service parameters and continuous-service outputs are forests
    (Section 2.1: a service receives "an XML forest of type τin"). *)

type t = Tree.t list

val empty : t
val size : t -> int
val byte_size : t -> int

val byte_size_cached : t -> int
(** {!byte_size} through the weak per-tree memo
    ({!Tree.byte_size_cached}); for per-charge hot paths. *)

val shape_hash : t -> int
(** Structural digest consistent with {!equal_shape}; order-sensitive
    combination of {!Tree.shape_hash}.  Never returns 0. *)

val equal_shape : t -> t -> bool
val copy : gen:Node_id.Gen.t -> t -> t
val concat_map : (Tree.t -> t) -> t -> t
val elements : t -> Tree.element list
val pp : Format.formatter -> t -> unit
