(** XML serialization.

    Expressions of the algebra serialize as XML trees (Section 3.1:
    "An expression can be viewed (serialized) as an XML tree"), and
    trees travel between peers as text; this module renders trees to
    standard XML syntax. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for text content. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for
    double-quoted attribute values. *)

val to_string : ?decl:bool -> Tree.t -> string
(** Compact rendering.  [decl] prepends an XML declaration
    (default [false]). *)

val to_string_pretty : ?indent:int -> Tree.t -> string
(** Indented rendering; [indent] is the per-level indentation width
    (default 2). *)

val forest_to_string : Tree.t list -> string

val serialized_length : Tree.t -> int
(** [String.length (to_string t)] without materializing the string;
    mirrors the writer exactly (escaping and the self-closing rule). *)

val forest_serialized_length : Tree.t list -> int
(** [String.length (forest_to_string f)] without materializing. *)

val pp : Format.formatter -> Tree.t -> unit
(** Pretty rendering on a formatter. *)
