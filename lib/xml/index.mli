(** Per-document structural index.

    One build pass assigns every element a preorder rank [pre] and the
    largest rank in its subtree [post], so "x is a descendant of c"
    is the interval test [c.pre < x.pre <= c.post], and keeps a
    postings list per label sorted by [pre].  A descendant step then
    costs a binary search plus the matches — it scales with the
    result, not the document.

    Streaming appends (continuous query results accumulating under a
    node) are absorbed in O(subtree): each appended forest becomes a
    {e segment} with its own local numbering, attached at the target
    entry.  Cross-segment document order is recovered from the
    attachment chain ([sort_key]); when the appended volume exceeds
    the base volume the whole index is rebuilt (geometric compaction,
    so maintenance stays amortized O(subtree) per appended tree).

    The index is an acceleration structure, never an oracle: lookups
    return entries only for trees it has indexed, and {!usable} is
    [false] when the input violated the node-id uniqueness the index
    keys on (callers then fall back to plain traversal). *)

type t
type entry

val build : Tree.t -> t
(** Index one tree (a document root). *)

val build_forest : Forest.t -> t
(** Index a forest (query-input semantics: the trees are top-level
    roots, none an ancestor of another). *)

val usable : t -> bool
(** [false] when duplicate element ids were seen — id-keyed lookups
    would be ambiguous, so consumers must fall back to traversal. *)

val element_count : t -> int
(** Elements indexed, across all segments. *)

val total_nodes : t -> int
(** Every node including text leaves (matches
    [Selectivity.Stats.total_nodes]). *)

val total_bytes : t -> int
(** Serialized byte estimate, as {!Tree.byte_size}. *)

val segment_count : t -> int

val appended_elements : t -> int
(** Elements living in appended segments (0 right after a build). *)

val find : t -> Node_id.t -> entry option
val entry_of : t -> Tree.t -> entry option
(** [None] for text nodes and unindexed trees. *)

val node : entry -> Tree.t
(** The indexed subtree.  Kept current across {!append}: ancestors of
    an append point are re-pointed at the rebuilt spine. *)

val descendants : ?label:Label.t -> t -> entry -> entry list
(** Strict descendants of the entry that are elements (of [label]
    when given), in document order — exactly the nodes
    [Query.Eval]'s descendant axis visits. *)

val append : t -> new_root:Tree.t -> under:Node_id.t -> Forest.t -> bool
(** [append t ~new_root ~under forest] absorbs an
    [insert_children ~under forest] edit that produced [new_root]:
    the forest becomes a new segment attached at [under], and stale
    subtree pointers along the rebuilt spine of [new_root] are
    repaired (the forest must be physically shared between [new_root]
    and [forest], as {!Tree.insert_children} guarantees).  [false] if
    [under] is unknown or the forest reuses an indexed id — the
    caller should rebuild instead.  O(spine + subtree). *)

val append_roots : t -> Forest.t -> bool
(** Absorb new top-level trees (a growing input forest). *)

val needs_compaction : t -> bool
(** Appended volume exceeds the base segment — rebuilding now keeps
    the amortized maintenance bound. *)

val label_count : t -> Label.t -> int
(** Postings length: the exact number of elements with this label. *)

val label_stats : t -> (Label.t * int * int) list
(** Per label: (count, total subtree bytes) — exact statistics for
    {!Selectivity.Stats}, computed during the build pass. *)
