(** Node identifiers.

    Internal nodes of XML trees carry identifiers from the set [N] of
    the paper.  Identifiers are allocated from generators; a generator
    is typically owned by a peer, so that identifiers minted on
    different peers never collide (each generator gets a distinct
    namespace). *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parse the [pp] representation, ["<namespace>:<counter>"]. *)

val namespace : t -> string
val counter : t -> int
(** The two components, for codecs that intern namespaces instead of
    shipping the textual form per node. *)

val make : ns:string -> counter:int -> t option
(** Rebuild from components; [None] under the same validity rules as
    {!of_string} (non-empty namespace, non-negative counter). *)

(** Identifier generators.  Two generators created with distinct
    namespaces never produce equal identifiers. *)
module Gen : sig
  type id := t
  type t

  val create : namespace:string -> t
  val fresh : t -> id
  val namespace : t -> string
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
