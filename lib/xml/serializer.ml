(* Literal tab/newline in attribute values would be folded to spaces
   by a standard XML processor's attribute-value normalization, and a
   literal carriage return anywhere is folded to a newline by
   end-of-line normalization — either way a serialize→parse round trip
   would not be byte-stable.  Emitting them as numeric character
   references keeps the exact characters through any conforming
   parser (and through ours). *)
let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | '\n' when quot -> Buffer.add_string buf "&#10;"
      | '\t' when quot -> Buffer.add_string buf "&#9;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quot:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape buf ~quot:true v;
      Buffer.add_char buf '"')
    attrs

(* Children that produce no output.  An element holding only empty
   text nodes must self-close like a childless one: reparsing its
   serialization drops the empty texts, and `<e></e>` vs `<e/>` would
   break byte-stable round trips. *)
let empty_content =
  List.for_all (function Tree.Text "" -> true | _ -> false)

let rec add_tree buf = function
  | Tree.Text s -> escape buf ~quot:false s
  | Tree.Element e ->
      let name = Label.to_string e.label in
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      add_attrs buf e.attrs;
      if empty_content e.children then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (add_tree buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end

(* Character-for-character mirror of [escape]: the length the escaped
   form of [s] would occupy, without building it. *)
let escaped_length ~quot s =
  let n = ref 0 in
  String.iter
    (fun c ->
      n :=
        !n
        +
        match c with
        | '&' -> 5
        | '<' | '>' -> 4
        | '"' when quot -> 6
        | '\n' when quot -> 5
        | '\t' when quot -> 4
        | '\r' -> 5
        | _ -> 1)
    s;
  !n

(* Mirror of [add_tree]/[to_string ~decl:false]: counts the serialized
   bytes without materializing the string.  Kept in lock-step with the
   writer above (self-closing rule included); a qcheck property pins
   [serialized_length t = String.length (to_string t)]. *)
let rec serialized_length = function
  | Tree.Text s -> escaped_length ~quot:false s
  | Tree.Element e ->
      let name = String.length (Label.to_string e.label) in
      let attrs =
        List.fold_left
          (fun acc (k, v) ->
            acc + 1 + String.length k + 2 + escaped_length ~quot:true v + 1)
          0 e.attrs
      in
      if empty_content e.children then 1 + name + attrs + 2
      else
        1 + name + attrs + 1
        + List.fold_left (fun acc c -> acc + serialized_length c) 0 e.children
        + 2 + name + 1

let forest_serialized_length f =
  List.fold_left (fun acc t -> acc + serialized_length t) 0 f

let to_string ?(decl = false) t =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>";
  add_tree buf t;
  Buffer.contents buf

let forest_to_string f =
  let buf = Buffer.create 256 in
  List.iter (add_tree buf) f;
  Buffer.contents buf

let is_ws s =
  let ws = ref true in
  String.iter (fun c -> if not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then ws := false) s;
  !ws

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go level = function
    | Tree.Text s ->
        if not (is_ws s) then begin
          pad level;
          escape buf ~quot:false s;
          Buffer.add_char buf '\n'
        end
    | Tree.Element e ->
        let name = Label.to_string e.label in
        pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        add_attrs buf e.attrs;
        (match e.children with
        | [] -> Buffer.add_string buf "/>\n"
        | [ Tree.Text s ] when String.length s <= 60 ->
            Buffer.add_char buf '>';
            escape buf ~quot:false s;
            Buffer.add_string buf "</";
            Buffer.add_string buf name;
            Buffer.add_string buf ">\n"
        | kids ->
            Buffer.add_string buf ">\n";
            List.iter (go (level + indent)) kids;
            pad level;
            Buffer.add_string buf "</";
            Buffer.add_string buf name;
            Buffer.add_string buf ">\n")
  in
  go 0 t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string_pretty t)
