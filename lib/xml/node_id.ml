type t = { ns : string; counter : int }

let equal a b = a.counter = b.counter && String.equal a.ns b.ns

let compare a b =
  match String.compare a.ns b.ns with
  | 0 -> Int.compare a.counter b.counter
  | c -> c

let hash = Hashtbl.hash
let to_string { ns; counter } = Printf.sprintf "%s:%d" ns counter
let pp fmt id = Format.pp_print_string fmt (to_string id)

let namespace { ns; _ } = ns
let counter { counter; _ } = counter

let make ~ns ~counter =
  if counter >= 0 && ns <> "" then Some { ns; counter } else None

let of_string s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let ns = String.sub s 0 i in
      let num = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt num with
      | Some counter when counter >= 0 && ns <> "" -> Some { ns; counter }
      | Some _ | None -> None)

module Gen = struct
  type nonrec t = { gen_ns : string; mutable next : int }

  let create ~namespace = { gen_ns = namespace; next = 0 }

  let fresh g =
    let id = { ns = g.gen_ns; counter = g.next } in
    g.next <- g.next + 1;
    id

  let namespace g = g.gen_ns
end

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
