(** XML trees.

    The data model of the paper (Section 2.1): an XML tree is unranked
    and unordered; each internal node carries a label from [L] and an
    identifier from [N]; leaves are either labeled internal nodes with
    no children or text nodes.

    Trees are immutable.  Children are stored in a list; order is
    preserved for serialization purposes but carries no semantics —
    unordered comparison lives in {!Canonical}. *)

type t = Element of element | Text of string

and element = {
  id : Node_id.t;
  label : Label.t;
  attrs : (string * string) list;
  children : t list;
}

(** {1 Constructors} *)

val element :
  ?attrs:(string * string) list -> gen:Node_id.Gen.t -> Label.t -> t list -> t
(** [element ~gen label children] builds an element node with a fresh
    identifier drawn from [gen]. *)

val element_of_string :
  ?attrs:(string * string) list -> gen:Node_id.Gen.t -> string -> t list -> t
(** Like {!element} but validates the label string.
    @raise Invalid_argument on an invalid label. *)

val text : string -> t

val with_id : Node_id.t -> ?attrs:(string * string) list -> Label.t -> t list -> t
(** [with_id id label children] builds an element with an explicit
    identifier.  Used when reconstructing trees whose identity must be
    preserved (e.g. in-place child insertion). *)

(** {1 Accessors} *)

val is_element : t -> bool
val is_text : t -> bool

val id : t -> Node_id.t option
val label : t -> Label.t option
val children : t -> t list
val attrs : t -> (string * string) list
val attr : t -> string -> string option
val text_content : t -> string
(** Concatenation of all text descendants, document order. *)

(** {1 Measures} *)

val size : t -> int
(** Number of nodes (elements and texts). *)

val depth : t -> int
(** Length of the longest root-to-leaf path; a leaf has depth 1. *)

val byte_size : t -> int
(** Approximate serialized size in bytes; the unit of the network cost
    model. *)

val byte_size_cached : t -> int
(** {!byte_size} memoized per root in a weak table keyed on pointer
    identity.  Safe because trees are immutable and functional updates
    path-copy; meant for hot paths that re-measure the same shipped
    tree on every charge. *)

val shape_hash : t -> int
(** Structural digest consistent with {!equal_shape}: equal shapes
    hash equal; node identifiers are ignored.  Memoized like
    {!byte_size_cached}.  Never returns 0. *)

(** {1 Traversal} *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val iter : (t -> unit) -> t -> unit
val elements : t -> element list
(** All element nodes, pre-order. *)

val find : (element -> bool) -> t -> element option
val find_all : (element -> bool) -> t -> element list
val find_by_id : Node_id.t -> t -> element option
val mem_id : Node_id.t -> t -> bool
val parent_of : Node_id.t -> t -> element option
(** [parent_of id t] is the element whose child list contains the
    element identified by [id], if any. *)

val children_by_label : t -> Label.t -> t list
(** Element children with the given label, in order. *)

val first_child_by_label : t -> Label.t -> t option

(** {1 Functional updates}

    All updates return a new tree; identifiers of untouched nodes are
    preserved. *)

val map_elements : (element -> element) -> t -> t
(** Bottom-up rewrite of every element node. *)

val update_node : Node_id.t -> (element -> element) -> t -> t option
(** [update_node id f t] rewrites the node identified by [id] with [f].
    [None] if [id] does not occur in [t]. *)

val insert_children : under:Node_id.t -> t list -> t -> t option
(** [insert_children ~under ts t] appends [ts] to the child list of the
    node identified by [under]. *)

val insert_siblings : of_:Node_id.t -> t list -> t -> t option
(** [insert_siblings ~of_ ts t] inserts [ts] immediately after the node
    identified by [of_] in its parent's child list — the accumulation
    semantics of AXML service results (Section 2.2, step 3).  [None] if
    [of_] is absent or is the root. *)

val remove_node : Node_id.t -> t -> t option
(** Remove the identified node (and its subtree).  [None] if absent or
    if it is the root. *)

val copy : gen:Node_id.Gen.t -> t -> t
(** Deep copy with fresh identifiers from [gen].  This is the copy
    performed by [send] evaluation: the instance that lands on the
    destination peer has its own node identities. *)

(** {1 Comparison} *)

val equal_strict : t -> t -> bool
(** Structural equality including identifiers and child order. *)

val equal_shape : t -> t -> bool
(** Structural equality ignoring identifiers but respecting order.
    Unordered equality lives in {!Canonical.equal}. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, for debugging. *)
