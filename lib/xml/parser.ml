type error = { position : int; line : int; column : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "XML parse error at line %d, column %d: %s" e.line
    e.column e.message

exception Parse_error of error

type state = { src : string; mutable pos : int; gen : Node_id.Gen.t }

let line_col src pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (pos - 1) (String.length src - 1) do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = line_col st.src st.pos in
  raise (Parse_error { position = st.pos; line; column; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let skip_ws st = while (not (eof st)) && is_ws (peek st) do advance st done

let read_until st stop =
  match
    String.index_from_opt st.src st.pos stop.[0]
    |> Option.map (fun _ ->
           let rec search from =
             match String.index_from_opt st.src from stop.[0] with
             | None -> None
             | Some i ->
                 if
                   i + String.length stop <= String.length st.src
                   && String.sub st.src i (String.length stop) = stop
                 then Some i
                 else search (i + 1)
           in
           search st.pos)
    |> Option.join
  with
  | None -> fail st (Printf.sprintf "unterminated construct, expected %S" stop)
  | Some i ->
      let s = String.sub st.src st.pos (i - st.pos) in
      st.pos <- i + String.length stop;
      s

let read_name st =
  let start = st.pos in
  if eof st || not (Label.is_valid (String.make 1 (peek st))) then
    fail st "expected a name";
  while
    (not (eof st))
    &&
    let c = peek st in
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let decode_entity st =
  (* positioned just after '&' *)
  let start = st.pos in
  (match String.index_from_opt st.src st.pos ';' with
  | None -> fail st "unterminated entity reference"
  | Some i -> st.pos <- i + 1);
  let name = String.sub st.src start (st.pos - 1 - start) in
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      (* Numeric character references are validated strictly: the digit
         string must be non-empty and pure decimal (or pure hex after
         [#x]) — [int_of_string_opt] alone would also accept [0x]-
         prefixed, [_]-separated and negative literals — and the code
         point must be a scalar value: surrogates (U+D800–U+DFFF) and
         anything above U+10FFFF have no UTF-8 encoding and previously
         produced invalid byte sequences. *)
      let digits_value ~hex s =
        let ok = ref (String.length s > 0) in
        let value = ref 0 in
        String.iter
          (fun c ->
            let d =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' when hex -> 10 + Char.code c - Char.code 'a'
              | 'A' .. 'F' when hex -> 10 + Char.code c - Char.code 'A'
              | _ ->
                  ok := false;
                  0
            in
            (* Saturate well above U+10FFFF instead of overflowing. *)
            value := min 0x7FFFFFFF ((!value * if hex then 16 else 10) + d))
          s;
        if !ok then Some !value else None
      in
      let num =
        if String.length name >= 2 && name.[0] = '#' && name.[1] = 'x' then
          digits_value ~hex:true (String.sub name 2 (String.length name - 2))
        else if String.length name >= 1 && name.[0] = '#' then
          digits_value ~hex:false (String.sub name 1 (String.length name - 1))
        else None
      in
      (match num with
      | Some code when (code >= 0xD800 && code <= 0xDFFF) || code > 0x10FFFF ->
          fail st
            (Printf.sprintf "character reference &%s; is not a Unicode scalar value"
               name)
      | Some code when code < 128 -> String.make 1 (Char.chr code)
      | Some code ->
          (* Encode as UTF-8. *)
          let b = Buffer.create 4 in
          if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          Buffer.contents b
      | None -> fail st (Printf.sprintf "unknown entity &%s;" name))

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        advance st;
        Buffer.add_string buf (decode_entity st);
        go ()
      end
      else if c = '<' then fail st "'<' in attribute value"
      else begin
        Buffer.add_char buf c;
        advance st;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let read_attrs st =
  let rec go acc =
    skip_ws st;
    let c = peek st in
    if c = '>' || c = '/' || c = '?' || eof st then List.rev acc
    else begin
      let name = read_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = read_attr_value st in
      go ((name, value) :: acc)
    end
  in
  go []

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    ignore (read_until st "-->");
    skip_misc st
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    ignore (read_until st "?>");
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    ignore (read_until st ">");
    skip_misc st
  end

let rec parse_element ~keep_ws st =
  expect st "<";
  let name = read_name st in
  let label =
    match Label.of_string_opt name with
    | Some l -> l
    | None -> fail st (Printf.sprintf "invalid element name %S" name)
  in
  let attrs = read_attrs st in
  skip_ws st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Tree.with_id (Node_id.Gen.fresh st.gen) ~attrs label []
  end
  else begin
    expect st ">";
    let children = parse_content ~keep_ws st in
    expect st "</";
    let close = read_name st in
    if close <> name then
      fail st (Printf.sprintf "mismatched closing tag </%s>, expected </%s>" close name);
    skip_ws st;
    expect st ">";
    Tree.with_id (Node_id.Gen.fresh st.gen) ~attrs label children
  end

and parse_content ~keep_ws st =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if s <> "" then
      let ws_only =
        let w = ref true in
        String.iter (fun c -> if not (is_ws c) then w := false) s;
        !w
      in
      if keep_ws || not ws_only then out := Tree.Text s :: !out
  in
  let rec go () =
    if eof st then fail st "unexpected end of input in element content"
    else if looking_at st "</" then flush_text ()
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      ignore (read_until st "-->");
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      st.pos <- st.pos + 9;
      Buffer.add_string buf (read_until st "]]>");
      go ()
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      ignore (read_until st "?>");
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      let child = parse_element ~keep_ws st in
      out := child :: !out;
      go ()
    end
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (decode_entity st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !out

let run f =
  match f () with
  | v -> Ok v
  | exception Parse_error e -> Error e

let parse ?(keep_ws = false) ~gen s =
  run (fun () ->
      let st = { src = s; pos = 0; gen } in
      skip_misc st;
      if eof st then fail st "empty document";
      if peek st <> '<' || peek2 st = '!' then fail st "expected root element";
      let t = parse_element ~keep_ws st in
      skip_misc st;
      if not (eof st) then fail st "trailing content after root element";
      t)

let parse_exn ?keep_ws ~gen s =
  match parse ?keep_ws ~gen s with Ok t -> t | Error e -> raise (Parse_error e)

let parse_forest ?(keep_ws = false) ~gen s =
  run (fun () ->
      let st = { src = s; pos = 0; gen } in
      let rec go acc =
        skip_misc st;
        if eof st then List.rev acc
        else go (parse_element ~keep_ws st :: acc)
      in
      go [])
