type t = Element of element | Text of string

and element = {
  id : Node_id.t;
  label : Label.t;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) ~gen label children =
  Element { id = Node_id.Gen.fresh gen; label; attrs; children }

let element_of_string ?attrs ~gen name children =
  element ?attrs ~gen (Label.of_string name) children

let text s = Text s

let with_id id ?(attrs = []) label children =
  Element { id; label; attrs; children }

let is_element = function Element _ -> true | Text _ -> false
let is_text = function Text _ -> true | Element _ -> false
let id = function Element e -> Some e.id | Text _ -> None
let label = function Element e -> Some e.label | Text _ -> None
let children = function Element e -> e.children | Text _ -> []
let attrs = function Element e -> e.attrs | Text _ -> []
let attr t name = List.assoc_opt name (attrs t)

let rec text_content = function
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let rec size = function
  | Text _ -> 1
  | Element e -> List.fold_left (fun acc c -> acc + size c) 1 e.children

let rec depth = function
  | Text _ -> 1
  | Element e ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 e.children

let rec byte_size = function
  | Text s -> String.length s
  | Element e ->
      (* <label attrs>children</label> *)
      let tag = String.length (Label.to_string e.label) in
      let attr_bytes =
        List.fold_left
          (fun acc (k, v) -> acc + String.length k + String.length v + 4)
          0 e.attrs
      in
      (2 * tag) + 5 + attr_bytes
      + List.fold_left (fun acc c -> acc + byte_size c) 0 e.children

(* Root-level memo for the two O(subtree) measures the messaging hot
   path recomputes per charge: the byte-size model and the structural
   shape digest.  Keys are compared by pointer: trees are immutable
   and functional updates path-copy (see [update_node]), so a pointer
   hit can never alias a different tree.  The table is weak-keyed, so
   entries die with the trees they describe. *)
module Memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type memo = { mutable m_bytes : int; mutable m_shape : int }

let memo_tbl = Memo.create 1024

let memo_of t =
  match Memo.find_opt memo_tbl t with
  | Some m -> m
  | None ->
      let m = { m_bytes = -1; m_shape = 0 } in
      Memo.add memo_tbl t m;
      m

let byte_size_cached t =
  let m = memo_of t in
  if m.m_bytes >= 0 then m.m_bytes
  else begin
    let n = byte_size t in
    m.m_bytes <- n;
    n
  end

(* FNV-1a-style structural digest over labels, attributes and text —
   the same distinctions as [equal_shape], no node identifiers.  Equal
   shapes hash equal.  Never 0: 0 is the "unset" memo sentinel. *)
let shape_hash t =
  let mix h x = (h lxor x) * 0x01000193 land max_int in
  let mix_string h s =
    let h = ref (mix h (String.length s)) in
    String.iter (fun c -> h := mix !h (Char.code c)) s;
    !h
  in
  let rec go h = function
    | Text s -> mix_string (mix h 2) s
    | Element e ->
        let h = mix_string (mix h 1) (Label.to_string e.label) in
        let h =
          List.fold_left
            (fun h (k, v) -> mix_string (mix_string h k) v)
            h e.attrs
        in
        mix (List.fold_left go h e.children) 3
  in
  let m = memo_of t in
  if m.m_shape <> 0 then m.m_shape
  else begin
    let h = go 0x811c9dc5 t in
    let h = if h = 0 then 1 else h in
    m.m_shape <- h;
    h
  end

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Text _ -> acc
  | Element e -> List.fold_left (fold f) acc e.children

let iter f t = fold (fun () n -> f n) () t

let elements t =
  List.rev
    (fold
       (fun acc -> function Element e -> e :: acc | Text _ -> acc)
       [] t)

exception Found_element of element

let find pred t =
  let check = function
    | Element e when pred e -> raise_notrace (Found_element e)
    | Element _ | Text _ -> ()
  in
  match iter check t with
  | () -> None
  | exception Found_element e -> Some e

let find_all pred t = List.filter pred (elements t)
let find_by_id nid t = find (fun e -> Node_id.equal e.id nid) t
let mem_id nid t = Option.is_some (find_by_id nid t)

let parent_of nid t =
  let is_target = function
    | Element e -> Node_id.equal e.id nid
    | Text _ -> false
  in
  find (fun e -> List.exists is_target e.children) t

let children_by_label t l =
  List.filter
    (function Element e -> Label.equal e.label l | Text _ -> false)
    (children t)

let first_child_by_label t l =
  match children_by_label t l with [] -> None | c :: _ -> Some c

let rec map_elements f = function
  | Text s -> Text s
  | Element e ->
      let children = List.map (map_elements f) e.children in
      Element (f { e with children })

(* Functional update of a single identified node.  [changed] tracks
   whether the target was found so callers can distinguish a no-op.
   Path-copying: only the root-to-target spine is rebuilt; every
   untouched subtree is returned physically unchanged, so consumers
   keyed on pointer identity (the structural index) can repair in
   O(spine) instead of O(document). *)
let update_node nid f t =
  let changed = ref false in
  let rec map_shared l =
    match l with
    | [] -> l
    | x :: tl ->
        let x' = go x in
        let tl' = map_shared tl in
        if x' == x && tl' == tl then l else x' :: tl'
  and go t =
    match t with
    | Text _ -> t
    | Element e when Node_id.equal e.id nid ->
        changed := true;
        Element (f e)
    | Element e ->
        let children = map_shared e.children in
        if children == e.children then t else Element { e with children }
  in
  let t' = go t in
  if !changed then Some t' else None

let insert_children ~under ts t =
  update_node under (fun e -> { e with children = e.children @ ts }) t

let insert_siblings ~of_ ts t =
  match parent_of of_ t with
  | None -> None
  | Some parent ->
      let insert_after kids =
        List.concat_map
          (fun c ->
            match c with
            | Element e when Node_id.equal e.id of_ -> c :: ts
            | Element _ | Text _ -> [ c ])
          kids
      in
      update_node parent.id
        (fun e -> { e with children = insert_after e.children })
        t

let remove_node nid t =
  match parent_of nid t with
  | None -> None
  | Some parent ->
      let keep = function
        | Element e -> not (Node_id.equal e.id nid)
        | Text _ -> true
      in
      update_node parent.id
        (fun e -> { e with children = List.filter keep e.children })
        t

let rec copy ~gen = function
  | Text s -> Text s
  | Element e ->
      Element
        {
          e with
          id = Node_id.Gen.fresh gen;
          children = List.map (copy ~gen) e.children;
        }

let rec equal_strict a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
      Node_id.equal x.id y.id
      && Label.equal x.label y.label
      && x.attrs = y.attrs
      && List.equal equal_strict x.children y.children
  | (Text _ | Element _), _ -> false

let rec equal_shape a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
      Label.equal x.label y.label
      && x.attrs = y.attrs
      && List.equal equal_shape x.children y.children
  | (Text _ | Element _), _ -> false

let rec pp fmt = function
  | Text s -> Format.fprintf fmt "%S" s
  | Element e ->
      Format.fprintf fmt "@[<hv 1>%a" Label.pp e.label;
      List.iter (fun (k, v) -> Format.fprintf fmt "[@%s=%S]" k v) e.attrs;
      if e.children <> [] then begin
        Format.fprintf fmt "(";
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
          pp fmt e.children;
        Format.fprintf fmt ")"
      end;
      Format.fprintf fmt "@]"
