module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type t = {
  id : Peer_id.t;
  gen : Axml_xml.Node_id.Gen.t;
  store : Axml_doc.Store.t;
  registry : Axml_doc.Registry.t;
  catalog : Axml_doc.Generic.t;
  mutable policy : Axml_doc.Generic.policy;
  watchers : (Names.Doc_name.t, Message.reply_dest list ref) Hashtbl.t;
}

let create ?gen ?(policy = Axml_doc.Generic.First) id =
  {
    id;
    gen =
      (match gen with
      | Some g -> g
      | None -> Axml_xml.Node_id.Gen.create ~namespace:(Peer_id.to_string id));
    store = Axml_doc.Store.create ();
    registry = Axml_doc.Registry.create ();
    catalog = Axml_doc.Generic.create ();
    policy;
    watchers = Hashtbl.create 8;
  }

let find_doc_with_node t node =
  List.find_opt
    (fun doc -> Axml_xml.Tree.mem_id node (Axml_doc.Document.root doc))
    (Axml_doc.Store.documents t.store)

let watch t doc dest =
  match Hashtbl.find_opt t.watchers doc with
  | Some cell -> cell := !cell @ [ dest ]
  | None -> Hashtbl.replace t.watchers doc (ref [ dest ])

let watchers_of t doc =
  match Hashtbl.find_opt t.watchers doc with Some cell -> !cell | None -> []
