module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type t = {
  id : Peer_id.t;
  gen : Axml_xml.Node_id.Gen.t;
  store : Axml_doc.Store.t;
  registry : Axml_doc.Registry.t;
  catalog : Axml_doc.Generic.t;
  mutable policy : Axml_doc.Generic.policy;
  watchers : (Names.Doc_name.t, Message.reply_dest list ref) Hashtbl.t;
  replicas : (Names.Doc_name.t, Peer_id.t list ref) Hashtbl.t;
  mutable qcache : Axml_algebra.Expr.t Axml_query.Qcache.t option;
      (* Volatile semantic result cache; [None] = caching off.  Not
         part of Σ: a crash replaces it with a fresh empty cache
         (never checkpointed, never resurrected). *)
}

let create ?gen ?(policy = Axml_doc.Generic.First) id =
  {
    id;
    gen =
      (match gen with
      | Some g -> g
      | None -> Axml_xml.Node_id.Gen.create ~namespace:(Peer_id.to_string id));
    store = Axml_doc.Store.create ();
    registry = Axml_doc.Registry.create ();
    catalog = Axml_doc.Generic.create ();
    policy;
    watchers = Hashtbl.create 8;
    replicas = Hashtbl.create 8;
    qcache = None;
  }

let find_doc_with_node t node =
  List.find_opt
    (fun doc -> Axml_xml.Tree.mem_id node (Axml_doc.Document.root doc))
    (Axml_doc.Store.documents t.store)

let add_replica t doc target =
  match Hashtbl.find_opt t.replicas doc with
  | Some cell ->
      if not (List.exists (Peer_id.equal target) !cell) then
        cell := !cell @ [ target ]
  | None -> Hashtbl.replace t.replicas doc (ref [ target ])

let remove_replica t doc target =
  match Hashtbl.find_opt t.replicas doc with
  | None -> ()
  | Some cell ->
      cell := List.filter (fun p -> not (Peer_id.equal target p)) !cell;
      if !cell = [] then Hashtbl.remove t.replicas doc

let replica_targets t doc =
  match Hashtbl.find_opt t.replicas doc with Some cell -> !cell | None -> []

let replica_links t =
  Hashtbl.fold
    (fun doc cell acc -> List.map (fun p -> (doc, p)) !cell @ acc)
    t.replicas []
  |> List.sort (fun (d, p) (d', p') ->
         match
           String.compare (Names.Doc_name.to_string d)
             (Names.Doc_name.to_string d')
         with
         | 0 -> Peer_id.compare p p'
         | c -> c)

let watch t doc dest =
  match Hashtbl.find_opt t.watchers doc with
  | Some cell -> cell := !cell @ [ dest ]
  | None -> Hashtbl.replace t.watchers doc (ref [ dest ])

let watchers_of t doc =
  match Hashtbl.find_opt t.watchers doc with Some cell -> !cell | None -> []
