module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Validate = Axml_schema.Validate

type report = {
  conforms : bool;
  rounds : int;
  activated : int;
  last_error : string option;
}

let rec erase_calls t =
  match t with
  | Tree.Text _ -> t
  | Tree.Element e ->
      let children =
        e.children
        |> List.filter (fun c -> not (Axml_doc.Sc.is_sc c))
        |> List.map erase_calls
      in
      Tree.Element { e with children }

let conforms_modulo_calls ~schema ~type_name t =
  (* Unordered: call results accumulate at arbitrary sibling
     positions, which must not affect conformance. *)
  Validate.tree ~unordered:true ~schema ~type_name (erase_calls t)

(* The calls to try next, given a validation failure: the ones owned by
   the failing node, or — when the failure does not pin a node (or the
   node holds none) — every remaining call.  [exclude] lists calls
   already fired. *)
let candidate_calls root (error : Validate.error) ~exclude =
  let all = Axml_doc.Sc.find_calls root in
  let fresh =
    List.filter
      (fun (node, _) ->
        not (List.exists (Axml_xml.Node_id.equal node) exclude))
      all
  in
  match error.at with
  | Some failing ->
      let owned =
        List.filter
          (fun (node, _) ->
            match Tree.parent_of node root with
            | Some parent -> Axml_xml.Node_id.equal parent.Tree.id failing
            | None -> false)
          fresh
      in
      if owned <> [] then owned else fresh
  | None -> fresh

let activate_until_valid sys ~owner ~doc ~schema ~type_name ?(max_rounds = 8)
    () =
  let doc_name =
    match System.find_document sys owner doc with
    | Some d -> Axml_doc.Document.name d
    | None ->
        invalid_arg
          (Printf.sprintf "Type_driven.activate_until_valid: no document %S" doc)
  in
  let fired = ref [] in
  let activated = ref 0 in
  let rec loop round =
    let root =
      match System.find_document sys owner doc with
      | Some d -> Axml_doc.Document.root d
      | None -> assert false
    in
    match conforms_modulo_calls ~schema ~type_name root with
    | Ok () ->
        { conforms = true; rounds = round; activated = !activated; last_error = None }
    | Error err ->
        if round >= max_rounds then
          {
            conforms = false;
            rounds = round;
            activated = !activated;
            last_error = Some (Format.asprintf "%a" Validate.pp_error err);
          }
        else begin
          match candidate_calls root err ~exclude:!fired with
          | [] ->
              {
                conforms = false;
                rounds = round;
                activated = !activated;
                last_error = Some (Format.asprintf "%a" Validate.pp_error err);
              }
          | candidates ->
              List.iter
                (fun (node, _) ->
                  fired := node :: !fired;
                  if System.activate_call sys ~owner ~doc:doc_name ~node then
                    incr activated)
                candidates;
              ignore (System.run sys);
              loop (round + 1)
        end
  in
  loop 0
