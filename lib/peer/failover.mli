(** Crash recovery: wires {!System.set_failover} to {!Persist}
    checkpoints.

    With failover enabled, a {!System.crash} snapshots the peer's
    durable state (documents, services, catalog — modeling a
    continuously-persisted store) and {!System.restart} reloads it
    with node identities intact, so reply destinations captured
    before the crash keep working.  Volatile state — watchers,
    in-flight transport buffers, continuations — is deliberately
    lost. *)

type t

val enable : ?dir:string -> System.t -> t
(** Install the save/load hooks.  Checkpoints are kept in memory;
    with [dir] they are additionally written to
    [<dir>/<peer>.checkpoint.xml] for inspection. *)

val snapshot : t -> Axml_net.Peer_id.t -> string option
(** The latest checkpoint taken for a peer, if any. *)
