(** Wire messages of the peer runtime.

    Everything peers exchange while evaluating expressions and running
    AXML documents: response streams, expression delegations
    (definition (5) and rule (14)), service invocations (steps 1–3 of
    call activation), node/document installations (definitions (4) and
    (8)) and query shipping.

    Byte sizes under the XML wire are computed from the XML
    serializations — the simulator charges what the wire would carry.
    Under the binary wire ({!Codec}), the charge is the actual encoded
    frame length. *)

module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

(** {1 Lazily decoded forests}

    A forest carried by a message is either materialized or still
    encoded inside a received binary frame.  Producers build
    materialized forests with {!now}; the binary decoder builds lazy
    ones with {!delay}, whose thunk parses the frame slice on first
    touch.  Transport-layer code (batching, relaying, retransmission,
    byte accounting under the binary wire) never needs the trees and
    so never forces — {!payload_decodes} counts forcings to make that
    claim checkable. *)

type lforest = { mutable st : lstate; mutable wire : int; mutable dig : int }
(** [wire] caches the binary-encoded forest-section length
    ([-1] = unknown); [dig] caches the structural digest
    ([0] = unknown).  Both are scratch: they never affect the carried
    forest's value. *)

and lstate =
  | Done of Axml_xml.Forest.t
  | Todo of {
      trees : int;  (** tree count, readable without decoding *)
      decode : unit -> Axml_xml.Forest.t;
      enc : Bytes.t * int * int;
          (** the encoded forest section ([buf], [offset], [length]) —
              re-encoding blits this slice, no parse *)
    }

val now : Axml_xml.Forest.t -> lforest
val delay : trees:int -> enc:Bytes.t * int * int -> (unit -> Axml_xml.Forest.t) -> lforest

val force : lforest -> Axml_xml.Forest.t
(** Materialize (and cache) the forest; counts toward
    {!payload_decodes} if a decode actually runs. *)

val peek : lforest -> Axml_xml.Forest.t option
(** The forest if already materialized; never decodes. *)

val trees : lforest -> int
(** Number of trees; never decodes. *)

val is_forced : lforest -> bool

val payload_decodes : unit -> int
(** Global count of lazy forest decodes since the last
    {!reset_payload_decodes} — the counter that verifies zero-parse
    relay forwarding. *)

val reset_payload_decodes : unit -> unit

(** {1 Messages} *)

(** Where a response stream should be delivered. *)
type reply_dest =
  | Cont of { peer : Peer_id.t; key : int }
      (** A continuation registered at a peer (expression results). *)
  | Node of Names.Node_ref.t
      (** Append under an identified node (forward lists). *)
  | Install of { peer : Peer_id.t; name : string }
      (** Install as a new document there. *)

type payload =
  | Stream of { key : int; forest : lforest; final : bool }
      (** One batch of a response stream. *)
  | Eval_request of {
      expr : Axml_algebra.Expr.t;
      replies : reply_dest list;
          (** Every result batch goes to each destination. *)
      ack : (Peer_id.t * int) option;
          (** Zero-byte completion signal, for drivers that only need
              to know the side effects have been emitted. *)
    }
  | Invoke of {
      service : Names.Service_name.t;
      params : lforest list;
      replies : reply_dest list;
    }
  | Insert of {
      node : Axml_xml.Node_id.t;
      forest : lforest;
      notify : (Peer_id.t * int) option;
          (** Destination-side acknowledgement: after applying the
              insert, ping this continuation.  Carried by the last
              batch of a stream so that "done" is only signalled once
              the side effects are really in place (large data travels
              slower than a bare ack would). *)
    }
  | Install_doc of {
      name : string;
      forest : lforest;
      notify : (Peer_id.t * int) option;
    }
  | Migrate_doc of {
      name : string;
      forest : lforest;
      notify : (Peer_id.t * int) option;
    }
      (** Placement handoff (DESIGN.md §17): install-or-replace a
          replica of [name] at the destination {e preserving} the
          shipped node ids, so the replica answers queries with the
          same identifiers as the source.  Unlike {!Install_doc} the
          name is never uniquified and an existing replica is
          replaced, making re-shipment idempotent. *)
  | Retract_doc of { name : string; notify : (Peer_id.t * int) option }
      (** Placement cleanup: drop the replica of [name] at the
          destination (idempotent — retracting an absent document is
          a no-op). *)
  | Deploy of {
      prefix : string;
      query : Axml_query.Ast.t;
      reply : reply_dest;
    }
      (** Definition (8): install the query as a new service; the
          reply stream carries the fresh service name as text. *)
  | Query_shipped of { key : int; query : Axml_query.Ast.t }
      (** Transfer of a query value between peers; the receiving
          continuation captures what to do with it. *)
  | Ack of { seq : int }
      (** Reliable-transport acknowledgement of the sender's sequence
          number (see {!System}); acks themselves are unsequenced.
          Under batching, acknowledgements are {e cumulative}: [seq]
          acknowledges every sequence number up to and including it. *)
  | Batch of { items : batch_item list; ack : int }
      (** A coalesced frame of sequenced messages for one (src, dst)
          pair, in ascending sequence order, plus the sender's {e
          cumulative} acknowledgement of the reverse direction
          ([0] = nothing to acknowledge).  Built by {!batch}, which
          also applies within-frame transfer sharing (rule (13) at the
          transport layer): an item whose forest structurally equals
          an earlier item's is carried as a back-reference and charged
          {!backref_bytes} instead of the forest's size. *)

and batch_item =
  | Full of t
  | Shared of { msg : t; of_seq : int; saved : int }
      (** [msg]'s forest is structurally identical to the one item
          [of_seq] carries; only a back-reference crosses the wire,
          saving [saved] bytes.  The full payload is retained so
          delivery needs no reassembly step. *)

and t = { payload : payload; corr : int; seq : int; op : int }
(** The wire envelope: a payload plus the correlation id of the
    logical computation that caused the send ([0] = uncorrelated).
    Minted by {!Axml_obs.Trace.fresh_corr} at the computation's entry
    point ({!Exec.run_to_quiescence}, {!System.activate_call}) and
    re-established as the ambient correlation when the message is
    dispatched — which is how one computation's spans connect across
    peers and hops.

    [seq] is the reliable transport's per-(src,dst) sequence number;
    [0] means unsequenced (raw transport, loopback, acks).

    [op] is the profiler's plan-operator id ([-1] = unattributed),
    carried and re-established exactly like the correlation id so
    remote work is folded back onto the operator that caused it.
    Like the correlation id, both ride inside the fixed envelope
    budget. *)

val make : ?corr:int -> ?seq:int -> ?op:int -> payload -> t

val bytes : payload -> int
(** XML-wire serialized size estimate charged to the link (the
    correlation id rides inside the fixed envelope budget).  A [Batch]
    charges one envelope for the frame plus a small per-item header —
    coalescing n messages saves [(n-1) * (envelope - item_header)]
    bytes of fixed cost before any dedup sharing.  Forces lazy
    forests (only the XML wire uses this model; the binary wire
    charges {!Codec.frame_bytes}). *)

val envelope : int
(** Fixed per-message framing cost in bytes (XML wire model). *)

val item_header : int
(** Per-item framing cost inside a [Batch] frame (XML wire model). *)

val backref_bytes : int
(** Wire cost of a dedup back-reference inside a [Batch] (XML wire
    model). *)

val shape_digest : lforest -> int
(** Structural digest of the carried forest
    ({!Axml_xml.Forest.shape_hash}), cached in the message.  Forces on
    first call. *)

val batch : ack:int -> t list -> payload
(** Build a [Batch] frame from sequenced messages (given in send
    order) with the cumulative reverse-direction acknowledgement
    [ack].  Items whose forest structurally duplicates an earlier item
    of the same frame become [Shared] back-references; candidates are
    matched by cached digest, then verified by pointer equality or
    {!Axml_xml.Forest.equal_shape} — no serialization. *)

val item_message : batch_item -> t
(** The enclosed message (back-references carry their full payload). *)

val batch_saved : payload -> int
(** Total bytes saved by dedup back-references ([0] for non-batches). *)

val batch_size : payload -> int
(** Number of logical messages a payload carries: the item count of a
    [Batch], [1] otherwise. *)

val reply_peer : reply_dest -> Peer_id.t

val tag : payload -> string
(** Short kind label (["stream"], ["invoke"], …) for span names and
    metric keys. *)

val pp : Format.formatter -> payload -> unit
(** Never forces a lazy forest: an undecoded forest prints its
    encoded-slice length as ["<n>B-enc"]. *)

val shareable_forest : payload -> lforest option
(** The forest a payload materializes at the destination, if non-empty
    — the dedup candidate inside a batch.  Never decodes. *)
