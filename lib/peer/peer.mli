(** A peer: identity plus the local state it owns.

    "A peer represents a context of computation; it can also be seen
    as a hosting environment for documents and services" (Section 2).
    The message-handling behaviour lives in {!module:System}; this
    module is the passive state record. *)

module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type t = {
  id : Peer_id.t;
  gen : Axml_xml.Node_id.Gen.t;
      (** Identifier generator; namespaced by the peer id so node
          identities are globally unique. *)
  store : Axml_doc.Store.t;
  registry : Axml_doc.Registry.t;
  catalog : Axml_doc.Generic.t;
      (** This peer's knowledge of document/service equivalence
          classes (definition (9): "depends on p's knowledge"). *)
  mutable policy : Axml_doc.Generic.policy;
  watchers : (Names.Doc_name.t, Message.reply_dest list ref) Hashtbl.t;
      (** Doc-feed subscriptions: destinations to notify when a
          document grows. *)
  replicas : (Names.Doc_name.t, Peer_id.t list ref) Hashtbl.t;
      (** Placement forwarding links: peers holding a live replica of
          a local document.  A streaming append applied here is also
          shipped to each target (DESIGN.md §17); volatile, but
          persisted by checkpoints so failover restores the links. *)
  mutable qcache : Axml_algebra.Expr.t Axml_query.Qcache.t option;
      (** Semantic result cache (DESIGN.md §18); [None] = caching
          off.  Strictly volatile — never checkpointed, and a crash
          replaces it with a fresh empty cache, so restart cannot
          resurrect entries pinned to pre-crash document versions. *)
}

val create :
  ?gen:Axml_xml.Node_id.Gen.t -> ?policy:Axml_doc.Generic.policy -> Peer_id.t -> t
(** [gen] lets a restarted peer carry its id generator across the
    crash (the counter is durable): fresh nodes minted after recovery
    must not collide with pre-crash ids in the same namespace. *)

val find_doc_with_node : t -> Axml_xml.Node_id.t -> Axml_doc.Document.t option
(** The stored document containing the identified node, if any. *)

val watch : t -> Names.Doc_name.t -> Message.reply_dest -> unit
val watchers_of : t -> Names.Doc_name.t -> Message.reply_dest list

val add_replica : t -> Names.Doc_name.t -> Peer_id.t -> unit
(** Record that [target] holds a replica of the local document
    (idempotent). *)

val remove_replica : t -> Names.Doc_name.t -> Peer_id.t -> unit
val replica_targets : t -> Names.Doc_name.t -> Peer_id.t list

val replica_links : t -> (Names.Doc_name.t * Peer_id.t) list
(** Every (document, target) forwarding link, in a deterministic
    order — checkpoint serialization and restart resynchronization
    iterate this. *)
