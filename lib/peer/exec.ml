module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Tree = Axml_xml.Tree
module Forest = Axml_xml.Forest
module Expr = Axml_algebra.Expr
module Trace = Axml_obs.Trace
module Qcache = Axml_query.Qcache

let log = Logs.Src.create "axml.exec" ~doc:"AXML expression evaluation"

module Log = (val Logs.src_log log)

let site_peer ~ctx expr =
  match Expr.site expr with Names.At p -> p | Names.Any -> ctx

(* Operator attribution (profiler): when the ambient operator id is
   set (>= 0, i.e. inside {!run_profiled}), each recursion below
   re-establishes the pre-order id of the child it descends into, so
   every span and message the child causes is stamped with it.  A
   delegation that ships the {e same} operator to another peer keeps
   the ambient id (the message envelope carries it); one that ships a
   {e child} wraps the send in the child's id.  Outside profiling the
   id is -1 and [with_op_if] is a plain call. *)
let with_op_if op f = if op < 0 then f () else Trace.with_op op f

(* The id of child [i] of the ambient operator [k] whose children are
   [kids] ({!Axml_algebra.Expr.subexpressions} of the current node). *)
let sub_op k kids i = if k < 0 then -1 else Profiler.child_op ~parent:k kids i

(* Register a continuation and return its reply destination. *)
let cont_at sys ~at k =
  let key = System.fresh_key sys in
  System.set_cont sys key k;
  Message.Cont { peer = at; key }

(* Delegate an expression to another peer: its results stream to
   [replies]; completion additionally pings [ack] when given. *)
let delegate sys ~ctx ~to_ expr ~replies ~ack =
  System.send sys ~src:ctx ~dst:to_
    (Message.Eval_request { expr; replies; ack })

(* Bridge between the planner's fingerprint record and the cache's
   mirror of it (the dependency order keeps Qcache below Expr). *)
let qfp (fp : Expr.Fingerprint.t) =
  {
    Qcache.hash = fp.Expr.Fingerprint.hash;
    size = fp.Expr.Fingerprint.size;
    depth = fp.Expr.Fingerprint.depth;
  }

let has_sc_root forest = List.exists Axml_doc.Sc.is_sc forest

(* Probe-time revalidation callback: live version stamps, by name. *)
let current_version sys ~peer ~doc =
  match Peer_id.of_string_opt peer with
  | Some p -> System.doc_version sys ~peer:p ~doc
  | None -> None

(* Evaluation with the semantic cache (DESIGN.md §18) in front of the
   operational semantics: [eval] probes/fills the evaluating peer's
   cache for admissible expressions and defers to [eval_core] — the
   definitions (1)–(9) dispatcher — for the actual work.  Recursive
   calls re-enter [eval], so every admissible subexpression probes
   too, on whichever peer ends up evaluating it (delegations arrive
   through the eval hook, which also lands here). *)
let rec eval sys ~ctx (expr : Expr.t) ~(emit : System.emit) : unit =
  match (System.peer sys ctx).Peer.qcache with
  | None -> eval_core sys ~ctx expr ~emit
  | Some cache -> (
      match expr with
      | Expr.Data_at _ ->
          (* A literal is already its own result — nothing to save. *)
          eval_core sys ~ctx expr ~emit
      | _ -> (
          match Expr.cache_deps expr with
          | None -> eval_core sys ~ctx expr ~emit
          | Some deps -> eval_cached sys ~ctx cache ~fresh_deps:deps expr ~emit))

and eval_cached sys ~ctx cache ~fresh_deps expr ~emit =
  let fp = qfp (Expr.fingerprint expr) in
  let current = current_version sys in
  match Qcache.find cache ~fp ~expr ~current with
  | Some forest ->
      if Trace.sampled () then
        Trace.instant ~cat:"qcache"
          ~peer:(Peer_id.to_string ctx)
          ~ts:(System.now_ms sys)
          ~args:[ ("expr", Expr.to_string expr) ]
          "hit";
      emit (Forest.copy ~gen:(System.gen_of sys ctx) forest) ~final:true
  | None -> (
      (* Pin the dependency versions *before* evaluation: installing
         against versions read afterwards would pin a torn snapshot
         (a dep may mutate mid-stream).  At completion the pins are
         re-checked; a changed or vanished dep skips the install. *)
      let pinned =
        List.map
          (fun (p, doc) ->
            match System.doc_version sys ~peer:p ~doc with
            | Some v -> Some (Peer_id.to_string p, doc, v)
            | None -> None)
          fresh_deps
      in
      match List.exists Option.is_none pinned with
      | true -> eval_core sys ~ctx expr ~emit
      | false ->
          let pins = Array.of_list (List.filter_map Fun.id pinned) in
          let acc = ref [] in
          eval_core sys ~ctx expr ~emit:(fun forest ~final ->
              acc := !acc @ forest;
              (if final then
                 let unchanged =
                   Array.for_all
                     (fun (p, d, v) -> current ~peer:p ~doc:d = Some v)
                     pins
                 in
                 (* sc-rooted results stay out: serving them from the
                    cache would re-activate the calls (definition
                    (6)) at the wrong time. *)
                 if unchanged && not (has_sc_root !acc) then
                   Qcache.install cache ~fp ~expr ~deps:pins ~forest:!acc);
              emit forest ~final))

and eval_core sys ~ctx (expr : Expr.t) ~(emit : System.emit) : unit =
  match expr with
  | Expr.Data_at { forest = _; at } when not (Peer_id.equal at ctx) ->
      (* Definition (5): ask the owner to evaluate and send back. *)
      delegate sys ~ctx ~to_:at expr
        ~replies:[ cont_at sys ~at:ctx emit ]
        ~ack:None
  | Expr.Data_at { forest; at = _ } -> eval_local_data sys ~ctx forest ~emit
  | Expr.Doc r -> eval_doc sys ~ctx r ~emit
  | Expr.Query_app { query; args; at } ->
      if not (Peer_id.equal at ctx) then
        delegate sys ~ctx ~to_:at expr
          ~replies:[ cont_at sys ~at:ctx emit ]
          ~ack:None
      else eval_query_app sys ~ctx query args ~emit
  | Expr.Sc { sc; at } ->
      if not (Peer_id.equal at ctx) then
        delegate sys ~ctx ~to_:at expr
          ~replies:[ cont_at sys ~at:ctx emit ]
          ~ack:None
      else eval_sc sys ~ctx sc ~emit
  | Expr.Send { dest; expr = inner } -> eval_send sys ~ctx dest inner ~emit
  | Expr.Eval_at { at; expr = inner } ->
      let io = sub_op (Trace.current_op ()) [ inner ] 0 in
      if Peer_id.equal at ctx then
        with_op_if io (fun () -> eval sys ~ctx inner ~emit)
      else
        (* Rule (14): ship the plan, stream the results back. *)
        with_op_if io (fun () ->
            delegate sys ~ctx ~to_:at inner
              ~replies:[ cont_at sys ~at:ctx emit ]
              ~ack:None)
  | Expr.Shared { name; at; value; body } ->
      (* Rule (13): materialize [value] as a document at [at], then run
         [body].  The sequencing is the parallelism loss the paper
         notes.  Calls the send-as-document machinery directly (rather
         than synthesizing a [Send] node) so operator attribution sees
         exactly the two children the plan has: [value] and [body]. *)
      let k = Trace.current_op () in
      let kids = [ value; body ] in
      let v_op = sub_op k kids 0 and b_op = sub_op k kids 1 in
      with_op_if v_op (fun () ->
          side_effecting_send sys ~ctx
            ~src:(site_peer ~ctx value)
            value
            ~emit:(fun _ ~final ->
              if final then
                with_op_if b_op (fun () -> eval sys ~ctx body ~emit))
            ~replies:
              [
                Message.Install
                  { peer = at; name = Names.Doc_name.to_string name };
              ])

(* Definition (1)/(6) over literal data: plain trees are values;
   sc-rooted trees are activated.  Embedded (non-root) calls stay inert
   at the expression level — they activate when the data lands in a
   document (Section 2.2 semantics, handled by System.activate_call). *)
and eval_local_data sys ~ctx forest ~emit =
  let scs, plain =
    List.partition
      (fun t ->
        match t with
        | Tree.Element e -> (
            match Axml_doc.Sc.of_element e with Ok _ -> true | Error _ -> false)
        | Tree.Text _ -> false)
      forest
  in
  match scs with
  | [] -> emit forest ~final:true
  | scs ->
      if plain <> [] then emit plain ~final:false;
      let remaining = ref (List.length scs) in
      let merged forest ~final =
        if final then begin
          decr remaining;
          if !remaining = 0 then emit forest ~final:true
          else if forest <> [] then emit forest ~final:false
        end
        else emit forest ~final:false
      in
      List.iter
        (fun t ->
          match t with
          | Tree.Element e -> (
              match Axml_doc.Sc.of_element e with
              | Ok sc -> eval_sc sys ~ctx sc ~emit:merged
              | Error _ -> assert false)
          | Tree.Text _ -> assert false)
        scs

and eval_doc sys ~ctx (r : Names.Doc_ref.t) ~emit =
  match r.at with
  | Names.Any -> (
      (* Definition (9): resolve through the local pick function. *)
      let self = System.peer sys ctx in
      match
        Axml_doc.Generic.pick_doc
          ~available:(System.availability sys ~from:ctx)
          self.Peer.catalog ~policy:self.Peer.policy
          ~class_name:(Names.Doc_name.to_string r.name)
      with
      | Some resolved -> eval_doc sys ~ctx resolved ~emit
      | None ->
          Log.warn (fun m ->
              m "peer %a: no member known for generic document %a" Peer_id.pp
                ctx Names.Doc_name.pp r.name);
          emit [] ~final:true)
  | Names.At p when not (Peer_id.equal p ctx) ->
      delegate sys ~ctx ~to_:p (Expr.Doc r)
        ~replies:[ cont_at sys ~at:ctx emit ]
        ~ack:None
  | Names.At _ -> (
      let self = System.peer sys ctx in
      match Axml_doc.Store.find self.Peer.store r.name with
      | Some doc ->
          (* Serving a document read is real work: charge the copy at
             the owner so a hot replica queues behind its own CPU
             (the latency signal placement steers on). *)
          System.consume_cpu sys ~peer:ctx
            ~bytes:(Axml_doc.Document.byte_size doc);
          emit
            [ Tree.copy ~gen:self.Peer.gen (Axml_doc.Document.root doc) ]
            ~final:true
      | None ->
          Log.warn (fun m ->
              m "peer %a: unknown document %a" Peer_id.pp ctx Names.Doc_name.pp
                r.name);
          emit [] ~final:true)

(* Resolve the query value of an application running at [ctx]; the
   continuation receives the AST once any shipping has happened. *)
and resolve_query sys ~ctx (q : Expr.query_expr) (k : Axml_query.Ast.t option -> unit) =
  match q with
  | Expr.Q_val { q; at } when Peer_id.equal at ctx -> k (Some q)
  | Expr.Q_val { q; at } ->
      (* Definition (7): the query travels to the evaluation site. *)
      let dest = cont_at sys ~at:ctx (fun _ ~final:_ -> k (Some q)) in
      let key = match dest with Message.Cont { key; _ } -> key | _ -> assert false in
      System.send sys ~src:at ~dst:ctx (Message.Query_shipped { key; query = q })
  | Expr.Q_service r -> (
      match r.at with
      | Names.Any -> (
          let self = System.peer sys ctx in
          match
            Axml_doc.Generic.pick_service
              ~available:(System.availability sys ~from:ctx)
              self.Peer.catalog ~policy:self.Peer.policy
              ~class_name:(Names.Service_name.to_string r.name)
          with
          | Some resolved -> resolve_query sys ~ctx (Expr.Q_service resolved) k
          | None -> k None)
      | Names.At p ->
          let query =
            Axml_doc.Registry.visible_query (System.peer sys p).Peer.registry
              r.name
          in
          (match query with
          | None ->
              Log.warn (fun m ->
                  m "service %a has no visible query" Names.Service_ref.pp r);
              k None
          | Some ast ->
              if Peer_id.equal p ctx then k (Some ast)
              else
                let dest =
                  cont_at sys ~at:ctx (fun _ ~final:_ -> k (Some ast))
                in
                let key =
                  match dest with
                  | Message.Cont { key; _ } -> key
                  | _ -> assert false
                in
                System.send sys ~src:p ~dst:ctx
                  (Message.Query_shipped { key; query = ast })))
  | Expr.Q_send { dest; q = inner } ->
      (* Definition (8): deploy at [dest] as a new service, then use
         it.  The query travels home → dest. *)
      let home =
        match Expr.query_site inner with Names.At p -> p | Names.Any -> ctx
      in
      let ast_of_inner kont =
        match inner with
        | Expr.Q_val { q; _ } -> kont (Some q)
        | Expr.Q_service r -> (
            match r.at with
            | Names.At p ->
                kont
                  (Axml_doc.Registry.visible_query
                     (System.peer sys p).Peer.registry r.name)
            | Names.Any -> kont None)
        | Expr.Q_send _ -> resolve_query sys ~ctx inner kont
      in
      ast_of_inner (fun ast ->
          match ast with
          | None -> k None
          | Some ast ->
              let reply =
                cont_at sys ~at:ctx (fun _ ~final:_ -> k (Some ast))
              in
              System.send sys ~src:home ~dst:dest
                (Message.Deploy { prefix = "_tmp_shipped"; query = ast; reply }))

and eval_query_app sys ~ctx query args ~emit =
  (* Captured now: the resolution continuation may fire during a later
     delivery, under that message's ambient operator. *)
  let k = Trace.current_op () in
  resolve_query sys ~ctx query (fun ast ->
      match ast with
      | None -> emit [] ~final:true
      | Some q ->
          let arity = Axml_query.Ast.arity q in
          if arity <> List.length args then begin
            Log.err (fun m ->
                m "peer %a: query arity %d but %d arguments" Peer_id.pp ctx
                  arity (List.length args));
            emit [] ~final:true
          end
          else if arity = 0 then begin
            let gen = System.gen_of sys ctx in
            emit (Axml_query.Compile.eval ~gen q []) ~final:true
          end
          else begin
            (* Definition (2) with streams: each argument batch is
               pushed into the incremental state; deltas flow out as
               they are enabled. *)
            let state = Axml_query.Incremental.create q in
            let gen = System.gen_of sys ctx in
            let open_args = ref (List.length args) in
            let push i forest ~final =
              let bytes = Forest.byte_size forest in
              if bytes > 0 then System.consume_cpu sys ~peer:ctx ~bytes;
              let delta =
                Axml_query.Incremental.push_forest ~gen state ~input:i forest
              in
              if final then begin
                decr open_args;
                if !open_args = 0 then emit delta ~final:true
                else if delta <> [] then emit delta ~final:false
              end
              else if delta <> [] then emit delta ~final:false
            in
            List.iteri
              (fun i arg ->
                with_op_if (sub_op k args i) (fun () ->
                    eval sys ~ctx arg ~emit:(push i)))
              args
          end)

and eval_sc sys ~ctx (sc : Axml_doc.Sc.t) ~emit =
  let self = System.peer sys ctx in
  let params =
    List.map
      (fun f -> Message.now (Forest.copy ~gen:self.Peer.gen f))
      sc.params
  in
  let invoke provider service =
    let replies, finish_now =
      match sc.forward with
      | [] -> ([ cont_at sys ~at:ctx emit ], false)
      | fw -> (List.map (fun r -> Message.Node r) fw, true)
    in
    System.send sys ~src:ctx ~dst:provider
      (Message.Invoke { service; params; replies });
    (* With an explicit forward list nothing returns to the caller:
       the expression's own value is ∅ (definition (6)). *)
    if finish_now then emit [] ~final:true
  in
  match sc.provider with
  | Names.At provider -> invoke provider sc.service
  | Names.Any -> (
      match
        Axml_doc.Generic.pick_service
          ~available:(System.availability sys ~from:ctx)
          self.Peer.catalog ~policy:self.Peer.policy
          ~class_name:(Names.Service_name.to_string sc.service)
      with
      | Some { Names.Service_ref.name; at = Names.At provider } ->
          invoke provider name
      | Some { at = Names.Any; _ } | None ->
          Log.warn (fun m ->
              m "peer %a: cannot resolve generic service %a" Peer_id.pp ctx
                Names.Service_name.pp sc.service);
          emit [] ~final:true)

and eval_send sys ~ctx dest inner ~emit =
  let src = site_peer ~ctx inner in
  let io = sub_op (Trace.current_op ()) [ inner ] 0 in
  match dest with
  | Expr.To_peer p ->
      if not (Peer_id.equal ctx p) then begin
        (* The value materializes at p, not here: the driver observes
           ∅ once the transfer completes (definition (3) — evaluating
           a send returns the empty result at the evaluation site).
           The whole [Send] operator ships, so the ambient operator id
           travels unchanged. *)
        let key = System.fresh_key sys in
        System.set_cont sys key (fun _ ~final ->
            if final then emit [] ~final:true);
        delegate sys ~ctx ~to_:p (Expr.Send { dest; expr = inner }) ~replies:[]
          ~ack:(Some (ctx, key))
      end
      else if not (Peer_id.equal src ctx) then
        (* Definitions (3)+(5): the operand's home evaluates and sends
           the copy here. *)
        with_op_if io (fun () ->
            delegate sys ~ctx ~to_:src inner
              ~replies:[ cont_at sys ~at:ctx emit ]
              ~ack:None)
      else with_op_if io (fun () -> eval sys ~ctx inner ~emit)
  | Expr.To_nodes targets ->
      with_op_if io (fun () ->
          side_effecting_send sys ~ctx ~src inner ~emit
            ~replies:(List.map (fun r -> Message.Node r) targets))
  | Expr.To_doc (name, p) ->
      with_op_if io (fun () ->
          side_effecting_send sys ~ctx ~src inner ~emit
            ~replies:
              [
                Message.Install
                  { peer = p; name = Names.Doc_name.to_string name };
              ])

(* Common machinery of send-to-nodes and send-as-document: batches flow
   to the destinations, which acknowledge the final one after applying
   it; the driver's ∅ result closes only when every destination has
   acknowledged — so "finished" really means the side effects are in
   place. *)
and side_effecting_send sys ~ctx ~src inner ~emit ~replies =
  match replies with
  | [] -> emit [] ~final:true
  | _ :: _ ->
      let key = System.fresh_key sys in
      System.set_cont ~expected_finals:(List.length replies) sys key
        (fun _ ~final -> if final then emit [] ~final:true);
      let ack = Some (ctx, key) in
      if not (Peer_id.equal src ctx) then
        delegate sys ~ctx ~to_:src inner ~replies ~ack
      else
        eval sys ~ctx inner ~emit:(fun forest ~final ->
            List.iter
              (fun dest ->
                System.route ?notify:(if final then ack else None) sys
                  ~src:ctx dest forest ~final)
              replies)

type outcome = {
  results : Forest.t;
  finished : bool;
  stats : Axml_net.Stats.snapshot;
  elapsed_ms : float;
  termination : Axml_net.Sim.outcome;
  events : int;
}

let run_to_quiescence ?(reset_stats = true) ?max_events sys ~ctx expr =
  if reset_stats then System.reset_stats sys;
  let start = System.now_ms sys in
  let acc = ref [] in
  let finished = ref false in
  (* One correlation id for the whole logical computation: the initial
     sends below carry it, every peer's dispatch re-establishes it,
     so each hop's spans — on any peer — share it. *)
  let go () =
    let sid =
      if Trace.sampled () then
        Trace.begin_span ~cat:"exec"
          ~peer:(Axml_net.Peer_id.to_string ctx)
          ~ts:start
          ~args:[ ("expr", Format.asprintf "%a" Expr.pp expr) ]
          "execute"
      else Trace.null
    in
    eval sys ~ctx expr ~emit:(fun forest ~final ->
        acc := !acc @ forest;
        if final then finished := true);
    let termination, events = System.run ?max_events sys in
    (* SLO breach: the divergence guard cut the run short — whatever
       the caller was waiting for never finished. *)
    (match termination with
    | `Budget_exhausted when Trace.sampled () ->
        Trace.instant ~cat:"slo"
          ~peer:(Axml_net.Peer_id.to_string ctx)
          ~ts:(System.now_ms sys)
          ~args:[ ("events", string_of_int events) ]
          "budget_exhausted"
    | `Budget_exhausted | `Quiescent -> ());
    let stats = System.stats sys in
    (* Completion covers trailing local computation (busy horizons),
       not just the last message delivery. *)
    let finish = max (System.now_ms sys) stats.Axml_net.Stats.completion_ms in
    Trace.end_span sid ~ts:finish;
    {
      results = !acc;
      finished = !finished;
      stats;
      elapsed_ms = finish -. start;
      termination;
      events;
    }
  in
  if Trace.enabled () then Trace.with_corr (Trace.fresh_corr ()) go else go ()

(* Cross-plan rule (13): rewrite every subplan matching a live cache
   entry into a literal read of the cached lforest.  Probes run with
   hit/miss accounting suppressed ([Qcache.probe]) because a missed
   subplan is probed again by [eval] — only the hits, whose subtrees
   [eval] never sees, are recorded here. *)
let apply_qcache_rewrites sys ~ctx plan =
  match (System.peer sys ctx).Peer.qcache with
  | None -> (plan, 0)
  | Some cache ->
      let current = current_version sys in
      let gen = System.gen_of sys ctx in
      let hits = ref 0 in
      let rec go e =
        match e with
        | Expr.Data_at _ -> e
        | _ -> (
            match Expr.cache_deps e with
            | None -> Expr.map_children go e
            | Some _ -> (
                let fp = qfp (Expr.fingerprint e) in
                match Qcache.probe cache ~fp ~expr:e ~current with
                | Some forest ->
                    incr hits;
                    Qcache.record_hit cache;
                    if Trace.sampled () then
                      Trace.instant ~cat:"qcache"
                        ~peer:(Peer_id.to_string ctx)
                        ~ts:(System.now_ms sys)
                        ~args:[ ("expr", Expr.to_string e) ]
                        "plan_rewrite";
                    Expr.Data_at { forest = Forest.copy ~gen forest; at = ctx }
                | None -> Expr.map_children go e))
      in
      let plan = go plan in
      (plan, !hits)

let run_optimized ?reset_stats ?max_events
    ?(strategy = Axml_algebra.Optimizer.Best_first { max_expansions = 32 })
    ?objective ?visited ?stats sys ~ctx expr =
  let env = System.cost_env sys in
  let wall0 = Trace.wall_ms () in
  let planned =
    Axml_algebra.Planner.plan ~env ~ctx ?objective ?visited ?stats strategy expr
  in
  let rewritten, qcache_rewrites =
    apply_qcache_rewrites sys ~ctx planned.Axml_algebra.Planner.plan
  in
  let planned =
    if qcache_rewrites = 0 then planned
    else { planned with Axml_algebra.Planner.plan = rewritten }
  in
  (* The optimize phase consumes no virtual time; its span sits at the
     current virtual timestamp with the wall-clock planning duration,
     so optimize-vs-execute shares show up side by side in the trace. *)
  if Trace.enabled () then
    Trace.complete ~cat:"plan"
      ~peer:(Axml_net.Peer_id.to_string ctx)
      ~ts:(System.now_ms sys)
      ~dur_ms:(Trace.wall_ms () -. wall0)
      ~args:
        [
          ("strategy", planned.Axml_algebra.Planner.strategy);
          ( "explored",
            string_of_int
              planned.Axml_algebra.Planner.search.Axml_algebra.Optimizer.explored
          );
          ("qcache_rewrites", string_of_int qcache_rewrites);
        ]
      "optimize";
  ( planned,
    run_to_quiescence ?reset_stats ?max_events sys ~ctx
      planned.Axml_algebra.Planner.plan )

type profiled = { outcome : outcome; report : Profiler.report }

(* EXPLAIN ANALYZE: run the plan under forced full tracing (enabled,
   sampling 1-in-1 — both restored afterwards) with the root operator
   id 0 ambient, slice the events this run recorded, and fold them
   back onto the plan's operators next to the planner's estimates. *)
let run_profiled ?reset_stats ?max_events sys ~ctx expr =
  let was_enabled = Trace.enabled () in
  let seed, keep = Trace.sampling () in
  Trace.set_enabled true;
  Trace.set_sampling ~seed ~keep_one_in:1 ();
  let mark = Trace.count () in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Trace.set_sampling ~seed ~keep_one_in:keep ();
        Trace.set_enabled was_enabled)
      (fun () ->
        Trace.with_op 0 (fun () ->
            run_to_quiescence ?reset_stats ?max_events sys ~ctx expr))
  in
  let events = List.filteri (fun i _ -> i >= mark) (Trace.events ()) in
  let report = Profiler.report ~env:(System.cost_env sys) ~ctx ~events expr in
  { outcome; report }

let () = System.set_eval_hook (fun sys ~ctx expr ~emit -> eval sys ~ctx expr ~emit)
