(** The AXML system: peers, network, dispatch, and the state Σ.

    "We call state of an AXML system over peers p1…pn, and denote by
    Σ, all documents and services on p1…pn" (Section 3.3).  A
    {!t} bundles the simulated network with one {!Peer.t} per topology
    member and implements the message protocol of {!module:Message}.

    Expression evaluation itself lives in {!module:Exec}; the system
    calls back into it through a hook to break the module cycle. *)

module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type t

type emit = Axml_xml.Forest.t -> final:bool -> unit
(** Result-stream consumer: called per batch; [final] marks the last
    batch of the stream. *)

(** {1 Construction} *)

type transport =
  | Raw  (** Messages ride the simulator as-is; a lost message is lost. *)
  | Reliable
      (** Per-(src,dst) sequence numbers, acks, exponential-backoff
          retransmission and receiver-side in-order dedup: effectively
          exactly-once, in-order delivery over a lossy network. *)

(** Which wire encoding the simulator charges for each transmission. *)
type wire =
  | Xml
      (** The original model: XML serialization size plus a fixed
          envelope ({!Message.bytes}). *)
  | Binary
      (** Exact encoded frame length of the binary codec
          ({!Codec.frame_bytes}), computed from cached per-tree blob
          lengths without materializing frames. *)
  | Binary_strict
      (** [Binary], and every physical transmission is additionally
          encoded and lazily re-decoded ({!Codec.roundtrip}), so the
          receiver consumes real frames: forests decode on first
          application touch, transport-layer handling decodes nothing
          (observable via {!Message.payload_decodes}). *)

val create :
  ?response_delay_ms:float ->
  ?cpu_ms_per_kb:float ->
  ?transport:transport ->
  ?wire:wire ->
  ?rto_ms:float ->
  ?max_retries:int ->
  ?flush_ms:float ->
  ?ack_delay_ms:float ->
  Axml_net.Topology.t ->
  t
(** One peer is created per topology member.  [response_delay_ms]
    spaces the successive responses of a continuous service (default
    1.0); [cpu_ms_per_kb] prices local query evaluation (default
    0.01).  [transport] defaults to [Raw] (the fault-free simulator
    needs no protocol; the knob exists for ablation); under
    [Reliable], [rto_ms] is the initial retransmission timeout
    (default 40.0, doubling per retry up to 32x) and [max_retries]
    bounds retransmissions per message (default 30) so a permanently
    unreachable destination cannot keep the run alive forever.

    [flush_ms] and [ack_delay_ms] (defaults 0.0) switch the Reliable
    transport into {e batched} mode when either is positive: sequenced
    messages to the same destination are held for up to [flush_ms] and
    coalesced into one {!Message.Batch} frame carrying a piggybacked
    cumulative ack, with identical payload forests shipped once per
    frame (transfer sharing, rule (13), at the transport layer);
    standalone acks are deferred by [ack_delay_ms] and suppressed when
    reverse traffic piggybacks them first.  At the defaults the
    unbatched per-message protocol runs unchanged.  Both knobs are
    ignored under [Raw].

    [wire] (default [Xml]) selects the byte-accounting model — and,
    for [Binary_strict], routes every transmission through the binary
    codec.  The wire never changes what is delivered, only how it is
    charged/carried: same-seed runs reach the same Σ fingerprints
    under every wire.
    @raise Invalid_argument on negative knob values. *)

val transport : t -> transport
val wire : t -> wire

val flush_ms : t -> float
(** The coalescing window ([0.0] = batching off unless
    [ack_delay_ms] is set). *)

val ack_delay_ms : t -> float
(** The standalone-ack deferral ([0.0] = immediate acks). *)

val sim : t -> Message.t Axml_net.Sim.t
val peer : t -> Peer_id.t -> Peer.t
(** @raise Not_found for unknown peers. *)

val peers : t -> Peer.t list
val gen_of : t -> Peer_id.t -> Axml_xml.Node_id.Gen.t

(** {1 Populating Σ} *)

val add_document : t -> Peer_id.t -> name:string -> Axml_xml.Tree.t -> unit
val load_document : t -> Peer_id.t -> name:string -> xml:string -> unit
(** Parse and add.
    @raise Axml_xml.Parser.Parse_error on bad XML. *)

val add_service : t -> Peer_id.t -> Axml_doc.Service.t -> unit

val register_doc_class :
  t -> class_name:string -> Names.Doc_ref.t -> unit
(** Register a document-class member in {e every} peer's catalog
    (global knowledge; use {!Peer.t}'s catalog directly for asymmetric
    knowledge). *)

val register_service_class :
  t -> class_name:string -> Names.Service_ref.t -> unit

val unregister_doc_class :
  t -> class_name:string -> Names.Doc_ref.t -> unit
(** Retire a member from every peer's catalog (placement's
    retire-the-source step; no-op where absent). *)

(** {1 Continuations and messaging} *)

val fresh_key : t -> int

val set_cont :
  ?expected_finals:int -> t -> int -> (Axml_xml.Forest.t -> final:bool -> unit) -> unit
(** Register a stream continuation.  It is dropped automatically after
    [expected_finals] final batches (default 1); the consumer sees
    [final = true] only on the last of them — how a driver joins
    acknowledgements from several destinations. *)

val send : t -> src:Peer_id.t -> dst:Peer_id.t -> Message.payload -> unit
(** Wrap the payload in a {!Message.t} envelope carrying the ambient
    correlation id ({!Axml_obs.Trace.current_corr}) and enqueue it on
    the simulator.  Under the [Reliable] transport the message is
    also sequenced, tracked and retransmitted until acked (loopbacks
    and acks stay raw).  Per-peer send metrics are recorded when
    {!Axml_obs.Metrics.default} is enabled. *)

val route :
  ?notify:Peer_id.t * int ->
  t ->
  src:Peer_id.t ->
  Message.reply_dest ->
  Axml_xml.Forest.t ->
  final:bool ->
  unit
(** Deliver one stream batch to a destination (continuation, node
    insertion, or document installation).  On a final batch to a
    side-effecting destination, [notify] is carried along and pinged
    by the destination {e after} applying the batch. *)

val consume_cpu : t -> peer:Peer_id.t -> bytes:int -> unit
(** Charge query-evaluation time at a peer. *)

(** {1 Document-level AXML (Section 2.2)} *)

val activate_call :
  t -> owner:Peer_id.t -> doc:Names.Doc_name.t -> node:Axml_xml.Node_id.t -> bool
(** Activate the service call at the [sc] node [node] of a stored
    document: ship parameters to the provider, route responses to the
    forward list (default: siblings of the [sc] node).  [false] if the
    node is not a well-formed call. *)

val activate_all : t -> ?peer:Peer_id.t -> unit -> int
(** Activate every call in every (or one peer's) stored document;
    returns the number of calls activated. *)

(** {1 Running and observing} *)

(** {1 Faults and failover} *)

val inject_faults : t -> Axml_net.Fault.plan -> unit
(** See {!Axml_net.Sim.inject}. *)

val crash : t -> Peer_id.t -> unit
(** Crash a peer now: its volatile state — store, registry, catalog,
    watchers, in-flight transport buffers — is discarded and a fresh
    empty {!Peer.t} (with the {e durable} id generator carried over)
    takes its place; messages addressed to it are dropped until
    {!restart}.  The failover [save] hook (see {!set_failover}) runs
    first, modeling continuously persisted durable state. *)

val restart : t -> Peer_id.t -> unit
(** Bring a crashed peer back; the failover [load] hook reloads its
    checkpoint (without one the peer restarts empty). *)

val set_failover :
  t -> save:(Peer_id.t -> unit) -> load:(Peer_id.t -> unit) -> unit
(** Install the checkpoint hooks used by {!crash} / {!restart}.
    {!Failover.enable} wires these to {!Persist} checkpoints. *)

(** {1 Semantic result cache}

    DESIGN.md §18.  Off by default; {!enable_qcache} gives every peer
    a {!Axml_query.Qcache} keyed by planner expression fingerprints,
    probed and filled by {!Exec}.  The cache is volatile: a {!crash}
    replaces it with a fresh empty one, and failover checkpoints never
    contain it — restart reloads re-stamp documents
    ({!Axml_doc.Store.version_of}), so pre-crash entries could not
    revalidate even if they survived. *)

val enable_qcache : ?capacity:int -> t -> unit
(** Attach a semantic cache (default capacity 256 entries) to every
    peer, now and after any future crash-recreation. *)

val qcache_enabled : t -> bool

val qcache_stats : t -> Axml_query.Qcache.stats
(** Sum over all peers' caches. *)

val doc_version : t -> peer:Peer_id.t -> doc:string -> int option
(** Current version stamp of [doc] at [peer]; [None] if peer or
    document is absent.  A live read modeling the invalidation
    protocol's knowledge (the convention {!cost_env} also uses). *)

val availability : t -> from:Peer_id.t -> Peer_id.t -> bool
(** The membership filter generic resolution uses: [true] iff the
    peer is [from] itself or currently reachable from it
    ({!Axml_net.Sim.reachable}). *)

type reliability_counters = {
  retransmits : int;
  dup_suppressed : int;
  abandoned : int;  (** sends given up after [max_retries] *)
  acks_sent : int;
  batches_sent : int;  (** batch frames shipped (batched mode only) *)
  batched_messages : int;
      (** logical messages those frames carried, re-ships included *)
  piggybacked_acks : int;
      (** standalone acks cancelled because a reverse-direction batch
          carried the acknowledgement instead *)
  delayed_acks : int;
      (** standalone acks that did fire after the [ack_delay_ms]
          deferral (also counted in [acks_sent]) *)
  dedup_shared_bytes : int;
      (** bytes saved by within-frame transfer sharing *)
}

val reliability_counters : t -> reliability_counters
(** Always-on transport counters (also exported as [net/*] metrics
    when {!Axml_obs.Metrics.default} is enabled).  The batching
    counters stay 0 in unbatched mode. *)

(** {1 Running and observing} *)

val run : ?max_events:int -> t -> Axml_net.Sim.outcome * int
(** Drive the simulator until quiescence or the [max_events] guard;
    the outcome says which (see {!Axml_net.Sim.run}) — check it, a
    [`Budget_exhausted] run left deliverable messages unprocessed. *)

val now_ms : t -> float
val stats : t -> Axml_net.Stats.snapshot
val reset_stats : t -> unit

val fingerprint : t -> string
(** Canonical digest of Σ: every peer's documents (by name, with
    {!Axml_doc.Equivalence.fingerprint}) and service names.  Resources
    whose name starts with ["_tmp"] — the auxiliary documents and
    services materialized by rewrites (rules (10), (13)) — are
    excluded, so that plan equivalence can be checked as fingerprint
    equality. *)

val content_fingerprint : t -> string
(** Location-{e independent} digest of Σ: the sorted, deduplicated
    set of (name, content-digest) pairs across all peers.  Identical
    replicas collapse to one entry, so live migration leaves it
    unchanged — whereas a lost, duplicated or diverged append changes
    it.  The placement suites compare runs with this; {!fingerprint}
    stays the location-{e sensitive} digest. *)

val find_document : t -> Peer_id.t -> string -> Axml_doc.Document.t option

val cost_env : t -> Axml_algebra.Cost.env
(** A {!Axml_algebra.Cost.env} whose oracles read the live system:
    document sizes from the peers' stores, declarative-service queries
    from their registries, topology and CPU pricing from the
    simulator.  The entry point of optimize-before-evaluate — see
    {!Exec.run_optimized}. *)

val pp_state : Format.formatter -> t -> unit

(** {1 Exec hook} *)

val set_eval_hook :
  (t -> ctx:Peer_id.t -> Axml_algebra.Expr.t -> emit:emit -> unit) -> unit
(** Installed by {!module:Exec} at load time; not for end users. *)

val response_delay_ms : t -> float
val cpu_ms_per_kb : t -> float
