module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Names = Axml_doc.Names
module Peer_id = Axml_net.Peer_id

type activation_mode = Eager | Lazy

type outcome = {
  results : Axml_xml.Forest.t;
  activated : int;
  skipped : int;
  stats : Axml_net.Stats.snapshot;
  elapsed_ms : float;
}

(* Label path from the document root (root's own label excluded) to
   the node with the given identifier. *)
let label_path_to root target =
  let rec go acc t =
    match t with
    | Tree.Text _ -> None
    | Tree.Element e ->
        if Axml_xml.Node_id.equal e.id target then Some (List.rev acc)
        else
          List.find_map
            (fun child ->
              match child with
              | Tree.Element ce -> go (ce.label :: acc) child
              | Tree.Text _ -> None)
            e.children
  in
  match root with
  | Tree.Element _ -> go [] root
  | Tree.Text _ -> None

let relevant_calls q doc =
  let root = Axml_doc.Document.root doc in
  let judge (node, (sc : Axml_doc.Sc.t)) =
    match sc.forward with
    | _ :: _ ->
        (* Results go elsewhere: they can never show up under this
           document, hence cannot feed this query. *)
        false
    | [] -> (
        (* Results accumulate under the sc node's parent. *)
        let region =
          match Tree.parent_of node root with
          | Some parent -> label_path_to root parent.Tree.id
          | None -> label_path_to root node
        in
        match region with
        | None -> true (* be conservative if the node vanished *)
        | Some prefix -> Axml_query.Relevance.relevant q ~input:0 ~prefix)
  in
  List.partition judge (Axml_doc.Document.calls doc)

let eval_over_document sys ~ctx ~mode ~query ~doc =
  if Axml_query.Ast.arity query <> 1 then
    invalid_arg "Lazy_eval.eval_over_document: query must be unary";
  let document =
    match System.find_document sys ctx doc with
    | Some d -> d
    | None ->
        invalid_arg
          (Printf.sprintf "Lazy_eval.eval_over_document: no document %S" doc)
  in
  System.reset_stats sys;
  let start = System.now_ms sys in
  let to_activate, skipped =
    match mode with
    | Eager -> (Axml_doc.Document.calls document, [])
    | Lazy -> relevant_calls query document
  in
  let doc_name = Axml_doc.Document.name document in
  let activated =
    List.fold_left
      (fun acc (node, _) ->
        if System.activate_call sys ~owner:ctx ~doc:doc_name ~node then acc + 1
        else acc)
      0 to_activate
  in
  ignore (System.run sys);
  let final_doc =
    match System.find_document sys ctx doc with
    | Some d -> d
    | None -> document
  in
  let gen = System.gen_of sys ctx in
  let input_bytes = Axml_doc.Document.byte_size final_doc in
  System.consume_cpu sys ~peer:ctx ~bytes:input_bytes;
  let results =
    Axml_query.Compile.eval ~gen query [ [ Axml_doc.Document.root final_doc ] ]
  in
  {
    results;
    activated;
    skipped = List.length skipped;
    stats = System.stats sys;
    elapsed_ms = System.now_ms sys -. start;
  }
