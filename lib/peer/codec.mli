(** Compact binary wire codec for {!Message.t}.

    A length-prefixed binary framing with an interned-label,
    offset-indexed encoding for shipped forests (see DESIGN.md §16):

    {v
    frame  := uvarint(body_len) body
    body   := magic version zv(corr) zv(seq) zv(op) kind payload
    forest := uvarint(ntrees) { uvarint(blob_len) tree_blob }*
    blob   := string table (labels, attr names, id namespaces) + nodes
    v}

    Three properties the rest of the stack builds on:

    - {b Exact sizing without encoding.}  {!frame_bytes} computes the
      encoded length arithmetically from cached per-tree blob lengths;
      a qcheck property pins it to [Bytes.length (encode m)].
    - {b Lazy decode.}  {!decode} materializes scalars eagerly but
      leaves every forest as a {!Message.lforest} thunk backed by the
      frame buffer; nothing is parsed until first touch
      ({!Message.force}), and {!Message.payload_decodes} counts
      touches.
    - {b Zero-parse relaying.}  {!Relay} slices batch frames along
      their length prefixes and re-batches by blitting — a rule (12)
      intermediary never decodes the payloads it forwards.

    Per-tree blobs are cached in a weak pointer-keyed table: a tree
    shared by many messages is encoded once, and sizing it again is a
    length lookup. *)

type error = Truncated | Malformed of string

val pp_error : Format.formatter -> error -> unit

val frame_bytes : Message.t -> int
(** Exact length of [encode m], computed without materializing the
    frame.  The binary-wire byte charge ({!System.wire}). *)

val encode : Message.t -> Bytes.t
(** Never forces a lazy forest: an undecoded forest section is blitted
    from the originating frame. *)

val decode : Bytes.t -> (Message.t, error) result
(** Checks framing, lengths and scalar fields eagerly; forests decode
    lazily on first {!Message.force}.  A corrupt forest blob therefore
    surfaces at force time (as {!decode_strict} observes), never as a
    crash.  Rejects truncated, over-length and malformed frames. *)

val decode_strict : Bytes.t -> (Message.t, error) result
(** {!decode}, then force every carried forest, converting deferred
    blob errors into [Error]. *)

val roundtrip : Message.t -> Message.t
(** [decode (encode m)], lazily.  The strict wire mode routes every
    send through this so the whole stack exercises the codec.
    @raise Invalid_argument if decoding fails (encode/decode mismatch
    — a codec bug, not an input condition). *)

(** Zero-parse slicing and re-batching of encoded batch frames. *)
module Relay : sig
  type item
  (** A slice of an encoded batch frame covering one item, tag byte
      included.  Only the scalar item header has been read. *)

  val item_seq : item -> int
  val item_of_seq : item -> int
  (** Back-reference target of a shared item, [-1] for full items. *)

  val is_shared : item -> bool
  (** A shared item's forest lives in the item {!item_of_seq} points
      at; dropping the referent from a re-batched frame would dangle
      the reference. *)

  val parse_batch : Bytes.t -> (int * item list, error) result
  (** The frame's cumulative ack and its item slices.  No payload —
      in particular no forest blob — is parsed. *)

  val rebatch :
    ?corr:int -> ?seq:int -> ?op:int -> ack:int -> item list -> Bytes.t
  (** A fresh batch frame carrying the given item slices verbatim
      (blitted, not re-encoded) under a new envelope and ack. *)
end
