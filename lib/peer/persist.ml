module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Names = Axml_doc.Names
module Peer_id = Axml_net.Peer_id

let l = Label.of_string

let service_to_tree ~gen svc =
  let name = Names.Service_name.to_string (Axml_doc.Service.name svc) in
  let continuous = string_of_bool (Axml_doc.Service.continuous svc) in
  match Axml_doc.Service.impl svc with
  | Axml_doc.Service.Declarative q ->
      Tree.element ~gen (l "service")
        ~attrs:
          [ ("name", name); ("kind", "declarative"); ("continuous", continuous) ]
        [
          Tree.element ~gen (l "query")
            [ Tree.text (Axml_query.Ast.to_string q) ];
        ]
  | Axml_doc.Service.Doc_feed d ->
      Tree.element ~gen (l "service")
        ~attrs:
          [
            ("name", name); ("kind", "feed");
            ("doc", Names.Doc_name.to_string d);
          ]
        []
  | Axml_doc.Service.Extern _ ->
      (* Opaque: recorded for inventory, skipped on load. *)
      Tree.element ~gen (l "service")
        ~attrs:[ ("name", name); ("kind", "extern") ]
        []

let peer_to_xml_gen ?(pretty = true) ~tree_of sys pid =
  let peer = System.peer sys pid in
  let gen = Axml_xml.Node_id.Gen.create ~namespace:"persist" in
  let documents =
    List.map
      (fun doc ->
        Tree.element ~gen (l "document")
          ~attrs:[ ("name", Names.Doc_name.to_string (Axml_doc.Document.name doc)) ]
          [ tree_of ~gen (Axml_doc.Document.root doc) ])
      (Axml_doc.Store.documents peer.Peer.store)
  in
  let services =
    List.map (service_to_tree ~gen)
      (Axml_doc.Registry.services peer.Peer.registry)
  in
  let classes =
    List.concat_map
      (fun class_name ->
        let doc_members =
          Axml_doc.Generic.doc_members peer.Peer.catalog ~class_name
        in
        let svc_members =
          Axml_doc.Generic.service_members peer.Peer.catalog ~class_name
        in
        let mk kind members to_string =
          if members = [] then []
          else
            [
              Tree.element ~gen (l "class")
                ~attrs:[ ("kind", kind); ("name", class_name) ]
                (List.map
                   (fun m ->
                     Tree.element ~gen (l "member") [ Tree.text (to_string m) ])
                   members);
            ]
        in
        mk "doc" doc_members Names.Doc_ref.to_string
        @ mk "service" svc_members Names.Service_ref.to_string)
      (Axml_doc.Generic.classes peer.Peer.catalog)
  in
  let replicas =
    List.map
      (fun (doc, target) ->
        Tree.element ~gen (l "replica")
          ~attrs:
            [
              ("doc", Names.Doc_name.to_string doc);
              ("peer", Peer_id.to_string target);
            ]
          [])
      (Peer.replica_links peer)
  in
  let root =
    Tree.element ~gen (l "peer")
      ~attrs:[ ("id", Peer_id.to_string pid) ]
      (documents @ services @ classes @ replicas)
  in
  if pretty then Axml_xml.Serializer.to_string_pretty root
  else Axml_xml.Serializer.to_string ~decl:false root

let peer_to_xml sys pid =
  peer_to_xml_gen ~tree_of:(fun ~gen tree -> Tree.copy ~gen tree) sys pid

(* --- id-preserving checkpoints ----------------------------------- *)

(* [peer_to_xml] re-mints node ids on load, which is right for moving
   a Σ between processes but wrong for crash recovery: reply
   destinations captured before the crash ({!Message.reply_dest}
   [Node] refs) point at the original ids, and a restored document
   must keep answering to them.  A checkpoint therefore rides each
   element's identity along as an [axml-id] attribute and rebuilds
   the exact same nodes on restore. *)

let id_attr = "axml-id"

let rec annotate tree =
  match tree with
  | Tree.Text _ -> tree
  | Tree.Element e ->
      Tree.with_id e.Tree.id
        ~attrs:((id_attr, Axml_xml.Node_id.to_string e.Tree.id) :: e.Tree.attrs)
        e.Tree.label
        (List.map annotate e.Tree.children)

let rec deannotate tree =
  match tree with
  | Tree.Text _ -> tree
  | Tree.Element e ->
      let id =
        match List.assoc_opt id_attr e.Tree.attrs with
        | Some s -> (
            match Axml_xml.Node_id.of_string s with
            | Some id -> id
            | None -> e.Tree.id)
        | None -> e.Tree.id
      in
      Tree.with_id id
        ~attrs:(List.remove_assoc id_attr e.Tree.attrs)
        e.Tree.label
        (List.map deannotate e.Tree.children)

let ( let* ) = Result.bind

let load_service sys pid (e : Tree.element) =
  let attr name = Tree.attr (Tree.Element e) name in
  let* name =
    Option.to_result ~none:"service without name" (attr "name")
  in
  match attr "kind" with
  | Some "declarative" -> (
      let text = String.trim (Tree.text_content (Tree.Element e)) in
      match Axml_query.Parser.parse text with
      | Error pe ->
          Error (Format.asprintf "service %s: %a" name Axml_query.Parser.pp_error pe)
      | Ok q ->
          let continuous = attr "continuous" <> Some "false" in
          (match
             Axml_doc.Service.declarative ~continuous ~name q
           with
          | svc ->
              System.add_service sys pid svc;
              Ok ()
          | exception Invalid_argument msg -> Error msg))
  | Some "feed" -> (
      match attr "doc" with
      | Some doc ->
          System.add_service sys pid (Axml_doc.Service.doc_feed ~name ~doc);
          Ok ()
      | None -> Error (Printf.sprintf "feed service %s without doc" name))
  | Some "extern" -> Ok () (* opaque, skipped *)
  | Some other -> Error (Printf.sprintf "unknown service kind %S" other)
  | None -> Error (Printf.sprintf "service %s without kind" name)

let load_class sys pid (e : Tree.element) =
  let attr name = Tree.attr (Tree.Element e) name in
  let* class_name = Option.to_result ~none:"class without name" (attr "name") in
  let* kind = Option.to_result ~none:"class without kind" (attr "kind") in
  let peer = System.peer sys pid in
  List.fold_left
    (fun acc child ->
      let* () = acc in
      match child with
      | Tree.Element m when Label.equal m.label (l "member") -> (
          let text = String.trim (Tree.text_content child) in
          match kind with
          | "doc" -> (
              match Names.Doc_ref.of_string text with
              | r ->
                  Axml_doc.Generic.register_doc peer.Peer.catalog ~class_name r;
                  Ok ()
              | exception Invalid_argument msg -> Error msg)
          | "service" -> (
              match Names.Service_ref.of_string text with
              | r ->
                  Axml_doc.Generic.register_service peer.Peer.catalog
                    ~class_name r;
                  Ok ()
              | exception Invalid_argument msg -> Error msg)
          | other -> Error (Printf.sprintf "unknown class kind %S" other))
      | Tree.Element _ | Tree.Text _ -> Ok ())
    (Ok ()) e.children

let load_peer_xml_gen ~tree_of sys pid xml =
  let gen = System.gen_of sys pid in
  match Axml_xml.Parser.parse ~gen xml with
  | Error e -> Error (Format.asprintf "%a" Axml_xml.Parser.pp_error e)
  | Ok (Tree.Text _) -> Error "peer file is not an element"
  | Ok (Tree.Element root) ->
      if not (Label.equal root.label (l "peer")) then
        Error "root element must be <peer>"
      else
        List.fold_left
          (fun acc child ->
            let* () = acc in
            match child with
            | Tree.Text _ -> Ok ()
            | Tree.Element e ->
                if Label.equal e.label (l "document") then begin
                  match Tree.attr child "name" with
                  | None -> Error "document without name"
                  | Some name -> (
                      match List.filter Tree.is_element e.children with
                      | [ tree ] -> (
                          match System.add_document sys pid ~name (tree_of tree) with
                          | () -> Ok ()
                          | exception Invalid_argument msg -> Error msg)
                      | _ -> Error (Printf.sprintf "document %s must hold one tree" name))
                end
                else if Label.equal e.label (l "service") then
                  load_service sys pid e
                else if Label.equal e.label (l "class") then load_class sys pid e
                else if Label.equal e.label (l "replica") then begin
                  match (Tree.attr child "doc", Tree.attr child "peer") with
                  | Some doc, Some target -> (
                      match
                        (Names.Doc_name.of_string doc, Peer_id.of_string_opt target)
                      with
                      | d, Some p ->
                          Peer.add_replica (System.peer sys pid) d p;
                          Ok ()
                      | _, None ->
                          Error
                            (Printf.sprintf "replica with invalid peer %S" target)
                      | exception Invalid_argument msg -> Error msg)
                  | _ -> Error "replica without doc/peer"
                end
                else Ok () (* forward compatibility: ignore unknown *))
          (Ok ()) root.children

let load_peer_xml sys pid xml = load_peer_xml_gen ~tree_of:Fun.id sys pid xml

(* Checkpoints serialize compactly: pretty-printed indentation would
   come back as whitespace text nodes inside mixed-content documents,
   and a recovery round-trip must be exact. *)
let checkpoint_xml sys pid =
  peer_to_xml_gen ~pretty:false
    ~tree_of:(fun ~gen:_ tree -> annotate tree)
    sys pid

let restore_checkpoint sys pid xml =
  load_peer_xml_gen ~tree_of:deannotate sys pid xml

let save sys ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (p : Peer.t) ->
      let path =
        Filename.concat dir (Peer_id.to_string p.Peer.id ^ ".peer.xml")
      in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (peer_to_xml sys p.Peer.id)))
    (System.peers sys)

let load sys ~dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".peer.xml")
    |> List.sort String.compare
  in
  List.fold_left
    (fun acc file ->
      let* n = acc in
      let pid_str = Filename.chop_suffix file ".peer.xml" in
      let* pid =
        Option.to_result
          ~none:(Printf.sprintf "invalid peer id in file name %s" file)
          (Peer_id.of_string_opt pid_str)
      in
      let* () =
        match System.peer sys pid with
        | _ -> Ok ()
        | exception Not_found ->
            Error (Printf.sprintf "peer %s not in the topology" pid_str)
      in
      let ic = open_in_bin (Filename.concat dir file) in
      let xml =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let* () = load_peer_xml sys pid xml in
      Ok (n + 1))
    (Ok 0) files
